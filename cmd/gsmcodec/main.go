// Command gsmcodec exercises the GSM 06.10 full-rate codec outside the
// simulator: it encodes and decodes raw 16-bit little-endian PCM (or the
// built-in synthetic speech generator) and reports rate and quality.
//
// Examples:
//
//	gsmcodec -synth 100 -out speech.pcm        # generate synthetic PCM
//	gsmcodec -encode -in speech.pcm -out x.gsm # PCM → 33-byte frames
//	gsmcodec -decode -in x.gsm -out y.pcm      # frames → PCM
//	gsmcodec -roundtrip -synth 100             # encode+decode, print SNR
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsmcodec:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		encode    = flag.Bool("encode", false, "encode PCM to GSM frames")
		decode    = flag.Bool("decode", false, "decode GSM frames to PCM")
		roundtrip = flag.Bool("roundtrip", false, "encode then decode, report SNR")
		synth     = flag.Int("synth", 0, "generate N frames of synthetic speech as input")
		seed      = flag.Uint64("seed", 42, "synthetic speech seed")
		inPath    = flag.String("in", "", "input file ('-' or empty = stdin)")
		outPath   = flag.String("out", "", "output file ('-' or empty = stdout)")
	)
	flag.Parse()

	in, closeIn, err := openIn(*inPath)
	if err != nil {
		return err
	}
	defer closeIn()
	out, closeOut, err := openOut(*outPath)
	if err != nil {
		return err
	}
	defer closeOut()

	var pcm []int16
	if *synth > 0 {
		pcm = gsm.Synth(*synth*gsm.FrameSamples, *seed)
	}

	switch {
	case *roundtrip:
		if pcm == nil {
			if pcm, err = readPCM(in); err != nil {
				return err
			}
		}
		frames := len(pcm) / gsm.FrameSamples
		enc, dec := gsm.NewEncoder(), gsm.NewDecoder()
		outPCM := make([]int16, 0, frames*gsm.FrameSamples)
		for f := 0; f < frames; f++ {
			buf := gsm.Pack(enc.Encode(pcm[f*gsm.FrameSamples : (f+1)*gsm.FrameSamples]))
			p, err := gsm.Unpack(buf[:])
			if err != nil {
				return err
			}
			outPCM = append(outPCM, dec.Decode(p)...)
		}
		snr := gsm.SNR(pcm[:frames*gsm.FrameSamples], outPCM, gsm.FrameSamples)
		fmt.Fprintf(os.Stderr, "frames=%d rate=%d bit/s snr=%.1f dB\n",
			frames, gsm.FrameBits*50, snr)
		return writePCM(out, outPCM)

	case *encode:
		if pcm == nil {
			if pcm, err = readPCM(in); err != nil {
				return err
			}
		}
		enc := gsm.NewEncoder()
		frames := len(pcm) / gsm.FrameSamples
		for f := 0; f < frames; f++ {
			buf := gsm.Pack(enc.Encode(pcm[f*gsm.FrameSamples : (f+1)*gsm.FrameSamples]))
			if _, err := out.Write(buf[:]); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "encoded %d frames (%d bytes)\n", frames, frames*gsm.FrameBytes)
		return nil

	case *decode:
		dec := gsm.NewDecoder()
		buf := make([]byte, gsm.FrameBytes)
		frames := 0
		for {
			if _, err := io.ReadFull(in, buf); err != nil {
				if err == io.EOF {
					break
				}
				if err == io.ErrUnexpectedEOF {
					return fmt.Errorf("truncated frame after %d frames", frames)
				}
				return err
			}
			p, err := gsm.Unpack(buf)
			if err != nil {
				return err
			}
			if err := writePCM(out, dec.Decode(p)); err != nil {
				return err
			}
			frames++
		}
		fmt.Fprintf(os.Stderr, "decoded %d frames\n", frames)
		return nil

	default:
		// No mode: emit the synthetic PCM (or echo input) as PCM.
		if pcm == nil {
			return fmt.Errorf("choose -encode, -decode, -roundtrip, or -synth N")
		}
		return writePCM(out, pcm)
	}
}

func openIn(path string) (io.Reader, func(), error) {
	if path == "" || path == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func openOut(path string) (io.Writer, func(), error) {
	if path == "" || path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func readPCM(r io.Reader) ([]int16, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	pcm := make([]int16, len(raw)/2)
	for i := range pcm {
		pcm[i] = int16(binary.LittleEndian.Uint16(raw[2*i:]))
	}
	return pcm, nil
}

func writePCM(w io.Writer, pcm []int16) error {
	buf := make([]byte, 2*len(pcm))
	for i, s := range pcm {
		binary.LittleEndian.PutUint16(buf[2*i:], uint16(s))
	}
	_, err := w.Write(buf)
	return err
}
