// Command mpsimd serves the co-simulation framework as a long-running
// HTTP service: POST sweep jobs, poll their status, fetch artifacts.
// Results and warm-boot snapshots persist in a content-addressed store
// directory, so repeated sweeps — across restarts and across daemons
// sharing the store — are answered without simulating. See
// docs/SERVICE.md for the API.
//
// Usage:
//
//	mpsimd [-addr :8080] [-store DIR] [-sim-workers N] [-queue N]
//	       [-job-timeout 10m] [-log-json]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mpsimd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "mpsimd-store", "result/snapshot store directory")
	workers := flag.Int("sim-workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded backlog of unstarted simulations")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "default per-job timeout")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON")
	flag.Parse()

	var h slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(h)

	store, err := service.OpenStore(*storeDir)
	if err != nil {
		return err
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	srv, err := service.New(service.Config{
		Store:      store,
		Workers:    *workers,
		Queue:      *queue,
		JobTimeout: *jobTimeout,
		Logger:     log,
	})
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM: stop accepting, cancel in-flight jobs, exit
	// cleanly. A second signal kills the process the hard way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("mpsimd listening", "addr", *addr, "store", *storeDir,
		"sim_workers", *workers, "queue", *queue)

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
		log.Info("shutting down", "reason", "signal")
	}
	stop() // restore default handling: a second signal terminates immediately

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "err", err)
	}
	srv.Close()
	log.Info("mpsimd stopped")
	return nil
}
