// Command mpsim is the co-simulation driver: it builds an MPSoC from
// command-line flags (masters × interconnect × shared memories), runs a
// workload, and prints the activity statistics of every component.
//
// Examples:
//
//	mpsim -isses 4 -memories 4 -workload gsm -frames 20
//	mpsim -isses 2 -memories 1 -workload traffic -iters 100
//	mpsim -pes 1 -memories 2 -workload trace -events 5000 -memkind heapsim
//	mpsim -isses 1 -memories 1 -workload gsm -frames 1 -vcd wave.vcd
//	mpsim -isses 2 -memkind dram -l2 -partition ucp -workload sweep -split -depth 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/alloc"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mpsim:", err)
		os.Exit(1)
	}
}

// ctxChunk is the cycle granularity at which the simulation loop checks
// for SIGINT/SIGTERM. Fixed so interruptible runs stay deterministic —
// see the matching constant in internal/experiments.
const ctxChunk = 65536

// runCtx is Kernel.Run in ctxChunk slices, aborting with ctx.Err() at
// the first boundary after a signal.
func runCtx(ctx context.Context, k *sim.Kernel, n uint64) error {
	for done := uint64(0); done < n; {
		if err := ctx.Err(); err != nil {
			return err
		}
		budget := n - done
		if budget > ctxChunk {
			budget = ctxChunk
		}
		if err := k.Run(budget); err != nil {
			return err
		}
		done += budget
	}
	return nil
}

// runUntilCtx is Kernel.RunUntil in ctxChunk slices with the same
// cancellation behavior.
func runUntilCtx(ctx context.Context, k *sim.Kernel, pred func() bool, limit uint64) error {
	for done := uint64(0); done < limit; {
		if err := ctx.Err(); err != nil {
			return err
		}
		budget := limit - done
		if budget > ctxChunk {
			budget = ctxChunk
		}
		adv, err := k.RunUntil(pred, budget)
		done += adv
		if err == nil {
			return nil
		}
		if err != sim.ErrLimit {
			return err
		}
	}
	return sim.ErrLimit
}

func run() error {
	var (
		isses    = flag.Int("isses", 0, "number of ISS masters (armlet CPUs)")
		pes      = flag.Int("pes", 0, "number of native PE masters (trace replay)")
		memories = flag.Int("memories", 1, "number of shared memory modules")
		memkind  = flag.String("memkind", "wrapper", "memory model: wrapper | static | heapsim | dram")
		inter    = flag.String("interconnect", "bus", "interconnect: bus | crossbar")
		wl       = flag.String("workload", "gsm", "workload: gsm | traffic | sweep | trace (sweep is the scalar cacheable sweep for flat memories: static, dram)")
		frames   = flag.Int("frames", 10, "gsm: frames per ISS")
		iters    = flag.Int("iters", 50, "traffic: iterations per ISS")
		events   = flag.Int("events", 10000, "trace: events per PE")
		seed     = flag.Int64("seed", 1, "workload seed")
		vcdPath  = flag.String("vcd", "", "write a VCD waveform of the interconnect handshake")
		profile  = flag.Bool("profile", false, "report host time per module (explains simulation-speed degradation)")
		lockstep = flag.Bool("lockstep", false, "pin the kernel to lockstep stepping (default: event-driven idle-skip)")
		workers  = flag.Int("workers", 1, "tick-phase parallelism: modules sharded across this many concurrent workers (0 = GOMAXPROCS, 1 = sequential)")
		policy   = flag.String("alloc", "default", "allocation policy: default | first-fit | best-fit | buddy | segregated (heapsim metadata allocator / wrapper virtual placement)")
		depth    = flag.Int("depth", 1, "per-port outstanding-transaction depth (credit pool; 1 = classic single-outstanding)")
		split    = flag.Bool("split", false, "split-transaction interconnect: address phase releases the bus, responses re-arbitrate")
		ooo      = flag.Bool("ooo", false, "deliver completions out of order (default: in issue order)")
		cacheOn  = flag.Bool("cache", false, "front every master with a private write-back L1 cache (MESI-snooped when -coherent)")
		coherent = flag.Bool("coherent", true, "attach the L1s to a MESI snoop domain (only meaningful with -cache)")
		l1sets   = flag.Int("l1sets", 0, "L1 sets (0 = default 64)")
		l1ways   = flag.Int("l1ways", 0, "L1 ways (0 = default 2)")
		l1line   = flag.Uint("l1line", 0, "L1 line size in bytes (0 = default 32)")
		mshrs    = flag.Int("mshrs", 0, "L1 miss-status-holding registers (0 = default 4)")
		l2on     = flag.Bool("l2", false, "interpose a shared inclusive L2 between interconnect and memory (implies -cache -coherent)")
		l2sets   = flag.Int("l2sets", 0, "L2 sets (0 = default 64)")
		l2ways   = flag.Int("l2ways", 0, "L2 ways (0 = default 8)")
		l2line   = flag.Uint("l2line", 0, "L2 line size in bytes (0 = default 64)")
		l2mshrs  = flag.Int("l2mshrs", 0, "L2 miss-status-holding registers (0 = default 8)")
		partit   = flag.String("partition", "none", "L2 way partitioning: none | swp | ucp")
		ucpPer   = flag.Uint64("ucp-period", 0, "demand accesses between UCP repartitions (0 = default)")
		dbanks   = flag.Int("dram-banks", 0, "DRAM banks (0 = default 8)")
		drow     = flag.Uint("dram-rowbytes", 0, "DRAM row-buffer bytes per bank (0 = default 1024)")
		dclose   = flag.Bool("dram-close-page", false, "DRAM close-page policy (default: open-page row buffers)")
		drefp    = flag.Uint64("dram-refresh-period", 0, "cycles between DRAM refresh epochs (0 = refresh off)")
		drefc    = flag.Uint("dram-refresh-cycles", 0, "cycles a bank stalls per refresh epoch")
		limit    = flag.Uint64("limit", 2_000_000_000, "cycle budget")
		ckpt     = flag.Uint64("checkpoint", 0, "write a snapshot after this many cycles, then keep running")
		ckptFile = flag.String("checkpoint-file", "mpsim.snap", "path the -checkpoint snapshot is written to")
		restore  = flag.String("restore", "", "resume from a snapshot file instead of starting at cycle 0 (ISS workloads only; scheduler flags may differ from the saving run)")
		cpuprof  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	// SIGINT/SIGTERM cancel the simulation at the next chunk boundary;
	// run() then returns through its defers, so -cpuprofile/-memprofile
	// (and any -vcd waveform) flush even on Ctrl-C. A second signal
	// kills immediately.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mpsim:", err)
			}
		}()
	}

	if *isses == 0 && *pes == 0 {
		*isses = 4
	}
	if *isses > 0 && *pes > 0 {
		return fmt.Errorf("choose either -isses or -pes")
	}

	var kind config.MemKind
	switch *memkind {
	case "wrapper":
		kind = config.MemWrapper
	case "static":
		kind = config.MemStatic
	case "heapsim":
		kind = config.MemHeapSim
	case "dram":
		kind = config.MemDRAM
	default:
		return fmt.Errorf("unknown -memkind %q", *memkind)
	}
	var ic config.InterconnectKind
	switch *inter {
	case "bus":
		ic = config.InterBus
	case "crossbar":
		ic = config.InterCrossbar
	default:
		return fmt.Errorf("unknown -interconnect %q", *inter)
	}

	allocKind, err := alloc.ParseKind(*policy)
	if err != nil {
		return err
	}
	var part cache.PartitionKind
	switch *partit {
	case "none":
		part = cache.PartNone
	case "swp":
		part = cache.PartSWP
	case "ucp":
		part = cache.PartUCP
	default:
		return fmt.Errorf("unknown -partition %q", *partit)
	}
	if *l2on {
		// The L2's inclusion machinery back-invalidates L1 lines through
		// the MESI domain, so an L2 always implies coherent L1s.
		*cacheOn, *coherent = true, true
	}

	masters := *isses + *pes
	cfg := config.SystemConfig{
		Masters: masters, Memories: *memories, MemKind: kind, Interconnect: ic,
		AllocPolicy: allocKind, Lockstep: *lockstep, Workers: *workers,
		OutstandingDepth: *depth, SplitBus: *split, OutOfOrder: *ooo,
		Cache: *cacheOn, Coherent: *cacheOn && *coherent,
		CacheSets: *l1sets, CacheWays: *l1ways, CacheLineBytes: uint32(*l1line), CacheMSHRs: *mshrs,
		L2: *l2on, L2Sets: *l2sets, L2Ways: *l2ways, L2LineBytes: uint32(*l2line), L2MSHRs: *l2mshrs,
		Partition: part, UCPPeriod: *ucpPer,
		DRAMBanks: *dbanks, DRAMRowBytes: uint32(*drow), DRAMClosePage: *dclose,
		DRAMRefreshPeriod: *drefp, DRAMRefreshCycles: uint32(*drefc),
	}
	var sys *config.System
	if *restore != "" {
		// Resume: the snapshot carries the programs and all state; the
		// flags must describe a state-compatible system (scheduler knobs
		// may differ — that is the warm-boot contract, see docs/SNAPSHOT.md).
		data, rerr := os.ReadFile(*restore)
		if rerr != nil {
			return rerr
		}
		sys, err = config.RestoreSystem(cfg, data)
		if err != nil {
			return fmt.Errorf("restore %s: %w", *restore, err)
		}
		fmt.Printf("mpsim: restored %s (%d KiB) at cycle %d\n", *restore, len(data)/1024, sys.Kernel.Cycle())
	} else {
		sys, err = config.Build(cfg)
		if err != nil {
			return err
		}
	}

	// Run header: every number printed below is attributable to this
	// scheduler configuration.
	schedMode := "event-driven"
	if *lockstep {
		schedMode = "lockstep"
	}
	proto := "occupied"
	if *split {
		proto = "split"
	}
	order := "in-order"
	if *ooo {
		order = "out-of-order"
	}
	cacheDesc := "uncached"
	if len(sys.Caches) > 0 {
		coh := "private"
		if sys.Domain != nil {
			coh = "MESI-coherent"
		}
		cacheDesc = fmt.Sprintf("%s L1 ×%d (%dB lines)", coh, len(sys.Caches), sys.Caches[0].LineBytes())
	}
	if sys.L2 != nil {
		cacheDesc += fmt.Sprintf(" + shared inclusive L2 (%s partitioning)", *partit)
	}
	if kind == config.MemDRAM {
		page := "open-page"
		if *dclose {
			page = "close-page"
		}
		cacheDesc += fmt.Sprintf("; banked DRAM (%s)", page)
	}
	fmt.Printf("mpsim: %d masters × %s × %d %s memories (alloc %s); %s; %s protocol × depth=%d × %s; scheduler %s × workers=%d (host GOMAXPROCS %d, NumCPU %d)\n\n",
		masters, ic, *memories, kind, allocKind, cacheDesc, proto, *depth, order, schedMode, sys.Kernel.Workers(), runtime.GOMAXPROCS(0), runtime.NumCPU())

	var doneFn func() bool
	switch {
	case *restore != "":
		if len(sys.CPUs) == 0 {
			return fmt.Errorf("restored snapshot has no CPUs to run")
		}
		doneFn = sys.CPUsHalted
	case *isses > 0:
		var progs [][]byte
		for i := 0; i < *isses; i++ {
			var src string
			switch *wl {
			case "gsm":
				src = workload.GSMKernelSource(workload.GSMKernelConfig{
					Frames: *frames, SM: i % *memories, Seed: uint32(*seed) + uint32(i),
				})
			case "traffic":
				src = workload.TrafficKernelSource(workload.TrafficKernelConfig{
					Iterations: *iters, SM: i % *memories,
				})
			case "sweep":
				// Interleaved word ranges: ISS i owns words i, i+n, i+2n, …
				// — neighbouring ISSs falsely share every cache line.
				src = workload.SweepKernelSource(workload.SweepKernelConfig{
					Iterations: *iters, SM: i % *memories,
					Base: 4 * i, Stride: 4 * *isses, Words: 64,
					Seed: uint32(*seed) + uint32(16*(i+1)),
				})
			default:
				return fmt.Errorf("workload %q needs -pes masters", *wl)
			}
			p, err := isa.Assemble(src)
			if err != nil {
				return fmt.Errorf("assemble iss %d: %w", i, err)
			}
			progs = append(progs, p.Code)
		}
		if err := sys.AddCPUs(progs...); err != nil {
			return err
		}
		doneFn = sys.CPUsHalted
	default:
		if *wl != "trace" {
			return fmt.Errorf("workload %q needs -isses masters", *wl)
		}
		mode := trace.ModeDynamic
		if kind == config.MemStatic || kind == config.MemDRAM {
			mode = trace.ModeStatic
		}
		for i := 0; i < *pes; i++ {
			tr := trace.Generate(trace.GenConfig{
				Seed: *seed + int64(i), Events: *events, Slots: 16, NumSM: *memories,
				MinDim: 4, MaxDim: 128, DType: bus.U32, Mix: trace.DefaultMix(), PtrArithPct: 20,
			})
			if err := sys.AddProcs(trace.ReplayTask(tr, mode, nil)); err != nil {
				return err
			}
		}
		doneFn = sys.ProcsDone
	}

	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		vcd := sim.NewVCD(f, "1ns")
		for i, w := range sys.Wrappers {
			w := w
			vcd.AddVar("mem", fmt.Sprintf("%s_live", w.Name()), 16, func() uint64 {
				return uint64(w.Table().Len())
			})
			_ = i
		}
		st := func() uint64 { return sys.Inter.Stats().Transactions }
		vcd.AddVar("bus", "transactions", 32, st)
		sys.Kernel.AfterCycle(vcd.Sample)
		defer vcd.Flush()
	}

	if *profile {
		sys.Kernel.EnableProfiling()
	}
	if *ckpt > 0 {
		if err := runCtx(ctx, sys.Kernel, *ckpt); err != nil {
			return fmt.Errorf("checkpoint warm-up: %w", err)
		}
		data, err := sys.Snapshot()
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		if err := os.WriteFile(*ckptFile, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("mpsim: checkpoint at cycle %d: wrote %d KiB to %s\n",
			sys.Kernel.Cycle(), len(data)/1024, *ckptFile)
	}
	startCycle := sys.Kernel.Cycle()
	start := time.Now()
	if err := runUntilCtx(ctx, sys.Kernel, doneFn, *limit); err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("interrupted at cycle %d (profiles flushed)", sys.Kernel.Cycle())
		}
		return fmt.Errorf("simulation: %w", err)
	}
	wall := time.Since(start)
	cycles := sys.Kernel.Cycle() - startCycle

	sched := sys.Kernel.Sched()
	mode := "event-driven"
	if sched.Lockstep {
		mode = "lockstep"
	}
	fmt.Printf("simulated %d cycles in %v (%s cycles/s; %s scheduler × workers=%d, %d cycles skipped in %d spans)\n\n",
		cycles, wall.Round(time.Millisecond), stats.SI(stats.Rate(cycles, wall)),
		mode, sched.Workers, sched.Skipped, sched.Spans)

	for i, cpu := range sys.CPUs {
		fmt.Printf("iss%d: exit=%#x instructions=%d stall-cycles=%d\n",
			i, cpu.ExitCode(), cpu.Icount, cpu.StallCycles)
		if out := cpu.Console(); out != "" {
			fmt.Printf("iss%d console: %q\n", i, out)
		}
	}
	if len(sys.CPUs) > 0 {
		fmt.Println()
	}

	ist := sys.Inter.Stats()
	it := stats.NewTable("interconnect", "metric", "value")
	it.Add("transactions", fmt.Sprint(ist.Transactions))
	it.Add("words moved", fmt.Sprint(ist.Words))
	it.Add("busy cycles", fmt.Sprint(ist.BusyCycles))
	it.Add("bad sm_addr", fmt.Sprint(ist.NoSlave))
	fmt.Println(it)

	mt := stats.NewTable("memories", "module", "allocs", "frees", "reads", "writes", "bursts", "errors")
	for _, w := range sys.Wrappers {
		st := w.Stats()
		var errs uint64
		for _, e := range st.Errors {
			errs += e
		}
		mt.Add(w.Name(), fmt.Sprint(st.Ops[bus.OpAlloc]), fmt.Sprint(st.Ops[bus.OpFree]),
			fmt.Sprint(st.Ops[bus.OpRead]), fmt.Sprint(st.Ops[bus.OpWrite]),
			fmt.Sprint(st.Ops[bus.OpReadBurst]+st.Ops[bus.OpWriteBurst]), fmt.Sprint(errs))
	}
	for _, r := range sys.Statics {
		st := r.Stats()
		var errs uint64
		for _, e := range st.Errors {
			errs += e
		}
		mt.Add(r.Name(), "-", "-", fmt.Sprint(st.Ops[bus.OpRead]), fmt.Sprint(st.Ops[bus.OpWrite]),
			fmt.Sprint(st.Ops[bus.OpReadBurst]+st.Ops[bus.OpWriteBurst]), fmt.Sprint(errs))
	}
	for _, h := range sys.Heaps {
		st := h.Stats()
		var errs uint64
		for _, e := range st.Errors {
			errs += e
		}
		mt.Add(h.Name(), fmt.Sprint(st.Ops[bus.OpAlloc]), fmt.Sprint(st.Ops[bus.OpFree]),
			fmt.Sprint(st.Ops[bus.OpRead]), fmt.Sprint(st.Ops[bus.OpWrite]),
			fmt.Sprint(st.Ops[bus.OpReadBurst]+st.Ops[bus.OpWriteBurst]), fmt.Sprint(errs))
	}
	for _, d := range sys.DRAMs {
		st := d.Stats()
		var errs uint64
		for _, e := range st.Errors {
			errs += e
		}
		mt.Add(d.Name(), "-", "-", fmt.Sprint(st.Ops[bus.OpRead]), fmt.Sprint(st.Ops[bus.OpWrite]),
			fmt.Sprint(st.Ops[bus.OpReadBurst]+st.Ops[bus.OpWriteBurst]), fmt.Sprint(errs))
	}
	fmt.Println(mt)

	if len(sys.DRAMs) > 0 {
		dt := stats.NewTable("DRAM banks", "module", "row hits", "row misses", "row conflicts", "refresh stalls", "stall cycles")
		for _, d := range sys.DRAMs {
			st := d.Stats()
			dt.Add(d.Name(), fmt.Sprint(st.RowHits), fmt.Sprint(st.RowMisses),
				fmt.Sprint(st.RowConflicts), fmt.Sprint(st.RefreshStalls), fmt.Sprint(st.RefreshStallCycles))
		}
		fmt.Println(dt)
	}

	if len(sys.Caches) > 0 {
		ct := stats.NewTable("L1 caches", "cache", "hits", "misses", "hit rate", "refills", "writebacks", "snoop inv", "snoop flush", "bypassed")
		for _, c := range sys.Caches {
			st := c.Stats()
			ct.Add(c.Name(), fmt.Sprint(st.Hits), fmt.Sprint(st.Misses),
				fmt.Sprintf("%.1f%%", 100*st.HitRate()), fmt.Sprint(st.Refills),
				fmt.Sprint(st.Writebacks), fmt.Sprint(st.SnoopInvalidations),
				fmt.Sprint(st.SnoopFlushes), fmt.Sprint(st.Bypassed))
		}
		fmt.Println(ct)
	}

	if sys.L2 != nil {
		st := sys.L2.Stats()
		lt := stats.NewTable("shared L2", "metric", "value")
		lt.Add("hits", fmt.Sprint(st.Hits))
		lt.Add("misses", fmt.Sprint(st.Misses))
		lt.Add("hit rate", fmt.Sprintf("%.1f%%", 100*st.HitRate()))
		lt.Add("refills", fmt.Sprint(st.Refills))
		lt.Add("writebacks", fmt.Sprint(st.Writebacks))
		lt.Add("back-invalidations", fmt.Sprint(st.BackInvalidations))
		lt.Add("dirty merges", fmt.Sprint(st.DirtyMerges))
		lt.Add("repartitions", fmt.Sprint(st.Repartitions))
		lt.Add("bypassed", fmt.Sprint(st.Bypassed))
		fmt.Println(lt)
	}

	if *profile {
		var total time.Duration
		rep := sys.Kernel.ProfileReport()
		for _, r := range rep {
			total += r.Time
		}
		pt := stats.NewTable("host time per module (profiled run)", "module", "time", "share")
		for _, r := range rep {
			pt.Add(r.Name, r.Time.Round(time.Microsecond).String(),
				fmt.Sprintf("%.1f%%", 100*float64(r.Time)/float64(total)))
		}
		fmt.Println(pt)
	}
	return nil
}
