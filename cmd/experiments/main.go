// Command experiments regenerates every table and figure of the
// reproduction (see DESIGN.md §5 and EXPERIMENTS.md). Without flags it
// runs the full suite; -run selects specific experiments and -quick
// shrinks workloads for a fast smoke pass.
//
// Usage:
//
//	experiments [-quick] [-run e1,e2,a2] [-workers n] [-alloc buddy]
//	experiments -run wb -checkpoint warm.snap   # persist the warm-up snapshot
//	experiments -run wb -restore warm.snap      # sweep from a saved snapshot
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/alloc"
	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/stats"
)

// profiles owns the pprof lifecycle so that every exit path — flag
// errors, failed experiments, clean completion — flushes through the
// same helper instead of special-casing deferred cleanup around
// os.Exit (which skips defers).
type profiles struct {
	cpuFile *os.File
	memPath string
}

func (p *profiles) startCPU(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// exit flushes any active profiles and terminates with code; a failed
// heap-profile write turns a clean exit into a failing one.
func (p *profiles) exit(code int) {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err == nil {
			runtime.GC()
			err = pprof.WriteHeapProfile(f)
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	run := flag.String("run", "all", "comma-separated experiment ids (e1,e1b,e2,e3,e4,e5,e6,e7,e8,e9,e10,e11,e12,ev,par,wb,a1,a2) or 'all'")
	lockstep := flag.Bool("lockstep", false, "pin every measured kernel to lockstep stepping (EV always compares both)")
	workers := flag.Int("workers", 1, "tick-phase parallelism for every measured kernel (0 = GOMAXPROCS, 1 = sequential; PAR sweeps its own counts)")
	allocFlag := flag.String("alloc", "default", "allocation policy for every measured memory: default | first-fit | best-fit | buddy | segregated (E9 sweeps all)")
	depth := flag.Int("depth", 1, "per-port outstanding-transaction depth for every measured system (E10 sweeps its own depths)")
	split := flag.Bool("split", false, "run every measured interconnect in split-transaction mode (E10 sweeps both protocols)")
	ooo := flag.Bool("ooo", false, "deliver completions out of order on every measured master port (default: in issue order)")
	cacheOn := flag.Bool("cache", false, "front every measured master with a coherent private L1 cache (E11 sweeps cached vs uncached)")
	l2On := flag.Bool("l2", false, "interpose the shared inclusive L2 on every measured cacheable system (E12 sweeps its partition policies)")
	partit := flag.String("partition", "none", "L2 way partitioning with -l2: none | swp | ucp")
	dram := flag.Bool("dram", false, "swap flat static memories for the banked DRAM timing model (E12 sweeps static vs DRAM)")
	closePage := flag.Bool("close-page", false, "DRAM close-page row policy with -dram (default: open-page)")
	checkpoint := flag.String("checkpoint", "", "wb: write the shared warm-up snapshot to this file")
	restore := flag.String("restore", "", "wb: restore the shared warm-up snapshot from this file instead of simulating the warm-up")
	cpuprof := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprof := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	serve := flag.Bool("serve", false, "serve the simulation job API instead of running the suite (thin mpsimd mode)")
	addr := flag.String("addr", ":8080", "-serve: listen address")
	storeDir := flag.String("store", "mpsimd-store", "-serve: result/snapshot store directory")
	flag.Parse()
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	// SIGINT/SIGTERM cancel in-flight runs through the context; the
	// suite then exits through prof.exit, so -cpuprofile/-memprofile
	// flush even on Ctrl-C. A second signal kills immediately (default
	// disposition restored once the first one fires).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	if *serve {
		if err := serveAPI(ctx, *addr, *storeDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	prof := &profiles{memPath: *memprof}
	policy, err := alloc.ParseKind(*allocFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		prof.exit(2)
	}
	if *cpuprof != "" {
		if err := prof.startCPU(*cpuprof); err != nil {
			fmt.Fprintln(os.Stderr, err)
			prof.exit(2)
		}
	}

	var part cache.PartitionKind
	switch *partit {
	case "none":
		part = cache.PartNone
	case "swp":
		part = cache.PartSWP
	case "ucp":
		part = cache.PartUCP
	default:
		fmt.Fprintf(os.Stderr, "unknown -partition %q\n", *partit)
		prof.exit(2)
	}

	opts := experiments.Options{Quick: *quick, Lockstep: *lockstep, Workers: *workers,
		Alloc: policy, Depth: *depth, Split: *split, OOO: *ooo, Cache: *cacheOn,
		L2: *l2On, Partition: part, DRAM: *dram, ClosePage: *closePage,
		Checkpoint: *checkpoint, Restore: *restore, Ctx: ctx}

	// Run header: the tables below are attributable to this scheduler
	// configuration — including the completion-delivery order, so the
	// header reports the full port configuration mpsim prints.
	mode := "event-driven"
	if *lockstep {
		mode = "lockstep"
	}
	proto := "occupied"
	if *split {
		proto = "split"
	}
	order := "in-order"
	if *ooo {
		order = "out-of-order"
	}
	caches := "uncached"
	if *cacheOn {
		caches = "coherent L1"
	}
	if *l2On {
		caches = fmt.Sprintf("coherent L1 + shared L2 (%s partitioning)", *partit)
	}
	if *dram {
		page := "open-page"
		if *closePage {
			page = "close-page"
		}
		caches += fmt.Sprintf(" × %s DRAM", page)
	}
	fmt.Printf("experiments: scheduler %s × workers=%d × alloc=%s × port depth=%d × %s protocol × %s × %s (host GOMAXPROCS %d, NumCPU %d)\n\n",
		mode, *workers, policy, *depth, proto, order, caches, runtime.GOMAXPROCS(0), runtime.NumCPU())
	selected := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		selected[strings.TrimSpace(strings.ToLower(id))] = true
	}
	want := func(id string) bool { return selected["all"] || selected[id] }

	type exp struct {
		id  string
		run func(experiments.Options) ([]*stats.Table, error)
	}
	one := func(f func(experiments.Options) (*stats.Table, error)) func(experiments.Options) ([]*stats.Table, error) {
		return func(o experiments.Options) ([]*stats.Table, error) {
			t, err := f(o)
			if err != nil {
				return nil, err
			}
			return []*stats.Table{t}, nil
		}
	}
	suite := []exp{
		{"e1", one(experiments.E1)},
		{"e1b", one(experiments.E1b)},
		{"e2", one(experiments.E2)},
		{"e3", one(experiments.E3)},
		{"e4", experiments.E4},
		{"e5", experiments.E5},
		{"e6", one(experiments.E6)},
		{"e7", one(experiments.E7)},
		{"e8", one(experiments.E8)},
		{"e9", one(experiments.E9)},
		{"e10", one(experiments.E10)},
		{"e11", one(experiments.E11)},
		{"e12", one(experiments.E12)},
		{"ev", one(experiments.EV)},
		{"par", one(experiments.PAR)},
		{"wb", one(experiments.WB)},
		{"a1", one(experiments.A1)},
		{"a2", one(experiments.A2)},
	}

	failed := false
	for _, e := range suite {
		if !want(e.id) {
			continue
		}
		tables, err := e.run(opts)
		if err != nil {
			if errors.Is(err, context.Canceled) || ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "%s: interrupted; flushing profiles\n", e.id)
				prof.exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			failed = true
			continue
		}
		for _, t := range tables {
			fmt.Println(t)
		}
	}
	if failed {
		prof.exit(1)
	}
	prof.exit(0)
}

// serveAPI is the thin -serve mode: the same service cmd/mpsimd runs,
// on the experiments binary, until ctx (the signal context) fires.
func serveAPI(ctx context.Context, addr, storeDir string) error {
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	store, err := service.OpenStore(storeDir)
	if err != nil {
		return err
	}
	srv, err := service.New(service.Config{Store: store, Logger: log})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("experiments -serve listening", "addr", addr, "store", storeDir)
	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "err", err)
	}
	srv.Close()
	return nil
}
