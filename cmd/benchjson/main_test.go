package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkE1_FourISS_OneMem-4         	       1	182090315 ns/op	  85801 simcycles/s
BenchmarkPAR_FourISS_FourMem/workers=4-8 	       2	 91000000 ns/op	1.72e+05 simcycles/s
BenchmarkMicro_Assemble            	     100	   1203450 ns/op
PASS
ok  	repro	2.412s
`

func TestParse(t *testing.T) {
	rows, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	r := rows[0]
	if r.Name != "BenchmarkE1_FourISS_OneMem" || r.CPUs != 4 || r.Iterations != 1 {
		t.Fatalf("row 0 = %+v", r)
	}
	if r.SimCyclesPerS == nil || *r.SimCyclesPerS != 85801 {
		t.Fatalf("row 0 simcycles = %v", r.SimCyclesPerS)
	}
	sub := rows[1]
	if sub.Name != "BenchmarkPAR_FourISS_FourMem/workers=4" || sub.CPUs != 8 {
		t.Fatalf("row 1 = %+v", sub)
	}
	if sub.SimCyclesPerS == nil || *sub.SimCyclesPerS != 1.72e+05 {
		t.Fatalf("row 1 simcycles = %v", sub.SimCyclesPerS)
	}
	if rows[2].SimCyclesPerS != nil {
		t.Fatalf("row 2 should have no simcycles metric: %+v", rows[2])
	}
	if rows[2].NsPerOp != 1203450 {
		t.Fatalf("row 2 ns/op = %v", rows[2].NsPerOp)
	}
}

func TestParseEmpty(t *testing.T) {
	rows, err := parse(strings.NewReader("PASS\nok repro 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(rows))
	}
}
