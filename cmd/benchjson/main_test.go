package main

import (
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkE1_FourISS_OneMem-4         	       1	182090315 ns/op	  85801 simcycles/s
BenchmarkPAR_FourISS_FourMem/workers=4-8 	       2	 91000000 ns/op	1.72e+05 simcycles/s
BenchmarkMicro_Assemble            	     100	   1203450 ns/op
PASS
ok  	repro	2.412s
`

func TestParse(t *testing.T) {
	rows, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	r := rows[0]
	if r.Name != "BenchmarkE1_FourISS_OneMem" || r.CPUs != 4 || r.Iterations != 1 {
		t.Fatalf("row 0 = %+v", r)
	}
	if r.SimCyclesPerS == nil || *r.SimCyclesPerS != 85801 {
		t.Fatalf("row 0 simcycles = %v", r.SimCyclesPerS)
	}
	sub := rows[1]
	if sub.Name != "BenchmarkPAR_FourISS_FourMem/workers=4" || sub.CPUs != 8 {
		t.Fatalf("row 1 = %+v", sub)
	}
	if sub.SimCyclesPerS == nil || *sub.SimCyclesPerS != 1.72e+05 {
		t.Fatalf("row 1 simcycles = %v", sub.SimCyclesPerS)
	}
	if rows[2].SimCyclesPerS != nil {
		t.Fatalf("row 2 should have no simcycles metric: %+v", rows[2])
	}
	if rows[2].NsPerOp != 1203450 {
		t.Fatalf("row 2 ns/op = %v", rows[2].NsPerOp)
	}
}

func TestParseEmpty(t *testing.T) {
	rows, err := parse(strings.NewReader("PASS\nok repro 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(rows))
	}
}

func fp(v float64) *float64 { return &v }

func TestCheckBaseline(t *testing.T) {
	baseline := []Row{
		{Name: "BenchmarkE1_FourISS_OneMem", SimCyclesPerS: fp(1000)},
		{Name: "BenchmarkE1_FourISS_FourMem", SimCyclesPerS: fp(2000)},
		{Name: "BenchmarkEV_EventDriven", SimCyclesPerS: fp(5000)},
		{Name: "BenchmarkAlloc/policy=buddy"}, // no metric
	}
	rows := []Row{
		{Name: "BenchmarkE1_FourISS_OneMem", SimCyclesPerS: fp(850)},   // -15%: within band
		{Name: "BenchmarkE1_FourISS_FourMem", SimCyclesPerS: fp(1500)}, // -25%: regression
		{Name: "BenchmarkEV_EventDriven", SimCyclesPerS: fp(100)},      // outside prefix
		{Name: "BenchmarkE1_NewBench", SimCyclesPerS: fp(1)},           // not in baseline
		{Name: "BenchmarkAlloc/policy=buddy"},
	}
	regs := checkBaseline(baseline, rows, "BenchmarkE1_", 0.20)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the FourMem row", regs)
	}
	if regs[0].Name != "BenchmarkE1_FourISS_FourMem (simcycles/s)" || regs[0].Base != 2000 || regs[0].New != 1500 {
		t.Fatalf("regression = %+v", regs[0])
	}
	// Widening the band clears it.
	if regs := checkBaseline(baseline, rows, "BenchmarkE1_", 0.30); len(regs) != 0 {
		t.Fatalf("30%% band should pass, got %+v", regs)
	}
	// Improvements never trip the gate.
	if regs := checkBaseline(baseline, []Row{{Name: "BenchmarkE1_FourISS_OneMem", SimCyclesPerS: fp(9000)}}, "BenchmarkE1_", 0.20); len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}
}

func TestCheckBaselineSimCycles(t *testing.T) {
	// The deterministic simulated-cycle metric gates every row that
	// carries it, independent of the name prefix and of host speed.
	baseline := []Row{
		{Name: "BenchmarkMLP/bus/split/depth=4", SimCycles: fp(19652), SimCyclesPerS: fp(1000)},
		{Name: "BenchmarkMLP/xbar/split/depth=4", SimCycles: fp(4784)},
	}
	rows := []Row{
		// Host 10x slower (simcycles/s outside prefix, ignored) but the
		// protocol got worse: +30% simulated cycles → regression.
		{Name: "BenchmarkMLP/bus/split/depth=4", SimCycles: fp(25548), SimCyclesPerS: fp(100)},
		// Within the band: fine.
		{Name: "BenchmarkMLP/xbar/split/depth=4", SimCycles: fp(5000)},
	}
	regs := checkBaseline(baseline, rows, "BenchmarkE1_", 0.20)
	if len(regs) != 1 || regs[0].Name != "BenchmarkMLP/bus/split/depth=4 (simcycles)" {
		t.Fatalf("regressions = %+v, want exactly the bus simcycles row", regs)
	}
	// Fewer simulated cycles is an improvement, never a regression.
	better := []Row{{Name: "BenchmarkMLP/xbar/split/depth=4", SimCycles: fp(1000)}}
	if regs := checkBaseline(baseline, better, "BenchmarkE1_", 0.20); len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}
}

func TestParseSimCyclesMetric(t *testing.T) {
	const line = `BenchmarkMLP/bus/split/depth=4 	       3	   1290514 ns/op	     19652 simcycles	  15232664 simcycles/s
`
	rows, err := parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].SimCycles == nil || *rows[0].SimCycles != 19652 {
		t.Fatalf("SimCycles = %v", rows[0].SimCycles)
	}
	if rows[0].SimCyclesPerS == nil || *rows[0].SimCyclesPerS != 15232664 {
		t.Fatalf("SimCyclesPerS = %v", rows[0].SimCyclesPerS)
	}
	// A row with only the rate metric must not grow a SimCycles field.
	rate, err := parse(strings.NewReader("BenchmarkE1_X \t 1\t 10 ns/op\t 99 simcycles/s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rate[0].SimCycles != nil {
		t.Fatalf("rate-only row got SimCycles %v", *rate[0].SimCycles)
	}
}

func TestSpeedup(t *testing.T) {
	rows := []Row{
		{Name: "BenchmarkPAR_FourISS_FourMem/workers=1", NsPerOp: 400e6},
		{Name: "BenchmarkPAR_FourISS_FourMem/workers=2", NsPerOp: 220e6},
		{Name: "BenchmarkPAR_FourISS_FourMem/workers=4", NsPerOp: 100e6},
		{Name: "BenchmarkPAR_FourISS_FourMem/workers=8", NsPerOp: 110e6},
	}
	ratio, nr, dr, err := speedup(rows, "workers=4", "workers=1")
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 4.0 {
		t.Fatalf("ratio = %v, want 4.0", ratio)
	}
	if nr.Name != "BenchmarkPAR_FourISS_FourMem/workers=4" || dr.Name != "BenchmarkPAR_FourISS_FourMem/workers=1" {
		t.Fatalf("selected rows %q / %q", nr.Name, dr.Name)
	}
	// A slowdown yields a ratio below 1, never an error: the gate decides.
	if ratio, _, _, err := speedup(rows, "workers=1", "workers=4"); err != nil || ratio != 0.25 {
		t.Fatalf("inverse ratio = %v, %v", ratio, err)
	}
}

func TestSpeedupSelectionErrors(t *testing.T) {
	rows := []Row{
		{Name: "BenchmarkPAR_FourISS_FourMem/workers=1", NsPerOp: 400e6},
		{Name: "BenchmarkPAR_FourISS_OneMem/workers=1", NsPerOp: 500e6},
		{Name: "BenchmarkPAR_FourISS_FourMem/workers=4", NsPerOp: 100e6},
	}
	// "workers=1" matches both PAR families: ambiguous.
	if _, _, _, err := speedup(rows, "workers=4", "workers=1"); err == nil || !strings.Contains(err.Error(), "2 benchmark rows match") {
		t.Fatalf("ambiguous denominator not rejected: %v", err)
	}
	// Longer substrings disambiguate.
	ratio, _, _, err := speedup(rows, "FourMem/workers=4", "FourMem/workers=1")
	if err != nil || ratio != 4.0 {
		t.Fatalf("disambiguated ratio = %v, %v", ratio, err)
	}
	// A missing row is an error, not a silent pass.
	if _, _, _, err := speedup(rows, "workers=16", "FourMem/workers=1"); err == nil || !strings.Contains(err.Error(), "no benchmark row") {
		t.Fatalf("missing numerator not rejected: %v", err)
	}
	// Zero ns/op (malformed input) must not divide through.
	bad := []Row{{Name: "a/workers=4"}, {Name: "a/workers=1", NsPerOp: 10}}
	if _, _, _, err := speedup(bad, "workers=4", "workers=1"); err == nil {
		t.Fatal("zero ns/op numerator not rejected")
	}
}

func TestSpeedupEndToEnd(t *testing.T) {
	// Through run(): parse real bench text, gate on the ratio.
	const bench = `goos: linux
BenchmarkPAR_FourISS_FourMem/workers=1-4 	       2	 400000000 ns/op	  391107 simcycles/s
BenchmarkPAR_FourISS_FourMem/workers=4-4 	       6	 160000000 ns/op	  977769 simcycles/s
PASS
`
	dir := t.TempDir()
	in := dir + "/bench.txt"
	if err := os.WriteFile(in, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, dir+"/out.json", "", "BenchmarkE1_", 0.20, true, "workers=4", "workers=1", 2.0); err != nil {
		t.Fatalf("2.5x speedup failed a 2.0x gate: %v", err)
	}
	err := run(in, dir+"/out2.json", "", "BenchmarkE1_", 0.20, true, "workers=4", "workers=1", 3.0)
	if err == nil || !strings.Contains(err.Error(), "below required") {
		t.Fatalf("2.5x speedup passed a 3.0x gate: %v", err)
	}
	if err := run(in, dir+"/out3.json", "", "BenchmarkE1_", 0.20, true, "", "workers=1", 2.0); err == nil {
		t.Fatal("missing -num accepted")
	}
}
