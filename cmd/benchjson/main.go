// Command benchjson converts `go test -bench` output into a stable JSON
// array, so CI can track the performance trajectory without a Python
// dependency on the runners.
//
// Usage:
//
//	go test -run xxx -bench 'E1|EV|PAR' -benchtime=1x . | benchjson -out BENCH_e1.json
//	benchjson -in bench.txt
//
// Each benchmark line becomes one object:
//
//	{"name": "BenchmarkE1_FourISS_OneMem", "cpus": 4, "iterations": 1,
//	 "ns_per_op": 123456789, "simcycles_per_s": 1.23e+07}
//
// The trailing -N GOMAXPROCS suffix Go appends to benchmark names is
// split into the "cpus" field so baselines diff cleanly across hosts;
// "simcycles_per_s" (the suite's custom metric) is null for benchmarks
// that do not report it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// Row is one parsed benchmark result.
type Row struct {
	Name          string   `json:"name"`
	CPUs          int      `json:"cpus"`
	Iterations    int64    `json:"iterations"`
	NsPerOp       float64  `json:"ns_per_op"`
	SimCyclesPerS *float64 `json:"simcycles_per_s"`
}

// benchLine matches the standard testing output:
//
//	BenchmarkName[/sub][-N]   <iters>   <ns> ns/op  [<value> <unit> ...]
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+([0-9.eE+]+) ns/op(.*)$`)

// simCycles extracts the suite's custom metric from the trailing
// metrics, e.g. "   1.23e+07 simcycles/s".
var simCycles = regexp.MustCompile(`([0-9.eE+-]+) simcycles/s`)

// parse reads go-test bench output and returns one Row per result line.
func parse(r io.Reader) ([]Row, error) {
	rows := []Row{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		// The testing package omits the -N suffix when GOMAXPROCS is 1.
		row := Row{Name: m[1], CPUs: 1}
		if m[2] != "" {
			row.CPUs, _ = strconv.Atoi(m[2])
		}
		var err error
		if row.Iterations, err = strconv.ParseInt(m[3], 10, 64); err != nil {
			return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
		}
		if row.NsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
			return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
		}
		if sm := simCycles.FindStringSubmatch(m[5]); sm != nil {
			v, err := strconv.ParseFloat(sm[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
			}
			row.SimCyclesPerS = &v
		}
		rows = append(rows, row)
	}
	return rows, sc.Err()
}

func main() {
	in := flag.String("in", "", "bench output file (default: stdin)")
	out := flag.String("out", "", "JSON destination (default: stdout)")
	flag.Parse()

	if err := run(*in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in, out string) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rows, err := parse(r)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}
	buf, err := json.MarshalIndent(rows, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}
