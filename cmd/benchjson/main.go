// Command benchjson converts `go test -bench` output into a stable JSON
// array, so CI can track the performance trajectory without a Python
// dependency on the runners, and optionally gates a run against a
// committed baseline.
//
// Usage:
//
//	go test -run xxx -bench 'E1|EV|PAR' -benchtime=1x . | benchjson -out BENCH_e1.json
//	benchjson -in bench.txt
//	benchjson -in bench.txt -out new.json \
//	    -baseline BENCH_e1.json -check 'BenchmarkE1_' -max-regress 0.20
//	benchjson -in par.txt -speedup \
//	    -num 'FourISS_FourMem/workers=4' -den 'FourISS_FourMem/workers=1' \
//	    -min-ratio 2.0
//
// With -baseline, every parsed row whose name starts with the -check
// prefix and that also exists in the baseline with a simcycles/s metric
// is compared: if the new simulation speed fell more than -max-regress
// (a fraction; 0.20 = 20%) below the baseline's, benchjson exits 1 and
// lists the regressions — the CI guard against performance decay of the
// paper's headline metric.
//
// With -speedup, the run is gated on the ratio between two rows of the
// same output: the -num and -den substrings must each select exactly one
// parsed row (ambiguity is an error, so the gate cannot silently compare
// the wrong pair), the ratio is den ns/op ÷ num ns/op — how many times
// faster the numerator row is — and benchjson exits 1 if it falls below
// -min-ratio. This is how CI proves the parallel tick engine actually
// wins on a multi-core runner (workers=4 vs workers=1).
//
// Each benchmark line becomes one object:
//
//	{"name": "BenchmarkE1_FourISS_OneMem", "cpus": 4, "iterations": 1,
//	 "ns_per_op": 123456789, "simcycles_per_s": 1.23e+07}
//
// The trailing -N GOMAXPROCS suffix Go appends to benchmark names is
// split into the "cpus" field so baselines diff cleanly across hosts;
// "simcycles_per_s" (the suite's custom metric) is null for benchmarks
// that do not report it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Row is one parsed benchmark result.
type Row struct {
	Name          string   `json:"name"`
	CPUs          int      `json:"cpus"`
	Iterations    int64    `json:"iterations"`
	NsPerOp       float64  `json:"ns_per_op"`
	SimCyclesPerS *float64 `json:"simcycles_per_s"`
	// SimCycles is the deterministic simulated-cycle count some
	// benchmarks report (the MLP family). Unlike simcycles/s it is
	// host-independent, so the baseline gate treats any growth beyond
	// the band as a real protocol regression.
	SimCycles *float64 `json:"simcycles,omitempty"`
}

// benchLine matches the standard testing output:
//
//	BenchmarkName[/sub][-N]   <iters>   <ns> ns/op  [<value> <unit> ...]
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+([0-9.eE+]+) ns/op(.*)$`)

// simCycles extracts the suite's custom metric from the trailing
// metrics, e.g. "   1.23e+07 simcycles/s".
var simCycles = regexp.MustCompile(`([0-9.eE+-]+) simcycles/s`)

// simCyclesAbs extracts the deterministic simulated-cycle metric, e.g.
// "   19652 simcycles" (not followed by "/s").
var simCyclesAbs = regexp.MustCompile(`([0-9.eE+-]+) simcycles(?:$|\s)`)

// parse reads go-test bench output and returns one Row per result line.
func parse(r io.Reader) ([]Row, error) {
	rows := []Row{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		// The testing package omits the -N suffix when GOMAXPROCS is 1.
		row := Row{Name: m[1], CPUs: 1}
		if m[2] != "" {
			row.CPUs, _ = strconv.Atoi(m[2])
		}
		var err error
		if row.Iterations, err = strconv.ParseInt(m[3], 10, 64); err != nil {
			return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
		}
		if row.NsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
			return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
		}
		if sm := simCycles.FindStringSubmatch(m[5]); sm != nil {
			v, err := strconv.ParseFloat(sm[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
			}
			row.SimCyclesPerS = &v
		}
		if sm := simCyclesAbs.FindStringSubmatch(m[5]); sm != nil {
			v, err := strconv.ParseFloat(sm[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: %w", sc.Text(), err)
			}
			row.SimCycles = &v
		}
		rows = append(rows, row)
	}
	return rows, sc.Err()
}

// findRow returns the single parsed row whose name contains substr.
// Zero or several matches are errors: the speedup gate must never
// silently compare the wrong pair of rows.
func findRow(rows []Row, substr string) (Row, error) {
	var hit Row
	n := 0
	for _, r := range rows {
		if strings.Contains(r.Name, substr) {
			hit = r
			n++
		}
	}
	switch n {
	case 0:
		return Row{}, fmt.Errorf("no benchmark row matches %q", substr)
	case 1:
		return hit, nil
	default:
		return Row{}, fmt.Errorf("%d benchmark rows match %q; use a longer substring", n, substr)
	}
}

// speedup computes how many times faster the num row is than the den
// row: den ns/op ÷ num ns/op (> 1 means num is faster).
func speedup(rows []Row, num, den string) (float64, Row, Row, error) {
	nr, err := findRow(rows, num)
	if err != nil {
		return 0, Row{}, Row{}, err
	}
	dr, err := findRow(rows, den)
	if err != nil {
		return 0, Row{}, Row{}, err
	}
	if nr.NsPerOp <= 0 {
		return 0, Row{}, Row{}, fmt.Errorf("numerator row %s has non-positive ns/op", nr.Name)
	}
	return dr.NsPerOp / nr.NsPerOp, nr, dr, nil
}

// regression is one gated benchmark that fell below the allowed band.
type regression struct {
	Name               string
	Base, New, Allowed float64
}

// checkBaseline compares the gated rows of a new run against the
// baseline rows by name, on two metrics. simcycles/s (higher is
// better, host-dependent): a prefixed row regresses when it falls
// below baseline × (1 − maxRegress). simcycles (lower is better,
// deterministic — independent of host speed): ANY row carrying it
// regresses when it grows above baseline × (1 + maxRegress),
// regardless of prefix, because simulated-cycle growth is a protocol
// regression no runner class can excuse. Rows missing from either
// side, or without a metric, are skipped (new benchmarks must not
// break the gate retroactively).
func checkBaseline(baseline, rows []Row, prefix string, maxRegress float64) []regression {
	base := make(map[string]Row, len(baseline))
	for _, r := range baseline {
		base[r.Name] = r
	}
	var regs []regression
	for _, r := range rows {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		if strings.HasPrefix(r.Name, prefix) && r.SimCyclesPerS != nil && b.SimCyclesPerS != nil && *b.SimCyclesPerS > 0 {
			allowed := *b.SimCyclesPerS * (1 - maxRegress)
			if *r.SimCyclesPerS < allowed {
				regs = append(regs, regression{Name: r.Name + " (simcycles/s)", Base: *b.SimCyclesPerS, New: *r.SimCyclesPerS, Allowed: allowed})
			}
		}
		if r.SimCycles != nil && b.SimCycles != nil && *b.SimCycles > 0 {
			allowed := *b.SimCycles * (1 + maxRegress)
			if *r.SimCycles > allowed {
				regs = append(regs, regression{Name: r.Name + " (simcycles)", Base: *b.SimCycles, New: *r.SimCycles, Allowed: allowed})
			}
		}
	}
	return regs
}

func main() {
	in := flag.String("in", "", "bench output file (default: stdin)")
	out := flag.String("out", "", "JSON destination (default: stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to gate against (empty: no gating)")
	check := flag.String("check", "BenchmarkE1_", "benchmark-name prefix the baseline gate applies to")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed fractional simcycles/s drop vs the baseline")
	doSpeedup := flag.Bool("speedup", false, "gate on the ns/op ratio between the -den and -num rows")
	num := flag.String("num", "", "speedup numerator: substring selecting exactly one row (the fast one)")
	den := flag.String("den", "", "speedup denominator: substring selecting exactly one row (the reference)")
	minRatio := flag.Float64("min-ratio", 1.0, "minimum den/num ns/op ratio the -speedup gate accepts")
	flag.Parse()

	if err := run(*in, *out, *baseline, *check, *maxRegress, *doSpeedup, *num, *den, *minRatio); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in, out, baseline, check string, maxRegress float64, doSpeedup bool, num, den string, minRatio float64) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rows, err := parse(r)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}
	buf, err := json.MarshalIndent(rows, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		if _, err := os.Stdout.Write(buf); err != nil {
			return err
		}
	} else if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	if doSpeedup {
		if num == "" || den == "" {
			return fmt.Errorf("-speedup needs both -num and -den")
		}
		ratio, nr, dr, err := speedup(rows, num, den)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: speedup %s vs %s = %.2fx (%.0f / %.0f ns/op, min %.2fx)\n",
			nr.Name, dr.Name, ratio, dr.NsPerOp, nr.NsPerOp, minRatio)
		if ratio < minRatio {
			return fmt.Errorf("speedup %.2fx below required %.2fx", ratio, minRatio)
		}
	}
	if baseline == "" {
		return nil
	}
	bbuf, err := os.ReadFile(baseline)
	if err != nil {
		return err
	}
	var baseRows []Row
	if err := json.Unmarshal(bbuf, &baseRows); err != nil {
		return fmt.Errorf("baseline %s: %w", baseline, err)
	}
	regs := checkBaseline(baseRows, rows, check, maxRegress)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: baseline gate passed (%s*, max regress %.0f%%)\n", check, 100*maxRegress)
		return nil
	}
	for _, g := range regs {
		// The metric is in the row name suffix; the bound's direction
		// depends on it (simcycles/s: higher is better, simcycles:
		// lower is better).
		bound := "≥"
		if g.Allowed > g.Base {
			bound = "≤"
		}
		fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f vs baseline %.0f (allowed %s %.0f)\n",
			g.Name, g.New, g.Base, bound, g.Allowed)
	}
	return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s", len(regs), 100*maxRegress, baseline)
}
