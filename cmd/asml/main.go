// Command asml is the armlet toolchain driver: assembler, disassembler
// and a standalone program runner (one CPU, optional shared-memory
// wrapper behind the MMIO bridge).
//
// Examples (flags precede the file, as usual for Go tools):
//
//	asml asm -o prog.bin prog.s
//	asml dis prog.bin
//	asml run prog.s            # assembles and executes, prints exit code
//	asml run -trace prog.s     # ... with an instruction trace
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/iss"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asml:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: asml {asm|dis|run} [flags] file")
}

func run() error {
	if len(os.Args) < 2 {
		return usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "asm":
		fs := flag.NewFlagSet("asm", flag.ExitOnError)
		out := fs.String("o", "a.bin", "output image")
		fs.Parse(args)
		if fs.NArg() != 1 {
			return usage()
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		prog, err := isa.Assemble(string(src))
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, prog.Code, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: %d bytes, %d symbols\n", *out, len(prog.Code), len(prog.Symbols))
		return nil

	case "dis":
		fs := flag.NewFlagSet("dis", flag.ExitOnError)
		fs.Parse(args)
		if fs.NArg() != 1 {
			return usage()
		}
		img, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		for pc := 0; pc+4 <= len(img); pc += 4 {
			w := binary.LittleEndian.Uint32(img[pc:])
			fmt.Printf("%08x  %08x  %s\n", pc, w, isa.DisassembleWord(w, uint32(pc)))
		}
		return nil

	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		traceFlag := fs.Bool("trace", false, "print executed instructions")
		memBytes := fs.Uint("mem", 1<<20, "shared wrapper memory capacity")
		limit := fs.Uint64("limit", 100_000_000, "cycle budget")
		fs.Parse(args)
		if fs.NArg() != 1 {
			return usage()
		}
		src, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		prog, err := isa.Assemble(string(src))
		if err != nil {
			return err
		}
		k := sim.New()
		link := bus.NewLink(k, "cpu-mem")
		if _, err := core.NewWrapper(k, core.Config{
			TotalSize: uint32(*memBytes),
			Delays:    core.DefaultDelays(),
		}, link); err != nil {
			return err
		}
		cpu, err := iss.New(k, iss.Config{Prog: prog.Code, Port: link})
		if err != nil {
			return err
		}
		if *traceFlag {
			img := prog.Code
			k.AfterCycle(func(cycle uint64) {
				pc := cpu.PC()
				if int(pc)+4 <= len(img) && !cpu.Halted() {
					w := binary.LittleEndian.Uint32(img[pc:])
					fmt.Fprintf(os.Stderr, "%8d  %08x  %s\n", cycle, pc, isa.DisassembleWord(w, pc))
				}
			})
		}
		if _, err := k.RunUntil(cpu.Halted, *limit); err != nil {
			return fmt.Errorf("run: %w (pc=%#x)", err, cpu.PC())
		}
		if out := cpu.Console(); out != "" {
			fmt.Print(out)
		}
		fmt.Fprintf(os.Stderr, "exit=%d cycles=%d instructions=%d stalls=%d\n",
			cpu.ExitCode(), k.Cycle(), cpu.Icount, cpu.StallCycles)
		if cpu.ExitCode() != 0 {
			os.Exit(int(cpu.ExitCode() & 0xFF))
		}
		return nil

	default:
		return usage()
	}
}
