package repro

// Cross-module integration smoke tests: each exercises a full stack
// (kernel + interconnect + wrapper + software layer + device) that no
// single package test covers end to end.

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/dma"
	"repro/internal/gsm"
	"repro/internal/isa"
	"repro/internal/smapi"
	"repro/internal/workload"
)

// TestFullStackHeterogeneousMasters wires every kind of master the
// framework supports — a native PE, an armlet ISS, and a DMA engine —
// against two wrapper memories on one bus, and has them cooperate: the
// PE builds a shared list in sm0 and stages a buffer, the DMA engine
// copies the buffer into sm1, and the ISS hammers sm0 with its own
// traffic kernel throughout.
func TestFullStackHeterogeneousMasters(t *testing.T) {
	sys, err := config.Build(config.SystemConfig{
		Masters: 3, Memories: 2, MemKind: config.MemWrapper,
	})
	if err != nil {
		t.Fatal(err)
	}

	var eng *dma.Engine
	var peDone bool

	peTask := func(ctx *smapi.Ctx) {
		m0, m1 := ctx.Mem(0), ctx.Mem(1)

		// A linked list in shared memory (the paper's deferred "general
		// data structures").
		l, code := smapi.NewList(m0)
		if code != bus.OK {
			panic(code)
		}
		for i := uint32(1); i <= 3; i++ {
			if code := l.Push(i * 111); code != bus.OK {
				panic(code)
			}
		}

		// Stage a buffer for the DMA engine to move into sm1.
		src, code := m0.Malloc(16, bus.U32)
		if code != bus.OK {
			panic(code)
		}
		for i := uint32(0); i < 16; i++ {
			if code := m0.Write(src+4*i, 0x1000+i); code != bus.OK {
				panic(code)
			}
		}
		dst, code := m1.Malloc(16, bus.U32)
		if code != bus.OK {
			panic(code)
		}
		eng.Enqueue(dma.Descriptor{
			SrcSM: 0, DstSM: 1, SrcVPtr: src, DstVPtr: dst,
			Elems: 16, DType: bus.U32,
		})
		for !eng.Idle() {
			ctx.Sleep(10)
		}
		// Verify the DMA's work from the PE.
		got, code := m1.ReadArray(dst, 16)
		if code != bus.OK {
			panic(code)
		}
		for i, v := range got {
			if v != 0x1000+uint32(i) {
				panic("dma copy corrupted")
			}
		}
		// Checksum the list.
		sum := uint32(0)
		if code := l.Walk(func(v uint32) bool { sum += v; return true }); code != bus.OK {
			panic(code)
		}
		if sum != 666 {
			panic("list checksum wrong")
		}
		peDone = true
	}

	// The ISS runs the traffic kernel against sm0 concurrently with all
	// of the above — heterogeneous masters sharing one wrapper.
	prog, err := isa.Assemble(workload.TrafficKernelSource(workload.TrafficKernelConfig{
		Iterations: 3, SM: 0, Dim: 8,
	}))
	if err != nil {
		t.Fatal(err)
	}

	if err := sys.AddProcs(peTask); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddCPUs(prog.Code); err != nil {
		t.Fatal(err)
	}
	eng = dma.New(sys.Kernel, "dma0", sys.MasterPorts[sys.NextFreeMaster()])

	done := func() bool { return sys.ProcsDone() && sys.CPUsHalted() && eng.Idle() }
	if _, err := sys.Kernel.RunUntil(done, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if !peDone {
		t.Fatal("PE task did not complete")
	}
	if sys.CPUs[0].ExitCode() != 0 {
		t.Fatalf("ISS exit = %#x", sys.CPUs[0].ExitCode())
	}
	// Bus saw traffic from all three master classes.
	st := sys.Inter.Stats()
	for mi, n := range st.PerMaster {
		if n == 0 {
			t.Errorf("master %d issued no transactions", mi)
		}
	}
}

// TestGSMPipelineOverCrossbar runs the paper's application on the
// ablation interconnect: output must stay bit-exact regardless of the
// interconnect topology.
func TestGSMPipelineOverCrossbar(t *testing.T) {
	const frames = 4
	tasks, res := gsm.BuildPipeline(gsm.PipelineConfig{
		Frames: frames, Seed: 42, NumSM: 2,
		EncodeCycles: 300, DecodeCycles: 150,
	})
	sys, err := config.Build(config.SystemConfig{
		Masters: 4, Memories: 2, MemKind: config.MemWrapper,
		Interconnect: config.InterCrossbar,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddProcs(tasks...); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 100_000_000); err != nil {
		t.Fatal(err)
	}
	want := gsm.ReferenceTranscode(frames, 42)
	if len(res.Out) != len(want) {
		t.Fatalf("output length %d, want %d", len(res.Out), len(want))
	}
	for i := range want {
		if res.Out[i] != want[i] {
			t.Fatalf("sample %d differs over crossbar", i)
		}
	}
}
