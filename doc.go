// Package repro is a from-scratch Go reproduction of "Fast Dynamic
// Memory Integration in Co-Simulation Frameworks for Multiprocessor
// System on-Chip" (O. Villa, P. Schaumont, I. Verbauwhede, M. Monchiero,
// G. Palermo — DATE 2005).
//
// The repository contains the paper's contribution — a cycle-true
// dynamic shared memory wrapper that maps simulated allocations onto the
// host's memory management (internal/core) — together with every
// substrate the original system relied on, rebuilt in pure Go:
// a cycle-based simulation kernel (internal/sim), an ARM-flavoured
// instruction-set simulator with assembler (internal/isa, internal/iss),
// a shared-bus/crossbar interconnect (internal/bus), baseline memory
// models (internal/mem, internal/heapsim), the software API layer
// (internal/smapi), and a GSM 06.10 full-rate codec workload
// (internal/gsm).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured
// results. The benchmarks in bench_test.go regenerate every experiment;
// cmd/experiments prints the same tables interactively.
package repro
