// Package repro is a from-scratch Go reproduction of "Fast Dynamic
// Memory Integration in Co-Simulation Frameworks for Multiprocessor
// System on-Chip" (O. Villa, P. Schaumont, I. Verbauwhede, M. Monchiero,
// G. Palermo — DATE 2005).
//
// The repository contains the paper's contribution — a cycle-true
// dynamic shared memory wrapper that maps simulated allocations onto the
// host's memory management (internal/core) — together with every
// substrate the original system relied on, rebuilt in pure Go:
// a cycle-based simulation kernel (internal/sim), an ARM-flavoured
// instruction-set simulator with assembler (internal/isa, internal/iss),
// a shared-bus/crossbar interconnect (internal/bus), baseline memory
// models (internal/mem, internal/heapsim), the software API layer
// (internal/smapi), and a GSM 06.10 full-rate codec workload
// (internal/gsm).
//
// The kernel goes beyond the original's lockstep evaluation: it
// schedules event-driven by default, jumping the clock across spans in
// which every module sleeps (memory delay countdowns, bus transfers,
// stalled CPUs) while remaining bit-identical to lockstep in cycle
// counts, stats and waveforms — see internal/sim's package
// documentation for the Sleeper capability and the differential tests
// in internal/experiments for the equivalence proof. The EV experiment
// and the BenchmarkEV pair quantify the win on idle-heavy
// configurations (~2x simulation speed at ~91% skipped cycles).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured
// results. The benchmarks in bench_test.go regenerate every experiment;
// cmd/experiments prints the same tables interactively.
package repro
