// Pointer arithmetic & finite capacity: the wrapper mechanisms of §3.
//
//   - Virtual pointers follow the published generation rule (each new
//     Vptr = previous Vptr + previous size; first is 0).
//   - Interior pointers (user pointer arithmetic) resolve through the
//     containing allocation plus offset.
//   - A finite TotalSize denies allocations in-band once the sum of
//     live dimensions reaches the limit — and freeing restores capacity.
//   - Typed allocations: the translator handles element sizes and the
//     target's endianness inside the host buffer.
//
// Run with: go run ./examples/pointerarith
package main

import (
	"fmt"
	"log"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/smapi"
)

func main() {
	delays := core.DefaultDelays()
	sys, err := config.Build(config.SystemConfig{
		Masters:       1,
		Memories:      1,
		MemKind:       config.MemWrapper,
		MemBytes:      1 << 10, // tiny: 1 KiB simulated capacity
		WrapperDelays: &delays,
		Endian:        core.Big, // simulate a big-endian target
	})
	if err != nil {
		log.Fatal(err)
	}

	task := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)

		// Vptr generation rule: sizes 100B, 60B → vptrs 0, 100, 160.
		a, _ := m.Malloc(25, bus.U32) // 100 bytes
		b, _ := m.Malloc(30, bus.U16) // 60 bytes
		c, _ := m.Malloc(10, bus.U8)  // 10 bytes
		fmt.Printf("vptr chain: a=%d b=%d c=%d  (rule: next = prev + prev size)\n", a, b, c)

		// Interior pointer: &a[7] == a + 28.
		m.Write(a+28, 1234)
		v, _ := m.Read(a + 28)
		fmt.Printf("interior pointer a+28 → element 7: %d\n", v)

		// Unaligned interior pointer lands mid-element: denied in-band.
		if _, code := m.Read(a + 30); code == bus.ErrBounds {
			fmt.Println("unaligned a+30 denied with BOUNDS (mid-element)")
		}

		// Freed hole: pointers into b dangle after free.
		m.Free(b)
		if _, code := m.Read(b + 4); code == bus.ErrBadVPtr {
			fmt.Println("dangling pointer into freed b denied with BAD_VPTR")
		}

		// Capacity: 1 KiB total, 110 live. A 940-byte request must fail,
		// then succeed once a is freed.
		if _, code := m.Malloc(940, bus.U8); code == bus.ErrCapacity {
			fmt.Println("over-capacity allocation denied with CAPACITY")
		}
		m.Free(a)
		if big, code := m.Malloc(940, bus.U8); code == bus.OK {
			fmt.Printf("after freeing a, 940-byte allocation succeeds at vptr %d\n", big)
		}

		// Endianness: the u32 write below lands big-endian in host bytes
		// because the simulated target is big-endian.
		d, _ := m.Malloc(1, bus.U32)
		m.Write(d, 0x0A0B0C0D)
		val, _ := m.Read(d)
		fmt.Printf("big-endian target round-trips 0x%08X (host buffer holds the target's byte image)\n", val)
	}
	if err := sys.AddProcs(task); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
		log.Fatal(err)
	}

	tbl := sys.Wrappers[0].Table()
	fmt.Printf("\npointer table: %d live entries, %d bytes in use, high-water %d entries\n",
		tbl.Len(), tbl.Used(), tbl.HighWater)
	st := sys.Wrappers[0].Stats()
	fmt.Printf("in-band errors served: BAD_VPTR/BOUNDS/CAPACITY on reads=%d writes=%d allocs=%d\n",
		st.Errors[bus.OpRead], st.Errors[bus.OpWrite], st.Errors[bus.OpAlloc])
}
