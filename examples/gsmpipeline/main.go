// GSM pipeline: the paper's application scenario. Four processing
// elements — source, encoder, decoder, sink — transcode synthetic speech
// through the bit-exact GSM 06.10 full-rate codec, passing every frame
// through dynamic shared memory buffers that are allocated, burst-
// written, burst-read and freed on the fly; channel control blocks are
// protected with the wrapper's reservation bits.
//
// Run with: go run ./examples/gsmpipeline [-frames N] [-memories M]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/gsm"
	"repro/internal/stats"
)

func main() {
	frames := flag.Int("frames", 25, "number of 20 ms speech frames")
	memories := flag.Int("memories", 2, "number of shared memory modules")
	flag.Parse()

	tasks, result := gsm.BuildPipeline(gsm.PipelineConfig{
		Frames: *frames,
		Seed:   42,
		NumSM:  *memories,
	})
	sys, err := config.Build(config.SystemConfig{
		Masters:  4,
		Memories: *memories,
		MemKind:  config.MemWrapper,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddProcs(tasks...); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 2_000_000_000); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	// The pipeline's output is bit-exact against the pure-software codec.
	ref := gsm.ReferenceTranscode(*frames, 42)
	exact := len(ref) == len(result.Out)
	for i := 0; exact && i < len(ref); i++ {
		exact = ref[i] == result.Out[i]
	}
	orig := gsm.Synth(*frames*gsm.FrameSamples, 42)
	snr := gsm.SNR(orig, result.Out, gsm.FrameSamples)

	cyc := sys.Kernel.Cycle()
	fmt.Printf("transcoded %d frames (%d ms of speech) in %d simulated cycles\n",
		result.Frames, result.Frames*20, cyc)
	fmt.Printf("simulation speed: %s cycles/s (%v wall)\n",
		stats.SI(stats.Rate(cyc, wall)), wall.Round(time.Millisecond))
	fmt.Printf("codec rate: %d bit/s, reconstruction SNR: %.1f dB\n", gsm.FrameBits*50, snr)
	fmt.Printf("bit-exact vs pure-software codec: %v\n\n", exact)

	t := stats.NewTable("shared memories", "module", "allocs", "frees", "burst elems", "live")
	for _, w := range sys.Wrappers {
		st := w.Stats()
		t.Add(w.Name(), fmt.Sprint(st.Ops[bus.OpAlloc]), fmt.Sprint(st.Ops[bus.OpFree]),
			fmt.Sprint(st.BurstElems), fmt.Sprint(w.Table().Len()))
	}
	fmt.Println(t)

	ist := sys.Inter.Stats()
	fmt.Printf("bus: %d transactions, %d words, %d busy cycles (%.1f%% utilization)\n",
		ist.Transactions, ist.Words, ist.BusyCycles, 100*float64(ist.BusyCycles)/float64(cyc))
}
