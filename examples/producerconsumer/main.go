// Producer/consumer: the wrapper's reservation bit as a coherence
// mechanism. A producer fills dynamic buffers and hands them to a
// consumer; both serialize on the buffer's reservation bit exactly as
// the paper describes ("a reservation bit used as semaphore ... set by
// an ISS that wants to protect the pointer"). A deliberately unprotected
// third PE demonstrates the denial path: its writes to reserved buffers
// bounce with the RESERVED status.
//
// Run with: go run ./examples/producerconsumer
package main

import (
	"fmt"
	"log"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/smapi"
)

const (
	items   = 10
	payload = 32
)

// waitEmpty acquires the mailbox reservation and spins (in simulated
// time) until its state word reads empty, returning with the
// reservation held.
func waitEmpty(ctx *smapi.Ctx, m *smapi.Mem, mb uint32) {
	for {
		if code := m.Acquire(mb, 5); code != bus.OK {
			panic(code)
		}
		st, code := m.Read(mb)
		if code != bus.OK {
			panic(code)
		}
		if st == 0 {
			return
		}
		if code := m.Release(mb); code != bus.OK {
			panic(code)
		}
		ctx.Sleep(7)
	}
}

func main() {
	var (
		mailbox      uint32
		mailboxReady bool
		received     int
		intruderHits int
		intruderDen  int
		done         bool
	)

	producer := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		// The mailbox holds {state, vptr}: state 0=empty, 1=full.
		mb, code := m.Malloc(2, bus.U32)
		if code != bus.OK {
			panic(code)
		}
		mailbox, mailboxReady = mb, true

		for i := 0; i < items; i++ {
			buf, code := m.Malloc(payload, bus.U32)
			if code != bus.OK {
				panic(code)
			}
			// Reserve while filling: the intruder's writes must bounce.
			if code := m.Acquire(buf, 5); code != bus.OK {
				panic(code)
			}
			// Advertise the buffer address (under the mailbox's own
			// reservation) before filling: the intruder will try to
			// scribble on it while it is still reserved.
			waitEmpty(ctx, m, mb)
			if code := m.Write(mb+4, buf); code != bus.OK {
				panic(code)
			}
			if code := m.Release(mb); code != bus.OK {
				panic(code)
			}
			for j := uint32(0); j < payload; j++ {
				if code := m.Write(buf+4*j, uint32(i)*1000+j); code != bus.OK {
					panic(code)
				}
				ctx.Sleep(3) // stretch the reserved window
			}
			if code := m.Release(buf); code != bus.OK {
				panic(code)
			}

			// Flip the mailbox to full.
			if code := m.Acquire(mb, 5); code != bus.OK {
				panic(code)
			}
			if code := m.Write(mb, 1); code != bus.OK {
				panic(code)
			}
			if code := m.Release(mb); code != bus.OK {
				panic(code)
			}
		}
	}

	consumer := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		for !mailboxReady {
			ctx.Sleep(3)
		}
		mb := mailbox
		for received < items {
			for {
				if code := m.Acquire(mb, 5); code != bus.OK {
					panic(code)
				}
				st, _ := m.Read(mb)
				if st == 1 {
					break
				}
				m.Release(mb)
				ctx.Sleep(7)
			}
			buf, _ := m.Read(mb + 4)
			m.Write(mb, 0)
			m.Release(mb)

			sum := uint32(0)
			vals, code := m.ReadArray(buf, payload)
			if code != bus.OK {
				panic(code)
			}
			for _, v := range vals {
				sum += v
			}
			fmt.Printf("cycle %7d: consumed buffer %#06x (checksum %d)\n", ctx.Cycle(), buf, sum)
			if code := m.Free(buf); code != bus.OK {
				panic(code)
			}
			received++
		}
		done = true
	}

	// The intruder writes to whatever the mailbox currently advertises,
	// without reserving: while the producer holds the reservation, the
	// wrapper denies the write in-band.
	intruder := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		for !mailboxReady {
			ctx.Sleep(3)
		}
		for !done {
			v, code := m.Read(mailbox + 4)
			if code == bus.OK && v != 0 {
				switch m.Write(v, 0xBAD) {
				case bus.OK:
					intruderHits++
				case bus.ErrReserved:
					intruderDen++
				}
			}
			ctx.Sleep(11)
		}
	}

	sys, err := config.Build(config.SystemConfig{
		Masters: 3, Memories: 1, MemKind: config.MemWrapper,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AddProcs(producer, consumer, intruder); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Kernel.RunUntil(func() bool { return done }, 50_000_000); err != nil {
		log.Fatal(err)
	}

	st := sys.Wrappers[0].Stats()
	fmt.Printf("\n%d items transferred in %d cycles\n", received, sys.Kernel.Cycle())
	fmt.Printf("wrapper denied %d writes in-band (reserved or dangling targets)\n",
		st.Errors[bus.OpWrite])
	fmt.Printf("intruder: %d writes denied by reservation, %d hit unreserved/stale windows\n",
		intruderDen, intruderHits)
	if intruderDen == 0 {
		fmt.Println("warning: no reservation denials observed — timing window too narrow")
	}
}
