// DMA offload: a hardware device (not an ISS) mastering the
// interconnect, per the paper's note that "different hardware devices
// that might be connected on the system can access the memories using
// low level communication".
//
// A producer PE stages GSM frames in shared memory 0; a descriptor-
// driven DMA engine copies them into shared memory 1 (a different
// wrapper instance with its own virtual address space) while the PE is
// already preparing the next frame; a consumer PE verifies the copies.
// The same movement done by the PE itself costs the PE's time — the
// example prints both, showing the overlap benefit in simulated cycles.
//
// Run with: go run ./examples/dmaoffload
package main

import (
	"fmt"
	"log"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/dma"
	"repro/internal/gsm"
	"repro/internal/smapi"
)

const frames = 8

func run(useDMA bool) (cycles uint64, engStats dma.Stats) {
	// 3 masters: producer PE, consumer PE, DMA engine.
	sys, err := config.Build(config.SystemConfig{
		Masters: 3, Memories: 2, MemKind: config.MemWrapper,
	})
	if err != nil {
		log.Fatal(err)
	}

	pcm := gsm.Synth(frames*gsm.FrameSamples, 7)
	type job struct {
		src, dst uint32
		done     bool
	}
	var jobs [frames]job
	var produced int
	var eng *dma.Engine

	producer := func(ctx *smapi.Ctx) {
		m0, m1 := ctx.Mem(0), ctx.Mem(1)
		for f := 0; f < frames; f++ {
			src, code := m0.Malloc(gsm.FrameSamples, bus.I16)
			if code != bus.OK {
				panic(code)
			}
			dst, code := m1.Malloc(gsm.FrameSamples, bus.I16)
			if code != bus.OK {
				panic(code)
			}
			wire := make([]uint32, gsm.FrameSamples)
			for i := range wire {
				wire[i] = uint32(uint16(pcm[f*gsm.FrameSamples+i]))
			}
			if code := m0.WriteArray(src, wire); code != bus.OK {
				panic(code)
			}
			jobs[f] = job{src: src, dst: dst}
			if useDMA {
				// Fire and forget: the engine moves the frame while this
				// PE models its next compute phase.
				eng.Enqueue(dma.Descriptor{
					SrcSM: 0, DstSM: 1, SrcVPtr: src, DstVPtr: dst,
					Elems: gsm.FrameSamples, DType: bus.I16, Chunk: 40,
				})
			} else {
				// PE-driven copy: the PE itself shuttles the data.
				data, code := m0.ReadArray(src, gsm.FrameSamples)
				if code != bus.OK {
					panic(code)
				}
				if code := m1.WriteArray(dst, data); code != bus.OK {
					panic(code)
				}
			}
			produced = f + 1
			ctx.Sleep(2000) // next frame's compute
		}
	}

	consumer := func(ctx *smapi.Ctx) {
		m1 := ctx.Mem(1)
		for f := 0; f < frames; f++ {
			for produced <= f {
				ctx.Sleep(20)
			}
			if useDMA {
				for {
					done := eng.Done()
					if len(done) > f {
						if done[f].Err != bus.OK {
							panic(done[f].Err)
						}
						break
					}
					ctx.Sleep(20)
				}
			}
			out, code := m1.ReadArray(jobs[f].dst, gsm.FrameSamples)
			if code != bus.OK {
				panic(code)
			}
			for i, w := range out {
				if int16(uint16(w)) != pcm[f*gsm.FrameSamples+i] {
					panic(fmt.Sprintf("frame %d sample %d corrupted", f, i))
				}
			}
			jobs[f].done = true
		}
	}

	if err := sys.AddProcs(producer, consumer); err != nil {
		log.Fatal(err)
	}
	eng = dma.New(sys.Kernel, "dma0", sys.MasterPorts[sys.NextFreeMaster()])
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 50_000_000); err != nil {
		log.Fatal(err)
	}
	return sys.Kernel.Cycle(), eng.Stats()
}

func main() {
	peCycles, _ := run(false)
	dmaCycles, st := run(true)

	fmt.Printf("%d GSM frames moved sm0 → sm1 (%d samples each)\n\n", frames, gsm.FrameSamples)
	fmt.Printf("PE-driven copy:  %7d simulated cycles (producer shuttles data itself)\n", peCycles)
	fmt.Printf("DMA offloaded:   %7d simulated cycles (copies overlap compute)\n", dmaCycles)
	if dmaCycles < peCycles {
		fmt.Printf("offload saves %d cycles (%.1f%%)\n\n",
			peCycles-dmaCycles, 100*float64(peCycles-dmaCycles)/float64(peCycles))
	} else {
		fmt.Println()
	}
	fmt.Printf("engine: %d descriptors, %d elements, %d errors, %d busy cycles\n",
		st.Descriptors, st.ElemsMoved, st.Errors, st.BusyCycles)
}
