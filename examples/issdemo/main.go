// ISS demo: the paper's actual topology — instruction-set simulators
// executing software that reaches dynamic shared memory through the
// memory-mapped bridge and the assembly-level API (sm_malloc, sm_write,
// sm_readn, ...). Four armlet CPUs run the GSM traffic kernel against
// two wrapper memories over the shared bus, and a VCD waveform of
// system activity is written for inspection in any waveform viewer.
//
// Run with: go run ./examples/issdemo [-vcd wave.vcd]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	vcdPath := flag.String("vcd", "", "write a VCD waveform to this file")
	frames := flag.Int("frames", 4, "GSM frames per ISS")
	flag.Parse()

	const nISS, nMem = 4, 2
	sys, err := config.Build(config.SystemConfig{
		Masters:  nISS,
		Memories: nMem,
		MemKind:  config.MemWrapper,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each ISS gets its own program instance, seeded differently, and
	// works against memory module i mod nMem.
	var progs [][]byte
	for i := 0; i < nISS; i++ {
		src := workload.GSMKernelSource(workload.GSMKernelConfig{
			Frames: *frames,
			SM:     i % nMem,
			Seed:   uint32(i + 1),
		})
		prog, err := isa.Assemble(src)
		if err != nil {
			log.Fatalf("assemble iss%d: %v", i, err)
		}
		progs = append(progs, prog.Code)
	}
	if err := sys.AddCPUs(progs...); err != nil {
		log.Fatal(err)
	}

	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		vcd := sim.NewVCD(f, "1ns")
		for i, w := range sys.Wrappers {
			w := w
			vcd.AddVar("mem", fmt.Sprintf("sm%d_live_allocs", i), 8, func() uint64 {
				return uint64(w.Table().Len())
			})
			vcd.AddVar("mem", fmt.Sprintf("sm%d_used_bytes", i), 32, func() uint64 {
				return uint64(w.Table().Used())
			})
		}
		vcd.AddVar("bus", "txn_count", 32, func() uint64 {
			return sys.Inter.Stats().Transactions
		})
		sys.Kernel.AfterCycle(vcd.Sample)
		defer func() {
			if err := vcd.Flush(); err != nil {
				log.Print(err)
			}
			fmt.Printf("VCD waveform written to %s\n", *vcdPath)
		}()
	}

	start := time.Now()
	if _, err := sys.Kernel.RunUntil(sys.CPUsHalted, 500_000_000); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	cyc := sys.Kernel.Cycle()

	fmt.Printf("4 ISSs × %d GSM frames: %d cycles in %v (%s cycles/s)\n\n",
		*frames, cyc, wall.Round(time.Millisecond), stats.SI(stats.Rate(cyc, wall)))

	t := stats.NewTable("per-ISS", "cpu", "exit", "instructions", "bridge stalls", "IPC")
	for i, cpu := range sys.CPUs {
		t.Add(fmt.Sprintf("iss%d", i), fmt.Sprint(cpu.ExitCode()),
			fmt.Sprint(cpu.Icount), fmt.Sprint(cpu.StallCycles),
			fmt.Sprintf("%.2f", float64(cpu.Icount)/float64(cpu.Cycles)))
	}
	fmt.Println(t)

	mt := stats.NewTable("per-memory", "module", "allocs", "frees", "burst elems", "busy cycles")
	for _, w := range sys.Wrappers {
		st := w.Stats()
		mt.Add(w.Name(), fmt.Sprint(st.Ops[bus.OpAlloc]), fmt.Sprint(st.Ops[bus.OpFree]),
			fmt.Sprint(st.BurstElems), fmt.Sprint(st.BusyCycles))
	}
	fmt.Println(mt)
}
