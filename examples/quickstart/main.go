// Quickstart: the smallest complete co-simulation — one processing
// element, one dynamic shared memory wrapper, a shared bus between them.
// The PE allocates a buffer (mapped to a host calloc by the wrapper),
// writes and reads it through cycle-true transactions, and frees it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/smapi"
)

func main() {
	// A system is masters × interconnect × memories. MemWrapper selects
	// the paper's host-backed dynamic memory model.
	sys, err := config.Build(config.SystemConfig{
		Masters:  1,
		Memories: 1,
		MemKind:  config.MemWrapper,
		MemBytes: 64 << 10, // finite simulated capacity: 64 KiB
	})
	if err != nil {
		log.Fatal(err)
	}

	// Software runs as a task against the C-formalism API. Every call
	// blocks in *simulated* time until the wrapper's FSM responds.
	task := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0) // shared memory module #0 (the sm_addr)

		vptr, code := m.Malloc(64, bus.U32) // calloc(64, 4) on the host
		if code != bus.OK {
			panic(code)
		}
		fmt.Printf("cycle %6d: allocated 64 u32 at vptr %#x\n", ctx.Cycle(), vptr)

		// Scalar access with pointer arithmetic: element 10 is vptr+40.
		if code := m.Write(vptr+40, 0xCAFE); code != bus.OK {
			panic(code)
		}
		val, code := m.Read(vptr + 40)
		if code != bus.OK {
			panic(code)
		}
		fmt.Printf("cycle %6d: read back %#x\n", ctx.Cycle(), val)

		// Burst transfer through the wrapper's I/O array.
		data := make([]uint32, 16)
		for i := range data {
			data[i] = uint32(i * i)
		}
		if code := m.WriteArray(vptr, data); code != bus.OK {
			panic(code)
		}
		back, code := m.ReadArray(vptr, 16)
		if code != bus.OK {
			panic(code)
		}
		fmt.Printf("cycle %6d: burst round trip ok (%d elements, last=%d)\n",
			ctx.Cycle(), len(back), back[15])

		if code := m.Free(vptr); code != bus.OK {
			panic(code)
		}
		fmt.Printf("cycle %6d: freed\n", ctx.Cycle())
	}
	if err := sys.AddProcs(task); err != nil {
		log.Fatal(err)
	}

	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
		log.Fatal(err)
	}

	st := sys.Wrappers[0].Stats()
	fmt.Printf("\nwrapper served: %d allocs, %d frees, %d reads, %d writes, %d burst elems\n",
		st.Ops[bus.OpAlloc], st.Ops[bus.OpFree], st.Ops[bus.OpRead], st.Ops[bus.OpWrite], st.BurstElems)
	fmt.Printf("host calls: %d allocations (%d bytes), %d frees\n",
		st.HostAllocs, st.HostBytes, st.HostFrees)
	fmt.Printf("total simulated cycles: %d\n", sys.Kernel.Cycle())
}
