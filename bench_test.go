package repro

// One benchmark per experiment of DESIGN.md §5 / EXPERIMENTS.md. Each
// iteration builds a fresh system and runs the complete seeded workload;
// the custom "simcycles/s" metric is the simulation speed the paper
// reports (its single result, E1, is the degradation of that metric
// between the one-memory and four-memory configurations).
//
// Run with: go test -bench=. -benchmem

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gsm"
	"repro/internal/isa"
	"repro/internal/service"
	"repro/internal/smapi"
	"repro/internal/trace"
	"repro/internal/workload"
)

// reportSimSpeed attaches the simulated-cycles-per-host-second metric.
func reportSimSpeed(b *testing.B, totalCycles uint64) {
	b.Helper()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(totalCycles)/s, "simcycles/s")
	}
}

func benchGSMISS(b *testing.B, nISS, nMem, frames int) {
	b.Helper()
	benchGSMISSMode(b, nISS, nMem, frames, experiments.Mode{})
}

// benchGSMISSMode is benchGSMISS with an explicit kernel mode (the PAR
// family sweeps worker counts through it).
func benchGSMISSMode(b *testing.B, nISS, nMem, frames int, m experiments.Mode) {
	b.Helper()
	var total uint64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunGSMISS(nISS, nMem, frames, m)
		if err != nil {
			b.Fatal(err)
		}
		total += r.Cycles
	}
	reportSimSpeed(b, total)
}

// --- E1: the paper's headline result -------------------------------------

func BenchmarkE1_FourISS_OneMem(b *testing.B)  { benchGSMISS(b, 4, 1, 10) }
func BenchmarkE1_FourISS_FourMem(b *testing.B) { benchGSMISS(b, 4, 4, 10) }

// --- E1b: native-PE bit-exact pipeline ------------------------------------

func benchPipeline(b *testing.B, nMem, frames int) {
	b.Helper()
	var total uint64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunGSMPipeline(nMem, frames, experiments.Mode{})
		if err != nil {
			b.Fatal(err)
		}
		total += r.Cycles
	}
	reportSimSpeed(b, total)
}

func BenchmarkE1b_Pipeline_OneMem(b *testing.B)  { benchPipeline(b, 1, 8) }
func BenchmarkE1b_Pipeline_FourMem(b *testing.B) { benchPipeline(b, 4, 8) }

// --- E2: wrapper overhead vs static table ---------------------------------

func e2Trace() *trace.Trace {
	return trace.Generate(trace.GenConfig{
		Seed: 21, Events: 8000, Slots: 32, NumSM: 1,
		MinDim: 8, MaxDim: 256, DType: bus.U32,
		Mix:         trace.Mix{Alloc: 1, Read: 45, Write: 30, ReadBurst: 12, WriteBurst: 12},
		PtrArithPct: 25,
	})
}

func benchTrace(b *testing.B, kind config.MemKind, tr *trace.Trace, mode trace.Mode, memBytes uint32) {
	b.Helper()
	var total uint64
	for i := 0; i < b.N; i++ {
		r, _, err := experiments.RunTrace(kind, tr, mode, memBytes, experiments.Mode{})
		if err != nil {
			b.Fatal(err)
		}
		total += r.Cycles
	}
	reportSimSpeed(b, total)
}

func BenchmarkE2_WrapperRW(b *testing.B) {
	benchTrace(b, config.MemWrapper, e2Trace(), trace.ModeDynamic, 0)
}

func BenchmarkE2_StaticRW(b *testing.B) {
	benchTrace(b, config.MemStatic, e2Trace(), trace.ModeStatic, 0)
}

// --- E3: wrapper vs detailed in-simulation allocator ----------------------

func e3Trace(slots int) *trace.Trace {
	return trace.Generate(trace.GenConfig{
		Seed: 31, Events: 4000, Slots: slots, NumSM: 1,
		MinDim: 8, MaxDim: 128, DType: bus.U32,
		Mix: trace.Mix{Alloc: 30, Free: 28, Read: 21, Write: 21},
	})
}

func BenchmarkE3_WrapperChurn(b *testing.B) {
	benchTrace(b, config.MemWrapper, e3Trace(64), trace.ModeDynamic, 1<<22)
}

func BenchmarkE3_HeapsimChurn(b *testing.B) {
	benchTrace(b, config.MemHeapSim, e3Trace(64), trace.ModeDynamic, 1<<22)
}

// --- E4: delay-parameter sensitivity (host cost must stay flat) -----------

func BenchmarkE4_DelaySensitivity(b *testing.B) {
	tr := trace.Generate(trace.GenConfig{
		Seed: 41, Events: 5000, Slots: 16, NumSM: 1,
		MinDim: 4, MaxDim: 64, DType: bus.U32, Mix: trace.DefaultMix(),
	})
	for _, d := range []uint32{1, 16, 64} {
		b.Run(fmt.Sprintf("rwdelay=%d", d), func(b *testing.B) {
			delays := core.DefaultDelays()
			delays.Read, delays.Write = d, d
			var total uint64
			for i := 0; i < b.N; i++ {
				sys, err := config.Build(config.SystemConfig{
					Masters: 1, Memories: 1, MemKind: config.MemWrapper, WrapperDelays: &delays,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.AddProcs(trace.ReplayTask(tr, trace.ModeDynamic, nil)); err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1<<40); err != nil {
					b.Fatal(err)
				}
				total += sys.Kernel.Cycle()
			}
			reportSimSpeed(b, total)
		})
	}
}

// --- EV: event-driven kernel vs lockstep -----------------------------------

// benchEV runs the EV idle-heavy workload (high-latency wrapper, mixed
// trace) in one scheduling mode; the pair quantifies the idle-skip win.
func benchEV(b *testing.B, lockstep bool) {
	b.Helper()
	var total uint64
	for i := 0; i < b.N; i++ {
		r, _, err := experiments.RunEV(4000, experiments.Mode{Lockstep: lockstep})
		if err != nil {
			b.Fatal(err)
		}
		total += r.Cycles
	}
	reportSimSpeed(b, total)
}

func BenchmarkEV_Lockstep(b *testing.B)    { benchEV(b, true) }
func BenchmarkEV_EventDriven(b *testing.B) { benchEV(b, false) }

// --- PAR: sharded parallel tick engine --------------------------------------

// benchPAR sweeps the worker count on a CPU-bound E1-class configuration
// (ISSs retire an instruction every cycle, so idle-skip cannot help and
// only parallel ticking can). workers=1 is the sequential reference;
// speedup requires host cores (the -cpu flag / GOMAXPROCS governs how
// many the pool can actually use).
func benchPAR(b *testing.B, nISS, nMem int) {
	b.Helper()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchGSMISSMode(b, nISS, nMem, 10, experiments.Mode{Workers: w})
		})
	}
}

func BenchmarkPAR_FourISS_FourMem(b *testing.B) { benchPAR(b, 4, 4) }
func BenchmarkPAR_FourISS_OneMem(b *testing.B)  { benchPAR(b, 4, 1) }

// BenchmarkPAR_PlainISS is the pre-optimization reference: the same 4×4
// configuration on the sequential kernel with the ISS fast paths
// (instruction batching, decode cache) disabled. The gap to
// PAR_FourISS_FourMem/workers=1 is the single-thread interpreter win;
// the workers=1 → workers=4 gap (CI-gated via benchjson -speedup) is
// the parallel win on top of it.
func BenchmarkPAR_PlainISS(b *testing.B) {
	benchGSMISSMode(b, 4, 4, 10, experiments.Mode{Workers: 1, NoBatch: true, NoDecodeCache: true})
}

// --- E5: degradation curves ------------------------------------------------

func BenchmarkE5_MemSweep(b *testing.B) {
	for _, m := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("mems=%d", m), func(b *testing.B) { benchGSMISS(b, 4, m, 8) })
	}
}

func BenchmarkE5_ISSSweep(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("isses=%d", n), func(b *testing.B) { benchGSMISS(b, n, 1, 8) })
	}
}

// --- E6: live dynamic data sweep -------------------------------------------

func BenchmarkE6_LiveSet(b *testing.B) {
	for _, target := range []uint32{1 << 14, 1 << 18, 1 << 22} {
		b.Run(fmt.Sprintf("bytes=%d", target), func(b *testing.B) {
			const bufBytes = 1 << 12
			n := int(target / bufBytes)
			if n == 0 {
				n = 1
			}
			var total uint64
			for i := 0; i < b.N; i++ {
				task := func(ctx *smapi.Ctx) {
					m := ctx.Mem(0)
					vs := make([]uint32, 0, n)
					for j := 0; j < n; j++ {
						v, code := m.Malloc(bufBytes/4, bus.U32)
						if code != bus.OK {
							panic(code)
						}
						if code := m.Write(v, uint32(j)); code != bus.OK {
							panic(code)
						}
						vs = append(vs, v)
					}
					for _, v := range vs {
						if code := m.Free(v); code != bus.OK {
							panic(code)
						}
					}
				}
				sys, err := config.Build(config.SystemConfig{
					Masters: 1, Memories: 1, MemKind: config.MemWrapper,
					MemBytes: target + bufBytes,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.AddProcs(task); err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1<<40); err != nil {
					b.Fatal(err)
				}
				total += sys.Kernel.Cycle()
			}
			reportSimSpeed(b, total)
		})
	}
}

// --- E7: pointer arithmetic ------------------------------------------------

func BenchmarkE7_PtrArith(b *testing.B) {
	for _, slots := range []int{10, 1000} {
		for _, pct := range []int{0, 100} {
			b.Run(fmt.Sprintf("slots=%d/arith=%d%%", slots, pct), func(b *testing.B) {
				tr := experiments.PtrArithTrace(slots, 6000, pct, 71)
				benchTrace(b, config.MemWrapper, tr, trace.ModeDynamic, 1<<26)
			})
		}
	}
}

// --- E8: reservation contention ---------------------------------------------

func BenchmarkE8_Reservation(b *testing.B) {
	for _, pes := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("pes=%d", pes), func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				var vptr uint32
				var ready bool
				var doneCount int
				alloc := func(ctx *smapi.Ctx) {
					m := ctx.Mem(0)
					v, code := m.Malloc(4, bus.U32)
					if code != bus.OK {
						panic(code)
					}
					vptr, ready = v, true
					for doneCount < pes {
						ctx.Sleep(100)
					}
				}
				worker := func(ctx *smapi.Ctx) {
					m := ctx.Mem(0)
					for !ready {
						ctx.Sleep(2)
					}
					for s := 0; s < 50; s++ {
						if code := m.Acquire(vptr, 3); code != bus.OK {
							panic(code)
						}
						v, _ := m.Read(vptr)
						if code := m.Write(vptr, v+1); code != bus.OK {
							panic(code)
						}
						if code := m.Release(vptr); code != bus.OK {
							panic(code)
						}
					}
					doneCount++
				}
				tasks := []smapi.Task{alloc}
				for j := 0; j < pes; j++ {
					tasks = append(tasks, worker)
				}
				sys, err := config.Build(config.SystemConfig{
					Masters: pes + 1, Memories: 1, MemKind: config.MemWrapper,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.AddProcs(tasks...); err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1<<40); err != nil {
					b.Fatal(err)
				}
				total += sys.Kernel.Cycle()
			}
			reportSimSpeed(b, total)
		})
	}
}

// --- A1: interconnect ablation ----------------------------------------------

func benchInterconnect(b *testing.B, ic config.InterconnectKind) {
	b.Helper()
	var total uint64
	for i := 0; i < b.N; i++ {
		sys, err := config.Build(config.SystemConfig{
			Masters: 4, Memories: 4, MemKind: config.MemWrapper, Interconnect: ic,
		})
		if err != nil {
			b.Fatal(err)
		}
		var progs [][]byte
		for j := 0; j < 4; j++ {
			p, err := isa.Assemble(workload.GSMKernelSource(workload.GSMKernelConfig{
				Frames: 8, SM: j, Seed: uint32(j + 1),
			}))
			if err != nil {
				b.Fatal(err)
			}
			progs = append(progs, p.Code)
		}
		if err := sys.AddCPUs(progs...); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Kernel.RunUntil(sys.CPUsHalted, 1<<40); err != nil {
			b.Fatal(err)
		}
		total += sys.Kernel.Cycle()
	}
	reportSimSpeed(b, total)
}

func BenchmarkA1_SharedBus(b *testing.B) { benchInterconnect(b, config.InterBus) }
func BenchmarkA1_Crossbar(b *testing.B)  { benchInterconnect(b, config.InterCrossbar) }

// --- A2: pointer-table lookup ablation ---------------------------------------

func BenchmarkA2_TableLookup(b *testing.B) {
	for _, n := range []int{10, 100, 10000} {
		for _, linear := range []bool{true, false} {
			name := fmt.Sprintf("n=%d/binary", n)
			if linear {
				name = fmt.Sprintf("n=%d/linear", n)
			}
			b.Run(name, func(b *testing.B) {
				tbl := core.NewPointerTable(0, nil)
				tbl.Linear = linear
				for i := 0; i < n; i++ {
					if _, code := tbl.Alloc(16, bus.U32); code != bus.OK {
						b.Fatal(code)
					}
				}
				span := uint32(n) * 64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tbl.Resolve(uint32(i*2654435761) % span)
				}
			})
		}
	}
}

// --- Alloc: allocation-policy engine -----------------------------------------

// BenchmarkAlloc replays the E9 adversarial churn (hole comb) against
// each allocation policy at the allocator level. ns/op is the host cost
// of one full script; "accpalloc" is the simulated cost model — metered
// metadata accesses per allocation, the quantity heapsim turns into
// cycles. First-fit's accpalloc is dominated by the comb walk; buddy
// and segregated stay near-flat (see EXPERIMENTS.md E9).
func BenchmarkAlloc(b *testing.B) {
	o := experiments.Options{Quick: true}
	ops := experiments.E9Workload(o)
	arena := experiments.E9Arena(o)
	for _, kind := range alloc.Kinds() {
		b.Run(fmt.Sprintf("policy=%s", kind), func(b *testing.B) {
			var accesses, allocs uint64
			for i := 0; i < b.N; i++ {
				r, err := experiments.RunChurn(kind, arena, ops)
				if err != nil {
					b.Fatal(err)
				}
				accesses += r.Accesses
				allocs += r.Allocs
			}
			if allocs > 0 {
				b.ReportMetric(float64(accesses)/float64(allocs), "accpalloc")
			}
		})
	}
}

// --- micro-benchmarks for the substrates --------------------------------------

// BenchmarkMicro_KernelModuleScaling isolates the per-module per-cycle
// cost that produces E1's degradation: idle wrapper modules on a kernel.
func BenchmarkMicro_KernelModuleScaling(b *testing.B) {
	for _, mods := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("wrappers=%d", mods), func(b *testing.B) {
			sys, err := config.Build(config.SystemConfig{
				Masters: 1, Memories: mods, MemKind: config.MemWrapper,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Kernel.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMicro_WrapperScalarOp measures one complete scalar read
// transaction against an otherwise idle wrapper.
func BenchmarkMicro_WrapperScalarOp(b *testing.B) {
	sys, err := config.Build(config.SystemConfig{Masters: 1, Memories: 1, MemKind: config.MemWrapper})
	if err != nil {
		b.Fatal(err)
	}
	link := sys.MasterPorts[0]
	link.Issue(bus.Request{Op: bus.OpAlloc, SM: 0, Dim: 64, DType: bus.U32})
	var vptr uint32
	for {
		if err := sys.Kernel.Step(); err != nil {
			b.Fatal(err)
		}
		if resp, ok := link.Response(); ok {
			vptr = resp.VPtr
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Issue(bus.Request{Op: bus.OpRead, SM: 0, VPtr: vptr})
		for {
			if err := sys.Kernel.Step(); err != nil {
				b.Fatal(err)
			}
			if _, ok := link.Response(); ok {
				break
			}
		}
	}
}

// BenchmarkMicro_GSMEncode prices one codec frame (native).
func BenchmarkMicro_GSMEncode(b *testing.B) {
	pcm := gsm.Synth(gsm.FrameSamples*8, 42)
	enc := gsm.NewEncoder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := (i % 8) * gsm.FrameSamples
		enc.Encode(pcm[f : f+gsm.FrameSamples])
	}
}

// BenchmarkMicro_Assemble prices assembling the GSM kernel program.
func BenchmarkMicro_Assemble(b *testing.B) {
	src := workload.GSMKernelSource(workload.GSMKernelConfig{Frames: 10, SM: 0, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isa.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicro_ISSInstructionRate measures raw ISS throughput
// (instructions per host second) on a compute-only loop.
func BenchmarkMicro_ISSInstructionRate(b *testing.B) {
	prog, err := isa.Assemble(`
		li   r1, 1000000000
	loop:	sub  r1, r1, #1
		cmp  r1, #0
		bne  loop
		hlt
	`)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := config.Build(config.SystemConfig{Masters: 1, Memories: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.AddCPUs(prog.Code); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Kernel.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sys.CPUs[0].Icount)/b.Elapsed().Seconds(), "instr/s")
}

// --- E10 / MLP: split transactions & memory-level parallelism -------------

// benchMLP runs the E10 copy workload; the "simcycles" metric records
// the simulated cycle count (the quantity the depth sweep improves) so
// the bench baseline tracks protocol efficiency alongside host speed.
func benchMLP(b *testing.B, depth int, split bool, inter config.InterconnectKind) {
	b.Helper()
	elems := experiments.E10Elems(experiments.Options{})
	var total, cycles uint64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMLP(experiments.E10Streams(), elems, inter,
			experiments.Mode{Depth: depth, Split: split})
		if err != nil {
			b.Fatal(err)
		}
		total += r.Cycles
		cycles = r.Cycles
	}
	reportSimSpeed(b, total)
	b.ReportMetric(float64(cycles), "simcycles")
}

func BenchmarkMLP(b *testing.B) {
	for _, tc := range []struct {
		name  string
		depth int
		split bool
		inter config.InterconnectKind
	}{
		{"bus/occupied/depth=1", 1, false, config.InterBus},
		{"bus/split/depth=1", 1, true, config.InterBus},
		{"bus/split/depth=4", 4, true, config.InterBus},
		{"xbar/split/depth=4", 4, true, config.InterCrossbar},
	} {
		b.Run(tc.name, func(b *testing.B) { benchMLP(b, tc.depth, tc.split, tc.inter) })
	}
}

// --- E11: coherent cache hierarchy ----------------------------------------

// benchCache replays the E11 coherence/locality workload (quick size,
// the exact TestE11CacheAcceptance scenario). The deterministic
// "simcycles" metric lets benchjson gate protocol regressions
// host-independently.
func benchCache(b *testing.B, w experiments.CacheWorkload, cached bool) {
	b.Helper()
	var total, cycles uint64
	for i := 0; i < b.N; i++ {
		r, _, err := experiments.RunCache(w, cached, config.InterBus, experiments.Mode{})
		if err != nil {
			b.Fatal(err)
		}
		total += r.Cycles
		cycles = r.Cycles
	}
	reportSimSpeed(b, total)
	b.ReportMetric(float64(cycles), "simcycles")
}

func BenchmarkCache(b *testing.B) {
	locality, sharing := experiments.E11Workload(experiments.Options{Quick: true})
	for _, tc := range []struct {
		name   string
		w      experiments.CacheWorkload
		cached bool
	}{
		{"locality/uncached", locality, false},
		{"locality/coherent-l1", locality, true},
		{"sharing/uncached", sharing, false},
		{"sharing/coherent-l1", sharing, true},
	} {
		b.Run(tc.name, func(b *testing.B) { benchCache(b, tc.w, tc.cached) })
	}
}

// --- E12: shared L2, DRAM timing & way partitioning -----------------------

// benchL2 replays the E12 asymmetric-working-set workload (quick size)
// through the shared inclusive L2. The deterministic "simcycles" metric
// gates the L2 pipeline, the DRAM bank model and the UCP repartitioner
// against timing regressions.
func benchL2(b *testing.B, w experiments.E12Workload, part cache.PartitionKind, m experiments.Mode) {
	b.Helper()
	var total, cycles uint64
	for i := 0; i < b.N; i++ {
		r, _, err := experiments.RunE12(w, part, m)
		if err != nil {
			b.Fatal(err)
		}
		total += r.TotalCycles
		cycles = r.TotalCycles
	}
	reportSimSpeed(b, total)
	b.ReportMetric(float64(cycles), "simcycles")
}

func BenchmarkL2(b *testing.B) {
	w := experiments.E12Params(experiments.Options{Quick: true})
	for _, tc := range []struct {
		name string
		part cache.PartitionKind
		m    experiments.Mode
	}{
		{"static/lru", cache.PartNone, experiments.Mode{}},
		{"static/ucp", cache.PartUCP, experiments.Mode{}},
		{"dram-open/ucp", cache.PartUCP, experiments.Mode{DRAM: true}},
		{"dram-close/swp", cache.PartSWP, experiments.Mode{DRAM: true, ClosePage: true}},
	} {
		b.Run(tc.name, func(b *testing.B) { benchL2(b, w, tc.part, tc.m) })
	}
}

// --- WarmBoot: restore-and-run vs cold run -------------------------------

// BenchmarkWarmBoot measures the warm-boot saving the WB experiment
// reports: "cold" simulates the GSM workload from cycle 0, "resume"
// restores a half-way snapshot and simulates only the remainder. The
// gap between the two is the warm-up cost a snapshot-fanned sweep
// avoids paying per configuration.
func BenchmarkWarmBoot(b *testing.B) {
	const frames = 10
	total, err := experiments.WarmBootColdRun(frames, experiments.Mode{})
	if err != nil {
		b.Fatal(err)
	}
	snap, _, err := experiments.WarmBootSnapshot(frames, experiments.Mode{}, total)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			n, err := experiments.WarmBootColdRun(frames, experiments.Mode{})
			if err != nil {
				b.Fatal(err)
			}
			cycles += n
		}
		reportSimSpeed(b, cycles)
	})
	b.Run("resume", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			n, err := experiments.WarmBootResume(experiments.Mode{}, snap)
			if err != nil {
				b.Fatal(err)
			}
			cycles += n - total/2
		}
		reportSimSpeed(b, cycles)
	})
}

// --- Service: jobs/sec through the full HTTP + store path ----------------

// BenchmarkServiceThroughput measures end-to-end job throughput of the
// simulation service on a tiny config: POST over HTTP, pool-fanned
// simulation, result-store write, poll to completion. Seeds advance
// per iteration so every leg actually simulates (a cache hit would
// measure the store, not the service). The simcycles/s metric is
// deterministic per leg — the same seeds always simulate the same
// cycles — so regressions in it are service overhead, not workload
// noise.
func BenchmarkServiceThroughput(b *testing.B) {
	store, err := service.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := service.New(service.Config{
		Store:  store,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	post := func(spec service.SweepSpec) string {
		body, err := json.Marshal(spec)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("POST = %d", resp.StatusCode)
		}
		var out map[string]string
		json.NewDecoder(resp.Body).Decode(&out)
		return out["id"]
	}
	poll := func(id string) service.JobView {
		for {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				b.Fatal(err)
			}
			var v service.JobView
			err = json.NewDecoder(resp.Body).Decode(&v)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			switch v.State {
			case service.StateDone:
				return v
			case service.StateFailed, service.StateCanceled:
				b.Fatalf("job %s: %s (%s)", id, v.State, v.Error)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		v := poll(post(service.SweepSpec{
			Name: "bench",
			Legs: []experiments.LegSpec{
				{Name: "a", Workload: "gsm", ISSes: 1, Memories: 1, Frames: 1, Seed: uint32(1 + 2*i)},
				{Name: "b", Workload: "gsm", ISSes: 1, Memories: 1, Frames: 1, Seed: uint32(2 + 2*i)},
			},
		}))
		for _, leg := range v.Legs {
			cycles += leg.SimCycles()
		}
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "jobs/s")
	}
	reportSimSpeed(b, cycles)
}
