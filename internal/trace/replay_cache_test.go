package trace_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/trace"
)

// replayStatic replays tr on a fresh single-master static-memory system,
// optionally behind a private L1, and returns the final memory image and
// replay stats. With a cache the image is read after an explicit flush +
// drain, so every write-back-deferred byte has landed.
func replayStatic(t *testing.T, tr *trace.Trace, cached bool) ([]byte, trace.ReplayStats) {
	t.Helper()
	memBytes := (tr.StaticBytesNeeded() + 63) &^ 63
	sys, err := config.Build(config.SystemConfig{
		Masters: 1, Memories: 1, MemKind: config.MemStatic, MemBytes: memBytes,
		Cache: cached, Coherent: cached,
	})
	if err != nil {
		t.Fatal(err)
	}
	var st trace.ReplayStats
	if err := sys.AddProcs(trace.ReplayTask(tr, trace.ModeStatic, &st)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 100_000_000); err != nil {
		t.Fatal(err)
	}
	sys.FlushCaches()
	if _, err := sys.Kernel.RunUntil(sys.CachesSynced, 100_000_000); err != nil {
		t.Fatal(err)
	}
	img := make([]byte, memBytes)
	for i := range img {
		img[i] = sys.Statics[0].Peek(uint32(i))
	}
	if cached {
		if len(sys.Caches) != 1 {
			t.Fatalf("expected 1 cache, built %d", len(sys.Caches))
		}
		if cst := sys.Caches[0].Stats(); cst.Hits == 0 || cst.Writebacks+cst.SnoopFlushes == 0 {
			t.Fatalf("cached replay exercised no cache behavior: %+v", cst)
		}
	} else if len(sys.Caches) != 0 {
		t.Fatalf("cache-off build created %d caches", len(sys.Caches))
	}
	return img, st
}

// TestReplayCachedImageIdentical replays the same generated address
// stream against a static memory with and without a private L1: the
// final memory image must be byte-identical and every event must
// execute cleanly in both runs. The mix includes scalar reads/writes
// (the cached path), interior-pointer offsets and bursts (the
// flush-and-bypass path), so the write-back and bypass-ordering
// machinery is what keeps the images equal.
func TestReplayCachedImageIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		mix  trace.Mix
		pct  int
	}{
		{"scalar-heavy", trace.Mix{Alloc: 4, Read: 40, Write: 40}, 30},
		{"burst-mixed", trace.Mix{Alloc: 4, Read: 30, Write: 30, ReadBurst: 10, WriteBurst: 10}, 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.Generate(trace.GenConfig{
				Seed: 73, Events: 3000, Slots: 16, NumSM: 1,
				MinDim: 8, MaxDim: 64, DType: bus.U32, Mix: tc.mix, PtrArithPct: tc.pct,
			})
			plain, plainStats := replayStatic(t, tr, false)
			cached, cachedStats := replayStatic(t, tr, true)
			if plainStats != cachedStats {
				t.Fatalf("replay stats diverged: uncached %+v, cached %+v", plainStats, cachedStats)
			}
			if plainStats.Errors != 0 {
				t.Fatalf("replay saw %d in-band errors (last %v)", plainStats.Errors, plainStats.LastErr)
			}
			for i := range plain {
				if plain[i] != cached[i] {
					t.Fatalf("memory image diverged at byte %d: uncached %#x, cached %#x", i, plain[i], cached[i])
				}
			}
		})
	}
}

// TestReplayStatsCounting pins the ReplayStats contract: every event is
// counted exactly once and tolerated contention is not an error.
func TestReplayStatsCounting(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Seed: 5, Events: 500, Slots: 8, NumSM: 1,
		MinDim: 4, MaxDim: 32, DType: bus.U32,
		Mix: trace.Mix{Alloc: 5, Free: 4, Read: 30, Write: 30, Reserve: 6},
	})
	sys, err := config.Build(config.SystemConfig{
		Masters: 1, Memories: 1, MemKind: config.MemWrapper,
	})
	if err != nil {
		t.Fatal(err)
	}
	var st trace.ReplayStats
	if err := sys.AddProcs(trace.ReplayTask(tr, trace.ModeDynamic, &st)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if st.Executed != len(tr.Events) {
		t.Fatalf("executed %d of %d events", st.Executed, len(tr.Events))
	}
	if st.Errors != 0 {
		t.Fatalf("unexpected replay errors: %d (last %v)", st.Errors, st.LastErr)
	}
}
