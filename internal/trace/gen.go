package trace

import (
	"math/rand"

	"repro/internal/bus"
)

// Event is one workload step. Slot names an allocation (the replayer
// maps slots to virtual pointers at run time); Offset is a byte offset
// into the slot for pointer-arithmetic accesses.
type Event struct {
	Op     bus.Op
	SM     int
	Slot   int
	Dim    uint32 // element count for allocs and bursts
	Offset uint32 // byte offset within the slot (element-aligned)
	Value  uint32 // datum for scalar writes
}

// Trace is a replayable workload.
type Trace struct {
	Events []Event
	Slots  int
	DType  bus.DataType
	// MaxDim is the largest allocation in elements, used by the static
	// replay mode to place slot regions.
	MaxDim uint32
}

// Mix weights the operation types in a generated trace. Zero-valued
// fields disable the operation.
type Mix struct {
	Alloc, Free, Read, Write, ReadBurst, WriteBurst, Reserve int
}

// DefaultMix is a read-mostly mix with steady allocation turnover,
// shaped like a streaming media workload (the paper's motivating class).
func DefaultMix() Mix {
	return Mix{Alloc: 10, Free: 9, Read: 40, Write: 25, ReadBurst: 8, WriteBurst: 8}
}

// GenConfig parameterizes the generator.
type GenConfig struct {
	Seed   int64
	Events int
	// Slots bounds the number of simultaneously live allocations.
	Slots int
	// NumSM spreads slots round-robin across this many memory modules.
	NumSM int
	// MinDim and MaxDim bound allocation sizes in elements.
	MinDim, MaxDim uint32
	// DType is the element type of every allocation.
	DType bus.DataType
	// Mix weights the operations.
	Mix Mix
	// PtrArithPct is the percentage (0..100) of scalar accesses aimed at
	// a random interior offset instead of the allocation start.
	PtrArithPct int
	// BurstLen bounds burst lengths in elements (default 16).
	BurstLen uint32
}

// Generate builds a deterministic, valid-by-construction trace.
func Generate(cfg GenConfig) *Trace {
	if cfg.Slots <= 0 {
		cfg.Slots = 16
	}
	if cfg.NumSM <= 0 {
		cfg.NumSM = 1
	}
	if cfg.MinDim == 0 {
		cfg.MinDim = 1
	}
	if cfg.MaxDim < cfg.MinDim {
		cfg.MaxDim = cfg.MinDim
	}
	if cfg.BurstLen == 0 {
		cfg.BurstLen = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Slots: cfg.Slots, DType: cfg.DType, MaxDim: cfg.MaxDim}

	type slotState struct {
		live bool
		dim  uint32
	}
	slots := make([]slotState, cfg.Slots)
	var liveIdx []int

	weights := []struct {
		op bus.Op
		w  int
	}{
		{bus.OpAlloc, cfg.Mix.Alloc},
		{bus.OpFree, cfg.Mix.Free},
		{bus.OpRead, cfg.Mix.Read},
		{bus.OpWrite, cfg.Mix.Write},
		{bus.OpReadBurst, cfg.Mix.ReadBurst},
		{bus.OpWriteBurst, cfg.Mix.WriteBurst},
		{bus.OpReserve, cfg.Mix.Reserve},
	}
	total := 0
	for _, w := range weights {
		total += w.w
	}
	if total == 0 {
		return tr
	}
	pick := func() bus.Op {
		n := rng.Intn(total)
		for _, w := range weights {
			if n < w.w {
				return w.op
			}
			n -= w.w
		}
		return bus.OpRead
	}
	elem := cfg.DType.Size()

	for len(tr.Events) < cfg.Events {
		op := pick()
		switch op {
		case bus.OpAlloc:
			free := -1
			for i, s := range slots {
				if !s.live {
					free = i
					break
				}
			}
			if free < 0 {
				continue // all slots live; try another op
			}
			dim := cfg.MinDim + uint32(rng.Int63n(int64(cfg.MaxDim-cfg.MinDim+1)))
			slots[free] = slotState{live: true, dim: dim}
			liveIdx = append(liveIdx, free)
			tr.Events = append(tr.Events, Event{
				Op: bus.OpAlloc, SM: free % cfg.NumSM, Slot: free, Dim: dim,
			})
		case bus.OpFree:
			if len(liveIdx) == 0 {
				continue
			}
			i := rng.Intn(len(liveIdx))
			slot := liveIdx[i]
			liveIdx = append(liveIdx[:i], liveIdx[i+1:]...)
			slots[slot].live = false
			tr.Events = append(tr.Events, Event{
				Op: bus.OpFree, SM: slot % cfg.NumSM, Slot: slot,
			})
		default:
			if len(liveIdx) == 0 {
				continue
			}
			slot := liveIdx[rng.Intn(len(liveIdx))]
			dim := slots[slot].dim
			ev := Event{Op: op, SM: slot % cfg.NumSM, Slot: slot}
			switch op {
			case bus.OpRead, bus.OpWrite, bus.OpReserve:
				if cfg.PtrArithPct > 0 && rng.Intn(100) < cfg.PtrArithPct {
					ev.Offset = uint32(rng.Int63n(int64(dim))) * elem
				}
				ev.Value = rng.Uint32()
			case bus.OpReadBurst, bus.OpWriteBurst:
				maxN := dim
				if maxN > cfg.BurstLen {
					maxN = cfg.BurstLen
				}
				n := 1 + uint32(rng.Int63n(int64(maxN)))
				start := uint32(0)
				if dim > n {
					start = uint32(rng.Int63n(int64(dim - n + 1)))
				}
				ev.Dim = n
				ev.Offset = start * elem
				ev.Value = rng.Uint32()
			}
			tr.Events = append(tr.Events, ev)
		}
	}
	return tr
}

// Counts returns the number of events per operation, for reporting.
func (t *Trace) Counts() [bus.NumOps]int {
	var c [bus.NumOps]int
	for _, e := range t.Events {
		c[e.Op]++
	}
	return c
}
