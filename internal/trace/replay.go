package trace

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/smapi"
)

// Mode selects how the replayer maps the trace onto the target memory.
type Mode int

const (
	// ModeDynamic issues allocation and free events as bus transactions —
	// the wrapper (or heapsim) manages placement.
	ModeDynamic Mode = iota
	// ModeStatic replays against a static table memory: there is no
	// hardware allocation, so the replayer does what software on such a
	// system must do — carve fixed per-slot regions out of the table and
	// skip alloc/free/reserve transactions entirely.
	ModeStatic
)

// ReplayStats is filled in by the replay task.
type ReplayStats struct {
	Executed int
	Errors   int
	LastErr  bus.ErrCode
}

// ReplayTask builds a smapi.Task that executes the trace in order.
// stats may be nil. In ModeStatic the slot regions are placed at
// slot × MaxDim × elemsize within each module's table.
//
// Replay fails the simulation (task panic → kernel fault) on any
// unexpected in-band error, since generated traces are valid by
// construction; ErrReserved on reserve events is tolerated (contention
// is legal when several replayers share buffers).
func ReplayTask(tr *Trace, mode Mode, stats *ReplayStats) smapi.Task {
	return func(ctx *smapi.Ctx) {
		elem := tr.DType.Size()
		vptrs := make([]uint32, tr.Slots)
		for _, ev := range tr.Events {
			m := ctx.Mem(ev.SM)
			var code bus.ErrCode
			switch ev.Op {
			case bus.OpAlloc:
				if mode == ModeStatic {
					vptrs[ev.Slot] = uint32(ev.Slot) * tr.MaxDim * elem
				} else {
					var v uint32
					v, code = m.Malloc(ev.Dim, tr.DType)
					if code == bus.OK {
						vptrs[ev.Slot] = v
					}
				}
			case bus.OpFree:
				if mode == ModeDynamic {
					code = m.Free(vptrs[ev.Slot])
				}
			case bus.OpRead:
				_, code = m.Read(vptrs[ev.Slot] + ev.Offset)
			case bus.OpWrite:
				code = m.Write(vptrs[ev.Slot]+ev.Offset, ev.Value)
			case bus.OpReadBurst:
				_, code = m.ReadArray(vptrs[ev.Slot]+ev.Offset, ev.Dim)
			case bus.OpWriteBurst:
				buf := make([]uint32, ev.Dim)
				for i := range buf {
					buf[i] = ev.Value + uint32(i)
				}
				code = m.WriteArray(vptrs[ev.Slot]+ev.Offset, buf)
			case bus.OpReserve:
				if mode == ModeDynamic {
					code = m.Reserve(vptrs[ev.Slot] + ev.Offset)
					if code == bus.OK {
						code = m.Release(vptrs[ev.Slot] + ev.Offset)
					} else if code == bus.ErrReserved {
						code = bus.OK // contention is not a replay error
					}
				}
			}
			if stats != nil {
				stats.Executed++
				if code != bus.OK {
					stats.Errors++
					stats.LastErr = code
				}
			}
			if code != bus.OK {
				panic(fmt.Sprintf("trace: %v on slot %d: %v", ev.Op, ev.Slot, code))
			}
		}
	}
}

// StaticBytesNeeded returns the table size one module needs to hold all
// slot regions in ModeStatic.
func (t *Trace) StaticBytesNeeded() uint32 {
	return uint32(t.Slots) * t.MaxDim * t.DType.Size()
}
