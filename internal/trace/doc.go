// Package trace generates and replays synthetic dynamic-memory
// workloads: sequences of allocate / read / write / burst / free events
// with configurable operation mix, allocation-size distribution and
// pointer-arithmetic rate.
//
// Traces are valid by construction (the generator tracks live
// allocations, so frees always target live buffers and accesses stay in
// bounds) and fully deterministic for a given seed, which experiments E2
// through E7 rely on: the *same* event sequence is replayed against the
// dynamic wrapper, the static table memory (with software-managed slot
// placement, as real static-memory systems must do) and the detailed
// heapsim model, isolating the memory model as the only variable.
package trace
