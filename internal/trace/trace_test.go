package trace

import (
	"testing"

	"repro/internal/bus"
)

func TestGenerateValidByConstruction(t *testing.T) {
	tr := Generate(GenConfig{
		Seed: 1, Events: 5000, Slots: 8, NumSM: 3,
		MinDim: 4, MaxDim: 64, DType: bus.U32,
		Mix: DefaultMix(), PtrArithPct: 30,
	})
	if len(tr.Events) != 5000 {
		t.Fatalf("events = %d", len(tr.Events))
	}
	type slotState struct {
		live bool
		dim  uint32
	}
	slots := make([]slotState, tr.Slots)
	elem := tr.DType.Size()
	for i, ev := range tr.Events {
		if ev.SM < 0 || ev.SM >= 3 {
			t.Fatalf("event %d: SM %d out of range", i, ev.SM)
		}
		switch ev.Op {
		case bus.OpAlloc:
			if slots[ev.Slot].live {
				t.Fatalf("event %d: alloc into live slot", i)
			}
			if ev.Dim < 4 || ev.Dim > 64 {
				t.Fatalf("event %d: dim %d out of bounds", i, ev.Dim)
			}
			slots[ev.Slot] = slotState{true, ev.Dim}
		case bus.OpFree:
			if !slots[ev.Slot].live {
				t.Fatalf("event %d: free of dead slot", i)
			}
			slots[ev.Slot].live = false
		case bus.OpRead, bus.OpWrite, bus.OpReserve:
			s := slots[ev.Slot]
			if !s.live {
				t.Fatalf("event %d: access to dead slot", i)
			}
			if ev.Offset%elem != 0 || ev.Offset >= s.dim*elem {
				t.Fatalf("event %d: offset %d invalid for dim %d", i, ev.Offset, s.dim)
			}
		case bus.OpReadBurst, bus.OpWriteBurst:
			s := slots[ev.Slot]
			if !s.live {
				t.Fatalf("event %d: burst on dead slot", i)
			}
			if ev.Offset%elem != 0 || ev.Offset/elem+ev.Dim > s.dim {
				t.Fatalf("event %d: burst overruns: off %d n %d dim %d", i, ev.Offset, ev.Dim, s.dim)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 7, Events: 1000, Slots: 4, MinDim: 1, MaxDim: 32, Mix: DefaultMix()}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Events) != len(b.Events) {
		t.Fatal("lengths differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	c := Generate(GenConfig{Seed: 8, Events: 1000, Slots: 4, MinDim: 1, MaxDim: 32, Mix: DefaultMix()})
	same := true
	for i := range a.Events {
		if i < len(c.Events) && a.Events[i] != c.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateMixRespected(t *testing.T) {
	tr := Generate(GenConfig{
		Seed: 3, Events: 2000, Slots: 8, MinDim: 1, MaxDim: 8,
		Mix: Mix{Alloc: 1, Free: 1, Read: 10}, // no writes or bursts
	})
	c := tr.Counts()
	if c[bus.OpWrite] != 0 || c[bus.OpReadBurst] != 0 || c[bus.OpWriteBurst] != 0 {
		t.Errorf("disabled ops appeared: %v", c)
	}
	if c[bus.OpRead] == 0 || c[bus.OpAlloc] == 0 {
		t.Errorf("enabled ops missing: %v", c)
	}
}

func TestGenerateZeroMix(t *testing.T) {
	tr := Generate(GenConfig{Seed: 1, Events: 10, Mix: Mix{}})
	if len(tr.Events) != 0 {
		t.Errorf("zero mix produced %d events", len(tr.Events))
	}
}

func TestStaticBytesNeeded(t *testing.T) {
	tr := &Trace{Slots: 4, MaxDim: 100, DType: bus.U32}
	if got := tr.StaticBytesNeeded(); got != 1600 {
		t.Errorf("StaticBytesNeeded = %d, want 1600", got)
	}
}

func TestGenerateDefaults(t *testing.T) {
	tr := Generate(GenConfig{Seed: 1, Events: 100, Mix: DefaultMix()})
	if tr.Slots != 16 {
		t.Errorf("default Slots = %d", tr.Slots)
	}
	if len(tr.Events) != 100 {
		t.Errorf("events = %d", len(tr.Events))
	}
}
