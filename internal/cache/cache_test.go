package cache

import (
	"fmt"
	"testing"

	"repro/internal/bus"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/smapi"
)

const ramBytes = 4096

// rig is a hand-wired system: n Procs, each behind a private L1, one
// static RAM on a shared bus (the config package cannot be imported here
// — it imports this package).
type rig struct {
	k      *sim.Kernel
	ram    *mem.StaticRAM
	caches []*Cache
	procs  []*smapi.Proc
	dom    *Domain
}

func buildRig(t *testing.T, cfg Config, coherent, split bool, tasks ...smapi.Task) *rig {
	t.Helper()
	k := sim.New()
	slave := bus.NewPort(k, "s0", bus.PortConfig{Depth: 4})
	r := &rig{k: k, ram: mem.NewStaticRAM(k, mem.Config{Name: "ram", Size: ramBytes, Delays: mem.DefaultDelays()}, slave)}
	if coherent {
		r.dom = NewDomain()
	}
	var downs, wbs []*bus.Port
	n := len(tasks)
	for i, task := range tasks {
		up := bus.NewPort(k, fmt.Sprintf("m%d", i), bus.PortConfig{Depth: 4})
		down := bus.NewPort(k, fmt.Sprintf("c%d", i), bus.PortConfig{Depth: 8, OutOfOrder: true})
		wb := bus.NewPort(k, fmt.Sprintf("w%d", i), bus.PortConfig{Depth: 4, OutOfOrder: true})
		c, err := New(k, cfg, up, down, wb)
		if err != nil {
			t.Fatal(err)
		}
		if r.dom != nil {
			r.dom.Attach(c, i, n+i)
		}
		r.caches = append(r.caches, c)
		downs = append(downs, down)
		wbs = append(wbs, wb)
		r.procs = append(r.procs, smapi.NewProc(k, fmt.Sprintf("pe%d", i), i, up, task))
	}
	b := bus.NewBus(k, "bus", append(downs, wbs...), []*bus.Port{slave}, bus.NewRoundRobin())
	if split {
		b.Split = true
	}
	if r.dom != nil {
		b.Snoop = r.dom
	}
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	done := func() bool {
		for _, p := range r.procs {
			if !p.Done() {
				return false
			}
		}
		return true
	}
	if _, err := r.k.RunUntil(done, 2_000_000); err != nil {
		t.Fatal(err)
	}
}

// drain flushes every cache and runs until all dirty state has landed in
// memory.
func (r *rig) drain(t *testing.T) {
	t.Helper()
	for _, c := range r.caches {
		c.FlushAll()
	}
	synced := func() bool {
		for _, c := range r.caches {
			if !c.Idle() {
				return false
			}
		}
		return true
	}
	if _, err := r.k.RunUntil(synced, 1_000_000); err != nil {
		t.Fatal(err)
	}
}

func must(code bus.ErrCode) {
	if code != bus.OK {
		panic(code)
	}
}

// TestHitServesAndWritesBack: repeated scalar access to one line hits
// after the first miss; the dirty line reaches memory on flush.
func TestHitServesAndWritesBack(t *testing.T) {
	r := buildRig(t, Config{}, false, false, func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		for i := uint32(0); i < 8; i++ {
			must(m.WriteAs(4*i, 0xC0DE0000+i, bus.U32))
		}
		for i := uint32(0); i < 8; i++ {
			v, code := m.ReadAs(4*i, bus.U32)
			must(code)
			if v != 0xC0DE0000+i {
				panic(fmt.Sprintf("read %#x at %d", v, i))
			}
		}
	})
	r.run(t)
	st := r.caches[0].Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one 32-byte line holds all 8 words)", st.Misses)
	}
	if st.Hits != 15 {
		t.Errorf("hits = %d, want 15", st.Hits)
	}
	if r.ram.Stats().Ops[bus.OpWrite] != 0 {
		t.Errorf("scalar writes reached memory despite write-back caching")
	}
	r.drain(t)
	for i := uint32(0); i < 8; i++ {
		got := uint32(r.ram.Peek(4*i)) | uint32(r.ram.Peek(4*i+1))<<8 |
			uint32(r.ram.Peek(4*i+2))<<16 | uint32(r.ram.Peek(4*i+3))<<24
		if got != 0xC0DE0000+i {
			t.Fatalf("memory[%d] = %#x after flush, want %#x", 4*i, got, 0xC0DE0000+i)
		}
	}
}

// TestVictimWriteback: a working set larger than a tiny cache forces
// dirty evictions mid-run; the final image must still be exact.
func TestVictimWriteback(t *testing.T) {
	const words = 64 // 8 lines through a 2-line cache
	r := buildRig(t, Config{Sets: 2, Ways: 1}, false, false, func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		for pass := uint32(0); pass < 2; pass++ {
			for i := uint32(0); i < words; i++ {
				must(m.WriteAs(4*i, pass<<16|i, bus.U32))
			}
		}
	})
	r.run(t)
	if wb := r.caches[0].Stats().Writebacks; wb == 0 {
		t.Fatal("no victim writebacks despite capacity pressure")
	}
	r.drain(t)
	for i := uint32(0); i < words; i++ {
		got := uint32(r.ram.Peek(4*i)) | uint32(r.ram.Peek(4*i+1))<<8 |
			uint32(r.ram.Peek(4*i+2))<<16 | uint32(r.ram.Peek(4*i+3))<<24
		if want := uint32(1)<<16 | i; got != want {
			t.Fatalf("memory[%d] = %#x, want %#x", 4*i, got, want)
		}
	}
}

// TestMESIStates: a lone reader installs Exclusive; a second reader
// downgrades it to Shared; a writer invalidates the peer and the reader
// then observes the written value (dirty supply via deferred grant +
// writeback).
func TestMESIStates(t *testing.T) {
	var stage int // host-shared phase marker, advanced by the tasks
	var observed uint32
	reader := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		if _, code := m.ReadAs(0, bus.U32); code != bus.OK {
			panic("read")
		}
		stage = 1
		for stage < 2 {
			ctx.Sleep(5)
		}
		v, code := m.ReadAs(0, bus.U32)
		must(code)
		observed = v
	}
	writer := func(ctx *smapi.Ctx) {
		for stage < 1 {
			ctx.Sleep(5)
		}
		m := ctx.Mem(0)
		if _, code := m.ReadAs(0, bus.U32); code != bus.OK {
			panic("read")
		}
		must(m.WriteAs(0, 0xBEEF, bus.U32))
		stage = 2
	}
	r := buildRig(t, Config{}, true, false, reader, writer)
	r.run(t)
	if observed != 0xBEEF {
		t.Fatalf("reader observed %#x after peer write, want 0xBEEF", observed)
	}
	st0, st1 := r.caches[0].Stats(), r.caches[1].Stats()
	if st0.SnoopInvalidations == 0 {
		t.Errorf("reader cache was never invalidated: %+v", st0)
	}
	if st1.SnoopFlushes == 0 && st1.SnoopDowngrades == 0 {
		// The writer's M line must have been flushed (or its E downgraded,
		// depending on interleaving) when the reader re-read it.
		t.Errorf("writer cache neither flushed nor downgraded: %+v", st1)
	}
	// After the run no two caches may hold the line exclusively.
	if err := CheckExclusivity(r.caches); err != nil {
		t.Fatal(err)
	}
}

// TestBypassOrdering: bursts bypass the cache but must observe (and be
// observed by) cached scalar traffic — flush-before-forward on reads,
// invalidate on writes.
func TestBypassOrdering(t *testing.T) {
	r := buildRig(t, Config{}, false, false, func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		// Dirty a line with byte scalars, then read it back via a burst
		// (ReadArray/WriteArray move U8 elements).
		for i := uint32(0); i < 8; i++ {
			must(m.WriteAs(i, 0xA0+i, bus.U8))
		}
		got, code := m.ReadArray(0, 8)
		must(code)
		for i, v := range got {
			if v != 0xA0+uint32(i) {
				panic(fmt.Sprintf("burst read %#x at %d, want %#x", v, i, 0xA0+uint32(i)))
			}
		}
		// Overwrite via burst, then read back through the cache.
		buf := make([]uint32, 8)
		for i := range buf {
			buf[i] = 0xB0 + uint32(i)
		}
		must(m.WriteArray(0, buf))
		for i := uint32(0); i < 8; i++ {
			v, code := m.ReadAs(i, bus.U8)
			must(code)
			if v != 0xB0+i {
				panic(fmt.Sprintf("scalar read %#x at %d after burst write", v, i))
			}
		}
	})
	r.run(t)
	if by := r.caches[0].Stats().Bypassed; by != 2 {
		t.Errorf("bypassed = %d, want 2 (the two bursts)", by)
	}
}

// scriptMaster issues scalar reads back-to-back up to the port's credit
// pool — a multi-outstanding master exercising MSHR overlap.
type scriptMaster struct {
	port  *bus.Port
	reqs  []bus.Request
	next  int
	resps []bus.Response
}

func (s *scriptMaster) Name() string { return "script" }
func (s *scriptMaster) Tick(cycle uint64) {
	for _, resp := range s.port.Completions() {
		s.resps = append(s.resps, resp)
	}
	for s.next < len(s.reqs) && s.port.CanIssue() {
		s.port.Issue(s.reqs[s.next])
		s.next++
	}
}
func (s *scriptMaster) done() bool {
	return s.next == len(s.reqs) && len(s.resps) == len(s.reqs)
}

// TestMSHROverlap: four reads to four distinct lines issued in one burst
// of credits ride concurrent MSHRs; in-order delivery returns them in
// issue order with correct data.
func TestMSHROverlap(t *testing.T) {
	k := sim.New()
	slave := bus.NewPort(k, "s0", bus.PortConfig{Depth: 4})
	ram := mem.NewStaticRAM(k, mem.Config{Name: "ram", Size: ramBytes, Delays: mem.DefaultDelays()}, slave)
	_ = ram
	up := bus.NewPort(k, "m0", bus.PortConfig{Depth: 4})
	down := bus.NewPort(k, "c0", bus.PortConfig{Depth: 8, OutOfOrder: true})
	wb := bus.NewPort(k, "w0", bus.PortConfig{Depth: 4, OutOfOrder: true})
	c, err := New(k, Config{MSHRs: 4}, up, down, wb)
	if err != nil {
		t.Fatal(err)
	}
	b := bus.NewBus(k, "bus", []*bus.Port{down, wb}, []*bus.Port{slave}, bus.NewRoundRobin())
	b.Split = true
	b.RespArb = bus.NewRoundRobin()

	sm := &scriptMaster{port: up}
	for i := 0; i < 4; i++ {
		sm.reqs = append(sm.reqs, bus.Request{Op: bus.OpRead, SM: 0, VPtr: uint32(i) * 64, DType: bus.U32})
	}
	k.Add(sm)
	if _, err := k.RunUntil(sm.done, 100000); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != 4 {
		t.Errorf("misses = %d, want 4", got)
	}
	for i, resp := range sm.resps {
		if resp.Err != bus.OK || resp.Data != 0 {
			t.Errorf("resp %d = %+v, want OK/0", i, resp)
		}
	}
}

// TestFalseSharingImage: two PEs hammer adjacent words of the same line
// under coherence; the final image holds both PEs' last values exactly.
func TestFalseSharingImage(t *testing.T) {
	const rounds = 20
	task := func(id uint32) smapi.Task {
		return func(ctx *smapi.Ctx) {
			m := ctx.Mem(0)
			for i := uint32(1); i <= rounds; i++ {
				must(m.WriteAs(4*id, id<<24|i, bus.U32))
				if _, code := m.ReadAs(4*(1-id), bus.U32); code != bus.OK {
					panic("read")
				}
			}
		}
	}
	for _, split := range []bool{false, true} {
		r := buildRig(t, Config{}, true, split, task(0), task(1))
		r.run(t)
		r.drain(t)
		for id := uint32(0); id < 2; id++ {
			got := uint32(r.ram.Peek(4*id)) | uint32(r.ram.Peek(4*id+1))<<8 |
				uint32(r.ram.Peek(4*id+2))<<16 | uint32(r.ram.Peek(4*id+3))<<24
			if want := id<<24 | rounds; got != want {
				t.Fatalf("split=%v: word %d = %#x, want %#x", split, id, got, want)
			}
		}
		inv := r.caches[0].Stats().SnoopInvalidations + r.caches[1].Stats().SnoopInvalidations
		if inv == 0 {
			t.Errorf("split=%v: false sharing produced no invalidations", split)
		}
	}
}
