package cache

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bus"
	"repro/internal/sim"
)

// State is a line's MESI state.
type State uint8

const (
	// Invalid: the way holds no line.
	Invalid State = iota
	// Shared: clean, peers may hold copies.
	Shared
	// Exclusive: clean, no peer holds a copy.
	Exclusive
	// Modified: dirty, no peer holds a copy; memory is stale.
	Modified
)

// String returns the state's MESI letter.
func (s State) String() string {
	switch s {
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "I"
	}
}

// Config parameterizes one cache.
type Config struct {
	// Name labels the module.
	Name string
	// Sets and Ways are the geometry (defaults 64 sets × 2 ways).
	Sets, Ways int
	// LineBytes is the line size in bytes, a multiple of 4 (default 32).
	LineBytes uint32
	// MSHRs is the number of miss-status-holding registers — the maximum
	// number of outstanding line misses (default 4).
	MSHRs int
	// Cacheable reports whether scalar accesses to module sm may be
	// cached. Nil means every module is cacheable. Non-cacheable traffic
	// passes through untouched (and still participates in snooping at
	// the interconnect).
	Cacheable func(sm int) bool
}

// Stats counts cache activity. All counters are event counts (never
// per-cycle), so they are identical across every kernel scheduling mode
// by construction.
type Stats struct {
	Hits, Misses uint64
	// Upgrades counts write hits on Shared lines — coherence misses that
	// refetch the line exclusively. They are also counted in Misses.
	Upgrades uint64
	// Refills counts installed lines; Writebacks counts victim evictions
	// of Modified lines.
	Refills, Writebacks uint64
	// SnoopFlushes counts dirty lines written back on peer demand (snoop
	// hit M, plus host-requested FlushAll); SnoopInvalidations and
	// SnoopDowngrades count lines dropped resp. demoted E→S by the snoop
	// broadcast.
	SnoopFlushes, SnoopInvalidations, SnoopDowngrades uint64
	// Bypassed counts requests forwarded downstream uncached.
	Bypassed uint64
	// Errors counts refills and forwarded requests completing with an
	// in-band error (propagated to the master).
	Errors uint64
	// BackInvalidations counts lines dropped because an inclusive L2
	// evicted their parent; KilledRefills counts granted refills
	// discarded and refetched for the same reason.
	BackInvalidations, KilledRefills uint64
}

// HitRate returns hits over cacheable accesses.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type line struct {
	state State
	sm    int
	base  uint32
	data  []byte
	used  uint64 // LRU stamp
}

type waiter struct {
	tag bus.Tag
	req bus.Request
}

// mshr is one outstanding line miss.
type mshr struct {
	sm       int
	base     uint32
	excl     bool
	set, way int
	// issued: the refill request was issued into the down port.
	// granted: the interconnect granted its address phase (set by the
	// Domain at OnGrant) — from then until install this MSHR defers
	// conflicting peer grants. shared: a peer held a valid copy at grant
	// time, so a clean install is S rather than E. killed: an inclusive
	// L2 evicted the line after the grant; the arriving refill data is
	// stale and must be discarded and refetched (see install).
	issued, granted, shared, killed bool
	tag                             bus.Tag
	waiters                         []waiter
}

// wbEntry is one line writeback pending issue or in flight.
type wbEntry struct {
	sm   int
	base uint32
	data []byte
}

// bypass is a popped request awaiting downstream forwarding. The wait
// range [lo, hi) in module sm (needWait) holds the forward back until no
// writeback overlapping it is queued or in flight.
type bypass struct {
	upTag    bus.Tag
	req      bus.Request
	needWait bool
	sm       int
	lo, hi   uint32
}

// Cache is the L1 module. See the package documentation for the
// protocol.
type Cache struct {
	name string
	cfg  Config
	k    *sim.Kernel

	domain *Domain

	// up faces the master; down carries refills and pass-through
	// requests; wb is the dedicated writeback channel. Writebacks must
	// ride their own interconnect port: a writeback queued behind a
	// snoop-deferred refill in one FIFO would deadlock the protocol (two
	// caches each deferring the other's refill while holding the
	// resolving writeback captive behind their own).
	up, down, wb *bus.Port

	sets     [][]line
	useClock uint64

	mshrs      []*mshr
	wbq        []*wbEntry           // writebacks pending issue, FIFO
	wbInflight map[bus.Tag]*wbEntry // issued, not yet completed
	fwd        map[bus.Tag]bus.Tag  // forwarded bypass: down tag → up tag
	pending    *bypass              // popped bypass not yet forwarded

	stats Stats
}

// New creates a cache between the given up (master-facing, slave side)
// and interconnect-facing master ports: down carries refills and
// pass-through requests, wb is the dedicated writeback channel (see the
// Cache field docs for why it must be separate). The down port should
// be deep enough for the MSHR count plus pass-through traffic and
// deliver out of order (the cache routes completions by tag).
func New(k *sim.Kernel, cfg Config, up, down, wb *bus.Port) (*Cache, error) {
	if cfg.Name == "" {
		cfg.Name = "l1"
	}
	if cfg.Sets <= 0 {
		cfg.Sets = 64
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 2
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 32
	}
	if cfg.LineBytes%4 != 0 {
		return nil, fmt.Errorf("cache: line size %d not a multiple of 4", cfg.LineBytes)
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 4
	}
	c := &Cache{
		name:       cfg.Name,
		cfg:        cfg,
		k:          k,
		up:         up,
		down:       down,
		wb:         wb,
		sets:       make([][]line, cfg.Sets),
		wbInflight: make(map[bus.Tag]*wbEntry),
		fwd:        make(map[bus.Tag]bus.Tag),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
		for w := range c.sets[i] {
			c.sets[i][w].data = make([]byte, cfg.LineBytes)
		}
	}
	k.Add(c)
	return c, nil
}

// Name implements sim.Module.
func (c *Cache) Name() string { return c.name }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() uint32 { return c.cfg.LineBytes }

func (c *Cache) cacheable(sm int) bool {
	return sm >= 0 && (c.cfg.Cacheable == nil || c.cfg.Cacheable(sm))
}

func (c *Cache) lineBase(addr uint32) uint32 { return addr - addr%c.cfg.LineBytes }

func (c *Cache) setIndex(sm int, base uint32) int {
	return int((base/c.cfg.LineBytes + uint32(sm)) % uint32(c.cfg.Sets))
}

func (c *Cache) touch(ln *line) {
	c.useClock++
	ln.used = c.useClock
}

// lookup returns the way holding (sm, base), valid or not found.
func (c *Cache) lookup(sm int, base uint32) (set int, way int, ok bool) {
	set = c.setIndex(sm, base)
	for w := range c.sets[set] {
		ln := &c.sets[set][w]
		if ln.state != Invalid && ln.sm == sm && ln.base == base {
			return set, w, true
		}
	}
	return set, 0, false
}

// overlaps reports whether line (sm, base) intersects [lo, hi) in module
// sm.
func lineOverlaps(lineSM int, base, lineBytes uint32, sm int, lo, hi uint32) bool {
	return lineSM == sm && base < hi && lo < base+lineBytes
}

// Tick implements sim.Module.
func (c *Cache) Tick(cycle uint64) {
	c.drainCompletions()
	c.processHead()
	c.issueDown()
}

// drainCompletions consumes every down-port completion deliverable this
// cycle: writeback acknowledgements, forwarded-request responses and
// line refills (install + waiter service).
func (c *Cache) drainCompletions() {
	for tag, resp := range c.wb.Completions() {
		if _, ok := c.wbInflight[tag]; !ok {
			c.k.Fault(fmt.Errorf("%s: writeback completion for unknown tag %d", c.name, tag))
			continue
		}
		delete(c.wbInflight, tag)
		if resp.Err != bus.OK {
			// A failed writeback silently loses committed data — a
			// configuration error (non-flat cacheable memory), not a
			// modelled condition the master could handle.
			c.k.Fault(fmt.Errorf("%s: writeback failed: %v", c.name, resp.Err))
		}
	}
	for tag, resp := range c.down.Completions() {
		if upTag, ok := c.fwd[tag]; ok {
			delete(c.fwd, tag)
			if resp.Err != bus.OK {
				c.stats.Errors++
			}
			c.up.Complete(upTag, resp)
			continue
		}
		if m := c.mshrByTag(tag); m != nil {
			c.install(m, resp)
			continue
		}
		c.k.Fault(fmt.Errorf("%s: completion for unknown tag %d", c.name, tag))
	}
}

func (c *Cache) mshrByTag(tag bus.Tag) *mshr {
	for _, m := range c.mshrs {
		if m.issued && m.tag == tag {
			return m
		}
	}
	return nil
}

func (c *Cache) removeMSHR(m *mshr) {
	for i, x := range c.mshrs {
		if x == m {
			c.mshrs = append(c.mshrs[:i], c.mshrs[i+1:]...)
			return
		}
	}
}

// install writes a completed refill into its target way and serves the
// MSHR's waiters in arrival order. A killed MSHR (its line was
// back-invalidated by an inclusive L2 between grant and install)
// discards the stale data and resets to unissued: the refill reissues
// from scratch — fresh address phase, fresh snoop — with its waiter
// queue intact.
func (c *Cache) install(m *mshr, resp bus.Response) {
	if m.killed {
		m.killed, m.issued, m.granted, m.shared = false, false, false, false
		c.stats.KilledRefills++
		return
	}
	if resp.Err != bus.OK {
		for _, w := range m.waiters {
			c.stats.Errors++
			c.up.Complete(w.tag, bus.Response{Err: resp.Err})
		}
		c.removeMSHR(m)
		return
	}
	ln := &c.sets[m.set][m.way]
	ln.sm, ln.base = m.sm, m.base
	for i, v := range resp.Burst {
		binary.LittleEndian.PutUint32(ln.data[i*4:], v)
	}
	switch {
	case m.excl:
		// Peers were invalidated at the grant; the first waiter (the
		// missing write) dirties the line to Modified below.
		ln.state = Exclusive
	case m.shared:
		ln.state = Shared
	default:
		ln.state = Exclusive
	}
	c.stats.Refills++
	c.touch(ln)
	for _, w := range m.waiters {
		off := w.req.VPtr - m.base
		if w.req.Op == bus.OpWrite {
			writeElem(ln.data[off:], w.req.DType, w.req.Data)
			ln.state = Modified
			c.up.Complete(w.tag, bus.Response{})
		} else {
			c.up.Complete(w.tag, bus.Response{Data: readElem(ln.data[off:], w.req.DType)})
		}
	}
	c.removeMSHR(m)
}

// cacheableScalar reports whether req is a scalar access the cache may
// serve from a line: OpRead/OpWrite, cacheable module, and the element
// contained in one line.
func (c *Cache) cacheableScalar(req bus.Request) bool {
	if req.Op != bus.OpRead && req.Op != bus.OpWrite {
		return false
	}
	if !c.cacheable(req.SM) {
		return false
	}
	off := req.VPtr % c.cfg.LineBytes
	return off+req.DType.Size() <= c.cfg.LineBytes
}

// processHead examines the up-port queue head and pops at most one
// request: a hit is served immediately, a miss allocates or joins an
// MSHR, anything non-cacheable becomes a pending bypass. The head stays
// queued when the cache cannot act on it yet (MSHRs exhausted, an
// incompatible in-flight miss, a bypass overlapping an in-flight miss,
// or an unforwarded bypass occupying the single bypass slot).
func (c *Cache) processHead() {
	if c.pending != nil {
		return
	}
	req, ok := c.up.Peek()
	if !ok {
		return
	}
	if c.cacheableScalar(req) {
		c.processScalar(req)
		return
	}
	c.processBypass(req)
}

func (c *Cache) processScalar(req bus.Request) {
	base := c.lineBase(req.VPtr)
	isWrite := req.Op == bus.OpWrite

	// An in-flight miss on the line orders every later access to it:
	// coalesce when compatible, otherwise wait for the install.
	if m := c.findMSHR(req.SM, base); m != nil {
		if isWrite && !m.excl {
			return
		}
		tx, _ := c.up.Pop()
		c.stats.Misses++
		m.waiters = append(m.waiters, waiter{tag: tx.Tag, req: req})
		return
	}

	if set, way, ok := c.lookup(req.SM, base); ok {
		ln := &c.sets[set][way]
		if !isWrite {
			tx, _ := c.up.Pop()
			c.stats.Hits++
			c.touch(ln)
			off := req.VPtr - base
			c.up.Complete(tx.Tag, bus.Response{Data: readElem(ln.data[off:], req.DType)})
			return
		}
		if ln.state == Modified || ln.state == Exclusive {
			tx, _ := c.up.Pop()
			c.stats.Hits++
			c.touch(ln)
			writeElem(ln.data[req.VPtr-base:], req.DType, req.Data)
			ln.state = Modified
			c.up.Complete(tx.Tag, bus.Response{})
			return
		}
		// Write hit on Shared: an upgrade — refetch the line exclusively
		// into the same way. The local copy stays S until the install.
		if c.allocMSHR(req, base, set, way) {
			c.stats.Upgrades++
		}
		return
	}

	set := c.setIndex(req.SM, base)
	way, ok := c.victimWay(set)
	if !ok {
		return // every way's line has an in-flight miss installing into it
	}
	c.allocMSHR(req, base, set, way)
}

// victimWay picks the way a refill will install into: an invalid way if
// one exists, otherwise the least-recently-used way that is not already
// the target of an in-flight MSHR.
func (c *Cache) victimWay(set int) (int, bool) {
	best, bestUsed, ok := 0, ^uint64(0), false
	for w := range c.sets[set] {
		ln := &c.sets[set][w]
		if c.wayReserved(set, w) {
			continue
		}
		if ln.state == Invalid {
			return w, true
		}
		if ln.used < bestUsed {
			best, bestUsed, ok = w, ln.used, true
		}
	}
	return best, ok
}

func (c *Cache) wayReserved(set, way int) bool {
	for _, m := range c.mshrs {
		if m.set == set && m.way == way {
			return true
		}
	}
	return false
}

// allocMSHR pops the head request into a fresh MSHR for (sm, base)
// installing into (set, way), evicting a dirty victim to the writeback
// queue. No-op (head stays queued) when every MSHR is in use.
func (c *Cache) allocMSHR(req bus.Request, base uint32, set, way int) bool {
	if len(c.mshrs) >= c.cfg.MSHRs {
		return false
	}
	tx, _ := c.up.Pop()
	ln := &c.sets[set][way]
	if ln.state == Modified {
		c.evict(ln)
	} else if ln.state != Invalid && !(ln.sm == req.SM && ln.base == base) {
		ln.state = Invalid
	}
	c.stats.Misses++
	c.mshrs = append(c.mshrs, &mshr{
		sm: req.SM, base: base, excl: req.Op == bus.OpWrite,
		set: set, way: way,
		waiters: []waiter{{tag: tx.Tag, req: req}},
	})
	return true
}

func (c *Cache) findMSHR(sm int, base uint32) *mshr {
	for _, m := range c.mshrs {
		if m.sm == sm && m.base == base {
			return m
		}
	}
	return nil
}

// evict moves a Modified line onto the writeback queue and invalidates
// the way. The queued range keeps deferring peer grants (via the Domain)
// until the writeback has landed in memory.
func (c *Cache) evict(ln *line) {
	c.stats.Writebacks++
	c.wbq = append(c.wbq, &wbEntry{
		sm: ln.sm, base: ln.base,
		data: append([]byte(nil), ln.data...),
	})
	ln.state = Invalid
}

// dataRange returns the byte range [lo, hi) in module sm that a data
// operation touches. ok is false for operations without one (alloc,
// free, reserve, release).
func dataRange(req bus.Request) (sm int, lo, hi uint32, ok bool) {
	es := req.DType.Size()
	switch req.Op {
	case bus.OpRead, bus.OpWrite:
		return req.SM, req.VPtr, req.VPtr + es, true
	case bus.OpReadBurst:
		return req.SM, req.VPtr, req.VPtr + req.Dim*es, true
	case bus.OpWriteBurst:
		return req.SM, req.VPtr, req.VPtr + uint32(len(req.Burst))*es, true
	default:
		return 0, 0, 0, false
	}
}

// processBypass pops a non-cacheable request into the bypass slot after
// making the cache's own copies safe: overlapping dirty lines are
// written back (and FIFO issue order puts those writebacks ahead of the
// forwarded request), and overlapping lines are invalidated when the
// request writes. OpFree conservatively flushes and invalidates every
// line of its module — the cache cannot know the freed extent, and the
// address range may be reused by a later allocation.
func (c *Cache) processBypass(req bus.Request) {
	sm, lo, hi, data := dataRange(req)
	if data && c.cacheable(sm) {
		// An in-flight miss overlapping the range must install first;
		// forwarding now could reorder the bypass around the refill.
		for _, m := range c.mshrs {
			if lineOverlaps(m.sm, m.base, c.cfg.LineBytes, sm, lo, hi) {
				return
			}
		}
	}
	if req.Op == bus.OpFree && c.cacheable(req.SM) {
		// A free's invalidation sweep cannot cover a refill that has not
		// installed yet — it would re-create a valid line over freed
		// memory. The freed extent is unknown, so wait out every miss in
		// the module.
		for _, m := range c.mshrs {
			if m.sm == req.SM {
				return
			}
		}
	}
	tx, ok := c.up.Pop()
	if !ok {
		return
	}
	p := &bypass{upTag: tx.Tag, req: req}
	if data && c.cacheable(sm) {
		write := req.Op == bus.OpWrite || req.Op == bus.OpWriteBurst
		c.flushRange(sm, lo, hi, write)
		p.needWait, p.sm, p.lo, p.hi = true, sm, lo, hi
	}
	if req.Op == bus.OpFree && c.cacheable(req.SM) {
		c.flushRange(req.SM, 0, ^uint32(0), true)
		p.needWait, p.sm, p.lo, p.hi = true, req.SM, 0, ^uint32(0)
	}
	c.stats.Bypassed++
	c.pending = p
}

// visitOverlapping calls f for every valid line overlapping [lo, hi) in
// module sm. Ranges within one line — the scalar, refill and
// whole-line-writeback cases that dominate snoop traffic — resolve with
// a single set lookup; only multi-line ranges (line-crossing bursts,
// the unbounded OpFree flush) walk the full geometry.
func (c *Cache) visitOverlapping(sm int, lo, hi uint32, f func(ln *line)) {
	if lo < hi && (hi-1)/c.cfg.LineBytes == lo/c.cfg.LineBytes {
		if set, way, ok := c.lookup(sm, c.lineBase(lo)); ok {
			f(&c.sets[set][way])
		}
		return
	}
	for s := range c.sets {
		for w := range c.sets[s] {
			ln := &c.sets[s][w]
			if ln.state != Invalid && lineOverlaps(ln.sm, ln.base, c.cfg.LineBytes, sm, lo, hi) {
				f(ln)
			}
		}
	}
}

// flushRange writes back every dirty line overlapping [lo, hi) in module
// sm (M→S) and, when invalidate is set, drops every overlapping line.
func (c *Cache) flushRange(sm int, lo, hi uint32, invalidate bool) {
	c.visitOverlapping(sm, lo, hi, func(ln *line) {
		if ln.state == Modified {
			c.evict(ln)
			if !invalidate {
				// evict invalidated; restore the clean copy.
				ln.state = Shared
			}
			return
		}
		if invalidate {
			ln.state = Invalid
		}
	})
}

// wbOverlap reports whether a queued or in-flight writeback intersects
// [lo, hi) in module sm. Refills and forwarded requests must not issue
// while one does: writebacks travel on their own port, so only
// completion — not FIFO position — orders them ahead of dependent
// reads.
func (c *Cache) wbOverlap(sm int, lo, hi uint32) bool {
	for _, e := range c.wbq {
		if lineOverlaps(e.sm, e.base, c.cfg.LineBytes, sm, lo, hi) {
			return true
		}
	}
	for _, e := range c.wbInflight {
		if lineOverlaps(e.sm, e.base, c.cfg.LineBytes, sm, lo, hi) {
			return true
		}
	}
	return false
}

// issueDown issues at most one writeback (on the dedicated wb port) and
// one request (on the down port) per cycle. Refills issue in MSHR
// creation order, each held back while a writeback of its own line is
// outstanding; the pending bypass goes last, held back the same way.
func (c *Cache) issueDown() {
	if len(c.wbq) > 0 && c.wb.CanIssue() {
		e := c.wbq[0]
		c.wbq = c.wbq[1:]
		words := make([]uint32, c.cfg.LineBytes/4)
		for i := range words {
			words[i] = binary.LittleEndian.Uint32(e.data[i*4:])
		}
		tag := c.wb.Issue(bus.Request{
			Op: bus.OpWriteBurst, SM: e.sm, VPtr: e.base,
			Dim: uint32(len(words)), DType: bus.U32, Burst: words, WB: true,
		})
		c.wbInflight[tag] = e
	}
	if !c.down.CanIssue() {
		return
	}
	for _, m := range c.mshrs {
		if m.issued {
			continue
		}
		if c.wbOverlap(m.sm, m.base, m.base+c.cfg.LineBytes) {
			continue
		}
		m.tag = c.down.Issue(bus.Request{
			Op: bus.OpReadBurst, SM: m.sm, VPtr: m.base,
			Dim: c.cfg.LineBytes / 4, DType: bus.U32, Excl: m.excl,
		})
		m.issued = true
		return
	}
	if c.pending != nil {
		if c.pending.needWait && c.wbOverlap(c.pending.sm, c.pending.lo, c.pending.hi) {
			return
		}
		tag := c.down.Issue(c.pending.req)
		c.fwd[tag] = c.pending.upTag
		c.pending = nil
	}
}

// NextWake implements sim.Sleeper. Every condition the cache acts on is
// either already visible (pending requests, deliverable completions,
// queued work — wake now) or arrives via a port signal commit, which
// wakes every sleeper.
func (c *Cache) NextWake(now uint64) uint64 {
	if c.down.HasCompletion() || c.wb.HasCompletion() || c.up.Pending() ||
		len(c.wbq) > 0 || c.pending != nil || c.unissuedMSHR() {
		return now
	}
	return sim.WakeNever
}

func (c *Cache) unissuedMSHR() bool {
	for _, m := range c.mshrs {
		if !m.issued {
			return true
		}
	}
	return false
}

// Skip implements sim.Sleeper. The cache keeps no per-cycle counters, so
// skipped idle cycles need no accounting.
func (c *Cache) Skip(n uint64) {}

// ConcurrentTick implements sim.Concurrent: a standalone cache touches
// only its own state plus the slave side of its up port and the master
// sides of its down and writeback ports, so it ticks concurrently.
// Attached to a snoop domain, its state is also mutated by the
// interconnect's Tick, so it must co-schedule on the serial shard.
func (c *Cache) ConcurrentTick() bool { return c.domain == nil }

// TickWeight implements sim.Weighted: a tag lookup plus queue headwork
// per cycle.
func (c *Cache) TickWeight() int { return 4 }

// --- host-side inspection and drain ---

// FlushAll queues a writeback for every Modified line (M→S), as the
// snoop phase would. Call between kernel steps, then run until Synced to
// guarantee memory holds every committed write — the experiment
// harnesses verify final memory images this way.
func (c *Cache) FlushAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			if ln := &c.sets[s][w]; ln.state == Modified {
				c.stats.SnoopFlushes++
				c.evict(ln)
				ln.state = Shared
			}
		}
	}
}

// Synced reports whether no dirty state is outstanding: no Modified
// line, no queued and no in-flight writeback.
func (c *Cache) Synced() bool {
	if len(c.wbq) > 0 || len(c.wbInflight) > 0 {
		return false
	}
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].state == Modified {
				return false
			}
		}
	}
	return true
}

// Idle reports whether the cache has no work at all: synced, no MSHR, no
// bypass in flight and nothing queued on the up port.
func (c *Cache) Idle() bool {
	return c.Synced() && len(c.mshrs) == 0 && c.pending == nil &&
		len(c.fwd) == 0 && !c.up.Pending()
}

// VisitLines calls f for every valid line (tests and invariant
// checkers).
func (c *Cache) VisitLines(f func(sm int, base uint32, st State)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if ln := &c.sets[s][w]; ln.state != Invalid {
				f(ln.sm, ln.base, ln.state)
			}
		}
	}
}

// Element access within a line uses the shared bus.DataType codec, so
// the cache returns bit-for-bit what the byte-backed memories it fronts
// would.
func readElem(b []byte, dt bus.DataType) uint32       { return dt.ReadElem(b) }
func writeElem(b []byte, dt bus.DataType, val uint32) { dt.WriteElem(b, val) }
