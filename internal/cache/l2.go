package cache

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bus"
	"repro/internal/sim"
)

// L2Config parameterizes the shared L2.
type L2Config struct {
	// Name labels the module.
	Name string
	// Sets and Ways are the geometry (defaults 64 sets × 8 ways).
	Sets, Ways int
	// LineBytes is the L2 line size, a multiple of 4 (default 64). When
	// L1s sit above it, config enforces that it is a multiple of the L1
	// line size so every L1 line has exactly one covering L2 line.
	LineBytes uint32
	// MSHRs bounds outstanding L2 misses (default 8).
	MSHRs int
	// Masters is the number of L1 masters above the interconnect, for
	// way partitioning: a request stamped with interconnect master port
	// m belongs to core m % Masters (down and writeback ports of one L1
	// are Masters apart in the interconnect's master list). Zero
	// disables the mapping (every request is unconstrained).
	Masters int
	// Partition selects the victim-way policy; SWPMasks overrides the
	// equal split for PartSWP; UCPPeriod is the repartition period in
	// demand accesses for PartUCP (default 2048).
	Partition PartitionKind
	SWPMasks  []uint64
	UCPPeriod uint64
	// Cacheable reports whether lines of memory module sm may be
	// cached. Nil means every module is cacheable.
	Cacheable func(sm int) bool
}

// L2Stats counts shared-L2 activity. All counters are event counts, so
// they are identical across every kernel scheduling mode.
type L2Stats struct {
	// Hits and Misses classify cacheable accesses, L1 writebacks
	// included (a WB that misses write-allocates and counts as a miss).
	Hits, Misses uint64
	// WBAllocates counts L1 writebacks that missed and write-allocated —
	// the safety net that guarantees no dirty data is lost when a
	// writeback races an inclusion eviction of its line.
	WBAllocates uint64
	// Refills counts installed lines; Writebacks counts dirty victim
	// lines (and clean victims that absorbed dirty L1 data during
	// back-invalidation) queued to memory.
	Refills, Writebacks uint64
	// BackInvalidations counts inclusion sweeps (valid victims evicted
	// while L1s sit above); DirtyMerges counts sweeps that pulled
	// Modified L1 data into the victim before it went to memory.
	BackInvalidations, DirtyMerges uint64
	// Bypassed counts requests forwarded to memory uncached.
	Bypassed uint64
	// Errors counts refills and forwarded requests completing with an
	// in-band error.
	Errors uint64
	// Repartitions counts UCP mask recomputations.
	Repartitions uint64
}

// HitRate returns hits over cacheable accesses.
func (s L2Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// l2mshr is one outstanding L2 line miss. Unlike the L1 there is no
// exclusivity: the L2 is the coherence point's backing store, its lines
// are just clean (Shared) or dirty (Modified), and every access type
// coalesces onto an in-flight miss of its line.
type l2mshr struct {
	sm       int
	base     uint32
	set, way int
	issued   bool
	tag      bus.Tag
	waiters  []waiter
}

// l2bypass is a popped request awaiting forwarding to memory sm (the up
// index it arrived on). The wait range holds the forward back until no
// writeback overlapping it is queued or in flight.
type l2bypass struct {
	upTag    bus.Tag
	req      bus.Request
	needWait bool
	lo, hi   uint32
}

// L2 is a shared, inclusive, set-associative second-level cache
// interposed between the interconnect and the memory modules: up port i
// is the interconnect's slave port for memory i (so L1 misses, L1
// writebacks and bypass traffic all flow in through it), and down port
// i is a private FIFO link to memory i. Because each down link is
// point-to-point and in-order, issue order alone orders writebacks
// ahead of dependent refills — the L2 needs no separate writeback
// channel and no snoop hook of its own. See the package documentation
// for the inclusion protocol.
type L2 struct {
	name string
	cfg  L2Config
	k    *sim.Kernel

	// dom is the L1 coherence domain sitting above, used to back-
	// invalidate L1 copies when an inclusion victim is evicted. Nil when
	// the L2 runs standalone.
	dom *Domain

	ups, downs []*bus.Port

	sets     [][]line
	useClock uint64

	mshrs      []*l2mshr
	wbq        [][]*wbEntry           // per-memory unissued writebacks, FIFO
	wbInflight []map[bus.Tag]*wbEntry // per-memory issued writebacks
	fwd        []map[bus.Tag]bus.Tag  // per-memory forwarded bypass: down tag → up tag
	pending    []*l2bypass            // per-up popped bypass not yet forwarded

	part *partitioner

	stats L2Stats
}

// NewL2 creates the shared L2 over len(ups) memory modules. ups[i] is
// the interconnect-facing slave port for memory i (it must deliver
// completions out of order so hits can overtake outstanding misses);
// downs[i] is the in-order port memory i consumes.
func NewL2(k *sim.Kernel, cfg L2Config, ups, downs []*bus.Port) (*L2, error) {
	if cfg.Name == "" {
		cfg.Name = "l2"
	}
	if len(ups) != len(downs) {
		return nil, fmt.Errorf("%s: %d up ports, %d down ports", cfg.Name, len(ups), len(downs))
	}
	if cfg.Sets <= 0 {
		cfg.Sets = 64
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 8
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	if cfg.LineBytes%4 != 0 {
		return nil, fmt.Errorf("%s: line size %d not a multiple of 4", cfg.Name, cfg.LineBytes)
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 8
	}
	part, err := newPartitioner(cfg.Partition, cfg.Masters, cfg.Sets, cfg.Ways, cfg.LineBytes, cfg.SWPMasks, cfg.UCPPeriod)
	if err != nil {
		return nil, err
	}
	l := &L2{
		name:       cfg.Name,
		cfg:        cfg,
		k:          k,
		ups:        ups,
		downs:      downs,
		sets:       make([][]line, cfg.Sets),
		wbq:        make([][]*wbEntry, len(downs)),
		wbInflight: make([]map[bus.Tag]*wbEntry, len(downs)),
		fwd:        make([]map[bus.Tag]bus.Tag, len(downs)),
		pending:    make([]*l2bypass, len(ups)),
		part:       part,
	}
	for i := range l.sets {
		l.sets[i] = make([]line, cfg.Ways)
		for w := range l.sets[i] {
			l.sets[i][w].data = make([]byte, cfg.LineBytes)
		}
	}
	for i := range downs {
		l.wbInflight[i] = make(map[bus.Tag]*wbEntry)
		l.fwd[i] = make(map[bus.Tag]bus.Tag)
	}
	k.Add(l)
	return l, nil
}

// AttachL1s hands the L2 the L1 coherence domain above it, enabling
// inclusion back-invalidation. The L1 line size must divide the L2's.
func (l *L2) AttachL1s(d *Domain) error {
	for _, c := range d.Caches() {
		if l.cfg.LineBytes%c.LineBytes() != 0 {
			return fmt.Errorf("%s: line size %d not a multiple of %s's %d",
				l.name, l.cfg.LineBytes, c.Name(), c.LineBytes())
		}
	}
	l.dom = d
	return nil
}

// Name implements sim.Module.
func (l *L2) Name() string { return l.name }

// Stats returns a snapshot of the counters, folding in the
// partitioner's repartition count.
func (l *L2) Stats() L2Stats {
	s := l.stats
	s.Repartitions = l.part.repartitions
	return s
}

// LineBytes returns the configured line size.
func (l *L2) LineBytes() uint32 { return l.cfg.LineBytes }

// WayMasks returns the current per-core way masks (nil when
// unpartitioned) — for headers and tests.
func (l *L2) WayMasks() []uint64 {
	if l.part.kind == PartNone {
		return nil
	}
	return append([]uint64(nil), l.part.masks...)
}

func (l *L2) cacheable(sm int) bool {
	return sm >= 0 && sm < len(l.ups) && (l.cfg.Cacheable == nil || l.cfg.Cacheable(sm))
}

func (l *L2) lineBase(addr uint32) uint32 { return addr - addr%l.cfg.LineBytes }

func (l *L2) setIndex(sm int, base uint32) int {
	return int((base/l.cfg.LineBytes + uint32(sm)) % uint32(l.cfg.Sets))
}

func (l *L2) touch(ln *line) {
	l.useClock++
	ln.used = l.useClock
}

func (l *L2) lookup(sm int, base uint32) (set, way int, ok bool) {
	set = l.setIndex(sm, base)
	for w := range l.sets[set] {
		ln := &l.sets[set][w]
		if ln.state != Invalid && ln.sm == sm && ln.base == base {
			return set, w, true
		}
	}
	return set, 0, false
}

// coreOf maps an interconnect master-port index to its L1 core for
// partitioning: with caches the interconnect's masters are the L1 down
// ports followed by the L1 writeback ports, so both identities of core
// i are congruent to i modulo the core count. Masters beyond that range
// (DMA engines) are unconstrained.
func (l *L2) coreOf(master int) int {
	if l.cfg.Masters <= 0 || master < 0 || master >= 2*l.cfg.Masters {
		return -1
	}
	return master % l.cfg.Masters
}

// Tick implements sim.Module: drain memory completions, examine each up
// port's head, issue toward each memory.
func (l *L2) Tick(cycle uint64) {
	l.drainCompletions()
	for i := range l.ups {
		l.processHead(i)
	}
	for i := range l.downs {
		l.issueDown(i)
	}
}

func (l *L2) drainCompletions() {
	for i, down := range l.downs {
		for tag, resp := range down.Completions() {
			if _, ok := l.wbInflight[i][tag]; ok {
				delete(l.wbInflight[i], tag)
				if resp.Err != bus.OK {
					l.k.Fault(fmt.Errorf("%s: writeback to memory %d failed: %v", l.name, i, resp.Err))
				}
				continue
			}
			if upTag, ok := l.fwd[i][tag]; ok {
				delete(l.fwd[i], tag)
				if resp.Err != bus.OK {
					l.stats.Errors++
				}
				l.ups[i].Complete(upTag, resp)
				continue
			}
			if m := l.mshrByTag(i, tag); m != nil {
				l.install(m, resp)
				continue
			}
			l.k.Fault(fmt.Errorf("%s: completion from memory %d for unknown tag %d", l.name, i, tag))
		}
	}
}

func (l *L2) mshrByTag(sm int, tag bus.Tag) *l2mshr {
	for _, m := range l.mshrs {
		if m.sm == sm && m.issued && m.tag == tag {
			return m
		}
	}
	return nil
}

func (l *L2) removeMSHR(m *l2mshr) {
	for i, x := range l.mshrs {
		if x == m {
			l.mshrs = append(l.mshrs[:i], l.mshrs[i+1:]...)
			return
		}
	}
}

// install writes a completed refill into its target way and replays the
// MSHR's waiters in arrival order.
func (l *L2) install(m *l2mshr, resp bus.Response) {
	if resp.Err != bus.OK {
		for _, w := range m.waiters {
			l.stats.Errors++
			l.ups[m.sm].Complete(w.tag, bus.Response{Err: resp.Err})
		}
		l.removeMSHR(m)
		return
	}
	ln := &l.sets[m.set][m.way]
	ln.sm, ln.base = m.sm, m.base
	for i, v := range resp.Burst {
		binary.LittleEndian.PutUint32(ln.data[i*4:], v)
	}
	ln.state = Shared
	l.stats.Refills++
	l.touch(ln)
	for _, w := range m.waiters {
		l.serve(ln, w.tag, w.req, m.sm)
	}
	l.removeMSHR(m)
}

// serve answers one cacheable request from a resident line, dirtying it
// on writes. The request's whole data range lies within the line
// (checked before it was accepted as cacheable).
func (l *L2) serve(ln *line, tag bus.Tag, req bus.Request, up int) {
	off := req.VPtr - ln.base
	es := req.DType.Size()
	switch req.Op {
	case bus.OpRead:
		l.ups[up].Complete(tag, bus.Response{Data: readElem(ln.data[off:], req.DType)})
	case bus.OpWrite:
		writeElem(ln.data[off:], req.DType, req.Data)
		ln.state = Modified
		l.ups[up].Complete(tag, bus.Response{})
	case bus.OpReadBurst:
		out := make([]uint32, req.Dim)
		for i := range out {
			out[i] = readElem(ln.data[off+uint32(i)*es:], req.DType)
		}
		l.ups[up].Complete(tag, bus.Response{Burst: out})
	case bus.OpWriteBurst:
		for i, v := range req.Burst {
			writeElem(ln.data[off+uint32(i)*es:], req.DType, v)
		}
		ln.state = Modified
		l.ups[up].Complete(tag, bus.Response{})
	}
}

// cacheableLine reports whether req is an access the L2 may serve from
// one line: any data operation (scalar or burst — L1 refills and
// writebacks are line bursts) on a cacheable memory whose whole byte
// range falls within a single L2 line.
func (l *L2) cacheableLine(up int, req bus.Request) bool {
	_, lo, hi, ok := dataRange(req)
	if !ok || !l.cacheable(up) || hi <= lo {
		return false
	}
	return l.lineBase(lo) == l.lineBase(hi-1)
}

// processHead examines up port i's queue head and pops at most one
// request. The head stays queued when the L2 cannot act on it yet
// (MSHRs exhausted, no victim way inside the master's partition, or an
// unforwarded bypass occupying the port's bypass slot).
func (l *L2) processHead(i int) {
	if l.pending[i] != nil {
		return
	}
	req, ok := l.ups[i].Peek()
	if !ok {
		return
	}
	if l.cacheableLine(i, req) {
		l.processCacheable(i, req)
		return
	}
	l.processBypass(i, req)
}

func (l *L2) processCacheable(i int, req bus.Request) {
	base := l.lineBase(req.VPtr)

	if m := l.findMSHR(i, base); m != nil {
		tx, _ := l.ups[i].Pop()
		l.stats.Misses++
		if req.WB {
			l.stats.WBAllocates++
		} else {
			l.observe(req, i, base)
		}
		m.waiters = append(m.waiters, waiter{tag: tx.Tag, req: req})
		return
	}

	if _, way, ok := l.lookup(i, base); ok {
		set := l.setIndex(i, base)
		ln := &l.sets[set][way]
		tx, _ := l.ups[i].Pop()
		l.stats.Hits++
		if !req.WB {
			l.observe(req, i, base)
		}
		l.touch(ln)
		l.serve(ln, tx.Tag, req, i)
		return
	}

	if len(l.mshrs) >= l.cfg.MSHRs {
		return
	}
	set := l.setIndex(i, base)
	way, ok := l.victimWay(set, l.part.mask(l.coreOf(req.Master)))
	if !ok {
		return // no way in this master's partition is free of an installing miss
	}
	tx, _ := l.ups[i].Pop()
	l.stats.Misses++
	if req.WB {
		l.stats.WBAllocates++
	} else {
		l.observe(req, i, base)
	}
	l.evict(set, way)
	l.mshrs = append(l.mshrs, &l2mshr{
		sm: i, base: base, set: set, way: way,
		waiters: []waiter{{tag: tx.Tag, req: req}},
	})
}

// observe feeds a demand access (never a writeback) to the partitioner.
func (l *L2) observe(req bus.Request, sm int, base uint32) {
	core := l.coreOf(req.Master)
	if core >= 0 {
		l.part.observe(core, sm, base)
	}
}

// victimWay picks the way a refill will install into, restricted to the
// requester's partition mask: an invalid way in the mask if one exists,
// otherwise the least-recently-used in-mask way that is not the target
// of an in-flight MSHR. Lines resident outside the mask still hit —
// repartitioning migrates them lazily as they are evicted.
func (l *L2) victimWay(set int, mask uint64) (int, bool) {
	best, bestUsed, ok := 0, ^uint64(0), false
	for w := range l.sets[set] {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if l.wayReserved(set, w) {
			continue
		}
		ln := &l.sets[set][w]
		if ln.state == Invalid {
			return w, true
		}
		if ln.used < bestUsed {
			best, bestUsed, ok = w, ln.used, true
		}
	}
	return best, ok
}

func (l *L2) wayReserved(set, way int) bool {
	for _, m := range l.mshrs {
		if m.set == set && m.way == way {
			return true
		}
	}
	return false
}

// evict empties (set, way) for a refill, enforcing inclusion: L1 copies
// of the victim line are invalidated synchronously (dirty ones merge
// their data into the victim first — a zero-cycle forced writeback) and
// granted-but-uninstalled L1 refills of the line are killed. The victim
// goes to the writeback queue when it is dirty — either dirty in the
// L2, or dirtied by a merged L1 line. Eviction never stalls on L1
// state, so the L2's head-of-queue processing cannot deadlock.
func (l *L2) evict(set, way int) {
	ln := &l.sets[set][way]
	if ln.state == Invalid {
		return
	}
	dirty := ln.state == Modified
	if l.dom != nil {
		l.stats.BackInvalidations++
		if l.dom.BackInvalidate(ln.sm, ln.base, ln.base+l.cfg.LineBytes, ln.data) {
			l.stats.DirtyMerges++
			dirty = true
		}
	}
	if dirty {
		l.stats.Writebacks++
		l.wbq[ln.sm] = append(l.wbq[ln.sm], &wbEntry{
			sm: ln.sm, base: ln.base,
			data: append([]byte(nil), ln.data...),
		})
	}
	ln.state = Invalid
}

func (l *L2) findMSHR(sm int, base uint32) *l2mshr {
	for _, m := range l.mshrs {
		if m.sm == sm && m.base == base {
			return m
		}
	}
	return nil
}

// processBypass pops a request the L2 cannot cache (multi-line bursts,
// dynamic operations, non-cacheable memories) into up port i's bypass
// slot after making the L2's own copies safe, exactly like the L1:
// overlapping dirty lines are written back, and overlapping lines are
// invalidated when the request writes. The L1 domain already snooped
// this request at the interconnect, so no back-invalidation is needed
// here — L1 copies were handled at the grant.
func (l *L2) processBypass(i int, req bus.Request) {
	sm, lo, hi, data := dataRange(req)
	cacheable := l.cacheable(i)
	if data && cacheable {
		for _, m := range l.mshrs {
			if lineOverlaps(m.sm, m.base, l.cfg.LineBytes, sm, lo, hi) {
				return // the overlapping refill must install first
			}
		}
	}
	if req.Op == bus.OpFree && cacheable {
		for _, m := range l.mshrs {
			if m.sm == i {
				return
			}
		}
	}
	tx, ok := l.ups[i].Pop()
	if !ok {
		return
	}
	p := &l2bypass{upTag: tx.Tag, req: req}
	if data && cacheable {
		write := req.Op == bus.OpWrite || req.Op == bus.OpWriteBurst
		l.flushRange(i, lo, hi, write)
		p.needWait, p.lo, p.hi = true, lo, hi
	}
	if req.Op == bus.OpFree && cacheable {
		l.flushRange(i, 0, ^uint32(0), true)
		p.needWait, p.lo, p.hi = true, 0, ^uint32(0)
	}
	l.stats.Bypassed++
	l.pending[i] = p
}

// flushRange writes back every dirty L2 line overlapping [lo, hi) in
// memory sm and, when invalidate is set, drops every overlapping line
// (back-invalidating L1 copies to keep inclusion).
func (l *L2) flushRange(sm int, lo, hi uint32, invalidate bool) {
	for s := range l.sets {
		for w := range l.sets[s] {
			ln := &l.sets[s][w]
			if ln.state == Invalid || !lineOverlaps(ln.sm, ln.base, l.cfg.LineBytes, sm, lo, hi) {
				continue
			}
			if invalidate {
				l.evict(s, w)
				continue
			}
			if ln.state == Modified {
				l.stats.Writebacks++
				l.wbq[ln.sm] = append(l.wbq[ln.sm], &wbEntry{
					sm: ln.sm, base: ln.base,
					data: append([]byte(nil), ln.data...),
				})
				ln.state = Shared
			}
		}
	}
}

// wbOverlap reports whether a queued or in-flight writeback to memory
// sm intersects [lo, hi). Refills and forwards are held back while one
// does; for queued entries this preserves write-before-read on the
// in-order down link, for in-flight ones it is conservative (FIFO
// position already orders them) but costs at most their memory latency.
func (l *L2) wbOverlap(sm int, lo, hi uint32) bool {
	for _, e := range l.wbq[sm] {
		if lineOverlaps(e.sm, e.base, l.cfg.LineBytes, sm, lo, hi) {
			return true
		}
	}
	for _, e := range l.wbInflight[sm] {
		if lineOverlaps(e.sm, e.base, l.cfg.LineBytes, sm, lo, hi) {
			return true
		}
	}
	return false
}

// issueDown issues toward memory i: at most one writeback plus one
// refill-or-bypass per cycle, credits permitting. Refills issue in MSHR
// creation order.
func (l *L2) issueDown(i int) {
	down := l.downs[i]
	if len(l.wbq[i]) > 0 && down.CanIssue() {
		e := l.wbq[i][0]
		l.wbq[i] = l.wbq[i][1:]
		words := make([]uint32, l.cfg.LineBytes/4)
		for j := range words {
			words[j] = binary.LittleEndian.Uint32(e.data[j*4:])
		}
		tag := down.Issue(bus.Request{
			Op: bus.OpWriteBurst, SM: e.sm, VPtr: e.base,
			Dim: uint32(len(words)), DType: bus.U32, Burst: words, WB: true,
		})
		l.wbInflight[i][tag] = e
	}
	if !down.CanIssue() {
		return
	}
	for _, m := range l.mshrs {
		if m.sm != i || m.issued {
			continue
		}
		if l.wbOverlap(i, m.base, m.base+l.cfg.LineBytes) {
			continue
		}
		m.tag = down.Issue(bus.Request{
			Op: bus.OpReadBurst, SM: m.sm, VPtr: m.base,
			Dim: l.cfg.LineBytes / 4, DType: bus.U32,
		})
		m.issued = true
		return
	}
	if p := l.pending[i]; p != nil {
		if p.needWait && l.wbOverlap(i, p.lo, p.hi) {
			return
		}
		tag := down.Issue(p.req)
		l.fwd[i][tag] = p.upTag
		l.pending[i] = nil
	}
}

// NextWake implements sim.Sleeper: every condition the L2 acts on is
// either already visible or arrives via a port signal commit.
func (l *L2) NextWake(now uint64) uint64 {
	for i := range l.downs {
		if l.downs[i].HasCompletion() || len(l.wbq[i]) > 0 {
			return now
		}
	}
	for i := range l.ups {
		if l.ups[i].Pending() || l.pending[i] != nil {
			return now
		}
	}
	for _, m := range l.mshrs {
		if !m.issued {
			return now
		}
	}
	return sim.WakeNever
}

// Skip implements sim.Sleeper: no per-cycle counters.
func (l *L2) Skip(n uint64) {}

// ConcurrentTick implements sim.Concurrent: a standalone L2 touches
// only its own state and its ports. Attached to an L1 domain its Tick
// back-invalidates L1 state, so it must co-schedule with the caches and
// interconnect on the serial shard.
func (l *L2) ConcurrentTick() bool { return l.dom == nil }

// TickWeight implements sim.Weighted: multi-port headwork each cycle.
func (l *L2) TickWeight() int { return 6 }

// --- host-side inspection and drain ---

// FlushAll queues a writeback for every dirty line (M→S). Lines stay
// valid, so inclusion is untouched. Drain L1s first (their dirty data
// must land in the L2), then FlushAll here and run until Synced.
func (l *L2) FlushAll() {
	for s := range l.sets {
		for w := range l.sets[s] {
			ln := &l.sets[s][w]
			if ln.state != Modified {
				continue
			}
			l.stats.Writebacks++
			l.wbq[ln.sm] = append(l.wbq[ln.sm], &wbEntry{
				sm: ln.sm, base: ln.base,
				data: append([]byte(nil), ln.data...),
			})
			ln.state = Shared
		}
	}
}

// Synced reports whether no dirty state is outstanding.
func (l *L2) Synced() bool {
	for i := range l.downs {
		if len(l.wbq[i]) > 0 || len(l.wbInflight[i]) > 0 {
			return false
		}
	}
	for s := range l.sets {
		for w := range l.sets[s] {
			if l.sets[s][w].state == Modified {
				return false
			}
		}
	}
	return true
}

// Idle reports whether the L2 has no work at all.
func (l *L2) Idle() bool {
	if !l.Synced() || len(l.mshrs) != 0 {
		return false
	}
	for i := range l.ups {
		if l.pending[i] != nil || l.ups[i].Pending() {
			return false
		}
	}
	for i := range l.downs {
		if len(l.fwd[i]) != 0 {
			return false
		}
	}
	return true
}

// Covers reports whether a valid L2 line contains (sm, addr) — the
// inclusion invariant's building block.
func (l *L2) Covers(sm int, addr uint32) bool {
	_, _, ok := l.lookup(sm, l.lineBase(addr))
	return ok
}

// VisitLines calls f for every valid line (tests and invariant
// checkers).
func (l *L2) VisitLines(f func(sm int, base uint32, st State)) {
	for s := range l.sets {
		for w := range l.sets[s] {
			if ln := &l.sets[s][w]; ln.state != Invalid {
				f(ln.sm, ln.base, ln.state)
			}
		}
	}
}

// CheckInclusion verifies the inclusion invariant between kernel steps:
// every valid L1 line is covered by a valid L2 line. Back-invalidation
// is synchronous and kills granted-but-uninstalled L1 refills, so the
// invariant holds at every cycle boundary.
func CheckInclusion(l2 *L2, caches []*Cache) error {
	var err error
	for _, c := range caches {
		name := c.Name()
		c.VisitLines(func(sm int, base uint32, st State) {
			if err == nil && !l2.Covers(sm, base) {
				err = fmt.Errorf("cache: inclusion violation: %s holds sm=%d base=%#x (%v) with no L2 parent",
					name, sm, base, st)
			}
		})
	}
	return err
}
