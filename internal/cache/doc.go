// Package cache implements a two-level cache hierarchy built on the
// split-transaction port protocol of internal/bus: private write-back,
// write-allocate, set-associative L1s with MESI snooping coherence,
// and an optional shared inclusive L2 with per-master way
// partitioning.
//
// # Position in the system
//
// A Cache interposes between one master and the interconnect: on the
// "up" port it is the slave of its CPU/PE/DMA master (it pops the
// master's requests and publishes their completions), and toward the
// interconnect it masters two ports — "down" for tagged refills and
// pass-through transactions, plus a dedicated "wb" writeback channel.
// The split matters for liveness: a writeback queued behind a
// snoop-deferred refill in one FIFO would deadlock the protocol (two
// caches each deferring the other's refill while holding the resolving
// writeback captive behind their own deferred head). The master cannot
// tell a cache from a memory; the interconnect cannot tell a cache
// from a CPU. At the system level (config.SystemConfig.Cache) every
// master gets a private L1 and the interconnect's master side becomes
// the caches' down ports followed by their writeback ports.
//
// # What is cached
//
// Scalar OpRead/OpWrite accesses to cacheable modules that fall entirely
// within one line are cached. Everything else — bursts, the dynamic
// operations (alloc/free/reserve/release), line-crossing scalars, and
// every access to a non-cacheable module — bypasses: it is forwarded
// downstream unchanged after the cache has made its own copies safe
// (dirty overlapping lines are written back first; overlapping lines are
// additionally invalidated when the bypassing operation writes). Only
// flat-addressed memories are cacheable in practice: line refills are
// whole-line U32 bursts at line-aligned addresses, which the static
// table memory always accepts (config marks wrapper and heapsim modules
// non-cacheable, because their burst semantics are per-allocation and
// typed). A line is (sm, line-aligned address); the cache fronts the
// whole shared address space of its master.
//
// # States and transactions
//
// Each line is Invalid, Shared, Exclusive or Modified. Misses allocate a
// miss-status-holding register (MSHR) and issue a whole-line OpReadBurst
// downstream — with Request.Excl set when the miss is for a write (the
// MESI BusRdX; a write hitting a Shared line takes the same path as an
// upgrade). Victim lines in M are written back with OpWriteBurst +
// Request.WB on the dedicated writeback channel; because that channel
// is a separate port, position no longer orders a writeback ahead of a
// same-line read, so refills and forwarded requests are held back until
// no writeback overlapping their range is queued or in flight. Multiple
// outstanding misses to distinct lines ride the split protocol
// concurrently, up to the MSHR count and the down port's credit pool;
// requests to a line with an in-flight MSHR coalesce onto it (reads onto
// any MSHR, writes only onto exclusive ones — otherwise the head waits).
// The cache serves at most one new master request and issues at most one
// downstream address per cycle; hits complete in the cycle they are
// popped, so a load hit costs the two port hops (issue visibility +
// completion visibility) instead of a full interconnect round trip.
//
// # Snoop phase
//
// Coherence is enforced at the interconnect's address phase through the
// bus.Snooper hook, implemented by Domain. Before granting an address
// phase the interconnect asks CanProceed: the Domain scans peer caches
// for conflicting state — a Modified overlapping line, a pending or
// in-flight writeback, or a granted-but-not-yet-installed refill — and
// defers the grant while flagging dirty owners to write their lines
// back (the line goes M→S, its data queues on the owner's writeback
// path). This is the classic snoop-hit-dirty retry idiom: dirty data is
// "supplied" by deferring the requester until the owner's writeback has
// landed in memory, after which the retried request reads fresh data
// through the ordinary path. Writebacks themselves (Request.WB) are
// never deferred — they are the resolution mechanism.
//
// After the pop of a winning request the interconnect calls OnGrant, the
// broadcast peers react to: peers invalidate overlapping lines on writes
// and exclusive refills (S/E→I; observing M here is a protocol-invariant
// violation and faults the kernel), and downgrade E→S on reads. The
// granting cache's own MSHR is marked granted — from then until install
// it defers conflicting peers, which closes the window in which two
// caches could both refill the same line exclusively — and records
// whether any peer held a valid copy, which decides Shared versus
// Exclusive at install.
//
// Known simplification: there is no cache-to-cache transfer, so a writer
// that keeps re-dirtying a line can in principle starve a deferred peer;
// the bounded workloads of the experiments always converge.
//
// # MSHR rules
//
//   - One MSHR per line; secondary misses coalesce as waiters and are
//     served in arrival order when the refill installs.
//   - An MSHR is created only when a register is free and holds (sm,
//     line, exclusivity, target way); its refill issues when the
//     writeback queue is empty (ordering) and a down-port credit is
//     free.
//   - granted (set by the Domain at the interconnect grant) makes the
//     MSHR defer conflicting peer grants until install; shared (set at
//     the same moment) selects S over E for clean installs.
//   - A refill that completes with an in-band error is reported to every
//     waiter and installs nothing.
//
// # The shared L2
//
// L2 (NewL2, L2Config) interposes one shared inclusive cache between
// the interconnect and the memories: it is the slave on what used to
// be the memories' interconnect ports — which become out-of-order, so
// hits overtake misses — and masters each memory over a private
// in-order link. That FIFO link replaces the L1's dedicated writeback
// channel: position orders an L2 writeback ahead of a dependent
// refill, so the deadlock the L1 split-channel design avoids cannot
// arise. Like the L1 it allocates MSHRs (secondary misses coalesce),
// serves hits in the popped cycle, and bypasses what it cannot cache.
//
// Inclusion is an enforced invariant: every line an L1 holds is
// present in the L2. Evicting an L2 victim calls
// Domain.BackInvalidate, which merges any Modified L1 copy into the
// victim's data (counted as DirtyMerges — no dirty word is lost),
// invalidates the L1 lines, and kills granted-but-uninstalled L1
// refills for the line (their MSHRs re-arm and re-miss, counted as
// KilledRefills). CheckInclusion asserts the invariant; FuzzL2Inclusion
// drives it every committed cycle.
//
// The L2's ways can be partitioned per master (L2Config.Partition):
// PartSWP pins static way masks (SWPMasks, or an equal split), PartUCP
// runs utility-based repartitioning — per-master UMON shadow tags
// (full L2 geometry, true LRU) count hits at each recency depth, and
// every UCPPeriod demand accesses a lookahead-greedy allocator
// reassigns ways to maximize marginal utility, halving the counters.
// Victim selection only evicts within the requester's allowed ways;
// migration is lazy (lines drift as they miss). The repartition
// schedule counts accesses, not cycles, so every scheduler mode
// repartitions at the same point.
//
// # Scheduling
//
// The cache is a sim.Sleeper (it sleeps exactly when it has no visible
// requests, completions or queued work; every wake source is a port
// signal commit) and a sim.Concurrent citizen: standalone caches tick
// concurrently (their Tick touches only their own state and their two
// ports), while caches attached to a Domain — whose state the
// interconnect mutates during its own Tick — co-schedule with the
// interconnect on the serial shard, keeping every kernel mode
// (lockstep × event-driven × any worker count) bit-identical.
package cache
