package cache

import (
	"fmt"

	"repro/internal/bus"
)

// snoopKind classifies an address phase for the snoop protocol.
type snoopKind uint8

const (
	snoopNone snoopKind = iota
	snoopRead           // read-type: peers downgrade E→S
	snoopExcl           // write or exclusive refill: peers invalidate
)

func classify(req bus.Request) (kind snoopKind, sm int, lo, hi uint32) {
	if req.WB {
		// Writebacks resolve deferrals; never snooped themselves.
		return snoopNone, 0, 0, 0
	}
	sm, lo, hi, ok := dataRange(req)
	if !ok {
		return snoopNone, 0, 0, 0
	}
	switch req.Op {
	case bus.OpRead:
		kind = snoopRead
	case bus.OpReadBurst:
		if req.Excl {
			kind = snoopExcl
		} else {
			kind = snoopRead
		}
	default: // OpWrite, OpWriteBurst
		kind = snoopExcl
	}
	return kind, sm, lo, hi
}

// Domain is a MESI coherence domain: the set of caches snooping one
// interconnect. It implements bus.Snooper; install it with Bus.Snoop /
// Crossbar.Snoop. See the package documentation for the protocol.
type Domain struct {
	caches []*Cache
	// owns maps an interconnect master-port index to the cache whose
	// down or wb port it is, for self-snoop skipping.
	owns map[int]*Cache
}

// NewDomain creates an empty coherence domain.
func NewDomain() *Domain { return &Domain{owns: map[int]*Cache{}} }

// Attach adds a cache to the domain. downID and wbID are the
// interconnect's master-port indices of the cache's down and writeback
// ports — the identities the interconnect reports to CanProceed and
// OnGrant, used to skip self-snooping.
func (d *Domain) Attach(c *Cache, downID, wbID int) {
	c.domain = d
	d.caches = append(d.caches, c)
	d.owns[downID] = c
	d.owns[wbID] = c
}

// Caches returns the attached caches in attach order.
func (d *Domain) Caches() []*Cache { return d.caches }

// CanProceed implements bus.Snooper: an address phase is deferred while
// any peer cache holds conflicting state for its range — a Modified
// line (which is flagged for writeback, resolving the deferral), a
// queued or in-flight writeback, or a granted-but-not-installed refill.
func (d *Domain) CanProceed(req bus.Request, master int) bool {
	kind, sm, lo, hi := classify(req)
	if kind == snoopNone {
		return true
	}
	ok := true
	for _, c := range d.caches {
		if d.owns[master] == c {
			continue
		}
		if c.snoopConflict(sm, lo, hi) {
			ok = false
		}
	}
	return ok
}

// OnGrant implements bus.Snooper: the broadcast of a granted address
// phase. Peers downgrade on reads and invalidate on writes/exclusive
// refills; the granting cache's own in-flight miss is marked granted and
// learns whether the line was shared.
func (d *Domain) OnGrant(req bus.Request, master int, tag bus.Tag) {
	kind, sm, lo, hi := classify(req)
	if kind == snoopNone {
		return
	}
	shared := false
	for _, c := range d.caches {
		if d.owns[master] == c {
			continue
		}
		if kind == snoopRead {
			if c.snoopDowngrade(sm, lo, hi) {
				shared = true
			}
		} else if c.snoopInvalidate(sm, lo, hi) {
			shared = true
		}
	}
	if own := d.owns[master]; own != nil {
		own.grantOwn(tag, shared)
	}
}

// snoopConflict reports whether this cache holds state that must resolve
// before a peer's grant, flagging dirty lines for writeback as a side
// effect.
func (c *Cache) snoopConflict(sm int, lo, hi uint32) bool {
	conflict := false
	c.visitOverlapping(sm, lo, hi, func(ln *line) {
		if ln.state != Modified {
			return
		}
		// Snoop hit dirty: write the line back (M→S); the peer's
		// grant stays deferred until the writeback lands.
		c.stats.SnoopFlushes++
		c.evict(ln)
		ln.state = Shared
		conflict = true
	})
	for _, e := range c.wbq {
		if lineOverlaps(e.sm, e.base, c.cfg.LineBytes, sm, lo, hi) {
			conflict = true
		}
	}
	for _, e := range c.wbInflight {
		if lineOverlaps(e.sm, e.base, c.cfg.LineBytes, sm, lo, hi) {
			conflict = true
		}
	}
	for _, m := range c.mshrs {
		if m.granted && lineOverlaps(m.sm, m.base, c.cfg.LineBytes, sm, lo, hi) {
			conflict = true
		}
	}
	return conflict
}

// snoopDowngrade demotes overlapping Exclusive lines to Shared and
// reports whether any valid overlapping copy exists.
func (c *Cache) snoopDowngrade(sm int, lo, hi uint32) bool {
	held := false
	c.visitOverlapping(sm, lo, hi, func(ln *line) {
		if ln.state == Modified {
			c.k.Fault(fmt.Errorf("%s: MESI violation: read grant reached Modified line sm=%d base=%#x", c.name, ln.sm, ln.base))
		}
		if ln.state == Exclusive {
			ln.state = Shared
			c.stats.SnoopDowngrades++
		}
		held = true
	})
	return held
}

// snoopInvalidate drops overlapping valid lines and reports whether any
// existed. A Modified line here is a protocol-invariant violation
// (CanProceed must have deferred the grant) and faults the kernel.
func (c *Cache) snoopInvalidate(sm int, lo, hi uint32) bool {
	held := false
	c.visitOverlapping(sm, lo, hi, func(ln *line) {
		if ln.state == Modified {
			c.k.Fault(fmt.Errorf("%s: MESI violation: invalidating grant reached Modified line sm=%d base=%#x", c.name, ln.sm, ln.base))
		}
		ln.state = Invalid
		c.stats.SnoopInvalidations++
		held = true
	})
	return held
}

// BackInvalidate enforces inclusion when a shared L2 evicts the line
// [lo, hi) of memory sm: every L1 copy inside the range is invalidated
// synchronously, with Modified lines first merging their data into the
// victim buffer (a zero-cycle forced writeback — the merged victim goes
// to memory on the L2's writeback path). L1 refills of the range that
// are granted but not yet installed are killed: their in-flight data
// may predate the eviction, so the L1 discards it on arrival and
// refetches. Unissued and ungranted misses need no action — their
// requests reach the L2 after the eviction and refetch naturally, as do
// writebacks already queued or in flight (the L2 write-allocates them).
// Returns whether any dirty line was merged. victim must cover [lo, hi).
func (d *Domain) BackInvalidate(sm int, lo, hi uint32, victim []byte) bool {
	dirty := false
	for _, c := range d.caches {
		c.visitOverlapping(sm, lo, hi, func(ln *line) {
			if ln.state == Modified && ln.base >= lo && ln.base-lo+c.cfg.LineBytes <= uint32(len(victim)) {
				copy(victim[ln.base-lo:], ln.data)
				dirty = true
			}
			ln.state = Invalid
			c.stats.BackInvalidations++
		})
		for _, m := range c.mshrs {
			if m.granted && !m.killed && lineOverlaps(m.sm, m.base, c.cfg.LineBytes, sm, lo, hi) {
				m.killed = true
			}
		}
	}
	return dirty
}

// CheckExclusivity verifies the MESI ownership invariant across a set
// of caches: a line valid in two caches may only be Shared — Modified
// and Exclusive holders tolerate no other valid copy. Tests and the
// fuzz harness call it between kernel steps.
func CheckExclusivity(caches []*Cache) error {
	type key struct {
		sm   int
		base uint32
	}
	holders := map[key][]State{}
	for _, c := range caches {
		c.VisitLines(func(sm int, base uint32, st State) {
			k := key{sm, base}
			holders[k] = append(holders[k], st)
		})
	}
	for k, sts := range holders {
		if len(sts) < 2 {
			continue
		}
		for _, st := range sts {
			if st != Shared {
				return fmt.Errorf("cache: MESI violation: line sm=%d base=%#x held %v by one of %d caches",
					k.sm, k.base, st, len(sts))
			}
		}
	}
	return nil
}

// grantOwn marks this cache's issued refill with the granted down-port
// tag as granted and records whether a peer held the line. Called for
// every granted request of this master; pass-through requests carry
// tags no MSHR holds, so they match nothing (matching by bare address
// could confuse a forwarded line-shaped burst with a refill).
func (c *Cache) grantOwn(tag bus.Tag, shared bool) {
	for _, m := range c.mshrs {
		if m.issued && !m.granted && m.tag == tag {
			m.granted = true
			m.shared = shared
			return
		}
	}
}
