package cache

import "testing"

func TestEqualSplit(t *testing.T) {
	cases := []struct {
		masters, ways int
		want          []uint64
	}{
		{2, 8, []uint64{0x0F, 0xF0}},
		{4, 8, []uint64{0x03, 0x0C, 0x30, 0xC0}},
		{3, 8, []uint64{0x07, 0x38, 0xC0}}, // 3+3+2
		{2, 2, []uint64{0x1, 0x2}},
		{4, 2, []uint64{0x1, 0x2, 0x2, 0x2}}, // more masters than ways: overflow shares the last way
	}
	for _, c := range cases {
		got := equalSplit(c.masters, c.ways)
		if len(got) != len(c.want) {
			t.Fatalf("equalSplit(%d,%d) = %#x", c.masters, c.ways, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("equalSplit(%d,%d)[%d] = %#x, want %#x", c.masters, c.ways, i, got[i], c.want[i])
			}
		}
	}
}

// TestUMONStackDepth pins the marginal-utility counter math: a hit is
// credited to the entry's true-LRU stack depth at the moment of the
// hit, so hits[p] answers "how many extra hits would p+1 ways have
// given this master".
func TestUMONStackDepth(t *testing.T) {
	u := newUMON(1, 4, 32)
	a, b, c := uint32(0), uint32(32), uint32(64)
	u.access(0, a) // miss, installs
	u.access(0, a) // hit at depth 0 (MRU)
	u.access(0, b) // miss
	u.access(0, a) // hit at depth 1 (b is more recent)
	u.access(0, c) // miss
	u.access(0, a) // hit at depth 1 (c more recent, b older)
	u.access(0, b) // hit at depth 2 (a, c more recent)
	if u.hits[0] != 1 || u.hits[1] != 2 || u.hits[2] != 1 || u.hits[3] != 0 {
		t.Errorf("hits = %v, want [1 2 1 0]", u.hits)
	}
}

// TestUMONEviction: the shadow directory replaces true-LRU, so a
// working set one line over capacity misses every time (the classic
// LRU cliff the utility curve exposes).
func TestUMONEviction(t *testing.T) {
	u := newUMON(1, 2, 32)
	for pass := 0; pass < 3; pass++ {
		for _, base := range []uint32{0, 32, 64} { // 3 lines through 2 ways
			u.access(0, base)
		}
	}
	for p, h := range u.hits {
		if h != 0 {
			t.Errorf("hits[%d] = %d, want 0 (cyclic thrash never hits under LRU)", p, h)
		}
	}
	u2 := newUMON(1, 2, 32)
	for pass := 0; pass < 3; pass++ {
		for _, base := range []uint32{0, 32} { // fits
			u2.access(0, base)
		}
	}
	if u2.hits[1] != 4 {
		t.Errorf("hits = %v, want 4 hits at depth 1 (alternating pair)", u2.hits)
	}
}

// TestUCPAllocate pins the greedy marginal-utility decision on
// hand-built curves.
func TestUCPAllocate(t *testing.T) {
	// Master 0 is a streaming thrasher: no reuse at any depth. Master 1
	// is reuse-heavy: big gains up to 3 ways. UCP must give master 1
	// everything beyond master 0's guaranteed single way.
	hits := [][]uint64{
		{0, 0, 0, 0},
		{100, 80, 60, 0},
	}
	alloc := ucpAllocate(hits, 4)
	if alloc[0] != 1 || alloc[1] != 3 {
		t.Errorf("alloc = %v, want [1 3]", alloc)
	}
	// Equal curves: ties go to the lowest master index, masks stay
	// deterministic.
	even := [][]uint64{
		{10, 10, 0, 0},
		{10, 10, 0, 0},
	}
	alloc = ucpAllocate(even, 4)
	if alloc[0] != 2 || alloc[1] != 2 {
		t.Errorf("alloc = %v, want [2 2]", alloc)
	}
	// A master never exceeds the way count even when its curve dominates.
	solo := [][]uint64{{5, 5}, {1, 1}}
	alloc = ucpAllocate(solo, 2)
	if alloc[0] != 1 || alloc[1] != 1 {
		t.Errorf("alloc = %v, want [1 1] (minimum one way each)", alloc)
	}
	// Non-convex curve: a loop over 3 lines pays off only at 3 ways
	// (zero gain at 2). The lookahead must still hand both extra ways
	// over in one move.
	cliff := [][]uint64{
		{0, 0, 0, 0},
		{0, 0, 50, 0},
	}
	alloc = ucpAllocate(cliff, 4)
	if alloc[0] != 1 || alloc[1] != 3 {
		t.Errorf("alloc = %v, want [1 3] (lookahead through the cliff)", alloc)
	}
}

// TestPartitionerRepartition: a full UCP cycle — observe to the period
// boundary, check the masks move toward the reuse-heavy master and the
// counters age.
func TestPartitionerRepartition(t *testing.T) {
	p, err := newPartitioner(PartUCP, 2, 4, 4, 32, nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.mask(0) != 0x3 || p.mask(1) != 0xC {
		t.Fatalf("initial masks = %#x/%#x, want equal split 0x3/0xC", p.mask(0), p.mask(1))
	}
	// Master 0 streams (no reuse), master 1 loops over 3 lines of one
	// set (reuse needing 3 ways).
	reuse := []uint32{0, 128, 256} // same set with 4 sets × 32B lines
	for i := 0; i < 64; i++ {
		if i%2 == 0 {
			p.observe(0, 0, uint32(i)*32)
		} else {
			p.observe(1, 0, reuse[(i/2)%3])
		}
	}
	if p.repartitions != 1 {
		t.Fatalf("repartitions = %d after %d observes with period 64", p.repartitions, 64)
	}
	m0, m1 := p.mask(0), p.mask(1)
	if popcount(m1) <= popcount(m0) {
		t.Errorf("masks after repartition = %#x/%#x: reuse-heavy master did not gain ways", m0, m1)
	}
	if m0&m1 != 0 {
		t.Errorf("masks overlap: %#x & %#x", m0, m1)
	}
	if popcount(m0)+popcount(m1) != 4 {
		t.Errorf("masks %#x/%#x do not cover the 4 ways", m0, m1)
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestSWPMaskValidation(t *testing.T) {
	if _, err := newPartitioner(PartSWP, 2, 4, 4, 32, []uint64{0x3}, 0); err == nil {
		t.Error("mask count mismatch accepted")
	}
	if _, err := newPartitioner(PartSWP, 2, 4, 4, 32, []uint64{0x3, 0x30}, 0); err == nil {
		t.Error("out-of-range mask accepted")
	}
	if _, err := newPartitioner(PartSWP, 2, 4, 4, 32, []uint64{0x3, 0}, 0); err == nil {
		t.Error("empty mask accepted")
	}
	p, err := newPartitioner(PartSWP, 2, 4, 4, 32, []uint64{0x1, 0xE}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.mask(0) != 0x1 || p.mask(1) != 0xE {
		t.Errorf("masks = %#x/%#x", p.mask(0), p.mask(1))
	}
	// Out-of-range master (a DMA engine beyond the core count) is
	// unconstrained rather than crashing.
	if p.mask(5) != ^uint64(0) {
		t.Errorf("unknown master mask = %#x, want all ways", p.mask(5))
	}
}

func TestParsePartition(t *testing.T) {
	for s, want := range map[string]PartitionKind{"": PartNone, "none": PartNone, "swp": PartSWP, "ucp": PartUCP} {
		got, err := ParsePartition(s)
		if err != nil || got != want {
			t.Errorf("ParsePartition(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePartition("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	for _, k := range []PartitionKind{PartNone, PartSWP, PartUCP} {
		if got, err := ParsePartition(k.String()); err != nil || got != k {
			t.Errorf("round trip %v failed", k)
		}
	}
}
