package cache

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/snapshot"
)

// SaveState implements snapshot.Saver: every line, the live MSHRs with
// their waiter queues, the per-memory writeback queues and in-flight
// writebacks, forwarded bypasses, per-port pending bypasses, the
// partitioner (masks, schedule and UMON shadow state — repartition
// points are deterministic, so they must survive a restore), the stats
// — and the embedded state of the private down links, which only the
// L2 holds references to (the up ports are interconnect slave ports
// that config.System tracks itself).
func (l *L2) SaveState(enc *snapshot.Encoder) {
	enc.Int(len(l.sets))
	if len(l.sets) > 0 {
		enc.Int(len(l.sets[0]))
	} else {
		enc.Int(0)
	}
	enc.Int(len(l.ups))
	enc.Int(len(l.mshrs))
	enc.U64(l.useClock)
	for si := range l.sets {
		for wi := range l.sets[si] {
			ln := &l.sets[si][wi]
			enc.U8(uint8(ln.state))
			enc.Int(ln.sm)
			enc.U32(ln.base)
			enc.U64(ln.used)
			enc.Bytes32(ln.data)
		}
	}
	for _, m := range l.mshrs {
		enc.Int(m.sm)
		enc.U32(m.base)
		enc.Int(m.set)
		enc.Int(m.way)
		enc.Bool(m.issued)
		enc.U64(uint64(m.tag))
		enc.U32(uint32(len(m.waiters)))
		for _, w := range m.waiters {
			enc.U64(uint64(w.tag))
			bus.EncodeRequest(enc, w.req)
		}
	}
	for i := range l.downs {
		enc.U32(uint32(len(l.wbq[i])))
		for _, e := range l.wbq[i] {
			encodeWB(enc, e)
		}
		tags := sortedTags(l.wbInflight[i])
		enc.U32(uint32(len(tags)))
		for _, t := range tags {
			enc.U64(uint64(t))
			encodeWB(enc, l.wbInflight[i][t])
		}
		ftags := sortedTags(l.fwd[i])
		enc.U32(uint32(len(ftags)))
		for _, t := range ftags {
			enc.U64(uint64(t))
			enc.U64(uint64(l.fwd[i][t]))
		}
	}
	for i := range l.ups {
		p := l.pending[i]
		enc.Bool(p != nil)
		if p == nil {
			continue
		}
		enc.U64(uint64(p.upTag))
		bus.EncodeRequest(enc, p.req)
		enc.Bool(p.needWait)
		enc.U32(p.lo)
		enc.U32(p.hi)
	}
	l.part.saveState(enc)
	enc.U64(l.stats.Hits)
	enc.U64(l.stats.Misses)
	enc.U64(l.stats.WBAllocates)
	enc.U64(l.stats.Refills)
	enc.U64(l.stats.Writebacks)
	enc.U64(l.stats.BackInvalidations)
	enc.U64(l.stats.DirtyMerges)
	enc.U64(l.stats.Bypassed)
	enc.U64(l.stats.Errors)
	for _, d := range l.downs {
		d.SaveState(enc)
	}
}

// RestoreState implements snapshot.Restorer. Geometry (sets, ways, port
// count, MSHR capacity) must match the rebuilt L2 exactly.
func (l *L2) RestoreState(dec *snapshot.Decoder) error {
	nsets := dec.Int()
	nways := dec.Int()
	nups := dec.Int()
	nmshr := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	ways := 0
	if len(l.sets) > 0 {
		ways = len(l.sets[0])
	}
	if nsets != len(l.sets) || nways != ways || nups != len(l.ups) || nmshr > l.cfg.MSHRs {
		return fmt.Errorf("%s geometry mismatch: snapshot has sets=%d ways=%d ports=%d mshrs=%d, system has sets=%d ways=%d ports=%d mshr capacity %d",
			l.name, nsets, nways, nups, nmshr, len(l.sets), ways, len(l.ups), l.cfg.MSHRs)
	}
	l.useClock = dec.U64()
	for si := range l.sets {
		for wi := range l.sets[si] {
			ln := &l.sets[si][wi]
			ln.state = State(dec.U8())
			ln.sm = dec.Int()
			ln.base = dec.U32()
			ln.used = dec.U64()
			data := dec.Bytes32()
			if dec.Err() != nil {
				return dec.Err()
			}
			if len(data) != len(ln.data) {
				return fmt.Errorf("%s: line size mismatch: snapshot has %d bytes, system has %d", l.name, len(data), len(ln.data))
			}
			copy(ln.data, data)
		}
	}
	l.mshrs = l.mshrs[:0]
	for i := 0; i < nmshr; i++ {
		m := &l2mshr{}
		m.sm = dec.Int()
		m.base = dec.U32()
		m.set = dec.Int()
		m.way = dec.Int()
		m.issued = dec.Bool()
		m.tag = bus.Tag(dec.U64())
		for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
			tag := bus.Tag(dec.U64())
			m.waiters = append(m.waiters, waiter{tag: tag, req: bus.DecodeRequest(dec)})
		}
		l.mshrs = append(l.mshrs, m)
	}
	for i := range l.downs {
		l.wbq[i] = nil
		for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
			l.wbq[i] = append(l.wbq[i], decodeWB(dec))
		}
		l.wbInflight[i] = make(map[bus.Tag]*wbEntry)
		for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
			tag := bus.Tag(dec.U64())
			l.wbInflight[i][tag] = decodeWB(dec)
		}
		l.fwd[i] = make(map[bus.Tag]bus.Tag)
		for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
			down := bus.Tag(dec.U64())
			l.fwd[i][down] = bus.Tag(dec.U64())
		}
	}
	for i := range l.ups {
		l.pending[i] = nil
		if dec.Bool() {
			p := &l2bypass{}
			p.upTag = bus.Tag(dec.U64())
			p.req = bus.DecodeRequest(dec)
			p.needWait = dec.Bool()
			p.lo = dec.U32()
			p.hi = dec.U32()
			l.pending[i] = p
		}
	}
	if err := l.part.restoreState(dec); err != nil {
		return fmt.Errorf("%s partitioner: %w", l.name, err)
	}
	l.stats.Hits = dec.U64()
	l.stats.Misses = dec.U64()
	l.stats.WBAllocates = dec.U64()
	l.stats.Refills = dec.U64()
	l.stats.Writebacks = dec.U64()
	l.stats.BackInvalidations = dec.U64()
	l.stats.DirtyMerges = dec.U64()
	l.stats.Bypassed = dec.U64()
	l.stats.Errors = dec.U64()
	for i, d := range l.downs {
		if err := d.RestoreState(dec); err != nil {
			return fmt.Errorf("%s down port %d: %w", l.name, i, err)
		}
	}
	return dec.Finish()
}

// saveState appends the partitioner's dynamic state: masks, the
// repartition schedule position, and each UMON's shadow directory.
func (p *partitioner) saveState(enc *snapshot.Encoder) {
	enc.U8(uint8(p.kind))
	enc.U32(uint32(len(p.masks)))
	for _, m := range p.masks {
		enc.U64(m)
	}
	enc.U64(p.count)
	enc.U64(p.repartitions)
	enc.Int(len(p.umons))
	for _, u := range p.umons {
		enc.U64(u.clock)
		for _, h := range u.hits {
			enc.U64(h)
		}
		for s := range u.tags {
			for w := range u.tags[s] {
				e := &u.tags[s][w]
				enc.Bool(e.valid)
				enc.Int(e.sm)
				enc.U32(e.base)
				enc.U64(e.used)
			}
		}
	}
}

func (p *partitioner) restoreState(dec *snapshot.Decoder) error {
	kind := PartitionKind(dec.U8())
	nmasks := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if kind != p.kind || nmasks != len(p.masks) {
		return fmt.Errorf("policy mismatch: snapshot has kind=%d masks=%d, system has kind=%d masks=%d",
			kind, nmasks, p.kind, len(p.masks))
	}
	for i := range p.masks {
		p.masks[i] = dec.U64()
	}
	p.count = dec.U64()
	p.repartitions = dec.U64()
	numon := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if numon != len(p.umons) {
		return fmt.Errorf("UMON count mismatch: snapshot has %d, system has %d", numon, len(p.umons))
	}
	for _, u := range p.umons {
		u.clock = dec.U64()
		for i := range u.hits {
			u.hits[i] = dec.U64()
		}
		for s := range u.tags {
			for w := range u.tags[s] {
				e := &u.tags[s][w]
				e.valid = dec.Bool()
				e.sm = dec.Int()
				e.base = dec.U32()
				e.used = dec.U64()
			}
		}
	}
	return dec.Err()
}
