package cache

import "fmt"

// PartitionKind selects the shared L2's way-partitioning policy.
type PartitionKind uint8

const (
	// PartNone: plain LRU, every master competes for every way.
	PartNone PartitionKind = iota
	// PartSWP: static way partitioning — each master is restricted to a
	// fixed way mask (configured, or an equal contiguous split).
	PartSWP
	// PartUCP: utility-based cache partitioning — per-master shadow-tag
	// monitors (UMONs) count how many hits each master would get from
	// each additional way, and a periodic greedy repartition hands the
	// ways to whoever gains the most from them.
	PartUCP
)

// String returns the flag spelling.
func (p PartitionKind) String() string {
	switch p {
	case PartSWP:
		return "swp"
	case PartUCP:
		return "ucp"
	default:
		return "none"
	}
}

// ParsePartition parses a -partition flag value.
func ParsePartition(s string) (PartitionKind, error) {
	switch s {
	case "", "none":
		return PartNone, nil
	case "swp":
		return PartSWP, nil
	case "ucp":
		return PartUCP, nil
	default:
		return PartNone, fmt.Errorf("unknown partition policy %q (none, swp, ucp)", s)
	}
}

// equalSplit returns contiguous way masks dividing `ways` ways over
// `masters` masters as evenly as possible (the first masters get the
// remainder ways). With more masters than ways the extra masters share
// the last way rather than getting an empty mask.
func equalSplit(masters, ways int) []uint64 {
	masks := make([]uint64, masters)
	base, rem := ways/masters, ways%masters
	lo := 0
	for i := range masks {
		n := base
		if i < rem {
			n++
		}
		if n == 0 {
			masks[i] = 1 << uint(ways-1)
			continue
		}
		masks[i] = ((uint64(1) << uint(n)) - 1) << uint(lo)
		lo += n
	}
	return masks
}

// contiguousMasks converts a per-master way allocation (summing to the
// way count) into contiguous masks in master order.
func contiguousMasks(alloc []int, ways int) []uint64 {
	masks := make([]uint64, len(alloc))
	lo := 0
	for i, n := range alloc {
		masks[i] = ((uint64(1) << uint(n)) - 1) << uint(lo)
		lo += n
	}
	_ = ways
	return masks
}

// umonTag is one shadow-tag entry.
type umonTag struct {
	valid bool
	sm    int
	base  uint32
	used  uint64
}

// umon is one master's utility monitor: a shadow tag directory with the
// L2's geometry and true-LRU stacks, but no data. Every demand access
// the master sends to the L2 is replayed here as if the master owned
// the whole cache; a hit at LRU stack position p means "one more hit if
// this master had at least p+1 ways", which is exactly the marginal
// utility curve UCP allocates from.
type umon struct {
	sets, ways int
	lineBytes  uint32
	tags       [][]umonTag
	clock      uint64
	// hits[p] counts shadow hits whose entry sat at LRU stack depth p
	// (0 = MRU). Halved at every repartition so the curve tracks the
	// recent phase rather than all history.
	hits []uint64
}

func newUMON(sets, ways int, lineBytes uint32) *umon {
	u := &umon{sets: sets, ways: ways, lineBytes: lineBytes,
		tags: make([][]umonTag, sets), hits: make([]uint64, ways)}
	for s := range u.tags {
		u.tags[s] = make([]umonTag, ways)
	}
	return u
}

func (u *umon) setIndex(sm int, base uint32) int {
	return int((base/u.lineBytes + uint32(sm)) % uint32(u.sets))
}

// access replays one demand access to line (sm, base): on a hit the
// entry's LRU stack depth is credited, on a miss the LRU entry is
// replaced. Either way the touched entry becomes MRU.
func (u *umon) access(sm int, base uint32) {
	set := u.tags[u.setIndex(sm, base)]
	u.clock++
	for w := range set {
		e := &set[w]
		if e.valid && e.sm == sm && e.base == base {
			// Stack depth = number of entries touched more recently.
			depth := 0
			for x := range set {
				if set[x].valid && set[x].used > e.used {
					depth++
				}
			}
			u.hits[depth]++
			e.used = u.clock
			return
		}
	}
	victim, oldest := 0, ^uint64(0)
	for w := range set {
		if !set[w].valid {
			victim = w
			break
		}
		if set[w].used < oldest {
			victim, oldest = w, set[w].used
		}
	}
	set[victim] = umonTag{valid: true, sm: sm, base: base, used: u.clock}
}

// age halves the hit counters (and leaves the tags, which carry no
// stale utility by themselves).
func (u *umon) age() {
	for i := range u.hits {
		u.hits[i] /= 2
	}
}

// ucpAllocate runs the greedy marginal-utility allocation with
// lookahead: every master gets one way, then each round hands k more
// ways to the (master, k) pair with the highest per-way utility
// sum(hits[alloc..alloc+k))/k. The lookahead is what sees through
// non-convex curves (a working set that only pays off at 3 ways shows
// zero gain for the 2nd way alone). Ties go to the lowest master index
// and the smallest k, so the decision is deterministic. hits[i][p] is
// master i's utility curve: shadow hits at LRU stack depth p.
func ucpAllocate(hits [][]uint64, ways int) []int {
	n := len(hits)
	alloc := make([]int, n)
	assigned := 0
	for i := range alloc {
		alloc[i] = 1
		assigned++
	}
	for assigned < ways {
		best, bestK := 0, 1
		var bestSum uint64
		haveBest := false
		for i := range hits {
			var sum uint64
			maxK := ways - assigned
			if room := ways - alloc[i]; room < maxK {
				maxK = room
			}
			for k := 1; k <= maxK; k++ {
				sum += hits[i][alloc[i]+k-1]
				// sum/k > bestSum/bestK, compared without division.
				if !haveBest || sum*uint64(bestK) > bestSum*uint64(k) {
					best, bestK, bestSum, haveBest = i, k, sum, true
				}
			}
		}
		if !haveBest {
			break // every master already owns all ways it can use
		}
		alloc[best] += bestK
		assigned += bestK
	}
	return alloc
}

// partitioner is the L2's way-partitioning state: the per-master way
// masks constraining victim selection, and (for UCP) the UMONs plus the
// repartition schedule. The schedule counts demand accesses, never
// cycles, so every kernel scheduling mode repartitions at the same
// points and stays bit-identical.
type partitioner struct {
	kind    PartitionKind
	masters int
	ways    int
	masks   []uint64
	umons   []*umon
	period  uint64 // UCP: demand accesses between repartitions
	count   uint64 // demand accesses since the last repartition

	repartitions uint64
}

// newPartitioner builds the policy state. swpMasks overrides the SWP
// default equal split when non-nil (one mask per master, each non-zero
// and within the way count).
func newPartitioner(kind PartitionKind, masters, sets, ways int, lineBytes uint32, swpMasks []uint64, period uint64) (*partitioner, error) {
	p := &partitioner{kind: kind, masters: masters, ways: ways}
	switch kind {
	case PartNone:
		return p, nil
	case PartSWP:
		if swpMasks != nil {
			if len(swpMasks) != masters {
				return nil, fmt.Errorf("cache: %d SWP masks for %d masters", len(swpMasks), masters)
			}
			full := uint64(1)<<uint(ways) - 1
			for i, m := range swpMasks {
				if m == 0 || m&^full != 0 {
					return nil, fmt.Errorf("cache: SWP mask %d = %#x invalid for %d ways", i, m, ways)
				}
			}
			p.masks = append([]uint64(nil), swpMasks...)
			return p, nil
		}
		p.masks = equalSplit(masters, ways)
		return p, nil
	case PartUCP:
		if masters > ways {
			return nil, fmt.Errorf("cache: UCP needs at least one way per master (%d masters, %d ways)", masters, ways)
		}
		if period == 0 {
			period = 2048
		}
		p.period = period
		p.masks = equalSplit(masters, ways)
		p.umons = make([]*umon, masters)
		for i := range p.umons {
			p.umons[i] = newUMON(sets, ways, lineBytes)
		}
		return p, nil
	default:
		return nil, fmt.Errorf("cache: unknown partition kind %d", kind)
	}
}

// mask returns the way mask constraining master's victim selection.
func (p *partitioner) mask(master int) uint64 {
	if p.kind == PartNone || master < 0 || master >= len(p.masks) {
		return ^uint64(0)
	}
	return p.masks[master]
}

// observe replays one demand access into the master's UMON and runs the
// periodic repartition. Only UCP keeps per-access state.
func (p *partitioner) observe(master, sm int, base uint32) {
	if p.kind != PartUCP || master < 0 || master >= len(p.umons) {
		return
	}
	p.umons[master].access(sm, base)
	p.count++
	if p.count >= p.period {
		p.count = 0
		p.repartition()
	}
}

// repartition recomputes the masks from the UMON utility curves and
// ages the counters.
func (p *partitioner) repartition() {
	hits := make([][]uint64, p.masters)
	for i, u := range p.umons {
		hits[i] = u.hits
	}
	alloc := ucpAllocate(hits, p.ways)
	p.masks = contiguousMasks(alloc, p.ways)
	for _, u := range p.umons {
		u.age()
	}
	p.repartitions++
}
