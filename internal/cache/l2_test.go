package cache

import (
	"fmt"
	"testing"

	"repro/internal/bus"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/smapi"
)

// l2rig is a hand-wired two-level system: n Procs behind private L1s on
// a snooping bus whose slave port feeds a shared L2, which fronts one
// static RAM over a private in-order link — the same topology
// config.Build produces, minus the config package (it imports this
// one).
type l2rig struct {
	k      *sim.Kernel
	ram    *mem.StaticRAM
	l2     *L2
	caches []*Cache
	procs  []*smapi.Proc
	dom    *Domain
}

func buildL2Rig(t *testing.T, l1cfg Config, l2cfg L2Config, ramBytes uint32, split bool, tasks ...smapi.Task) *l2rig {
	t.Helper()
	k := sim.New()
	if l2cfg.MSHRs <= 0 {
		l2cfg.MSHRs = 8
	}
	// The L2's up port is the interconnect's slave port; it must be OOO
	// so L2 hits complete under outstanding misses.
	up := bus.NewPort(k, "s0", bus.PortConfig{Depth: 4, OutOfOrder: true})
	md := bus.NewPort(k, "md0", bus.PortConfig{Depth: l2cfg.MSHRs + 2})
	r := &l2rig{k: k, ram: mem.NewStaticRAM(k, mem.Config{Name: "ram", Size: ramBytes, Delays: mem.DefaultDelays()}, md)}
	r.dom = NewDomain()
	var downs, wbs []*bus.Port
	n := len(tasks)
	for i, task := range tasks {
		mup := bus.NewPort(k, fmt.Sprintf("m%d", i), bus.PortConfig{Depth: 4})
		down := bus.NewPort(k, fmt.Sprintf("c%d", i), bus.PortConfig{Depth: 8, OutOfOrder: true})
		wb := bus.NewPort(k, fmt.Sprintf("w%d", i), bus.PortConfig{Depth: 4, OutOfOrder: true})
		c, err := New(k, l1cfg, mup, down, wb)
		if err != nil {
			t.Fatal(err)
		}
		r.dom.Attach(c, i, n+i)
		r.caches = append(r.caches, c)
		downs = append(downs, down)
		wbs = append(wbs, wb)
		r.procs = append(r.procs, smapi.NewProc(k, fmt.Sprintf("pe%d", i), i, mup, task))
	}
	l2cfg.Masters = n
	l2, err := NewL2(k, l2cfg, []*bus.Port{up}, []*bus.Port{md})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.AttachL1s(r.dom); err != nil {
		t.Fatal(err)
	}
	r.l2 = l2
	b := bus.NewBus(k, "bus", append(downs, wbs...), []*bus.Port{up}, bus.NewRoundRobin())
	b.Snoop = r.dom
	if split {
		b.Split = true
		b.RespArb = bus.NewRoundRobin()
	}
	return r
}

func (r *l2rig) run(t *testing.T) {
	t.Helper()
	done := func() bool {
		for _, p := range r.procs {
			if !p.Done() {
				return false
			}
		}
		return true
	}
	if _, err := r.k.RunUntil(done, 5_000_000); err != nil {
		t.Fatal(err)
	}
}

// drain runs the two-phase flush: L1 dirty data lands in the L2 first,
// then the L2's dirty lines land in memory.
func (r *l2rig) drain(t *testing.T) {
	t.Helper()
	for _, c := range r.caches {
		c.FlushAll()
	}
	l1Idle := func() bool {
		for _, c := range r.caches {
			if !c.Idle() {
				return false
			}
		}
		return true
	}
	if _, err := r.k.RunUntil(l1Idle, 1_000_000); err != nil {
		t.Fatal(err)
	}
	r.l2.FlushAll()
	if _, err := r.k.RunUntil(func() bool { return l1Idle() && r.l2.Idle() }, 1_000_000); err != nil {
		t.Fatal(err)
	}
}

func (r *l2rig) peek32(addr uint32) uint32 {
	return uint32(r.ram.Peek(addr)) | uint32(r.ram.Peek(addr+1))<<8 |
		uint32(r.ram.Peek(addr+2))<<16 | uint32(r.ram.Peek(addr+3))<<24
}

// checkInvariants wires per-cycle inclusion + MESI checks into the
// kernel.
func (r *l2rig) checkInvariants() {
	r.k.AfterCycle(func(cycle uint64) {
		if err := CheckExclusivity(r.caches); err != nil {
			r.k.Fault(fmt.Errorf("cycle %d: %w", cycle, err))
		}
		if err := CheckInclusion(r.l2, r.caches); err != nil {
			r.k.Fault(fmt.Errorf("cycle %d: %w", cycle, err))
		}
	})
}

// TestL2HitServesL1Misses: a working set that thrashes a tiny L1 but
// fits the L2 is re-fetched from the L2 on the second pass — memory
// sees each line read once.
func TestL2HitServesL1Misses(t *testing.T) {
	const words = 64 // 256 bytes: 8 L1 lines through a 2-line L1, 4 L2 lines
	r := buildL2Rig(t,
		Config{Sets: 2, Ways: 1},
		L2Config{Sets: 4, Ways: 4, LineBytes: 64},
		4096, false,
		func(ctx *smapi.Ctx) {
			m := ctx.Mem(0)
			for pass := 0; pass < 3; pass++ {
				for i := uint32(0); i < words; i++ {
					if _, code := m.ReadAs(4*i, bus.U32); code != bus.OK {
						panic(code)
					}
				}
			}
		})
	r.checkInvariants()
	r.run(t)
	st := r.l2.Stats()
	if st.Hits == 0 {
		t.Errorf("L2 never hit: %+v", st)
	}
	// Memory refills only the 4 cold L2 lines; every later L1 refill is
	// an L2 hit.
	if got := r.ram.Stats().Ops[bus.OpReadBurst]; got != 4 {
		t.Errorf("memory served %d line reads, want 4 (everything else L2 hits)", got)
	}
	if st.Misses != 4 {
		t.Errorf("L2 misses = %d, want 4", st.Misses)
	}
}

// TestL2InclusionBackInvalidation: the L2's reach (1 set × 2 ways) is
// smaller than the combined L1 reach, so L2 victims are lines the L1s
// still hold dirty — every eviction must back-invalidate live L1 copies
// and merge their Modified data into the victim. The per-cycle
// inclusion invariant must hold throughout and the drained image must
// be exact.
func TestL2InclusionBackInvalidation(t *testing.T) {
	const passes = 8
	// Four 64-byte L2 lines, all mapping to the single L2 set; PE0 owns
	// lines 0 and 128, PE1 owns 64 and 192. Each PE's four 32-byte L1
	// lines spread over both L1 sets and fit its 2×2 L1 exactly, so the
	// L1s retain everything while the L2 thrashes.
	task := func(id uint32) smapi.Task {
		return func(ctx *smapi.Ctx) {
			m := ctx.Mem(0)
			for pass := uint32(1); pass <= passes; pass++ {
				for _, base := range []uint32{id * 64, 128 + id*64} {
					for off := uint32(0); off < 64; off += 4 {
						if code := m.WriteAs(base+off, id<<28|pass<<16|(base+off), bus.U32); code != bus.OK {
							panic(code)
						}
					}
					if v, code := m.ReadAs(base, bus.U32); code != bus.OK || v != id<<28|pass<<16|base {
						panic(fmt.Sprintf("pe%d lost own write at %#x: %#x/%v", id, base, v, code))
					}
				}
			}
		}
	}
	for _, split := range []bool{false, true} {
		r := buildL2Rig(t,
			Config{Sets: 2, Ways: 2},
			L2Config{Sets: 1, Ways: 2, LineBytes: 64},
			2048, split, task(0), task(1))
		r.checkInvariants()
		r.run(t)
		r.drain(t)
		st := r.l2.Stats()
		if st.BackInvalidations == 0 {
			t.Errorf("split=%v: no back-invalidations despite L2 capacity pressure: %+v", split, st)
		}
		if st.DirtyMerges == 0 {
			t.Errorf("split=%v: no dirty L1 data merged into L2 victims: %+v", split, st)
		}
		var l1back uint64
		for _, c := range r.caches {
			l1back += c.Stats().BackInvalidations
		}
		if l1back == 0 {
			t.Errorf("split=%v: L1s report no back-invalidated lines", split)
		}
		for addr := uint32(0); addr < 256; addr += 4 {
			id := (addr / 64) % 2
			want := id<<28 | uint32(passes)<<16 | addr
			if got := r.peek32(addr); got != want {
				t.Fatalf("split=%v: addr %#x = %#x after drain, want %#x", split, addr, got, want)
			}
		}
	}
}

// TestL2SWPCapacity: a single master restricted to one way of a
// two-way L2 loses exactly the capacity the mask takes away — the
// partition constrains victim selection, not correctness.
func TestL2SWPCapacity(t *testing.T) {
	workload := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		// Two lines of one L2 set (64B lines, 2 sets: stride 128).
		for pass := 0; pass < 8; pass++ {
			for _, addr := range []uint32{0, 128} {
				if _, code := m.ReadAs(addr, bus.U32); code != bus.OK {
					panic(code)
				}
			}
		}
	}
	misses := func(masks []uint64) uint64 {
		cfg := L2Config{Sets: 2, Ways: 2, LineBytes: 64}
		if masks != nil {
			cfg.Partition = PartSWP
			cfg.SWPMasks = masks
		}
		// L1 too small to hold both lines (they map to the same L1 set).
		r := buildL2Rig(t, Config{Sets: 4, Ways: 1}, cfg, 4096, false, workload)
		r.checkInvariants()
		r.run(t)
		return r.l2.Stats().Misses
	}
	free := misses(nil)
	boxed := misses([]uint64{0x1})
	if free != 2 {
		t.Errorf("unpartitioned misses = %d, want 2 (both lines fit)", free)
	}
	if boxed <= free {
		t.Errorf("one-way partition misses = %d, want thrash (> %d)", boxed, free)
	}
}

// TestL2WritebackOrdering: dirty L2 victims reach memory before the
// refill that displaced them re-reads the line — the in-order down
// link plus the unissued-writeback holdback make write-before-read
// structural. Detected end-to-end: every value survives a thrashing
// read-modify-write workload.
func TestL2WritebackOrdering(t *testing.T) {
	const span = uint32(512) // 8 L2 lines through a 2-line L2
	r := buildL2Rig(t,
		Config{Sets: 2, Ways: 1},
		L2Config{Sets: 1, Ways: 2, LineBytes: 64},
		2048, false,
		func(ctx *smapi.Ctx) {
			m := ctx.Mem(0)
			for pass := 0; pass < 4; pass++ {
				for w := uint32(0); w < span/4; w++ {
					v, code := m.ReadAs(4*w, bus.U32)
					if code != bus.OK {
						panic(code)
					}
					if v != uint32(pass)*(w+1) {
						panic(fmt.Sprintf("pass %d word %d = %#x, want %#x (stale read after eviction)",
							pass, w, v, uint32(pass)*(w+1)))
					}
					if code := m.WriteAs(4*w, v+w+1, bus.U32); code != bus.OK {
						panic(code)
					}
				}
			}
		})
	r.checkInvariants()
	r.run(t)
	r.drain(t)
	if wb := r.l2.Stats().Writebacks; wb == 0 {
		t.Fatal("no L2 writebacks despite dirty evictions")
	}
	for w := uint32(0); w < span/4; w++ {
		if got := r.peek32(4 * w); got != 4*(w+1) {
			t.Fatalf("word %d = %#x, want %#x", w, got, 4*(w+1))
		}
	}
}

// TestL2UCPRecovery: a streaming thrasher and a reuse-heavy loop share
// a small L2. The loop's reuse distance (12 lines — 3 per L2 set) is
// short enough that 3 dedicated ways hold it entirely, but long enough
// that under shared LRU the stream's insertions push every loop line
// out before its next touch. UCP's utility monitors see the stream
// gains nothing from more ways while the loop saturates at 3, wall the
// stream into one way, and recover the loop's hits.
func TestL2UCPRecovery(t *testing.T) {
	hits := func(part PartitionKind) (uint64, uint64) {
		cfg := L2Config{Sets: 4, Ways: 4, LineBytes: 64, Partition: part, UCPPeriod: 256}
		r := buildL2Rig(t,
			Config{Sets: 2, Ways: 1},
			cfg,
			8192, true,
			func(ctx *smapi.Ctx) { // thrasher: streams 64 lines, 16 per set
				m := ctx.Mem(0)
				for pass := 0; pass < 12; pass++ {
					for addr := uint32(4096); addr < 8192; addr += 64 {
						if _, code := m.ReadAs(addr, bus.U32); code != bus.OK {
							panic(code)
						}
					}
				}
			},
			func(ctx *smapi.Ctx) { // reuse: loops over 12 lines (3 per set)
				m := ctx.Mem(0)
				for i := 0; i < 720; i++ {
					if _, code := m.ReadAs(uint32(i%12)*64, bus.U32); code != bus.OK {
						panic(code)
					}
				}
			})
		r.checkInvariants()
		r.run(t)
		return r.l2.Stats().Hits, r.l2.Stats().Misses
	}
	lruHits, lruMiss := hits(PartNone)
	ucpHits, ucpMiss := hits(PartUCP)
	// The total traffic is identical; UCP must convert misses to hits —
	// by a wide margin, not a rounding error.
	if ucpHits < 2*lruHits+100 {
		t.Errorf("UCP hits = %d (misses %d), LRU hits = %d (misses %d): no recovery",
			ucpHits, ucpMiss, lruHits, lruMiss)
	}
}
