package cache

import (
	"fmt"
	"testing"

	"repro/internal/bus"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/smapi"
)

// FuzzMESI drives random per-line operation interleavings across three
// cached PEs and checks the MESI engine against a flat golden memory:
//
//   - Single writer per line (the line index fixes the owner), so the
//     final memory image is exact regardless of interleaving: after a
//     full flush every word must hold its owner's last written value.
//   - Owners write strictly increasing sequence numbers and must read
//     their own writes back exactly (program order through the cache).
//   - Readers must observe per-location monotonicity: a value older than
//     one already seen is a staleness/coherence violation, and every
//     non-zero value must carry its word's tag (dirty data never leaks
//     across lines or gets lost).
//   - After every simulated cycle the M/E ownership invariant holds: no
//     two caches hold the same line unless both are Shared.
//
// Byte pairs decode to operations round-robin across the PEs: word
// index, read/write select, and an occasional whole-line burst read
// (the bypass path under coherence). The tiny 2×2 geometry forces
// evictions and writebacks constantly.
func FuzzMESI(f *testing.F) {
	f.Add([]byte{0x80, 0, 0x08, 0, 0x10, 0, 0x00, 0, 0x88, 0, 0x90, 0})
	f.Add([]byte(fuzzPingPong()))
	f.Add([]byte(fuzzCapacityWalk()))
	f.Add([]byte(fuzzBurstMix()))
	f.Fuzz(func(t *testing.T, data []byte) {
		runMESI(t, data)
	})
}

// fuzzPingPong hammers one line: owner writes, the two peers read.
func fuzzPingPong() string {
	var b []byte
	for i := 0; i < 30; i++ {
		b = append(b, 0x80|0x01, 0, 0x02, 0, 0x03, 0)
	}
	return string(b)
}

// fuzzCapacityWalk sweeps every line with writes and reads, exceeding
// the 2×2 geometry many times over.
func fuzzCapacityWalk() string {
	var b []byte
	for pass := 0; pass < 3; pass++ {
		for w := 0; w < 128; w += 4 {
			b = append(b, byte(w)|0x80, 0, byte(w), 0)
		}
	}
	return string(b)
}

// fuzzBurstMix interleaves scalar traffic with whole-line burst reads.
func fuzzBurstMix() string {
	var b []byte
	for i := 0; i < 40; i++ {
		b = append(b, byte(i*7)|0x80, 0, byte(i*5), 3, byte(i*11), 0)
	}
	return string(b)
}

const (
	fuzzPEs   = 3
	fuzzWords = 128 // 512-byte RAM, 16 lines of 32 bytes
)

type fuzzOp struct {
	word  int
	write bool
	burst bool
}

// decodeMESI splits the input into one op stream per PE. Writes are
// forced onto the word's owner so every location keeps a single writer.
func decodeMESI(data []byte) [][]fuzzOp {
	streams := make([][]fuzzOp, fuzzPEs)
	for i := 0; i+1 < len(data) && i/2 < 400; i += 2 {
		pe := (i / 2) % fuzzPEs
		op := fuzzOp{
			word:  int(data[i] & 0x7F),
			write: data[i]&0x80 != 0,
			burst: data[i+1]&0x3 == 3,
		}
		if op.burst || (op.write && owner(op.word) != pe) {
			op.write = false
		}
		streams[pe] = append(streams[pe], op)
	}
	return streams
}

func owner(word int) int { return (word / 8) % fuzzPEs }

func runMESI(t *testing.T, data []byte) {
	streams := decodeMESI(data)

	// Golden flat memory: each word's final value is its owner's last
	// write — exact because each word has one writer.
	golden := make([]uint32, fuzzWords)
	seq := make([]uint32, fuzzWords)
	written := make([][]uint32, fuzzPEs) // per-PE view for self-read checks
	for pe := range written {
		written[pe] = make([]uint32, fuzzWords)
	}
	for _, ops := range streams {
		for _, op := range ops {
			if op.write {
				seq[op.word]++
				golden[op.word] = uint32(op.word)<<16 | seq[op.word]
			}
		}
	}
	// Each word has one writer, so the live run's per-word sequence —
	// counted in simulation order — ends at the same value.
	liveSeq := make([]uint32, fuzzWords)

	k := sim.New()
	slave := bus.NewPort(k, "s0", bus.PortConfig{Depth: 4})
	ram := mem.NewStaticRAM(k, mem.Config{Name: "ram", Size: fuzzWords * 4, Delays: mem.DefaultDelays()}, slave)
	dom := NewDomain()
	var caches []*Cache
	var downs, wbs []*bus.Port
	var procs []*smapi.Proc
	lastSeen := make([][]uint32, fuzzPEs)
	for pe := 0; pe < fuzzPEs; pe++ {
		lastSeen[pe] = make([]uint32, fuzzWords)
		up := bus.NewPort(k, fmt.Sprintf("m%d", pe), bus.PortConfig{Depth: 2})
		down := bus.NewPort(k, fmt.Sprintf("c%d", pe), bus.PortConfig{Depth: 8, OutOfOrder: true})
		wbp := bus.NewPort(k, fmt.Sprintf("w%d", pe), bus.PortConfig{Depth: 4, OutOfOrder: true})
		c, err := New(k, Config{Sets: 2, Ways: 2}, up, down, wbp)
		if err != nil {
			t.Fatal(err)
		}
		dom.Attach(c, pe, fuzzPEs+pe)
		caches = append(caches, c)
		downs = append(downs, down)
		wbs = append(wbs, wbp)
		ops := streams[pe]
		peID := pe
		procs = append(procs, smapi.NewProc(k, fmt.Sprintf("pe%d", pe), pe, up, func(ctx *smapi.Ctx) {
			m := ctx.Mem(0)
			for _, op := range ops {
				switch {
				case op.burst:
					base := uint32(op.word/8) * 32
					if _, code := m.ReadArray(base, 8); code != bus.OK {
						panic(fmt.Sprintf("pe%d: burst read: %v", peID, code))
					}
				case op.write:
					liveSeq[op.word]++
					v := uint32(op.word)<<16 | liveSeq[op.word]
					written[peID][op.word] = v
					if code := m.WriteAs(uint32(op.word)*4, v, bus.U32); code != bus.OK {
						panic(fmt.Sprintf("pe%d: write: %v", peID, code))
					}
				default:
					v, code := m.ReadAs(uint32(op.word)*4, bus.U32)
					if code != bus.OK {
						panic(fmt.Sprintf("pe%d: read: %v", peID, code))
					}
					if v != 0 && v>>16 != uint32(op.word) {
						panic(fmt.Sprintf("pe%d: word %d holds foreign value %#x", peID, op.word, v))
					}
					if v < lastSeen[peID][op.word] {
						panic(fmt.Sprintf("pe%d: word %d went backwards: %#x after %#x (staleness)",
							peID, op.word, v, lastSeen[peID][op.word]))
					}
					if owner(op.word) == peID && v != written[peID][op.word] {
						panic(fmt.Sprintf("pe%d: lost own write to word %d: read %#x, wrote %#x",
							peID, op.word, v, written[peID][op.word]))
					}
					lastSeen[peID][op.word] = v
				}
			}
		}))
	}
	b := bus.NewBus(k, "bus", append(downs, wbs...), []*bus.Port{slave}, bus.NewRoundRobin())
	b.Snoop = dom

	// The ownership invariant must hold after every committed cycle.
	k.AfterCycle(func(cycle uint64) {
		if err := CheckExclusivity(caches); err != nil {
			k.Fault(fmt.Errorf("cycle %d: %w", cycle, err))
		}
	})

	done := func() bool {
		for _, p := range procs {
			if !p.Done() {
				return false
			}
		}
		return true
	}
	if _, err := k.RunUntil(done, 5_000_000); err != nil {
		t.Fatal(err)
	}

	for _, c := range caches {
		c.FlushAll()
	}
	synced := func() bool {
		for _, c := range caches {
			if !c.Idle() {
				return false
			}
		}
		return true
	}
	if _, err := k.RunUntil(synced, 1_000_000); err != nil {
		t.Fatal(err)
	}

	// Dirty data never lost, never duplicated: the flat image matches
	// the golden memory exactly.
	for w := 0; w < fuzzWords; w++ {
		got := uint32(ram.Peek(uint32(4*w))) | uint32(ram.Peek(uint32(4*w+1)))<<8 |
			uint32(ram.Peek(uint32(4*w+2)))<<16 | uint32(ram.Peek(uint32(4*w+3)))<<24
		if got != golden[w] {
			t.Fatalf("word %d = %#x after flush, want %#x", w, got, golden[w])
		}
	}
	if err := CheckExclusivity(caches); err != nil {
		t.Fatal(err)
	}
}
