package cache

import (
	"fmt"
	"testing"

	"repro/internal/bus"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/smapi"
)

// FuzzL2Inclusion drives the FuzzMESI op streams through the full
// two-level hierarchy: three cached PEs behind tiny 2×2 L1s, a shared
// 2-set × 2-way inclusive L2, and a flat golden memory. The first
// input byte selects the way-partition policy (none / SWP / UCP), the
// rest decode exactly as in FuzzMESI. On top of the single-writer /
// monotonic-read / exact-final-image properties, every committed cycle
// checks:
//
//   - MESI M/E exclusivity across the L1s (CheckExclusivity), and
//   - the inclusion invariant (CheckInclusion): no L1 holds a line the
//     L2 has evicted.
//
// The L2 is deliberately small (8 lines of 32B against a 16-line
// address space under three 128B L1s), so back-invalidations, dirty
// merges into L2 victims, and killed-in-flight refills fire constantly
// — the exact-image check proves no dirty data is lost across them.
func FuzzL2Inclusion(f *testing.F) {
	f.Add([]byte{0x00, 0x80, 0, 0x08, 0, 0x10, 0, 0x00, 0, 0x88, 0, 0x90, 0})
	f.Add(append([]byte{0x00}, fuzzPingPong()...))
	f.Add(append([]byte{0x01}, fuzzCapacityWalk()...)) // SWP equal split
	f.Add(append([]byte{0x02}, fuzzBurstMix()...))     // UCP repartitioning live
	f.Fuzz(func(t *testing.T, data []byte) {
		runL2Inclusion(t, data)
	})
}

func runL2Inclusion(t *testing.T, data []byte) {
	part := PartNone
	if len(data) > 0 {
		part = PartitionKind(data[0] % 3)
		data = data[1:]
	}
	streams := decodeMESI(data)

	golden := make([]uint32, fuzzWords)
	seq := make([]uint32, fuzzWords)
	written := make([][]uint32, fuzzPEs)
	for pe := range written {
		written[pe] = make([]uint32, fuzzWords)
	}
	for _, ops := range streams {
		for _, op := range ops {
			if op.write {
				seq[op.word]++
				golden[op.word] = uint32(op.word)<<16 | seq[op.word]
			}
		}
	}
	liveSeq := make([]uint32, fuzzWords)

	k := sim.New()
	up := bus.NewPort(k, "s0", bus.PortConfig{Depth: 4, OutOfOrder: true})
	md := bus.NewPort(k, "md0", bus.PortConfig{Depth: 6})
	ram := mem.NewStaticRAM(k, mem.Config{Name: "ram", Size: fuzzWords * 4, Delays: mem.DefaultDelays()}, md)
	dom := NewDomain()
	var caches []*Cache
	var downs, wbs []*bus.Port
	var procs []*smapi.Proc
	lastSeen := make([][]uint32, fuzzPEs)
	for pe := 0; pe < fuzzPEs; pe++ {
		lastSeen[pe] = make([]uint32, fuzzWords)
		mup := bus.NewPort(k, fmt.Sprintf("m%d", pe), bus.PortConfig{Depth: 2})
		down := bus.NewPort(k, fmt.Sprintf("c%d", pe), bus.PortConfig{Depth: 8, OutOfOrder: true})
		wbp := bus.NewPort(k, fmt.Sprintf("w%d", pe), bus.PortConfig{Depth: 4, OutOfOrder: true})
		c, err := New(k, Config{Sets: 2, Ways: 2}, mup, down, wbp)
		if err != nil {
			t.Fatal(err)
		}
		dom.Attach(c, pe, fuzzPEs+pe)
		caches = append(caches, c)
		downs = append(downs, down)
		wbs = append(wbs, wbp)
		ops := streams[pe]
		peID := pe
		procs = append(procs, smapi.NewProc(k, fmt.Sprintf("pe%d", pe), pe, mup, func(ctx *smapi.Ctx) {
			m := ctx.Mem(0)
			for _, op := range ops {
				switch {
				case op.burst:
					base := uint32(op.word/8) * 32
					if _, code := m.ReadArray(base, 8); code != bus.OK {
						panic(fmt.Sprintf("pe%d: burst read: %v", peID, code))
					}
				case op.write:
					liveSeq[op.word]++
					v := uint32(op.word)<<16 | liveSeq[op.word]
					written[peID][op.word] = v
					if code := m.WriteAs(uint32(op.word)*4, v, bus.U32); code != bus.OK {
						panic(fmt.Sprintf("pe%d: write: %v", peID, code))
					}
				default:
					v, code := m.ReadAs(uint32(op.word)*4, bus.U32)
					if code != bus.OK {
						panic(fmt.Sprintf("pe%d: read: %v", peID, code))
					}
					if v != 0 && v>>16 != uint32(op.word) {
						panic(fmt.Sprintf("pe%d: word %d holds foreign value %#x", peID, op.word, v))
					}
					if v < lastSeen[peID][op.word] {
						panic(fmt.Sprintf("pe%d: word %d went backwards: %#x after %#x (staleness)",
							peID, op.word, v, lastSeen[peID][op.word]))
					}
					if owner(op.word) == peID && v != written[peID][op.word] {
						panic(fmt.Sprintf("pe%d: lost own write to word %d: read %#x, wrote %#x",
							peID, op.word, v, written[peID][op.word]))
					}
					lastSeen[peID][op.word] = v
				}
			}
		}))
	}
	l2, err := NewL2(k, L2Config{
		Sets: 2, Ways: 4, LineBytes: 32, MSHRs: 4, Masters: fuzzPEs,
		Partition: part, UCPPeriod: 64,
	}, []*bus.Port{up}, []*bus.Port{md})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.AttachL1s(dom); err != nil {
		t.Fatal(err)
	}
	b := bus.NewBus(k, "bus", append(downs, wbs...), []*bus.Port{up}, bus.NewRoundRobin())
	b.Snoop = dom
	b.Split = true
	b.RespArb = bus.NewRoundRobin()

	k.AfterCycle(func(cycle uint64) {
		if err := CheckExclusivity(caches); err != nil {
			k.Fault(fmt.Errorf("cycle %d: %w", cycle, err))
		}
		if err := CheckInclusion(l2, caches); err != nil {
			k.Fault(fmt.Errorf("cycle %d: %w", cycle, err))
		}
	})

	done := func() bool {
		for _, p := range procs {
			if !p.Done() {
				return false
			}
		}
		return true
	}
	if _, err := k.RunUntil(done, 5_000_000); err != nil {
		t.Fatal(err)
	}

	// Two-phase drain: L1 dirty lines land in the L2, then the L2's
	// dirty lines land in memory.
	for _, c := range caches {
		c.FlushAll()
	}
	l1Idle := func() bool {
		for _, c := range caches {
			if !c.Idle() {
				return false
			}
		}
		return true
	}
	if _, err := k.RunUntil(l1Idle, 1_000_000); err != nil {
		t.Fatal(err)
	}
	l2.FlushAll()
	if _, err := k.RunUntil(func() bool { return l1Idle() && l2.Idle() }, 1_000_000); err != nil {
		t.Fatal(err)
	}

	for w := 0; w < fuzzWords; w++ {
		got := uint32(ram.Peek(uint32(4*w))) | uint32(ram.Peek(uint32(4*w+1)))<<8 |
			uint32(ram.Peek(uint32(4*w+2)))<<16 | uint32(ram.Peek(uint32(4*w+3)))<<24
		if got != golden[w] {
			t.Fatalf("word %d = %#x after flush, want %#x (part=%v)", w, got, golden[w], part)
		}
	}
	if err := CheckExclusivity(caches); err != nil {
		t.Fatal(err)
	}
	if err := CheckInclusion(l2, caches); err != nil {
		t.Fatal(err)
	}
}
