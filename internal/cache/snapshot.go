package cache

import (
	"fmt"
	"sort"

	"repro/internal/bus"
	"repro/internal/snapshot"
)

func sortedTags[V any](m map[bus.Tag]V) []bus.Tag {
	tags := make([]bus.Tag, 0, len(m))
	for t := range m {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

func encodeWB(enc *snapshot.Encoder, e *wbEntry) {
	enc.Int(e.sm)
	enc.U32(e.base)
	enc.Bytes32(e.data)
}

func decodeWB(dec *snapshot.Decoder) *wbEntry {
	return &wbEntry{sm: dec.Int(), base: dec.U32(), data: dec.Bytes32()}
}

// SaveState implements snapshot.Saver: every line (state, address,
// LRU stamp, data), the MSHRs with their waiter queues, the writeback
// queue and in-flight writebacks, bypass tracking, stats — and the
// embedded state of the private writeback port, which only the cache
// holds a reference to (config.System tracks the up and down ports,
// the wb channel is internal wiring).
//
// The Domain is deliberately absent: it holds pure topology (which
// cache owns which MSHR address), all dynamic coherence state lives in
// the caches themselves.
func (c *Cache) SaveState(enc *snapshot.Encoder) {
	enc.Int(len(c.sets))
	if len(c.sets) > 0 {
		enc.Int(len(c.sets[0]))
	} else {
		enc.Int(0)
	}
	enc.Int(len(c.mshrs))
	enc.U64(c.useClock)
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			enc.U8(uint8(l.state))
			enc.Int(l.sm)
			enc.U32(l.base)
			enc.U64(l.used)
			enc.Bytes32(l.data)
		}
	}
	for _, m := range c.mshrs {
		enc.Bool(m != nil)
		if m == nil {
			continue
		}
		enc.Int(m.sm)
		enc.U32(m.base)
		enc.Bool(m.excl)
		enc.Int(m.set)
		enc.Int(m.way)
		enc.Bool(m.issued)
		enc.Bool(m.granted)
		enc.Bool(m.shared)
		enc.Bool(m.killed)
		enc.U64(uint64(m.tag))
		enc.U32(uint32(len(m.waiters)))
		for _, w := range m.waiters {
			enc.U64(uint64(w.tag))
			bus.EncodeRequest(enc, w.req)
		}
	}
	enc.U32(uint32(len(c.wbq)))
	for _, e := range c.wbq {
		encodeWB(enc, e)
	}
	wbTags := sortedTags(c.wbInflight)
	enc.U32(uint32(len(wbTags)))
	for _, t := range wbTags {
		enc.U64(uint64(t))
		encodeWB(enc, c.wbInflight[t])
	}
	fwdTags := sortedTags(c.fwd)
	enc.U32(uint32(len(fwdTags)))
	for _, t := range fwdTags {
		enc.U64(uint64(t))
		enc.U64(uint64(c.fwd[t]))
	}
	enc.Bool(c.pending != nil)
	if c.pending != nil {
		enc.U64(uint64(c.pending.upTag))
		bus.EncodeRequest(enc, c.pending.req)
		enc.Bool(c.pending.needWait)
		enc.Int(c.pending.sm)
		enc.U32(c.pending.lo)
		enc.U32(c.pending.hi)
	}
	enc.U64(c.stats.Hits)
	enc.U64(c.stats.Misses)
	enc.U64(c.stats.Upgrades)
	enc.U64(c.stats.Refills)
	enc.U64(c.stats.Writebacks)
	enc.U64(c.stats.SnoopFlushes)
	enc.U64(c.stats.SnoopInvalidations)
	enc.U64(c.stats.SnoopDowngrades)
	enc.U64(c.stats.Bypassed)
	enc.U64(c.stats.Errors)
	enc.U64(c.stats.BackInvalidations)
	enc.U64(c.stats.KilledRefills)
	c.wb.SaveState(enc)
}

// RestoreState implements snapshot.Restorer. Geometry (sets, ways,
// MSHR count, line size) must match the rebuilt cache exactly.
func (c *Cache) RestoreState(dec *snapshot.Decoder) error {
	nsets := dec.Int()
	nways := dec.Int()
	nmshr := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	ways := 0
	if len(c.sets) > 0 {
		ways = len(c.sets[0])
	}
	if nsets != len(c.sets) || nways != ways || nmshr > c.cfg.MSHRs {
		return fmt.Errorf("cache %s geometry mismatch: snapshot has sets=%d ways=%d mshrs=%d, system has sets=%d ways=%d mshr capacity %d",
			c.name, nsets, nways, nmshr, len(c.sets), ways, c.cfg.MSHRs)
	}
	c.useClock = dec.U64()
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			l.state = State(dec.U8())
			l.sm = dec.Int()
			l.base = dec.U32()
			l.used = dec.U64()
			data := dec.Bytes32()
			if dec.Err() != nil {
				return dec.Err()
			}
			if len(data) != len(l.data) {
				return fmt.Errorf("cache %s: line size mismatch: snapshot has %d bytes, system has %d", c.name, len(data), len(l.data))
			}
			copy(l.data, data)
		}
	}
	// The snapshot holds the live MSHRs; the freshly built cache has
	// none, so rebuild the slice (capacity was validated above).
	c.mshrs = c.mshrs[:0]
	for i := 0; i < nmshr; i++ {
		if !dec.Bool() {
			continue
		}
		m := &mshr{}
		m.sm = dec.Int()
		m.base = dec.U32()
		m.excl = dec.Bool()
		m.set = dec.Int()
		m.way = dec.Int()
		m.issued = dec.Bool()
		m.granted = dec.Bool()
		m.shared = dec.Bool()
		m.killed = dec.Bool()
		m.tag = bus.Tag(dec.U64())
		for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
			tag := bus.Tag(dec.U64())
			m.waiters = append(m.waiters, waiter{tag: tag, req: bus.DecodeRequest(dec)})
		}
		c.mshrs = append(c.mshrs, m)
	}
	c.wbq = nil
	for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
		c.wbq = append(c.wbq, decodeWB(dec))
	}
	c.wbInflight = make(map[bus.Tag]*wbEntry)
	for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
		tag := bus.Tag(dec.U64())
		c.wbInflight[tag] = decodeWB(dec)
	}
	c.fwd = make(map[bus.Tag]bus.Tag)
	for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
		down := bus.Tag(dec.U64())
		c.fwd[down] = bus.Tag(dec.U64())
	}
	c.pending = nil
	if dec.Bool() {
		b := &bypass{}
		b.upTag = bus.Tag(dec.U64())
		b.req = bus.DecodeRequest(dec)
		b.needWait = dec.Bool()
		b.sm = dec.Int()
		b.lo = dec.U32()
		b.hi = dec.U32()
		c.pending = b
	}
	c.stats.Hits = dec.U64()
	c.stats.Misses = dec.U64()
	c.stats.Upgrades = dec.U64()
	c.stats.Refills = dec.U64()
	c.stats.Writebacks = dec.U64()
	c.stats.SnoopFlushes = dec.U64()
	c.stats.SnoopInvalidations = dec.U64()
	c.stats.SnoopDowngrades = dec.U64()
	c.stats.Bypassed = dec.U64()
	c.stats.Errors = dec.U64()
	c.stats.BackInvalidations = dec.U64()
	c.stats.KilledRefills = dec.U64()
	if err := c.wb.RestoreState(dec); err != nil {
		return fmt.Errorf("cache %s writeback port: %w", c.name, err)
	}
	return dec.Finish()
}
