// Package stats provides run measurement and the aligned text tables
// the experiment harness prints — the reporting layer shared by
// cmd/mpsim, cmd/experiments and the root benchmarks.
//
// # Tables
//
// Table is a deliberately simple aligned text table: a title, a header
// and string rows (Add / Addf). String renders with padded columns and
// a dashed rule, the exact format EXPERIMENTS.md transcribes — keeping
// the printed artifact diff-able against the committed results.
//
// # Measurements
//
// RunResult captures one simulated run: its name, simulated cycle
// count and host wall-clock time. CyclesPerSec is the paper's
// simulation-speed metric (simulated cycles per host second) and
// Degradation expresses the paper's single quantitative result — the
// relative speed loss between two configurations (E1 reports 20%
// between one and four wrapper memories).
//
// Rate, SI and Pct are the shared formatting helpers: Rate guards
// against zero-duration division, SI renders large rates with
// engineering suffixes (k, M, G), and Pct renders signed relative
// differences the way every results table spells them. The warm-boot
// result cache (experiments.WarmBootCache) memoizes RunResult values
// keyed by config and snapshot hashes, which is why the type carries
// everything a table row needs.
package stats
