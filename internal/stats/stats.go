package stats

import (
	"fmt"
	"strings"
	"time"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; cells beyond the header width are dropped, missing
// cells render empty.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted cells; each cell is a (format, value)
// application of fmt.Sprintf over one argument.
func (t *Table) Addf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, fmt.Sprint(c))
	}
	t.Add(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// Rate returns simulated cycles per host second.
func Rate(cycles uint64, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(cycles) / wall.Seconds()
}

// SI formats a value with an SI suffix (k, M, G) to three significant
// digits, for cycles/s columns.
func SI(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Pct formats a ratio as a signed percentage ("+20.3%").
func Pct(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", ratio*100)
}

// RunResult captures one measured simulation run.
type RunResult struct {
	Name   string
	Cycles uint64
	Wall   time.Duration
}

// CyclesPerSec returns the simulation speed of the run.
func (r RunResult) CyclesPerSec() float64 { return Rate(r.Cycles, r.Wall) }

// Degradation returns the relative simulation-speed loss of r versus a
// baseline run: positive means r is slower (the paper's "degradation of
// simulation speed of 20%" is 0.20 in this measure).
func (r RunResult) Degradation(base RunResult) float64 {
	b := base.CyclesPerSec()
	if b == 0 {
		return 0
	}
	return 1 - r.CyclesPerSec()/b
}
