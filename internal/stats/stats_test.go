package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Results", "config", "cycles/s", "degradation")
	tb.Add("4 ISS / 1 mem", "1.23M", "-")
	tb.Add("4 ISS / 4 mem", "0.98M", "+20.3%")
	out := tb.String()
	if !strings.Contains(out, "Results") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d\n%s", len(lines), out)
	}
	// Columns align: every data row has the separator at the same offset.
	hdrIdx := strings.Index(lines[1], "cycles/s")
	rowIdx := strings.Index(lines[3], "1.23M")
	if hdrIdx != rowIdx {
		t.Errorf("columns misaligned: %d vs %d\n%s", hdrIdx, rowIdx, out)
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Add("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Error("short row dropped")
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("", "n", "v")
	tb.Addf(42, 3.5)
	if !strings.Contains(tb.String(), "42") || !strings.Contains(tb.String(), "3.5") {
		t.Error("Addf lost cells")
	}
}

func TestRate(t *testing.T) {
	if got := Rate(1000, time.Second); got != 1000 {
		t.Errorf("Rate = %v", got)
	}
	if got := Rate(1000, 0); got != 0 {
		t.Errorf("Rate(0 wall) = %v", got)
	}
}

func TestSI(t *testing.T) {
	cases := map[float64]string{
		999:    "999",
		1500:   "1.50k",
		2.5e6:  "2.50M",
		3.25e9: "3.25G",
		0:      "0",
	}
	for v, want := range cases {
		if got := SI(v); got != want {
			t.Errorf("SI(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.203); got != "+20.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.05); got != "-5.0%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestDegradation(t *testing.T) {
	base := RunResult{Cycles: 1000, Wall: time.Second}             // 1000 c/s
	slow := RunResult{Cycles: 1000, Wall: 1250 * time.Millisecond} // 800 c/s
	got := slow.Degradation(base)
	if got < 0.19 || got > 0.21 {
		t.Errorf("Degradation = %v, want ≈0.20", got)
	}
	if base.Degradation(RunResult{}) != 0 {
		t.Error("zero baseline must not divide by zero")
	}
	if base.CyclesPerSec() != 1000 {
		t.Errorf("CyclesPerSec = %v", base.CyclesPerSec())
	}
}
