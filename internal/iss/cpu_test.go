package iss

import (
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sim"
)

// runProgram assembles src, runs it on a lone CPU until halt, and
// returns the CPU for inspection.
func runProgram(t *testing.T, src string) *CPU {
	t.Helper()
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	k := sim.New()
	cpu, err := New(k, Config{Prog: prog.Code})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunUntil(cpu.Halted, 1_000_000); err != nil {
		t.Fatalf("program did not halt: %v (pc=%#x)", err, cpu.PC())
	}
	return cpu
}

// runWithWrapper assembles src and runs it on a CPU whose bridge is wired
// directly to a dynamic shared memory wrapper.
func runWithWrapper(t *testing.T, src string, cfg core.Config) (*CPU, *core.Wrapper) {
	t.Helper()
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	k := sim.New()
	link := bus.NewLink(k, "cpu-mem")
	w, err := core.NewWrapper(k, cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := New(k, Config{Prog: prog.Code, Port: link})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunUntil(cpu.Halted, 10_000_000); err != nil {
		t.Fatalf("program did not halt: %v (pc=%#x)", err, cpu.PC())
	}
	return cpu, w
}

func TestCPUArithmetic(t *testing.T) {
	cpu := runProgram(t, `
		mov r0, #10
		add r1, r0, #32     ; 42
		sub r2, r1, r0      ; 32
		rsb r3, r0, #100    ; 90
		mvn r4, r2          ; ^32
		and r5, r1, #0xF    ; 10
		orr r6, r5, #0x30   ; 0x3A
		eor r7, r6, r5      ; 0x30
		bic r8, r1, #2      ; 40
		lsl r9, r0, #3      ; 80
		lsr r10, r9, #2     ; 20
		li  r11, 0x80000000
		asr r11, r11, #31   ; 0xFFFFFFFF
		mul r12, r0, r0     ; 100
		mla r12, r0, r0, r1 ; 142
		mov r0, r12
		swi #0
	`)
	want := map[int]uint32{
		1: 42, 2: 32, 3: 90, 4: ^uint32(32), 5: 10, 6: 0x3A, 7: 0x30,
		8: 40, 9: 80, 10: 20, 11: 0xFFFFFFFF, 12: 142,
	}
	for r, w := range want {
		if got := cpu.Reg(r); got != w {
			t.Errorf("r%d = %#x, want %#x", r, got, w)
		}
	}
	if cpu.ExitCode() != 142 {
		t.Errorf("exit = %d, want 142", cpu.ExitCode())
	}
}

func TestCPULoopAndFlags(t *testing.T) {
	cpu := runProgram(t, `
			mov r0, #0      ; sum
			mov r1, #10     ; i
		loop:	add r0, r0, r1
			sub r1, r1, #1
			cmp r1, #0
			bne loop
			swi #0
	`)
	if cpu.ExitCode() != 55 {
		t.Errorf("sum = %d, want 55", cpu.ExitCode())
	}
}

func TestCPUSignedConditions(t *testing.T) {
	// -5 < 3 via blt requires correct N/V handling.
	cpu := runProgram(t, `
			li  r1, 0xFFFFFFFB   ; -5
			mov r2, #3
			cmp r1, r2
			blt less
			mov r0, #0
			swi #0
		less:	mov r0, #1
			swi #0
	`)
	if cpu.ExitCode() != 1 {
		t.Error("signed comparison failed")
	}
}

func TestCPUUnsignedConditions(t *testing.T) {
	// 0xFFFFFFFB is unsigned-greater than 3: bcs (unsigned ≥) taken.
	cpu := runProgram(t, `
			li  r1, 0xFFFFFFFB
			mov r2, #3
			cmp r1, r2
			bcs above
			mov r0, #0
			swi #0
		above:	mov r0, #1
			swi #0
	`)
	if cpu.ExitCode() != 1 {
		t.Error("unsigned comparison failed")
	}
}

func TestCPUFunctionCall(t *testing.T) {
	cpu := runProgram(t, `
			mov r0, #5
			bl  double
			bl  double
			swi #0          ; exit 20
		double:	add r0, r0, r0
			ret
	`)
	if cpu.ExitCode() != 20 {
		t.Errorf("exit = %d, want 20", cpu.ExitCode())
	}
}

func TestCPULoadStoreLocalMemory(t *testing.T) {
	cpu := runProgram(t, `
			li   r1, data
			ldr  r2, [r1]        ; 0x11223344
			ldrh r3, [r1]        ; 0x3344
			ldrb r4, [r1, #3]    ; 0x11
			str  r2, [r1, #8]
			ldr  r5, [r1, #8]
			strh r3, [r1, #12]
			strb r4, [r1, #14]
			ldr  r6, [r1, #12]   ; 0x00113344
			mov  r0, #0
			swi  #0
		data:	.word 0x11223344
			.space 16
	`)
	if got := cpu.Reg(2); got != 0x11223344 {
		t.Errorf("r2 = %#x", got)
	}
	if got := cpu.Reg(3); got != 0x3344 {
		t.Errorf("r3 = %#x", got)
	}
	if got := cpu.Reg(4); got != 0x11 {
		t.Errorf("r4 = %#x", got)
	}
	if got := cpu.Reg(5); got != 0x11223344 {
		t.Errorf("r5 = %#x", got)
	}
	if got := cpu.Reg(6); got != 0x00113344 {
		t.Errorf("r6 = %#x", got)
	}
}

func TestCPUConsoleOutput(t *testing.T) {
	cpu := runProgram(t, `
		mov r0, #'H'
		swi #1
		mov r0, #'i'
		swi #1
		mov r0, #42
		swi #2
		mov r0, #0
		swi #0
	`)
	if got := cpu.Console(); got != "Hi42\n" {
		t.Errorf("console = %q, want %q", got, "Hi42\n")
	}
}

func TestCPUCycleCounterService(t *testing.T) {
	cpu := runProgram(t, `
		nop
		nop
		swi #3      ; r0 = cycles
		mov r1, r0
		swi #0
	`)
	if got := cpu.Reg(1); got != 2 {
		t.Errorf("cycle readback = %d, want 2", got)
	}
}

func TestCPUOneInstructionPerCycle(t *testing.T) {
	cpu := runProgram(t, `
		mov r0, #1
		mov r0, #2
		mov r0, #3
		hlt
	`)
	if cpu.Icount != 4 {
		t.Errorf("Icount = %d, want 4", cpu.Icount)
	}
	if cpu.Cycles != 4 {
		t.Errorf("Cycles = %d, want 4", cpu.Cycles)
	}
}

func TestCPUFaults(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"fetch oob", "li r1, 0x100000\nbx r1\nhlt", "instruction fetch out of bounds"},
		{"undefined instruction", ".word 0xF0000000\nhlt", "undefined instruction"},
		{"load oob", "li r1, 0x100000\nldr r0, [r1]\nhlt", "out of bounds"},
		{"store oob", "li r1, 0xFFFE0000\nstr r0, [r1]\nhlt", "out of bounds"},
		{"undefined swi", "swi #999\nhlt", "undefined SWI"},
		{"bx misaligned", "mov r1, #2\nbx r1\nhlt", "instruction fetch out of bounds"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := isa.Assemble(c.src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			k := sim.New()
			cpu, err := New(k, Config{Prog: prog.Code})
			if err != nil {
				t.Fatal(err)
			}
			_, err = k.RunUntil(cpu.Halted, 10000)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestCPUProgramTooLarge(t *testing.T) {
	if _, err := New(sim.New(), Config{Prog: make([]byte, 100), MemSize: 64}); err == nil {
		t.Error("oversized program accepted")
	}
}

func TestCPUBridgeNoLinkFaults(t *testing.T) {
	prog, err := isa.Assemble(`
		li  r1, 0xFFFF0000
		mov r0, #1
		str r0, [r1, #0x18]   ; GO with no interconnect
		hlt
	`)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.New()
	cpu, err := New(k, Config{Prog: prog.Code})
	if err != nil {
		t.Fatal(err)
	}
	_, err = k.RunUntil(cpu.Halted, 1000)
	if err == nil || !strings.Contains(err.Error(), "no interconnect") {
		t.Errorf("err = %v", err)
	}
}

// The canonical ISS↔wrapper session: allocate, store, load, free, all
// from assembly through the memory-mapped bridge.
const mallocProgram = `
	.equ MMIO,   0xFFFF0000
	.equ OP,     0x00
	.equ SM,     0x04
	.equ VPTR,   0x08
	.equ DATA,   0x0C
	.equ DIM,    0x10
	.equ DTYPE,  0x14
	.equ GO,     0x18
	.equ RESULT, 0x1C

		li   r10, MMIO

		; vptr = alloc(dim=16, type=u32)
		mov  r0, #2          ; OpAlloc
		str  r0, [r10, #OP]
		mov  r0, #0
		str  r0, [r10, #SM]
		mov  r0, #16
		str  r0, [r10, #DIM]
		mov  r0, #2          ; U32
		str  r0, [r10, #DTYPE]
		str  r0, [r10, #GO]
		ldr  r1, [r10, #GO]  ; status
		cmp  r1, #0
		bne  fail
		ldr  r2, [r10, #RESULT] ; vptr

		; write 0xABC to vptr+8 (element 2)
		mov  r0, #1          ; OpWrite
		str  r0, [r10, #OP]
		add  r0, r2, #8
		str  r0, [r10, #VPTR]
		li   r0, 0xABC
		str  r0, [r10, #DATA]
		str  r0, [r10, #GO]
		ldr  r1, [r10, #GO]
		cmp  r1, #0
		bne  fail

		; read it back
		mov  r0, #0          ; OpRead
		str  r0, [r10, #OP]
		add  r0, r2, #8
		str  r0, [r10, #VPTR]
		str  r0, [r10, #GO]
		ldr  r1, [r10, #GO]
		cmp  r1, #0
		bne  fail
		ldr  r3, [r10, #RESULT]

		; free(vptr)
		mov  r0, #3          ; OpFree
		str  r0, [r10, #OP]
		str  r2, [r10, #VPTR]
		str  r0, [r10, #GO]
		ldr  r1, [r10, #GO]
		cmp  r1, #0
		bne  fail

		mov  r0, r3          ; exit code = datum read back
		swi  #0
	fail:	li   r0, 0xDEAD
		swi  #0
`

func TestCPUBridgeMallocSession(t *testing.T) {
	cpu, w := runWithWrapper(t, mallocProgram, core.Config{Delays: core.DefaultDelays()})
	if cpu.ExitCode() != 0xABC {
		t.Fatalf("exit = %#x, want 0xABC", cpu.ExitCode())
	}
	st := w.Stats()
	if st.Ops[bus.OpAlloc] != 1 || st.Ops[bus.OpWrite] != 1 || st.Ops[bus.OpRead] != 1 || st.Ops[bus.OpFree] != 1 {
		t.Errorf("wrapper ops = %v", st.Ops)
	}
	if w.Table().Len() != 0 {
		t.Error("allocation not freed")
	}
	if cpu.StallCycles == 0 {
		t.Error("bridge transactions must stall the CPU")
	}
}

func TestCPUBridgeCapacityStatus(t *testing.T) {
	// Allocation denied by finite capacity reads back as status 2+CAPACITY.
	cpu, _ := runWithWrapper(t, `
		li   r10, 0xFFFF0000
		mov  r0, #2            ; OpAlloc
		str  r0, [r10, #0x00]
		li   r0, 4096
		str  r0, [r10, #0x10]  ; DIM = 4096 bytes
		mov  r0, #0            ; U8
		str  r0, [r10, #0x14]
		str  r0, [r10, #0x18]  ; GO
		ldr  r0, [r10, #0x18]  ; status
		swi  #0
	`, core.Config{TotalSize: 64, Delays: core.DefaultDelays()})
	want := uint32(StatusErrBase + uint32(bus.ErrCapacity))
	if cpu.ExitCode() != want {
		t.Errorf("status = %d, want %d", cpu.ExitCode(), want)
	}
}

func TestCPUBridgeBurstViaIOArray(t *testing.T) {
	// Fill the staging array, burst-write it, burst-read it back, and
	// sum the returned elements.
	cpu, w := runWithWrapper(t, `
		li   r10, 0xFFFF0000
		.equ N, 8

		; staging[i] = i+1
		mov  r1, #0
	fill:	add  r2, r1, #1
		lsl  r3, r1, #2
		add  r3, r3, #0x100
		add  r3, r3, r10     ; &staging[i]... via register add
		str  r2, [r3]
		add  r1, r1, #1
		cmp  r1, #N
		bne  fill

		; vptr = alloc(N, u32)
		mov  r0, #2
		str  r0, [r10, #0x00]
		mov  r0, #N
		str  r0, [r10, #0x10]
		mov  r0, #2
		str  r0, [r10, #0x14]
		str  r0, [r10, #0x18]
		ldr  r1, [r10, #0x18]
		cmp  r1, #0
		bne  fail
		ldr  r4, [r10, #0x1C]  ; vptr

		; write burst staging[0:N] → mem
		mov  r0, #5            ; OpWriteBurst
		str  r0, [r10, #0x00]
		str  r4, [r10, #0x08]
		mov  r0, #N
		str  r0, [r10, #0x10]
		str  r0, [r10, #0x18]
		ldr  r1, [r10, #0x18]
		cmp  r1, #0
		bne  fail

		; clobber staging
		mov  r1, #0
	clob:	lsl  r3, r1, #2
		add  r3, r3, #0x100
		add  r3, r3, r10
		mov  r2, #0
		str  r2, [r3]
		add  r1, r1, #1
		cmp  r1, #N
		bne  clob

		; read burst back
		mov  r0, #4            ; OpReadBurst
		str  r0, [r10, #0x00]
		str  r4, [r10, #0x08]
		mov  r0, #N
		str  r0, [r10, #0x10]
		str  r0, [r10, #0x18]
		ldr  r1, [r10, #0x18]
		cmp  r1, #0
		bne  fail

		; sum staging
		mov  r0, #0
		mov  r1, #0
	sum:	lsl  r3, r1, #2
		add  r3, r3, #0x100
		add  r3, r3, r10
		ldr  r2, [r3]
		add  r0, r0, r2
		add  r1, r1, #1
		cmp  r1, #N
		bne  sum
		swi  #0               ; exit = 36
	fail:	li   r0, 0xDEAD
		swi  #0
	`, core.Config{Delays: core.DefaultDelays()})
	if cpu.ExitCode() != 36 {
		t.Fatalf("exit = %d, want 36", cpu.ExitCode())
	}
	if st := w.Stats(); st.BurstElems != 16 {
		t.Errorf("BurstElems = %d, want 16", st.BurstElems)
	}
}

func TestCPUAnnulledInstructionCostsOneCycle(t *testing.T) {
	cpu := runProgram(t, `
		mov r0, #1
		cmp r0, #2
		beq never     ; annulled
		hlt
	never:	hlt
	`)
	if cpu.Icount != 4 {
		t.Errorf("Icount = %d, want 4 (annulled branch still retires)", cpu.Icount)
	}
}

func TestCPUBridgeRegisterReadback(t *testing.T) {
	cpu := runProgram(t, `
		li  r10, 0xFFFF0000
		mov r0, #7
		str r0, [r10, #0x04]   ; SM
		ldr r1, [r10, #0x04]
		mov r0, #0
		swi #0
	`)
	_ = cpu
	if got := cpu.Reg(1); got != 7 {
		t.Errorf("SM readback = %d, want 7", got)
	}
}

func TestCPUPushPopNestedCalls(t *testing.T) {
	// Recursive factorial through the stack: exercises push/pop pseudo
	// expansions, sp discipline and nested bl/ret.
	cpu := runProgram(t, `
		li   sp, 0x8000
		mov  r0, #5
		bl   fact
		swi  #0          ; exit = 120

	fact:	cmp  r0, #1
		ble  base
		push r0, lr
		sub  r0, r0, #1
		bl   fact
		pop  r1, lr      ; r1 = saved n
		mul  r0, r0, r1
		ret
	base:	mov  r0, #1
		ret
	`)
	if cpu.ExitCode() != 120 {
		t.Errorf("fact(5) = %d, want 120", cpu.ExitCode())
	}
}

// TestCPUSelfModifyingCode is the decode-cache invalidation regression:
// a program overwrites one of its own (already executed, already cached)
// instructions and re-executes it, and must observe the new instruction.
// The cache validates every hit by comparing the cached word against the
// word actually fetched, so a store to code memory invalidates by
// construction — even when the store and the re-execution land in the
// same batch run. All four fast-path combinations must agree with the
// plain interpreter on result, instruction count and cycle count.
func TestCPUSelfModifyingCode(t *testing.T) {
	prog, err := isa.Assemble(`
		li   r5, patch       ; address of the instruction to overwrite
		li   r6, tmpl        ; address of the replacement word
		mov  r3, #0
		mov  r0, #0
	patch:	add  r3, r3, #1      ; second pass: replaced by add r3, r3, #100
		cmp  r0, #0
		bne  done
		ldr  r7, [r6]
		str  r7, [r5]        ; overwrite the patch slot
		mov  r0, #1
		b    patch
	done:	mov  r0, r3
		swi  #0
	tmpl:	add  r3, r3, #100
	`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	var refIcount, refCycles uint64
	for i, cfg := range []Config{
		{}, // plain interpreter reference
		{Batch: true},
		{DecodeCache: true},
		{Batch: true, DecodeCache: true},
	} {
		cfg.Prog = prog.Code
		k := sim.New()
		cpu, err := New(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.RunUntil(cpu.Halted, 1_000_000); err != nil {
			t.Fatalf("cfg %d: did not halt: %v (pc=%#x)", i, err, cpu.PC())
		}
		if got := cpu.ExitCode(); got != 101 {
			t.Errorf("cfg %d (batch=%v dc=%v): exit = %d, want 101 (stale decode executed)",
				i, cfg.Batch, cfg.DecodeCache, got)
		}
		if i == 0 {
			refIcount, refCycles = cpu.Icount, cpu.Cycles
		} else if cpu.Icount != refIcount || cpu.Cycles != refCycles {
			t.Errorf("cfg %d: icount/cycles = %d/%d, want %d/%d",
				i, cpu.Icount, cpu.Cycles, refIcount, refCycles)
		}
	}
}
