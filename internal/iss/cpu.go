package iss

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/bus"
	"repro/internal/isa"
	"repro/internal/sim"
)

// Config parameterizes one CPU.
type Config struct {
	// Name labels the module; also used as the stats row label.
	Name string
	// MemSize is the local memory size in bytes (default 64 KiB). The
	// program image is loaded at address 0.
	MemSize uint32
	// Prog is the memory image produced by isa.Assemble.
	Prog []byte
	// Port is the master port toward the interconnect; nil is legal for
	// pure-compute programs (touching the bridge then faults).
	Port *bus.Port
	// MMIOBase overrides the bridge window base (default MMIOBase).
	MMIOBase uint32
	// Batch enables instruction batching: a running CPU executes a whole
	// run of provably CPU-local instructions inside one Tick and then
	// sleeps through the cycles the run pre-paid (its "lead"), so the
	// kernel crosses far fewer scheduling points per retired
	// instruction. Cycle-exact: any instruction that can touch shared
	// state — a bridge GO store, HLT, SWI exit, anything that would
	// fault — ends the run and executes on the tick of its own cycle,
	// so ports, signals, halts and faults all happen at exactly the
	// cycles of the unbatched engine. Only host code inspecting a CPU
	// *between* cycles can tell the difference: Icount, PC and register
	// state move in run-sized jumps (the same caveat as the kernel's
	// idle-skip machinery, see sim.Sleeper).
	Batch bool
	// DecodeCache memoizes fetch+decode by PC over the program image.
	// Every hit revalidates by comparing the cached word against local
	// memory, so self-modifying code invalidates stale entries by
	// construction.
	DecodeCache bool
}

// batchQuantum aligns batched runs to absolute cycle boundaries: a run
// never crosses a multiple of batchQuantum. Alignment keeps the CPUs of
// a symmetric multi-core configuration bursting on the same stepped
// cycles, so under the sharded kernel their runs execute concurrently
// instead of staggering into serialized singles.
const batchQuantum = 256

// dcEntry is one decode-cache slot: the instruction word it was filled
// from and the decoded form. ok distinguishes "never filled" from a
// cached all-zero word (a valid encoding).
type dcEntry struct {
	word uint32
	ok   bool
	in   isa.Instr
}

type cpuState uint8

const (
	cpuRunning cpuState = iota
	cpuStalled
	cpuHalted
)

// CPU is the armlet instruction-set simulator. One instruction retires
// per cycle; loads and stores hitting the MMIO window talk to the
// shared-memory bridge, and a GO write stalls the CPU until the
// interconnect delivers the response.
type CPU struct {
	name     string
	k        *sim.Kernel
	mem      []byte
	port     *bus.Port
	mmioBase uint32

	regs       [16]uint32
	pc         uint32
	n, z, c, v bool

	state    cpuState
	exitCode uint32

	// batching state: lead is the number of upcoming cycles already
	// executed by a batched run (the CPU sleeps through them: Tick and
	// Skip just consume lead); dc is the decode cache over the program
	// image (nil when disabled).
	batch bool
	lead  uint64
	dcOn  bool
	dc    []dcEntry

	// bridge registers
	brOp, brSM, brVPtr, brData, brDim, brDType uint32
	brStatus, brResult                         uint32
	staging                                    [IOWords]uint32

	console bytes.Buffer

	// Icount is the number of retired instructions; StallCycles counts
	// cycles spent waiting on the interconnect; Cycles counts all ticks
	// while not halted.
	Icount      uint64
	StallCycles uint64
	Cycles      uint64
}

// New creates a CPU, loads the program image, and registers the module
// with the kernel.
func New(k *sim.Kernel, cfg Config) (*CPU, error) {
	if cfg.MemSize == 0 {
		cfg.MemSize = 64 << 10
	}
	if cfg.Name == "" {
		cfg.Name = "cpu"
	}
	if cfg.MMIOBase == 0 {
		cfg.MMIOBase = MMIOBase
	}
	if uint64(len(cfg.Prog)) > uint64(cfg.MemSize) {
		return nil, fmt.Errorf("iss: program (%d bytes) exceeds memory (%d bytes)", len(cfg.Prog), cfg.MemSize)
	}
	c := &CPU{
		name:     cfg.Name,
		k:        k,
		mem:      make([]byte, cfg.MemSize),
		port:     cfg.Port,
		mmioBase: cfg.MMIOBase,
		batch:    cfg.Batch,
		dcOn:     cfg.DecodeCache,
	}
	copy(c.mem, cfg.Prog)
	if cfg.DecodeCache && len(cfg.Prog) >= 4 {
		// Sized to the program image: that is where the PC lives in
		// practice, and execution outside it falls back to plain decode
		// (still correct, just uncached).
		c.dc = make([]dcEntry, len(cfg.Prog)/4)
	}
	k.Add(c)
	return c, nil
}

// Name implements sim.Module.
func (c *CPU) Name() string { return c.name }

// Halted reports whether the CPU has executed HLT or SWI exit.
func (c *CPU) Halted() bool { return c.state == cpuHalted }

// ExitCode returns r0 at the time of SWI exit (0 for HLT).
func (c *CPU) ExitCode() uint32 { return c.exitCode }

// Console returns everything the program printed via SWI services.
func (c *CPU) Console() string { return c.console.String() }

// Reg returns the current value of register i.
func (c *CPU) Reg(i int) uint32 { return c.regs[i] }

// PC returns the current program counter.
func (c *CPU) PC() uint32 { return c.pc }

// fault aborts the simulation: program errors on a model CPU have no
// recovery path and indicate a broken test program.
func (c *CPU) fault(format string, args ...any) {
	c.state = cpuHalted
	c.k.Fault(fmt.Errorf("%s: pc=%#x: %s", c.name, c.pc, fmt.Sprintf(format, args...)))
}

// Tick implements sim.Module.
func (c *CPU) Tick(cycle uint64) {
	switch c.state {
	case cpuHalted:
		return
	case cpuStalled:
		c.Cycles++
		c.StallCycles++
		resp, ok := c.port.Response()
		if !ok {
			return
		}
		c.completeBridge(resp)
		c.state = cpuRunning
	case cpuRunning:
		if c.lead > 0 {
			// This cycle was pre-executed by a batched run (Cycles was
			// counted then); consume the lead.
			c.lead--
			return
		}
		if c.batch {
			c.batchRun(cycle)
			return
		}
		c.Cycles++
		c.step(cycle)
	}
}

// NextWake implements sim.Sleeper. A running CPU retires an instruction
// every cycle and can never sleep — unless a batched run pre-executed
// its next lead cycles, which makes it a pure-wait module until the
// lead is consumed. A halted CPU never runs again; a stalled CPU
// resumes only when the interconnect's completion commits, so WakeNever
// plus the kernel's dirty-signal wakeup is exact.
func (c *CPU) NextWake(now uint64) uint64 {
	switch c.state {
	case cpuHalted, cpuStalled:
		return sim.WakeNever
	default:
		return now + c.lead
	}
}

// ConcurrentTick implements sim.Concurrent: a CPU's Tick is confined to
// its own registers, local memory, console buffer and stats counters,
// plus its master port (whose request ring it exclusively drives); the
// only kernel state it touches is the read-only cycle counter and the
// mutex-guarded fault channel. Safe to tick concurrently.
func (c *CPU) ConcurrentTick() bool { return true }

// TickWeight implements sim.Weighted: an ISS retires an instruction per
// running cycle (fetch, decode, execute), which makes it the most
// expensive module class per tick — the load balancer should spread
// CPUs across shards before anything else.
func (c *CPU) TickWeight() int { return 8 }

// Skip implements sim.Sleeper: skipped stall cycles still count as CPU
// cycles spent waiting on the interconnect; skipped lead cycles were
// counted when the batched run executed them, so they only consume
// lead. A halted CPU counts nothing, exactly as its Tick counts
// nothing.
func (c *CPU) Skip(n uint64) {
	switch c.state {
	case cpuStalled:
		c.Cycles += n
		c.StallCycles += n
	case cpuRunning:
		if n <= c.lead {
			c.lead -= n
		}
	}
}

// decode returns the decoded instruction at pc, consulting the decode
// cache when enabled. ok is false for undefined encodings (the caller
// owns the fault, with its diagnostic re-derived from a plain Decode).
func (c *CPU) decode(pc, word uint32) (in isa.Instr, ok bool) {
	if i := int(pc >> 2); c.dc != nil && i < len(c.dc) {
		e := &c.dc[i]
		if e.ok && e.word == word {
			return e.in, true
		}
		in, err := isa.Decode(word)
		if err != nil {
			e.ok = false
			return in, false
		}
		*e = dcEntry{word: word, ok: true, in: in}
		return in, true
	}
	in, err := isa.Decode(word)
	return in, err == nil
}

// batchRun executes a run of instructions starting at the current
// cycle, as long as each next instruction is provably local (see
// localSafe): such instructions touch only CPU-private state, so
// executing them inside one Tick is indistinguishable — at every module
// and signal boundary — from executing them one tick at a time. The
// first non-local instruction either runs immediately (when it is this
// cycle's instruction) through the plain path, or ends the run and
// executes on the tick of its own cycle after the lead drains. Runs
// never cross a batchQuantum boundary, keeping symmetric CPUs aligned.
func (c *CPU) batchRun(cycle uint64) {
	j := uint64(0)
	for {
		in, safe := c.peekLocal()
		if !safe {
			if j == 0 {
				c.Cycles++
				c.step(cycle)
				return
			}
			break
		}
		c.exec(in, cycle+j)
		j++
		if (cycle+j)%batchQuantum == 0 {
			break
		}
	}
	c.Cycles += j
	c.lead = j - 1
}

// peekLocal fetches and decodes the next instruction without executing
// it and reports whether it is provably local: its execution cannot
// touch anything outside the CPU (no port traffic, no halt, no fault,
// no kernel interaction). The check mirrors the fault and shared-state
// conditions of exec exactly; anything it cannot prove local is
// reported unsafe and re-executes through the plain per-cycle path.
func (c *CPU) peekLocal() (isa.Instr, bool) {
	if c.pc%4 != 0 || uint64(c.pc)+4 > uint64(len(c.mem)) {
		return isa.Instr{}, false // would fault on fetch
	}
	word := binary.LittleEndian.Uint32(c.mem[c.pc:])
	in, ok := c.decode(c.pc, word)
	if !ok {
		return in, false // would fault on decode
	}
	if !in.Cond.Holds(c.n, c.z, c.c, c.v) {
		return in, true // retires as a no-op regardless of class
	}
	switch in.Class {
	case isa.ClassMem:
		addr := c.regs[in.Rn] + uint32(in.Off)
		if addr >= c.mmioBase && addr < c.mmioBase+MMIOSize {
			if in.Mem.Width() != 4 || addr%4 != 0 {
				return in, false // would fault: bridge access must be word ldr/str
			}
			off := addr - c.mmioBase
			if off >= IOArray {
				return in, true // staging array: CPU-private
			}
			if in.Mem.IsLoad() {
				return in, off <= RegCycles // defined registers are private reads
			}
			// Stores: GO issues a transaction; anything past RegDType
			// is undefined and would fault.
			return in, off <= RegDType
		}
		return in, uint64(addr)+uint64(in.Mem.Width()) <= uint64(len(c.mem))
	case isa.ClassSWI:
		switch in.Imm {
		case isa.SWIPutc, isa.SWIPutInt, isa.SWICycles:
			return in, true // console buffer and the tick's own cycle: private
		default:
			return in, false // exit, or undefined service (would fault)
		}
	case isa.ClassSys:
		return in, in.Sys == isa.NOP // HLT ends the run
	default:
		// Data processing, branches, multiplies, movw/movt: registers
		// and flags only.
		return in, true
	}
}

// step fetches, decodes and executes one instruction.
func (c *CPU) step(cycle uint64) {
	if c.pc%4 != 0 || uint64(c.pc)+4 > uint64(len(c.mem)) {
		c.fault("instruction fetch out of bounds")
		return
	}
	word := binary.LittleEndian.Uint32(c.mem[c.pc:])
	in, ok := c.decode(c.pc, word)
	if !ok {
		_, err := isa.Decode(word)
		c.fault("undefined instruction %#08x: %v", word, err)
		return
	}
	c.exec(in, cycle)
}

// exec executes one decoded instruction.
func (c *CPU) exec(in isa.Instr, cycle uint64) {
	c.Icount++
	if !in.Cond.Holds(c.n, c.z, c.c, c.v) {
		c.pc += 4
		return
	}
	next := c.pc + 4
	switch in.Class {
	case isa.ClassDPReg, isa.ClassDPImm:
		op2 := in.Imm
		if in.Class == isa.ClassDPReg {
			op2 = c.regs[in.Rm]
		}
		c.dataProcessing(in.DP, in.Rd, c.regs[in.Rn], op2)

	case isa.ClassMem:
		addr := c.regs[in.Rn] + uint32(in.Off)
		if !c.memAccess(in, addr, cycle) {
			return // fault or stall; pc already handled
		}

	case isa.ClassBranch:
		switch in.Br {
		case isa.BX:
			next = c.regs[in.Rm]
		case isa.BL:
			c.regs[isa.RegLR] = c.pc + 4
			next = uint32(int64(c.pc) + 4 + int64(in.Off)*4)
		default:
			next = uint32(int64(c.pc) + 4 + int64(in.Off)*4)
		}

	case isa.ClassMul:
		if in.Mul == isa.MLA {
			c.regs[in.Rd] = c.regs[in.Rn]*c.regs[in.Rm] + c.regs[in.Ra]
		} else {
			c.regs[in.Rd] = c.regs[in.Rn] * c.regs[in.Rm]
		}

	case isa.ClassSWI:
		if !c.swi(in.Imm, cycle) {
			return // halted
		}

	case isa.ClassMovW:
		if in.High {
			c.regs[in.Rd] = c.regs[in.Rd]&0xFFFF | in.Imm<<16
		} else {
			c.regs[in.Rd] = c.regs[in.Rd]&0xFFFF0000 | in.Imm
		}

	case isa.ClassSys:
		if in.Sys == isa.HLT {
			c.state = cpuHalted
			return
		}
	}
	if c.state == cpuRunning {
		c.pc = next
	}
}

// dataProcessing executes a DP operation with resolved operands.
func (c *CPU) dataProcessing(op isa.DPOp, rd uint8, rn, op2 uint32) {
	switch op {
	case isa.MOV:
		c.regs[rd] = op2
	case isa.MVN:
		c.regs[rd] = ^op2
	case isa.ADD:
		c.regs[rd] = rn + op2
	case isa.SUB:
		c.regs[rd] = rn - op2
	case isa.RSB:
		c.regs[rd] = op2 - rn
	case isa.AND:
		c.regs[rd] = rn & op2
	case isa.ORR:
		c.regs[rd] = rn | op2
	case isa.EOR:
		c.regs[rd] = rn ^ op2
	case isa.BIC:
		c.regs[rd] = rn &^ op2
	case isa.LSL:
		c.regs[rd] = rn << (op2 & 31)
	case isa.LSR:
		c.regs[rd] = rn >> (op2 & 31)
	case isa.ASR:
		c.regs[rd] = uint32(int32(rn) >> (op2 & 31))
	case isa.CMP:
		res := rn - op2
		c.n, c.z = res>>31 == 1, res == 0
		c.c = rn >= op2
		c.v = (rn^op2)&(rn^res)>>31 == 1
	case isa.CMN:
		res := rn + op2
		c.n, c.z = res>>31 == 1, res == 0
		c.c = res < rn
		c.v = (^(rn ^ op2))&(rn^res)>>31 == 1
	case isa.TST:
		res := rn & op2
		c.n, c.z = res>>31 == 1, res == 0
	}
}

// memAccess performs a load or store, routing MMIO-window addresses to
// the bridge. It returns false when the CPU faulted or stalled (in which
// case pc has been left pointing at the *next* instruction for stalls).
func (c *CPU) memAccess(in isa.Instr, addr uint32, cycle uint64) bool {
	if addr >= c.mmioBase && addr < c.mmioBase+MMIOSize {
		return c.bridgeAccess(in, addr-c.mmioBase, cycle)
	}
	w := in.Mem.Width()
	if uint64(addr)+uint64(w) > uint64(len(c.mem)) {
		c.fault("%s at %#x out of bounds", in.Mem, addr)
		return false
	}
	if in.Mem.IsLoad() {
		switch w {
		case 1:
			c.regs[in.Rd] = uint32(c.mem[addr])
		case 2:
			c.regs[in.Rd] = uint32(binary.LittleEndian.Uint16(c.mem[addr:]))
		default:
			c.regs[in.Rd] = binary.LittleEndian.Uint32(c.mem[addr:])
		}
	} else {
		v := c.regs[in.Rd]
		switch w {
		case 1:
			c.mem[addr] = byte(v)
		case 2:
			binary.LittleEndian.PutUint16(c.mem[addr:], uint16(v))
		default:
			binary.LittleEndian.PutUint32(c.mem[addr:], v)
		}
	}
	return true
}

// bridgeAccess handles a load/store at the given offset inside the MMIO
// window. cycle is the cycle the instruction executes at — under a
// batched run that may be ahead of the kernel's clock, which is why
// RegCycles reads it rather than the kernel.
func (c *CPU) bridgeAccess(in isa.Instr, off uint32, cycle uint64) bool {
	if in.Mem.Width() != 4 || off%4 != 0 {
		c.fault("bridge access must be word-aligned ldr/str (off=%#x)", off)
		return false
	}
	if off >= IOArray {
		idx := (off - IOArray) / 4
		if in.Mem.IsLoad() {
			c.regs[in.Rd] = c.staging[idx]
		} else {
			c.staging[idx] = c.regs[in.Rd]
		}
		return true
	}
	if in.Mem.IsLoad() {
		switch off {
		case RegOp:
			c.regs[in.Rd] = c.brOp
		case RegSM:
			c.regs[in.Rd] = c.brSM
		case RegVPtr:
			c.regs[in.Rd] = c.brVPtr
		case RegData:
			c.regs[in.Rd] = c.brData
		case RegDim:
			c.regs[in.Rd] = c.brDim
		case RegDType:
			c.regs[in.Rd] = c.brDType
		case RegGo:
			c.regs[in.Rd] = c.brStatus
		case RegResult:
			c.regs[in.Rd] = c.brResult
		case RegCycles:
			c.regs[in.Rd] = uint32(cycle)
		default:
			c.fault("read of undefined bridge register %#x", off)
			return false
		}
		return true
	}
	v := c.regs[in.Rd]
	switch off {
	case RegOp:
		c.brOp = v
	case RegSM:
		c.brSM = v
	case RegVPtr:
		c.brVPtr = v
	case RegData:
		c.brData = v
	case RegDim:
		c.brDim = v
	case RegDType:
		c.brDType = v
	case RegGo:
		return c.issueBridge()
	default:
		c.fault("write to undefined bridge register %#x", off)
		return false
	}
	return true
}

// issueBridge launches the transaction described by the bridge registers
// and stalls the CPU. pc advances first so execution resumes after the
// GO store.
func (c *CPU) issueBridge() bool {
	if c.port == nil {
		c.fault("bridge GO with no interconnect attached")
		return false
	}
	op := bus.Op(c.brOp)
	if int(c.brOp) >= bus.NumOps {
		c.brStatus = StatusErrBase + uint32(bus.ErrBadOp)
		return true // completes immediately, no stall
	}
	req := bus.Request{
		Op:    op,
		SM:    int(c.brSM),
		VPtr:  c.brVPtr,
		Data:  c.brData,
		Dim:   c.brDim,
		DType: bus.DataType(c.brDType),
	}
	switch op {
	case bus.OpWriteBurst:
		if c.brDim > IOWords {
			c.brStatus = StatusErrBase + uint32(bus.ErrBounds)
			return true
		}
		req.Burst = append([]uint32(nil), c.staging[:c.brDim]...)
	case bus.OpReadBurst:
		if c.brDim > IOWords {
			c.brStatus = StatusErrBase + uint32(bus.ErrBounds)
			return true
		}
	}
	c.port.Issue(req)
	c.pc += 4 // resume after the GO store once unstalled
	c.state = cpuStalled
	return false
}

// completeBridge records a transaction completion into the bridge
// registers and staging array.
func (c *CPU) completeBridge(resp bus.Response) {
	if resp.Err != bus.OK {
		c.brStatus = StatusErrBase + uint32(resp.Err)
		c.brResult = 0
		return
	}
	c.brStatus = StatusOK
	switch bus.Op(c.brOp) {
	case bus.OpAlloc:
		c.brResult = resp.VPtr
	case bus.OpRead:
		c.brResult = resp.Data
	case bus.OpReadBurst:
		copy(c.staging[:], resp.Burst)
		c.brResult = uint32(len(resp.Burst))
	default:
		c.brResult = 0
	}
}

// swi dispatches a software-interrupt service. It returns false when the
// CPU halted.
func (c *CPU) swi(num uint32, cycle uint64) bool {
	switch num {
	case isa.SWIExit:
		c.exitCode = c.regs[0]
		c.state = cpuHalted
		return false
	case isa.SWIPutc:
		c.console.WriteByte(byte(c.regs[0]))
	case isa.SWIPutInt:
		fmt.Fprintf(&c.console, "%d\n", c.regs[0])
	case isa.SWICycles:
		c.regs[0] = uint32(cycle)
	default:
		c.fault("undefined SWI service %d", num)
		return false
	}
	return true
}
