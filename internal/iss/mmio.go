package iss

// MMIO register offsets within the shared-memory bridge window. All
// bridge registers are 32-bit and must be accessed with word loads and
// stores (ldr/str).
const (
	// MMIOBase is the default base address of the bridge window.
	MMIOBase = 0xFFFF0000

	// RegOp selects the operation (a bus.Op value).
	RegOp = 0x00
	// RegSM selects the target shared-memory module (sm_addr).
	RegSM = 0x04
	// RegVPtr is the virtual-pointer operand.
	RegVPtr = 0x08
	// RegData is the scalar datum for writes.
	RegData = 0x0C
	// RegDim is the element count for allocations and bursts.
	RegDim = 0x10
	// RegDType is the element type for allocations (a bus.DataType).
	RegDType = 0x14
	// RegGo issues the transaction when written; reading it back yields
	// the completion status: StatusOK, or StatusErrBase+ErrCode.
	RegGo = 0x18
	// RegResult holds the transaction result: the new virtual pointer
	// after an allocation, the datum after a read, the element count
	// after a burst read.
	RegResult = 0x1C
	// RegCycles reads the low 32 bits of the global cycle counter.
	RegCycles = 0x20

	// IOArray is the offset of the staging I/O array used by burst
	// operations: burst writes take their payload from it, burst reads
	// deposit their data into it, one 32-bit element per word.
	IOArray = 0x100
	// IOWords is the capacity of the I/O array in 32-bit elements.
	IOWords = 256

	// MMIOSize is the size of the bridge window in bytes.
	MMIOSize = IOArray + 4*IOWords
)

// Status values read back from RegGo.
const (
	// StatusOK means the last transaction completed successfully.
	StatusOK = 0
	// StatusErrBase plus the bus.ErrCode encodes a failed transaction;
	// e.g. capacity exhaustion reads back as StatusErrBase+ErrCapacity.
	StatusErrBase = 2
)
