package iss

import (
	"fmt"

	"repro/internal/snapshot"
)

// SaveState implements snapshot.Saver: the full architectural state
// (registers, flags, PC, run state), the batch lead, the bridge
// registers and staging buffer, the console output, the counters, and
// the entire memory image — program included, so a snapshot restores
// without re-assembling the workload.
//
// The decode cache is deliberately NOT saved: it is host-only
// memoization, revalidated per fetch against the instruction word
// (self-modifying code already relies on that), so an empty cache is
// behavior- and timing-identical. Only its capacity travels, letting
// restore re-create an equally effective cache.
func (c *CPU) SaveState(enc *snapshot.Encoder) {
	for _, r := range c.regs {
		enc.U32(r)
	}
	enc.U32(c.pc)
	enc.Bool(c.n)
	enc.Bool(c.z)
	enc.Bool(c.c)
	enc.Bool(c.v)
	enc.U8(uint8(c.state))
	enc.U32(c.exitCode)
	enc.U64(c.lead)
	enc.Int(len(c.dc))
	enc.U32(c.brOp)
	enc.U32(c.brSM)
	enc.U32(c.brVPtr)
	enc.U32(c.brData)
	enc.U32(c.brDim)
	enc.U32(c.brDType)
	enc.U32(c.brStatus)
	enc.U32(c.brResult)
	for _, w := range c.staging {
		enc.U32(w)
	}
	enc.Bytes32(c.console.Bytes())
	enc.U64(c.Icount)
	enc.U64(c.StallCycles)
	enc.U64(c.Cycles)
	enc.U32(c.mmioBase)
	enc.Bytes32(c.mem)
}

// RestoreState implements snapshot.Restorer. The CPU must have been
// rebuilt with the same memory size and MMIO base; the program image
// arrives inside the memory bytes, so the rebuild may use an empty
// program.
func (c *CPU) RestoreState(dec *snapshot.Decoder) error {
	for i := range c.regs {
		c.regs[i] = dec.U32()
	}
	c.pc = dec.U32()
	c.n = dec.Bool()
	c.z = dec.Bool()
	c.c = dec.Bool()
	c.v = dec.Bool()
	c.state = cpuState(dec.U8())
	c.exitCode = dec.U32()
	c.lead = dec.U64()
	dcLen := dec.Int()
	c.brOp = dec.U32()
	c.brSM = dec.U32()
	c.brVPtr = dec.U32()
	c.brData = dec.U32()
	c.brDim = dec.U32()
	c.brDType = dec.U32()
	c.brStatus = dec.U32()
	c.brResult = dec.U32()
	for i := range c.staging {
		c.staging[i] = dec.U32()
	}
	console := dec.Bytes32()
	c.Icount = dec.U64()
	c.StallCycles = dec.U64()
	c.Cycles = dec.U64()
	mmioBase := dec.U32()
	img := dec.Bytes32()
	if err := dec.Err(); err != nil {
		return err
	}
	if mmioBase != c.mmioBase {
		return fmt.Errorf("cpu %s: MMIO base mismatch: snapshot has %#x, system has %#x", c.name, mmioBase, c.mmioBase)
	}
	if len(img) != len(c.mem) {
		return fmt.Errorf("cpu %s: memory size mismatch: snapshot has %d bytes, system built with %d", c.name, len(img), len(c.mem))
	}
	c.console.Reset()
	c.console.Write(console)
	copy(c.mem, img)
	// Re-create (empty) decode-cache capacity when this build enables
	// it. The rebuild may have used an empty program (New then leaves dc
	// nil), so the capacity comes from the snapshot, not from len(dc).
	if c.dcOn && dcLen > 0 {
		c.dc = make([]dcEntry, dcLen)
	} else {
		c.dc = nil
	}
	return dec.Finish()
}
