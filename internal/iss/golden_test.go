package iss

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
)

// goldenCPU is an independent, deliberately simple interpreter for the
// data-processing subset, used to differentially test the ISS: both
// implementations execute the same random programs and must agree on
// every register.
type goldenCPU struct {
	regs       [16]uint32
	n, z, c, v bool
}

func (g *goldenCPU) exec(in isa.Instr) {
	if !in.Cond.Holds(g.n, g.z, g.c, g.v) {
		return
	}
	switch in.Class {
	case isa.ClassDPReg, isa.ClassDPImm:
		op2 := in.Imm
		if in.Class == isa.ClassDPReg {
			op2 = g.regs[in.Rm]
		}
		rn := g.regs[in.Rn]
		switch in.DP {
		case isa.MOV:
			g.regs[in.Rd] = op2
		case isa.MVN:
			g.regs[in.Rd] = ^op2
		case isa.ADD:
			g.regs[in.Rd] = rn + op2
		case isa.SUB:
			g.regs[in.Rd] = rn - op2
		case isa.RSB:
			g.regs[in.Rd] = op2 - rn
		case isa.AND:
			g.regs[in.Rd] = rn & op2
		case isa.ORR:
			g.regs[in.Rd] = rn | op2
		case isa.EOR:
			g.regs[in.Rd] = rn ^ op2
		case isa.BIC:
			g.regs[in.Rd] = rn &^ op2
		case isa.LSL:
			g.regs[in.Rd] = rn << (op2 & 31)
		case isa.LSR:
			g.regs[in.Rd] = rn >> (op2 & 31)
		case isa.ASR:
			g.regs[in.Rd] = uint32(int32(rn) >> (op2 & 31))
		case isa.CMP:
			res := rn - op2
			g.n, g.z = res>>31 == 1, res == 0
			g.c = rn >= op2
			g.v = (rn^op2)&(rn^res)>>31 == 1
		case isa.CMN:
			res := rn + op2
			g.n, g.z = res>>31 == 1, res == 0
			g.c = res < rn
			g.v = (^(rn ^ op2))&(rn^res)>>31 == 1
		case isa.TST:
			res := rn & op2
			g.n, g.z = res>>31 == 1, res == 0
		}
	case isa.ClassMul:
		if in.Mul == isa.MLA {
			g.regs[in.Rd] = g.regs[in.Rn]*g.regs[in.Rm] + g.regs[in.Ra]
		} else {
			g.regs[in.Rd] = g.regs[in.Rn] * g.regs[in.Rm]
		}
	case isa.ClassMovW:
		if in.High {
			g.regs[in.Rd] = g.regs[in.Rd]&0xFFFF | in.Imm<<16
		} else {
			g.regs[in.Rd] = g.regs[in.Rd]&0xFFFF0000 | in.Imm
		}
	}
}

// randomDPInstr draws one legal straight-line instruction (no branches,
// loads or system ops — control flow is tested separately).
func randomDPInstr(rng *rand.Rand) isa.Instr {
	in := isa.Instr{Cond: isa.Cond(rng.Intn(13))}
	switch rng.Intn(4) {
	case 0:
		in.Class = isa.ClassDPReg
		in.DP = isa.DPOp(rng.Intn(15))
		in.Rd = uint8(rng.Intn(16))
		in.Rn = uint8(rng.Intn(16))
		in.Rm = uint8(rng.Intn(16))
	case 1:
		in.Class = isa.ClassDPImm
		in.DP = isa.DPOp(rng.Intn(15))
		in.Rd = uint8(rng.Intn(16))
		in.Rn = uint8(rng.Intn(16))
		in.Imm = uint32(rng.Intn(4096))
	case 2:
		in.Class = isa.ClassMul
		in.Mul = isa.MulOp(rng.Intn(2))
		in.Rd = uint8(rng.Intn(16))
		in.Rn = uint8(rng.Intn(16))
		in.Rm = uint8(rng.Intn(16))
		in.Ra = uint8(rng.Intn(16))
	default:
		in.Class = isa.ClassMovW
		in.Rd = uint8(rng.Intn(16))
		in.Imm = uint32(rng.Intn(1 << 16))
		in.High = rng.Intn(2) == 1
	}
	return in
}

func TestISSMatchesGoldenModelOnRandomPrograms(t *testing.T) {
	const (
		programs = 60
		length   = 80
	)
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		instrs := make([]isa.Instr, length)
		words := make([]byte, 0, 4*(length+1))
		for i := range instrs {
			instrs[i] = randomDPInstr(rng)
			w, err := isa.Encode(instrs[i])
			if err != nil {
				t.Fatalf("seed %d: encode: %v", seed, err)
			}
			words = append(words, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
		}
		hltWord, _ := isa.Encode(isa.Instr{Class: isa.ClassSys, Sys: isa.HLT})
		words = append(words, byte(hltWord), byte(hltWord>>8), byte(hltWord>>16), byte(hltWord>>24))

		k := sim.New()
		cpu, err := New(k, Config{Prog: words})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.RunUntil(cpu.Halted, 10*length); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		var g goldenCPU
		for _, in := range instrs {
			g.exec(in)
		}
		for r := 0; r < 16; r++ {
			if cpu.Reg(r) != g.regs[r] {
				t.Fatalf("seed %d: r%d = %#x, golden %#x\nlast instr: %+v",
					seed, r, cpu.Reg(r), g.regs[r], instrs[length-1])
			}
		}
	}
}
