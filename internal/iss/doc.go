// Package iss implements the instruction-set simulator: a cycle-true CPU
// model executing armlet programs (see internal/isa) with a memory-mapped
// bridge to the shared-memory interconnect.
//
// The original framework integrates SimIT-ARM simulators with the
// simulation kernel; software running on each ISS reaches the dynamic
// shared memories through high-level APIs that the wrapper turns into
// handshake transactions. This package reproduces that integration:
//
//   - CPU is a sim.Module retiring one instruction per cycle out of a
//     private local memory (code + data, von Neumann, little-endian).
//   - Loads and stores inside the MMIO window (default 0xFFFF0000) access
//     the shared-memory bridge registers instead: the program fills in
//     operation, sm_addr and operands, then writes the GO register, which
//     issues the bus transaction and stalls the CPU until the wrapper's
//     response returns — exactly the blocking ISS↔wrapper coupling the
//     paper describes ("operations ... are implemented as communications
//     between the ISS and the shared memory's wrapper").
//   - Indexed (burst) transfers stage data in the bridge's I/O array,
//     reproducing the paper's "I/O registers are substituted by I/O
//     arrays" mechanism from the software side.
//   - SWI services provide exit, console output and cycle readback; the
//     assembly-level API in internal/smapi/smasm.go wraps the bridge in
//     call-and-return routines with a C-like signature convention.
package iss
