package service

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
)

// SweepSpec is the POST /v1/jobs request body: a named sweep of
// simulation legs with optional shared warm-up and verification.
type SweepSpec struct {
	// Name labels the job in listings and logs.
	Name string `json:"name,omitempty"`
	// Legs are the sweep's simulation legs; each runs independently on
	// the worker pool.
	Legs []experiments.LegSpec `json:"legs"`
	// WarmupCycles, when non-zero, warm-boots every leg: the first
	// warmup_cycles cycles of each leg's cold run are simulated once per
	// warm-boot compatibility class (or loaded from the snapshot store),
	// snapshotted, and every leg resumes from its class snapshot.
	WarmupCycles uint64 `json:"warmup_cycles,omitempty"`
	// VerifyCold additionally runs each warm-booted leg cold and
	// asserts the two results are bit-identical (cycles, instructions,
	// module stats). A divergence fails the leg — determinism is a
	// checked invariant, not an assumption.
	VerifyCold bool `json:"verify_cold,omitempty"`
	// TimeoutSec bounds the whole job; 0 uses the server default.
	TimeoutSec int `json:"timeout_sec,omitempty"`
}

// maxLegs bounds one submission; sweeps beyond this should be split
// into multiple jobs.
const maxLegs = 64

// Validate rejects malformed sweeps with field-level errors, dry-building
// each leg's system config so unbuildable combinations (an L2 over
// wrapper memories, say) fail the POST with a 400 instead of failing
// the job later.
func (s SweepSpec) Validate() error {
	if len(s.Legs) == 0 {
		return fmt.Errorf("sweep has no legs")
	}
	if len(s.Legs) > maxLegs {
		return fmt.Errorf("sweep has %d legs, max %d per job", len(s.Legs), maxLegs)
	}
	if s.TimeoutSec < 0 {
		return fmt.Errorf("timeout_sec %d is negative", s.TimeoutSec)
	}
	for i, leg := range s.Legs {
		if err := leg.Validate(); err != nil {
			return fmt.Errorf("legs[%d]: %w", i, err)
		}
		cfg, err := leg.Config()
		if err != nil {
			return fmt.Errorf("legs[%d]: %w", i, err)
		}
		if _, err := config.Build(cfg); err != nil {
			return fmt.Errorf("legs[%d]: %w", i, err)
		}
		if s.VerifyCold && leg.VCD {
			return fmt.Errorf("legs[%d]: vcd and verify_cold are mutually exclusive", i)
		}
	}
	if s.VerifyCold && s.WarmupCycles == 0 {
		return fmt.Errorf("verify_cold requires warmup_cycles (it compares warm against cold)")
	}
	return nil
}

// Job lifecycle states. queued → running → done | failed | canceled;
// the three right-hand states are terminal.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Leg result sources.
const (
	SourceStore     = "store"     // served from the result store, zero cycles simulated
	SourceSimulated = "simulated" // simulated cold, from cycle 0
	SourceWarmBoot  = "warm-boot" // simulated from a stored warm-up snapshot
)

// LegStatus is one leg's slot in a job view.
type LegStatus struct {
	experiments.LegResult
	// State is queued/running/done/failed/canceled (legs reuse the job
	// state names).
	State string `json:"state"`
	// Source tells where a done leg's result came from.
	Source string `json:"source,omitempty"`
	// Verified is set when verify_cold compared this warm leg against
	// its cold reference and they matched bit for bit.
	Verified bool   `json:"verified,omitempty"`
	Error    string `json:"error,omitempty"`
}

// Job is one submitted sweep and its progress. All mutable fields are
// guarded by mu; the HTTP layer reads through View.
type Job struct {
	ID   string
	Spec SweepSpec

	mu       sync.Mutex
	state    string
	err      string
	legs     []LegStatus
	created  time.Time
	started  time.Time
	finished time.Time

	// cancel tears down the job's context; ctx.Err() distinguishes a
	// DELETE (Cause = errCanceled) from a timeout.
	cancel context.CancelCauseFunc

	log *slog.Logger
}

// errCanceled marks user-requested cancellation (DELETE /v1/jobs/{id})
// as the job context's cancel cause.
var errCanceled = fmt.Errorf("job canceled by request")

func (j *Job) setState(s string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed || j.state == StateCanceled {
		return
	}
	j.state = state
	j.err = errMsg
	j.finished = time.Now()
}

// State returns the job's current lifecycle state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setLeg publishes leg i's status.
func (j *Job) setLeg(i int, ls LegStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.legs[i] = ls
}

// legSnapshot returns a copy of leg i's status.
func (j *Job) legSnapshot(i int) LegStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.legs[i]
}

// JobView is the GET /v1/jobs/{id} response body.
type JobView struct {
	ID       string      `json:"id"`
	Name     string      `json:"name,omitempty"`
	State    string      `json:"state"`
	Error    string      `json:"error,omitempty"`
	Created  time.Time   `json:"created"`
	Started  *time.Time  `json:"started,omitempty"`
	Finished *time.Time  `json:"finished,omitempty"`
	Legs     []LegStatus `json:"legs"`
}

// View snapshots the job for the HTTP layer.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.ID, Name: j.Spec.Name, State: j.state, Error: j.err,
		Created: j.created, Legs: append([]LegStatus(nil), j.legs...),
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
