package service

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// Pool is a bounded worker pool: a fixed number of goroutines draining
// a bounded task queue. Simulation legs run here so that an arbitrary
// number of concurrent jobs contends for a fixed amount of CPU, and the
// queue bound turns overload into backpressure at submission time
// rather than unbounded goroutine growth.
//
// Workers isolate panics: a panicking task reports a descriptive error
// (with its stack) to its waiter and the worker keeps serving. A
// crashing leg can fail its job; it can never take the server down.
type Pool struct {
	tasks chan poolTask
	wg    sync.WaitGroup

	closeOnce sync.Once
}

type poolTask struct {
	ctx  context.Context
	fn   func(context.Context) error
	done chan<- error
}

// NewPool starts workers goroutines over a queue of depth queue.
// workers and queue are clamped to at least 1.
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queue < 1 {
		queue = 1
	}
	p := &Pool{tasks: make(chan poolTask, queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Go submits fn and returns a 1-buffered channel that receives its
// outcome exactly once. If the task's context is canceled before a
// worker picks it up, the task is skipped and the channel receives the
// context error; if the pool is closed (or its queue never drains and
// ctx fires first), likewise. fn always receives the submitting ctx.
func (p *Pool) Go(ctx context.Context, fn func(context.Context) error) <-chan error {
	done := make(chan error, 1)
	t := poolTask{ctx: ctx, fn: fn, done: done}
	select {
	case p.tasks <- t:
	case <-ctx.Done():
		done <- ctx.Err()
	}
	return done
}

// QueueDepth is the number of submitted tasks no worker has picked up
// yet (operational metric).
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// Close stops the workers after the queued tasks drain and waits for
// them to exit. Go must not be called after (or concurrently with)
// Close.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.tasks) })
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		if err := t.ctx.Err(); err != nil {
			t.done <- err
			continue
		}
		t.done <- p.run(t)
	}
}

// run executes one task, converting a panic into an error.
func (p *Pool) run(t poolTask) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("leg panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return t.fn(t.ctx)
}
