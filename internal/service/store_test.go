package service

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

func testResult() experiments.LegResult {
	return experiments.LegResult{
		Name: "leg", Cycles: 12345, Instructions: 678,
		Stats: map[string]uint64{"inter.transactions": 42},
	}
}

func TestStoreResultRoundTrip(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "00deadbeef"
	if _, ok := s.GetResult(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.PutResult(key, testResult()); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetResult(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if !got.Identical(testResult()) {
		t.Fatalf("round trip changed the result: %+v", got)
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", s.Hits(), s.Misses())
	}
}

// TestStoreCorruptionIsAMiss is the poisoning defense: a truncated or
// bit-flipped result file must read as a cache miss (forcing a re-run)
// and be deleted — never served as a result.
func TestStoreCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "11cafe"
	if err := s.PutResult(key, testResult()); err != nil {
		t.Fatal(err)
	}
	path := s.resultPath(key)

	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, data []byte) []byte
	}{
		{"truncated", func(t *testing.T, data []byte) []byte {
			return data[:len(data)/2]
		}},
		{"not json", func(t *testing.T, data []byte) []byte {
			return []byte("not a result at all")
		}},
		{"bit flip under intact frame", func(t *testing.T, data []byte) []byte {
			// Flip a payload digit: still valid JSON, but the CRC no
			// longer matches — the case plain parsing cannot catch.
			for i := range data {
				if data[i] == '1' {
					data[i] = '7'
					return data
				}
			}
			t.Fatal("no digit to flip")
			return nil
		}},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			if err := s.PutResult(key, testResult()); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.corrupt(t, data), 0o644); err != nil {
				t.Fatal(err)
			}
			if res, ok := s.GetResult(key); ok {
				t.Fatalf("corrupt file served as a result: %+v", res)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt file not deleted")
			}
			// A re-run repopulates and the key serves again.
			if err := s.PutResult(key, testResult()); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.GetResult(key); !ok {
				t.Fatal("store poisoned: put after corruption does not serve")
			}
		})
	}
}

func TestStoreSnapshotCorruptionIsAMiss(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot files are validated by the snapshot package's own magic
	// and checksums; arbitrary bytes must not come back.
	if err := s.PutSnapshot("aa00", []byte("garbage, not a snapshot")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetSnapshot("aa00"); ok {
		t.Fatal("garbage snapshot served")
	}
	if _, err := os.Stat(s.snapPath("aa00")); !os.IsNotExist(err) {
		t.Error("corrupt snapshot not deleted")
	}
}

func TestStoreArtifacts(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutArtifact("j1", "result.json", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutArtifact("j1", "leg0.vcd", []byte("$date")); err != nil {
		t.Fatal(err)
	}
	names := s.ListArtifacts("j1")
	if len(names) != 2 {
		t.Fatalf("ListArtifacts = %v, want 2 names", names)
	}
	data, err := s.GetArtifact("j1", "leg0.vcd")
	if err != nil || string(data) != "$date" {
		t.Fatalf("GetArtifact = %q, %v", data, err)
	}
	if got := s.ListArtifacts("nope"); len(got) != 0 {
		t.Errorf("artifacts for unknown job: %v", got)
	}
}

func TestStoreWritesAreAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult("22aa", testResult()); err != nil {
		t.Fatal(err)
	}
	// No temp droppings left behind.
	var leftovers []string
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Base(path)[0] == '.' {
			leftovers = append(leftovers, path)
		}
		return nil
	})
	if len(leftovers) > 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}
