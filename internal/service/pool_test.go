package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(2, 4)
	defer p.Close()
	var n atomic.Int32
	var chans []<-chan error
	for i := 0; i < 10; i++ {
		chans = append(chans, p.Go(context.Background(), func(context.Context) error {
			n.Add(1)
			return nil
		}))
	}
	for _, c := range chans {
		if err := <-c; err != nil {
			t.Fatal(err)
		}
	}
	if n.Load() != 10 {
		t.Fatalf("ran %d tasks, want 10", n.Load())
	}
}

func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	err := <-p.Go(context.Background(), func(context.Context) error {
		panic("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("panic error carries no stack: %v", err)
	}
	// The single worker survived the panic and keeps serving.
	if err := <-p.Go(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatalf("worker dead after panic: %v", err)
	}
}

func TestPoolSkipsCanceledTasks(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := <-p.Go(ctx, func(context.Context) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("canceled task still ran")
	}
}

// TestPoolConcurrentSubmitCancel hammers the pool with concurrent
// submitters, half of which cancel mid-flight — the worker-pool shape
// the race detector must bless (the CI race job runs the whole suite
// under -race).
func TestPoolConcurrentSubmitCancel(t *testing.T) {
	p := NewPool(4, 4)
	defer p.Close()
	var wg sync.WaitGroup
	var done atomic.Int32
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if i%3 == 0 {
				cancel() // canceled before (or racing) pickup
			}
			err := <-p.Go(ctx, func(ctx context.Context) error {
				if i%7 == 0 {
					panic(fmt.Sprintf("task %d panic", i))
				}
				done.Add(1)
				return ctx.Err()
			})
			if i%3 != 0 && i%7 != 0 && err != nil {
				t.Errorf("task %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if done.Load() == 0 {
		t.Error("no task ran")
	}
}
