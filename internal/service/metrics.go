package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// metrics holds the server's operational counters, rendered in
// Prometheus text exposition format by render (hand-rolled — the repo
// takes no dependencies). Job-state gauges are computed from the live
// job table at render time; everything here is monotonic.
type metrics struct {
	start time.Time

	jobsSubmitted atomic.Uint64
	jobsRejected  atomic.Uint64

	// Per-leg outcome counters by source.
	legsFromStore atomic.Uint64
	legsSimulated atomic.Uint64
	legsWarmBoot  atomic.Uint64 // subset of legsSimulated that resumed warm
	legsFailed    atomic.Uint64

	// simCycles accumulates cycles actually simulated (store hits
	// contribute nothing); legWallNS the host time spent simulating.
	// legs/sec and cycles/sec are rates over these and the uptime.
	simCycles atomic.Uint64
	legWallNS atomic.Uint64

	warmupsRun atomic.Uint64
}

// jobStateCounts is a point-in-time census of the job table.
type jobStateCounts struct {
	queued, running, done, failed, canceled int
}

func (m *metrics) render(w io.Writer, states jobStateCounts, queueDepth int, storeHits, storeMisses uint64) {
	c := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP mpsimd_jobs Jobs by lifecycle state.\n# TYPE mpsimd_jobs gauge\n")
	for _, s := range []struct {
		state string
		n     int
	}{
		{"queued", states.queued}, {"running", states.running},
		{"done", states.done}, {"failed", states.failed}, {"canceled", states.canceled},
	} {
		fmt.Fprintf(w, "mpsimd_jobs{state=%q} %d\n", s.state, s.n)
	}

	c("mpsimd_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", m.jobsSubmitted.Load())
	c("mpsimd_jobs_rejected_total", "Submissions rejected before queueing.", m.jobsRejected.Load())
	g("mpsimd_queue_depth", "Pool tasks waiting for a worker.", queueDepth)

	fmt.Fprintf(w, "# HELP mpsimd_legs_total Finished legs by result source.\n# TYPE mpsimd_legs_total counter\n")
	fmt.Fprintf(w, "mpsimd_legs_total{source=\"store\"} %d\n", m.legsFromStore.Load())
	fmt.Fprintf(w, "mpsimd_legs_total{source=\"simulated\"} %d\n", m.legsSimulated.Load())
	fmt.Fprintf(w, "mpsimd_legs_total{source=\"warm-boot\"} %d\n", m.legsWarmBoot.Load())
	c("mpsimd_leg_failures_total", "Legs that ended in error (panics included).", m.legsFailed.Load())
	c("mpsimd_warmups_total", "Warm-up prefixes simulated (snapshot-store misses).", m.warmupsRun.Load())

	c("mpsimd_store_hits_total", "Result-store lookups served from disk.", storeHits)
	c("mpsimd_store_misses_total", "Result-store lookups that missed (corrupt files included).", storeMisses)

	c("mpsimd_sim_cycles_total", "Simulated cycles across all legs (cache hits add none).", m.simCycles.Load())
	fmt.Fprintf(w, "# HELP mpsimd_leg_wall_seconds_total Host seconds spent simulating legs.\n# TYPE mpsimd_leg_wall_seconds_total counter\nmpsimd_leg_wall_seconds_total %g\n",
		float64(m.legWallNS.Load())/1e9)

	up := time.Since(m.start).Seconds()
	fmt.Fprintf(w, "# HELP mpsimd_uptime_seconds Seconds since the server started.\n# TYPE mpsimd_uptime_seconds gauge\nmpsimd_uptime_seconds %g\n", up)
	if up > 0 {
		done := m.legsFromStore.Load() + m.legsSimulated.Load()
		fmt.Fprintf(w, "# HELP mpsimd_legs_per_second Finished legs per uptime second.\n# TYPE mpsimd_legs_per_second gauge\nmpsimd_legs_per_second %g\n",
			float64(done)/up)
	}
}
