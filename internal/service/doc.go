// Package service turns the batch experiments runner into a
// long-running simulation service: an HTTP/JSON job API over a bounded
// worker pool, backed by a persistent content-addressed result store.
//
// A job is a sweep — a list of experiments.LegSpec legs — submitted
// with POST /v1/jobs and polled with GET /v1/jobs/{id}. The pool fans
// the legs across goroutines with per-job context cancellation,
// timeouts, and panic isolation: a crashing leg fails its job, never
// the server.
//
// The store generalizes experiments.WarmBootCache to disk. Result keys
// are digests of (full config hash, canonical leg spec, warm-snapshot
// hash) — with the deterministic scheduler that triple fully determines
// the outcome, so a repeated or overlapping sweep is answered from the
// store without simulating, and warm-boot snapshots stored under their
// StateHash-derived compatibility class let workers resume a sweep's
// shared warm-up prefix instead of re-running it. Every stored result
// is CRC-framed; a corrupt file reads as a cache miss and is re-run,
// never served.
//
// See docs/SERVICE.md for the API spec, the job lifecycle state
// machine, the store layout and the cache-key semantics.
package service
