package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
)

// Config parameterizes a Server. The zero value of every field has a
// sensible default.
type Config struct {
	// Runner executes legs; nil uses the in-process simulator
	// (experiments.SimRunner). Tests substitute fakes.
	Runner experiments.Runner
	// Store persists results, snapshots and artifacts. Required.
	Store *Store
	// Workers bounds concurrent simulations (default 4); Queue bounds
	// the backlog of submitted-but-unstarted simulations (default 64).
	Workers, Queue int
	// JobTimeout bounds any job that doesn't set its own timeout_sec
	// (default 10 minutes).
	JobTimeout time.Duration
	// Logger receives structured per-job logs; nil uses slog.Default().
	Logger *slog.Logger
}

// Server is the simulation service: the HTTP API, the job table, the
// worker pool and the result store, wired together.
type Server struct {
	mux    *http.ServeMux
	runner experiments.Runner
	store  *Store
	pool   *Pool
	m      *metrics
	log    *slog.Logger

	jobTimeout time.Duration

	// baseCtx parents every job context so Close cancels all work.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*Job
	wg   sync.WaitGroup // live runJob goroutines
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("service: Config.Store is required")
	}
	if cfg.Runner == nil {
		cfg.Runner = experiments.SimRunner{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 10 * time.Minute
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		mux:        http.NewServeMux(),
		runner:     cfg.Runner,
		store:      cfg.Store,
		pool:       NewPool(cfg.Workers, cfg.Queue),
		m:          &metrics{start: time.Now()},
		log:        cfg.Logger,
		jobTimeout: cfg.JobTimeout,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/artifacts/", s.handleArtifacts)
	s.mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels every in-flight job, waits for their goroutines, and
// stops the pool. The handler keeps answering reads afterwards.
func (s *Server) Close() {
	s.baseCancel()
	s.wg.Wait()
	s.pool.Close()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func newJobID() string {
	var b [6]byte
	rand.Read(b[:]) // never fails per crypto/rand contract
	return "j" + hex.EncodeToString(b[:])
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.m.jobsRejected.Add(1)
		writeErr(w, http.StatusBadRequest, "malformed sweep: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		s.m.jobsRejected.Add(1)
		writeErr(w, http.StatusBadRequest, "invalid sweep: %v", err)
		return
	}

	job := &Job{
		ID:      newJobID(),
		Spec:    spec,
		state:   StateQueued,
		legs:    make([]LegStatus, len(spec.Legs)),
		created: time.Now(),
	}
	for i, leg := range spec.Legs {
		job.legs[i] = LegStatus{State: StateQueued}
		job.legs[i].Name = leg.Normalized().Name
	}
	job.log = s.log.With("job", job.ID, "name", spec.Name)

	s.mu.Lock()
	s.jobs[job.ID] = job
	s.mu.Unlock()
	s.m.jobsSubmitted.Add(1)
	job.log.Info("job accepted", "legs", len(spec.Legs),
		"warmup_cycles", spec.WarmupCycles, "verify_cold", spec.VerifyCold)

	s.wg.Add(1)
	go s.runJob(job)

	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":  job.ID,
		"url": "/v1/jobs/" + job.ID,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.View())
	}
	s.mu.Unlock()
	sort.Slice(views, func(i, k int) bool { return views[i].Created.Before(views[k].Created) })
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel(errCanceled)
	}
	// Cancellation is asynchronous: in-flight legs stop at their next
	// chunk boundary, then the job settles into a terminal state.
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID, "state": j.State()})
}

// artifactNameOK rejects names that could escape the job's directory.
func artifactNameOK(name string) bool {
	return name != "" && name != "." && name != ".." &&
		!strings.ContainsAny(name, "/\\")
}

func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	names := s.store.ListArtifacts(j.ID)
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"artifacts": names})
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	name := r.PathValue("name")
	if !artifactNameOK(name) {
		writeErr(w, http.StatusBadRequest, "bad artifact name %q", name)
		return
	}
	data, err := s.store.GetArtifact(j.ID, name)
	if err != nil {
		writeErr(w, http.StatusNotFound, "no artifact %q for job %s", name, j.ID)
		return
	}
	ct := "application/octet-stream"
	switch {
	case strings.HasSuffix(name, ".json"):
		ct = "application/json"
	case strings.HasSuffix(name, ".vcd"):
		ct = "text/plain; charset=utf-8"
	}
	w.Header().Set("Content-Type", ct)
	w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var st jobStateCounts
	s.mu.Lock()
	for _, j := range s.jobs {
		switch j.State() {
		case StateQueued:
			st.queued++
		case StateRunning:
			st.running++
		case StateDone:
			st.done++
		case StateFailed:
			st.failed++
		case StateCanceled:
			st.canceled++
		}
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.render(w, st, s.pool.QueueDepth(), s.store.Hits(), s.store.Misses())
}

// warmClass memoizes one warm-boot compatibility class's snapshot
// within a job: the first leg to need it simulates (or loads) the
// warm-up prefix, every other leg in the class reuses it.
type warmClass struct {
	once sync.Once
	data []byte
	err  error
}

// runJob drives one job to a terminal state. It runs on its own
// goroutine — never on a pool worker, so fanning legs out to the pool
// and waiting on them cannot deadlock the pool against itself.
func (s *Server) runJob(job *Job) {
	defer s.wg.Done()

	timeout := s.jobTimeout
	if job.Spec.TimeoutSec > 0 {
		timeout = time.Duration(job.Spec.TimeoutSec) * time.Second
	}
	ctx, cancelCause := context.WithCancelCause(s.baseCtx)
	ctx, cancelTimeout := context.WithTimeout(ctx, timeout)
	defer cancelTimeout()
	job.mu.Lock()
	job.cancel = cancelCause
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()

	warm := make(map[string]*warmClass)
	var warmMu sync.Mutex

	var legWG sync.WaitGroup
	for i := range job.Spec.Legs {
		legWG.Add(1)
		go func(i int) {
			defer legWG.Done()
			s.runLeg(ctx, job, i, warm, &warmMu)
		}(i)
	}
	legWG.Wait()

	// Settle the terminal state from the legs' outcomes.
	state, errMsg := StateDone, ""
	var failed int
	for i := range job.Spec.Legs {
		ls := job.legSnapshot(i)
		if ls.State == StateFailed {
			failed++
		}
	}
	switch {
	case context.Cause(ctx) == errCanceled:
		state = StateCanceled
	case failed > 0:
		state = StateFailed
		errMsg = fmt.Sprintf("%d of %d legs failed", failed, len(job.Spec.Legs))
		if ctx.Err() == context.DeadlineExceeded {
			errMsg += " (job timeout)"
		}
	}
	job.finish(state, errMsg)

	// result.json is the job's durable artifact: the final view,
	// fetchable after the fact from the artifact endpoint.
	if view, err := json.MarshalIndent(job.View(), "", "  "); err == nil {
		if err := s.store.PutArtifact(job.ID, "result.json", view); err != nil {
			job.log.Warn("writing result artifact failed", "err", err)
		}
	}
	job.log.Info("job finished", "state", state, "error", errMsg,
		"wall", time.Since(job.View().Created).Round(time.Millisecond).String())
}

// warmSnapshot returns the job's warm-boot snapshot for leg (loading it
// from the snapshot store or simulating the warm-up prefix on the pool).
func (s *Server) runWarmup(ctx context.Context, job *Job, leg experiments.LegSpec, warm map[string]*warmClass, warmMu *sync.Mutex) ([]byte, error) {
	stateKey, err := leg.StateKey(job.Spec.WarmupCycles)
	if err != nil {
		return nil, err
	}
	warmMu.Lock()
	wc, ok := warm[stateKey]
	if !ok {
		wc = &warmClass{}
		warm[stateKey] = wc
	}
	warmMu.Unlock()
	wc.once.Do(func() {
		if data, ok := s.store.GetSnapshot(stateKey); ok {
			job.log.Info("warm-up snapshot from store", "state_key", stateKey)
			wc.data = data
			return
		}
		wc.err = <-s.pool.Go(ctx, func(ctx context.Context) error {
			data, err := s.runner.Warmup(ctx, leg, job.Spec.WarmupCycles)
			if err != nil {
				return err
			}
			wc.data = data
			return nil
		})
		if wc.err == nil {
			s.m.warmupsRun.Add(1)
			if err := s.store.PutSnapshot(stateKey, wc.data); err != nil {
				job.log.Warn("storing warm-up snapshot failed", "err", err)
			}
			job.log.Info("warm-up simulated", "state_key", stateKey,
				"cycles", job.Spec.WarmupCycles, "bytes", len(wc.data))
		}
	})
	return wc.data, wc.err
}

// simulate runs one leg on the pool and returns its result.
func (s *Server) simulate(ctx context.Context, leg experiments.LegSpec, warmData []byte) (experiments.LegResult, error) {
	var res experiments.LegResult
	err := <-s.pool.Go(ctx, func(ctx context.Context) error {
		r, err := s.runner.RunLeg(ctx, leg, warmData)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	return res, err
}

// runLeg drives one leg: warm-up snapshot, store lookup, simulation,
// optional cold verification. It publishes progress into job.legs[i].
func (s *Server) runLeg(ctx context.Context, job *Job, i int, warm map[string]*warmClass, warmMu *sync.Mutex) {
	leg := job.Spec.Legs[i].Normalized()
	ls := LegStatus{State: StateRunning}
	ls.Name = leg.Name
	job.setLeg(i, ls)

	fail := func(err error) {
		if ctx.Err() != nil && context.Cause(ctx) == errCanceled {
			ls.State = StateCanceled
			ls.Error = "canceled"
		} else {
			ls.State = StateFailed
			ls.Error = err.Error()
			s.m.legsFailed.Add(1)
		}
		job.setLeg(i, ls)
		job.log.Warn("leg failed", "leg", i, "name", leg.Name, "err", ls.Error)
	}

	// Warm-boot snapshot for this leg's compatibility class.
	var warmData []byte
	if job.Spec.WarmupCycles > 0 {
		var err error
		warmData, err = s.runWarmup(ctx, job, leg, warm, warmMu)
		if err != nil {
			fail(err)
			return
		}
	}
	snapHash := ""
	if warmData != nil {
		snapHash = experiments.SnapshotHash(warmData)
	}

	key, err := leg.Key(snapHash)
	if err != nil {
		fail(err)
		return
	}

	// Result store first — except for VCD legs, whose waveform artifact
	// only exists when the simulation actually runs.
	if !leg.VCD {
		if res, ok := s.store.GetResult(key); ok {
			ls.LegResult = res
			ls.LegResult.Name = leg.Name
			ls.State = StateDone
			ls.Source = SourceStore
			s.m.legsFromStore.Add(1)
			if job.Spec.VerifyCold {
				ok, err := s.verifyCold(ctx, job, leg, res)
				if err != nil {
					fail(err)
					return
				}
				ls.Verified = ok
			}
			job.setLeg(i, ls)
			job.log.Info("leg served from store", "leg", i, "name", leg.Name, "key", key)
			return
		}
	}

	res, err := s.simulate(ctx, leg, warmData)
	if err != nil {
		fail(err)
		return
	}
	s.m.legsSimulated.Add(1)
	if warmData != nil {
		s.m.legsWarmBoot.Add(1)
	}
	s.m.simCycles.Add(res.SimCycles())
	s.m.legWallNS.Add(uint64(res.WallNS))
	if err := s.store.PutResult(key, res); err != nil {
		job.log.Warn("storing leg result failed", "err", err)
	}
	if len(res.VCD) > 0 {
		name := fmt.Sprintf("leg%d.vcd", i)
		if err := s.store.PutArtifact(job.ID, name, res.VCD); err != nil {
			job.log.Warn("storing leg VCD failed", "err", err)
		}
	}

	ls.LegResult = res
	ls.LegResult.Name = leg.Name
	ls.State = StateDone
	ls.Source = SourceSimulated
	if warmData != nil {
		ls.Source = SourceWarmBoot
	}
	if job.Spec.VerifyCold {
		ok, err := s.verifyCold(ctx, job, leg, res)
		if err != nil {
			fail(err)
			return
		}
		ls.Verified = ok
	}
	job.setLeg(i, ls)
	job.log.Info("leg simulated", "leg", i, "name", leg.Name, "source", ls.Source,
		"cycles", res.Cycles, "sim_cycles", res.SimCycles(), "key", key)
}

// verifyCold checks the warm-booted result against a cold run of the
// same leg (from the store when available): bit-identical cycles,
// instructions and stats, or an error that fails the leg. This is the
// service re-proving the determinism contract on every verified leg.
func (s *Server) verifyCold(ctx context.Context, job *Job, leg experiments.LegSpec, warmRes experiments.LegResult) (bool, error) {
	coldKey, err := leg.Key("")
	if err != nil {
		return false, err
	}
	coldRes, ok := s.store.GetResult(coldKey)
	if !ok {
		coldRes, err = s.simulate(ctx, leg, nil)
		if err != nil {
			return false, fmt.Errorf("cold reference: %w", err)
		}
		s.m.legsSimulated.Add(1)
		s.m.simCycles.Add(coldRes.SimCycles())
		s.m.legWallNS.Add(uint64(coldRes.WallNS))
		if err := s.store.PutResult(coldKey, coldRes); err != nil {
			job.log.Warn("storing cold reference failed", "err", err)
		}
	}
	if !warmRes.Identical(coldRes) {
		return false, fmt.Errorf("warm-boot diverged from cold reference: warm %d cycles / %d instrs, cold %d cycles / %d instrs",
			warmRes.Cycles, warmRes.Instructions, coldRes.Cycles, coldRes.Instructions)
	}
	return true, nil
}
