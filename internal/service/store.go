package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/experiments"
	"repro/internal/snapshot"
)

// Store is the persistent result store: leg results and warm-boot
// snapshots content-addressed on disk. It is the WarmBootCache idea
// generalized across processes — keys come from
// experiments.LegSpec.Key (full config hash + canonical spec +
// snapshot hash) and LegSpec.StateKey (warm-boot compatibility class),
// so any server pointed at the same directory serves the same sweeps
// from cache.
//
// Layout under the root:
//
//	results/<key[:2]>/<key>.json   CRC-framed LegResult
//	snapshots/<stateKey>.snap      versioned snapshot file (self-checksummed)
//
// Every read validates: a result file with a bad frame or CRC — and a
// snapshot that fails the snapshot package's own section checksums —
// counts as a miss and is deleted, so corruption causes a re-run, never
// a poisoned response. Writes are atomic (tmp + rename); concurrent
// writers of the same key race benignly to identical content.
type Store struct {
	root string

	hits, misses atomic.Uint64
}

// resultEnvelope frames a stored LegResult: Payload is the result's
// raw JSON, CRC its IEEE CRC-32. The indirection makes corruption
// detectable even when the damage still parses as JSON.
type resultEnvelope struct {
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	for _, sub := range []string{"results", "snapshots"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{root: dir}, nil
}

// Hits and Misses report the lifetime result-lookup counters.
func (s *Store) Hits() uint64   { return s.hits.Load() }
func (s *Store) Misses() uint64 { return s.misses.Load() }

func (s *Store) resultPath(key string) string {
	return filepath.Join(s.root, "results", key[:2], key+".json")
}

func (s *Store) snapPath(stateKey string) string {
	return filepath.Join(s.root, "snapshots", stateKey+".snap")
}

// GetResult looks the key up, returning ok=false on any miss —
// including a present-but-corrupt file, which it deletes so the
// subsequent re-run can repopulate it.
func (s *Store) GetResult(key string) (experiments.LegResult, bool) {
	var res experiments.LegResult
	data, err := os.ReadFile(s.resultPath(key))
	if err != nil {
		s.misses.Add(1)
		return res, false
	}
	var env resultEnvelope
	if err := json.Unmarshal(data, &env); err != nil ||
		crc32.ChecksumIEEE(env.Payload) != env.CRC ||
		json.Unmarshal(env.Payload, &res) != nil {
		os.Remove(s.resultPath(key))
		s.misses.Add(1)
		return experiments.LegResult{}, false
	}
	s.hits.Add(1)
	return res, true
}

// PutResult stores the result under key.
func (s *Store) PutResult(key string, res experiments.LegResult) error {
	payload, err := json.Marshal(res)
	if err != nil {
		return err
	}
	data, err := json.Marshal(resultEnvelope{CRC: crc32.ChecksumIEEE(payload), Payload: payload})
	if err != nil {
		return err
	}
	return s.writeAtomic(s.resultPath(key), data)
}

// GetSnapshot looks a warm-boot snapshot up by its compatibility-class
// key. The snapshot file format carries its own magic and per-section
// CRCs, so validation delegates to the snapshot package; a corrupt file
// is deleted and reads as a miss.
func (s *Store) GetSnapshot(stateKey string) ([]byte, bool) {
	data, err := os.ReadFile(s.snapPath(stateKey))
	if err != nil {
		return nil, false
	}
	if _, err := snapshot.Read(data); err != nil {
		os.Remove(s.snapPath(stateKey))
		return nil, false
	}
	return data, true
}

// PutSnapshot stores warm-boot snapshot bytes under their
// compatibility-class key.
func (s *Store) PutSnapshot(stateKey string, data []byte) error {
	return s.writeAtomic(s.snapPath(stateKey), data)
}

// PutArtifact stores a named per-job artifact (result.json, leg VCDs,
// warm-boot snapshots) under jobs/<id>/<name>. Callers sanitize name.
func (s *Store) PutArtifact(jobID, name string, data []byte) error {
	return s.writeAtomic(filepath.Join(s.root, "jobs", jobID, name), data)
}

// GetArtifact reads a per-job artifact.
func (s *Store) GetArtifact(jobID, name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.root, "jobs", jobID, name))
}

// ListArtifacts names a job's stored artifacts (empty when none).
func (s *Store) ListArtifacts(jobID string) []string {
	ents, err := os.ReadDir(filepath.Join(s.root, "jobs", jobID))
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names
}

// writeAtomic writes data to path via a same-directory temp file and
// rename, so readers never observe a partial file.
func (s *Store) writeAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if err := errors.Join(werr, cerr); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
