package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
)

// fakeRunner is a deterministic in-memory Runner for API tests: instant
// legs, counted runs, optional blocking (for cancel tests) and panics
// (for isolation tests).
type fakeRunner struct {
	runs    atomic.Int32
	warmups atomic.Int32
	// block, when non-nil, makes RunLeg wait for ctx cancellation —
	// simulating a long leg.
	block bool
	// panicName makes the leg with this name panic.
	panicName string
}

func (f *fakeRunner) RunLeg(ctx context.Context, leg experiments.LegSpec, warm []byte) (experiments.LegResult, error) {
	if leg.Name == f.panicName {
		panic("synthetic leg crash")
	}
	if f.block {
		<-ctx.Done()
		return experiments.LegResult{}, ctx.Err()
	}
	f.runs.Add(1)
	var start uint64
	if warm != nil {
		start = 100
	}
	return experiments.LegResult{
		Name: leg.Name, StartCycle: start, Cycles: 1000,
		Instructions: 500, Stats: map[string]uint64{"inter.transactions": 7},
	}, nil
}

func (f *fakeRunner) Warmup(ctx context.Context, leg experiments.LegSpec, cycles uint64) ([]byte, error) {
	f.warmups.Add(1)
	return []byte("fake snapshot bytes"), nil
}

// newTestServer wires a Server over a temp store and an httptest
// frontend. runner nil uses the real simulator.
func newTestServer(t *testing.T, runner experiments.Runner) (*Server, *httptest.Server) {
	t.Helper()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Runner: runner,
		Store:  store,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec SweepSpec) (id string, status int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	json.NewDecoder(resp.Body).Decode(&out)
	return out["id"], resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// pollJob polls until the job reaches a terminal state.
func pollJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		switch v.State {
		case StateDone, StateFailed, StateCanceled:
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle", id)
	return JobView{}
}

// metricValue scrapes one (possibly labeled) metric from /metrics.
func metricValue(t *testing.T, ts *httptest.Server, metric string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(metric) + " ([0-9.e+-]+)$")
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %q not found in:\n%s", metric, body)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSubmitPollLifecycle(t *testing.T) {
	f := &fakeRunner{}
	_, ts := newTestServer(t, f)

	id, code := postJob(t, ts, SweepSpec{
		Name: "sweep",
		Legs: []experiments.LegSpec{{Name: "a"}, {Name: "b", Workers: 4}},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", code)
	}
	v := pollJob(t, ts, id)
	if v.State != StateDone {
		t.Fatalf("state = %s (%s), want done", v.State, v.Error)
	}
	if len(v.Legs) != 2 {
		t.Fatalf("legs = %d, want 2", len(v.Legs))
	}
	for _, leg := range v.Legs {
		if leg.State != StateDone || leg.Source != SourceSimulated {
			t.Errorf("leg %q: state %s source %s", leg.Name, leg.State, leg.Source)
		}
		if leg.Cycles != 1000 {
			t.Errorf("leg %q: cycles %d", leg.Name, leg.Cycles)
		}
	}
	if got := f.runs.Load(); got != 2 {
		t.Errorf("runner ran %d legs, want 2", got)
	}

	// The identical sweep resubmitted: both legs served from the store,
	// zero additional simulations.
	id2, _ := postJob(t, ts, SweepSpec{
		Name: "sweep again",
		Legs: []experiments.LegSpec{{Name: "a"}, {Name: "b", Workers: 4}},
	})
	v2 := pollJob(t, ts, id2)
	if v2.State != StateDone {
		t.Fatalf("resubmit state = %s (%s)", v2.State, v2.Error)
	}
	for _, leg := range v2.Legs {
		if leg.Source != SourceStore {
			t.Errorf("resubmitted leg %q source = %s, want store", leg.Name, leg.Source)
		}
	}
	if got := f.runs.Load(); got != 2 {
		t.Errorf("resubmit simulated legs: runner ran %d total, want still 2", got)
	}

	// result.json artifact exists for the finished job.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifacts/result.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("artifact GET = %d", resp.StatusCode)
	}
}

func TestSubmitRejectsMalformed(t *testing.T) {
	_, ts := newTestServer(t, &fakeRunner{})
	for name, body := range map[string]string{
		"not json":        "{{{",
		"unknown field":   `{"legz": []}`,
		"no legs":         `{"legs": []}`,
		"bad workload":    `{"legs": [{"workload": "quake"}]}`,
		"bad alloc":       `{"legs": [{"alloc": "yolo"}]}`,
		"bad partition":   `{"legs": [{"partition": "diag"}]}`,
		"l2 on gsm":       `{"legs": [{"workload": "gsm", "l2": true}]}`,
		"dram on gsm":     `{"legs": [{"workload": "gsm", "dram": true}]}`,
		"negative frames": `{"legs": [{"frames": -4}]}`,
		"verify w/o warm": `{"legs": [{}], "verify_cold": true}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, b)
			}
		})
	}
	if got := metricValue(t, ts, "mpsimd_jobs_rejected_total"); got != 10 {
		t.Errorf("rejected_total = %v, want 10", got)
	}
}

func TestUnknownJob404s(t *testing.T) {
	_, ts := newTestServer(t, &fakeRunner{})
	for _, path := range []string{
		"/v1/jobs/nope",
		"/v1/jobs/nope/artifacts/",
		"/v1/jobs/nope/artifacts/result.json",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown = %d, want 404", resp.StatusCode)
	}
}

func TestArtifactNameTraversalRejected(t *testing.T) {
	f := &fakeRunner{}
	_, ts := newTestServer(t, f)
	id, _ := postJob(t, ts, SweepSpec{Legs: []experiments.LegSpec{{Name: "a"}}})
	pollJob(t, ts, id)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifacts/..%2F..%2Fsecrets")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("traversal artifact name served")
	}
}

func TestCancelMidSweep(t *testing.T) {
	f := &fakeRunner{block: true}
	_, ts := newTestServer(t, f)
	id, _ := postJob(t, ts, SweepSpec{Name: "long", Legs: []experiments.LegSpec{{Name: "slow"}}})

	// Wait until it is running, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for getJob(t, ts, id).State != StateRunning && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d, want 202", resp.StatusCode)
	}
	v := pollJob(t, ts, id)
	if v.State != StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", v.State)
	}
	for _, leg := range v.Legs {
		if leg.State != StateCanceled {
			t.Errorf("leg %q state = %s, want canceled", leg.Name, leg.State)
		}
	}
	// Canceling a finished job is a harmless no-op.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if getJob(t, ts, id).State != StateCanceled {
		t.Error("second DELETE changed terminal state")
	}
}

func TestPanickingLegFailsJobNotServer(t *testing.T) {
	f := &fakeRunner{panicName: "crash"}
	_, ts := newTestServer(t, f)
	// Distinct seeds: cache keys ignore names, and a store hit on the
	// healthy leg's key would let the crash leg skip simulating.
	id, _ := postJob(t, ts, SweepSpec{Legs: []experiments.LegSpec{{Name: "crash", Seed: 7}, {Name: "fine"}}})
	v := pollJob(t, ts, id)
	if v.State != StateFailed {
		t.Fatalf("state = %s, want failed", v.State)
	}
	var crashed, fine *LegStatus
	for i := range v.Legs {
		switch v.Legs[i].Name {
		case "crash":
			crashed = &v.Legs[i]
		case "fine":
			fine = &v.Legs[i]
		}
	}
	if crashed == nil || crashed.State != StateFailed || !strings.Contains(crashed.Error, "synthetic leg crash") {
		t.Errorf("crashed leg: %+v", crashed)
	}
	if fine == nil || fine.State != StateDone {
		t.Errorf("healthy leg did not finish: %+v", fine)
	}

	// The server survived: healthz answers and a fresh job succeeds.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %v %v", resp, err)
	}
	resp.Body.Close()
	id2, _ := postJob(t, ts, SweepSpec{Legs: []experiments.LegSpec{{Name: "fine"}}})
	if v2 := pollJob(t, ts, id2); v2.State != StateDone {
		t.Errorf("post-panic job state = %s", v2.State)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	f := &fakeRunner{}
	_, ts := newTestServer(t, f)
	id, _ := postJob(t, ts, SweepSpec{Legs: []experiments.LegSpec{{Name: "a"}}})
	pollJob(t, ts, id)
	id2, _ := postJob(t, ts, SweepSpec{Legs: []experiments.LegSpec{{Name: "a"}}})
	pollJob(t, ts, id2)

	if got := metricValue(t, ts, "mpsimd_jobs_submitted_total"); got != 2 {
		t.Errorf("submitted = %v, want 2", got)
	}
	if got := metricValue(t, ts, `mpsimd_jobs{state="done"}`); got != 2 {
		t.Errorf("done gauge = %v, want 2", got)
	}
	if got := metricValue(t, ts, `mpsimd_legs_total{source="simulated"}`); got != 1 {
		t.Errorf("simulated legs = %v, want 1", got)
	}
	if got := metricValue(t, ts, `mpsimd_legs_total{source="store"}`); got != 1 {
		t.Errorf("store legs = %v, want 1", got)
	}
	if got := metricValue(t, ts, "mpsimd_sim_cycles_total"); got != 1000 {
		t.Errorf("sim cycles = %v, want 1000", got)
	}
}

// TestServerConcurrentSubmitsAndCancels is the service-level race
// exercise: many goroutines submitting, polling and canceling at once
// (run under -race by the CI race job).
func TestServerConcurrentSubmitsAndCancels(t *testing.T) {
	f := &fakeRunner{}
	_, ts := newTestServer(t, f)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, code := postJob(t, ts, SweepSpec{
				Name: fmt.Sprintf("concurrent-%d", i),
				Legs: []experiments.LegSpec{{Name: "a"}, {Name: "b", Seed: uint32(i + 1)}},
			})
			if code != http.StatusAccepted {
				t.Errorf("POST = %d", code)
				return
			}
			if i%4 == 0 {
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
				if resp, err := http.DefaultClient.Do(req); err == nil {
					resp.Body.Close()
				}
			}
			v := pollJob(t, ts, id)
			if v.State == StateFailed {
				t.Errorf("job %s failed: %s", id, v.Error)
			}
		}(i)
	}
	wg.Wait()
}

// TestEndToEndWarmBootBitIdentity runs the acceptance-criteria demo
// against the real simulator: a warm-booted leg resumes from a stored
// snapshot and must land bit-identical (cycles, instructions, stats) on
// its cold reference; resubmitting the sweep is served entirely from
// the result store with zero additional simulation.
func TestEndToEndWarmBootBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	_, ts := newTestServer(t, nil) // nil runner = real experiments.SimRunner

	spec := SweepSpec{
		Name: "e2e",
		Legs: []experiments.LegSpec{
			{Name: "ev", Workload: "gsm", ISSes: 2, Memories: 1, Frames: 2},
			{Name: "lockstep", Workload: "gsm", ISSes: 2, Memories: 1, Frames: 2, Lockstep: true},
		},
		WarmupCycles: 2000,
		VerifyCold:   true,
	}
	id, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	v := pollJob(t, ts, id)
	if v.State != StateDone {
		t.Fatalf("state = %s (%s)", v.State, v.Error)
	}
	for _, leg := range v.Legs {
		if leg.Source != SourceWarmBoot {
			t.Errorf("leg %q source = %s, want warm-boot", leg.Name, leg.Source)
		}
		if !leg.Verified {
			t.Errorf("leg %q not verified against its cold reference", leg.Name)
		}
		if leg.StartCycle != 2000 {
			t.Errorf("leg %q resumed at cycle %d, want 2000", leg.Name, leg.StartCycle)
		}
	}
	// Both scheduler variants are observably identical: same final
	// cycle count and stats (the warm-boot compatibility class at work —
	// they even shared one warm-up snapshot).
	if !v.Legs[0].LegResult.Identical(v.Legs[1].LegResult) {
		t.Errorf("scheduler variants diverged: %+v vs %+v", v.Legs[0].LegResult, v.Legs[1].LegResult)
	}
	simulatedBefore := metricValue(t, ts, `mpsimd_legs_total{source="simulated"}`)
	warmBefore := metricValue(t, ts, `mpsimd_legs_total{source="warm-boot"}`)

	// Resubmit: everything from the store, nothing simulated.
	id2, _ := postJob(t, ts, spec)
	v2 := pollJob(t, ts, id2)
	if v2.State != StateDone {
		t.Fatalf("resubmit state = %s (%s)", v2.State, v2.Error)
	}
	for _, leg := range v2.Legs {
		if leg.Source != SourceStore {
			t.Errorf("resubmitted leg %q source = %s, want store", leg.Name, leg.Source)
		}
		if !leg.Verified {
			t.Errorf("resubmitted leg %q lost verification", leg.Name)
		}
	}
	if after := metricValue(t, ts, `mpsimd_legs_total{source="simulated"}`); after != simulatedBefore {
		t.Errorf("resubmit simulated %v extra legs", after-simulatedBefore)
	}
	if after := metricValue(t, ts, `mpsimd_legs_total{source="warm-boot"}`); after != warmBefore {
		t.Errorf("resubmit warm-booted %v extra legs", after-warmBefore)
	}
}

// TestVCDLegProducesArtifact asks the real simulator for a waveform and
// fetches it through the artifact endpoint.
func TestVCDLegProducesArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation")
	}
	_, ts := newTestServer(t, nil)
	id, _ := postJob(t, ts, SweepSpec{
		Legs: []experiments.LegSpec{{Name: "wave", Workload: "gsm", ISSes: 1, Memories: 1, Frames: 1, VCD: true}},
	})
	v := pollJob(t, ts, id)
	if v.State != StateDone {
		t.Fatalf("state = %s (%s)", v.State, v.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifacts/leg0.vcd")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("$timescale")) {
		t.Fatalf("VCD artifact: status %d, body %.80q", resp.StatusCode, body)
	}
}
