package alloc

import "fmt"

// listPolicy is the address-ordered free-list allocator in its two
// scan disciplines: FirstFit takes the first block that fits (and is
// access-for-access identical to the historical heapsim allocator);
// BestFit walks the entire list and takes the smallest fitting block.
//
// Layout: word 0 of the arena is the free-list head (padded to 8
// bytes); heap blocks tile [listHeapStart, size). A free block's
// word 1 is the next-free link; frees insert in address order and
// coalesce with both neighbors.
type listPolicy struct {
	kind Kind
	m    Mem
}

const (
	listHeadAddr  = 0 // free-list head pointer location
	listHeapStart = 8 // first block offset
)

func newListPolicy(kind Kind, m Mem) *listPolicy {
	p := &listPolicy{kind: kind, m: m}
	// One free block spans the whole heap; head points at it.
	m.Wr32(listHeadAddr, listHeapStart)
	m.Wr32(listHeapStart, m.Size()-listHeapStart) // block size
	m.Wr32(listHeapStart+4, nilPtr)               // next free
	return p
}

// Kind implements Policy.
func (p *listPolicy) Kind() Kind { return p.kind }

// Alloc implements Policy: carve n payload bytes out of a free block —
// the first that fits (FirstFit) or the smallest that fits after a
// full walk (BestFit) — returning the payload address. ok is false
// when no free block fits (which, under fragmentation, can happen even
// if total free space would suffice — an honest property of the
// detailed model).
func (p *listPolicy) Alloc(n uint32, zero bool) (uint32, bool) {
	if n == 0 || n > 0xFFFFFFF0-hdrSize { // reject zero and size-arithmetic wrap
		return 0, false
	}
	need := align8(n) + hdrSize
	m := p.m
	prev := uint32(nilPtr)
	cur := m.Rd32(listHeadAddr)
	if p.kind == BestFit {
		// Full walk: remember the tightest fit and its predecessor.
		best, bestPrev, bestSize := uint32(nilPtr), uint32(nilPtr), uint32(0)
		for cur != nilPtr {
			size := m.Rd32(cur)
			next := m.Rd32(cur + 4)
			if size >= need && (best == nilPtr || size < bestSize) {
				best, bestPrev, bestSize = cur, prev, size
			}
			prev = cur
			cur = next
		}
		if best == nilPtr {
			return 0, false
		}
		return p.take(best, bestPrev, bestSize, need, zero), true
	}
	for cur != nilPtr {
		size := m.Rd32(cur)
		next := m.Rd32(cur + 4)
		if size >= need {
			return p.take(cur, prev, size, need, zero), true
		}
		prev = cur
		cur = next
	}
	return 0, false
}

// take allocates need bytes from the free block at cur (size bytes,
// list predecessor prev) and returns the payload address. The access
// pattern is exactly the historical first-fit one: split from the tail
// so no links change, or unlink the whole block.
func (p *listPolicy) take(cur, prev, size, need uint32, zero bool) uint32 {
	m := p.m
	var blk uint32
	if size-need >= minSplit {
		// Allocate from the tail of the free block: the free block
		// shrinks in place and no links change.
		m.Wr32(cur, size-need)
		blk = cur + size - need
		m.Wr32(blk, need)
	} else {
		// Take the whole block: unlink it.
		next := m.Peek32(cur + 4) // already read during the walk
		if prev == nilPtr {
			m.Wr32(listHeadAddr, next)
		} else {
			m.Wr32(prev+4, next)
		}
		blk = cur
	}
	m.Wr32(blk+4, magic)
	payload := blk + hdrSize
	if zero {
		limit := blk + m.Peek32(blk)
		for a := payload; a < limit; a += 4 {
			m.Wr32(a, 0)
		}
	}
	return payload
}

// Free implements Policy: return the block whose payload starts at
// addr to the free list, inserting in address order and coalescing
// with adjacent free blocks. It reports false for invalid or double
// frees (magic mismatch).
func (p *listPolicy) Free(addr uint32) bool {
	m := p.m
	if addr < listHeapStart+hdrSize || addr >= m.Size() || (addr-hdrSize)%8 != 0 {
		return false
	}
	blk := addr - hdrSize
	size := m.Rd32(blk)
	if m.Rd32(blk+4) != magic || size < hdrSize || uint64(blk)+uint64(size) > uint64(m.Size()) {
		return false
	}
	// Find address-ordered insertion point.
	prev := uint32(nilPtr)
	cur := m.Rd32(listHeadAddr)
	for cur != nilPtr && cur < blk {
		next := m.Rd32(cur + 4)
		prev = cur
		cur = next
	}
	// Link the block in.
	m.Wr32(blk+4, cur)
	if prev == nilPtr {
		m.Wr32(listHeadAddr, blk)
	} else {
		m.Wr32(prev+4, blk)
	}
	// Coalesce with the following block.
	if cur != nilPtr && blk+size == cur {
		size += m.Rd32(cur)
		m.Wr32(blk, size)
		m.Wr32(blk+4, m.Rd32(cur+4))
	}
	// Coalesce with the preceding block.
	if prev != nilPtr {
		psize := m.Rd32(prev)
		if prev+psize == blk {
			m.Wr32(prev, psize+size)
			m.Wr32(prev+4, m.Rd32(blk+4))
		}
	}
	return true
}

// span describes one free block for inspection.
type span struct {
	Addr, Size uint32
}

// freeList walks the free list without charging accesses.
func (p *listPolicy) freeList() []span {
	var out []span
	cur := p.m.Peek32(listHeadAddr)
	for cur != nilPtr {
		out = append(out, span{cur, p.m.Peek32(cur)})
		cur = p.m.Peek32(cur + 4)
	}
	return out
}

// FreeBytes implements Policy.
func (p *listPolicy) FreeBytes() uint32 {
	var total uint32
	for _, s := range p.freeList() {
		total += s.Size
	}
	return total
}

// FreeBlocks implements Policy.
func (p *listPolicy) FreeBlocks() int { return len(p.freeList()) }

// LargestFree implements Policy.
func (p *listPolicy) LargestFree() uint32 {
	var max uint32
	for _, s := range p.freeList() {
		if s.Size > max {
			max = s.Size
		}
	}
	return max
}

// CheckInvariants implements Policy: the free list is address-ordered,
// fully coalesced and in bounds, and block sizes tile the heap exactly
// with every block either free or carrying the allocation magic.
func (p *listPolicy) CheckInvariants() error {
	m := p.m
	fl := p.freeList()
	freeAt := map[uint32]uint32{}
	last := uint32(0)
	for i, s := range fl {
		if i > 0 && s.Addr <= last {
			return fmt.Errorf("free list not address-ordered at %#x", s.Addr)
		}
		if s.Addr < listHeapStart || uint64(s.Addr)+uint64(s.Size) > uint64(m.Size()) {
			return fmt.Errorf("free block out of bounds: %+v", s)
		}
		if i > 0 && last+freeAt[last] == s.Addr {
			return fmt.Errorf("adjacent free blocks not coalesced: %#x and %#x", last, s.Addr)
		}
		freeAt[s.Addr] = s.Size
		last = s.Addr
	}
	// Walk the block sequence; every block is either on the free list or
	// carries the allocation magic, and sizes tile the heap exactly.
	off := uint32(listHeapStart)
	for off < m.Size() {
		size := m.Peek32(off)
		if size < hdrSize || size%8 != 0 || uint64(off)+uint64(size) > uint64(m.Size()) {
			return fmt.Errorf("bad block size %d at %#x", size, off)
		}
		w1 := m.Peek32(off + 4)
		if _, isFree := freeAt[off]; !isFree && w1 != magic {
			return fmt.Errorf("block at %#x neither free nor allocated (w1=%#x)", off, w1)
		}
		off += size
	}
	if off != m.Size() {
		return fmt.Errorf("blocks do not tile the heap: ended at %#x of %#x", off, m.Size())
	}
	return nil
}
