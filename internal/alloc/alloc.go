package alloc

import (
	"encoding/binary"
	"fmt"
)

// Kind selects an allocation policy.
type Kind uint8

const (
	// Default is the zero value: each consumer's historical behavior
	// (heapsim: FirstFit; the wrapper's pointer table: bump placement
	// with no address reuse). Using it keeps pre-policy runs
	// bit-identical.
	Default Kind = iota
	// FirstFit is the address-ordered first-fit free list.
	FirstFit
	// BestFit is the smallest-fitting-block variant of the same layout.
	BestFit
	// Buddy is the binary buddy system.
	Buddy
	// Segregated is the TLSF-style segregated free-list allocator.
	Segregated

	numKinds
)

// String names the kind as the -alloc flags spell it.
func (k Kind) String() string {
	switch k {
	case Default:
		return "default"
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case Buddy:
		return "buddy"
	case Segregated:
		return "segregated"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind parses the -alloc flag spelling of a policy kind.
func ParseKind(s string) (Kind, error) {
	for k := Default; k < numKinds; k++ {
		if s == k.String() {
			return k, nil
		}
	}
	return Default, fmt.Errorf("alloc: unknown policy %q (want default|first-fit|best-fit|buddy|segregated)", s)
}

// Kinds returns the concrete policies (Default excluded), for sweeps.
func Kinds() []Kind { return []Kind{FirstFit, BestFit, Buddy, Segregated} }

// Mem is the word-granular view of an arena a Policy manages. Rd32 and
// Wr32 are the metered accesses (heapsim charges simulated cycles per
// call); Peek32 reads without metering and is reserved for inspection
// and for bounds the manager has already paid to learn.
type Mem interface {
	Rd32(addr uint32) uint32
	Wr32(addr, val uint32)
	Peek32(addr uint32) uint32
	Size() uint32
}

// Policy is one allocation discipline bound to a Mem at construction
// (New formats the arena metadata). Alloc returns the payload address
// of a block holding at least n bytes, zeroing it word-by-word through
// the metered interface when zero is set (calloc semantics). Free
// returns a block by its payload address, reporting false for
// addresses that fail the policy's validation (wild or double frees).
//
// FreeBytes, FreeBlocks and LargestFree are unmetered fragmentation
// gauges; CheckInvariants walks the whole arena structure and is meant
// for tests and the fuzzer.
type Policy interface {
	Kind() Kind
	Alloc(n uint32, zero bool) (addr uint32, ok bool)
	Free(addr uint32) bool
	FreeBytes() uint32
	FreeBlocks() int
	LargestFree() uint32
	CheckInvariants() error
}

// Shared layout constants. Every policy gives blocks an 8-byte header:
// word 0 holds the block size in bytes including the header (plus, for
// Segregated, flag bits in the low 3 bits the 8-byte size granularity
// leaves free); word 1 is the allocation magic when live and a
// free-list link when free. Links are arena byte offsets; nilPtr
// terminates lists and is distinguishable from magic for any arena
// under 2.5 GiB, which the 32-bit simulated space guarantees.
const (
	hdrSize  = 8          // block header bytes
	nilPtr   = 0xFFFFFFFF // end-of-list marker
	magic    = 0xA110CA7E // word 1 of an allocated block
	minSplit = 16         // smallest remainder worth keeping as a free block
)

func align8(n uint32) uint32 { return (n + 7) &^ 7 }

// MinArena returns the smallest arena (in bytes) kind can manage: its
// metadata region plus one minimum block. Sizes are rounded down to a
// multiple of 8 before the comparison by consumers.
func MinArena(k Kind) uint32 {
	switch k {
	case Buddy:
		return buddyBase + minSplit
	case Segregated:
		return segBase + minSplit
	default: // Default, FirstFit, BestFit
		return listHeapStart + hdrSize + 8
	}
}

// New formats m's metadata for kind and returns the bound policy.
// Default maps to FirstFit (the historical allocator). It errors when
// the arena is smaller than MinArena(kind); formatting accesses are
// metered — consumers that model construction as free (heapsim does)
// reset their access counter afterwards.
func New(kind Kind, m Mem) (Policy, error) {
	if m.Size() < MinArena(kind) {
		return nil, fmt.Errorf("alloc: %s needs an arena of at least %d bytes, got %d",
			kind, MinArena(kind), m.Size())
	}
	switch kind {
	case Default, FirstFit:
		return newListPolicy(FirstFit, m), nil
	case BestFit:
		return newListPolicy(BestFit, m), nil
	case Buddy:
		return newBuddy(m), nil
	case Segregated:
		return newSegregated(m), nil
	default:
		return nil, fmt.Errorf("alloc: unknown policy kind %d", kind)
	}
}

// SliceMem is a host-backed Mem over a plain byte slice with an access
// counter — the arena the wrapper's placement policy and the allocator
// benchmarks use. The counter exists for reporting symmetry with
// heapsim; nothing charges cycles for it.
type SliceMem struct {
	Buf      []byte
	Accesses uint64
}

// NewSliceMem allocates a zeroed host arena of size bytes (rounded
// down to a multiple of 8, matching the simulated-arena convention).
func NewSliceMem(size uint32) *SliceMem {
	return &SliceMem{Buf: make([]byte, size&^7)}
}

// Rd32 implements Mem.
func (s *SliceMem) Rd32(addr uint32) uint32 {
	s.Accesses++
	return binary.LittleEndian.Uint32(s.Buf[addr:])
}

// Wr32 implements Mem.
func (s *SliceMem) Wr32(addr, val uint32) {
	s.Accesses++
	binary.LittleEndian.PutUint32(s.Buf[addr:], val)
}

// Peek32 implements Mem.
func (s *SliceMem) Peek32(addr uint32) uint32 {
	return binary.LittleEndian.Uint32(s.Buf[addr:])
}

// Size implements Mem.
func (s *SliceMem) Size() uint32 { return uint32(len(s.Buf)) }
