package alloc

import "fmt"

// segregated is the TLSF-style segregated free-list allocator: one
// doubly-linked free list per size class (16-byte steps up to 256
// bytes, then two subdivisions per power of two), class heads in the
// arena's metadata region, boundary-tag coalescing. Allocation is
// good-fit with a bounded in-class probe: the first segScanLimit
// blocks of the request's own class are checked (a class spans a size
// range, so its blocks are not guaranteed to fit), then the front
// block of the first non-empty higher class wins — every block there
// is guaranteed to fit. Alloc and free therefore touch O(segScanLimit
// + classes) words no matter how many free blocks exist; the price is
// that a fitting block buried deep in the request's own class can be
// missed, denying an allocation total free space could serve — the
// same honestly-modelled fragmentation denial the other policies have.
//
// Block layout (sizes are multiples of 8, so word 0's low bits carry
// flags): word 0 = size | thisFree(bit 0) | prevFree(bit 1). A live
// block's word 1 is the allocation magic; a free block's words 1 and 2
// are the next/prev class-list links and its last word is a footer
// holding the plain size, which lets the following block find this
// block's start when coalescing backward. The prevFree bit lives in
// the *following* block's header — never in payload a live block could
// scribble over.
type segregated struct {
	m   Mem
	end uint32
}

// segBounds are the class lower bounds: a free block of size s lives on
// the list of the largest bound ≤ s, so every block on a class above a
// request's own class is guaranteed to fit it.
var segBounds = func() []uint32 {
	var b []uint32
	for s := uint32(16); s <= 240; s += 16 {
		b = append(b, s)
	}
	for s := uint32(256); s < 1<<26; s <<= 1 {
		b = append(b, s, s+s/2)
	}
	return append(b, 1<<26)
}()

// segBase is the first block offset: the class-head table, 8-aligned.
var segBase = (uint32(4*len(segBounds)) + 7) &^ 7

const (
	segFree     = 1 // word-0 bit 0: this block is free
	segPrevFree = 2 // word-0 bit 1: the preceding block is free
	segFlags    = 7

	// segScanLimit bounds the first-fit probe of the request's own
	// class. It keeps the exact-fit win for short lists (a fully
	// recovered arena is one block at the head of its class) while
	// capping the worst-case alloc cost at O(segScanLimit + classes)
	// metered accesses — the near-constant guarantee E9 measures.
	segScanLimit = 8
)

// segClass maps a block size to its class index (insertion mapping).
func segClass(size uint32) int {
	lo, hi := 0, len(segBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if segBounds[mid] <= size {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

func segHeadOff(c int) uint32 { return uint32(4 * c) }

func newSegregated(m Mem) *segregated {
	p := &segregated{m: m, end: m.Size() &^ 7}
	for c := range segBounds {
		m.Wr32(segHeadOff(c), nilPtr)
	}
	p.insert(segBase, p.end-segBase)
	return p
}

// Kind implements Policy.
func (p *segregated) Kind() Kind { return Segregated }

// insert pushes a free block onto its class list and writes its header
// and footer. The caller guarantees the block's preceding neighbor is
// not free (coalescing has already run).
func (p *segregated) insert(blk, size uint32) {
	m := p.m
	c := segClass(size)
	head := m.Rd32(segHeadOff(c))
	m.Wr32(blk, size|segFree)
	m.Wr32(blk+4, head)   // next
	m.Wr32(blk+8, nilPtr) // prev
	if head != nilPtr {
		m.Wr32(head+8, blk)
	}
	m.Wr32(segHeadOff(c), blk)
	m.Wr32(blk+size-4, size) // footer
}

// unlink removes a free block of the given size from its class list.
func (p *segregated) unlink(blk, size uint32) {
	m := p.m
	next := m.Rd32(blk + 4)
	prev := m.Rd32(blk + 8)
	if prev == nilPtr {
		m.Wr32(segHeadOff(segClass(size)), next)
	} else {
		m.Wr32(prev+4, next)
	}
	if next != nilPtr {
		m.Wr32(next+8, prev)
	}
}

// Alloc implements Policy: good-fit search — a bounded first-fit probe
// of the request's own class, then the front block of the first
// non-empty higher class (which always fits).
func (p *segregated) Alloc(n uint32, zero bool) (uint32, bool) {
	if n == 0 || n > 0xFFFFFFF0-hdrSize { // reject zero and size-arithmetic wrap
		return 0, false
	}
	need := align8(n) + hdrSize
	if need < minSplit {
		need = minSplit
	}
	m := p.m
	c := segClass(need)
	blk, size := uint32(nilPtr), uint32(0)
	probes := 0
	for cur := m.Rd32(segHeadOff(c)); cur != nilPtr && probes < segScanLimit; cur = m.Rd32(cur + 4) {
		if s := m.Rd32(cur) &^ segFlags; s >= need {
			blk, size = cur, s
			break
		}
		probes++
	}
	if blk == nilPtr {
		for j := c + 1; j < len(segBounds); j++ {
			if head := m.Rd32(segHeadOff(j)); head != nilPtr {
				blk = head
				size = m.Rd32(blk) &^ segFlags
				break
			}
		}
	}
	if blk == nilPtr {
		return 0, false
	}
	p.unlink(blk, size)
	allocSize := size
	if size-need >= minSplit {
		// Split: the head becomes the live block, the tail a free
		// remainder. The block after the remainder keeps prevFree set.
		p.insert(blk+need, size-need)
		allocSize = need
	} else if blk+size < p.end {
		// Whole block taken: the following block's prev is now live.
		m.Wr32(blk+size, m.Rd32(blk+size)&^segPrevFree)
	}
	// The block's own prevFree is clear by the coalescing invariant (a
	// free block never follows another free block).
	m.Wr32(blk, allocSize)
	m.Wr32(blk+4, magic)
	payload := blk + hdrSize
	if zero {
		limit := blk + allocSize
		for a := payload; a < limit; a += 4 {
			m.Wr32(a, 0)
		}
	}
	return payload, true
}

// Free implements Policy: validate, coalesce forward via the next
// header and backward via the boundary-tag footer, insert the merged
// block, and flag the follower's prevFree bit.
func (p *segregated) Free(addr uint32) bool {
	m := p.m
	if addr < segBase+hdrSize || addr >= p.end || addr%8 != 0 {
		return false
	}
	blk := addr - hdrSize
	w0 := m.Rd32(blk)
	size := w0 &^ segFlags
	if w0&segFree != 0 || size < minSplit || uint64(blk)+uint64(size) > uint64(p.end) ||
		m.Rd32(blk+4) != magic {
		return false
	}
	start, s := blk, size
	if start+s < p.end {
		if nw := m.Rd32(start + s); nw&segFree != 0 {
			ns := nw &^ segFlags
			p.unlink(start+s, ns)
			s += ns
		}
	}
	if w0&segPrevFree != 0 {
		psize := m.Rd32(blk - 4) // preceding free block's footer
		prev := blk - psize
		p.unlink(prev, psize)
		start = prev
		s += psize
		// The merged header is written at prev, so blk's own header
		// words survive inside the free block. Scrub the magic, else a
		// replayed Free(addr) re-validates against the stale header and
		// corrupts the class lists (double free must report false).
		m.Wr32(blk+4, 0)
	}
	p.insert(start, s)
	if start+s < p.end {
		m.Wr32(start+s, m.Rd32(start+s)|segPrevFree)
	}
	return true
}

// freeSpans collects every free block from the class lists, unmetered.
func (p *segregated) freeSpans() []span {
	var out []span
	for c := range segBounds {
		cur := p.m.Peek32(segHeadOff(c))
		for cur != nilPtr {
			out = append(out, span{cur, p.m.Peek32(cur) &^ segFlags})
			cur = p.m.Peek32(cur + 4)
		}
	}
	return out
}

// FreeBytes implements Policy.
func (p *segregated) FreeBytes() uint32 {
	var total uint32
	for _, s := range p.freeSpans() {
		total += s.Size
	}
	return total
}

// FreeBlocks implements Policy.
func (p *segregated) FreeBlocks() int { return len(p.freeSpans()) }

// LargestFree implements Policy.
func (p *segregated) LargestFree() uint32 {
	var max uint32
	for _, s := range p.freeSpans() {
		if s.Size > max {
			max = s.Size
		}
	}
	return max
}

// CheckInvariants implements Policy: blocks tile [segBase, end) with
// consistent free/prevFree flags, footers and magics; the class lists
// hold exactly the free blocks, each on its correct class with intact
// double links; and no two free blocks are adjacent.
func (p *segregated) CheckInvariants() error {
	m := p.m
	listed := map[uint32]uint32{}
	for c := range segBounds {
		prev := uint32(nilPtr)
		cur := m.Peek32(segHeadOff(c))
		for cur != nilPtr {
			w0 := m.Peek32(cur)
			size := w0 &^ segFlags
			if w0&segFree == 0 {
				return fmt.Errorf("listed block %#x not flagged free", cur)
			}
			if segClass(size) != c {
				return fmt.Errorf("block %#x size %d on class %d, want %d", cur, size, c, segClass(size))
			}
			if got := m.Peek32(cur + 8); got != prev {
				return fmt.Errorf("block %#x prev link %#x, want %#x", cur, got, prev)
			}
			if _, dup := listed[cur]; dup {
				return fmt.Errorf("block %#x listed twice", cur)
			}
			listed[cur] = size
			prev = cur
			cur = m.Peek32(cur + 4)
		}
	}
	off := segBase
	prevFree := false
	for off < p.end {
		w0 := m.Peek32(off)
		size := w0 &^ segFlags
		free := w0&segFree != 0
		if size < minSplit || size%8 != 0 || uint64(off)+uint64(size) > uint64(p.end) {
			return fmt.Errorf("bad block size %d at %#x", size, off)
		}
		if got := w0&segPrevFree != 0; got != prevFree {
			return fmt.Errorf("block %#x prevFree=%v, want %v", off, got, prevFree)
		}
		if free {
			if prevFree {
				return fmt.Errorf("adjacent free blocks at %#x", off)
			}
			if _, ok := listed[off]; !ok {
				return fmt.Errorf("free block %#x not on any class list", off)
			}
			if f := m.Peek32(off + size - 4); f != size {
				return fmt.Errorf("block %#x footer %d, want %d", off, f, size)
			}
			delete(listed, off)
		} else if m.Peek32(off+4) != magic {
			return fmt.Errorf("live block %#x missing magic", off)
		}
		prevFree = free
		off += size
	}
	if off != p.end {
		return fmt.Errorf("blocks do not tile the heap: ended at %#x of %#x", off, p.end)
	}
	if len(listed) != 0 {
		return fmt.Errorf("%d listed blocks not found in the heap walk", len(listed))
	}
	return nil
}
