package alloc

import (
	"math/rand"
	"testing"
)

func mustPolicy(t *testing.T, kind Kind, size uint32) (Policy, *SliceMem) {
	t.Helper()
	m := NewSliceMem(size)
	p, err := New(kind, m)
	if err != nil {
		t.Fatalf("New(%v, %d): %v", kind, size, err)
	}
	return p, m
}

func TestKindParseRoundTrip(t *testing.T) {
	for k := Default; k < numKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("slab"); err == nil {
		t.Error("ParseKind accepted an unknown policy")
	}
}

func TestNewRejectsUndersizedArena(t *testing.T) {
	for _, kind := range Kinds() {
		min := MinArena(kind)
		if _, err := New(kind, NewSliceMem((min-1)&^7)); err == nil {
			t.Errorf("%v: arena below MinArena accepted", kind)
		}
		p, _ := mustPolicy(t, kind, min)
		if _, ok := p.Alloc(8, false); !ok {
			t.Errorf("%v: minimum arena cannot satisfy an 8-byte allocation", kind)
		}
	}
}

// TestAllocBasics covers, for every policy: 8-aligned payloads, calloc
// zeroing through the metered path, rejection of zero-size and
// oversized requests, double/wild-free rejection, and full recovery of
// the arena after freeing everything.
func TestAllocBasics(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, m := mustPolicy(t, kind, 1<<14)
			freeB, freeN := p.FreeBytes(), p.FreeBlocks()

			// Dirty a region first so the zeroing assertion is real.
			a0, ok := p.Alloc(256, false)
			if !ok {
				t.Fatal("alloc failed")
			}
			for i := uint32(0); i < 256; i++ {
				m.Buf[a0+i] = 0xAA
			}
			if !p.Free(a0) {
				t.Fatal("free failed")
			}

			before := m.Accesses
			a, ok := p.Alloc(100, true)
			if !ok {
				t.Fatal("alloc failed")
			}
			if a%8 != 0 {
				t.Errorf("payload %#x not 8-aligned", a)
			}
			for i := uint32(0); i < 100; i++ {
				if m.Buf[a+i] != 0 {
					t.Fatalf("byte %d not zeroed", i)
				}
			}
			if zeroCost := m.Accesses - before; zeroCost < 100/4 {
				t.Errorf("zeroing metered only %d accesses, want ≥ %d", zeroCost, 100/4)
			}

			if _, ok := p.Alloc(0, false); ok {
				t.Error("zero-size alloc succeeded")
			}
			if _, ok := p.Alloc(1<<30, false); ok {
				t.Error("oversized alloc succeeded")
			}
			if p.Free(a + 4) {
				t.Error("interior unaligned-block free accepted")
			}
			if p.Free(1 << 29) {
				t.Error("wild free accepted")
			}
			if !p.Free(a) {
				t.Fatal("free failed")
			}
			if p.Free(a) {
				t.Error("double free accepted")
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Everything returned: the arena coalesces back to its
			// initial state.
			if p.FreeBytes() != freeB || p.FreeBlocks() != freeN {
				t.Errorf("after free-all: %d bytes / %d blocks, want %d / %d",
					p.FreeBytes(), p.FreeBlocks(), freeB, freeN)
			}
		})
	}
}

// TestCoalescingBothSides frees three adjacent blocks outer-first and
// demands the policy merges the middle one with both neighbors.
func TestCoalescingBothSides(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, _ := mustPolicy(t, kind, 1<<14)
			a, _ := p.Alloc(64, false)
			b, _ := p.Alloc(64, false)
			c, _ := p.Alloc(64, false)
			if !p.Free(a) || !p.Free(c) {
				t.Fatal("frees failed")
			}
			blocksBefore := p.FreeBlocks()
			if !p.Free(b) {
				t.Fatal("middle free failed")
			}
			// Buddy only merges true buddy pairs (a is not b's buddy
			// here), so it may hold steady; the list policies and
			// segregated must merge all three into one block.
			got := p.FreeBlocks()
			if kind == Buddy {
				if got > blocksBefore {
					t.Errorf("FreeBlocks = %d, want ≤ %d", got, blocksBefore)
				}
			} else if got >= blocksBefore {
				t.Errorf("FreeBlocks = %d, want < %d (coalesced)", got, blocksBefore)
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestExhaustionAndRecovery fills a small arena to denial, then frees
// everything and demands a near-arena-sized allocation succeeds again.
func TestExhaustionAndRecovery(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			p, _ := mustPolicy(t, kind, 4096)
			large := p.LargestFree()
			var got []uint32
			for {
				a, ok := p.Alloc(32, false)
				if !ok {
					break
				}
				got = append(got, a)
			}
			if len(got) == 0 {
				t.Fatal("no allocations fit")
			}
			for _, a := range got {
				if !p.Free(a) {
					t.Fatal("free failed")
				}
			}
			if p.LargestFree() != large {
				t.Errorf("LargestFree after free-all = %d, want %d", p.LargestFree(), large)
			}
			// The biggest payload the recovered arena can hold.
			if _, ok := p.Alloc(large-hdrSize, false); !ok {
				t.Errorf("arena did not recover: %d-byte alloc failed", large-hdrSize)
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPropertyRandomWorkload is the cross-policy property test: random
// alloc/free churn with overlap tracking and periodic invariant walks.
func TestPropertyRandomWorkload(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				rng := rand.New(rand.NewSource(seed))
				p, _ := mustPolicy(t, kind, 1<<16)
				type liveBlock struct{ addr, size uint32 }
				var live []liveBlock
				for op := 0; op < 2500; op++ {
					if rng.Intn(2) == 0 || len(live) == 0 {
						n := uint32(1 + rng.Intn(512))
						if a, ok := p.Alloc(n, rng.Intn(2) == 0); ok {
							if a%8 != 0 {
								t.Fatalf("seed %d op %d: unaligned payload %#x", seed, op, a)
							}
							for _, lb := range live {
								if a < lb.addr+lb.size && lb.addr < a+n {
									t.Fatalf("seed %d op %d: overlap [%d,%d) vs [%d,%d)",
										seed, op, a, a+n, lb.addr, lb.addr+lb.size)
								}
							}
							live = append(live, liveBlock{a, n})
						}
					} else {
						i := rng.Intn(len(live))
						if !p.Free(live[i].addr) {
							t.Fatalf("seed %d op %d: free of live block failed", seed, op)
						}
						live = append(live[:i], live[i+1:]...)
					}
					if op%250 == 0 {
						if err := p.CheckInvariants(); err != nil {
							t.Fatalf("seed %d op %d: %v", seed, op, err)
						}
					}
				}
				for _, lb := range live {
					if !p.Free(lb.addr) {
						t.Fatalf("seed %d: final free failed", seed)
					}
				}
				if err := p.CheckInvariants(); err != nil {
					t.Fatalf("seed %d final: %v", seed, err)
				}
			}
		})
	}
}

// TestBestFitPicksTightestHole crafts three holes (small, exact, large)
// and checks best-fit lands in the exact one where first-fit takes the
// first that fits.
func TestBestFitPicksTightestHole(t *testing.T) {
	mk := func(kind Kind) (Policy, []uint32) {
		m := NewSliceMem(1 << 14)
		p, err := New(kind, m)
		if err != nil {
			t.Fatal(err)
		}
		// Carve: [hole 312][pin][hole 56][pin][hole 120][pin][rest].
		sizes := []uint32{312, 8, 56, 8, 120, 8}
		var addrs []uint32
		for _, s := range sizes {
			a, ok := p.Alloc(s, false)
			if !ok {
				t.Fatal("setup alloc failed")
			}
			addrs = append(addrs, a)
		}
		var holes []uint32
		for i := 0; i < len(addrs); i += 2 {
			if !p.Free(addrs[i]) {
				t.Fatal("setup free failed")
			}
			holes = append(holes, addrs[i])
		}
		return p, holes
	}
	ff, holes := mk(FirstFit)
	a, ok := ff.Alloc(56, false)
	if !ok {
		t.Fatal("first-fit alloc failed")
	}
	// First-fit allocates from the tail of the first (312-byte) hole.
	if a == holes[1] {
		t.Errorf("first-fit landed in the exact hole; expected the first")
	}
	bf, holes := mk(BestFit)
	a, ok = bf.Alloc(56, false)
	if !ok {
		t.Fatal("best-fit alloc failed")
	}
	if a != holes[1] {
		t.Errorf("best-fit payload %#x, want the exact 56-byte hole at %#x", a, holes[1])
	}
}

// TestBuddyRoundsToPowerOfTwo checks buddy's internal fragmentation
// contract: a 300-byte request consumes a 512-byte block.
func TestBuddyRoundsToPowerOfTwo(t *testing.T) {
	p, _ := mustPolicy(t, Buddy, 1<<14)
	total := p.FreeBytes()
	if _, ok := p.Alloc(300, false); !ok {
		t.Fatal("alloc failed")
	}
	if got := total - p.FreeBytes(); got != 512 {
		t.Errorf("300-byte alloc consumed %d bytes, want 512", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocCostUnderFragmentation is the unit-level form of E9's claim.
// The arena is filled to exhaustion with small/separator pairs, the
// smalls are freed (hundreds of pinned holes), and a request that fits
// no hole is probed: the address-ordered list policies walk every hole
// before denying, while buddy and segregated answer from their order /
// class tables in a near-constant number of metered accesses.
func TestAllocCostUnderFragmentation(t *testing.T) {
	costs := map[Kind]uint64{}
	holes := map[Kind]int{}
	for _, kind := range Kinds() {
		p, m := mustPolicy(t, kind, 1<<16)
		var smalls []uint32
		for {
			s, ok := p.Alloc(24, false) // will become a hole
			if !ok {
				break
			}
			if _, ok := p.Alloc(40, false); !ok { // live separator
				p.Free(s)
				break
			}
			smalls = append(smalls, s)
		}
		if len(smalls) < 300 {
			t.Fatalf("%v: only %d pairs fit; test needs heavy fragmentation", kind, len(smalls))
		}
		for _, s := range smalls {
			if !p.Free(s) {
				t.Fatalf("%v: setup free failed", kind)
			}
		}
		holes[kind] = p.FreeBlocks()
		before := m.Accesses
		if _, ok := p.Alloc(200, false); ok { // fits no small hole
			t.Fatalf("%v: probe alloc unexpectedly fit (largest free %d)", kind, p.LargestFree())
		}
		costs[kind] = m.Accesses - before
	}
	if costs[FirstFit] < uint64(holes[FirstFit]) {
		t.Errorf("first-fit probe cost %d accesses for %d holes, want ≥ one per hole",
			costs[FirstFit], holes[FirstFit])
	}
	for _, kind := range []Kind{Buddy, Segregated} {
		if costs[kind] >= costs[FirstFit]/8 {
			t.Errorf("%v probe cost %d accesses vs first-fit %d; want near-flat", kind, costs[kind], costs[FirstFit])
		}
	}
}

// TestDoubleFreeAfterBackwardCoalesce pins the reviewed segregated
// corruption: when a free is absorbed backward into its preceding free
// neighbor, the absorbed block's stale header (size + magic) used to
// survive inside the merged block, so replaying the same Free passed
// validation and corrupted the class lists. Both free orders are
// driven for every policy; the double free must report false and the
// arena must stay walkable and leak-free.
func TestDoubleFreeAfterBackwardCoalesce(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			for _, loFirst := range []bool{true, false} {
				p, _ := mustPolicy(t, kind, 1<<14)
				initB, initN := p.FreeBytes(), p.FreeBlocks()
				a, ok1 := p.Alloc(120, false)
				b, ok2 := p.Alloc(120, false)
				pin, ok3 := p.Alloc(120, false) // keeps the merge local
				if !ok1 || !ok2 || !ok3 {
					t.Fatal("setup allocs failed")
				}
				lo, hi := a, b
				if lo > hi {
					lo, hi = hi, lo
				}
				first, second := lo, hi // second absorbed backward
				if !loFirst {
					first, second = hi, lo // second absorbs forward
				}
				if !p.Free(first) || !p.Free(second) {
					t.Fatal("setup frees failed")
				}
				if p.Free(second) {
					t.Errorf("loFirst=%v: double free of coalesced block %#x accepted", loFirst, second)
				}
				if p.Free(first) {
					t.Errorf("loFirst=%v: double free of absorbed block %#x accepted", loFirst, first)
				}
				if err := p.CheckInvariants(); err != nil {
					t.Fatalf("loFirst=%v: %v", loFirst, err)
				}
				if !p.Free(pin) {
					t.Fatal("pin free failed")
				}
				if p.FreeBytes() != initB || p.FreeBlocks() != initN {
					t.Errorf("loFirst=%v: after drain %d bytes / %d blocks, want %d / %d",
						loFirst, p.FreeBytes(), p.FreeBlocks(), initB, initN)
				}
			}
		})
	}
}

// TestBuddyDoubleFreeAfterDownwardMerge pins the reviewed buddy
// corruption: when a free merges downward (the buddy is the lower
// half), the freed block's own header — size and live magic — used to
// survive inside the merged block, so a replayed Free pushed a free
// block nested inside a larger free block. The generic coalesce test
// cannot force this (its adjacent allocations are not buddy pairs), so
// this one hunts an actual low/high buddy pair first.
func TestBuddyDoubleFreeAfterDownwardMerge(t *testing.T) {
	p, _ := mustPolicy(t, Buddy, 1<<14)
	initB, initN := p.FreeBytes(), p.FreeBlocks()
	// Allocating 128-byte blocks repeatedly must eventually split a
	// 256-byte block: the low half is returned first, the pushed high
	// half on the very next call — a true buddy pair, low allocated
	// first.
	var addrs []uint32
	var lo, hi uint32
	for i := 0; i < 32 && hi == 0; i++ {
		a, ok := p.Alloc(120, false)
		if !ok {
			t.Fatal("setup alloc failed")
		}
		addrs = append(addrs, a)
		if n := len(addrs); n >= 2 {
			pb, cb := addrs[n-2]-hdrSize, a-hdrSize
			if cb == pb+128 && (pb-buddyBase)%256 == 0 {
				lo, hi = addrs[n-2], a
			}
		}
	}
	if hi == 0 {
		t.Fatal("no low/high buddy pair found")
	}
	if !p.Free(lo) {
		t.Fatal("free of low buddy failed")
	}
	if !p.Free(hi) { // merges downward: bud < blk
		t.Fatal("free of high buddy failed")
	}
	if p.Free(hi) {
		t.Error("double free after downward merge accepted")
	}
	if p.Free(lo) {
		t.Error("double free of merged block accepted")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		if a == lo || a == hi {
			continue
		}
		if !p.Free(a) {
			t.Fatalf("drain free of %#x failed", a)
		}
	}
	if p.FreeBytes() != initB || p.FreeBlocks() != initN {
		t.Errorf("after drain: %d bytes / %d blocks, want %d / %d",
			p.FreeBytes(), p.FreeBlocks(), initB, initN)
	}
}

func TestSliceMemMetering(t *testing.T) {
	m := NewSliceMem(64)
	m.Wr32(0, 42)
	if m.Rd32(0) != 42 {
		t.Error("Rd32 after Wr32 mismatch")
	}
	if m.Accesses != 2 {
		t.Errorf("Accesses = %d, want 2", m.Accesses)
	}
	if m.Peek32(0) != 42 || m.Accesses != 2 {
		t.Error("Peek32 must not meter")
	}
	if m.Size() != 64 {
		t.Errorf("Size = %d", m.Size())
	}
}

// TestSegregatedInClassScanBounded pins the fix for the reviewed
// worst case: thousands of same-class free blocks smaller than the
// request must not make Alloc linear — the in-class probe is bounded
// and the search falls through to a higher class.
func TestSegregatedInClassScanBounded(t *testing.T) {
	p, m := mustPolicy(t, Segregated, 1<<21)
	// 512-byte blocks and 700-byte requests share a class
	// ([512,768)); pin ~2000 free 512-byte holes with live separators.
	var holes []uint32
	for i := 0; i < 2000; i++ {
		h, ok1 := p.Alloc(512-hdrSize, false)
		_, ok2 := p.Alloc(24, false)
		if !ok1 || !ok2 {
			t.Fatalf("setup pair %d failed", i)
		}
		holes = append(holes, h)
	}
	for _, h := range holes {
		if !p.Free(h) {
			t.Fatal("setup free failed")
		}
	}
	before := m.Accesses
	if _, ok := p.Alloc(700-hdrSize, false); !ok {
		t.Fatal("probe alloc failed")
	}
	cost := m.Accesses - before
	if cost > uint64(segScanLimit+len(segBounds)+32) {
		t.Errorf("same-class adversary cost %d accesses; want bounded by scan limit + classes", cost)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
