package alloc

import "fmt"

// buddy is the binary buddy allocator: blocks are powers of two from
// 16 bytes (buddyMinOrder) to 64 MiB (buddyMaxOrder), one singly-linked
// free list per order with its head word in the arena's metadata
// region. A block's buddy is found by XORing its region offset with its
// size, so coalescing never walks the heap — freeing merges up the
// order ladder, allocation splits down it, and neither cost depends on
// how many free blocks exist (the property E9 measures against
// first-fit's list walk).
//
// Arenas need not be powers of two: init seeds the free lists with the
// binary decomposition of [buddyBase, end) — descending power-of-two
// top blocks whose offsets are naturally aligned — and buddy checks
// never merge across top-block boundaries because the neighbor's header
// size can never equal the block's own.
type buddy struct {
	m   Mem
	end uint32 // one past the managed region (tail slack < 16 B unmanaged)
}

const (
	buddyMinOrder = 4                                 // 16-byte minimum block
	buddyMaxOrder = 26                                // 64 MiB maximum block
	buddyOrders   = buddyMaxOrder - buddyMinOrder + 1 // free-list count
	buddyBase     = (4*buddyOrders + 7) &^ 7          // metadata bytes, 8-aligned
)

func buddyHeadOff(idx int) uint32 { return uint32(4 * idx) }

// buddyIdx maps a power-of-two size to its free-list index.
func buddyIdx(size uint32) int {
	idx := -buddyMinOrder
	for size > 1 {
		size >>= 1
		idx++
	}
	return idx
}

func newBuddy(m Mem) *buddy {
	p := &buddy{m: m}
	for i := 0; i < buddyOrders; i++ {
		m.Wr32(buddyHeadOff(i), nilPtr)
	}
	// Seed the lists with the binary decomposition of the arena:
	// descending powers of two, each naturally aligned at its offset.
	end := m.Size() &^ 7
	off := uint32(0)
	for end-buddyBase-off >= minSplit {
		rem := end - buddyBase - off
		s := uint32(1) << buddyMaxOrder
		for s > rem {
			s >>= 1
		}
		blk := buddyBase + off
		idx := buddyIdx(s)
		m.Wr32(blk, s)
		m.Wr32(blk+4, m.Rd32(buddyHeadOff(idx)))
		m.Wr32(buddyHeadOff(idx), blk)
		off += s
	}
	p.end = buddyBase + off
	return p
}

// Kind implements Policy.
func (p *buddy) Kind() Kind { return Buddy }

// Alloc implements Policy: round the request up to a power of two,
// take the smallest non-empty order at or above it, and split down.
func (p *buddy) Alloc(n uint32, zero bool) (uint32, bool) {
	if n == 0 || n > (1<<buddyMaxOrder)-hdrSize {
		return 0, false
	}
	need := align8(n) + hdrSize
	if need < minSplit {
		need = minSplit
	}
	if need > 1<<buddyMaxOrder {
		return 0, false
	}
	s := uint32(minSplit)
	for s < need {
		s <<= 1
	}
	m := p.m
	// Scan the order table upward for a non-empty list; each head probe
	// is a metered metadata access.
	idx := buddyIdx(s)
	blk := uint32(nilPtr)
	have := uint32(0)
	for i := idx; i < buddyOrders; i++ {
		if head := m.Rd32(buddyHeadOff(i)); head != nilPtr {
			blk = head
			have = 1 << (i + buddyMinOrder)
			m.Wr32(buddyHeadOff(i), m.Rd32(blk+4)) // pop
			break
		}
	}
	if blk == nilPtr {
		return 0, false
	}
	// Split down to the target order, pushing each upper half free.
	for have > s {
		have >>= 1
		bud := blk + have
		j := buddyIdx(have)
		m.Wr32(bud, have)
		m.Wr32(bud+4, m.Rd32(buddyHeadOff(j)))
		m.Wr32(buddyHeadOff(j), bud)
	}
	m.Wr32(blk, s)
	m.Wr32(blk+4, magic)
	payload := blk + hdrSize
	if zero {
		limit := blk + s
		for a := payload; a < limit; a += 4 {
			m.Wr32(a, 0)
		}
	}
	return payload, true
}

// unlink removes blk from the order-idx free list, reporting whether it
// was present. The walk is metered; list reachability is also the
// authoritative free-ness check during coalescing — a header that
// merely *looks* free never merges.
func (p *buddy) unlink(idx int, blk uint32) bool {
	m := p.m
	prev := uint32(nilPtr)
	cur := m.Rd32(buddyHeadOff(idx))
	for cur != nilPtr {
		next := m.Rd32(cur + 4)
		if cur == blk {
			if prev == nilPtr {
				m.Wr32(buddyHeadOff(idx), next)
			} else {
				m.Wr32(prev+4, next)
			}
			return true
		}
		prev = cur
		cur = next
	}
	return false
}

// Free implements Policy: validate the header, merge with the buddy as
// far up the order ladder as possible, and push the result.
func (p *buddy) Free(addr uint32) bool {
	m := p.m
	if addr < buddyBase+hdrSize || addr >= p.end || (addr-hdrSize-buddyBase)%8 != 0 {
		return false
	}
	blk := addr - hdrSize
	s := m.Rd32(blk)
	if s < minSplit || s > 1<<buddyMaxOrder || s&(s-1) != 0 ||
		(blk-buddyBase)%s != 0 || uint64(blk)+uint64(s) > uint64(p.end) ||
		m.Rd32(blk+4) != magic {
		return false
	}
	for s < 1<<buddyMaxOrder {
		bud := buddyBase + ((blk - buddyBase) ^ s)
		if bud >= p.end || uint64(bud)+uint64(s) > uint64(p.end) {
			break
		}
		if m.Rd32(bud) != s || m.Rd32(bud+4) == magic {
			break
		}
		if !p.unlink(buddyIdx(s), bud) {
			break // header coincidence, not a free block
		}
		if bud < blk {
			// Merging downward: the merged header lands at bud, so blk's
			// own header (size and live magic) would survive inside the
			// free block and let a replayed Free(addr) re-validate,
			// pushing a free block nested inside a larger one. Scrub the
			// magic of the absorbed half.
			m.Wr32(blk+4, 0)
			blk = bud
		}
		s <<= 1
	}
	idx := buddyIdx(s)
	m.Wr32(blk, s)
	m.Wr32(blk+4, m.Rd32(buddyHeadOff(idx)))
	m.Wr32(buddyHeadOff(idx), blk)
	return true
}

// freeSpans collects every free block from the order lists, unmetered.
func (p *buddy) freeSpans() []span {
	var out []span
	for i := 0; i < buddyOrders; i++ {
		cur := p.m.Peek32(buddyHeadOff(i))
		for cur != nilPtr {
			out = append(out, span{cur, uint32(1) << (i + buddyMinOrder)})
			cur = p.m.Peek32(cur + 4)
		}
	}
	return out
}

// FreeBytes implements Policy.
func (p *buddy) FreeBytes() uint32 {
	var total uint32
	for _, s := range p.freeSpans() {
		total += s.Size
	}
	return total
}

// FreeBlocks implements Policy.
func (p *buddy) FreeBlocks() int { return len(p.freeSpans()) }

// LargestFree implements Policy.
func (p *buddy) LargestFree() uint32 {
	var max uint32
	for _, s := range p.freeSpans() {
		if s.Size > max {
			max = s.Size
		}
	}
	return max
}

// CheckInvariants implements Policy: every listed free block is sized
// and aligned for its order, blocks tile the managed region exactly,
// and no two free buddies coexist unmerged.
func (p *buddy) CheckInvariants() error {
	m := p.m
	free := map[uint32]uint32{}
	for i := 0; i < buddyOrders; i++ {
		size := uint32(1) << (i + buddyMinOrder)
		cur := m.Peek32(buddyHeadOff(i))
		for cur != nilPtr {
			if got := m.Peek32(cur); got != size {
				return fmt.Errorf("free block %#x on order-%d list has size %d", cur, i+buddyMinOrder, got)
			}
			if cur < buddyBase || (cur-buddyBase)%size != 0 || uint64(cur)+uint64(size) > uint64(p.end) {
				return fmt.Errorf("free block %#x size %d misaligned or out of bounds", cur, size)
			}
			if _, dup := free[cur]; dup {
				return fmt.Errorf("free block %#x listed twice", cur)
			}
			free[cur] = size
			cur = m.Peek32(cur + 4)
		}
	}
	for blk, size := range free {
		bud := buddyBase + ((blk - buddyBase) ^ size)
		if bsize, ok := free[bud]; ok && bsize == size && uint64(bud)+uint64(size) <= uint64(p.end) {
			return fmt.Errorf("free buddies %#x and %#x (size %d) not merged", blk, bud, size)
		}
	}
	// Blocks tile the managed region: every block start carries either a
	// listed free header or the allocation magic.
	off := uint32(buddyBase)
	for off < p.end {
		size := m.Peek32(off)
		if size < minSplit || size&(size-1) != 0 || (off-buddyBase)%size != 0 ||
			uint64(off)+uint64(size) > uint64(p.end) {
			return fmt.Errorf("bad block size %d at %#x", size, off)
		}
		if _, isFree := free[off]; isFree {
			delete(free, off)
		} else if m.Peek32(off+4) != magic {
			return fmt.Errorf("block at %#x neither free nor allocated", off)
		}
		off += size
	}
	if off != p.end {
		return fmt.Errorf("blocks do not tile the region: ended at %#x of %#x", off, p.end)
	}
	// Every listed free block must have been a block start in the walk:
	// a leftover is a free block nested inside another block (the
	// signature of an accepted double free).
	if len(free) != 0 {
		return fmt.Errorf("%d listed free blocks not reached by the tiling walk", len(free))
	}
	return nil
}
