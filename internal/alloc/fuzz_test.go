package alloc

import (
	"fmt"
	"testing"
)

// FuzzPolicies drives every policy through the same fuzzer-chosen
// alloc/free script and checks the universal allocator invariants:
//
//   - payloads are 8-aligned and never overlap a live block
//   - calloc-zeroing really zeroes
//   - frees of live payloads succeed; structurally invalid addresses
//     (out of range, unaligned) are rejected
//   - double frees — replays of retired payload addresses, including
//     ones whose first free coalesced into a neighbor — are rejected
//   - after freeing everything, the arena recovers exactly its initial
//     free-space shape (zero leaks, full coalescing)
//   - the policy's CheckInvariants walk stays clean throughout
//
// The script bytes decode to ops of 3 bytes each: the first selects
// alloc (with zeroing bit) / free-live / free-invalid or free-retired,
// the next two the size or target. Deterministic seeds live under
// testdata/fuzz/FuzzPolicies; CI runs a 30-second -fuzz smoke on top.
//
// Wild frees of addresses *inside* live payloads are deliberately not
// generated: like the hardware model it reproduces, the allocator
// validates frees with an in-band magic heuristic, so payload bytes
// that happen to spell a header can defeat it — the documented trust
// boundary of the detailed model.
func FuzzPolicies(f *testing.F) {
	f.Add([]byte{0x00, 0x20, 0x00, 0x01, 0x08, 0x01, 0x40, 0x00, 0x00, 0x02, 0xFF, 0xFF})
	f.Add([]byte{0x00, 0x01, 0x00, 0x00, 0xFF, 0x07, 0x40, 0x01, 0x00, 0x40, 0x02, 0x00, 0x02, 0x03, 0x04})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, kind := range Kinds() {
			runFuzzScript(t, kind, data)
		}
	})
}

type fuzzBlock struct {
	addr, size uint32
}

func runFuzzScript(t *testing.T, kind Kind, data []byte) {
	const arena = 1 << 15
	m := NewSliceMem(arena)
	p, err := New(kind, m)
	if err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	initBytes, initBlocks, initLargest := p.FreeBytes(), p.FreeBlocks(), p.LargestFree()

	var live []fuzzBlock
	var retired []uint32 // previously freed payload addresses
	isLive := func(addr uint32) bool {
		for _, b := range live {
			if b.addr == addr {
				return true
			}
		}
		return false
	}
	fail := func(format string, args ...interface{}) {
		t.Fatalf("%v: %s", kind, fmt.Sprintf(format, args...))
	}
	step := 0
	for i := 0; i+2 < len(data); i += 3 {
		op, lo, hi := data[i], data[i+1], data[i+2]
		switch op % 8 {
		case 0, 1, 2, 3: // alloc
			n := uint32(lo) | uint32(hi)<<8
			if n == 0 {
				n = 1
			}
			zero := op&8 != 0
			addr, ok := p.Alloc(n, zero)
			if !ok {
				break
			}
			if addr%8 != 0 {
				fail("step %d: payload %#x not 8-aligned", step, addr)
			}
			if uint64(addr)+uint64(n) > arena {
				fail("step %d: payload [%d,%d) beyond arena", step, addr, addr+n)
			}
			for _, b := range live {
				if addr < b.addr+b.size && b.addr < addr+n {
					fail("step %d: overlap [%d,%d) vs [%d,%d)", step, addr, addr+n, b.addr, b.addr+b.size)
				}
			}
			if zero {
				for j := uint32(0); j < n; j++ {
					if m.Buf[addr+j] != 0 {
						fail("step %d: byte %d of zeroed alloc not zero", step, j)
					}
				}
			} else {
				// Dirty the payload so later zeroing checks are real.
				for j := uint32(0); j < n; j++ {
					m.Buf[addr+j] = 0x5A
				}
			}
			live = append(live, fuzzBlock{addr, n})
		case 4, 5, 6: // free a live block
			if len(live) == 0 {
				break
			}
			idx := (int(lo) | int(hi)<<8) % len(live)
			b := live[idx]
			if !p.Free(b.addr) {
				fail("step %d: free of live payload %#x failed", step, b.addr)
			}
			live = append(live[:idx], live[idx+1:]...)
			retired = append(retired, b.addr)
		case 7: // invalid free: structural, or a replayed retired pointer
			if op&16 != 0 && len(retired) > 0 {
				// Double free: replay a previously freed payload address.
				// The block may since have been absorbed into a coalesced
				// neighbor — exactly the case where a stale header could
				// survive and defeat validation. Skip addresses a later
				// alloc legitimately recycled as a live payload.
				addr := retired[(int(lo)|int(hi)<<8)%len(retired)]
				if isLive(addr) {
					break
				}
				if p.Free(addr) {
					fail("step %d: double free of retired payload %#x accepted", step, addr)
				}
				break
			}
			addr := uint32(lo) | uint32(hi)<<8
			// Pick a deterministically invalid shape: unaligned, or out
			// of range past the arena.
			if op&8 != 0 {
				addr |= 1 // unaligned
			} else {
				addr += arena // out of range
			}
			if p.Free(addr) {
				fail("step %d: invalid free of %#x accepted", step, addr)
			}
		}
		step++
		if step%64 == 0 {
			if err := p.CheckInvariants(); err != nil {
				fail("step %d: %v", step, err)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		fail("final (pre-drain): %v", err)
	}
	// Drain: free everything and demand full recovery.
	for _, b := range live {
		if !p.Free(b.addr) {
			fail("drain: free of %#x failed", b.addr)
		}
	}
	if p.FreeBytes() != initBytes || p.FreeBlocks() != initBlocks || p.LargestFree() != initLargest {
		fail("leak or missed coalesce after drain: %d bytes / %d blocks / largest %d, want %d / %d / %d",
			p.FreeBytes(), p.FreeBlocks(), p.LargestFree(), initBytes, initBlocks, initLargest)
	}
	if err := p.CheckInvariants(); err != nil {
		fail("after drain: %v", err)
	}
}
