// Package alloc is the pluggable allocation-policy engine behind the
// repo's two dynamic-memory consumers: the detailed in-simulation
// allocator (internal/heapsim, metadata lives in simulated memory and
// every word access is charged cycles) and the host-backed wrapper's
// virtual-address placement (internal/core, opt-in).
//
// A Policy is a pure state machine over an abstract word-addressed
// arena (the Mem interface). All allocator metadata — free-list heads,
// block headers, links, footers — lives *inside* the arena and is
// touched exclusively through Mem.Rd32/Wr32, which the consumer meters:
// heapsim counts each call as one simulated 32-bit memory access and
// multiplies by its WordLatency, so malloc/free cost emerges from the
// data-structure traffic exactly as in the pre-extraction model.
// Peek32 is the unmetered inspection path (invariant checks,
// fragmentation gauges, zero-fill bounds the manager already knows).
//
// Four policies are provided:
//
//   - FirstFit: K&R-style address-ordered free list, first block that
//     fits. Byte- and access-identical to the historical heapsim
//     allocator (proven by the golden differential test there).
//   - BestFit: same layout, but the full list is walked and the
//     smallest fitting block wins — lower fragmentation, every alloc
//     pays a full walk.
//   - Buddy: binary buddy system with per-order free lists. Alloc and
//     free cost O(log) splits/merges, near-constant in fragmentation;
//     internal fragmentation up to 2x from power-of-two rounding.
//   - Segregated: TLSF-style segregated free lists over size classes
//     with doubly-linked blocks and boundary-tag coalescing —
//     near-constant alloc/free independent of free-block count.
//
// # Selection and determinism
//
// Kind names a policy the way the -alloc command-line flags spell it
// (ParseKind converts); the zero value Default preserves each
// consumer's historical behavior bit-for-bit, so pre-policy runs stay
// reproducible. Policies are deterministic: the same op sequence
// against the same arena produces the same placements, which is what
// lets experiment E9 and the churn workloads (internal/workload)
// compare policies on identical scripts, and what lets snapshots
// (internal/snapshot) capture allocator state by capturing the arena
// bytes alone — no Go-side policy state exists to save.
//
// # Metering invariant
//
// Because metadata lives in the arena, simulated cost is not modeled,
// it is *incurred*: a policy with longer free-list walks performs more
// Rd32 calls, and the consumer's metering turns exactly those calls
// into simulated cycles. The fuzz and differential tests hold every
// policy to the shared invariants (no overlap, alignment, exhaustive
// free coalescing where the layout promises it).
package alloc
