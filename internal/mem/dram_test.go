package mem

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

type dramHarness struct {
	t    *testing.T
	k    *sim.Kernel
	link *bus.Port
	r    *DRAM
}

func newDRAMHarness(t *testing.T, cfg DRAMConfig) *dramHarness {
	t.Helper()
	k := sim.New()
	link := bus.NewLink(k, "t")
	r, err := NewDRAMOn(k, cfg, link)
	if err != nil {
		t.Fatal(err)
	}
	return &dramHarness{t: t, k: k, link: link, r: r}
}

func (h *dramHarness) do(req bus.Request) (bus.Response, uint64) {
	h.t.Helper()
	start := h.k.Cycle()
	h.link.Issue(req)
	for i := 0; i < 100000; i++ {
		if err := h.k.Step(); err != nil {
			h.t.Fatal(err)
		}
		if resp, ok := h.link.Response(); ok {
			return resp, h.k.Cycle() - start
		}
	}
	h.t.Fatalf("transaction %v did not complete", req)
	return bus.Response{}, 0
}

func (h *dramHarness) read(addr uint32) uint64 {
	h.t.Helper()
	resp, n := h.do(bus.Request{Op: bus.OpRead, VPtr: addr, DType: bus.U32})
	if resp.Err != bus.OK {
		h.t.Fatalf("read %#x: %v", addr, resp.Err)
	}
	return n
}

// testTiming has distinct, hand-checkable hit/miss/conflict costs.
var testTiming = DRAMTiming{Decode: 1, RowHit: 2, RowMiss: 6, RowConflict: 11, BurstPerElem: 1}

// wireOverhead measures the fixed port/FSM cost of a scalar read with
// every configured latency at zero, so the policy tests can assert
// absolute cycle counts as wire + Decode + <hand-computed row cost>.
func wireOverhead(t *testing.T) uint64 {
	h := newDRAMHarness(t, DRAMConfig{Size: 4096, Banks: 1})
	return h.read(0)
}

func TestDRAMOpenPagePolicy(t *testing.T) {
	wire := wireOverhead(t)
	// One bank, 128-byte rows: row = addr/128.
	h := newDRAMHarness(t, DRAMConfig{
		Size: 4096, Banks: 1, RowBytes: 128, Interleave: 64, Timing: testTiming,
	})
	base := wire + uint64(testTiming.Decode)
	// Cold bank: activate (row miss).
	if n := h.read(0); n != base+uint64(testTiming.RowMiss) {
		t.Errorf("cold read took %d cycles, want %d", n, base+uint64(testTiming.RowMiss))
	}
	// Same row: CAS only.
	if n := h.read(64); n != base+uint64(testTiming.RowHit) {
		t.Errorf("row-hit read took %d cycles, want %d", n, base+uint64(testTiming.RowHit))
	}
	// Different row, same bank: precharge + activate.
	if n := h.read(256); n != base+uint64(testTiming.RowConflict) {
		t.Errorf("row-conflict read took %d cycles, want %d", n, base+uint64(testTiming.RowConflict))
	}
	// Back to the first row: conflict again.
	if n := h.read(0); n != base+uint64(testTiming.RowConflict) {
		t.Errorf("return read took %d cycles, want %d", n, base+uint64(testTiming.RowConflict))
	}
	st := h.r.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 || st.RowConflicts != 2 {
		t.Errorf("stats = hits %d / misses %d / conflicts %d, want 1/1/2",
			st.RowHits, st.RowMisses, st.RowConflicts)
	}
}

func TestDRAMClosePagePolicy(t *testing.T) {
	wire := wireOverhead(t)
	h := newDRAMHarness(t, DRAMConfig{
		Size: 4096, Banks: 1, RowBytes: 128, Interleave: 64,
		ClosePage: true, Timing: testTiming,
	})
	want := wire + uint64(testTiming.Decode) + uint64(testTiming.RowMiss)
	for _, addr := range []uint32{0, 64, 256, 0} {
		if n := h.read(addr); n != want {
			t.Errorf("close-page read %#x took %d cycles, want %d", addr, n, want)
		}
	}
	st := h.r.Stats()
	if st.RowHits != 0 || st.RowConflicts != 0 || st.RowMisses != 4 {
		t.Errorf("stats = hits %d / misses %d / conflicts %d, want 0/4/0",
			st.RowHits, st.RowMisses, st.RowConflicts)
	}
}

func TestDRAMBankInterleave(t *testing.T) {
	// Two banks interleaved at 64 bytes: addr 0 → bank 0, addr 64 →
	// bank 1, addr 128 → bank 0 again (same row as addr 0: rows are
	// 128 bytes, so bank 0's row 0 covers frames 0 and 128).
	h := newDRAMHarness(t, DRAMConfig{
		Size: 4096, Banks: 2, RowBytes: 128, Interleave: 64, Timing: testTiming,
	})
	h.read(0)   // bank 0: miss
	h.read(64)  // bank 1: miss — does not disturb bank 0's open row
	h.read(128) // bank 0, frame 1 of row 0: hit
	h.read(0)   // bank 0, frame 0 of row 0: still a hit
	st := h.r.Stats()
	if st.RowMisses != 2 || st.RowHits != 2 || st.RowConflicts != 0 {
		t.Errorf("stats = hits %d / misses %d / conflicts %d, want 2/2/0",
			st.RowHits, st.RowMisses, st.RowConflicts)
	}
}

func TestDRAMBurstTransfer(t *testing.T) {
	h := newDRAMHarness(t, DRAMConfig{
		Size: 4096, Banks: 1, RowBytes: 128, Interleave: 64, Timing: testTiming,
	})
	// An 8-element burst to a cold bank: decode + activate + 8 transfer
	// cycles on top of the fixed wire overhead, measured against the
	// same burst on a zero-latency device.
	zero := newDRAMHarness(t, DRAMConfig{Size: 4096, Banks: 1})
	burst := bus.Request{Op: bus.OpReadBurst, VPtr: 0, Dim: 8, DType: bus.U32}
	_, zn := zero.do(burst)
	_, n := h.do(burst)
	want := zn + uint64(testTiming.Decode) + uint64(testTiming.RowMiss) + 8*uint64(testTiming.BurstPerElem)
	if n != want {
		t.Errorf("burst took %d cycles, want %d (zero-latency %d + decode + activate + transfer)", n, want, zn)
	}
}

func TestDRAMRefresh(t *testing.T) {
	cfg := DRAMConfig{
		Size: 4096, Banks: 1, RowBytes: 128, Interleave: 64, Timing: testTiming,
		RefreshPeriod: 500, RefreshCycles: 40,
	}
	// Part 1: an access whose exec entry lands inside the refresh window
	// is pushed to the window's end. Steady-state reference first.
	h := newDRAMHarness(t, cfg)
	normal := h.read(0) // cold miss, away from any window (cycle ~0 is
	// inside window 0's [0, 40) stall — so take a post-stall reference
	// instead below.
	h2 := newDRAMHarness(t, cfg)
	if err := h2.k.Run(100); err != nil { // past window 0's stall
		t.Fatal(err)
	}
	clean := h2.read(0)
	st := h.r.Stats()
	if st.RefreshStalls != 1 {
		t.Fatalf("cold access at cycle 0 should hit refresh window 0: stalls = %d", st.RefreshStalls)
	}
	if normal != clean+st.RefreshStallCycles {
		t.Errorf("stalled read took %d cycles, want clean %d + stall %d",
			normal, clean, st.RefreshStallCycles)
	}
	// Part 2: a refresh closes open rows — the same address that would
	// be a row hit within one window is a row miss after the boundary.
	if err := h2.k.Run(200); err != nil { // still inside window 0
		t.Fatal(err)
	}
	h2.read(0)                            // row hit: row opened in window 0, still window 0
	if err := h2.k.Run(300); err != nil { // cross into window 1, past its stall
		t.Fatal(err)
	}
	h2.read(0) // row re-activate: refresh precharged the bank
	st2 := h2.r.Stats()
	if st2.RowHits != 1 || st2.RowMisses != 2 {
		t.Errorf("stats = hits %d / misses %d, want 1 hit (same window) and 2 misses (cold + post-refresh)",
			st2.RowHits, st2.RowMisses)
	}
}

// TestDRAMStaticEquivalence pins the flat-timing regression: a DRAM
// with uniform row latencies, one bank and refresh off is
// cycle-identical and bit-identical to a StaticRAM with the matching
// Delays on any request sequence. This is the "DRAM off" guarantee in
// module form — the static path itself is untouched and stays pinned
// by the PR 7 goldens.
func TestDRAMStaticEquivalence(t *testing.T) {
	static := newHarness(t, Config{Size: 1024, Delays: Delays{
		Decode: 1, Read: 3, Write: 3, BurstBase: 3, BurstPerElem: 2,
	}})
	dram := newDRAMHarness(t, DRAMConfig{Size: 1024, Banks: 1, Timing: DRAMTiming{
		Decode: 1, RowHit: 3, RowMiss: 3, RowConflict: 3, BurstPerElem: 2,
	}})
	script := []bus.Request{
		{Op: bus.OpWrite, VPtr: 16, Data: 0xA1B2, DType: bus.U32},
		{Op: bus.OpRead, VPtr: 16, DType: bus.U32},
		{Op: bus.OpWriteBurst, VPtr: 64, Burst: []uint32{1, 2, 3, 4}, DType: bus.U32},
		{Op: bus.OpReadBurst, VPtr: 64, Dim: 4, DType: bus.U32},
		{Op: bus.OpRead, VPtr: 500, DType: bus.U16},
		{Op: bus.OpWrite, VPtr: 999, Data: 7, DType: bus.U8},
		{Op: bus.OpRead, VPtr: 2000, DType: bus.U32}, // bounds error
		{Op: bus.OpAlloc, Dim: 4, DType: bus.U32},    // bad op
		{Op: bus.OpReadBurst, VPtr: 0, Dim: 8, DType: bus.U16},
	}
	for i, req := range script {
		sr, sn := static.do(req)
		dr, dn := dram.do(req)
		if sr.Err != dr.Err || sr.Data != dr.Data || len(sr.Burst) != len(dr.Burst) {
			t.Fatalf("req %d %v: static %v vs dram %v", i, req, sr, dr)
		}
		for j := range sr.Burst {
			if sr.Burst[j] != dr.Burst[j] {
				t.Fatalf("req %d %v: burst elem %d differs", i, req, j)
			}
		}
		if sn != dn {
			t.Errorf("req %d %v: static took %d cycles, dram %d", i, req, sn, dn)
		}
	}
}

func TestDRAMSnapshotRoundTrip(t *testing.T) {
	cfg := DRAMConfig{
		Size: 2048, Banks: 2, RowBytes: 128, Interleave: 64, Timing: testTiming,
		RefreshPeriod: 1000, RefreshCycles: 20,
	}
	h := newDRAMHarness(t, cfg)
	if err := h.k.Run(50); err != nil {
		t.Fatal(err)
	}
	h.do(bus.Request{Op: bus.OpWrite, VPtr: 100, Data: 0xFACE, DType: bus.U32})
	h.read(0) // opens bank 0 row 0
	enc := &snapshot.Encoder{}
	h.r.SaveState(enc)

	h2 := newDRAMHarness(t, cfg)
	if err := h2.k.Run(h.k.Cycle()); err != nil { // align cycle counts (refresh epochs)
		t.Fatal(err)
	}
	if err := h2.r.RestoreState(snapshot.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := h2.r.Peek(100); got != 0xCE {
		t.Errorf("restored image byte = %#x, want 0xce", got)
	}
	if h2.r.Stats() != h.r.Stats() {
		t.Errorf("restored stats differ: %+v vs %+v", h2.r.Stats(), h.r.Stats())
	}
	// The restored bank row-buffer state must behave identically: the
	// next access to the open row is a hit on both.
	n1 := h.read(64)
	n2 := h2.read(64)
	if n1 != n2 {
		t.Errorf("post-restore read took %d cycles on original, %d on restored", n1, n2)
	}
	if h2.r.Stats().RowHits != h.r.Stats().RowHits {
		t.Errorf("post-restore row hits differ")
	}
}
