package mem

import (
	"repro/internal/bus"
)

// executeTable implements the flat table-memory operation semantics
// shared by StaticRAM and DRAM: a fixed little-endian byte array
// addressed directly by VPtr, dynamic operations rejected with
// ErrBadOp. burstElems is bumped by the element count of burst
// operations.
func executeTable(data []byte, req bus.Request, burstElems *uint64) bus.Response {
	inBounds := func(addr, n uint32) bool {
		return uint64(addr)+uint64(n) <= uint64(len(data))
	}
	es := req.DType.Size()
	switch req.Op {
	case bus.OpRead:
		if !inBounds(req.VPtr, es) {
			return bus.Response{Err: bus.ErrBounds}
		}
		return bus.Response{Data: req.DType.ReadElem(data[req.VPtr:])}

	case bus.OpWrite:
		if !inBounds(req.VPtr, es) {
			return bus.Response{Err: bus.ErrBounds}
		}
		req.DType.WriteElem(data[req.VPtr:], req.Data)
		return bus.Response{}

	case bus.OpReadBurst:
		if !inBounds(req.VPtr, es*req.Dim) {
			return bus.Response{Err: bus.ErrBounds}
		}
		out := make([]uint32, req.Dim)
		for i := uint32(0); i < req.Dim; i++ {
			out[i] = req.DType.ReadElem(data[req.VPtr+i*es:])
		}
		*burstElems += uint64(req.Dim)
		return bus.Response{Burst: out}

	case bus.OpWriteBurst:
		n := uint32(len(req.Burst))
		if !inBounds(req.VPtr, es*n) {
			return bus.Response{Err: bus.ErrBounds}
		}
		for i, v := range req.Burst {
			req.DType.WriteElem(data[req.VPtr+uint32(i)*es:], v)
		}
		*burstElems += uint64(n)
		return bus.Response{}

	default:
		// Flat tables have no dynamic operations.
		return bus.Response{Err: bus.ErrBadOp}
	}
}
