package mem

import (
	"repro/internal/bus"
	"repro/internal/sim"
)

// Delays are the static RAM's timing parameters, a subset of the
// wrapper's: static memories have no allocation path.
type Delays struct {
	Decode       uint32
	Read         uint32
	Write        uint32
	BurstBase    uint32
	BurstPerElem uint32
}

// DefaultDelays matches the wrapper's default scalar timings so that E2
// compares functional overhead, not configured latency.
func DefaultDelays() Delays {
	return Delays{Decode: 1, Read: 1, Write: 1, BurstBase: 1, BurstPerElem: 1}
}

// Config parameterizes a StaticRAM.
type Config struct {
	// Name labels the module.
	Name string
	// Size is the table size in bytes, allocated in full at construction
	// (that is the point of the static model).
	Size uint32
	// Delays are the timing parameters; zero values mean minimum latency.
	Delays Delays
}

// Stats counts memory activity.
type Stats struct {
	Ops        [bus.NumOps]uint64
	Errors     [bus.NumOps]uint64
	BusyCycles uint64
	BurstElems uint64
}

type ramState uint8

const (
	ramIdle ramState = iota
	ramDecode
	ramExec
)

// StaticRAM is a table memory module: a fixed little-endian byte array
// addressed directly by VPtr. Dynamic operations answer ErrBadOp.
type StaticRAM struct {
	cfg  Config
	port *bus.Port
	data []byte

	state  ramState
	wait   uint32
	cur    bus.Request
	curTag bus.Tag

	// in holds the input registers sampled every cycle; like the
	// wrapper, the static RAM is a cycle-true module evaluated
	// unconditionally each clock (see core.Wrapper's ioRegs note).
	in struct {
		pending bool
		op      bus.Op
		vptr    uint32
		data    uint32
		dim     uint32
		dtype   bus.DataType
	}

	stats Stats
}

// NewStaticRAM creates the module, allocates its full table, and
// registers it with the kernel.
func NewStaticRAM(k *sim.Kernel, cfg Config, port *bus.Port) *StaticRAM {
	if cfg.Name == "" {
		cfg.Name = "sram"
	}
	r := &StaticRAM{cfg: cfg, port: port, data: make([]byte, cfg.Size)}
	k.Add(r)
	return r
}

// Name implements sim.Module.
func (r *StaticRAM) Name() string { return r.cfg.Name }

// Stats returns a snapshot of the counters.
func (r *StaticRAM) Stats() Stats { return r.stats }

// Size returns the configured table size in bytes.
func (r *StaticRAM) Size() uint32 { return r.cfg.Size }

// Peek returns the byte at addr for white-box tests.
func (r *StaticRAM) Peek(addr uint32) byte { return r.data[addr] }

func (r *StaticRAM) opCycles(req bus.Request) uint32 {
	d := r.cfg.Delays
	switch req.Op {
	case bus.OpRead:
		return d.Read
	case bus.OpWrite:
		return d.Write
	case bus.OpReadBurst:
		return d.BurstBase + d.BurstPerElem*req.Dim
	case bus.OpWriteBurst:
		return d.BurstBase + d.BurstPerElem*uint32(len(req.Burst))
	default:
		return 0
	}
}

// Tick implements sim.Module with the same three-state engine as the
// wrapper, so the two models differ only functionally.
func (r *StaticRAM) Tick(cycle uint64) {
	if q, ok := r.port.Peek(); ok {
		r.in.pending = true
		r.in.op, r.in.vptr, r.in.data, r.in.dim, r.in.dtype = q.Op, q.VPtr, q.Data, q.Dim, q.DType
	} else {
		r.in.pending = false
		r.in.op, r.in.vptr, r.in.data, r.in.dim, r.in.dtype = 0, 0, 0, 0, 0
	}
	switch r.state {
	case ramIdle:
		tx, ok := r.port.Pop()
		if !ok {
			return
		}
		r.cur = tx.Req
		r.curTag = tx.Tag
		r.stats.BusyCycles++
		r.wait = r.cfg.Delays.Decode
		r.state = ramDecode
		if r.wait == 0 {
			r.enterExec()
			r.maybeFinish()
		}
	case ramDecode:
		r.stats.BusyCycles++
		r.wait--
		if r.wait == 0 {
			r.enterExec()
			r.maybeFinish()
		}
	case ramExec:
		r.stats.BusyCycles++
		r.wait--
		r.maybeFinish()
	}
}

// NextWake implements sim.Sleeper; see core.Wrapper.NextWake — the
// static RAM runs the same three-state FSM, so the same reasoning
// applies: idle waits on a signal, Decode/Exec are pure countdowns.
func (r *StaticRAM) NextWake(now uint64) uint64 {
	if r.state == ramIdle {
		if r.port.Pending() {
			return now
		}
		return sim.WakeNever
	}
	if r.wait <= 1 {
		return now
	}
	return now + uint64(r.wait) - 1
}

// ConcurrentTick implements sim.Concurrent: the static RAM's Tick is
// confined to its own table, FSM registers and stats, plus the slave
// side of its link. Safe to tick concurrently.
func (r *StaticRAM) ConcurrentTick() bool { return true }

// TickWeight implements sim.Weighted: a table RAM's tick is an input
// latch plus a countdown — cheap.
func (r *StaticRAM) TickWeight() int { return 3 }

// Skip implements sim.Sleeper: n countdown ticks, each a busy cycle.
func (r *StaticRAM) Skip(n uint64) {
	if r.state == ramIdle {
		return
	}
	r.wait -= uint32(n)
	r.stats.BusyCycles += n
}

func (r *StaticRAM) enterExec() {
	r.wait = r.opCycles(r.cur)
	r.state = ramExec
}

func (r *StaticRAM) maybeFinish() {
	if r.state != ramExec || r.wait > 0 {
		return
	}
	resp := r.execute(r.cur)
	if op := int(r.cur.Op); op < bus.NumOps {
		r.stats.Ops[op]++
		if resp.Err != bus.OK {
			r.stats.Errors[op]++
		}
	}
	r.port.Complete(r.curTag, resp)
	r.cur = bus.Request{}
	r.state = ramIdle
}

func (r *StaticRAM) execute(req bus.Request) bus.Response {
	return executeTable(r.data, req, &r.stats.BurstElems)
}
