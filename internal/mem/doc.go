// Package mem implements the traditional memory model the paper contrasts
// against: a static table memory. The entire simulated address range is
// backed by a fixed array allocated up front ("static memories implemented
// as tables"), addresses are plain offsets, and dynamic operations
// (alloc/free/reserve) do not exist at the hardware level — software that
// needs dynamic data over a static memory must manage it itself.
//
// StaticRAM serves the same bus protocol as the dynamic wrapper so that
// experiment E2 can replay identical traffic against both models and
// measure the wrapper's overhead, and E6 can show where the static table
// stops scaling (its capacity is paid in host memory at construction
// time, whether used or not).
package mem
