package mem

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/sim"
)

// DRAMTiming is the banked DRAM's latency model. All values are cycles
// added to the access in the exec phase; zero values mean minimum
// latency (useful for functional-only runs and the static-equivalence
// regression).
type DRAMTiming struct {
	// Decode is the request decode latency, charged before the bank
	// model is consulted (the analogue of Delays.Decode).
	Decode uint32
	// RowHit is the cost of an access to the currently open row of its
	// bank (CAS only).
	RowHit uint32
	// RowMiss is the cost of an access to a bank with no open row
	// (activate + CAS).
	RowMiss uint32
	// RowConflict is the cost of an access to a bank whose open row
	// differs (precharge + activate + CAS).
	RowConflict uint32
	// BurstPerElem is the per-element transfer cost of bursts, added on
	// top of the row latency of the burst's first element.
	BurstPerElem uint32
}

// DefaultDRAMTiming returns a latency set with the classic hit < miss <
// conflict ordering, scaled so that a row conflict costs roughly an
// order of magnitude more than an L2 hit would.
func DefaultDRAMTiming() DRAMTiming {
	return DRAMTiming{Decode: 1, RowHit: 2, RowMiss: 6, RowConflict: 11, BurstPerElem: 1}
}

// DRAMConfig parameterizes a DRAM module.
type DRAMConfig struct {
	// Name labels the module.
	Name string
	// Size is the table size in bytes.
	Size uint32
	// Banks is the number of independent banks, a power of two
	// (default 4).
	Banks int
	// RowBytes is the per-bank row-buffer size in bytes, a power of two
	// and a multiple of Interleave (default 1024).
	RowBytes uint32
	// Interleave is the bank-interleave granularity: consecutive
	// Interleave-byte blocks map to consecutive banks. A power of two,
	// default 64 (two 32-byte cache lines).
	Interleave uint32
	// ClosePage selects the close-page policy: every access pays the
	// activate cost (RowMiss) and the bank auto-precharges, trading the
	// open-page row-hit fast path for conflict-free worst-case latency.
	// Default is open-page: the row stays open until a conflicting
	// access or a refresh closes it.
	ClosePage bool
	// Timing is the latency model; the zero value means minimum latency.
	Timing DRAMTiming
	// RefreshPeriod, when non-zero, stalls the whole device for
	// RefreshCycles at the start of every RefreshPeriod-cycle window and
	// closes every open row (all banks precharge for refresh).
	RefreshPeriod uint64
	// RefreshCycles is the length of each refresh stall.
	RefreshCycles uint32
}

// DRAMStats extends the table-memory counters with row-buffer and
// refresh accounting. All counters are event counts except the two
// cycle tallies, which are functions of deterministic service cycles —
// identical across every kernel scheduling mode either way.
type DRAMStats struct {
	Stats
	// RowHits, RowMisses and RowConflicts classify every bank access:
	// open-row hit, closed-bank activate, open-row conflict. Close-page
	// mode counts everything as RowMisses.
	RowHits, RowMisses, RowConflicts uint64
	// RefreshStalls counts accesses delayed by a refresh window;
	// RefreshStallCycles is the total delay charged.
	RefreshStalls, RefreshStallCycles uint64
}

// dramBank is one bank's row-buffer register.
type dramBank struct {
	open bool
	row  uint32
	// epoch is the refresh window the row was opened in; a row opened
	// before the most recent refresh has been closed by it (checked
	// lazily on the next access).
	epoch uint64
}

// DRAM is a banked table memory with row-buffer timing: functionally
// identical to StaticRAM (flat little-endian byte array, dynamic
// operations answer ErrBadOp), but the exec-phase latency depends on
// which bank and row an access targets, the row-buffer policy, and the
// periodic refresh schedule. Service start cycles are deterministic
// (the port protocol is), so the whole timing model is bit-identical
// across every kernel scheduling mode.
type DRAM struct {
	cfg   DRAMConfig
	port  *bus.Port
	data  []byte
	banks []dramBank

	state  ramState
	wait   uint32
	cur    bus.Request
	curTag bus.Tag

	stats DRAMStats
}

// NewDRAM creates the module, allocates its full table, and registers
// it with the kernel.
func NewDRAM(k *sim.Kernel, cfg DRAMConfig) (*DRAM, *bus.Port, error) {
	port := bus.NewPort(k, cfg.Name+".p", bus.PortConfig{})
	d, err := NewDRAMOn(k, cfg, port)
	return d, port, err
}

// NewDRAMOn creates the module on an existing slave port.
func NewDRAMOn(k *sim.Kernel, cfg DRAMConfig, port *bus.Port) (*DRAM, error) {
	if cfg.Name == "" {
		cfg.Name = "dram"
	}
	if cfg.Banks <= 0 {
		cfg.Banks = 4
	}
	if cfg.RowBytes == 0 {
		cfg.RowBytes = 1024
	}
	if cfg.Interleave == 0 {
		cfg.Interleave = 64
	}
	if cfg.Banks&(cfg.Banks-1) != 0 {
		return nil, fmt.Errorf("dram %s: banks %d not a power of two", cfg.Name, cfg.Banks)
	}
	if cfg.Interleave&(cfg.Interleave-1) != 0 {
		return nil, fmt.Errorf("dram %s: interleave %d not a power of two", cfg.Name, cfg.Interleave)
	}
	if cfg.RowBytes%cfg.Interleave != 0 {
		return nil, fmt.Errorf("dram %s: row size %d not a multiple of the %d-byte interleave", cfg.Name, cfg.RowBytes, cfg.Interleave)
	}
	if cfg.RefreshPeriod > 0 && uint64(cfg.RefreshCycles) >= cfg.RefreshPeriod {
		return nil, fmt.Errorf("dram %s: refresh stall %d cycles >= period %d", cfg.Name, cfg.RefreshCycles, cfg.RefreshPeriod)
	}
	r := &DRAM{
		cfg:   cfg,
		port:  port,
		data:  make([]byte, cfg.Size),
		banks: make([]dramBank, cfg.Banks),
	}
	k.Add(r)
	return r, nil
}

// Name implements sim.Module.
func (r *DRAM) Name() string { return r.cfg.Name }

// Stats returns a snapshot of the counters.
func (r *DRAM) Stats() DRAMStats { return r.stats }

// Size returns the configured table size in bytes.
func (r *DRAM) Size() uint32 { return r.cfg.Size }

// Peek returns the byte at addr for white-box tests and harness image
// verification.
func (r *DRAM) Peek(addr uint32) byte { return r.data[addr] }

// bankOf maps an address to its bank index.
func (r *DRAM) bankOf(addr uint32) int {
	return int((addr / r.cfg.Interleave) % uint32(r.cfg.Banks))
}

// rowOf maps an address to its row index within its bank: consecutive
// Interleave-byte frames of a bank fill one row before advancing.
func (r *DRAM) rowOf(addr uint32) uint32 {
	frame := addr / (r.cfg.Interleave * uint32(r.cfg.Banks))
	return frame / (r.cfg.RowBytes / r.cfg.Interleave)
}

// access charges the bank model for one data access starting at addr in
// exec-entry cycle `cycle` and updates the touched bank's row buffer.
// Multi-row bursts are charged by their first element's row — the
// transfer cost covers the rest (a deliberate simplification, applied
// identically everywhere).
func (r *DRAM) access(addr uint32, cycle uint64) uint32 {
	t := &r.cfg.Timing
	var extra uint32
	epoch := uint64(0)
	if r.cfg.RefreshPeriod > 0 {
		epoch = cycle / r.cfg.RefreshPeriod
		if end := epoch*r.cfg.RefreshPeriod + uint64(r.cfg.RefreshCycles); cycle < end {
			extra = uint32(end - cycle)
			r.stats.RefreshStalls++
			r.stats.RefreshStallCycles += uint64(extra)
		}
	}
	b := &r.banks[r.bankOf(addr)]
	row := r.rowOf(addr)
	open := b.open && b.epoch == epoch
	var lat uint32
	switch {
	case r.cfg.ClosePage:
		lat = t.RowMiss
		r.stats.RowMisses++
		b.open = false
	case open && b.row == row:
		lat = t.RowHit
		r.stats.RowHits++
	case open:
		lat = t.RowConflict
		r.stats.RowConflicts++
	default:
		lat = t.RowMiss
		r.stats.RowMisses++
	}
	if !r.cfg.ClosePage {
		b.open, b.row, b.epoch = true, row, epoch
	}
	return extra + lat
}

// opCycles returns the exec-phase cost of req entering exec at `cycle`.
func (r *DRAM) opCycles(req bus.Request, cycle uint64) uint32 {
	t := &r.cfg.Timing
	switch req.Op {
	case bus.OpRead, bus.OpWrite:
		return r.access(req.VPtr, cycle)
	case bus.OpReadBurst:
		return r.access(req.VPtr, cycle) + t.BurstPerElem*req.Dim
	case bus.OpWriteBurst:
		return r.access(req.VPtr, cycle) + t.BurstPerElem*uint32(len(req.Burst))
	default:
		return 0
	}
}

// Tick implements sim.Module with the same three-state engine as
// StaticRAM; only the exec-phase cost function differs.
func (r *DRAM) Tick(cycle uint64) {
	switch r.state {
	case ramIdle:
		tx, ok := r.port.Pop()
		if !ok {
			return
		}
		r.cur = tx.Req
		r.curTag = tx.Tag
		r.stats.BusyCycles++
		r.wait = r.cfg.Timing.Decode
		r.state = ramDecode
		if r.wait == 0 {
			r.enterExec(cycle)
			r.maybeFinish()
		}
	case ramDecode:
		r.stats.BusyCycles++
		r.wait--
		if r.wait == 0 {
			r.enterExec(cycle)
			r.maybeFinish()
		}
	case ramExec:
		r.stats.BusyCycles++
		r.wait--
		r.maybeFinish()
	}
}

// NextWake implements sim.Sleeper; the FSM is a pure countdown after
// the idle pop, exactly like StaticRAM. The lazy refresh model needs no
// wakeups of its own: refresh cost and row closure are computed from
// the exec-entry cycle when the next access arrives.
func (r *DRAM) NextWake(now uint64) uint64 {
	if r.state == ramIdle {
		if r.port.Pending() {
			return now
		}
		return sim.WakeNever
	}
	if r.wait <= 1 {
		return now
	}
	return now + uint64(r.wait) - 1
}

// Skip implements sim.Sleeper: n countdown ticks, each a busy cycle.
func (r *DRAM) Skip(n uint64) {
	if r.state == ramIdle {
		return
	}
	r.wait -= uint32(n)
	r.stats.BusyCycles += n
}

// ConcurrentTick implements sim.Concurrent: confined to its own table,
// bank registers, FSM and the slave side of its port.
func (r *DRAM) ConcurrentTick() bool { return true }

// TickWeight implements sim.Weighted: an input latch plus a countdown.
func (r *DRAM) TickWeight() int { return 3 }

func (r *DRAM) enterExec(cycle uint64) {
	r.wait = r.opCycles(r.cur, cycle)
	r.state = ramExec
}

func (r *DRAM) maybeFinish() {
	if r.state != ramExec || r.wait > 0 {
		return
	}
	resp := executeTable(r.data, r.cur, &r.stats.BurstElems)
	if op := int(r.cur.Op); op < bus.NumOps {
		r.stats.Ops[op]++
		if resp.Err != bus.OK {
			r.stats.Errors[op]++
		}
	}
	r.port.Complete(r.curTag, resp)
	r.cur = bus.Request{}
	r.state = ramIdle
}
