package mem

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/snapshot"
)

// SaveState implements snapshot.Saver: the FSM, the sampled input
// registers, the stats, and the full memory image. Config (size,
// delays, port wiring) is rebuilt from SystemConfig.
func (m *StaticRAM) SaveState(enc *snapshot.Encoder) {
	enc.U8(uint8(m.state))
	enc.U32(m.wait)
	bus.EncodeRequest(enc, m.cur)
	enc.U64(uint64(m.curTag))
	enc.Bool(m.in.pending)
	enc.U8(uint8(m.in.op))
	enc.U32(m.in.vptr)
	enc.U32(m.in.data)
	enc.U32(m.in.dim)
	enc.U8(uint8(m.in.dtype))
	for _, v := range m.stats.Ops {
		enc.U64(v)
	}
	for _, v := range m.stats.Errors {
		enc.U64(v)
	}
	enc.U64(m.stats.BusyCycles)
	enc.U64(m.stats.BurstElems)
	enc.Bytes32(m.data)
}

// RestoreState implements snapshot.Restorer. The memory image in the
// snapshot must match the built size exactly.
func (m *StaticRAM) RestoreState(dec *snapshot.Decoder) error {
	m.state = ramState(dec.U8())
	m.wait = dec.U32()
	m.cur = bus.DecodeRequest(dec)
	m.curTag = bus.Tag(dec.U64())
	m.in.pending = dec.Bool()
	m.in.op = bus.Op(dec.U8())
	m.in.vptr = dec.U32()
	m.in.data = dec.U32()
	m.in.dim = dec.U32()
	m.in.dtype = bus.DataType(dec.U8())
	for i := range m.stats.Ops {
		m.stats.Ops[i] = dec.U64()
	}
	for i := range m.stats.Errors {
		m.stats.Errors[i] = dec.U64()
	}
	m.stats.BusyCycles = dec.U64()
	m.stats.BurstElems = dec.U64()
	img := dec.Bytes32()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(img) != len(m.data) {
		return fmt.Errorf("static RAM image mismatch: snapshot has %d bytes, system built with %d", len(img), len(m.data))
	}
	copy(m.data, img)
	return dec.Finish()
}
