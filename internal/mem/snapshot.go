package mem

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/snapshot"
)

// SaveState implements snapshot.Saver: the FSM, the sampled input
// registers, the stats, and the full memory image. Config (size,
// delays, port wiring) is rebuilt from SystemConfig.
func (m *StaticRAM) SaveState(enc *snapshot.Encoder) {
	enc.U8(uint8(m.state))
	enc.U32(m.wait)
	bus.EncodeRequest(enc, m.cur)
	enc.U64(uint64(m.curTag))
	enc.Bool(m.in.pending)
	enc.U8(uint8(m.in.op))
	enc.U32(m.in.vptr)
	enc.U32(m.in.data)
	enc.U32(m.in.dim)
	enc.U8(uint8(m.in.dtype))
	for _, v := range m.stats.Ops {
		enc.U64(v)
	}
	for _, v := range m.stats.Errors {
		enc.U64(v)
	}
	enc.U64(m.stats.BusyCycles)
	enc.U64(m.stats.BurstElems)
	enc.Bytes32(m.data)
}

// RestoreState implements snapshot.Restorer. The memory image in the
// snapshot must match the built size exactly.
func (m *StaticRAM) RestoreState(dec *snapshot.Decoder) error {
	m.state = ramState(dec.U8())
	m.wait = dec.U32()
	m.cur = bus.DecodeRequest(dec)
	m.curTag = bus.Tag(dec.U64())
	m.in.pending = dec.Bool()
	m.in.op = bus.Op(dec.U8())
	m.in.vptr = dec.U32()
	m.in.data = dec.U32()
	m.in.dim = dec.U32()
	m.in.dtype = bus.DataType(dec.U8())
	for i := range m.stats.Ops {
		m.stats.Ops[i] = dec.U64()
	}
	for i := range m.stats.Errors {
		m.stats.Errors[i] = dec.U64()
	}
	m.stats.BusyCycles = dec.U64()
	m.stats.BurstElems = dec.U64()
	img := dec.Bytes32()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(img) != len(m.data) {
		return fmt.Errorf("static RAM image mismatch: snapshot has %d bytes, system built with %d", len(img), len(m.data))
	}
	copy(m.data, img)
	return dec.Finish()
}

// SaveState implements snapshot.Saver: the FSM, every bank's row-buffer
// register, the stats, and the full memory image. Config (geometry,
// timing, refresh schedule, port wiring) is rebuilt from SystemConfig.
func (r *DRAM) SaveState(enc *snapshot.Encoder) {
	enc.U8(uint8(r.state))
	enc.U32(r.wait)
	bus.EncodeRequest(enc, r.cur)
	enc.U64(uint64(r.curTag))
	enc.Int(len(r.banks))
	for i := range r.banks {
		b := &r.banks[i]
		enc.Bool(b.open)
		enc.U32(b.row)
		enc.U64(b.epoch)
	}
	for _, v := range r.stats.Ops {
		enc.U64(v)
	}
	for _, v := range r.stats.Errors {
		enc.U64(v)
	}
	enc.U64(r.stats.BusyCycles)
	enc.U64(r.stats.BurstElems)
	enc.U64(r.stats.RowHits)
	enc.U64(r.stats.RowMisses)
	enc.U64(r.stats.RowConflicts)
	enc.U64(r.stats.RefreshStalls)
	enc.U64(r.stats.RefreshStallCycles)
	enc.Bytes32(r.data)
}

// RestoreState implements snapshot.Restorer. Bank count and memory
// image size in the snapshot must match the built geometry exactly.
func (r *DRAM) RestoreState(dec *snapshot.Decoder) error {
	r.state = ramState(dec.U8())
	r.wait = dec.U32()
	r.cur = bus.DecodeRequest(dec)
	r.curTag = bus.Tag(dec.U64())
	nbanks := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if nbanks != len(r.banks) {
		return fmt.Errorf("dram %s: snapshot has %d banks, system built with %d", r.cfg.Name, nbanks, len(r.banks))
	}
	for i := range r.banks {
		b := &r.banks[i]
		b.open = dec.Bool()
		b.row = dec.U32()
		b.epoch = dec.U64()
	}
	for i := range r.stats.Ops {
		r.stats.Ops[i] = dec.U64()
	}
	for i := range r.stats.Errors {
		r.stats.Errors[i] = dec.U64()
	}
	r.stats.BusyCycles = dec.U64()
	r.stats.BurstElems = dec.U64()
	r.stats.RowHits = dec.U64()
	r.stats.RowMisses = dec.U64()
	r.stats.RowConflicts = dec.U64()
	r.stats.RefreshStalls = dec.U64()
	r.stats.RefreshStallCycles = dec.U64()
	img := dec.Bytes32()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(img) != len(r.data) {
		return fmt.Errorf("dram %s image mismatch: snapshot has %d bytes, system built with %d", r.cfg.Name, len(img), len(r.data))
	}
	copy(r.data, img)
	return dec.Finish()
}
