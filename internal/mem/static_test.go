package mem

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/sim"
)

type harness struct {
	t    *testing.T
	k    *sim.Kernel
	link *bus.Port
	r    *StaticRAM
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	k := sim.New()
	link := bus.NewLink(k, "t")
	r := NewStaticRAM(k, cfg, link)
	return &harness{t: t, k: k, link: link, r: r}
}

func (h *harness) do(req bus.Request) (bus.Response, uint64) {
	h.t.Helper()
	start := h.k.Cycle()
	h.link.Issue(req)
	for i := 0; i < 100000; i++ {
		if err := h.k.Step(); err != nil {
			h.t.Fatal(err)
		}
		if resp, ok := h.link.Response(); ok {
			return resp, h.k.Cycle() - start
		}
	}
	h.t.Fatalf("transaction %v did not complete", req)
	return bus.Response{}, 0
}

func TestStaticRAMReadWrite(t *testing.T) {
	h := newHarness(t, Config{Size: 256, Delays: DefaultDelays()})
	if resp, _ := h.do(bus.Request{Op: bus.OpWrite, VPtr: 100, Data: 0xBEEF, DType: bus.U32}); resp.Err != bus.OK {
		t.Fatalf("write: %v", resp.Err)
	}
	resp, _ := h.do(bus.Request{Op: bus.OpRead, VPtr: 100, DType: bus.U32})
	if resp.Err != bus.OK || resp.Data != 0xBEEF {
		t.Fatalf("read = %v/%#x, want OK/0xBEEF", resp.Err, resp.Data)
	}
	// Fresh memory reads zero.
	if resp, _ := h.do(bus.Request{Op: bus.OpRead, VPtr: 0, DType: bus.U32}); resp.Data != 0 {
		t.Errorf("fresh read = %#x, want 0", resp.Data)
	}
}

func TestStaticRAMTypedAccess(t *testing.T) {
	h := newHarness(t, Config{Size: 64, Delays: DefaultDelays()})
	h.do(bus.Request{Op: bus.OpWrite, VPtr: 10, Data: 0xFFFF, DType: bus.I16})
	resp, _ := h.do(bus.Request{Op: bus.OpRead, VPtr: 10, DType: bus.I16})
	if resp.Data != 0xFFFFFFFF {
		t.Errorf("I16 read = %#x, want sign-extended", resp.Data)
	}
	// Byte view of the same location is little-endian.
	if h.r.Peek(10) != 0xFF || h.r.Peek(11) != 0xFF {
		t.Error("byte layout wrong")
	}
}

func TestStaticRAMBounds(t *testing.T) {
	h := newHarness(t, Config{Size: 16, Delays: DefaultDelays()})
	cases := []bus.Request{
		{Op: bus.OpRead, VPtr: 16, DType: bus.U8},
		{Op: bus.OpRead, VPtr: 13, DType: bus.U32},
		{Op: bus.OpWrite, VPtr: 100, DType: bus.U8},
		{Op: bus.OpReadBurst, VPtr: 0, Dim: 5, DType: bus.U32},
		{Op: bus.OpWriteBurst, VPtr: 8, Burst: []uint32{1, 2, 3}, DType: bus.U32},
	}
	for _, req := range cases {
		if resp, _ := h.do(req); resp.Err != bus.ErrBounds {
			t.Errorf("%v: %v, want ErrBounds", req, resp.Err)
		}
	}
	// Edge-exact access succeeds.
	if resp, _ := h.do(bus.Request{Op: bus.OpRead, VPtr: 12, DType: bus.U32}); resp.Err != bus.OK {
		t.Errorf("edge read: %v", resp.Err)
	}
}

func TestStaticRAMRejectsDynamicOps(t *testing.T) {
	h := newHarness(t, Config{Size: 64, Delays: DefaultDelays()})
	for _, op := range []bus.Op{bus.OpAlloc, bus.OpFree, bus.OpReserve, bus.OpRelease} {
		if resp, _ := h.do(bus.Request{Op: op, Dim: 1, DType: bus.U8}); resp.Err != bus.ErrBadOp {
			t.Errorf("%v: %v, want ErrBadOp", op, resp.Err)
		}
	}
	st := h.r.Stats()
	if st.Errors[bus.OpAlloc] != 1 {
		t.Errorf("Errors[ALLOC] = %d, want 1", st.Errors[bus.OpAlloc])
	}
}

func TestStaticRAMBurstRoundTrip(t *testing.T) {
	h := newHarness(t, Config{Size: 256, Delays: DefaultDelays()})
	in := []uint32{5, 6, 7, 8}
	h.do(bus.Request{Op: bus.OpWriteBurst, VPtr: 32, Burst: in, DType: bus.U16})
	resp, _ := h.do(bus.Request{Op: bus.OpReadBurst, VPtr: 32, Dim: 4, DType: bus.U16})
	for i, want := range in {
		if resp.Burst[i] != want {
			t.Errorf("burst[%d] = %d, want %d", i, resp.Burst[i], want)
		}
	}
	if st := h.r.Stats(); st.BurstElems != 8 {
		t.Errorf("BurstElems = %d, want 8", st.BurstElems)
	}
}

func TestStaticRAMLatencyMatchesWrapperShape(t *testing.T) {
	// Same formula as the wrapper: 2 + Decode + op.
	h := newHarness(t, Config{Size: 64, Delays: Delays{Decode: 2, Read: 3}})
	_, cycles := h.do(bus.Request{Op: bus.OpRead, VPtr: 0, DType: bus.U32})
	if cycles != 2+2+3 {
		t.Errorf("latency = %d, want 7", cycles)
	}
}

func TestStaticRAMDefaultNameAndSize(t *testing.T) {
	h := newHarness(t, Config{Size: 128})
	if h.r.Name() != "sram" {
		t.Errorf("Name = %q", h.r.Name())
	}
	if h.r.Size() != 128 {
		t.Errorf("Size = %d", h.r.Size())
	}
}
