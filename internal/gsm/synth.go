package gsm

import "math"

// Synth generates deterministic synthetic speech: alternating voiced
// segments (a pulse train driving a two-formant resonator) and unvoiced
// segments (filtered noise), at 8 kHz. seed selects the utterance;
// identical seeds produce identical signals on every platform.
//
// The generator exists because the evaluation needs realistic,
// reproducible PCM input for the GSM workload and no speech corpus is
// available offline.
func Synth(nSamples int, seed uint64) []int16 {
	out := make([]int16, nSamples)
	rng := seed*2862933555777941757 + 3037000493

	// Two-formant resonator state.
	var y1a, y2a, y1b, y2b float64
	// Voiced pitch in samples, slowly wandering.
	pitch := 60.0
	phase := 0.0

	for k := 0; k < nSamples; k++ {
		// Segment structure: 400-sample (50 ms) voiced/unvoiced spans.
		seg := (k / 400) % 3
		var excitation float64
		rng = rng*6364136223846793005 + 1442695040888963407
		noise := float64(int32(rng>>33))/float64(1<<31) - 0.0 // ~[-0.5,0.5]

		if seg != 2 {
			// Voiced: impulse train + a little noise.
			phase++
			if phase >= pitch {
				phase -= pitch
				excitation = 4000
				pitch += noise * 1.5 // slight jitter
				if pitch < 40 {
					pitch = 40
				}
				if pitch > 90 {
					pitch = 90
				}
			}
			excitation += noise * 60
		} else {
			// Unvoiced: noise burst.
			excitation = noise * 900
		}

		// Formant A ~700 Hz, Q≈10; formant B ~1800 Hz (varies per seed).
		fA := 2 * math.Pi * (650 + float64(seed%7)*20) / 8000
		fB := 2 * math.Pi * (1700 + float64(seed%11)*30) / 8000
		const rA, rB = 0.95, 0.92
		ya := excitation + 2*rA*math.Cos(fA)*y1a - rA*rA*y2a
		y2a, y1a = y1a, ya
		yb := excitation + 2*rB*math.Cos(fB)*y1b - rB*rB*y2b
		y2b, y1b = y1b, yb

		out[k] = sat16(0.6*ya + 0.4*yb)
	}
	return out
}

// SNR computes the signal-to-noise ratio in dB between a reference and a
// reconstruction, skipping the first skip samples (filter warm-up).
func SNR(ref, got []int16, skip int) float64 {
	if len(ref) != len(got) || len(ref) <= skip {
		return math.Inf(-1)
	}
	var sig, noise float64
	for i := skip; i < len(ref); i++ {
		r := float64(ref[i])
		d := r - float64(got[i])
		sig += r * r
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}
