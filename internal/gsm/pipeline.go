package gsm

import (
	"repro/internal/bus"
	"repro/internal/smapi"
)

// PipelineConfig parameterizes the four-PE GSM transcoding pipeline:
// source → encoder → decoder → sink, every hand-off through dynamic
// shared memory. This is the paper's application scenario: an MPSoC
// running a GSM workload whose frames are dynamic data in shared
// memories.
type PipelineConfig struct {
	// Frames is the number of 160-sample frames to push through.
	Frames int
	// Seed selects the synthetic utterance.
	Seed uint64
	// NumSM spreads channel control blocks and frame buffers across
	// this many shared memory modules (≥1).
	NumSM int
	// EncodeCycles and DecodeCycles model the per-frame computation
	// time of the codec stages on their PEs (the memory traffic is
	// simulated cycle-true regardless). Defaults: 60000 and 25000,
	// roughly a full-rate codec's budget on a ~100 MHz embedded core.
	EncodeCycles, DecodeCycles uint64
	// Backoff is the reservation retry interval in cycles (default 10).
	Backoff uint64
}

// PipelineResult collects the sink's output.
type PipelineResult struct {
	// Out is the decoded PCM, FrameSamples per processed frame.
	Out []int16
	// Frames counts frames that reached the sink.
	Frames int
}

// sentinel marks end-of-stream in a channel's payload word.
const sentinel = 0xFFFFFFFF

// pipe is one inter-stage channel: a four-word control block in shared
// memory (state, payload vptr, payload length, payload sm) plus
// host-side plumbing to communicate the control block's address from
// producer to consumer at setup time (tasks are serialized by the
// kernel, so the flag needs no host synchronization).
type pipe struct {
	sm    int
	cb    uint32
	ready bool
}

// open allocates the control block; the producer calls this once.
func (p *pipe) open(ctx *smapi.Ctx) {
	m := ctx.Mem(p.sm)
	cb, code := m.Malloc(4, bus.U32)
	if code != bus.OK {
		panic("pipe: control block allocation failed: " + code.String())
	}
	p.cb = cb
	p.ready = true
}

// await spins (in simulated time) until the producer has opened the pipe.
func (p *pipe) await(ctx *smapi.Ctx, backoff uint64) {
	for !p.ready {
		ctx.Sleep(backoff)
	}
}

// send publishes a payload into the channel, blocking while it is full.
// The reservation bit serializes channel updates between the two PEs.
func (p *pipe) send(ctx *smapi.Ctx, backoff uint64, payload uint32, n uint32, paySM int) {
	m := ctx.Mem(p.sm)
	for {
		if code := m.Acquire(p.cb, backoff); code != bus.OK {
			panic("pipe: acquire: " + code.String())
		}
		st, code := m.Read(p.cb)
		if code != bus.OK {
			panic("pipe: read state: " + code.String())
		}
		if st == 0 {
			break // empty and reserved by us
		}
		if code := m.Release(p.cb); code != bus.OK {
			panic("pipe: release: " + code.String())
		}
		ctx.Sleep(backoff)
	}
	m.Write(p.cb+4, payload)
	m.Write(p.cb+8, n)
	m.Write(p.cb+12, uint32(paySM))
	m.Write(p.cb, 1)
	if code := m.Release(p.cb); code != bus.OK {
		panic("pipe: release: " + code.String())
	}
}

// recv blocks until a payload is available and returns it, marking the
// channel empty again.
func (p *pipe) recv(ctx *smapi.Ctx, backoff uint64) (payload, n uint32, paySM int) {
	m := ctx.Mem(p.sm)
	for {
		if code := m.Acquire(p.cb, backoff); code != bus.OK {
			panic("pipe: acquire: " + code.String())
		}
		st, code := m.Read(p.cb)
		if code != bus.OK {
			panic("pipe: read state: " + code.String())
		}
		if st == 1 {
			break
		}
		if code := m.Release(p.cb); code != bus.OK {
			panic("pipe: release: " + code.String())
		}
		ctx.Sleep(backoff)
	}
	payload, _ = m.Read(p.cb + 4)
	n, _ = m.Read(p.cb + 8)
	sm, _ := m.Read(p.cb + 12)
	m.Write(p.cb, 0)
	if code := m.Release(p.cb); code != bus.OK {
		panic("pipe: release: " + code.String())
	}
	return payload, n, int(sm)
}

// BuildPipeline returns the four stage tasks (source, encoder, decoder,
// sink, in master order) and the result sink. Attach them to a system
// with at least four masters and cfg.NumSM memories.
func BuildPipeline(cfg PipelineConfig) ([]smapi.Task, *PipelineResult) {
	if cfg.NumSM <= 0 {
		cfg.NumSM = 1
	}
	if cfg.EncodeCycles == 0 {
		cfg.EncodeCycles = 60000
	}
	if cfg.DecodeCycles == 0 {
		cfg.DecodeCycles = 25000
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = 10
	}
	res := &PipelineResult{}

	// Channels: src→enc on SM 0, enc→dec on SM 1 (mod NumSM), dec→sink
	// on SM 2 (mod NumSM). Frame payloads rotate across all modules.
	chSrcEnc := &pipe{sm: 0 % cfg.NumSM}
	chEncDec := &pipe{sm: 1 % cfg.NumSM}
	chDecSink := &pipe{sm: 2 % cfg.NumSM}
	paySM := func(f int) int { return f % cfg.NumSM }

	pcm := Synth(cfg.Frames*FrameSamples, cfg.Seed)

	source := func(ctx *smapi.Ctx) {
		chSrcEnc.open(ctx)
		for f := 0; f < cfg.Frames; f++ {
			sm := paySM(f)
			m := ctx.Mem(sm)
			v, code := m.Malloc(FrameSamples, bus.I16)
			if code != bus.OK {
				panic("source: malloc: " + code.String())
			}
			buf := make([]uint32, FrameSamples)
			for i := 0; i < FrameSamples; i++ {
				buf[i] = uint32(uint16(pcm[f*FrameSamples+i]))
			}
			if code := m.WriteArray(v, buf); code != bus.OK {
				panic("source: write: " + code.String())
			}
			chSrcEnc.send(ctx, cfg.Backoff, v, FrameSamples, sm)
		}
		chSrcEnc.send(ctx, cfg.Backoff, sentinel, 0, 0)
	}

	encoder := func(ctx *smapi.Ctx) {
		chEncDec.open(ctx)
		chSrcEnc.await(ctx, cfg.Backoff)
		enc := NewEncoder()
		for {
			v, n, sm := chSrcEnc.recv(ctx, cfg.Backoff)
			if v == sentinel {
				chEncDec.send(ctx, cfg.Backoff, sentinel, 0, 0)
				return
			}
			m := ctx.Mem(sm)
			wire, code := m.ReadArray(v, n)
			if code != bus.OK {
				panic("encoder: read: " + code.String())
			}
			if code := m.Free(v); code != bus.OK {
				panic("encoder: free: " + code.String())
			}
			frame := make([]int16, n)
			for i, w := range wire {
				frame[i] = int16(uint16(w))
			}
			ctx.Sleep(cfg.EncodeCycles) // codec computation
			packed := Pack(enc.Encode(frame))

			osm := sm
			om := ctx.Mem(osm)
			ov, code := om.Malloc(FrameBytes, bus.U8)
			if code != bus.OK {
				panic("encoder: malloc: " + code.String())
			}
			obuf := make([]uint32, FrameBytes)
			for i, b := range packed {
				obuf[i] = uint32(b)
			}
			if code := om.WriteArray(ov, obuf); code != bus.OK {
				panic("encoder: write: " + code.String())
			}
			chEncDec.send(ctx, cfg.Backoff, ov, FrameBytes, osm)
		}
	}

	decoder := func(ctx *smapi.Ctx) {
		chDecSink.open(ctx)
		chEncDec.await(ctx, cfg.Backoff)
		dec := NewDecoder()
		for {
			v, n, sm := chEncDec.recv(ctx, cfg.Backoff)
			if v == sentinel {
				chDecSink.send(ctx, cfg.Backoff, sentinel, 0, 0)
				return
			}
			m := ctx.Mem(sm)
			wire, code := m.ReadArray(v, n)
			if code != bus.OK {
				panic("decoder: read: " + code.String())
			}
			if code := m.Free(v); code != bus.OK {
				panic("decoder: free: " + code.String())
			}
			packed := make([]byte, n)
			for i, w := range wire {
				packed[i] = byte(w)
			}
			params, err := Unpack(packed)
			if err != nil {
				panic("decoder: " + err.Error())
			}
			ctx.Sleep(cfg.DecodeCycles)
			out := dec.Decode(params)

			om := ctx.Mem(sm)
			ov, code := om.Malloc(FrameSamples, bus.I16)
			if code != bus.OK {
				panic("decoder: malloc: " + code.String())
			}
			obuf := make([]uint32, FrameSamples)
			for i, s := range out {
				obuf[i] = uint32(uint16(s))
			}
			if code := om.WriteArray(ov, obuf); code != bus.OK {
				panic("decoder: write: " + code.String())
			}
			chDecSink.send(ctx, cfg.Backoff, ov, FrameSamples, sm)
		}
	}

	sink := func(ctx *smapi.Ctx) {
		chDecSink.await(ctx, cfg.Backoff)
		for {
			v, n, sm := chDecSink.recv(ctx, cfg.Backoff)
			if v == sentinel {
				return
			}
			m := ctx.Mem(sm)
			wire, code := m.ReadArray(v, n)
			if code != bus.OK {
				panic("sink: read: " + code.String())
			}
			if code := m.Free(v); code != bus.OK {
				panic("sink: free: " + code.String())
			}
			for _, w := range wire {
				res.Out = append(res.Out, int16(uint16(w)))
			}
			res.Frames++
		}
	}

	return []smapi.Task{source, encoder, decoder, sink}, res
}

// ReferenceTranscode runs the pure-software codec over the same input
// the pipeline uses, for bit-exact comparison in tests.
func ReferenceTranscode(frames int, seed uint64) []int16 {
	pcm := Synth(frames*FrameSamples, seed)
	enc := NewEncoder()
	dec := NewDecoder()
	out := make([]int16, 0, len(pcm))
	for f := 0; f < frames; f++ {
		p := enc.Encode(pcm[f*FrameSamples : (f+1)*FrameSamples])
		// Pack/unpack round trip matches the pipeline's wire format.
		buf := Pack(p)
		q, err := Unpack(buf[:])
		if err != nil {
			panic(err)
		}
		out = append(out, dec.Decode(q)...)
	}
	return out
}
