package gsm

import (
	"math"
	"testing"
	"testing/quick"
)

// encodeDecode runs a full codec pass over synthetic speech.
func encodeDecode(t *testing.T, nFrames int, seed uint64) (ref, out []int16) {
	t.Helper()
	pcm := Synth(nFrames*FrameSamples, seed)
	enc := NewEncoder()
	dec := NewDecoder()
	out = make([]int16, 0, len(pcm))
	for f := 0; f < nFrames; f++ {
		p := enc.Encode(pcm[f*FrameSamples : (f+1)*FrameSamples])
		out = append(out, dec.Decode(p)...)
	}
	return pcm, out
}

func TestCodecReconstructionQuality(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		ref, out := encodeDecode(t, 20, seed)
		snr := SNR(ref, out, FrameSamples) // skip warm-up frame
		if snr < 4 {
			t.Errorf("seed %d: SNR = %.1f dB, want ≥ 4 dB", seed, snr)
		}
	}
}

func TestCodecSilence(t *testing.T) {
	enc := NewEncoder()
	dec := NewDecoder()
	silence := make([]int16, FrameSamples)
	var peak int16
	for f := 0; f < 4; f++ {
		out := dec.Decode(enc.Encode(silence))
		for _, v := range out {
			if v < 0 {
				v = -v
			}
			if v > peak {
				peak = v
			}
		}
	}
	if peak > 300 {
		t.Errorf("silence decodes with peak %d, want near-silence", peak)
	}
}

func TestCodecDeterminism(t *testing.T) {
	_, a := encodeDecode(t, 5, 3)
	_, b := encodeDecode(t, 5, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decode diverges at %d", i)
		}
	}
}

func TestEncodePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for wrong frame length")
		}
	}()
	NewEncoder().Encode(make([]int16, 10))
}

func TestParamsWithinFieldRanges(t *testing.T) {
	pcm := Synth(20*FrameSamples, 9)
	enc := NewEncoder()
	for f := 0; f < 20; f++ {
		p := enc.Encode(pcm[f*FrameSamples : (f+1)*FrameSamples])
		for i, q := range p.LAR {
			if q < larMin(i) || q > larMax(i) {
				t.Fatalf("frame %d: LAR[%d] = %d out of range", f, i, q)
			}
		}
		for sf := 0; sf < Subframes; sf++ {
			if p.Lag[sf] < MinLag || p.Lag[sf] > MaxLag {
				t.Fatalf("lag out of range: %d", p.Lag[sf])
			}
			if p.Gain[sf] < 0 || p.Gain[sf] > 3 {
				t.Fatalf("gain out of range: %d", p.Gain[sf])
			}
			if p.Grid[sf] < 0 || p.Grid[sf] > 3 {
				t.Fatalf("grid out of range: %d", p.Grid[sf])
			}
			if p.Xmax[sf] < 0 || p.Xmax[sf] > 63 {
				t.Fatalf("xmax out of range: %d", p.Xmax[sf])
			}
			for _, q := range p.X[sf] {
				if q < -4 || q > 3 {
					t.Fatalf("pulse out of range: %d", q)
				}
			}
		}
	}
}

func TestPackUnpackRoundTripProperty(t *testing.T) {
	prop := func(lar [8]int8, lag [4]uint8, gain, grid [4]uint8, xmax [4]uint8, pulses [4][13]int8) bool {
		var p Params
		for i := range p.LAR {
			p.LAR[i] = clampInt(int(lar[i]), larMin(i), larMax(i))
		}
		for sf := 0; sf < Subframes; sf++ {
			p.Lag[sf] = MinLag + int(lag[sf])%(MaxLag-MinLag+1)
			p.Gain[sf] = int(gain[sf]) % 4
			p.Grid[sf] = int(grid[sf]) % 4
			p.Xmax[sf] = int(xmax[sf]) % 64
			for i := range p.X[sf] {
				p.X[sf][i] = clampInt(int(pulses[sf][i]), -4, 3)
			}
		}
		buf := Pack(p)
		got, err := Unpack(buf[:])
		return err == nil && got == p
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPackSignatureAndSize(t *testing.T) {
	buf := Pack(Params{})
	if len(buf) != FrameBytes {
		t.Fatalf("frame = %d bytes, want %d", len(buf), FrameBytes)
	}
	if buf[0]>>4 != Signature {
		t.Errorf("signature nibble = %#x", buf[0]>>4)
	}
	if FrameBits+4 != FrameBytes*8 {
		t.Errorf("bit budget wrong: %d + 4 ≠ %d×8", FrameBits, FrameBytes)
	}
}

func TestUnpackErrors(t *testing.T) {
	if _, err := Unpack(make([]byte, 10)); err == nil {
		t.Error("short frame accepted")
	}
	bad := Pack(Params{})
	bad[0] = 0x00 // clobber signature
	if _, err := Unpack(bad[:]); err == nil {
		t.Error("bad signature accepted")
	}
}

func TestDecoderRobustToCorruptFrames(t *testing.T) {
	// Any bit pattern with a valid signature must decode without panic
	// and produce in-range PCM (parameters are clamped).
	dec := NewDecoder()
	rng := uint64(99)
	for trial := 0; trial < 50; trial++ {
		var buf [FrameBytes]byte
		for i := range buf {
			rng = rng*6364136223846793005 + 1442695040888963407
			buf[i] = byte(rng >> 40)
		}
		buf[0] = buf[0]&0x0F | Signature<<4
		p, err := Unpack(buf[:])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		out := dec.Decode(p)
		if len(out) != FrameSamples {
			t.Fatalf("trial %d: %d samples", trial, len(out))
		}
	}
}

func TestAnalysisFilterWhitens(t *testing.T) {
	// The analysis lattice must *reduce* energy on strongly correlated
	// input — this pins the reflection-coefficient sign convention.
	pcm := Synth(4*FrameSamples, 5)
	var s [FrameSamples]float64
	for i := range s {
		s[i] = float64(pcm[FrameSamples+i]) // skip warm-up
	}
	acf := autocorrelate(s[:], 9)
	refl := schur(acf)

	var e Encoder
	var inE, outE float64
	for _, v := range s {
		d := e.analysisLattice(v, refl)
		inE += v * v
		outE += d * d
	}
	if outE >= inE {
		t.Errorf("analysis filter amplifies: in=%.3g out=%.3g (sign convention wrong?)", inE, outE)
	}
}

func TestSchurStability(t *testing.T) {
	// All reflection coefficients must lie strictly inside (−1, 1) for
	// arbitrary autocorrelation inputs derived from real signals.
	prop := func(raw [64]int16) bool {
		s := make([]float64, len(raw))
		for i, v := range raw {
			s[i] = float64(v)
		}
		acf := autocorrelate(s, 9)
		refl := schur(acf)
		for _, r := range refl {
			if r <= -1 || r >= 1 || math.IsNaN(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSchurZeroInput(t *testing.T) {
	refl := schur(make([]float64, 9))
	for i, r := range refl {
		if r != 0 {
			t.Errorf("refl[%d] = %v for silence", i, r)
		}
	}
}

func TestLARRoundTrip(t *testing.T) {
	// larToRefl(reflToLAR(r)) ≈ r across the legal range.
	for r := -0.99; r <= 0.99; r += 0.01 {
		lar := reflToLAR([8]float64{r})
		back := larToRefl(lar[0])
		if math.Abs(back-r) > 0.02 {
			t.Errorf("r=%.3f → LAR=%.3f → %.3f", r, lar[0], back)
		}
	}
}

func TestXmaxQuantizerMonotone(t *testing.T) {
	prev := -1
	for x := 1.0; x < 60000; x *= 1.3 {
		idx := quantizeXmax(x)
		if idx < prev {
			t.Fatalf("quantizer not monotone at %.0f", x)
		}
		prev = idx
		dec := decodeXmax(idx)
		if dec <= 0 || math.Abs(math.Log2(dec/x)) > 0.5 {
			t.Errorf("xmax %.0f decodes to %.0f (idx %d)", x, dec, idx)
		}
	}
	if quantizeXmax(0) != 0 {
		t.Error("quantizeXmax(0) != 0")
	}
	if d := decodeXmax(0); d <= 0 || d > 2 {
		t.Errorf("decodeXmax(0) = %v, want smallest positive level", d)
	}
}

func TestSynthDeterministicAndBounded(t *testing.T) {
	a := Synth(1000, 5)
	b := Synth(1000, 5)
	c := Synth(1000, 6)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed differs")
	}
	if !diff {
		t.Error("different seeds identical")
	}
	var energy float64
	for _, v := range a {
		energy += float64(v) * float64(v)
	}
	if energy == 0 {
		t.Error("silent synth")
	}
}

func TestSNRHelper(t *testing.T) {
	a := []int16{100, 200, 300}
	if got := SNR(a, a, 0); !math.IsInf(got, 1) {
		t.Errorf("identical SNR = %v", got)
	}
	if got := SNR(a, []int16{0, 0, 0}, 0); got != 0 {
		t.Errorf("all-noise SNR = %v, want 0", got)
	}
	if got := SNR(a, a[:2], 0); !math.IsInf(got, -1) {
		t.Errorf("length mismatch = %v", got)
	}
}

func TestLARZonesWeights(t *testing.T) {
	prev := [8]float64{0.4, 0, 0, 0, 0, 0, 0, 0}
	cur := [8]float64{0.0, 0, 0, 0, 0, 0, 0, 0}
	rpz := larZones(prev, cur)
	// LAR < 0.675 maps to refl identically, so zone mixes are visible
	// directly: 0.3, 0.2, 0.1, 0.0 on coefficient 0.
	want := []float64{0.3, 0.2, 0.1, 0.0}
	for z, w := range want {
		if diff := rpz[z][0] - w; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("zone %d refl = %v, want %v", z, rpz[z][0], w)
		}
	}
}

func TestZoneOfBoundaries(t *testing.T) {
	cases := map[int]int{0: 0, 12: 0, 13: 1, 26: 1, 27: 2, 39: 2, 40: 3, 159: 3}
	for k, want := range cases {
		if got := zoneOf(k); got != want {
			t.Errorf("zoneOf(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestInterpolationSmoothsFrameTransition(t *testing.T) {
	// Two frames with very different spectra: the decoder's first-zone
	// coefficients must mix the previous frame's LARs, so decoding the
	// same params fresh (no history) differs in the first 40 samples.
	pcm := Synth(2*FrameSamples, 11)
	enc := NewEncoder()
	p1 := enc.Encode(pcm[:FrameSamples])
	p2 := enc.Encode(pcm[FrameSamples:])

	warm := NewDecoder()
	warm.Decode(p1)
	withHistory := warm.Decode(p2)

	cold := NewDecoder()
	noHistory := cold.Decode(p2)

	diffEarly := 0
	for k := 0; k < 40; k++ {
		if withHistory[k] != noHistory[k] {
			diffEarly++
		}
	}
	if diffEarly == 0 {
		t.Error("zone interpolation has no effect across frames")
	}
}
