package gsm

import "math"

// autocorrelate computes R[0..n-1] with R[j] = Σ s[k]·s[k−j].
func autocorrelate(s []float64, n int) []float64 {
	r := make([]float64, n)
	for j := 0; j < n; j++ {
		var acc float64
		for k := j; k < len(s); k++ {
			acc += s[k] * s[k-j]
		}
		r[j] = acc
	}
	return r
}

// schur derives the eight reflection coefficients from the
// autocorrelation sequence (Levinson-Durbin form; identical output to
// the standard's Schur recursion). The returned coefficients use the
// sign convention of the analysis lattice in codec.go (d' = d + r·u),
// i.e. the negated PARCORs.
func schur(acf []float64) [8]float64 {
	var refl [8]float64
	if acf[0] <= 0 {
		return refl
	}
	e := acf[0]
	var a [9]float64
	for i := 1; i <= 8; i++ {
		acc := acf[i]
		for j := 1; j < i; j++ {
			acc -= a[j] * acf[i-j]
		}
		k := acc / e
		if math.Abs(k) >= 1 {
			// Ill-conditioned frame: stop the recursion, zeroing the
			// remaining coefficients (the standard clamps similarly).
			break
		}
		a[i] = k
		for j := 1; j <= i/2; j++ {
			tmp := a[j] - k*a[i-j]
			a[i-j] -= k * a[j]
			a[j] = tmp
		}
		e *= 1 - k*k
		refl[i-1] = -k
		if e <= 0 {
			break
		}
	}
	return refl
}

// reflToLAR applies the standard's piecewise-linear log-area-ratio
// approximation to each reflection coefficient.
func reflToLAR(refl [8]float64) [8]float64 {
	var lar [8]float64
	for i, r := range refl {
		a := math.Abs(r)
		var v float64
		switch {
		case a < 0.675:
			v = a
		case a < 0.950:
			v = 2*a - 0.675
		default:
			v = 8*a - 6.375
		}
		if r < 0 {
			v = -v
		}
		lar[i] = v
	}
	return lar
}

// larToRefl inverts reflToLAR.
func larToRefl(lar float64) float64 {
	a := math.Abs(lar)
	var v float64
	switch {
	case a < 0.675:
		v = a
	case a < 1.225:
		v = 0.5*a + 0.3375
	default:
		v = (a + 6.375) / 8
	}
	if v > 0.9999 {
		v = 0.9999
	}
	if lar < 0 {
		v = -v
	}
	return v
}

// larScale and larOffset are the standard's per-coefficient affine
// quantizer parameters (tables A and B of GSM 06.10, normalized to the
// float LAR domain used here).
var larScale = [8]float64{20.0, 20.0, 20.0, 20.0, 13.637, 15.0, 8.334, 8.824}
var larOffset = [8]float64{0, 0, 4.0, -5.0, 0.184, -3.5, -0.666, -2.235}

// quantizeLAR maps a LAR value to its quantizer index, honouring the
// standard's per-coefficient bit widths.
func quantizeLAR(i int, lar float64) int {
	idx := int(math.Round(larScale[i]*lar + larOffset[i]))
	return clampInt(idx, larMin(i), larMax(i))
}

// decodeLARs reconstructs LAR values from quantizer indices.
func decodeLARs(idx [8]int) [8]float64 {
	var out [8]float64
	for i, q := range idx {
		q = clampInt(q, larMin(i), larMax(i))
		out[i] = (float64(q) - larOffset[i]) / larScale[i]
	}
	return out
}
