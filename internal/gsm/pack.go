package gsm

import "fmt"

// Signature is the 4-bit magic carried in the first nibble of every
// packed frame, as in the standard's file format.
const Signature = 0xD

// bitWriter packs MSB-first into a fixed frame.
type bitWriter struct {
	buf [FrameBytes]byte
	pos int
}

func (w *bitWriter) put(v, bits int) {
	for i := bits - 1; i >= 0; i-- {
		if v>>uint(i)&1 == 1 {
			w.buf[w.pos/8] |= 1 << uint(7-w.pos%8)
		}
		w.pos++
	}
}

// bitReader unpacks MSB-first.
type bitReader struct {
	buf []byte
	pos int
}

func (r *bitReader) get(bits int) int {
	v := 0
	for i := 0; i < bits; i++ {
		v <<= 1
		if r.buf[r.pos/8]>>uint(7-r.pos%8)&1 == 1 {
			v |= 1
		}
		r.pos++
	}
	return v
}

// Pack serializes the frame parameters into the standard 33-byte frame:
// the 0xD signature nibble, 36 bits of LARs, then four subframes of
// lag(7) gain(2) grid(2) xmax(6) and thirteen 3-bit pulses. Out-of-range
// parameters are clamped, never truncated bit-wise.
func Pack(p Params) [FrameBytes]byte {
	var w bitWriter
	w.put(Signature, 4)
	for i, q := range p.LAR {
		q = clampInt(q, larMin(i), larMax(i))
		w.put(q-larMin(i), larBits[i]) // offset-binary
	}
	for sf := 0; sf < Subframes; sf++ {
		w.put(clampInt(p.Lag[sf], MinLag, MaxLag), 7)
		w.put(clampInt(p.Gain[sf], 0, 3), 2)
		w.put(clampInt(p.Grid[sf], 0, 3), 2)
		w.put(clampInt(p.Xmax[sf], 0, 63), 6)
		for _, q := range p.X[sf] {
			w.put(clampInt(q, -4, 3)+4, 3) // offset-binary
		}
	}
	return w.buf
}

// Unpack deserializes a 33-byte frame. It returns an error when the
// signature nibble is wrong or the buffer is short; parameter fields are
// range-checked by construction of the bit widths.
func Unpack(buf []byte) (Params, error) {
	var p Params
	if len(buf) < FrameBytes {
		return p, fmt.Errorf("gsm: frame too short: %d bytes", len(buf))
	}
	r := bitReader{buf: buf}
	if sig := r.get(4); sig != Signature {
		return p, fmt.Errorf("gsm: bad frame signature %#x", sig)
	}
	for i := range p.LAR {
		p.LAR[i] = r.get(larBits[i]) + larMin(i)
	}
	for sf := 0; sf < Subframes; sf++ {
		p.Lag[sf] = r.get(7)
		p.Gain[sf] = r.get(2)
		p.Grid[sf] = r.get(2)
		p.Xmax[sf] = r.get(6)
		for i := range p.X[sf] {
			p.X[sf][i] = r.get(3) - 4
		}
	}
	return p, nil
}
