package gsm

import "math"

// weightH is the RPE weighting filter of the standard (H in Q13,
// normalized here), an 11-tap low-pass matched to the ×3 decimation.
var weightH = [11]float64{
	-134.0 / 8192, -374.0 / 8192, 0, 2054.0 / 8192, 5741.0 / 8192,
	8192.0 / 8192, 5741.0 / 8192, 2054.0 / 8192, 0, -374.0 / 8192, -134.0 / 8192,
}

// rpeEncode analyses one 40-sample LTP residual: weighting filter, grid
// (sub-sampling phase) selection by energy, and APCM quantization.
// It returns the selected grid, the block-maximum index, the 13
// quantized pulse indices, and the locally decoded pulses (for the
// encoder's reconstruction path).
func rpeEncode(res []float64) (grid, xmaxIdx int, xq [RPESamples]int, xdec [RPESamples]float64) {
	// Weighting filter, zero-padded convolution centred on each sample.
	var x [SubSamples]float64
	for k := 0; k < SubSamples; k++ {
		var acc float64
		for i := 0; i < 11; i++ {
			j := k + 5 - i
			if j >= 0 && j < SubSamples {
				acc += weightH[i] * res[j]
			}
		}
		x[k] = acc
	}
	// Grid selection: the phase m ∈ {0..3} whose 13 decimated samples
	// carry the most energy.
	bestE := -1.0
	for m := 0; m < 4; m++ {
		var e float64
		for i := 0; i < RPESamples; i++ {
			v := x[m+3*i]
			e += v * v
		}
		if e > bestE {
			bestE = e
			grid = m
		}
	}
	var sel [RPESamples]float64
	for i := 0; i < RPESamples; i++ {
		sel[i] = x[grid+3*i]
	}
	// APCM: quantize the block maximum logarithmically (6 bits:
	// 4-level mantissa per binary exponent), then the samples uniformly
	// to 3 bits relative to the decoded maximum.
	xmax := 0.0
	for _, v := range sel {
		if a := math.Abs(v); a > xmax {
			xmax = a
		}
	}
	xmaxIdx = quantizeXmax(xmax)
	xmaxDec := decodeXmax(xmaxIdx)
	for i, v := range sel {
		q := 0
		if xmaxDec > 0 {
			q = int(math.Floor(v / xmaxDec * 4))
		}
		q = clampInt(q, -4, 3)
		xq[i] = q
		xdec[i] = pulseDecode(q, xmaxDec)
	}
	return grid, xmaxIdx, xq, xdec
}

// quantizeXmax maps a block maximum to its 6-bit logarithmic index:
// 3 exponent-ish bits × 4 mantissa levels covering [1, 2^16).
func quantizeXmax(xmax float64) int {
	if xmax < 1 {
		return 0
	}
	exp := int(math.Floor(math.Log2(xmax)))
	if exp > 15 {
		exp = 15
	}
	mant := int((xmax/math.Pow(2, float64(exp)) - 1) * 4)
	mant = clampInt(mant, 0, 3)
	return exp*4 + mant
}

// decodeXmax reconstructs the block maximum from its index. Index 0 is
// the smallest level (≈1.1), not zero: near-silent blocks decode to
// sub-LSB pulses, as in the standard's logarithmic table.
func decodeXmax(idx int) float64 {
	idx = clampInt(idx, 0, 63)
	exp := idx / 4
	mant := idx % 4
	return (1 + (float64(mant)+0.5)/4) * math.Pow(2, float64(exp))
}

// pulseDecode reconstructs one pulse from its 3-bit index.
func pulseDecode(q int, xmaxDec float64) float64 {
	return (float64(q) + 0.5) / 4 * xmaxDec
}

// apcmDecode reconstructs the 13 pulses of one subframe.
func apcmDecode(xmaxIdx int, xq [RPESamples]int) [RPESamples]float64 {
	var out [RPESamples]float64
	xm := decodeXmax(xmaxIdx)
	for i, q := range xq {
		out[i] = pulseDecode(clampInt(q, -4, 3), xm)
	}
	return out
}

// rpeUpsample places the 13 decoded pulses back on their grid positions
// within a zeroed 40-sample excitation.
func rpeUpsample(ep *[SubSamples]float64, grid int, xdec [RPESamples]float64) {
	for i := range ep {
		ep[i] = 0
	}
	for i, v := range xdec {
		ep[grid+3*i] = v
	}
}
