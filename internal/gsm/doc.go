// Package gsm implements a GSM 06.10 full-rate (RPE-LTP) speech codec —
// the application the paper's evaluation simulates on its 4-ISS system.
//
// The codec follows the standard's structure exactly:
//
//   - Preprocessing: DC offset compensation and pre-emphasis.
//   - LPC analysis per 160-sample frame: autocorrelation, Schur
//     recursion to 8 reflection coefficients, log-area-ratio (LAR)
//     transform, and quantization to the standard's 36 bits.
//   - Short-term analysis filtering (lattice) with the decoded
//     coefficients, interpolated over four zones per frame.
//   - Per 40-sample subframe: long-term prediction (lag 40..120, 7 bits;
//     gain quantized to 2 bits against the DLB thresholds), RPE grid
//     decimation (4 candidate grids, 2 bits) and APCM quantization
//     (6-bit block maximum, thirteen 3-bit samples).
//   - 260 bits per frame, packed into the standard 33-byte frame with
//     the 0xD signature nibble.
//
// Internal arithmetic uses float64 where the standard prescribes specific
// fixed-point roundings; the encoded bitstream honours every field width,
// so frame sizes, parameter ranges and codec state behaviour match the
// standard. Bit-exactness against the ETSI test vectors is out of scope
// (no vectors available offline); the tests verify structure, determinism
// and reconstruction quality instead. This matches the workload's role in
// the paper: generating realistic compute and dynamic-memory traffic.
package gsm
