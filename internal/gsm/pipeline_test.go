package gsm_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/gsm"
)

// runPipeline executes the 4-PE pipeline on a built system and returns
// the result and total simulated cycles.
func runPipeline(t *testing.T, frames, numSM int) (*gsm.PipelineResult, uint64) {
	t.Helper()
	tasks, res := gsm.BuildPipeline(gsm.PipelineConfig{
		Frames: frames,
		Seed:   42,
		NumSM:  numSM,
		// Small compute budgets keep the test quick; correctness is
		// unaffected.
		EncodeCycles: 500,
		DecodeCycles: 200,
	})
	sys, err := config.Build(config.SystemConfig{
		Masters:  4,
		Memories: numSM,
		MemKind:  config.MemWrapper,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddProcs(tasks...); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 100_000_000); err != nil {
		t.Fatalf("pipeline did not finish: %v", err)
	}
	// Every frame buffer freed: no leaks in any wrapper except the three
	// channel control blocks.
	live := 0
	for _, w := range sys.Wrappers {
		live += w.Table().Len()
	}
	if live != 3 {
		t.Errorf("live allocations = %d, want 3 channel control blocks", live)
	}
	return res, sys.Kernel.Cycle()
}

func TestPipelineMatchesReferenceCodec(t *testing.T) {
	const frames = 6
	res, _ := runPipeline(t, frames, 1)
	if res.Frames != frames {
		t.Fatalf("sink saw %d frames, want %d", res.Frames, frames)
	}
	want := gsm.ReferenceTranscode(frames, 42)
	if len(res.Out) != len(want) {
		t.Fatalf("output length %d, want %d", len(res.Out), len(want))
	}
	for i := range want {
		if res.Out[i] != want[i] {
			t.Fatalf("sample %d: pipeline %d, reference %d — shared-memory transport must be bit-exact", i, res.Out[i], want[i])
		}
	}
}

func TestPipelineAcrossFourMemories(t *testing.T) {
	const frames = 6
	res, _ := runPipeline(t, frames, 4)
	if res.Frames != frames {
		t.Fatalf("sink saw %d frames, want %d", res.Frames, frames)
	}
	want := gsm.ReferenceTranscode(frames, 42)
	for i := range want {
		if res.Out[i] != want[i] {
			t.Fatalf("sample %d differs with 4 memories", i)
		}
	}
}

func TestPipelineDeterministicCycles(t *testing.T) {
	_, a := runPipeline(t, 4, 2)
	_, b := runPipeline(t, 4, 2)
	if a != b {
		t.Errorf("pipeline cycles differ across runs: %d vs %d", a, b)
	}
}
