package gsm

// Frame geometry of GSM 06.10 full rate.
const (
	// FrameSamples is the number of 8 kHz PCM samples per frame (20 ms).
	FrameSamples = 160
	// SubSamples is the number of samples per subframe.
	SubSamples = 40
	// Subframes is the number of subframes per frame.
	Subframes = 4
	// RPESamples is the number of decimated RPE samples per subframe.
	RPESamples = 13
	// FrameBits is the encoded size: 36 LAR bits + 4×(7+2+2+6+13×3).
	FrameBits = 260
	// FrameBytes is the packed size including the signature nibble.
	FrameBytes = 33
	// MinLag and MaxLag bound the long-term predictor lag.
	MinLag, MaxLag = 40, 120
)

// Params is one encoded frame before bit packing: every field honours
// the standard's range.
type Params struct {
	LAR  [8]int                     // quantized log-area ratios: 6,6,5,5,4,4,3,3 bits
	Lag  [Subframes]int             // LTP lag, 7 bits (40..120)
	Gain [Subframes]int             // LTP gain index, 2 bits
	Grid [Subframes]int             // RPE grid position, 2 bits
	Xmax [Subframes]int             // block maximum index, 6 bits
	X    [Subframes][RPESamples]int // RPE pulses, 3 bits each
}

// larBits are the per-coefficient quantizer widths from the standard.
var larBits = [8]int{6, 6, 5, 5, 4, 4, 3, 3}

// larMin is the minimum quantizer index (two's-complement range).
func larMin(i int) int { return -(1 << (larBits[i] - 1)) }

// larMax is the maximum quantizer index.
func larMax(i int) int { return 1<<(larBits[i]-1) - 1 }

// Encoder carries the inter-frame state of the analysis side.
type Encoder struct {
	// preprocessing state
	z1, l2 float64 // offset-compensation state
	mp     float64 // pre-emphasis memory

	// short-term analysis filter state
	u [8]float64

	// prevLAR holds the previous frame's decoded LARs for the standard's
	// four-zone interpolation (§4.2.9); zero for the first frame.
	prevLAR [8]float64

	// reconstructed short-term residual history for the LTP
	dp [MaxLag + SubSamples]float64
}

// NewEncoder returns an encoder with cleared state.
func NewEncoder() *Encoder { return &Encoder{} }

// Decoder carries the inter-frame state of the synthesis side.
type Decoder struct {
	drp     [MaxLag + SubSamples]float64 // reconstructed residual history
	v       [9]float64                   // synthesis lattice state
	msr     float64                      // de-emphasis memory
	prevLAR [8]float64                   // previous frame's decoded LARs
}

// larZones computes the four interpolation zones of GSM 06.10 §4.2.9:
// the frame's first 13, next 14, next 13 samples use mixes of the
// previous and current decoded LARs (¾–¼, ½–½, ¼–¾), the remaining 120
// use the current ones. Returned as reflection-coefficient sets per
// zone, plus the per-sample zone index bounds.
func larZones(prev, cur [8]float64) (rp [4][8]float64) {
	weights := [4][2]float64{{0.75, 0.25}, {0.5, 0.5}, {0.25, 0.75}, {0, 1}}
	for z, w := range weights {
		for i := 0; i < 8; i++ {
			rp[z][i] = larToRefl(w[0]*prev[i] + w[1]*cur[i])
		}
	}
	return rp
}

// zoneOf maps a sample index to its interpolation zone.
func zoneOf(k int) int {
	switch {
	case k < 13:
		return 0
	case k < 27:
		return 1
	case k < 40:
		return 2
	default:
		return 3
	}
}

// NewDecoder returns a decoder with cleared state.
func NewDecoder() *Decoder { return &Decoder{} }

// Encode analyses one 160-sample frame. It panics if the input length is
// not FrameSamples (programming error, not data error).
func (e *Encoder) Encode(pcm []int16) Params {
	if len(pcm) != FrameSamples {
		panic("gsm: Encode needs exactly 160 samples")
	}
	var p Params

	// --- preprocessing: offset compensation + pre-emphasis ---
	var s [FrameSamples]float64
	const alpha = 32735.0 / 32768.0
	const beta = 28180.0 / 32768.0
	for k := 0; k < FrameSamples; k++ {
		so := float64(pcm[k])
		// offset compensation (one-pole high-pass)
		sof := so - e.z1 + alpha*e.l2
		e.z1 = so
		e.l2 = sof
		// pre-emphasis
		s[k] = sof - beta*e.mp
		e.mp = sof
	}

	// --- LPC analysis: autocorrelation + Schur + LAR quantization ---
	acf := autocorrelate(s[:], 9)
	refl := schur(acf)
	lar := reflToLAR(refl)
	for i := 0; i < 8; i++ {
		p.LAR[i] = quantizeLAR(i, lar[i])
	}
	// Decode (as the decoder will) for the analysis filter, and build
	// the four LAR-interpolation zones against the previous frame.
	declar := decodeLARs(p.LAR)
	rpz := larZones(e.prevLAR, declar)
	e.prevLAR = declar

	// --- short-term analysis filtering over the four zones ---
	var d [FrameSamples]float64
	for k := 0; k < FrameSamples; k++ {
		d[k] = e.analysisLattice(s[k], rpz[zoneOf(k)])
	}

	// --- per-subframe LTP + RPE ---
	for sf := 0; sf < Subframes; sf++ {
		sub := d[sf*SubSamples : (sf+1)*SubSamples]

		lag, gainIdx := e.ltpSearch(sub)
		p.Lag[sf] = lag
		p.Gain[sf] = gainIdx
		b := qlb[gainIdx]

		// Snapshot the lagged reconstructed-residual segment dp'(k−lag)
		// before this subframe's samples enter the history: both the
		// residual and the local reconstruction must see the same
		// prediction, exactly as in the standard.
		var lagged [SubSamples]float64
		for k := 0; k < SubSamples; k++ {
			lagged[k] = e.dpRel(k - lag)
		}

		// LTP residual e(k) = d(k) − b·dp'(k−lag)
		var res [SubSamples]float64
		for k := 0; k < SubSamples; k++ {
			res[k] = sub[k] - b*lagged[k]
		}

		// RPE analysis: weighting filter, grid selection, APCM.
		grid, xmaxIdx, xmcs, xdec := rpeEncode(res[:])
		p.Grid[sf] = grid
		p.Xmax[sf] = xmaxIdx
		p.X[sf] = xmcs

		// Local reconstruction updates the dp history exactly like the
		// decoder, keeping both predictors in lockstep.
		var ep [SubSamples]float64
		rpeUpsample(&ep, grid, xdec)
		var recon [SubSamples]float64
		for k := 0; k < SubSamples; k++ {
			recon[k] = ep[k] + b*lagged[k]
		}
		e.pushDP(recon[:])
	}
	return p
}

// dpRel reads the reconstructed residual j samples before the current
// subframe's start (j is negative: −lag ≤ j < 0 reaches history).
func (e *Encoder) dpRel(j int) float64 {
	return e.dp[len(e.dp)+j]
}

// pushDP appends one subframe of reconstructed residual, sliding the
// history window left by SubSamples.
func (e *Encoder) pushDP(sub []float64) {
	copy(e.dp[:], e.dp[SubSamples:])
	copy(e.dp[len(e.dp)-SubSamples:], sub)
}

// analysisLattice runs one sample through the 8th-order analysis lattice.
func (e *Encoder) analysisLattice(in float64, rp [8]float64) float64 {
	di := in
	sav := di
	for i := 0; i < 8; i++ {
		ui := e.u[i]
		temp := ui + rp[i]*di
		di += rp[i] * ui
		e.u[i] = sav
		sav = temp
	}
	return di
}

// ltpSearch finds the lag maximizing the cross-correlation between the
// current subframe and the reconstructed residual history, and the
// quantized gain index against the DLB thresholds.
func (e *Encoder) ltpSearch(sub []float64) (lag, gainIdx int) {
	best, bestLag := 0.0, MinLag
	for n := MinLag; n <= MaxLag; n++ {
		var corr float64
		for k := 0; k < SubSamples; k++ {
			corr += sub[k] * e.dpRel(k-n)
		}
		if corr > best {
			best = corr
			bestLag = n
		}
	}
	var energy float64
	for k := 0; k < SubSamples; k++ {
		v := e.dpRel(k - bestLag)
		energy += v * v
	}
	var b float64
	if energy > 0 {
		b = best / energy
	}
	if b < 0 {
		b = 0
	}
	// Quantize against DLB thresholds.
	idx := 3
	for i, th := range dlb {
		if b < th {
			idx = i
			break
		}
	}
	return bestLag, idx
}

// dlb are the LTP gain decision thresholds; qlb the reconstruction
// levels (GSM 06.10 tables 4.3a/4.3b, in linear form).
var dlb = [3]float64{0.2, 0.5, 0.8}
var qlb = [4]float64{0.10, 0.35, 0.65, 1.00}

// Decode synthesizes one frame of 160 PCM samples from parameters.
func (d *Decoder) Decode(p Params) []int16 {
	declar := decodeLARs(p.LAR)
	rpz := larZones(d.prevLAR, declar)
	d.prevLAR = declar

	var dsum [FrameSamples]float64
	for sf := 0; sf < Subframes; sf++ {
		b := qlb[clampInt(p.Gain[sf], 0, 3)]
		lag := clampInt(p.Lag[sf], MinLag, MaxLag)
		xdec := apcmDecode(p.Xmax[sf], p.X[sf])
		var ep [SubSamples]float64
		rpeUpsample(&ep, clampInt(p.Grid[sf], 0, 3), xdec)
		// Same snapshot discipline as the encoder's local reconstruction.
		var lagged [SubSamples]float64
		for k := 0; k < SubSamples; k++ {
			lagged[k] = d.drp[len(d.drp)+k-lag]
		}
		var recon [SubSamples]float64
		for k := 0; k < SubSamples; k++ {
			recon[k] = ep[k] + b*lagged[k]
			dsum[sf*SubSamples+k] = recon[k]
		}
		copy(d.drp[:], d.drp[SubSamples:])
		copy(d.drp[len(d.drp)-SubSamples:], recon[:])
	}

	// Short-term synthesis (inverse lattice) + de-emphasis, using the
	// same zone interpolation as the analysis side.
	out := make([]int16, FrameSamples)
	const beta = 28180.0 / 32768.0
	for k := 0; k < FrameSamples; k++ {
		rp := rpz[zoneOf(k)]
		sri := dsum[k]
		for i := 7; i >= 0; i-- {
			sri -= rp[i] * d.v[i]
			d.v[i+1] = d.v[i] + rp[i]*sri
		}
		d.v[0] = sri
		// de-emphasis
		s := sri + beta*d.msr
		d.msr = s
		out[k] = sat16(s)
	}
	return out
}

// sat16 saturates a float to the int16 range.
func sat16(v float64) int16 {
	switch {
	case v > 32767:
		return 32767
	case v < -32768:
		return -32768
	default:
		return int16(v)
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
