package config

import (
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/isa"
	"repro/internal/smapi"
	"repro/internal/trace"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(SystemConfig{Masters: 0, Memories: 1}); err == nil {
		t.Error("zero masters accepted")
	}
	if _, err := Build(SystemConfig{Masters: 1, Memories: 0}); err == nil {
		t.Error("zero memories accepted")
	}
	if _, err := Build(SystemConfig{Masters: 1, Memories: 1, MemKind: MemKind(9)}); err == nil {
		t.Error("bad mem kind accepted")
	}
	if _, err := Build(SystemConfig{Masters: 1, Memories: 1, Interconnect: InterconnectKind(9)}); err == nil {
		t.Error("bad interconnect accepted")
	}
}

func TestBuildShapes(t *testing.T) {
	sys, err := Build(SystemConfig{Masters: 3, Memories: 2, MemKind: MemWrapper})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.MasterPorts) != 3 || len(sys.SlavePorts) != 2 || len(sys.Wrappers) != 2 {
		t.Errorf("shapes wrong: %d/%d/%d", len(sys.MasterPorts), len(sys.SlavePorts), len(sys.Wrappers))
	}
	if sys.Inter.Name() != "bus" {
		t.Errorf("interconnect = %q", sys.Inter.Name())
	}

	xb, err := Build(SystemConfig{Masters: 1, Memories: 1, MemKind: MemStatic, Interconnect: InterCrossbar})
	if err != nil {
		t.Fatal(err)
	}
	if len(xb.Statics) != 1 || xb.Inter.Name() != "xbar" {
		t.Error("crossbar/static build wrong")
	}

	hp, err := Build(SystemConfig{Masters: 1, Memories: 1, MemKind: MemHeapSim})
	if err != nil {
		t.Fatal(err)
	}
	if len(hp.Heaps) != 1 {
		t.Error("heapsim build wrong")
	}
}

func TestKindStrings(t *testing.T) {
	if MemWrapper.String() != "wrapper" || MemStatic.String() != "static" || MemHeapSim.String() != "heapsim" {
		t.Error("MemKind strings wrong")
	}
	if InterBus.String() != "bus" || InterCrossbar.String() != "crossbar" {
		t.Error("InterconnectKind strings wrong")
	}
	if MemKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

// runTrace replays tr on a system of the given kind and returns cycles.
func runTrace(t *testing.T, kind MemKind, masters, memories int, tr *trace.Trace, mode trace.Mode) uint64 {
	t.Helper()
	memBytes := tr.StaticBytesNeeded()
	if memBytes < 1<<16 {
		memBytes = 1 << 16
	}
	sys, err := Build(SystemConfig{
		Masters: masters, Memories: memories, MemKind: kind, MemBytes: memBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks []smapi.Task
	for i := 0; i < masters; i++ {
		tasks = append(tasks, trace.ReplayTask(tr, mode, nil))
	}
	if err := sys.AddProcs(tasks...); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 50_000_000); err != nil {
		t.Fatalf("replay did not finish: %v", err)
	}
	return sys.Kernel.Cycle()
}

func TestTraceReplayAgainstAllMemoryKinds(t *testing.T) {
	// The same trace completes without in-band errors against every
	// memory model — the property experiments E2/E3 rely on.
	tr := trace.Generate(trace.GenConfig{
		Seed: 11, Events: 400, Slots: 8, NumSM: 1,
		MinDim: 2, MaxDim: 32, DType: bus.U32,
		Mix: trace.DefaultMix(), PtrArithPct: 25,
	})
	wrapperCycles := runTrace(t, MemWrapper, 1, 1, tr, trace.ModeDynamic)
	staticCycles := runTrace(t, MemStatic, 1, 1, tr, trace.ModeStatic)
	heapCycles := runTrace(t, MemHeapSim, 1, 1, tr, trace.ModeDynamic)
	if wrapperCycles == 0 || staticCycles == 0 || heapCycles == 0 {
		t.Error("zero-cycle replay")
	}
	// The detailed model must be slower in simulated time than the
	// wrapper on the same workload (it walks free lists in-sim).
	if heapCycles <= wrapperCycles {
		t.Errorf("heapsim (%d cycles) not slower than wrapper (%d)", heapCycles, wrapperCycles)
	}
}

func TestTraceReplayDeterministicAcrossBuilds(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Seed: 5, Events: 300, Slots: 4, NumSM: 2,
		MinDim: 1, MaxDim: 16, DType: bus.U16, Mix: trace.DefaultMix(),
	})
	a := runTrace(t, MemWrapper, 2, 2, tr, trace.ModeDynamic)
	b := runTrace(t, MemWrapper, 2, 2, tr, trace.ModeDynamic)
	if a != b {
		t.Errorf("cycle counts differ across identical builds: %d vs %d", a, b)
	}
}

func TestMultiMemoryRouting(t *testing.T) {
	// A trace spread over 4 memories drives transactions to all of them.
	tr := trace.Generate(trace.GenConfig{
		Seed: 13, Events: 500, Slots: 8, NumSM: 4,
		MinDim: 1, MaxDim: 8, DType: bus.U32, Mix: trace.DefaultMix(),
	})
	sys, err := Build(SystemConfig{Masters: 1, Memories: 4, MemKind: MemWrapper})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddProcs(trace.ReplayTask(tr, trace.ModeDynamic, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 10_000_000); err != nil {
		t.Fatal(err)
	}
	st := sys.Inter.Stats()
	for i, n := range st.PerSlave {
		if n == 0 {
			t.Errorf("memory %d received no transactions", i)
		}
	}
	for _, w := range sys.Wrappers {
		if w.Stats().Ops[bus.OpAlloc] == 0 {
			t.Errorf("%s never allocated", w.Name())
		}
	}
}

func TestAddProcsValidation(t *testing.T) {
	sys, err := Build(SystemConfig{Masters: 1, Memories: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddProcs(nil, nil); err == nil {
		t.Error("too many tasks accepted")
	}
	if err := sys.AddCPUs(nil, nil); err == nil {
		t.Error("too many programs accepted")
	}
}

func TestISSSystemEndToEnd(t *testing.T) {
	// Four ISSs, each allocating and touching its own buffer in a shared
	// wrapper memory, through the real bus. Exit codes verify data.
	src := `
		mov  r0, #32
		mov  r1, #2        ; u32
		mov  r2, #0        ; sm 0
		bl   sm_malloc
		cmp  r1, #0
		bne  fail
		mov  r4, r0

		mov  r0, r4
		li   r1, 555
		mov  r2, #0
		bl   sm_write
		cmp  r1, #0
		bne  fail

		mov  r0, r4
		mov  r2, #0
		bl   sm_read
		cmp  r1, #0
		bne  fail
		swi  #0
	fail:	li   r0, 0xDEAD
		swi  #0
	` + smapi.Runtime
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Build(SystemConfig{Masters: 4, Memories: 1, MemKind: MemWrapper})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddCPUs(prog.Code, prog.Code, prog.Code, prog.Code); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Kernel.RunUntil(sys.CPUsHalted, 1_000_000); err != nil {
		t.Fatal(err)
	}
	for i, cpu := range sys.CPUs {
		if cpu.ExitCode() != 555 {
			t.Errorf("cpu %d exit = %#x, want 555", i, cpu.ExitCode())
		}
	}
	// Four independent allocations live in the wrapper.
	if got := sys.Wrappers[0].Table().Len(); got != 4 {
		t.Errorf("live allocations = %d, want 4", got)
	}
}

func TestFixedPriorityOption(t *testing.T) {
	sys, err := Build(SystemConfig{Masters: 2, Memories: 1, FixedPriority: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = sys // construction is the test; arbiter behaviour is tested in bus
}

func TestMixedMastersGetDistinctLinks(t *testing.T) {
	// A Proc and a CPU added to the same system must claim different
	// master links (regression: both used to start at link 0).
	sys, err := Build(SystemConfig{Masters: 2, Memories: 1})
	if err != nil {
		t.Fatal(err)
	}
	task := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		if _, code := m.Malloc(4, bus.U32); code != bus.OK {
			panic(code)
		}
	}
	prog, err := isa.Assemble(`
		mov r0, #0
		swi #0
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddProcs(task); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddCPUs(prog.Code); err != nil {
		t.Fatal(err)
	}
	if sys.NextFreeMaster() != -1 {
		t.Errorf("NextFreeMaster = %d, want -1 (all taken)", sys.NextFreeMaster())
	}
	done := func() bool { return sys.ProcsDone() && sys.CPUsHalted() }
	if _, err := sys.Kernel.RunUntil(done, 100000); err != nil {
		t.Fatal(err)
	}
	// Overcommit after mixing is rejected.
	if err := sys.AddProcs(task); err == nil {
		t.Error("overcommitted AddProcs accepted")
	}
}

func TestSnapshotProcErrorIsActionable(t *testing.T) {
	// Snapshotting a system with native smapi procs must fail with an
	// error that names the offending module, explains why its state
	// cannot travel, and points at the docs section covering it —
	// a user hitting this mid-sweep should not need to read source.
	sys, err := Build(SystemConfig{Masters: 1, Memories: 1})
	if err != nil {
		t.Fatal(err)
	}
	task := func(ctx *smapi.Ctx) {}
	if err := sys.AddProcs(task); err != nil {
		t.Fatal(err)
	}
	_, err = sys.Snapshot()
	if err == nil {
		t.Fatal("Snapshot succeeded with a native proc attached")
	}
	msg := err.Error()
	for _, want := range []string{
		sys.Procs[0].Name(), // names the offending module
		"goroutine",         // says why the state does not serialize
		"AddCPUs",           // offers the supported alternative
		`docs/SNAPSHOT.md "What deliberately does not travel"`, // points at the docs
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("Snapshot error %q missing %q", msg, want)
		}
	}
}
