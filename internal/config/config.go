package config

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dma"
	"repro/internal/heapsim"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/smapi"
)

// MemKind selects the memory model instantiated for every module.
type MemKind int

const (
	// MemWrapper is the paper's host-backed dynamic shared memory.
	MemWrapper MemKind = iota
	// MemStatic is the traditional static table memory.
	MemStatic
	// MemHeapSim is the detailed in-simulation allocator model.
	MemHeapSim
	// MemDRAM is the banked DRAM timing model: flat static-table
	// semantics with open-/close-page row timing, bank interleaving and
	// periodic refresh (see internal/mem DRAM). Cacheable like MemStatic.
	MemDRAM
)

// String names the kind for reports.
func (k MemKind) String() string {
	switch k {
	case MemWrapper:
		return "wrapper"
	case MemStatic:
		return "static"
	case MemHeapSim:
		return "heapsim"
	case MemDRAM:
		return "dram"
	default:
		return fmt.Sprintf("MemKind(%d)", int(k))
	}
}

// InterconnectKind selects the interconnect topology.
type InterconnectKind int

const (
	// InterBus is the shared arbitrated bus (the paper's configuration).
	InterBus InterconnectKind = iota
	// InterCrossbar gives every memory an independent channel (A1
	// ablation).
	InterCrossbar
)

// String names the interconnect for reports.
func (k InterconnectKind) String() string {
	if k == InterCrossbar {
		return "crossbar"
	}
	return "bus"
}

// SystemConfig describes a system to build.
type SystemConfig struct {
	// Masters is the number of master ports (PEs or ISSs).
	Masters int
	// Memories is the number of shared memory modules.
	Memories int
	// MemKind selects the memory model (default MemWrapper).
	MemKind MemKind
	// MemBytes is the per-module capacity (wrapper TotalSize, static
	// table size, heapsim arena). Default 1 MiB.
	MemBytes uint32
	// Interconnect selects bus or crossbar.
	Interconnect InterconnectKind
	// FixedPriority selects the fixed-priority arbiter instead of
	// round-robin.
	FixedPriority bool
	// BusWordCycles is the interconnect's per-word occupancy (default 1).
	BusWordCycles uint32
	// OutstandingDepth is the per-port outstanding-transaction capacity
	// (the credit pool of the split-transaction protocol). Zero and 1
	// select the classic single-outstanding ports, bit-identical to the
	// pre-port Link protocol.
	OutstandingDepth int
	// SplitBus selects the split-transaction interconnect engine: the
	// address phase releases the bus (or crossbar lane) while the slave
	// processes, and completed transactions re-arbitrate for the response
	// phase. Off by default — the occupied protocol of the paper.
	SplitBus bool
	// OutOfOrder lets master ports deliver completions in completion
	// order instead of issue order. Off by default (in-order delivery).
	OutOfOrder bool
	// Cache inserts a private write-back, write-allocate L1 cache between
	// every master and the interconnect (see internal/cache). Masters
	// keep driving MasterPorts; the interconnect's master side moves to
	// the caches' downstream ports. Scalar accesses to static memories
	// are cached; everything else passes through. Off by default.
	Cache bool
	// Coherent attaches every cache to a MESI snoop domain on the
	// interconnect, keeping multi-master configurations correct under
	// shared lines. Implies Cache. Off by default.
	Coherent bool
	// CacheSets, CacheWays, CacheLineBytes and CacheMSHRs override the
	// L1 geometry (zero values select the cache package defaults:
	// 64 sets × 2 ways × 32-byte lines, 4 MSHRs).
	CacheSets, CacheWays int
	CacheLineBytes       uint32
	CacheMSHRs           int
	// L2 inserts a shared, inclusive, set-associative L2 cache between
	// the interconnect and the memories (see internal/cache L2): the
	// interconnect's slave ports become the L2's upstream face and every
	// memory moves behind a private in-order link. Requires Coherent —
	// inclusion is enforced by back-invalidating the L1 domain — and a
	// cacheable memory kind (MemStatic or MemDRAM). Off by default.
	L2 bool
	// L2Sets, L2Ways, L2LineBytes and L2MSHRs override the L2 geometry
	// (zero values select the cache package defaults: 64 sets × 8 ways ×
	// 64-byte lines, 8 MSHRs). L2LineBytes must be a multiple of the L1
	// line size.
	L2Sets, L2Ways int
	L2LineBytes    uint32
	L2MSHRs        int
	// Partition selects the L2 way-partitioning policy: PartNone (plain
	// shared LRU), PartSWP (static way masks) or PartUCP (utility-based
	// repartitioning driven by per-master shadow-tag monitors).
	Partition cache.PartitionKind
	// L2SWPMasks overrides the static per-master way masks (PartSWP
	// only; nil → contiguous equal split).
	L2SWPMasks []uint64
	// UCPPeriod is the number of demand accesses between UCP
	// repartitions (0 → cache package default).
	UCPPeriod uint64
	// DRAMBanks, DRAMRowBytes, DRAMClosePage, DRAMRefreshPeriod and
	// DRAMRefreshCycles configure the MemDRAM model (zero values select
	// the mem package defaults; refresh off unless both refresh knobs
	// are set).
	DRAMBanks         int
	DRAMRowBytes      uint32
	DRAMClosePage     bool
	DRAMRefreshPeriod uint64
	DRAMRefreshCycles uint32
	// DRAMTiming overrides the row timing (nil → DefaultDRAMTiming).
	DRAMTiming *mem.DRAMTiming
	// WrapperDelays overrides the wrapper timing (nil → DefaultDelays).
	WrapperDelays *core.DelayParams
	// StaticDelays overrides static RAM timing (nil → DefaultDelays).
	StaticDelays *mem.Delays
	// HeapWordLatency is heapsim's per-metadata-word cost (default 1).
	HeapWordLatency uint32
	// AllocPolicy selects the allocation policy of every memory module
	// (see internal/alloc): for MemHeapSim it is the in-arena metadata
	// allocator whose word traffic is charged cycles; for MemWrapper it
	// is the virtual-address placement discipline (functional only, no
	// timing change). The zero value keeps each model's historical
	// behavior — heapsim first-fit, wrapper bump placement — bit
	// identical. MemStatic has no allocator and ignores it.
	AllocPolicy alloc.Kind
	// Endian sets the wrapper's simulated byte order.
	Endian core.Endian
	// LinearLookup forces the wrapper's linear pointer-table search
	// (ablation A2).
	LinearLookup bool
	// EnforceReadReservation extends wrapper reservations to reads.
	EnforceReadReservation bool
	// Lockstep pins the kernel to lockstep stepping instead of the
	// default event-driven (idle-skip) scheduler. The two are observably
	// identical; lockstep is the reference side of differential tests
	// and the baseline of scheduler benchmarks.
	Lockstep bool
	// Workers is the tick-phase parallelism passed to Kernel.SetWorkers:
	// values > 1 shard the modules across that many concurrent workers,
	// 1 pins the sequential tick loop, negative selects GOMAXPROCS, and
	// 0 — the zero value — keeps the kernel's sequential default, so
	// existing configurations are unaffected. All settings are
	// observably identical; see the sim package docs. (The commands'
	// -workers flags map their conventional "0 = all cores" to a
	// GOMAXPROCS count before building.)
	Workers int
	// DisableISSBatch turns off ISS instruction batching (on by default
	// for built systems; see iss.Config.Batch). Batching is cycle-exact
	// at every module and signal boundary — the knob exists as the
	// plain reference side of differential tests and for host code that
	// inspects CPU registers or counters between individual cycles.
	DisableISSBatch bool
	// DisableISSDecodeCache turns off the per-CPU decode cache (on by
	// default for built systems; see iss.Config.DecodeCache).
	DisableISSDecodeCache bool
}

// Interconnect is the common face of Bus and Crossbar.
type Interconnect interface {
	sim.Module
	Stats() bus.Stats
}

// System is a fully wired simulated platform.
type System struct {
	Kernel      *sim.Kernel
	MasterPorts []*bus.Port
	SlavePorts  []*bus.Port
	Inter       Interconnect

	// Caches are the per-master L1s (nil entries never occur; empty when
	// SystemConfig.Cache is off), CachePorts their downstream ports (the
	// interconnect's master side when caching is on), and Domain the
	// MESI snoop domain (nil unless Coherent).
	Caches     []*cache.Cache
	CachePorts []*bus.Port
	Domain     *cache.Domain

	// L2 is the shared inclusive second-level cache (nil unless
	// SystemConfig.L2); its private memory-side links are embedded in
	// its own snapshot section, like the L1 writeback ports.
	L2 *cache.L2

	Wrappers []*core.Wrapper
	Statics  []*mem.StaticRAM
	Heaps    []*heapsim.HeapMem
	DRAMs    []*mem.DRAM

	Procs []*smapi.Proc
	CPUs  []*iss.CPU

	// DMAs are the engines attached through AddDMA, with dmaPorts their
	// master-port indices — tracked so snapshots can re-create them.
	DMAs     []*dma.Engine
	dmaPorts []int

	Cfg SystemConfig
}

// Build wires a system. Masters are created as bare ports; attach
// software with AddProcs or AddCPUs (or drive the ports directly).
func Build(cfg SystemConfig) (*System, error) {
	if cfg.Masters <= 0 {
		return nil, fmt.Errorf("config: need at least one master, got %d", cfg.Masters)
	}
	if cfg.Memories <= 0 {
		return nil, fmt.Errorf("config: need at least one memory, got %d", cfg.Memories)
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 1 << 20
	}
	if cfg.OutstandingDepth < 0 {
		return nil, fmt.Errorf("config: negative OutstandingDepth %d", cfg.OutstandingDepth)
	}
	if cfg.L2 {
		if !cfg.Coherent {
			return nil, fmt.Errorf("config: L2 requires Coherent (inclusion back-invalidates the L1 snoop domain)")
		}
		if cfg.MemKind != MemStatic && cfg.MemKind != MemDRAM {
			return nil, fmt.Errorf("config: L2 requires a cacheable memory kind (static or dram), got %s", cfg.MemKind)
		}
	}
	k := sim.New()
	k.SetLockstep(cfg.Lockstep)
	if cfg.Workers != 0 {
		k.SetWorkers(cfg.Workers)
	}
	sys := &System{Kernel: k, Cfg: cfg}

	portCfg := bus.PortConfig{Depth: cfg.OutstandingDepth, OutOfOrder: cfg.OutOfOrder}
	for i := 0; i < cfg.Masters; i++ {
		sys.MasterPorts = append(sys.MasterPorts, bus.NewPort(k, fmt.Sprintf("m%d", i), portCfg))
	}
	l2mshrs := cfg.L2MSHRs
	if l2mshrs <= 0 {
		l2mshrs = 8
	}
	var memPorts []*bus.Port // L2 → memory links (nil without L2)
	for i := 0; i < cfg.Memories; i++ {
		// Slave-side ports always deliver in order: the interconnect is
		// their only consumer and memory FSMs complete FIFO anyway. With
		// an L2 interposed the slave port becomes the L2's upstream face
		// and must deliver out of order so hits complete under
		// outstanding misses.
		link := bus.NewPort(k, fmt.Sprintf("s%d", i), bus.PortConfig{
			Depth: cfg.OutstandingDepth, OutOfOrder: cfg.L2,
		})
		sys.SlavePorts = append(sys.SlavePorts, link)
		memLink := link
		if cfg.L2 {
			// The memory's private in-order link: FIFO position is what
			// orders L2 writebacks before the refills that displaced them.
			memLink = bus.NewPort(k, fmt.Sprintf("md%d", i), bus.PortConfig{Depth: l2mshrs + 2})
			memPorts = append(memPorts, memLink)
		}
		name := fmt.Sprintf("%s%d", cfg.MemKind, i)
		switch cfg.MemKind {
		case MemWrapper:
			delays := core.DefaultDelays()
			if cfg.WrapperDelays != nil {
				delays = *cfg.WrapperDelays
			}
			w, err := core.NewWrapper(k, core.Config{
				Name:                   name,
				TotalSize:              cfg.MemBytes,
				Endian:                 cfg.Endian,
				Delays:                 delays,
				LinearLookup:           cfg.LinearLookup,
				EnforceReadReservation: cfg.EnforceReadReservation,
				Policy:                 cfg.AllocPolicy,
			}, memLink)
			if err != nil {
				return nil, fmt.Errorf("config: %s: %w", name, err)
			}
			sys.Wrappers = append(sys.Wrappers, w)
		case MemStatic:
			delays := mem.DefaultDelays()
			if cfg.StaticDelays != nil {
				delays = *cfg.StaticDelays
			}
			r := mem.NewStaticRAM(k, mem.Config{Name: name, Size: cfg.MemBytes, Delays: delays}, memLink)
			sys.Statics = append(sys.Statics, r)
		case MemDRAM:
			timing := mem.DefaultDRAMTiming()
			if cfg.DRAMTiming != nil {
				timing = *cfg.DRAMTiming
			}
			d, err := mem.NewDRAMOn(k, mem.DRAMConfig{
				Name: name, Size: cfg.MemBytes,
				Banks: cfg.DRAMBanks, RowBytes: cfg.DRAMRowBytes,
				ClosePage: cfg.DRAMClosePage, Timing: timing,
				RefreshPeriod: cfg.DRAMRefreshPeriod,
				RefreshCycles: cfg.DRAMRefreshCycles,
			}, memLink)
			if err != nil {
				return nil, fmt.Errorf("config: %s: %w", name, err)
			}
			sys.DRAMs = append(sys.DRAMs, d)
		case MemHeapSim:
			h, err := heapsim.NewHeapMem(k, heapsim.Config{
				Name:        name,
				ArenaSize:   cfg.MemBytes,
				Policy:      cfg.AllocPolicy,
				WordLatency: cfg.HeapWordLatency,
				Decode:      1,
				Read:        1,
				Write:       1,
				BurstBase:   1, BurstPerElem: 1,
			}, memLink)
			if err != nil {
				return nil, fmt.Errorf("config: %s: %w", name, err)
			}
			sys.Heaps = append(sys.Heaps, h)
		default:
			return nil, fmt.Errorf("config: unknown memory kind %d", cfg.MemKind)
		}
	}

	// Interconnect master side: the masters' own ports, or — with caches
	// interposed — the caches' downstream ports.
	interMasters := sys.MasterPorts
	if cfg.Cache || cfg.Coherent {
		cacheLine := cfg.CacheLineBytes
		if cacheLine == 0 {
			cacheLine = 32
		}
		flatMem := cfg.MemKind == MemStatic || cfg.MemKind == MemDRAM
		if flatMem && cfg.MemBytes%cacheLine != 0 {
			return nil, fmt.Errorf("config: MemBytes %d not a multiple of the %d-byte cache line", cfg.MemBytes, cacheLine)
		}
		mshrs := cfg.CacheMSHRs
		if mshrs <= 0 {
			mshrs = 4
		}
		// Only the flat-addressed table memories (static, DRAM) are
		// cacheable: line refills are whole-line typed bursts, which the
		// wrapper and heapsim interpret per allocation.
		var cacheable func(sm int) bool
		if !flatMem {
			cacheable = func(int) bool { return false }
		}
		if cfg.Coherent {
			sys.Domain = cache.NewDomain()
		}
		// The interconnect's master side becomes [down0..downN-1,
		// wb0..wbN-1]: request ports first (so bypassed traffic keeps the
		// master indices the wrapper's reservation ownership stamps),
		// then the dedicated writeback channels.
		var wbPorts []*bus.Port
		n := len(sys.MasterPorts)
		for i, up := range sys.MasterPorts {
			// Deep enough for every MSHR plus pass-through traffic;
			// out-of-order because the cache routes completions by tag.
			down := bus.NewPort(k, fmt.Sprintf("c%d", i), bus.PortConfig{
				Depth: mshrs + 2, OutOfOrder: true,
			})
			wb := bus.NewPort(k, fmt.Sprintf("w%d", i), bus.PortConfig{
				Depth: 4, OutOfOrder: true,
			})
			l1, err := cache.New(k, cache.Config{
				Name: fmt.Sprintf("l1.%d", i),
				Sets: cfg.CacheSets, Ways: cfg.CacheWays,
				LineBytes: cacheLine, MSHRs: mshrs,
				Cacheable: cacheable,
			}, up, down, wb)
			if err != nil {
				return nil, fmt.Errorf("config: l1 %d: %w", i, err)
			}
			if sys.Domain != nil {
				sys.Domain.Attach(l1, i, n+i)
			}
			sys.Caches = append(sys.Caches, l1)
			sys.CachePorts = append(sys.CachePorts, down)
			wbPorts = append(wbPorts, wb)
		}
		interMasters = append(append([]*bus.Port(nil), sys.CachePorts...), wbPorts...)
	}

	if cfg.L2 {
		l2, err := cache.NewL2(k, cache.L2Config{
			Name: "l2",
			Sets: cfg.L2Sets, Ways: cfg.L2Ways,
			LineBytes: cfg.L2LineBytes, MSHRs: l2mshrs,
			Masters:   cfg.Masters,
			Partition: cfg.Partition, SWPMasks: cfg.L2SWPMasks,
			UCPPeriod: cfg.UCPPeriod,
		}, sys.SlavePorts, memPorts)
		if err != nil {
			return nil, fmt.Errorf("config: l2: %w", err)
		}
		if err := l2.AttachL1s(sys.Domain); err != nil {
			return nil, fmt.Errorf("config: l2: %w", err)
		}
		sys.L2 = l2
	}

	newArb := func() bus.Arbiter {
		if cfg.FixedPriority {
			return bus.NewFixedPriority()
		}
		return bus.NewRoundRobin()
	}
	switch cfg.Interconnect {
	case InterBus:
		b := bus.NewBus(k, "bus", interMasters, sys.SlavePorts, newArb())
		if cfg.BusWordCycles > 0 {
			b.WordCycles = cfg.BusWordCycles
		}
		if cfg.SplitBus {
			b.Split = true
			b.RespArb = newArb()
		}
		if sys.Domain != nil {
			b.Snoop = sys.Domain
		}
		sys.Inter = b
	case InterCrossbar:
		x := bus.NewCrossbar(k, "xbar", interMasters, sys.SlavePorts, newArb)
		if cfg.BusWordCycles > 0 {
			x.WordCycles = cfg.BusWordCycles
		}
		x.Split = cfg.SplitBus
		if sys.Domain != nil {
			x.Snoop = sys.Domain
		}
		sys.Inter = x
	default:
		return nil, fmt.Errorf("config: unknown interconnect %d", cfg.Interconnect)
	}
	return sys, nil
}

// CachesSynced reports whether every cache level has drained its dirty
// state (see cache.Cache.Synced / cache.L2.Synced); trivially true
// without caches.
func (s *System) CachesSynced() bool {
	for _, c := range s.Caches {
		if !c.Synced() {
			return false
		}
	}
	return s.L2 == nil || s.L2.Synced()
}

// FlushCaches queues writebacks for every dirty L1 line. Call between
// kernel steps, then run until CachesSynced before inspecting memory
// contents host-side. With an L2 the drain is multi-phase — dirty L1
// data must land in the L2 before the L2 flushes — so use DrainCaches
// instead.
func (s *System) FlushCaches() {
	for _, c := range s.Caches {
		c.FlushAll()
	}
}

// DrainCaches flushes the whole hierarchy to memory: L1 dirty lines
// land in the L2 (or memory) first, then the L2's dirty lines land in
// memory. limit bounds each phase's cycles. After a successful return
// CachesSynced holds and the flat memory image is authoritative.
func (s *System) DrainCaches(limit uint64) error {
	// Each phase guards its predicate before running: with the predicate
	// already true, the event-driven scheduler would skip the whole
	// budget before checking it, leaving the final cycle count dependent
	// on the scheduler mode.
	if len(s.Caches) > 0 {
		s.FlushCaches()
		l1Idle := func() bool {
			for _, c := range s.Caches {
				if !c.Idle() {
					return false
				}
			}
			return true
		}
		if !l1Idle() {
			if _, err := s.Kernel.RunUntil(l1Idle, limit); err != nil {
				return fmt.Errorf("config: L1 drain: %w", err)
			}
		}
	}
	if s.L2 != nil {
		s.L2.FlushAll()
		drained := func() bool { return s.CachesSynced() && s.L2.Idle() }
		if !drained() {
			if _, err := s.Kernel.RunUntil(drained, limit); err != nil {
				return fmt.Errorf("config: L2 drain: %w", err)
			}
		}
	}
	return nil
}

// attached returns the number of master ports already claimed by Procs
// and CPUs; further masters attach after them.
func (s *System) attached() int { return len(s.Procs) + len(s.CPUs) }

// AddProcs attaches one native software task per free master port, in
// order after any already-attached masters. Leaving ports bare is legal
// (for DMA engines or direct driving).
func (s *System) AddProcs(tasks ...smapi.Task) error {
	base := s.attached()
	if base+len(tasks) > len(s.MasterPorts) {
		return fmt.Errorf("config: %d tasks but only %d of %d masters free",
			len(tasks), len(s.MasterPorts)-base, len(s.MasterPorts))
	}
	for i, task := range tasks {
		idx := base + i
		p := smapi.NewProc(s.Kernel, fmt.Sprintf("pe%d", idx), idx, s.MasterPorts[idx], task)
		s.Procs = append(s.Procs, p)
	}
	return nil
}

// AddCPUs attaches one ISS per free master port running the given
// program images, in order after any already-attached masters.
func (s *System) AddCPUs(progs ...[]byte) error {
	base := s.attached()
	if base+len(progs) > len(s.MasterPorts) {
		return fmt.Errorf("config: %d programs but only %d of %d masters free",
			len(progs), len(s.MasterPorts)-base, len(s.MasterPorts))
	}
	for i, prog := range progs {
		idx := base + i
		cpu, err := iss.New(s.Kernel, iss.Config{
			Name:        fmt.Sprintf("iss%d", idx),
			Prog:        prog,
			Port:        s.MasterPorts[idx],
			Batch:       !s.Cfg.DisableISSBatch,
			DecodeCache: !s.Cfg.DisableISSDecodeCache,
		})
		if err != nil {
			return fmt.Errorf("config: cpu %d: %w", idx, err)
		}
		s.CPUs = append(s.CPUs, cpu)
	}
	return nil
}

// NextFreeMaster returns the index of the first master port with no
// Proc or CPU attached, for wiring additional devices (DMA engines,
// custom masters). It returns -1 when every port is taken. Devices
// claimed this way are not tracked; attach them last.
func (s *System) NextFreeMaster() int {
	if used := s.attached(); used < len(s.MasterPorts) {
		return used
	}
	return -1
}

// ProcsDone reports whether every attached Proc has finished.
func (s *System) ProcsDone() bool {
	for _, p := range s.Procs {
		if !p.Done() {
			return false
		}
	}
	return true
}

// CPUsHalted reports whether every attached CPU has halted.
func (s *System) CPUsHalted() bool {
	for _, c := range s.CPUs {
		if !c.Halted() {
			return false
		}
	}
	return true
}
