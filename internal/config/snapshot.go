package config

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/dma"
	"repro/internal/mem"
	"repro/internal/snapshot"
)

// This file is the snapshot orchestrator: it enumerates the system's
// ports and modules in deterministic build order and delegates each
// one's state to its snapshot.Saver/Restorer capability. Modules that
// do not implement the capability (native smapi.Procs, whose state
// lives in a goroutine) make Snapshot fail loudly — a snapshot is
// complete or it is nothing.

// Hash digests the full configuration, scheduler knobs included. Use
// it to key result caches: two runs with equal hashes and equal
// workloads produce byte-identical results.
func (c SystemConfig) Hash() string { return c.hash(false) }

// StateHash digests the configuration with the scheduler-only knobs
// (Lockstep, Workers, ISS fast paths) zeroed. Two configs with equal
// StateHash build systems whose observable state evolves identically,
// so a snapshot taken under one may be restored under the other — that
// is exactly the warm-boot sweep contract, and RestoreSnapshot
// enforces it.
func (c SystemConfig) StateHash() string { return c.hash(true) }

func (c SystemConfig) hash(normalize bool) string {
	n := c
	if normalize {
		n.Lockstep = false
		n.Workers = 0
		n.DisableISSBatch = false
		n.DisableISSDecodeCache = false
	}
	// Pointer fields would digest as addresses; hash their values
	// separately and blank them in the struct dump.
	var wd core.DelayParams
	if c.WrapperDelays != nil {
		wd = *c.WrapperDelays
	}
	var sd mem.Delays
	if c.StaticDelays != nil {
		sd = *c.StaticDelays
	}
	var dt mem.DRAMTiming
	if c.DRAMTiming != nil {
		dt = *c.DRAMTiming
	}
	n.WrapperDelays, n.StaticDelays, n.DRAMTiming = nil, nil, nil
	h := sha256.New()
	fmt.Fprintf(h, "%+v|wd:%v:%+v|sd:%v:%+v|dt:%v:%+v", n,
		c.WrapperDelays != nil, wd, c.StaticDelays != nil, sd, c.DRAMTiming != nil, dt)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// AddDMA attaches a DMA engine to master port idx and registers it for
// snapshotting; devices wired around the System (raw dma.New on a
// port) work but are invisible to Snapshot's meta section, so
// RestoreSystem could not re-create them.
func (s *System) AddDMA(idx int, name string) (*dma.Engine, error) {
	if idx < 0 || idx >= len(s.MasterPorts) {
		return nil, fmt.Errorf("config: AddDMA port %d out of range (%d masters)", idx, len(s.MasterPorts))
	}
	eng := dma.New(s.Kernel, name, s.MasterPorts[idx])
	s.DMAs = append(s.DMAs, eng)
	s.dmaPorts = append(s.dmaPorts, idx)
	return eng, nil
}

// snapshotPorts enumerates every port the System tracks, in build
// order. Cache writeback ports are not listed: they are internal to
// the caches, which embed them in their own sections.
func (s *System) snapshotPorts() []*bus.Port {
	var ports []*bus.Port
	ports = append(ports, s.MasterPorts...)
	ports = append(ports, s.SlavePorts...)
	ports = append(ports, s.CachePorts...)
	return ports
}

const metaSection = "meta"

// Snapshot serializes the complete simulator state into the versioned
// format of internal/snapshot. It fails — rather than write a partial
// file — when any module does not support snapshotting or the kernel
// is mid-cycle.
func (s *System) Snapshot() ([]byte, error) {
	if !s.Kernel.Quiescent() {
		return nil, fmt.Errorf("config: snapshot requires a quiescent kernel (between cycles, no uncommitted signals)")
	}
	if len(s.Procs) > 0 {
		return nil, fmt.Errorf("config: cannot snapshot: module %s is a native smapi proc whose task state lives in a goroutine, which does not serialize; rebuild the system with ISS masters (AddCPUs) instead of native procs, or checkpoint before AddProcs — see docs/SNAPSHOT.md \"What deliberately does not travel\"", s.Procs[0].Name())
	}
	w := snapshot.NewWriter()
	w.AddSection(metaSection, func(e *snapshot.Encoder) {
		e.String(s.Cfg.StateHash())
		e.U64(s.Kernel.Cycle())
		e.Int(len(s.MasterPorts))
		e.Int(len(s.SlavePorts))
		e.Int(len(s.CachePorts))
		e.Int(len(s.CPUs))
		e.Int(len(s.DMAs))
		for i, eng := range s.DMAs {
			e.String(eng.Name())
			e.Int(s.dmaPorts[i])
		}
	})
	w.AddSection("kernel", s.Kernel.SaveState)
	for _, p := range s.snapshotPorts() {
		w.AddSection("port."+p.Name(), p.SaveState)
	}
	for _, m := range s.Kernel.Modules() {
		sv, ok := m.(snapshot.Saver)
		if !ok {
			return nil, fmt.Errorf("config: module %s does not support snapshotting", m.Name())
		}
		w.AddSection("mod."+m.Name(), sv.SaveState)
	}
	return w.Finish()
}

func (s *System) restoreSection(f *snapshot.File, name string, r snapshot.Restorer) error {
	dec, err := f.Section(name)
	if err != nil {
		return err
	}
	if err := r.RestoreState(dec); err != nil {
		return snapshot.SectionErr(name, err)
	}
	if err := dec.Finish(); err != nil {
		return snapshot.SectionErr(name, err)
	}
	return nil
}

// RestoreSnapshot overwrites the state of this system — built from a
// state-compatible config, with the same masters attached in the same
// order — from a snapshot produced by Snapshot. On success the system
// resumes bit-identically to the one that was saved; on any error the
// system must be considered corrupt and discarded (restore does not
// roll back).
func (s *System) RestoreSnapshot(data []byte) error {
	f, err := snapshot.Read(data)
	if err != nil {
		return err
	}
	return s.restoreFrom(f)
}

func (s *System) restoreFrom(f *snapshot.File) error {
	dec, err := f.Section(metaSection)
	if err != nil {
		return err
	}
	hash := dec.String()
	_ = dec.U64() // cycle, informational (authoritative copy in "kernel")
	nm, ns, nc := dec.Int(), dec.Int(), dec.Int()
	ncpu, ndma := dec.Int(), dec.Int()
	type dmaMeta struct {
		name string
		port int
	}
	dmas := make([]dmaMeta, 0, ndma)
	for i := 0; i < ndma && dec.Err() == nil; i++ {
		name := dec.String()
		dmas = append(dmas, dmaMeta{name: name, port: dec.Int()})
	}
	if err := dec.Finish(); err != nil {
		return snapshot.SectionErr(metaSection, err)
	}
	if want := s.Cfg.StateHash(); hash != want {
		return fmt.Errorf("config: snapshot belongs to a different configuration (state hash %s, this system %s)", hash, want)
	}
	if nm != len(s.MasterPorts) || ns != len(s.SlavePorts) || nc != len(s.CachePorts) {
		return fmt.Errorf("config: snapshot topology mismatch: %d/%d/%d ports vs system %d/%d/%d",
			nm, ns, nc, len(s.MasterPorts), len(s.SlavePorts), len(s.CachePorts))
	}
	if ncpu != len(s.CPUs) {
		return fmt.Errorf("config: snapshot has %d CPUs, system has %d", ncpu, len(s.CPUs))
	}
	if ndma != len(s.DMAs) {
		return fmt.Errorf("config: snapshot has %d DMA engines, system has %d", ndma, len(s.DMAs))
	}
	for i, m := range dmas {
		if m.name != s.DMAs[i].Name() || m.port != s.dmaPorts[i] {
			return fmt.Errorf("config: DMA %d mismatch: snapshot has %s@m%d, system has %s@m%d",
				i, m.name, m.port, s.DMAs[i].Name(), s.dmaPorts[i])
		}
	}
	if err := s.restoreSection(f, "kernel", s.Kernel); err != nil {
		return err
	}
	for _, p := range s.snapshotPorts() {
		if err := s.restoreSection(f, "port."+p.Name(), p); err != nil {
			return err
		}
	}
	for _, m := range s.Kernel.Modules() {
		r, ok := m.(snapshot.Restorer)
		if !ok {
			return fmt.Errorf("config: module %s does not support snapshot restore", m.Name())
		}
		if err := s.restoreSection(f, "mod."+m.Name(), r); err != nil {
			return err
		}
	}
	return nil
}

// RestoreSystem builds a fresh runnable system from cfg and a snapshot:
// Build, re-attach the masters the meta section names (CPUs first,
// then DMA engines — the build-order convention every in-repo harness
// follows), then restore all state. cfg may differ from the snapshot's
// origin only in scheduler knobs (see StateHash); that is what lets a
// warm-boot sweep fan one snapshot across the scheduler matrix.
func RestoreSystem(cfg SystemConfig, data []byte) (*System, error) {
	f, err := snapshot.Read(data)
	if err != nil {
		return nil, err
	}
	dec, err := f.Section(metaSection)
	if err != nil {
		return nil, err
	}
	_ = dec.String() // state hash, verified by restoreFrom
	_ = dec.U64()
	_, _, _ = dec.Int(), dec.Int(), dec.Int()
	ncpu, ndma := dec.Int(), dec.Int()
	type dmaMeta struct {
		name string
		port int
	}
	var dmas []dmaMeta
	for i := 0; i < ndma && dec.Err() == nil; i++ {
		name := dec.String()
		dmas = append(dmas, dmaMeta{name: name, port: dec.Int()})
	}
	if err := dec.Finish(); err != nil {
		return nil, snapshot.SectionErr(metaSection, err)
	}
	sys, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	if ncpu > 0 {
		// Programs live inside each CPU's restored memory image; the
		// rebuild only needs the right number of CPUs on the right ports.
		if err := sys.AddCPUs(make([][]byte, ncpu)...); err != nil {
			return nil, err
		}
	}
	for _, m := range dmas {
		if _, err := sys.AddDMA(m.port, m.name); err != nil {
			return nil, err
		}
	}
	if err := sys.restoreFrom(f); err != nil {
		return nil, err
	}
	return sys, nil
}
