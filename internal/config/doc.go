// Package config assembles complete simulated systems — processing
// elements, interconnect and memory modules — from a declarative
// description. It is the composition root the examples, experiments and
// benchmarks share, mirroring the paper's Figure 2 topology: n masters
// (ISSs or native PEs) × one interconnect × p shared memories.
//
// # Building systems
//
// Build(SystemConfig) wires the whole machine: one master port per
// processing element, the selected interconnect (shared bus or
// crossbar, occupied or split protocol), p memory modules of the
// configured kind (host-backed wrapper, static RAM, or the
// cycle-metered heapsim allocator), and — when Cache is set — a
// private write-back L1 in front of every master, optionally joined
// into a MESI snoop domain. The returned System exposes every layer
// (Kernel, ports, interconnect, memories, caches) so harnesses can
// attach probes without replicating the wiring.
//
// Masters attach after Build: AddCPUs loads armlet programs onto ISS
// masters, AddProcs attaches native smapi tasks, and AddDMA attaches a
// descriptor-driven copy engine to a master port. Attachment order is
// a repo-wide convention (CPUs first, then DMA engines) because
// snapshot restore replays it.
//
// # Scheduler knobs versus state
//
// SystemConfig mixes two kinds of fields. Structural fields (masters,
// memories, protocol, cache geometry, allocation policy) change the
// simulated machine. Scheduler knobs (Lockstep, Workers, the ISS fast
// paths) only change how fast the host simulates it — the differential
// test matrix proves all combinations bit-identical. Hash digests the
// full config; StateHash digests it with the scheduler knobs zeroed,
// defining the compatibility class for snapshot restore.
//
// # Checkpoint and restore
//
// System.Snapshot serializes the complete simulator state into the
// versioned sectioned format of internal/snapshot: a meta section
// (state hash, topology, attached masters), the kernel clock, every
// port's in-flight transactions, and one section per kernel module.
// Modules satisfy snapshot.Saver/Restorer; a module that does not
// (native smapi procs hold goroutine state) makes Snapshot fail loudly
// rather than write a partial file.
//
// System.RestoreSnapshot overwrites an identically-built system's
// state in place; RestoreSystem rebuilds a runnable System from config
// + snapshot alone, re-attaching the masters the meta section names.
// The config may differ from the saving run in scheduler knobs only —
// that is what lets a warm-boot sweep (experiments.WB) fan one shared
// warm-up snapshot across the whole scheduler matrix. See
// docs/SNAPSHOT.md for the format and the module-by-module state map.
package config
