package bus

// Snooper is the interconnect's cache-coherence hook: a coherence domain
// (see internal/cache) that observes and gates address phases. The
// interconnect consults it twice per transaction:
//
//   - CanProceed, while collecting arbitration candidates. Returning
//     false defers the grant — the request stays at the head of its
//     master port's queue and competes again on a later cycle. The
//     domain uses the deferral to resolve dirty peer lines first (it
//     flags the owning cache, which writes the line back through its own
//     port; once memory is clean the request proceeds and reads fresh
//     data — the classic snoop-hit-dirty retry protocol).
//
//   - OnGrant, immediately after the winning request is popped for its
//     address phase. This is the broadcast peers react to: they
//     invalidate on writes and exclusive refills, downgrade E→S on
//     reads, and the requester's own in-flight miss learns whether the
//     line is shared. tag is the granted transaction's tag on the
//     master port it was popped from, letting the domain attribute the
//     grant to the exact outstanding request (a bare address can
//     collide between a pass-through burst and a refill).
//
// master is the interconnect's master-port index of the issuer; the
// domain uses it to skip self-snooping. Both calls happen inside the
// interconnect's Tick, so an attached Snooper (and every cache it
// mutates) must tick on the serial shard — Bus and Crossbar report
// ConcurrentTick()==false while a Snooper is attached.
type Snooper interface {
	CanProceed(req Request, master int) bool
	OnGrant(req Request, master int, tag Tag)
}
