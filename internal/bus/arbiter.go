package bus

// Arbiter selects which of several competing masters is granted the
// shared bus for the next transaction. Pick receives the indices of
// masters with a pending request (in ascending order) and returns the
// winner. Pick is only called with a non-empty candidate list.
type Arbiter interface {
	// Pick returns the index of the granted master.
	Pick(pending []int) int
	// Name identifies the policy in stats and configs.
	Name() string
}

// RoundRobin grants the requester following the most recently granted
// one, guaranteeing starvation freedom. The zero value starts at master 0.
type RoundRobin struct {
	last int
	init bool
}

// NewRoundRobin returns a round-robin arbiter.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Arbiter.
func (a *RoundRobin) Name() string { return "round-robin" }

// Pick implements Arbiter: the first pending index strictly greater than
// the previous grant wins, wrapping around.
func (a *RoundRobin) Pick(pending []int) int {
	if !a.init {
		a.init = true
		a.last = pending[0]
		return pending[0]
	}
	for _, i := range pending {
		if i > a.last {
			a.last = i
			return i
		}
	}
	a.last = pending[0]
	return pending[0]
}

// FixedPriority always grants the lowest-indexed pending master. Simple
// and cheap, but can starve high-indexed masters under load; used in the
// arbitration ablation.
type FixedPriority struct{}

// NewFixedPriority returns a fixed-priority arbiter.
func NewFixedPriority() *FixedPriority { return &FixedPriority{} }

// Name implements Arbiter.
func (FixedPriority) Name() string { return "fixed-priority" }

// Pick implements Arbiter.
func (FixedPriority) Pick(pending []int) int { return pending[0] }
