package bus

import (
	"testing"

	"repro/internal/sim"
)

// echoSlave serves any request after a fixed latency, echoing VPtr+1 in
// Data. It is a minimal stand-in for a memory module: it pops its port's
// request queue one transaction at a time and completes under the popped
// tag.
type echoSlave struct {
	name    string
	link    *Port
	latency int

	busy   int
	cur    Request
	curTag Tag
	Served []Request
}

func (s *echoSlave) Name() string { return s.name }

func (s *echoSlave) Tick(cycle uint64) {
	if s.busy > 0 {
		s.busy--
		if s.busy == 0 {
			s.link.Complete(s.curTag, Response{Err: OK, Data: s.cur.VPtr + 1})
		}
		return
	}
	if tx, ok := s.link.Pop(); ok {
		s.cur = tx.Req
		s.curTag = tx.Tag
		s.Served = append(s.Served, tx.Req)
		if s.latency <= 0 {
			s.link.Complete(tx.Tag, Response{Err: OK, Data: tx.Req.VPtr + 1})
		} else {
			s.busy = s.latency
		}
	}
}

// scriptMaster issues a fixed list of requests back-to-back and records
// the cycle at which each response arrived.
type scriptMaster struct {
	name string
	link *Port
	reqs []Request

	next      int
	Responses []Response
	DoneAt    []uint64
}

func (m *scriptMaster) Name() string { return m.name }

func (m *scriptMaster) Done() bool { return len(m.Responses) == len(m.reqs) }

func (m *scriptMaster) Tick(cycle uint64) {
	if resp, ok := m.link.Response(); ok {
		m.Responses = append(m.Responses, resp)
		m.DoneAt = append(m.DoneAt, cycle)
	}
	if m.next < len(m.reqs) && m.link.CanIssue() {
		m.link.Issue(m.reqs[m.next])
		m.next++
	}
}

func TestLinkHandshakeTiming(t *testing.T) {
	k := sim.New()
	l := NewLink(k, "l")
	sl := &echoSlave{name: "slave", link: l, latency: 0}
	var issued, responded uint64
	ma := &sim.FuncModule{Nm: "master", Fn: func(cycle uint64) {
		if cycle == 0 {
			l.Issue(Request{Op: OpRead, VPtr: 41})
		}
		if resp, ok := l.Response(); ok {
			responded = cycle
			if resp.Data != 42 {
				t.Errorf("Data = %d, want 42", resp.Data)
			}
		}
	}}
	issued = 0
	k.Add(ma)
	k.Add(sl)
	if err := k.Run(6); err != nil {
		t.Fatal(err)
	}
	// Issue at cycle 0 → slave latches+completes at cycle 1 → master
	// observes at cycle 2: the two-cycle registered round trip.
	if responded != issued+2 {
		t.Errorf("response at cycle %d, want %d", responded, issued+2)
	}
}

func TestLinkIssueWhileBusyPanics(t *testing.T) {
	k := sim.New()
	l := NewLink(k, "l")
	defer func() {
		if recover() == nil {
			t.Error("second Issue did not panic")
		}
	}()
	l.Issue(Request{Op: OpRead})
	l.Issue(Request{Op: OpRead})
}

func TestLinkResponseConsumedOnce(t *testing.T) {
	k := sim.New()
	l := NewLink(k, "l")
	sl := &echoSlave{name: "s", link: l}
	k.Add(sl)
	l.Issue(Request{Op: OpRead, VPtr: 1})
	if err := k.Run(3); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Response(); !ok {
		t.Fatal("expected a response")
	}
	if _, ok := l.Response(); ok {
		t.Error("response delivered twice")
	}
	if !l.Idle() {
		t.Error("link not idle after consumed response")
	}
}

func TestLinkTakeRequestOnce(t *testing.T) {
	k := sim.New()
	l := NewLink(k, "l")
	l.Issue(Request{Op: OpWrite, VPtr: 5})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	if !l.Pending() {
		t.Fatal("request not visible after one cycle")
	}
	if _, ok := l.Pop(); !ok {
		t.Fatal("Pop failed")
	}
	if _, ok := l.Pop(); ok {
		t.Error("request popped twice")
	}
	if l.Pending() {
		t.Error("Pending true after pop")
	}
}

func TestLinkBackToBackTransactions(t *testing.T) {
	k := sim.New()
	l := NewLink(k, "l")
	reqs := make([]Request, 5)
	for i := range reqs {
		reqs[i] = Request{Op: OpRead, VPtr: uint32(i * 10)}
	}
	m := &scriptMaster{name: "m", link: l, reqs: reqs}
	s := &echoSlave{name: "s", link: l, latency: 2}
	k.Add(m)
	k.Add(s)
	if _, err := k.RunUntil(m.Done, 200); err != nil {
		t.Fatal(err)
	}
	if len(s.Served) != 5 {
		t.Fatalf("slave served %d, want 5", len(s.Served))
	}
	for i, r := range m.Responses {
		if want := uint32(i*10 + 1); r.Data != want {
			t.Errorf("resp[%d].Data = %d, want %d", i, r.Data, want)
		}
	}
}
