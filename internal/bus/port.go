package bus

import (
	"fmt"
	"iter"

	"repro/internal/sim"
)

// Tag identifies one in-flight transaction on one Port. Tags are the
// port's issue sequence numbers (1, 2, 3, …): unique for the lifetime of
// the port, dense, and strictly increasing in issue order — which is what
// lets the in-order delivery mode reorder completions with nothing more
// than a counter.
type Tag uint64

// Txn is a request queued on a port together with the tag under which its
// completion must be published.
type Txn struct {
	Tag Tag
	Req Request
}

// Completion is one finished transaction as delivered to the master.
type Completion struct {
	Tag  Tag
	Resp Response
}

// PortConfig parameterizes a Port. The zero value is the classic
// single-outstanding, in-order connection (the pre-split "Link").
type PortConfig struct {
	// Depth is the maximum number of outstanding transactions: issued and
	// not yet delivered back to the master. Zero means 1. Depth is the
	// credit pool of the flow control: Issue consumes a credit,
	// TakeCompletion returns it.
	Depth int
	// OutOfOrder selects completion-order delivery: the master receives
	// completions in the order the far side finished them, identified by
	// tag. The default (false) is in-order delivery — the port buffers
	// early completions and releases them in issue order, so a master
	// that ignores tags still sees the classic FIFO contract.
	OutOfOrder bool
}

// Port is a cycle-true, credit-based connection between one master and
// one slave (or an interconnect acting as either). It generalizes the
// original single-outstanding Link to depth-N split transactions: the
// master issues up to Depth tagged requests without waiting, the slave
// side serves a request queue, and completions drain back tagged — in
// issue order or out of order, per PortConfig.
//
// The handshake is carried by two sequence signals: reqSeq counts issued
// requests, ackSeq counts published completions. Because signals commit
// at cycle boundaries, the slave observes a request at the earliest one
// cycle after Issue, and the master observes a completion one cycle
// after Complete — the registered protocol of the paper, per entry.
//
// Payloads ride in two host-side ring buffers alongside the sequence
// signals. This is safe under the parallel tick engine for the same
// reason the Link's single payload slot was: each ring has exactly one
// producer module and one consumer module, the consumer only reads
// entries the committed sequence count covers (written in an earlier
// cycle, on the far side of a commit barrier), and credit-based flow
// control guarantees a producer never overwrites a slot the consumer has
// yet to read (outstanding ≤ Depth = ring capacity).
//
// At Depth 1 with in-order delivery the port is cycle-for-cycle and
// signal-for-signal identical to the historical Link, which is what the
// differential harness pins.
type Port struct {
	name  string
	depth int
	ooo   bool

	reqSeq *sim.Signal[uint64]
	ackSeq *sim.Signal[uint64]

	// Request ring: written by the master (Issue), read by the slave side
	// (Peek/Pop). Capacity depth; occupancy issued-popped.
	reqBuf []Txn
	issued uint64 // master-side: total Issue calls (== reqSeq pending)
	popped uint64 // slave-side: total Pop calls

	// Open transactions on the slave side: popped and not yet completed.
	// Guards Complete against unknown or double-completed tags.
	open map[Tag]struct{}

	// Completion ring: written by the slave side (Complete), read by the
	// master (TakeCompletion). Capacity depth; occupancy completed-drained.
	cmplBuf   []Completion
	completed uint64 // slave-side: total Complete calls (== ackSeq pending)
	drained   uint64 // master-side: ring entries pulled into delivery state

	// Master-side delivery state. In-order mode: completions drained from
	// the ring park in reorder until their tag is next. Out-of-order mode:
	// drained completions queue FIFO in oooQ.
	reorder   map[Tag]Response
	oooQ      []Completion
	delivered uint64 // completions handed to the master; frees credits
}

// NewPort creates a port registered with kernel k. The zero PortConfig
// gives the classic single-outstanding in-order connection.
func NewPort(k *sim.Kernel, name string, cfg PortConfig) *Port {
	if cfg.Depth <= 0 {
		cfg.Depth = 1
	}
	return &Port{
		name:    name,
		depth:   cfg.Depth,
		ooo:     cfg.OutOfOrder,
		reqSeq:  sim.NewSignal(k, name+".reqSeq", uint64(0)),
		ackSeq:  sim.NewSignal(k, name+".ackSeq", uint64(0)),
		reqBuf:  make([]Txn, cfg.Depth),
		cmplBuf: make([]Completion, cfg.Depth),
		open:    make(map[Tag]struct{}, cfg.Depth),
		reorder: make(map[Tag]Response, cfg.Depth),
	}
}

// NewLink creates the classic single-outstanding, in-order port — the
// point-to-point wiring used when no multi-outstanding behavior is
// wanted (direct CPU↔memory connections, tests).
func NewLink(k *sim.Kernel, name string) *Port {
	return NewPort(k, name, PortConfig{})
}

// Name returns the port's diagnostic name.
func (p *Port) Name() string { return p.name }

// Depth returns the configured outstanding capacity.
func (p *Port) Depth() int { return p.depth }

// --- master side ---

// Outstanding returns the number of transactions issued and not yet
// delivered back to the master — the credits in use.
func (p *Port) Outstanding() int { return int(p.issued - p.delivered) }

// CanIssue reports whether a credit is free: the master may issue a new
// request this cycle.
func (p *Port) CanIssue() bool { return p.issued-p.delivered < uint64(p.depth) }

// Idle reports whether no transaction is outstanding (including any
// issued earlier in the current cycle). At depth 1 this is exactly the
// historical Link.Idle.
func (p *Port) Idle() bool { return p.issued == p.delivered }

// Busy reports whether at least one transaction is outstanding.
func (p *Port) Busy() bool { return !p.Idle() }

// Issue sends a request and returns its tag. It panics when no credit is
// free; masters are expected to check CanIssue. The slave side can
// observe the request from the next cycle onward. Multiple issues within
// one cycle are legal up to the credit limit and become visible together.
func (p *Port) Issue(r Request) Tag {
	if !p.CanIssue() {
		panic(fmt.Sprintf("bus: Issue on full port %s (depth %d)", p.name, p.depth))
	}
	p.issued++
	tag := Tag(p.issued)
	p.reqBuf[int((p.issued-1)%uint64(p.depth))] = Txn{Tag: tag, Req: r}
	p.reqSeq.Set(p.issued)
	return tag
}

// drainVisible moves committed completion-ring entries into the
// master-side delivery state. Idempotent within a cycle.
func (p *Port) drainVisible() {
	vis := p.ackSeq.Get()
	for p.drained < vis {
		c := p.cmplBuf[int(p.drained%uint64(p.depth))]
		p.drained++
		if p.ooo {
			p.oooQ = append(p.oooQ, c)
		} else {
			p.reorder[c.Tag] = c.Resp
		}
	}
}

// peekDeliverable returns the completion TakeCompletion would deliver,
// without consuming it.
func (p *Port) peekDeliverable() (Completion, bool) {
	p.drainVisible()
	if p.ooo {
		if len(p.oooQ) == 0 {
			return Completion{}, false
		}
		return p.oooQ[0], true
	}
	next := Tag(p.delivered + 1)
	resp, ok := p.reorder[next]
	if !ok {
		return Completion{}, false
	}
	return Completion{Tag: next, Resp: resp}, true
}

// HasCompletion reports whether TakeCompletion would deliver one. Unlike
// a raw "anything completed?" probe it respects ordering: in in-order
// mode a completion blocked behind an earlier outstanding tag is not yet
// deliverable.
func (p *Port) HasCompletion() bool {
	_, ok := p.peekDeliverable()
	return ok
}

// PeekCompletion returns the next deliverable completion without
// consuming it — arbiters inspect response demand this way before
// committing a response-phase grant.
func (p *Port) PeekCompletion() (Completion, bool) { return p.peekDeliverable() }

// TakeCompletion delivers the next completion exactly once and returns
// its credit to the pool. ok is false while nothing is deliverable.
func (p *Port) TakeCompletion() (Completion, bool) {
	c, ok := p.peekDeliverable()
	if !ok {
		return Completion{}, false
	}
	if p.ooo {
		p.oooQ = p.oooQ[1:]
		if len(p.oooQ) == 0 {
			p.oooQ = nil
		}
	} else {
		delete(p.reorder, c.Tag)
	}
	p.delivered++
	return c, true
}

// Completions iterates over every completion deliverable this cycle, in
// delivery order, consuming each. Masters with several transactions in
// flight drain their port once per cycle with this.
func (p *Port) Completions() iter.Seq2[Tag, Response] {
	return func(yield func(Tag, Response) bool) {
		for {
			c, ok := p.TakeCompletion()
			if !ok {
				return
			}
			if !yield(c.Tag, c.Resp) {
				return
			}
		}
	}
}

// Response delivers the next completion's response, dropping the tag — a
// convenience for single-outstanding masters, identical to the
// historical Link.Response contract at depth 1.
func (p *Port) Response() (Response, bool) {
	c, ok := p.TakeCompletion()
	return c.Resp, ok
}

// --- slave side ---

// Pending reports whether at least one unserved request is visible to
// the slave side (used by arbiters and NextWake to inspect demand).
func (p *Port) Pending() bool { return p.popped < p.reqSeq.Get() }

// QueueLen returns the number of visible unserved requests.
func (p *Port) QueueLen() int { return int(p.reqSeq.Get() - p.popped) }

// Peek returns the request at the head of the visible queue without
// popping it. ok is false when the queue is empty — callers can never
// read a stale request (the failure mode of the old Pending/PeekRequest
// pair, where a PeekRequest after the pop returned the previous
// payload).
func (p *Port) Peek() (Request, bool) {
	if p.popped >= p.reqSeq.Get() {
		return Request{}, false
	}
	return p.reqBuf[int(p.popped%uint64(p.depth))].Req, true
}

// Pop removes and returns the head of the visible request queue. The
// slave (or interconnect) must later publish a completion for the
// returned tag via Complete.
func (p *Port) Pop() (Txn, bool) {
	if p.popped >= p.reqSeq.Get() {
		return Txn{}, false
	}
	tx := p.reqBuf[int(p.popped%uint64(p.depth))]
	p.popped++
	p.open[tx.Tag] = struct{}{}
	return tx, true
}

// CanAccept reports whether the port has room for another request to be
// issued into it — the interconnect's credit check before an address
// phase targeting this (slave) port.
func (p *Port) CanAccept() bool { return p.CanIssue() }

// Complete publishes the completion of a popped transaction. Completions
// may be published in any order relative to Pop; the master-side
// delivery mode decides the order the master sees. The master can
// observe the completion from the next cycle onward. Completing a tag
// that was never popped, or twice, panics.
func (p *Port) Complete(tag Tag, resp Response) {
	if _, ok := p.open[tag]; !ok {
		panic(fmt.Sprintf("bus: Complete of unknown tag %d on port %s", tag, p.name))
	}
	delete(p.open, tag)
	p.cmplBuf[int(p.completed%uint64(p.depth))] = Completion{Tag: tag, Resp: resp}
	p.completed++
	p.ackSeq.Set(p.completed)
}
