package bus

import (
	"repro/internal/sim"
)

// Link is a cycle-true, single-outstanding-transaction connection between
// one master and one slave. The handshake is carried by two sequence
// signals: the master advances reqSeq when issuing, the slave advances
// ackSeq when completing. Because signals commit at cycle boundaries, the
// slave observes a request at the earliest one cycle after Issue, and the
// master observes the response one cycle after Complete — the registered
// "evaluated cycle by cycle" protocol of the paper.
//
// Payloads ride alongside the handshake in plain fields. This is safe:
// the master writes req strictly before advancing reqSeq (and never while
// a transaction is outstanding), and the slave writes resp strictly
// before advancing ackSeq. Timing fidelity for multi-word payloads is the
// slave FSM's responsibility (it stalls WireWords cycles; see the wrapper).
type Link struct {
	name   string
	reqSeq *sim.Signal[uint64]
	ackSeq *sim.Signal[uint64]

	req  Request
	resp Response

	taken    uint64 // slave-side: highest reqSeq already latched
	consumed uint64 // master-side: highest ackSeq already consumed
}

// NewLink creates a link registered with kernel k.
func NewLink(k *sim.Kernel, name string) *Link {
	return &Link{
		name:   name,
		reqSeq: sim.NewSignal(k, name+".reqSeq", uint64(0)),
		ackSeq: sim.NewSignal(k, name+".ackSeq", uint64(0)),
	}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// --- master side ---

// Idle reports whether the master may issue a new request: no request is
// in flight (including one issued earlier in the current cycle) and the
// previous response has been consumed.
func (l *Link) Idle() bool {
	return l.reqSeq.Pending() == l.ackSeq.Get() && l.consumed == l.ackSeq.Get()
}

// Issue sends a request. It panics if the link is not Idle; masters are
// expected to check. The slave can observe the request from the next
// cycle onward.
func (l *Link) Issue(r Request) {
	if !l.Idle() {
		panic("bus: Issue on busy link " + l.name)
	}
	l.req = r
	l.reqSeq.Set(l.reqSeq.Get() + 1)
}

// Response returns the completed response exactly once per transaction.
// The second return is false while the transaction is still in flight or
// when no transaction exists.
func (l *Link) Response() (Response, bool) {
	ack := l.ackSeq.Get()
	if ack == l.reqSeq.Get() && ack > l.consumed {
		l.consumed = ack
		return l.resp, true
	}
	return Response{}, false
}

// Busy reports whether a transaction is in flight (issued and not yet
// consumed by the master).
func (l *Link) Busy() bool { return !l.Idle() }

// --- slave side ---

// TakeRequest latches a newly visible request exactly once. The slave
// calls it each cycle; it returns ok=false when there is nothing new.
func (l *Link) TakeRequest() (Request, bool) {
	seq := l.reqSeq.Get()
	if seq > l.taken && seq > l.ackSeq.Get() {
		l.taken = seq
		return l.req, true
	}
	return Request{}, false
}

// Complete publishes the response for the most recently taken request.
// The master can observe it from the next cycle onward.
func (l *Link) Complete(p Response) {
	l.resp = p
	l.ackSeq.Set(l.ackSeq.Get() + 1)
}

// Pending reports whether an unserved request is visible to the slave
// without latching it (used by arbiters to inspect demand).
func (l *Link) Pending() bool {
	seq := l.reqSeq.Get()
	return seq > l.taken && seq > l.ackSeq.Get()
}

// PeekRequest returns the visible unserved request without latching it.
// Valid only when Pending reports true.
func (l *Link) PeekRequest() Request { return l.req }
