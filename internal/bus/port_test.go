package bus

import (
	"testing"

	"repro/internal/sim"
)

// TestPortPeekNeverStale is the regression test for the PeekRequest
// footgun the port API folds away: the old Pending/PeekRequest pair let
// a caller read the previous request's payload after the pop. Peek
// couples validity and payload in one call, so an empty queue yields
// ok=false — never a stale request — and a non-empty queue yields the
// actual head, never the previously popped entry.
func TestPortPeekNeverStale(t *testing.T) {
	k := sim.New()
	p := NewPort(k, "p", PortConfig{Depth: 2})
	p.Issue(Request{Op: OpRead, VPtr: 0x111})
	p.Issue(Request{Op: OpWrite, VPtr: 0x222})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	if req, ok := p.Peek(); !ok || req.VPtr != 0x111 {
		t.Fatalf("Peek = %v/%v, want head 0x111", req, ok)
	}
	tx, ok := p.Pop()
	if !ok || tx.Req.VPtr != 0x111 {
		t.Fatalf("Pop = %v/%v, want 0x111", tx, ok)
	}
	// The head is now the second request — not the popped one.
	if req, ok := p.Peek(); !ok || req.VPtr != 0x222 {
		t.Fatalf("Peek after pop = %v/%v, want 0x222 (stale head?)", req, ok)
	}
	if _, ok := p.Pop(); !ok {
		t.Fatal("second Pop failed")
	}
	// Queue drained: Peek must report empty, with a zero request — the
	// old API would have kept returning the last payload here.
	if req, ok := p.Peek(); ok || req.VPtr != 0 || req.Op != OpRead {
		t.Fatalf("Peek on empty queue = %v/%v, want zero/false", req, ok)
	}
	if p.Pending() {
		t.Error("Pending true on empty queue")
	}
}

// TestPortCredits pins the credit-based flow control: Issue consumes a
// credit immediately (same cycle), completion alone does not return it —
// only delivery to the master does.
func TestPortCredits(t *testing.T) {
	k := sim.New()
	p := NewPort(k, "p", PortConfig{Depth: 2})
	if !p.CanIssue() || p.Outstanding() != 0 {
		t.Fatal("fresh port must have all credits")
	}
	t1 := p.Issue(Request{Op: OpRead, VPtr: 1})
	t2 := p.Issue(Request{Op: OpRead, VPtr: 2})
	if t2 != t1+1 {
		t.Fatalf("tags not sequential: %d then %d", t1, t2)
	}
	if p.CanIssue() {
		t.Fatal("CanIssue true with all credits consumed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Issue beyond depth did not panic")
			}
		}()
		p.Issue(Request{Op: OpRead, VPtr: 3})
	}()
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	// Serve and complete both; until the master drains them the credits
	// stay consumed.
	for i := 0; i < 2; i++ {
		tx, ok := p.Pop()
		if !ok {
			t.Fatal("Pop failed")
		}
		p.Complete(tx.Tag, Response{Data: tx.Req.VPtr})
	}
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	if p.CanIssue() {
		t.Fatal("credits returned before delivery")
	}
	if _, ok := p.TakeCompletion(); !ok {
		t.Fatal("no completion after commit")
	}
	if !p.CanIssue() {
		t.Fatal("credit not returned on delivery")
	}
	if p.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1", p.Outstanding())
	}
}

// TestPortVisibilityClock pins the registered timing: requests issued in
// cycle c are invisible to the slave side until c+1; completions
// published in cycle c are invisible to the master until c+1. Both
// members of a same-cycle issue pair become visible together.
func TestPortVisibilityClock(t *testing.T) {
	k := sim.New()
	p := NewPort(k, "p", PortConfig{Depth: 4})
	p.Issue(Request{Op: OpRead, VPtr: 1})
	p.Issue(Request{Op: OpRead, VPtr: 2})
	if p.Pending() {
		t.Fatal("requests visible in the issue cycle")
	}
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	if p.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2 (pair must commit together)", p.QueueLen())
	}
	tx, _ := p.Pop()
	p.Complete(tx.Tag, Response{Data: 10})
	if p.HasCompletion() {
		t.Fatal("completion visible in the completing cycle")
	}
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	if !p.HasCompletion() {
		t.Fatal("completion not visible after commit")
	}
}

// TestPortInOrderDelivery: completions published out of issue order are
// buffered and delivered in issue order, each under its own tag.
func TestPortInOrderDelivery(t *testing.T) {
	k := sim.New()
	p := NewPort(k, "p", PortConfig{Depth: 3})
	ta := p.Issue(Request{Op: OpRead, VPtr: 0xA})
	tb := p.Issue(Request{Op: OpRead, VPtr: 0xB})
	tc := p.Issue(Request{Op: OpRead, VPtr: 0xC})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	var txs []Txn
	for {
		tx, ok := p.Pop()
		if !ok {
			break
		}
		txs = append(txs, tx)
	}
	// Complete in reverse order: C, B, A.
	for i := len(txs) - 1; i >= 0; i-- {
		p.Complete(txs[i].Tag, Response{Data: txs[i].Req.VPtr})
	}
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	var got []Completion
	for tag, resp := range p.Completions() {
		got = append(got, Completion{Tag: tag, Resp: resp})
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d completions, want 3", len(got))
	}
	wantTags := []Tag{ta, tb, tc}
	wantData := []uint32{0xA, 0xB, 0xC}
	for i, c := range got {
		if c.Tag != wantTags[i] || c.Resp.Data != wantData[i] {
			t.Errorf("delivery %d = tag %d data %#x, want tag %d data %#x",
				i, c.Tag, c.Resp.Data, wantTags[i], wantData[i])
		}
	}
}

// TestPortOutOfOrderDelivery: in OOO mode completions surface in
// completion order, and an early completion is deliverable while an
// older transaction is still in flight.
func TestPortOutOfOrderDelivery(t *testing.T) {
	k := sim.New()
	p := NewPort(k, "p", PortConfig{Depth: 2, OutOfOrder: true})
	ta := p.Issue(Request{Op: OpRead, VPtr: 0xA})
	tb := p.Issue(Request{Op: OpRead, VPtr: 0xB})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	txA, _ := p.Pop()
	txB, _ := p.Pop()
	// Only B completes; A stays in flight.
	p.Complete(txB.Tag, Response{Data: 0xB})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	c, ok := p.TakeCompletion()
	if !ok || c.Tag != tb {
		t.Fatalf("OOO delivery = %+v/%v, want tag %d first", c, ok, tb)
	}
	if _, ok := p.TakeCompletion(); ok {
		t.Fatal("delivered a completion for an in-flight transaction")
	}
	p.Complete(txA.Tag, Response{Data: 0xA})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	if c, ok := p.TakeCompletion(); !ok || c.Tag != ta {
		t.Fatalf("second OOO delivery = %+v/%v, want tag %d", c, ok, ta)
	}
}

// TestPortInOrderBlocksEarlyCompletion is the in-order counterpart: the
// early completion must wait for the older one.
func TestPortInOrderBlocksEarlyCompletion(t *testing.T) {
	k := sim.New()
	p := NewPort(k, "p", PortConfig{Depth: 2})
	p.Issue(Request{Op: OpRead, VPtr: 0xA})
	p.Issue(Request{Op: OpRead, VPtr: 0xB})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	txA, _ := p.Pop()
	txB, _ := p.Pop()
	p.Complete(txB.Tag, Response{Data: 0xB})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	if p.HasCompletion() {
		t.Fatal("in-order port delivered the younger completion first")
	}
	p.Complete(txA.Tag, Response{Data: 0xA})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	c1, ok1 := p.TakeCompletion()
	c2, ok2 := p.TakeCompletion()
	if !ok1 || !ok2 || c1.Resp.Data != 0xA || c2.Resp.Data != 0xB {
		t.Fatalf("in-order release = %+v/%v then %+v/%v", c1, ok1, c2, ok2)
	}
}

// TestPortCompleteUnknownTagPanics: completing a tag that was never
// popped (or twice) is a protocol violation.
func TestPortCompleteUnknownTagPanics(t *testing.T) {
	k := sim.New()
	p := NewPort(k, "p", PortConfig{Depth: 1})
	p.Issue(Request{Op: OpRead})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	tx, _ := p.Pop()
	p.Complete(tx.Tag, Response{})
	defer func() {
		if recover() == nil {
			t.Error("double Complete did not panic")
		}
	}()
	p.Complete(tx.Tag, Response{})
}

// TestPortRingReuse drives many transactions through a shallow port to
// exercise ring-slot reuse across wrap-arounds.
func TestPortRingReuse(t *testing.T) {
	k := sim.New()
	p := NewPort(k, "p", PortConfig{Depth: 3})
	const total = 50
	issued, delivered := 0, 0
	next := uint32(0)
	for cycle := 0; delivered < total && cycle < 10*total; cycle++ {
		for p.CanIssue() && issued < total {
			p.Issue(Request{Op: OpRead, VPtr: next})
			next++
			issued++
		}
		for {
			tx, ok := p.Pop()
			if !ok {
				break
			}
			p.Complete(tx.Tag, Response{Data: tx.Req.VPtr + 1})
		}
		if err := k.Step(); err != nil {
			t.Fatal(err)
		}
		for _, resp := range p.Completions() {
			if resp.Data != uint32(delivered)+1 {
				t.Fatalf("delivery %d carries data %d", delivered, resp.Data)
			}
			delivered++
		}
	}
	if delivered != total {
		t.Fatalf("delivered %d/%d", delivered, total)
	}
}
