package bus

import (
	"fmt"
	"sort"

	"repro/internal/snapshot"
)

// This file makes the transaction layer snapshottable: ports (the only
// owners of sim.Signals in the tree), both interconnect engines, and
// the arbiters. Requests and responses get exported codecs because
// every FSM upstream (memories, caches, DMA, ISS bridge) parks them in
// its own state.

// EncodeRequest appends r to enc.
func EncodeRequest(enc *snapshot.Encoder, r Request) {
	enc.U8(uint8(r.Op))
	enc.Int(r.SM)
	enc.U32(r.VPtr)
	enc.U32(r.Data)
	enc.U32(r.Dim)
	enc.U8(uint8(r.DType))
	enc.U32s(r.Burst)
	enc.Int(r.Master)
	enc.Bool(r.Excl)
	enc.Bool(r.WB)
}

// DecodeRequest reads a Request written by EncodeRequest.
func DecodeRequest(dec *snapshot.Decoder) Request {
	var r Request
	r.Op = Op(dec.U8())
	r.SM = dec.Int()
	r.VPtr = dec.U32()
	r.Data = dec.U32()
	r.Dim = dec.U32()
	r.DType = DataType(dec.U8())
	r.Burst = dec.U32s()
	r.Master = dec.Int()
	r.Excl = dec.Bool()
	r.WB = dec.Bool()
	return r
}

// EncodeResponse appends r to enc.
func EncodeResponse(enc *snapshot.Encoder, r Response) {
	enc.U8(uint8(r.Err))
	enc.U32(r.Data)
	enc.U32(r.VPtr)
	enc.U32s(r.Burst)
}

// DecodeResponse reads a Response written by EncodeResponse.
func DecodeResponse(dec *snapshot.Decoder) Response {
	var r Response
	r.Err = ErrCode(dec.U8())
	r.Data = dec.U32()
	r.VPtr = dec.U32()
	r.Burst = dec.U32s()
	return r
}

func encodeU64s(enc *snapshot.Encoder, v []uint64) {
	enc.U32(uint32(len(v)))
	for _, x := range v {
		enc.U64(x)
	}
}

func decodeU64s(dec *snapshot.Decoder) []uint64 {
	n := int(dec.U32())
	if dec.Err() != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = dec.U64()
	}
	if dec.Err() != nil {
		return nil
	}
	return out
}

func (s *Stats) save(enc *snapshot.Encoder) {
	enc.U64(s.Transactions)
	enc.U64(s.Words)
	enc.U64(s.BusyCycles)
	for _, v := range s.PerOp {
		enc.U64(v)
	}
	encodeU64s(enc, s.PerMaster)
	encodeU64s(enc, s.PerSlave)
	enc.U64(s.NoSlave)
	encodeU64s(enc, s.RespGrants)
}

func (s *Stats) restore(dec *snapshot.Decoder) {
	s.Transactions = dec.U64()
	s.Words = dec.U64()
	s.BusyCycles = dec.U64()
	for i := range s.PerOp {
		s.PerOp[i] = dec.U64()
	}
	s.PerMaster = decodeU64s(dec)
	s.PerSlave = decodeU64s(dec)
	s.NoSlave = dec.U64()
	s.RespGrants = decodeU64s(dec)
}

// Arbiter state markers. config.Build only ever wires these two
// policies; a custom arbiter round-trips as "opaque" and restore
// verifies the rebuilt system uses the same kind.
const (
	arbOpaque = uint8(iota)
	arbRoundRobin
	arbFixedPriority
)

func saveArbiter(enc *snapshot.Encoder, a Arbiter) {
	switch a := a.(type) {
	case *RoundRobin:
		enc.U8(arbRoundRobin)
		enc.Int(a.last)
		enc.Bool(a.init)
	case FixedPriority, *FixedPriority:
		enc.U8(arbFixedPriority)
	default:
		enc.U8(arbOpaque)
	}
}

func restoreArbiter(dec *snapshot.Decoder, a Arbiter) error {
	kind := dec.U8()
	switch kind {
	case arbRoundRobin:
		rr, ok := a.(*RoundRobin)
		if !ok {
			return fmt.Errorf("arbiter mismatch: snapshot has round-robin, system has %s", a.Name())
		}
		rr.last = dec.Int()
		rr.init = dec.Bool()
	case arbFixedPriority:
		switch a.(type) {
		case FixedPriority, *FixedPriority:
		default:
			return fmt.Errorf("arbiter mismatch: snapshot has fixed-priority, system has %s", a.Name())
		}
	case arbOpaque:
		switch a.(type) {
		case *RoundRobin, FixedPriority, *FixedPriority:
			return fmt.Errorf("arbiter mismatch: snapshot has an opaque arbiter, system has %s", a.Name())
		}
	default:
		return fmt.Errorf("unknown arbiter marker %d", kind)
	}
	return dec.Err()
}

func sortedTags[V any](m map[Tag]V) []Tag {
	tags := make([]Tag, 0, len(m))
	for t := range m {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

// SaveState implements snapshot.Saver: the port's credit counters, the
// live entries of both rings, open/reorder tracking, and the committed
// values of its two kernel signals. Only live ring slots are saved, so
// the snapshot does not leak stale host memory.
func (p *Port) SaveState(enc *snapshot.Encoder) {
	enc.String(p.name)
	enc.Int(p.depth)
	enc.Bool(p.ooo)
	enc.U64(p.issued)
	enc.U64(p.popped)
	enc.U64(p.completed)
	enc.U64(p.drained)
	enc.U64(p.delivered)
	enc.U64(p.reqSeq.Get())
	enc.U64(p.ackSeq.Get())
	// Live request ring entries, oldest first.
	for i := p.popped; i < p.issued; i++ {
		t := p.reqBuf[int(i%uint64(p.depth))]
		enc.U64(uint64(t.Tag))
		EncodeRequest(enc, t.Req)
	}
	// Live completion ring entries, oldest first.
	for i := p.drained; i < p.completed; i++ {
		c := p.cmplBuf[int(i%uint64(p.depth))]
		enc.U64(uint64(c.Tag))
		EncodeResponse(enc, c.Resp)
	}
	openTags := sortedTags(p.open)
	enc.U32(uint32(len(openTags)))
	for _, t := range openTags {
		enc.U64(uint64(t))
	}
	reTags := sortedTags(p.reorder)
	enc.U32(uint32(len(reTags)))
	for _, t := range reTags {
		enc.U64(uint64(t))
		EncodeResponse(enc, p.reorder[t])
	}
	enc.U32(uint32(len(p.oooQ)))
	for _, c := range p.oooQ {
		enc.U64(uint64(c.Tag))
		EncodeResponse(enc, c.Resp)
	}
}

// RestoreState implements snapshot.Restorer. The port must have been
// rebuilt with the same name, depth, and delivery mode; geometry skew
// is an error, never silently absorbed.
func (p *Port) RestoreState(dec *snapshot.Decoder) error {
	name := dec.String()
	depth := dec.Int()
	ooo := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if name != p.name || depth != p.depth || ooo != p.ooo {
		return fmt.Errorf("port geometry mismatch: snapshot has %s/depth=%d/ooo=%v, system has %s/depth=%d/ooo=%v",
			name, depth, ooo, p.name, p.depth, p.ooo)
	}
	p.issued = dec.U64()
	p.popped = dec.U64()
	p.completed = dec.U64()
	p.drained = dec.U64()
	p.delivered = dec.U64()
	reqSeq := dec.U64()
	ackSeq := dec.U64()
	if dec.Err() == nil {
		if p.issued < p.popped || p.issued-p.popped > uint64(p.depth) {
			return dec.Fail(fmt.Errorf("port %s: inconsistent request ring (issued=%d popped=%d depth=%d)", p.name, p.issued, p.popped, p.depth))
		}
		if p.completed < p.drained || p.completed-p.drained > uint64(p.depth) {
			return dec.Fail(fmt.Errorf("port %s: inconsistent completion ring (completed=%d drained=%d depth=%d)", p.name, p.completed, p.drained, p.depth))
		}
	}
	for i := range p.reqBuf {
		p.reqBuf[i] = Txn{}
	}
	for i := p.popped; i < p.issued && dec.Err() == nil; i++ {
		tag := Tag(dec.U64())
		p.reqBuf[int(i%uint64(p.depth))] = Txn{Tag: tag, Req: DecodeRequest(dec)}
	}
	for i := range p.cmplBuf {
		p.cmplBuf[i] = Completion{}
	}
	for i := p.drained; i < p.completed && dec.Err() == nil; i++ {
		tag := Tag(dec.U64())
		p.cmplBuf[int(i%uint64(p.depth))] = Completion{Tag: tag, Resp: DecodeResponse(dec)}
	}
	p.open = make(map[Tag]struct{})
	for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
		p.open[Tag(dec.U64())] = struct{}{}
	}
	p.reorder = make(map[Tag]Response)
	for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
		tag := Tag(dec.U64())
		p.reorder[tag] = DecodeResponse(dec)
	}
	p.oooQ = nil
	for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
		tag := Tag(dec.U64())
		p.oooQ = append(p.oooQ, Completion{Tag: tag, Resp: DecodeResponse(dec)})
	}
	if err := dec.Err(); err != nil {
		return err
	}
	p.reqSeq.Restore(reqSeq)
	p.ackSeq.Restore(ackSeq)
	return nil
}

func encodePendSrc(enc *snapshot.Encoder, s pendSrc) {
	enc.Int(s.master)
	enc.U64(uint64(s.tag))
}

func decodePendSrc(dec *snapshot.Decoder) pendSrc {
	return pendSrc{master: dec.Int(), tag: Tag(dec.U64())}
}

func savePendMap(enc *snapshot.Encoder, m map[Tag]pendSrc) {
	tags := sortedTags(m)
	enc.U32(uint32(len(tags)))
	for _, t := range tags {
		enc.U64(uint64(t))
		encodePendSrc(enc, m[t])
	}
}

func restorePendMap(dec *snapshot.Decoder) map[Tag]pendSrc {
	m := make(map[Tag]pendSrc)
	for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
		tag := Tag(dec.U64())
		m[tag] = decodePendSrc(dec)
	}
	return m
}

// SaveState implements snapshot.Saver: both transfer engines (occupied
// and split), the per-slave pending maps, the arbiters, and the stats.
// Topology (masters, slaves, word cycles, snoop hook) is rebuilt from
// config.
func (b *Bus) SaveState(enc *snapshot.Encoder) {
	enc.Int(len(b.masters))
	enc.Int(len(b.slaves))
	enc.U8(uint8(b.state))
	EncodeRequest(enc, b.cur)
	enc.Int(b.curMaster)
	enc.U64(uint64(b.curTag))
	enc.U32(b.counter)
	enc.U8(uint8(b.sstate))
	enc.U32(b.scounter)
	EncodeRequest(enc, b.sreq)
	encodePendSrc(enc, b.sreqFrom)
	enc.U32(uint32(len(b.pend)))
	for _, m := range b.pend {
		savePendMap(enc, m)
	}
	saveArbiter(enc, b.arb)
	saveArbiter(enc, b.respArb())
	b.stats.save(enc)
}

// RestoreState implements snapshot.Restorer.
func (b *Bus) RestoreState(dec *snapshot.Decoder) error {
	nm, ns := dec.Int(), dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if nm != len(b.masters) || ns != len(b.slaves) {
		return fmt.Errorf("bus topology mismatch: snapshot has %dx%d, system has %dx%d",
			nm, ns, len(b.masters), len(b.slaves))
	}
	b.state = busState(dec.U8())
	b.cur = DecodeRequest(dec)
	b.curMaster = dec.Int()
	b.curTag = Tag(dec.U64())
	b.counter = dec.U32()
	b.sstate = splitState(dec.U8())
	b.scounter = dec.U32()
	b.sreq = DecodeRequest(dec)
	b.sreqFrom = decodePendSrc(dec)
	np := int(dec.U32())
	if err := dec.Err(); err != nil {
		return err
	}
	if np != len(b.slaves) {
		return fmt.Errorf("bus pending-map count mismatch: snapshot has %d, system has %d slaves", np, len(b.slaves))
	}
	b.pend = make([]map[Tag]pendSrc, np)
	for i := range b.pend {
		b.pend[i] = restorePendMap(dec)
	}
	if err := restoreArbiter(dec, b.arb); err != nil {
		return err
	}
	if err := restoreArbiter(dec, b.respArb()); err != nil {
		return err
	}
	b.stats.restore(dec)
	return dec.Finish()
}

// SaveState implements snapshot.Saver for the crossbar: every lane's
// occupied and split engines, pending maps, per-lane arbiters, stats.
func (x *Crossbar) SaveState(enc *snapshot.Encoder) {
	enc.Int(len(x.masters))
	enc.Int(len(x.slaves))
	for i := range x.lanes {
		l := &x.lanes[i]
		enc.U8(uint8(l.state))
		EncodeRequest(enc, l.cur)
		enc.Int(l.curMaster)
		enc.U64(uint64(l.curTag))
		enc.U32(l.counter)
		enc.U8(uint8(l.rqState))
		enc.U32(l.rqCounter)
		EncodeRequest(enc, l.rqCur)
		encodePendSrc(enc, l.rqFrom)
		enc.U8(uint8(l.rsState))
		enc.U32(l.rsCounter)
		savePendMap(enc, l.pend)
	}
	for _, a := range x.arbs {
		saveArbiter(enc, a)
	}
	x.stats.save(enc)
}

// RestoreState implements snapshot.Restorer.
func (x *Crossbar) RestoreState(dec *snapshot.Decoder) error {
	nm, ns := dec.Int(), dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if nm != len(x.masters) || ns != len(x.slaves) {
		return fmt.Errorf("crossbar topology mismatch: snapshot has %dx%d, system has %dx%d",
			nm, ns, len(x.masters), len(x.slaves))
	}
	for i := range x.lanes {
		l := &x.lanes[i]
		l.state = busState(dec.U8())
		l.cur = DecodeRequest(dec)
		l.curMaster = dec.Int()
		l.curTag = Tag(dec.U64())
		l.counter = dec.U32()
		l.rqState = splitState(dec.U8())
		l.rqCounter = dec.U32()
		l.rqCur = DecodeRequest(dec)
		l.rqFrom = decodePendSrc(dec)
		l.rsState = splitState(dec.U8())
		l.rsCounter = dec.U32()
		l.pend = restorePendMap(dec)
	}
	for _, a := range x.arbs {
		if err := restoreArbiter(dec, a); err != nil {
			return err
		}
	}
	x.stats.restore(dec)
	return dec.Finish()
}
