package bus

import "testing"

func TestRoundRobinRotates(t *testing.T) {
	a := NewRoundRobin()
	pending := []int{0, 1, 2}
	var grants []int
	for i := 0; i < 6; i++ {
		grants = append(grants, a.Pick(pending))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if grants[i] != want[i] {
			t.Fatalf("grants = %v, want %v", grants, want)
		}
	}
}

func TestRoundRobinSkipsIdleMasters(t *testing.T) {
	a := NewRoundRobin()
	if got := a.Pick([]int{1, 3}); got != 1 {
		t.Errorf("first pick = %d, want 1", got)
	}
	if got := a.Pick([]int{1, 3}); got != 3 {
		t.Errorf("second pick = %d, want 3", got)
	}
	if got := a.Pick([]int{1, 3}); got != 1 {
		t.Errorf("third pick = %d, want 1 (wrap)", got)
	}
	// After granting 3, a newly pending 0 should win the wrap-around.
	if got := a.Pick([]int{0, 3}); got != 3 {
		t.Errorf("fourth pick = %d, want 3 (next after 1)", got)
	}
	if got := a.Pick([]int{0, 2}); got != 0 {
		t.Errorf("fifth pick = %d, want 0 (wrap past 3)", got)
	}
}

func TestRoundRobinSingleMaster(t *testing.T) {
	a := NewRoundRobin()
	for i := 0; i < 3; i++ {
		if got := a.Pick([]int{2}); got != 2 {
			t.Fatalf("pick = %d, want 2", got)
		}
	}
}

func TestFixedPriorityAlwaysLowest(t *testing.T) {
	a := NewFixedPriority()
	if got := a.Pick([]int{0, 1, 2}); got != 0 {
		t.Errorf("pick = %d, want 0", got)
	}
	if got := a.Pick([]int{1, 2}); got != 1 {
		t.Errorf("pick = %d, want 1", got)
	}
}

func TestArbiterNames(t *testing.T) {
	if NewRoundRobin().Name() != "round-robin" {
		t.Error("round-robin name wrong")
	}
	if NewFixedPriority().Name() != "fixed-priority" {
		t.Error("fixed-priority name wrong")
	}
}
