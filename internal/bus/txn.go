package bus

import (
	"encoding/binary"
	"fmt"
)

// Op identifies a shared-memory operation. The dynamic operations (alloc,
// free, reserve, release) exist only on dynamic memory modules; static
// table memories reject them with ErrBadOp.
type Op uint8

const (
	// OpRead reads one element at VPtr (+Data as element index for typed
	// accesses is not used; scalar reads address the exact VPtr).
	OpRead Op = iota
	// OpWrite writes Data to the element at VPtr.
	OpWrite
	// OpAlloc allocates Dim elements of DType; the response carries the
	// new virtual pointer. Maps to calloc(Dim, size(DType)) on the host.
	OpAlloc
	// OpFree deallocates the allocation that starts exactly at VPtr.
	OpFree
	// OpReadBurst reads Dim consecutive elements starting at VPtr into the
	// response's Burst (the wrapper's I/O array mechanism).
	OpReadBurst
	// OpWriteBurst writes the request's Burst to Dim consecutive elements
	// starting at VPtr.
	OpWriteBurst
	// OpReserve sets the reservation bit of the allocation containing
	// VPtr on behalf of the requesting master. Fails with ErrReserved if
	// another master holds it.
	OpReserve
	// OpRelease clears the reservation bit if held by the requesting
	// master.
	OpRelease
)

var opNames = [...]string{
	OpRead: "READ", OpWrite: "WRITE", OpAlloc: "ALLOC", OpFree: "FREE",
	OpReadBurst: "READN", OpWriteBurst: "WRITEN", OpReserve: "RESERVE", OpRelease: "RELEASE",
}

// String returns the mnemonic used in traces and error messages.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// NumOps is the number of defined operations (for stats tables).
const NumOps = int(OpRelease) + 1

// DataType is the element type of an allocation — the paper's "type"
// column in the pointer table. It fixes the element size used by the
// translator for endianness and host-offset computation.
type DataType uint8

const (
	// U8 is an unsigned byte element.
	U8 DataType = iota
	// U16 is an unsigned 16-bit element.
	U16
	// U32 is an unsigned 32-bit element.
	U32
	// I16 is a signed 16-bit element (PCM samples in the GSM workload).
	I16
	// I32 is a signed 32-bit element.
	I32
)

// ReadElem decodes one element of this type from the little-endian
// bytes at the front of b, sign-extending I16 — the element codec every
// byte-backed memory model (static table, heapsim arena, cache line)
// shares.
func (t DataType) ReadElem(b []byte) uint32 {
	switch t {
	case U8:
		return uint32(b[0])
	case U16:
		return uint32(binary.LittleEndian.Uint16(b))
	case I16:
		return uint32(int32(int16(binary.LittleEndian.Uint16(b))))
	default:
		return binary.LittleEndian.Uint32(b)
	}
}

// WriteElem encodes val as one element of this type into the front of
// b, little-endian.
func (t DataType) WriteElem(b []byte, val uint32) {
	switch t {
	case U8:
		b[0] = byte(val)
	case U16, I16:
		binary.LittleEndian.PutUint16(b, uint16(val))
	default:
		binary.LittleEndian.PutUint32(b, val)
	}
}

// Size returns the element size in bytes.
func (t DataType) Size() uint32 {
	switch t {
	case U8:
		return 1
	case U16, I16:
		return 2
	default:
		return 4
	}
}

// String returns the type's short name.
func (t DataType) String() string {
	switch t {
	case U8:
		return "u8"
	case U16:
		return "u16"
	case U32:
		return "u32"
	case I16:
		return "i16"
	case I32:
		return "i32"
	default:
		return fmt.Sprintf("DataType(%d)", uint8(t))
	}
}

// ErrCode is the modelled (in-band) error result of a transaction. These
// are hardware-visible response codes, not Go errors: simulated software
// is expected to observe and handle them.
type ErrCode uint8

const (
	// OK means the operation succeeded.
	OK ErrCode = iota
	// ErrBadVPtr means the virtual pointer does not fall inside any live
	// allocation.
	ErrBadVPtr
	// ErrCapacity means an allocation was denied because the sum of live
	// allocation sizes would exceed the module's configured total size.
	ErrCapacity
	// ErrReserved means the allocation is reserved by a different master.
	ErrReserved
	// ErrBadOp means the target module does not implement the operation.
	ErrBadOp
	// ErrBounds means a burst ran past the end of its allocation, or a
	// static-memory access fell outside the address range.
	ErrBounds
	// ErrNoSlave means the sm_addr selected a nonexistent module.
	ErrNoSlave
	// ErrHost means the host allocator failed (out of host memory).
	ErrHost
)

var errNames = [...]string{
	OK: "OK", ErrBadVPtr: "BAD_VPTR", ErrCapacity: "CAPACITY", ErrReserved: "RESERVED",
	ErrBadOp: "BAD_OP", ErrBounds: "BOUNDS", ErrNoSlave: "NO_SLAVE", ErrHost: "HOST",
}

// String returns the code's mnemonic.
func (e ErrCode) String() string {
	if int(e) < len(errNames) {
		return errNames[e]
	}
	return fmt.Sprintf("ErrCode(%d)", uint8(e))
}

// Request is one shared-memory transaction as issued by a master. The
// operation code and SM (the paper's sm_addr) route the transaction; the
// remaining fields are operands whose meaning depends on Op.
type Request struct {
	Op    Op
	SM    int      // target shared-memory module index
	VPtr  uint32   // virtual pointer operand (read/write/free/burst/reserve)
	Data  uint32   // scalar datum for OpWrite
	Dim   uint32   // element count for OpAlloc and bursts
	DType DataType // element type for OpAlloc
	Burst []uint32 // payload for OpWriteBurst (one element per entry)

	// Master identifies the issuing master. The interconnect stamps it;
	// the wrapper uses it for reservation ownership.
	Master int

	// Excl marks a cache line refill that requests exclusive (writable)
	// ownership — the MESI BusRdX. Set by caches on write misses; the
	// snoop phase invalidates peer copies. Memories ignore it.
	Excl bool
	// WB marks a cache writeback of an owned (Modified) line. Writebacks
	// are the resolution mechanism of the snoop protocol's dirty-line
	// deferrals, so the snoop phase never defers or invalidates on them.
	// Memories treat the request as an ordinary burst write.
	WB bool
}

// String renders the request for traces.
func (r Request) String() string {
	switch r.Op {
	case OpAlloc:
		return fmt.Sprintf("%s sm=%d dim=%d type=%s m=%d", r.Op, r.SM, r.Dim, r.DType, r.Master)
	case OpWrite:
		return fmt.Sprintf("%s sm=%d v=%#x data=%#x m=%d", r.Op, r.SM, r.VPtr, r.Data, r.Master)
	case OpWriteBurst:
		return fmt.Sprintf("%s sm=%d v=%#x n=%d m=%d", r.Op, r.SM, r.VPtr, len(r.Burst), r.Master)
	case OpReadBurst:
		return fmt.Sprintf("%s sm=%d v=%#x dim=%d m=%d", r.Op, r.SM, r.VPtr, r.Dim, r.Master)
	default:
		return fmt.Sprintf("%s sm=%d v=%#x m=%d", r.Op, r.SM, r.VPtr, r.Master)
	}
}

// WireWords returns the number of bus words a master transfers to convey
// this request: one word for opcode+sm_addr (the paper sends these first),
// plus the operands. Burst writes move their payload one word per cycle
// through the wrapper's I/O array.
func (r Request) WireWords() uint32 {
	switch r.Op {
	case OpAlloc:
		return 1 + 2 // dim, type
	case OpWrite:
		return 1 + 2 // vptr, data
	case OpRead, OpFree, OpReserve, OpRelease:
		return 1 + 1 // vptr
	case OpReadBurst:
		return 1 + 2 // vptr, dim
	case OpWriteBurst:
		return 1 + 2 + uint32(len(r.Burst)) // vptr, dim, payload
	default:
		return 1
	}
}

// Response is the completion of a Request. Err is the in-band hardware
// status; the data fields are valid only when Err == OK.
type Response struct {
	Err   ErrCode
	Data  uint32   // scalar result for OpRead
	VPtr  uint32   // new virtual pointer for OpAlloc
	Burst []uint32 // payload for OpReadBurst
}

// WireWords returns the number of bus words the slave returns: a status
// word plus any payload.
func (p Response) WireWords() uint32 {
	return 1 + uint32(len(p.Burst))
}

// String renders the response for traces.
func (p Response) String() string {
	if p.Err != OK {
		return fmt.Sprintf("ERR(%s)", p.Err)
	}
	if p.Burst != nil {
		return fmt.Sprintf("OK n=%d", len(p.Burst))
	}
	return fmt.Sprintf("OK data=%#x v=%#x", p.Data, p.VPtr)
}
