package bus

import (
	"repro/internal/sim"
)

// Stats aggregates interconnect activity counters. All counters are in
// units of transactions, bus words, or cycles of the simulated clock.
type Stats struct {
	Transactions uint64
	Words        uint64 // request + response words moved
	BusyCycles   uint64 // cycles the interconnect was occupied
	PerOp        [NumOps]uint64
	PerMaster    []uint64 // grants per master
	PerSlave     []uint64 // transactions per slave
	NoSlave      uint64   // requests addressed to a nonexistent sm_addr
}

type busState uint8

const (
	busIdle busState = iota
	busReqXfer
	busWaitSlave
	busRespXfer
)

// Bus is the shared interconnect: all masters compete for a single
// transaction channel, one transaction occupies the bus end-to-end
// (request words, slave wait, response words). This is the paper's
// INTERCONNECT box: ISSs on one side, shared memories on the other.
//
// Timing model: moving one word costs WordCycles bus cycles (default 1).
// While the slave processes, the bus is held (a simple, common on-chip
// bus without split transactions — the conservative choice for the
// paper's era; the Crossbar relaxes this for the A1 ablation).
type Bus struct {
	name    string
	masters []*Link
	slaves  []*Link
	arb     Arbiter

	// WordCycles is the bus occupancy per transferred word. Configure
	// before simulation starts; 0 is treated as 1.
	WordCycles uint32

	state     busState
	cur       Request
	curMaster int
	counter   uint32

	stats Stats
}

// NewBus creates a shared bus connecting the given master-side links to
// the given slave-side links, arbitrated by arb. Slave i serves requests
// whose SM field equals i. The bus registers itself with the kernel.
func NewBus(k *sim.Kernel, name string, masters, slaves []*Link, arb Arbiter) *Bus {
	b := &Bus{
		name:       name,
		masters:    masters,
		slaves:     slaves,
		arb:        arb,
		WordCycles: 1,
		stats: Stats{
			PerMaster: make([]uint64, len(masters)),
			PerSlave:  make([]uint64, len(slaves)),
		},
	}
	k.Add(b)
	return b
}

// Name implements sim.Module.
func (b *Bus) Name() string { return b.name }

// Stats returns a snapshot of the accumulated counters.
func (b *Bus) Stats() Stats {
	s := b.stats
	s.PerMaster = append([]uint64(nil), b.stats.PerMaster...)
	s.PerSlave = append([]uint64(nil), b.stats.PerSlave...)
	return s
}

func (b *Bus) wordCycles(words uint32) uint32 {
	wc := b.WordCycles
	if wc == 0 {
		wc = 1
	}
	return words * wc
}

// NextWake implements sim.Sleeper. Idle with no demand, or parked on a
// slave's response, the bus can only be woken by a signal commit
// (request issue resp. completion). The two transfer states are pure
// word-counter countdowns whose next observable action is `counter-1`
// cycles away.
func (b *Bus) NextWake(now uint64) uint64 {
	switch b.state {
	case busIdle:
		for _, m := range b.masters {
			if m.Pending() {
				return now
			}
		}
		return sim.WakeNever
	case busWaitSlave:
		return sim.WakeNever
	default: // busReqXfer, busRespXfer
		if b.counter <= 1 {
			return now
		}
		return now + uint64(b.counter) - 1
	}
}

// ConcurrentTick implements sim.Concurrent: the bus owns its FSM, its
// arbiter and its stats; on the links it only uses the slave side of
// master links (take/peek) and the master side of slave links
// (issue/consume), which the link protocol makes exclusive to it within
// any cycle. Safe to tick concurrently with CPUs and memories.
func (b *Bus) ConcurrentTick() bool { return true }

// TickWeight implements sim.Weighted: mostly demand polling and word
// countdowns — cheap relative to the modules it connects.
func (b *Bus) TickWeight() int { return 2 }

// Skip implements sim.Sleeper: every skipped cycle in a non-idle state
// is a busy cycle; in the transfer states it is also a counter tick.
func (b *Bus) Skip(n uint64) {
	switch b.state {
	case busIdle:
	case busWaitSlave:
		b.stats.BusyCycles += n
	default:
		b.counter -= uint32(n)
		b.stats.BusyCycles += n
	}
}

// Tick implements sim.Module: a four-state transaction engine.
func (b *Bus) Tick(cycle uint64) {
	switch b.state {
	case busIdle:
		var pending []int
		for i, m := range b.masters {
			if m.Pending() {
				pending = append(pending, i)
			}
		}
		if len(pending) == 0 {
			return
		}
		gi := b.arb.Pick(pending)
		req, ok := b.masters[gi].TakeRequest()
		if !ok {
			return // unreachable if Pending was true, but stay safe
		}
		req.Master = gi
		b.cur = req
		b.curMaster = gi
		b.stats.Transactions++
		b.stats.PerMaster[gi]++
		b.stats.PerOp[req.Op]++
		b.stats.Words += uint64(req.WireWords())
		b.counter = b.wordCycles(req.WireWords())
		b.state = busReqXfer
		b.stats.BusyCycles++

	case busReqXfer:
		b.stats.BusyCycles++
		if b.counter > 0 {
			b.counter--
		}
		if b.counter > 0 {
			return
		}
		if b.cur.SM < 0 || b.cur.SM >= len(b.slaves) {
			b.stats.NoSlave++
			b.masters[b.curMaster].Complete(Response{Err: ErrNoSlave})
			b.state = busIdle
			return
		}
		b.stats.PerSlave[b.cur.SM]++
		b.slaves[b.cur.SM].Issue(b.cur)
		b.state = busWaitSlave

	case busWaitSlave:
		b.stats.BusyCycles++
		resp, ok := b.slaves[b.cur.SM].Response()
		if !ok {
			return
		}
		b.cur = Request{SM: b.cur.SM} // keep routing info, drop payload
		b.stats.Words += uint64(resp.WireWords())
		b.counter = b.wordCycles(resp.WireWords())
		b.masters[b.curMaster].Complete(resp)
		b.state = busRespXfer

	case busRespXfer:
		// The response words occupy the bus after completion has been
		// signalled; the master observes the response when the signal
		// commits, while the bus remains busy draining the payload.
		b.stats.BusyCycles++
		if b.counter > 0 {
			b.counter--
		}
		if b.counter == 0 {
			b.state = busIdle
		}
	}
}
