package bus

import (
	"repro/internal/sim"
)

// Stats aggregates interconnect activity counters. All counters are in
// units of transactions, bus words, or cycles of the simulated clock.
type Stats struct {
	Transactions uint64
	Words        uint64 // request + response words moved
	BusyCycles   uint64 // cycles the interconnect was occupied
	PerOp        [NumOps]uint64
	PerMaster    []uint64 // grants per master
	PerSlave     []uint64 // transactions per slave
	NoSlave      uint64   // requests addressed to a nonexistent sm_addr
	// RespGrants counts response-phase grants per slave (split mode only:
	// the re-arbitration of the return path).
	RespGrants []uint64
}

type busState uint8

const (
	busIdle busState = iota
	busReqXfer
	busWaitSlave
	busRespXfer
)

// splitState is the split-transaction engine's channel state: the single
// shared channel is either free or draining a request/response transfer.
// There is no busWaitSlave — releasing the channel during slave
// processing is the point of the split protocol.
type splitState uint8

const (
	sbIdle splitState = iota
	sbReqXfer
	sbRespXfer
)

// pendSrc remembers where a request forwarded into a slave port came
// from, so the response phase can route the completion back.
type pendSrc struct {
	master int
	tag    Tag
}

// Bus is the shared interconnect: all masters compete for a single
// transaction channel. It runs one of two engines:
//
// Occupied (Split=false, the default): one transaction holds the bus
// end-to-end — request words, slave wait, response words. This is the
// paper's INTERCONNECT box, a simple on-chip bus without split
// transactions, and it is cycle-identical to the pre-port protocol.
//
// Split (Split=true): the address phase occupies the bus only for the
// request words, then hands the request to the slave port's queue and
// releases the bus; while slaves process, other address phases proceed.
// Completed transactions re-arbitrate for the bus (RespArb) and occupy
// it only for the response words. Transactions to different slaves — and
// pipelined transactions to the same slave, up to the port depth —
// overlap in time.
type Bus struct {
	name    string
	masters []*Port
	slaves  []*Port
	arb     Arbiter

	// WordCycles is the bus occupancy per transferred word. Configure
	// before simulation starts; 0 is treated as 1.
	WordCycles uint32

	// Split selects the split-transaction engine. Configure before
	// simulation starts.
	Split bool
	// RespArb arbitrates the response phase among slaves with deliverable
	// completions (split mode only). Nil selects round-robin. Configure
	// before simulation starts.
	RespArb Arbiter

	// Snoop, when non-nil, is the cache-coherence domain consulted before
	// and notified after every address-phase grant (see Snooper).
	// Configure before simulation starts.
	Snoop Snooper

	// occupied-engine state
	state     busState
	cur       Request
	curMaster int
	curTag    Tag
	counter   uint32

	// split-engine state
	sstate   splitState
	scounter uint32
	sreq     Request
	sreqFrom pendSrc
	pend     []map[Tag]pendSrc // per slave: slave-port tag → origin

	stats Stats
}

// NewBus creates a shared bus connecting the given master-side ports to
// the given slave-side ports, arbitrated by arb. Slave i serves requests
// whose SM field equals i. The bus registers itself with the kernel.
func NewBus(k *sim.Kernel, name string, masters, slaves []*Port, arb Arbiter) *Bus {
	b := &Bus{
		name:       name,
		masters:    masters,
		slaves:     slaves,
		arb:        arb,
		WordCycles: 1,
		pend:       make([]map[Tag]pendSrc, len(slaves)),
		stats: Stats{
			PerMaster:  make([]uint64, len(masters)),
			PerSlave:   make([]uint64, len(slaves)),
			RespGrants: make([]uint64, len(slaves)),
		},
	}
	for i := range b.pend {
		b.pend[i] = make(map[Tag]pendSrc)
	}
	k.Add(b)
	return b
}

// Name implements sim.Module.
func (b *Bus) Name() string { return b.name }

// Stats returns a snapshot of the accumulated counters.
func (b *Bus) Stats() Stats {
	s := b.stats
	s.PerMaster = append([]uint64(nil), b.stats.PerMaster...)
	s.PerSlave = append([]uint64(nil), b.stats.PerSlave...)
	s.RespGrants = append([]uint64(nil), b.stats.RespGrants...)
	return s
}

func (b *Bus) wordCycles(words uint32) uint32 {
	wc := b.WordCycles
	if wc == 0 {
		wc = 1
	}
	return words * wc
}

func (b *Bus) respArb() Arbiter {
	if b.RespArb == nil {
		b.RespArb = NewRoundRobin()
	}
	return b.RespArb
}

// NextWake implements sim.Sleeper. Idle with no demand, or parked on a
// slave's response, the bus can only be woken by a signal commit
// (request issue resp. completion). The transfer states are pure
// word-counter countdowns whose next observable action is `counter-1`
// cycles away.
func (b *Bus) NextWake(now uint64) uint64 {
	if b.Split {
		return b.nextWakeSplit(now)
	}
	switch b.state {
	case busIdle:
		for _, m := range b.masters {
			if m.Pending() {
				return now
			}
		}
		return sim.WakeNever
	case busWaitSlave:
		return sim.WakeNever
	default: // busReqXfer, busRespXfer
		if b.counter <= 1 {
			return now
		}
		return now + uint64(b.counter) - 1
	}
}

func (b *Bus) nextWakeSplit(now uint64) uint64 {
	if b.sstate != sbIdle {
		if b.scounter <= 1 {
			return now
		}
		return now + uint64(b.scounter) - 1
	}
	for _, s := range b.slaves {
		if s.HasCompletion() {
			return now
		}
	}
	for _, m := range b.masters {
		req, ok := m.Peek()
		if !ok {
			continue
		}
		if req.SM < 0 || req.SM >= len(b.slaves) || b.slaves[req.SM].CanAccept() {
			return now
		}
	}
	return sim.WakeNever
}

// ConcurrentTick implements sim.Concurrent: the bus owns its FSMs, its
// arbiters, its pending-transaction tables and its stats; on the ports
// it only uses the slave side of master ports (peek/pop/complete) and
// the master side of slave ports (issue/drain), which the port protocol
// makes exclusive to it within any cycle. Safe to tick concurrently with
// CPUs and memories — unless a snoop domain is attached, in which case
// the bus mutates peer cache state during its Tick and must co-schedule
// with the caches on the serial shard.
func (b *Bus) ConcurrentTick() bool { return b.Snoop == nil }

// TickWeight implements sim.Weighted: mostly demand polling and word
// countdowns — cheap relative to the modules it connects.
func (b *Bus) TickWeight() int { return 2 }

// Skip implements sim.Sleeper: every skipped cycle in a non-idle state
// is a busy cycle; in the transfer states it is also a counter tick. A
// split bus parked between transfers is *released*, not busy — that
// difference is the protocol's whole advantage and shows up directly in
// BusyCycles.
func (b *Bus) Skip(n uint64) {
	if b.Split {
		if b.sstate != sbIdle {
			b.scounter -= uint32(n)
			b.stats.BusyCycles += n
		}
		return
	}
	switch b.state {
	case busIdle:
	case busWaitSlave:
		b.stats.BusyCycles += n
	default:
		b.counter -= uint32(n)
		b.stats.BusyCycles += n
	}
}

// Tick implements sim.Module.
func (b *Bus) Tick(cycle uint64) {
	if b.Split {
		b.tickSplit()
		return
	}
	b.tickOccupied()
}

// tickOccupied is the classic four-state engine: one transaction holds
// the bus end-to-end. Cycle-identical to the pre-port protocol.
func (b *Bus) tickOccupied() {
	switch b.state {
	case busIdle:
		var pending []int
		for i, m := range b.masters {
			if !m.Pending() {
				continue
			}
			if b.Snoop != nil {
				// Only a snooper needs the request payload; the uncached
				// hot path stays a sequence-counter compare.
				if req, ok := m.Peek(); !ok || !b.Snoop.CanProceed(req, i) {
					continue
				}
			}
			pending = append(pending, i)
		}
		if len(pending) == 0 {
			return
		}
		gi := b.arb.Pick(pending)
		tx, ok := b.masters[gi].Pop()
		if !ok {
			return // unreachable if Pending was true, but stay safe
		}
		req := tx.Req
		req.Master = gi
		if b.Snoop != nil {
			b.Snoop.OnGrant(req, gi, tx.Tag)
		}
		b.cur = req
		b.curMaster = gi
		b.curTag = tx.Tag
		b.stats.Transactions++
		b.stats.PerMaster[gi]++
		b.stats.PerOp[req.Op]++
		b.stats.Words += uint64(req.WireWords())
		b.counter = b.wordCycles(req.WireWords())
		b.state = busReqXfer
		b.stats.BusyCycles++

	case busReqXfer:
		b.stats.BusyCycles++
		if b.counter > 0 {
			b.counter--
		}
		if b.counter > 0 {
			return
		}
		if b.cur.SM < 0 || b.cur.SM >= len(b.slaves) {
			b.stats.NoSlave++
			b.masters[b.curMaster].Complete(b.curTag, Response{Err: ErrNoSlave})
			b.state = busIdle
			return
		}
		b.stats.PerSlave[b.cur.SM]++
		// Single outstanding end-to-end: curMaster/curTag already route
		// the response, so the slave-port tag needs no pending table.
		b.slaves[b.cur.SM].Issue(b.cur)
		b.state = busWaitSlave

	case busWaitSlave:
		b.stats.BusyCycles++
		c, ok := b.slaves[b.cur.SM].TakeCompletion()
		if !ok {
			return
		}
		b.cur = Request{SM: b.cur.SM} // keep routing info, drop payload
		b.stats.Words += uint64(c.Resp.WireWords())
		b.counter = b.wordCycles(c.Resp.WireWords())
		b.masters[b.curMaster].Complete(b.curTag, c.Resp)
		b.state = busRespXfer

	case busRespXfer:
		// The response words occupy the bus after completion has been
		// signalled; the master observes the response when the signal
		// commits, while the bus remains busy draining the payload.
		b.stats.BusyCycles++
		if b.counter > 0 {
			b.counter--
		}
		if b.counter == 0 {
			b.state = busIdle
		}
	}
}

// tickSplit is the split-transaction engine. Response phases have
// priority over address phases: a finished transaction ties up a slave
// queue slot (and a master credit) until its response drains, so
// returning results first maximizes the concurrency both ends can
// sustain.
func (b *Bus) tickSplit() {
	switch b.sstate {
	case sbIdle:
		if b.startResponse() {
			return
		}
		b.startRequest()

	case sbReqXfer:
		b.stats.BusyCycles++
		if b.scounter > 0 {
			b.scounter--
		}
		if b.scounter > 0 {
			return
		}
		if b.sreq.SM < 0 || b.sreq.SM >= len(b.slaves) {
			b.stats.NoSlave++
			b.masters[b.sreqFrom.master].Complete(b.sreqFrom.tag, Response{Err: ErrNoSlave})
		} else {
			b.stats.PerSlave[b.sreq.SM]++
			stag := b.slaves[b.sreq.SM].Issue(b.sreq)
			b.pend[b.sreq.SM][stag] = b.sreqFrom
		}
		b.sreq = Request{}
		b.sstate = sbIdle

	case sbRespXfer:
		b.stats.BusyCycles++
		if b.scounter > 0 {
			b.scounter--
		}
		if b.scounter == 0 {
			b.sstate = sbIdle
		}
	}
}

// startResponse arbitrates the response phase among slaves with a
// deliverable completion and, on a grant, routes the completion back to
// its master and occupies the bus for the response words.
func (b *Bus) startResponse() bool {
	var cands []int
	for si, s := range b.slaves {
		if _, ok := s.PeekCompletion(); ok {
			cands = append(cands, si)
		}
	}
	if len(cands) == 0 {
		return false
	}
	si := b.respArb().Pick(cands)
	c, ok := b.slaves[si].TakeCompletion()
	if !ok {
		return false // unreachable if HasCompletion was true
	}
	src := b.pend[si][c.Tag]
	delete(b.pend[si], c.Tag)
	b.stats.RespGrants[si]++
	b.stats.Words += uint64(c.Resp.WireWords())
	b.masters[src.master].Complete(src.tag, c.Resp)
	b.scounter = b.wordCycles(c.Resp.WireWords())
	b.sstate = sbRespXfer
	b.stats.BusyCycles++
	return true
}

// startRequest arbitrates the address phase among masters whose head
// request can actually be accepted (slave queue credit free, or a
// nonexistent slave — rejected after the transfer, as the occupied
// engine does) and, on a grant, pops the request and occupies the bus
// for its words.
func (b *Bus) startRequest() {
	var cands []int
	for mi, m := range b.masters {
		req, ok := m.Peek()
		if !ok {
			continue
		}
		if req.SM >= 0 && req.SM < len(b.slaves) && !b.slaves[req.SM].CanAccept() {
			continue
		}
		if b.Snoop != nil && !b.Snoop.CanProceed(req, mi) {
			continue
		}
		cands = append(cands, mi)
	}
	if len(cands) == 0 {
		return
	}
	gi := b.arb.Pick(cands)
	tx, ok := b.masters[gi].Pop()
	if !ok {
		return
	}
	req := tx.Req
	req.Master = gi
	if b.Snoop != nil {
		b.Snoop.OnGrant(req, gi, tx.Tag)
	}
	b.sreq = req
	b.sreqFrom = pendSrc{master: gi, tag: tx.Tag}
	b.stats.Transactions++
	b.stats.PerMaster[gi]++
	b.stats.PerOp[req.Op]++
	b.stats.Words += uint64(req.WireWords())
	b.scounter = b.wordCycles(req.WireWords())
	b.sstate = sbReqXfer
	b.stats.BusyCycles++
}
