// Package bus provides the on-chip interconnect of the simulated MPSoC:
// transaction types, cycle-true split-transaction ports, a shared bus
// with pluggable arbitration in both phases, and a crossbar with
// pipelined lanes.
//
// The paper's system connects several ISSs (masters) to several shared
// memory modules (slaves) through an interconnect. Every transaction
// carries an operation code and a shared-memory address (sm_addr) "as the
// first data of every transaction"; the remaining operands depend on the
// operation (allocation carries a size and data type, writes carry a
// virtual pointer and data, and so on). This package models that
// transaction vocabulary in the Request/Response pair, and the
// cycle-by-cycle wiring in Port.
//
// # Ports, tags, credits
//
// A Port is a credit-based connection between one master and one slave
// side (usually the interconnect). The master issues up to Depth tagged
// requests without waiting — Issue consumes a credit and returns the
// transaction's Tag — and drains completions through the per-cycle
// Completions iterator (or TakeCompletion), which returns the credit.
// The slave side serves a request queue: Peek inspects the visible head,
// Pop removes it, Complete publishes the response under the popped tag.
// Peek couples payload and validity in one call, so a caller can never
// read a stale request — the footgun of the older Pending/PeekRequest
// pair.
//
// Delivery order is selectable per port: in-order (default) buffers
// early completions and releases them in issue order, so masters that
// ignore tags keep the classic FIFO contract; out-of-order delivers in
// completion order for masters that track tags themselves.
//
// Timing discipline is unchanged from the paper: requests issued in
// cycle c are visible to the slave side from c+1, completions published
// in cycle c are visible to the master from c+1 — registered
// communication, "incoming signals are evaluated cycle by cycle". At
// Depth 1 with in-order delivery a port is cycle-identical to the
// original single-outstanding Link handshake (NewLink still builds
// exactly that configuration).
//
// # Phases: occupied versus split
//
// Both interconnects run one of two protocols, selected by their Split
// field:
//
// Occupied (default) is the paper's bus: a granted transaction holds the
// channel end-to-end — request words, slave wait, response words. It is
// the 2005-faithful reference and remains bit-identical to the
// pre-split implementation.
//
// Split decomposes a transaction into an address phase and a response
// phase. The address phase occupies the channel only while the request
// words move (WireWords × WordCycles), then deposits the request in the
// slave port's queue — bounded by the port depth, the protocol's credit
// pool — and releases the channel. Slaves process their queues
// autonomously. A finished transaction re-arbitrates for the channel
// (the Bus's RespArb; response phases have priority over address phases,
// since a parked response pins both a slave queue slot and a master
// credit) and occupies it only for the response words. Transactions to
// different memories, and pipelined transactions to the same memory,
// therefore overlap in simulated time — the memory-level parallelism
// experiment E10 measures exactly this.
//
// The Crossbar gives every slave an independent lane. In occupied mode
// each lane runs the end-to-end engine; in split mode a lane splits into
// concurrently running request and response engines, so a lane can
// accept request N+1 while its slave processes N and response N−1
// drains. Requests to nonexistent slaves are rejected centrally with
// ErrNoSlave in every mode.
//
// # Arbitration
//
// Arbiters see the indices of requesters with visible demand and pick
// one per grant. RoundRobin is starvation-free under sustained
// saturation; FixedPriority is cheap and documents the classic
// starvation pathology (see the fairness tests). The split Bus
// arbitrates the response phase with a second, independent arbiter
// instance.
package bus
