// Package bus provides the on-chip interconnect of the simulated MPSoC:
// transaction types, cycle-true master/slave handshake links, a shared bus
// with pluggable arbitration, and a crossbar used for ablation studies.
//
// The paper's system connects several ISSs (masters) to several shared
// memory modules (slaves) through an interconnect. Every transaction
// carries an operation code and a shared-memory address (sm_addr) "as the
// first data of every transaction"; the remaining operands depend on the
// operation (allocation carries a size and data type, writes carry a
// virtual pointer and data, and so on). This package models that
// transaction vocabulary in the Request/Response pair, and the
// cycle-by-cycle handshake in Link.
//
// Handshake discipline. A Link is a single-outstanding-transaction
// connection. The master issues a request; one cycle later the slave can
// observe and latch it; after the slave completes, one further cycle
// elapses before the master observes the response. The two-cycle minimum
// round trip is the cost of registered (cycle-true) communication and is
// deliberate: it matches the paper's statement that "incoming signals are
// evaluated cycle by cycle".
package bus
