package bus

import (
	"testing"

	"repro/internal/sim"
)

// buildBusSystem wires n masters and m echo slaves through a shared Bus
// and returns the masters plus the kernel and bus for inspection.
func buildBusSystem(t *testing.T, nMasters, nSlaves, slaveLatency int, reqsFor func(m int) []Request) (*sim.Kernel, *Bus, []*scriptMaster, []*echoSlave) {
	t.Helper()
	k := sim.New()
	var mLinks, sLinks []*Port
	var masters []*scriptMaster
	var slaves []*echoSlave
	for i := 0; i < nMasters; i++ {
		l := NewLink(k, "m"+string(rune('0'+i)))
		mLinks = append(mLinks, l)
		sm := &scriptMaster{name: "master", link: l, reqs: reqsFor(i)}
		masters = append(masters, sm)
		k.Add(sm)
	}
	for i := 0; i < nSlaves; i++ {
		l := NewLink(k, "s"+string(rune('0'+i)))
		sLinks = append(sLinks, l)
		es := &echoSlave{name: "slave", link: l, latency: slaveLatency}
		slaves = append(slaves, es)
		k.Add(es)
	}
	b := NewBus(k, "bus", mLinks, sLinks, NewRoundRobin())
	return k, b, masters, slaves
}

func allDone(ms []*scriptMaster) func() bool {
	return func() bool {
		for _, m := range ms {
			if !m.Done() {
				return false
			}
		}
		return true
	}
}

func TestBusSingleMasterRead(t *testing.T) {
	k, b, ms, _ := buildBusSystem(t, 1, 1, 0, func(int) []Request {
		return []Request{{Op: OpRead, SM: 0, VPtr: 9}}
	})
	if _, err := k.RunUntil(allDone(ms), 100); err != nil {
		t.Fatal(err)
	}
	if got := ms[0].Responses[0].Data; got != 10 {
		t.Errorf("Data = %d, want 10", got)
	}
	st := b.Stats()
	if st.Transactions != 1 {
		t.Errorf("Transactions = %d, want 1", st.Transactions)
	}
	if st.PerOp[OpRead] != 1 {
		t.Errorf("PerOp[READ] = %d, want 1", st.PerOp[OpRead])
	}
	if st.PerSlave[0] != 1 {
		t.Errorf("PerSlave[0] = %d, want 1", st.PerSlave[0])
	}
}

func TestBusRoutesBySMAddr(t *testing.T) {
	k, _, ms, slaves := buildBusSystem(t, 1, 3, 0, func(int) []Request {
		return []Request{
			{Op: OpRead, SM: 2, VPtr: 1},
			{Op: OpRead, SM: 0, VPtr: 2},
			{Op: OpRead, SM: 1, VPtr: 3},
		}
	})
	if _, err := k.RunUntil(allDone(ms), 200); err != nil {
		t.Fatal(err)
	}
	if n := len(slaves[0].Served); n != 1 || slaves[0].Served[0].VPtr != 2 {
		t.Errorf("slave0 served %v", slaves[0].Served)
	}
	if n := len(slaves[1].Served); n != 1 || slaves[1].Served[0].VPtr != 3 {
		t.Errorf("slave1 served %v", slaves[1].Served)
	}
	if n := len(slaves[2].Served); n != 1 || slaves[2].Served[0].VPtr != 1 {
		t.Errorf("slave2 served %v", slaves[2].Served)
	}
}

func TestBusNoSlaveError(t *testing.T) {
	k, b, ms, _ := buildBusSystem(t, 1, 1, 0, func(int) []Request {
		return []Request{{Op: OpRead, SM: 7, VPtr: 1}}
	})
	if _, err := k.RunUntil(allDone(ms), 100); err != nil {
		t.Fatal(err)
	}
	if got := ms[0].Responses[0].Err; got != ErrNoSlave {
		t.Errorf("Err = %v, want ErrNoSlave", got)
	}
	if b.Stats().NoSlave != 1 {
		t.Errorf("NoSlave = %d, want 1", b.Stats().NoSlave)
	}
}

func TestBusStampsMasterID(t *testing.T) {
	k, _, ms, slaves := buildBusSystem(t, 3, 1, 0, func(m int) []Request {
		return []Request{{Op: OpWrite, SM: 0, VPtr: uint32(m), Data: 1, Master: 99}}
	})
	if _, err := k.RunUntil(allDone(ms), 300); err != nil {
		t.Fatal(err)
	}
	for _, served := range slaves[0].Served {
		if served.Master != int(served.VPtr) {
			t.Errorf("master stamp %d, want %d (bus must overwrite)", served.Master, served.VPtr)
		}
	}
}

func TestBusRoundRobinFairUnderSaturation(t *testing.T) {
	const perMaster = 20
	reqs := func(m int) []Request {
		rs := make([]Request, perMaster)
		for i := range rs {
			rs[i] = Request{Op: OpRead, SM: 0, VPtr: uint32(m)}
		}
		return rs
	}
	k, b, ms, _ := buildBusSystem(t, 4, 1, 1, reqs)
	if _, err := k.RunUntil(allDone(ms), 20000); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	for i, g := range st.PerMaster {
		if g != perMaster {
			t.Errorf("PerMaster[%d] = %d, want %d", i, g, perMaster)
		}
	}
	if st.Transactions != 4*perMaster {
		t.Errorf("Transactions = %d, want %d", st.Transactions, 4*perMaster)
	}
}

func TestBusSerializesTransactions(t *testing.T) {
	// Two masters to two different slaves: on a shared bus the second
	// transaction cannot start before the first completes.
	k, b, ms, _ := buildBusSystem(t, 2, 2, 5, func(m int) []Request {
		return []Request{{Op: OpRead, SM: m, VPtr: uint32(m)}}
	})
	if _, err := k.RunUntil(allDone(ms), 1000); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	// Busy cycles must cover both transactions' wire words + both slave
	// latencies serialized, i.e. strictly more than one transaction's cost.
	oneTxn := uint64(2 + 5 + 1 + 2) // req words + latency + resp word + handshake slack
	if st.BusyCycles < 2*oneTxn-4 {
		t.Errorf("BusyCycles = %d, too low for serialized transactions (one ≈ %d)", st.BusyCycles, oneTxn)
	}
	done0, done1 := ms[0].DoneAt[0], ms[1].DoneAt[0]
	gap := int64(done1) - int64(done0)
	if gap < 0 {
		gap = -gap
	}
	if gap < int64(5) {
		t.Errorf("completions %d and %d overlap; bus must serialize", done0, done1)
	}
}

func TestCrossbarParallelism(t *testing.T) {
	// The same two-master/two-slave workload on a crossbar overlaps; the
	// completion gap collapses compared to the shared bus.
	k := sim.New()
	var mLinks, sLinks []*Port
	var masters []*scriptMaster
	for i := 0; i < 2; i++ {
		l := NewLink(k, "m")
		mLinks = append(mLinks, l)
		sm := &scriptMaster{name: "master", link: l, reqs: []Request{{Op: OpRead, SM: i, VPtr: uint32(i)}}}
		masters = append(masters, sm)
		k.Add(sm)
	}
	for i := 0; i < 2; i++ {
		l := NewLink(k, "s")
		sLinks = append(sLinks, l)
		k.Add(&echoSlave{name: "slave", link: l, latency: 5})
	}
	x := NewCrossbar(k, "xbar", mLinks, sLinks, func() Arbiter { return NewRoundRobin() })
	if _, err := k.RunUntil(allDone(masters), 1000); err != nil {
		t.Fatal(err)
	}
	if masters[0].DoneAt[0] != masters[1].DoneAt[0] {
		t.Errorf("crossbar completions %d vs %d, want simultaneous",
			masters[0].DoneAt[0], masters[1].DoneAt[0])
	}
	st := x.Stats()
	if st.Transactions != 2 {
		t.Errorf("Transactions = %d, want 2", st.Transactions)
	}
}

func TestCrossbarNoSlave(t *testing.T) {
	k := sim.New()
	ml := NewLink(k, "m")
	sl := NewLink(k, "s")
	sm := &scriptMaster{name: "m", link: ml, reqs: []Request{{Op: OpRead, SM: 5}}}
	k.Add(sm)
	k.Add(&echoSlave{name: "s", link: sl})
	NewCrossbar(k, "xbar", []*Port{ml}, []*Port{sl}, func() Arbiter { return NewFixedPriority() })
	if _, err := k.RunUntil(sm.Done, 100); err != nil {
		t.Fatal(err)
	}
	if got := sm.Responses[0].Err; got != ErrNoSlave {
		t.Errorf("Err = %v, want ErrNoSlave", got)
	}
}

func TestCrossbarContentionSameSlave(t *testing.T) {
	// Two masters to the same slave must still serialize on a crossbar.
	k := sim.New()
	var mLinks []*Port
	var masters []*scriptMaster
	for i := 0; i < 2; i++ {
		l := NewLink(k, "m")
		mLinks = append(mLinks, l)
		sm := &scriptMaster{name: "m", link: l, reqs: []Request{{Op: OpRead, SM: 0, VPtr: uint32(i)}}}
		masters = append(masters, sm)
		k.Add(sm)
	}
	sl := NewLink(k, "s")
	k.Add(&echoSlave{name: "s", link: sl, latency: 5})
	NewCrossbar(k, "xbar", mLinks, []*Port{sl}, func() Arbiter { return NewRoundRobin() })
	if _, err := k.RunUntil(allDone(masters), 1000); err != nil {
		t.Fatal(err)
	}
	if masters[0].DoneAt[0] == masters[1].DoneAt[0] {
		t.Error("same-slave transactions completed simultaneously; must serialize")
	}
}

func TestOpAndErrStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{OpRead.String(), "READ"},
		{OpAlloc.String(), "ALLOC"},
		{OpWriteBurst.String(), "WRITEN"},
		{Op(200).String(), "Op(200)"},
		{OK.String(), "OK"},
		{ErrCapacity.String(), "CAPACITY"},
		{ErrCode(200).String(), "ErrCode(200)"},
		{U8.String(), "u8"},
		{I16.String(), "i16"},
		{DataType(200).String(), "DataType(200)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}

func TestDataTypeSizes(t *testing.T) {
	cases := map[DataType]uint32{U8: 1, U16: 2, I16: 2, U32: 4, I32: 4}
	for dt, want := range cases {
		if got := dt.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", dt, got, want)
		}
	}
}

func TestRequestWireWords(t *testing.T) {
	cases := []struct {
		r    Request
		want uint32
	}{
		{Request{Op: OpRead}, 2},
		{Request{Op: OpWrite}, 3},
		{Request{Op: OpAlloc}, 3},
		{Request{Op: OpFree}, 2},
		{Request{Op: OpReserve}, 2},
		{Request{Op: OpRelease}, 2},
		{Request{Op: OpReadBurst, Dim: 16}, 3},
		{Request{Op: OpWriteBurst, Burst: make([]uint32, 8)}, 11},
	}
	for _, c := range cases {
		if got := c.r.WireWords(); got != c.want {
			t.Errorf("%v WireWords = %d, want %d", c.r.Op, got, c.want)
		}
	}
	if got := (Response{Burst: make([]uint32, 4)}).WireWords(); got != 5 {
		t.Errorf("Response WireWords = %d, want 5", got)
	}
}

func TestRequestResponseStrings(t *testing.T) {
	r := Request{Op: OpAlloc, SM: 1, Dim: 8, DType: U32, Master: 2}
	if got := r.String(); got == "" {
		t.Error("empty request string")
	}
	for _, r := range []Request{
		{Op: OpWrite, VPtr: 4, Data: 5},
		{Op: OpWriteBurst, Burst: []uint32{1}},
		{Op: OpReadBurst, Dim: 2},
		{Op: OpRead, VPtr: 1},
	} {
		if r.String() == "" {
			t.Errorf("empty string for %v", r.Op)
		}
	}
	if got := (Response{Err: ErrBadVPtr}).String(); got != "ERR(BAD_VPTR)" {
		t.Errorf("Response.String() = %q", got)
	}
	if got := (Response{Burst: []uint32{1, 2}}).String(); got != "OK n=2" {
		t.Errorf("Response.String() = %q", got)
	}
	if got := (Response{Data: 1}).String(); got == "" {
		t.Error("empty response string")
	}
}
