package bus

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// TestBusScoreboardProperty drives random system shapes (masters ×
// slaves × latencies × request counts) through the shared bus and
// checks end-to-end delivery: every master receives exactly its own
// responses, in order, with the data its targets computed — no drops,
// duplicates or cross-wiring — and the bus accounts every transaction.
func TestBusScoreboardProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nMasters := 1 + rng.Intn(4)
		nSlaves := 1 + rng.Intn(3)
		latency := rng.Intn(4)
		perMaster := 5 + rng.Intn(20)

		k := sim.New()
		var mLinks, sLinks []*Port
		var masters []*scriptMaster
		for i := 0; i < nMasters; i++ {
			l := NewLink(k, "m")
			mLinks = append(mLinks, l)
			reqs := make([]Request, perMaster)
			for j := range reqs {
				// Unique VPtr per (master, request) lets the response be
				// attributed: echoSlave answers VPtr+1.
				reqs[j] = Request{
					Op:   OpRead,
					SM:   rng.Intn(nSlaves),
					VPtr: uint32(i*1000 + j),
				}
			}
			sm := &scriptMaster{name: "m", link: l, reqs: reqs}
			masters = append(masters, sm)
			k.Add(sm)
		}
		for i := 0; i < nSlaves; i++ {
			l := NewLink(k, "s")
			sLinks = append(sLinks, l)
			k.Add(&echoSlave{name: "s", link: l, latency: latency})
		}
		var arb Arbiter
		if rng.Intn(2) == 0 {
			arb = NewRoundRobin()
		} else {
			arb = NewFixedPriority()
		}
		b := NewBus(k, "bus", mLinks, sLinks, arb)

		if _, err := k.RunUntil(allDone(masters), 1_000_000); err != nil {
			t.Fatalf("seed %d (%dm×%ds lat=%d n=%d): %v", seed, nMasters, nSlaves, latency, perMaster, err)
		}
		for mi, m := range masters {
			if len(m.Responses) != perMaster {
				t.Fatalf("seed %d: master %d got %d responses, want %d", seed, mi, len(m.Responses), perMaster)
			}
			for j, resp := range m.Responses {
				want := uint32(mi*1000+j) + 1
				if resp.Err != OK || resp.Data != want {
					t.Fatalf("seed %d: master %d resp %d = %v data=%d, want OK data=%d",
						seed, mi, j, resp.Err, resp.Data, want)
				}
			}
			// Completion cycles strictly increase: responses arrive in
			// issue order for a single-outstanding master.
			for j := 1; j < len(m.DoneAt); j++ {
				if m.DoneAt[j] <= m.DoneAt[j-1] {
					t.Fatalf("seed %d: master %d responses out of order", seed, mi)
				}
			}
		}
		if got, want := b.Stats().Transactions, uint64(nMasters*perMaster); got != want {
			t.Fatalf("seed %d: bus counted %d transactions, want %d", seed, got, want)
		}
	}
}

// taggedMaster issues a scripted request list as aggressively as its
// credits allow and records every delivered completion, checking tag
// attribution against its own issue log.
type taggedMaster struct {
	name string
	port *Port
	reqs []Request

	next     int
	issued   map[Tag]uint32 // tag → VPtr issued under it
	Got      []Completion
	BadMatch int
}

func (m *taggedMaster) Name() string { return m.name }

func (m *taggedMaster) Done() bool { return len(m.Got) == len(m.reqs) }

func (m *taggedMaster) Tick(cycle uint64) {
	for tag, resp := range m.port.Completions() {
		vptr, ok := m.issued[tag]
		if !ok || (resp.Err == OK && resp.Data != vptr+1) {
			m.BadMatch++
		}
		delete(m.issued, tag)
		m.Got = append(m.Got, Completion{Tag: tag, Resp: resp})
	}
	for m.next < len(m.reqs) && m.port.CanIssue() {
		tag := m.port.Issue(m.reqs[m.next])
		m.issued[tag] = m.reqs[m.next].VPtr
		m.next++
	}
}

// TestPortScoreboardProperty drives random system shapes across the
// whole protocol matrix — masters × slaves × latencies × outstanding
// depth × {occupied, split} × {bus, crossbar} × {in-order,
// out-of-order} — with fully pipelined tagged masters, and checks
// end-to-end delivery: every master receives exactly one completion per
// issued tag carrying the data its target computed, in issue order when
// the port is in-order, and the interconnect accounts every
// transaction.
func TestPortScoreboardProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		nMasters := 1 + rng.Intn(4)
		nSlaves := 1 + rng.Intn(3)
		latency := rng.Intn(4)
		depth := 1 + rng.Intn(4)
		split := rng.Intn(2) == 0
		ooo := rng.Intn(2) == 0
		xbar := rng.Intn(2) == 0
		perMaster := 5 + rng.Intn(20)

		k := sim.New()
		var mPorts, sPorts []*Port
		var masters []*taggedMaster
		for i := 0; i < nMasters; i++ {
			p := NewPort(k, "m", PortConfig{Depth: depth, OutOfOrder: ooo})
			mPorts = append(mPorts, p)
			reqs := make([]Request, perMaster)
			for j := range reqs {
				reqs[j] = Request{Op: OpRead, SM: rng.Intn(nSlaves), VPtr: uint32(i*1000 + j)}
			}
			tm := &taggedMaster{name: "m", port: p, reqs: reqs, issued: map[Tag]uint32{}}
			masters = append(masters, tm)
			k.Add(tm)
		}
		for i := 0; i < nSlaves; i++ {
			p := NewPort(k, "s", PortConfig{Depth: depth})
			sPorts = append(sPorts, p)
			k.Add(&echoSlave{name: "s", link: p, latency: latency})
		}
		var inter interface{ Stats() Stats }
		if xbar {
			x := NewCrossbar(k, "xbar", mPorts, sPorts, func() Arbiter { return NewRoundRobin() })
			x.Split = split
			inter = x
		} else {
			b := NewBus(k, "bus", mPorts, sPorts, NewRoundRobin())
			b.Split = split
			b.RespArb = NewRoundRobin()
			inter = b
		}

		done := func() bool {
			for _, m := range masters {
				if !m.Done() {
					return false
				}
			}
			return true
		}
		cfg := func() string {
			return fmt.Sprintf("seed %d (%dm×%ds lat=%d d=%d split=%v ooo=%v xbar=%v n=%d)",
				seed, nMasters, nSlaves, latency, depth, split, ooo, xbar, perMaster)
		}
		if _, err := k.RunUntil(done, 1_000_000); err != nil {
			t.Fatalf("%s: %v", cfg(), err)
		}
		for mi, m := range masters {
			if m.BadMatch != 0 {
				t.Fatalf("%s: master %d: %d mis-attributed completions", cfg(), mi, m.BadMatch)
			}
			if len(m.Got) != perMaster {
				t.Fatalf("%s: master %d got %d completions, want %d", cfg(), mi, len(m.Got), perMaster)
			}
			if !ooo {
				for j := 1; j < len(m.Got); j++ {
					if m.Got[j].Tag <= m.Got[j-1].Tag {
						t.Fatalf("%s: master %d in-order port delivered tags %d after %d",
							cfg(), mi, m.Got[j].Tag, m.Got[j-1].Tag)
					}
				}
			}
			for _, c := range m.Got {
				if c.Resp.Err != OK {
					t.Fatalf("%s: master %d completion error %v", cfg(), mi, c.Resp.Err)
				}
			}
		}
		if got, want := inter.Stats().Transactions, uint64(nMasters*perMaster); got != want {
			t.Fatalf("%s: interconnect counted %d transactions, want %d", cfg(), got, want)
		}
	}
}
