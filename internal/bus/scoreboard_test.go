package bus

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// TestBusScoreboardProperty drives random system shapes (masters ×
// slaves × latencies × request counts) through the shared bus and
// checks end-to-end delivery: every master receives exactly its own
// responses, in order, with the data its targets computed — no drops,
// duplicates or cross-wiring — and the bus accounts every transaction.
func TestBusScoreboardProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nMasters := 1 + rng.Intn(4)
		nSlaves := 1 + rng.Intn(3)
		latency := rng.Intn(4)
		perMaster := 5 + rng.Intn(20)

		k := sim.New()
		var mLinks, sLinks []*Link
		var masters []*scriptMaster
		for i := 0; i < nMasters; i++ {
			l := NewLink(k, "m")
			mLinks = append(mLinks, l)
			reqs := make([]Request, perMaster)
			for j := range reqs {
				// Unique VPtr per (master, request) lets the response be
				// attributed: echoSlave answers VPtr+1.
				reqs[j] = Request{
					Op:   OpRead,
					SM:   rng.Intn(nSlaves),
					VPtr: uint32(i*1000 + j),
				}
			}
			sm := &scriptMaster{name: "m", link: l, reqs: reqs}
			masters = append(masters, sm)
			k.Add(sm)
		}
		for i := 0; i < nSlaves; i++ {
			l := NewLink(k, "s")
			sLinks = append(sLinks, l)
			k.Add(&echoSlave{name: "s", link: l, latency: latency})
		}
		var arb Arbiter
		if rng.Intn(2) == 0 {
			arb = NewRoundRobin()
		} else {
			arb = NewFixedPriority()
		}
		b := NewBus(k, "bus", mLinks, sLinks, arb)

		if _, err := k.RunUntil(allDone(masters), 1_000_000); err != nil {
			t.Fatalf("seed %d (%dm×%ds lat=%d n=%d): %v", seed, nMasters, nSlaves, latency, perMaster, err)
		}
		for mi, m := range masters {
			if len(m.Responses) != perMaster {
				t.Fatalf("seed %d: master %d got %d responses, want %d", seed, mi, len(m.Responses), perMaster)
			}
			for j, resp := range m.Responses {
				want := uint32(mi*1000+j) + 1
				if resp.Err != OK || resp.Data != want {
					t.Fatalf("seed %d: master %d resp %d = %v data=%d, want OK data=%d",
						seed, mi, j, resp.Err, resp.Data, want)
				}
			}
			// Completion cycles strictly increase: responses arrive in
			// issue order for a single-outstanding master.
			for j := 1; j < len(m.DoneAt); j++ {
				if m.DoneAt[j] <= m.DoneAt[j-1] {
					t.Fatalf("seed %d: master %d responses out of order", seed, mi)
				}
			}
		}
		if got, want := b.Stats().Transactions, uint64(nMasters*perMaster); got != want {
			t.Fatalf("seed %d: bus counted %d transactions, want %d", seed, got, want)
		}
	}
}
