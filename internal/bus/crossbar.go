package bus

import (
	"repro/internal/sim"
)

// Crossbar is a full crossbar interconnect: each slave has an independent
// transaction channel, so transactions to different memories proceed in
// parallel. Masters competing for the same slave are arbitrated per
// slave. Used by the A1 ablation to quantify how much of the multi-memory
// slowdown of experiment E1 is interconnect serialization versus kernel
// per-module overhead.
type Crossbar struct {
	name    string
	masters []*Link
	slaves  []*Link
	arbs    []Arbiter

	// WordCycles is the per-word occupancy of each crossbar lane.
	WordCycles uint32

	lanes []xbarLane
	stats Stats
}

type xbarLane struct {
	state     busState
	cur       Request
	curMaster int
	counter   uint32
}

// NewCrossbar creates a crossbar connecting masters to slaves. newArb is
// invoked once per slave to create that lane's arbiter (arbiters are
// stateful, so they cannot be shared).
func NewCrossbar(k *sim.Kernel, name string, masters, slaves []*Link, newArb func() Arbiter) *Crossbar {
	x := &Crossbar{
		name:       name,
		masters:    masters,
		slaves:     slaves,
		WordCycles: 1,
		lanes:      make([]xbarLane, len(slaves)),
		stats: Stats{
			PerMaster: make([]uint64, len(masters)),
			PerSlave:  make([]uint64, len(slaves)),
		},
	}
	for range slaves {
		x.arbs = append(x.arbs, newArb())
	}
	k.Add(x)
	return x
}

// Name implements sim.Module.
func (x *Crossbar) Name() string { return x.name }

// Stats returns a snapshot of the accumulated counters. BusyCycles counts
// lane-cycles (two lanes busy in one cycle count twice).
func (x *Crossbar) Stats() Stats {
	s := x.stats
	s.PerMaster = append([]uint64(nil), x.stats.PerMaster...)
	s.PerSlave = append([]uint64(nil), x.stats.PerSlave...)
	return s
}

func (x *Crossbar) wordCycles(words uint32) uint32 {
	wc := x.WordCycles
	if wc == 0 {
		wc = 1
	}
	return words * wc
}

// ConcurrentTick implements sim.Concurrent: same confinement argument
// as Bus — lanes, arbiters and stats are the crossbar's own, and its
// link-side accesses are the interconnect half of the link protocol.
func (x *Crossbar) ConcurrentTick() bool { return true }

// TickWeight implements sim.Weighted: one cheap lane FSM per slave.
func (x *Crossbar) TickWeight() int {
	if n := len(x.lanes); n > 2 {
		return n
	}
	return 2
}

// Tick implements sim.Module. Each lane runs the same four-state engine
// as the shared Bus, restricted to requests targeting its slave. A master
// with an in-flight request on one lane cannot issue on another (the Link
// enforces single-outstanding), so no cross-lane conflict handling is
// needed on the master side. Requests to nonexistent slaves are rejected
// by lane 0 to keep error semantics identical to Bus.
func (x *Crossbar) Tick(cycle uint64) {
	// Reject out-of-range sm_addr centrally (lane 0 duty).
	for mi, m := range x.masters {
		if m.Pending() {
			if sm := m.PeekRequest().SM; sm < 0 || sm >= len(x.slaves) {
				if req, ok := m.TakeRequest(); ok {
					_ = req
					x.stats.NoSlave++
					x.stats.Transactions++
					x.stats.PerMaster[mi]++
					m.Complete(Response{Err: ErrNoSlave})
				}
			}
		}
	}
	for si := range x.lanes {
		x.tickLane(si)
	}
}

// NextWake implements sim.Sleeper: the earliest wake over all lanes. A
// pending master targeting an idle lane (or a nonexistent slave, which
// the central reject loop handles) demands an immediate tick; a lane in
// a transfer state wakes when its word counter expires; idle and
// response-waiting lanes wake on signal commits.
func (x *Crossbar) NextWake(now uint64) uint64 {
	for _, m := range x.masters {
		if m.Pending() {
			sm := m.PeekRequest().SM
			if sm < 0 || sm >= len(x.slaves) || x.lanes[sm].state == busIdle {
				return now
			}
		}
	}
	wake := uint64(sim.WakeNever)
	for i := range x.lanes {
		ln := &x.lanes[i]
		switch ln.state {
		case busIdle, busWaitSlave:
			// Signal-driven; pending demand was handled above.
		default: // busReqXfer, busRespXfer
			w := now
			if ln.counter > 1 {
				w = now + uint64(ln.counter) - 1
			}
			if w < wake {
				wake = w
			}
		}
	}
	return wake
}

// Skip implements sim.Sleeper: per busy lane, n busy cycles (and counter
// ticks in the transfer states). BusyCycles counts lane-cycles, so each
// busy lane contributes n.
func (x *Crossbar) Skip(n uint64) {
	for i := range x.lanes {
		ln := &x.lanes[i]
		switch ln.state {
		case busIdle:
		case busWaitSlave:
			x.stats.BusyCycles += n
		default:
			ln.counter -= uint32(n)
			x.stats.BusyCycles += n
		}
	}
}

func (x *Crossbar) tickLane(si int) {
	ln := &x.lanes[si]
	switch ln.state {
	case busIdle:
		var pending []int
		for mi, m := range x.masters {
			if m.Pending() && m.PeekRequest().SM == si {
				pending = append(pending, mi)
			}
		}
		if len(pending) == 0 {
			return
		}
		gi := x.arbs[si].Pick(pending)
		req, ok := x.masters[gi].TakeRequest()
		if !ok {
			return
		}
		req.Master = gi
		ln.cur = req
		ln.curMaster = gi
		x.stats.Transactions++
		x.stats.PerMaster[gi]++
		x.stats.PerOp[req.Op]++
		x.stats.PerSlave[si]++
		x.stats.Words += uint64(req.WireWords())
		ln.counter = x.wordCycles(req.WireWords())
		ln.state = busReqXfer
		x.stats.BusyCycles++

	case busReqXfer:
		x.stats.BusyCycles++
		if ln.counter > 0 {
			ln.counter--
		}
		if ln.counter > 0 {
			return
		}
		x.slaves[si].Issue(ln.cur)
		ln.state = busWaitSlave

	case busWaitSlave:
		x.stats.BusyCycles++
		resp, ok := x.slaves[si].Response()
		if !ok {
			return
		}
		x.stats.Words += uint64(resp.WireWords())
		ln.counter = x.wordCycles(resp.WireWords())
		x.masters[ln.curMaster].Complete(resp)
		ln.cur = Request{}
		ln.state = busRespXfer

	case busRespXfer:
		x.stats.BusyCycles++
		if ln.counter > 0 {
			ln.counter--
		}
		if ln.counter == 0 {
			ln.state = busIdle
		}
	}
}
