package bus

import (
	"repro/internal/sim"
)

// Crossbar is a full crossbar interconnect: each slave has an independent
// transaction lane, so transactions to different memories proceed in
// parallel. Masters competing for the same slave are arbitrated per
// lane.
//
// Occupied mode (Split=false, the default) runs the same four-state
// end-to-end engine as the shared Bus on every lane and is
// cycle-identical to the pre-port protocol. Even so, a master with a
// multi-outstanding port already overlaps lanes: once lane A pops its
// head request, the next queued request becomes poppable by lane B in
// the same cycle.
//
// Split mode decomposes each lane into two concurrently running engines:
// a request engine that transfers address phases into the slave port's
// queue (per-lane queueing up to the port depth), and a response engine
// that drains slave completions back to the masters. A lane can accept
// request N+1 while its slave processes request N and while response N−1
// is still in flight — pipelined transactions to the same memory.
type Crossbar struct {
	name    string
	masters []*Port
	slaves  []*Port
	arbs    []Arbiter

	// WordCycles is the per-word occupancy of each crossbar lane.
	WordCycles uint32

	// Split selects the pipelined two-engine lanes. Configure before
	// simulation starts.
	Split bool

	// Snoop, when non-nil, is the cache-coherence domain consulted before
	// and notified after every lane's address-phase grant (see Snooper).
	// Configure before simulation starts.
	Snoop Snooper

	lanes []xbarLane
	stats Stats
}

type xbarLane struct {
	// occupied-engine state
	state     busState
	cur       Request
	curMaster int
	curTag    Tag
	counter   uint32

	// split-engine state: independent request and response channels.
	rqState   splitState // sbIdle or sbReqXfer
	rqCounter uint32
	rqCur     Request
	rqFrom    pendSrc
	rsState   splitState // sbIdle or sbRespXfer
	rsCounter uint32

	pend map[Tag]pendSrc // slave-port tag → origin
}

// NewCrossbar creates a crossbar connecting masters to slaves. newArb is
// invoked once per slave to create that lane's arbiter (arbiters are
// stateful, so they cannot be shared).
func NewCrossbar(k *sim.Kernel, name string, masters, slaves []*Port, newArb func() Arbiter) *Crossbar {
	x := &Crossbar{
		name:       name,
		masters:    masters,
		slaves:     slaves,
		WordCycles: 1,
		lanes:      make([]xbarLane, len(slaves)),
		stats: Stats{
			PerMaster:  make([]uint64, len(masters)),
			PerSlave:   make([]uint64, len(slaves)),
			RespGrants: make([]uint64, len(slaves)),
		},
	}
	for i := range x.lanes {
		x.lanes[i].pend = make(map[Tag]pendSrc)
	}
	for range slaves {
		x.arbs = append(x.arbs, newArb())
	}
	k.Add(x)
	return x
}

// Name implements sim.Module.
func (x *Crossbar) Name() string { return x.name }

// Stats returns a snapshot of the accumulated counters. BusyCycles counts
// lane-engine-cycles (two lanes busy in one cycle count twice; in split
// mode a lane's request and response engines count separately).
func (x *Crossbar) Stats() Stats {
	s := x.stats
	s.PerMaster = append([]uint64(nil), x.stats.PerMaster...)
	s.PerSlave = append([]uint64(nil), x.stats.PerSlave...)
	s.RespGrants = append([]uint64(nil), x.stats.RespGrants...)
	return s
}

func (x *Crossbar) wordCycles(words uint32) uint32 {
	wc := x.WordCycles
	if wc == 0 {
		wc = 1
	}
	return words * wc
}

// ConcurrentTick implements sim.Concurrent: same confinement argument
// as Bus — lanes, arbiters, pending tables and stats are the crossbar's
// own, and its port-side accesses are the interconnect half of the port
// protocol. With a snoop domain attached the crossbar mutates peer cache
// state during its Tick and must co-schedule with the caches on the
// serial shard.
func (x *Crossbar) ConcurrentTick() bool { return x.Snoop == nil }

// TickWeight implements sim.Weighted: one cheap lane FSM per slave.
func (x *Crossbar) TickWeight() int {
	if n := len(x.lanes); n > 2 {
		return n
	}
	return 2
}

// rejectNoSlave pops master head requests addressed to nonexistent
// slaves and rejects them centrally (lane 0 duty), keeping error
// semantics identical to Bus in both modes.
func (x *Crossbar) rejectNoSlave() {
	for mi, m := range x.masters {
		for {
			req, ok := m.Peek()
			if !ok || (req.SM >= 0 && req.SM < len(x.slaves)) {
				break
			}
			tx, ok := m.Pop()
			if !ok {
				break
			}
			x.stats.NoSlave++
			x.stats.Transactions++
			x.stats.PerMaster[mi]++
			m.Complete(tx.Tag, Response{Err: ErrNoSlave})
		}
	}
}

// Tick implements sim.Module.
func (x *Crossbar) Tick(cycle uint64) {
	x.rejectNoSlave()
	for si := range x.lanes {
		if x.Split {
			x.tickLaneSplit(si)
		} else {
			x.tickLaneOccupied(si)
		}
	}
}

// NextWake implements sim.Sleeper: the earliest wake over all lane
// engines. A poppable master head targeting a lane that could serve it
// (or a nonexistent slave, which the central reject loop handles)
// demands an immediate tick; engines in a transfer state wake when their
// word counter expires; idle and response-waiting engines wake on signal
// commits.
func (x *Crossbar) NextWake(now uint64) uint64 {
	for _, m := range x.masters {
		req, ok := m.Peek()
		if !ok {
			continue
		}
		if req.SM < 0 || req.SM >= len(x.slaves) {
			return now
		}
		ln := &x.lanes[req.SM]
		if x.Split {
			if ln.rqState == sbIdle && x.slaves[req.SM].CanAccept() {
				return now
			}
		} else if ln.state == busIdle {
			return now
		}
	}
	wake := uint64(sim.WakeNever)
	min := func(w uint64) {
		if w < wake {
			wake = w
		}
	}
	counterWake := func(counter uint32) uint64 {
		if counter <= 1 {
			return now
		}
		return now + uint64(counter) - 1
	}
	for i := range x.lanes {
		ln := &x.lanes[i]
		if x.Split {
			if ln.rqState != sbIdle {
				min(counterWake(ln.rqCounter))
			}
			if ln.rsState != sbIdle {
				min(counterWake(ln.rsCounter))
			} else if x.slaves[i].HasCompletion() {
				return now
			}
			continue
		}
		switch ln.state {
		case busIdle, busWaitSlave:
			// Signal-driven; poppable demand was handled above.
		default: // busReqXfer, busRespXfer
			min(counterWake(ln.counter))
		}
	}
	return wake
}

// Skip implements sim.Sleeper: per busy lane engine, n busy cycles (and
// counter ticks in the transfer states). BusyCycles counts
// lane-engine-cycles, so each busy engine contributes n.
func (x *Crossbar) Skip(n uint64) {
	for i := range x.lanes {
		ln := &x.lanes[i]
		if x.Split {
			if ln.rqState != sbIdle {
				ln.rqCounter -= uint32(n)
				x.stats.BusyCycles += n
			}
			if ln.rsState != sbIdle {
				ln.rsCounter -= uint32(n)
				x.stats.BusyCycles += n
			}
			continue
		}
		switch ln.state {
		case busIdle:
		case busWaitSlave:
			x.stats.BusyCycles += n
		default:
			ln.counter -= uint32(n)
			x.stats.BusyCycles += n
		}
	}
}

// pickRequest arbitrates among masters whose visible head request
// targets lane si and pops the winner's head. ok is false when no master
// demands this lane.
func (x *Crossbar) pickRequest(si int) (Txn, int, bool) {
	var pending []int
	for mi, m := range x.masters {
		req, ok := m.Peek()
		if !ok || req.SM != si {
			continue
		}
		if x.Snoop != nil && !x.Snoop.CanProceed(req, mi) {
			continue
		}
		pending = append(pending, mi)
	}
	if len(pending) == 0 {
		return Txn{}, 0, false
	}
	gi := x.arbs[si].Pick(pending)
	tx, ok := x.masters[gi].Pop()
	if !ok {
		return Txn{}, 0, false
	}
	if x.Snoop != nil {
		req := tx.Req
		req.Master = gi
		x.Snoop.OnGrant(req, gi, tx.Tag)
	}
	return tx, gi, true
}

// tickLaneOccupied runs the same four-state engine as the shared Bus,
// restricted to requests targeting its slave.
func (x *Crossbar) tickLaneOccupied(si int) {
	ln := &x.lanes[si]
	switch ln.state {
	case busIdle:
		tx, gi, ok := x.pickRequest(si)
		if !ok {
			return
		}
		req := tx.Req
		req.Master = gi
		ln.cur = req
		ln.curMaster = gi
		ln.curTag = tx.Tag
		x.stats.Transactions++
		x.stats.PerMaster[gi]++
		x.stats.PerOp[req.Op]++
		x.stats.PerSlave[si]++
		x.stats.Words += uint64(req.WireWords())
		ln.counter = x.wordCycles(req.WireWords())
		ln.state = busReqXfer
		x.stats.BusyCycles++

	case busReqXfer:
		x.stats.BusyCycles++
		if ln.counter > 0 {
			ln.counter--
		}
		if ln.counter > 0 {
			return
		}
		// Single outstanding per lane: curMaster/curTag already route the
		// response, so the slave-port tag needs no pending table.
		x.slaves[si].Issue(ln.cur)
		ln.state = busWaitSlave

	case busWaitSlave:
		x.stats.BusyCycles++
		c, ok := x.slaves[si].TakeCompletion()
		if !ok {
			return
		}
		x.stats.Words += uint64(c.Resp.WireWords())
		ln.counter = x.wordCycles(c.Resp.WireWords())
		x.masters[ln.curMaster].Complete(ln.curTag, c.Resp)
		ln.cur = Request{}
		ln.state = busRespXfer

	case busRespXfer:
		x.stats.BusyCycles++
		if ln.counter > 0 {
			ln.counter--
		}
		if ln.counter == 0 {
			ln.state = busIdle
		}
	}
}

// tickLaneSplit runs the lane's two independent engines. The response
// engine runs first, so a completion taken this tick frees its slave
// queue slot in time for the same tick's request-engine credit check.
func (x *Crossbar) tickLaneSplit(si int) {
	ln := &x.lanes[si]

	// Response engine: drain slave completions back to the masters.
	switch ln.rsState {
	case sbIdle:
		if c, ok := x.slaves[si].TakeCompletion(); ok {
			src := ln.pend[c.Tag]
			delete(ln.pend, c.Tag)
			x.stats.RespGrants[si]++
			x.stats.Words += uint64(c.Resp.WireWords())
			x.masters[src.master].Complete(src.tag, c.Resp)
			ln.rsCounter = x.wordCycles(c.Resp.WireWords())
			ln.rsState = sbRespXfer
			x.stats.BusyCycles++
		}
	case sbRespXfer:
		x.stats.BusyCycles++
		if ln.rsCounter > 0 {
			ln.rsCounter--
		}
		if ln.rsCounter == 0 {
			ln.rsState = sbIdle
		}
	}

	// Request engine: transfer address phases into the slave queue.
	switch ln.rqState {
	case sbIdle:
		if !x.slaves[si].CanAccept() {
			return
		}
		tx, gi, ok := x.pickRequest(si)
		if !ok {
			return
		}
		req := tx.Req
		req.Master = gi
		ln.rqCur = req
		ln.rqFrom = pendSrc{master: gi, tag: tx.Tag}
		x.stats.Transactions++
		x.stats.PerMaster[gi]++
		x.stats.PerOp[req.Op]++
		x.stats.PerSlave[si]++
		x.stats.Words += uint64(req.WireWords())
		ln.rqCounter = x.wordCycles(req.WireWords())
		ln.rqState = sbReqXfer
		x.stats.BusyCycles++
	case sbReqXfer:
		x.stats.BusyCycles++
		if ln.rqCounter > 0 {
			ln.rqCounter--
		}
		if ln.rqCounter > 0 {
			return
		}
		stag := x.slaves[si].Issue(ln.rqCur)
		ln.pend[stag] = ln.rqFrom
		ln.rqCur = Request{}
		ln.rqState = sbIdle
	}
}
