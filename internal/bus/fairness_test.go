package bus

import (
	"testing"

	"repro/internal/sim"
)

// hammerMaster saturates its port: it refills every free credit each
// cycle and drains completions without ever stopping — the sustained
// contention generator of the arbiter fairness tests.
type hammerMaster struct {
	name string
	port *Port
	sm   func(i uint64) int // target slave for the i-th request

	issuedN   uint64
	Delivered uint64
}

func (m *hammerMaster) Name() string { return m.name }

func (m *hammerMaster) Tick(cycle uint64) {
	for range m.port.Completions() {
		m.Delivered++
	}
	for m.port.CanIssue() {
		m.port.Issue(Request{Op: OpRead, SM: m.sm(m.issuedN), VPtr: uint32(m.issuedN)})
		m.issuedN++
	}
}

// buildContention wires nMasters hammer masters at the given port depth
// against nSlaves echo slaves over a split shared bus.
func buildContention(nMasters, nSlaves, depth, latency int, arb func() Arbiter) (*sim.Kernel, *Bus, []*hammerMaster) {
	k := sim.New()
	var mPorts, sPorts []*Port
	var masters []*hammerMaster
	for i := 0; i < nMasters; i++ {
		p := NewPort(k, "m", PortConfig{Depth: depth})
		mPorts = append(mPorts, p)
		hm := &hammerMaster{name: "m", port: p, sm: func(n uint64) int { return int(n) % nSlaves }}
		masters = append(masters, hm)
		k.Add(hm)
	}
	for i := 0; i < nSlaves; i++ {
		p := NewPort(k, "s", PortConfig{Depth: depth})
		sPorts = append(sPorts, p)
		k.Add(&echoSlave{name: "s", link: p, latency: latency})
	}
	b := NewBus(k, "bus", mPorts, sPorts, arb())
	b.Split = true
	b.RespArb = arb()
	return k, b, masters
}

// TestSplitBusRoundRobinNoStarvation runs 8 masters in sustained
// saturation (every master keeps its full credit window requested) over
// the split bus with round-robin arbitration in both phases: every
// master must make continuous progress, with grant counts within a
// tight band of each other, and both slaves' response phases must be
// served.
func TestSplitBusRoundRobinNoStarvation(t *testing.T) {
	k, b, masters := buildContention(8, 2, 4, 3, func() Arbiter { return NewRoundRobin() })
	if err := k.Run(6000); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	var min, max uint64
	for i, g := range st.PerMaster {
		if i == 0 || g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	if min == 0 {
		t.Fatalf("round-robin starved a master: grants %v", st.PerMaster)
	}
	// Round-robin under identical sustained demand must spread grants
	// almost perfectly; allow a small band for pipeline warm-up.
	if max-min > max/4 {
		t.Errorf("round-robin grants uneven under saturation: %v", st.PerMaster)
	}
	for i, m := range masters {
		if m.Delivered == 0 {
			t.Errorf("master %d completed nothing", i)
		}
	}
	// The response phase re-arbitrated across both slaves.
	for si, g := range st.RespGrants {
		if g == 0 {
			t.Errorf("response phase never granted slave %d: %v", si, st.RespGrants)
		}
	}
}

// TestSplitBusFixedPriorityStarves documents the fixed-priority
// pathology the round-robin default avoids: with master 0 able to keep
// its credit window full, the address phase never runs out of
// lowest-index demand and the high-index masters starve outright.
func TestSplitBusFixedPriorityStarves(t *testing.T) {
	k, b, masters := buildContention(8, 2, 8, 3, func() Arbiter { return NewFixedPriority() })
	if err := k.Run(6000); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.PerMaster[0] == 0 {
		t.Fatal("master 0 got no grants; contention never formed")
	}
	// Master 0 refills faster than the bus can drain, so under fixed
	// priority the tail of the master list is starved completely.
	starved := 0
	for i := 4; i < 8; i++ {
		if st.PerMaster[i] == 0 {
			starved++
		}
	}
	if starved == 0 {
		t.Errorf("fixed priority starved nobody in the tail: grants %v", st.PerMaster)
	}
	if masters[7].Delivered != 0 && st.PerMaster[7] > st.PerMaster[0]/4 {
		t.Errorf("master 7 kept pace with master 0 under fixed priority: %v", st.PerMaster)
	}
}

// TestSplitBusOverlapsSlaves is the protocol claim itself: on the same
// two-master / two-slave workload that the occupied bus serializes
// end-to-end, the split bus releases the channel during slave
// processing, so the two transactions' slave latencies overlap and the
// pair finishes sooner.
func TestSplitBusOverlapsSlaves(t *testing.T) {
	run := func(split bool) uint64 {
		k := sim.New()
		var mPorts, sPorts []*Port
		var masters []*scriptMaster
		for i := 0; i < 2; i++ {
			p := NewPort(k, "m", PortConfig{})
			mPorts = append(mPorts, p)
			sm := &scriptMaster{name: "m", link: p, reqs: []Request{{Op: OpRead, SM: i, VPtr: uint32(i)}}}
			masters = append(masters, sm)
			k.Add(sm)
		}
		for i := 0; i < 2; i++ {
			p := NewPort(k, "s", PortConfig{})
			sPorts = append(sPorts, p)
			k.Add(&echoSlave{name: "s", link: p, latency: 20})
		}
		b := NewBus(k, "bus", mPorts, sPorts, NewRoundRobin())
		b.Split = split
		if _, err := k.RunUntil(allDone(masters), 1000); err != nil {
			t.Fatal(err)
		}
		last := masters[0].DoneAt[0]
		if masters[1].DoneAt[0] > last {
			last = masters[1].DoneAt[0]
		}
		return last
	}
	occupied := run(false)
	split := run(true)
	if split >= occupied {
		t.Fatalf("split bus no faster: occupied last completion %d, split %d", occupied, split)
	}
	if occupied-split < 15 {
		t.Errorf("split bus hid only %d of the 20-cycle slave latency (occupied %d, split %d)",
			occupied-split, occupied, split)
	}
}
