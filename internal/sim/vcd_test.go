package sim

import (
	"strings"
	"testing"
)

func TestVCDHeaderAndChanges(t *testing.T) {
	var sb strings.Builder
	k := New()
	b := NewSignal(k, "b", false)
	w := NewSignal(k, "w", uint32(0))
	vcd := NewVCD(&sb, "1ns")
	vcd.AddVar("top", "valid", 1, ProbeBool(b))
	vcd.AddVar("top", "data", 32, ProbeU32(w))
	k.Add(&FuncModule{Nm: "drv", Fn: func(cycle uint64) {
		if cycle == 1 {
			b.Set(true)
			w.Set(0x5)
		}
	}})
	k.AfterCycle(vcd.Sample)
	if err := k.Run(4); err != nil {
		t.Fatal(err)
	}
	if err := vcd.Flush(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module top $end",
		"$var wire 1 ! valid $end",
		"$var wire 32 \" data $end",
		"$enddefinitions $end",
		"#0\n0!\nb0 \"",
		"#1\n1!\nb101 \"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD output missing %q\n---\n%s", want, out)
		}
	}
	// No change after cycle 1: timestamps #2/#3 must be absent.
	if strings.Contains(out, "#2") || strings.Contains(out, "#3") {
		t.Errorf("VCD emitted timestamps for unchanged cycles\n---\n%s", out)
	}
}

func TestVCDIDAllocation(t *testing.T) {
	// 94 single-char ids, then two-char ids; all distinct.
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
	if got := vcdID(0); got != "!" {
		t.Errorf("vcdID(0) = %q, want !", got)
	}
	if got := vcdID(93); got != "~" {
		t.Errorf("vcdID(93) = %q, want ~", got)
	}
	if got := vcdID(94); len(got) != 2 {
		t.Errorf("vcdID(94) = %q, want two chars", got)
	}
}

func TestVCDAddVarAfterSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddVar after Sample did not panic")
		}
	}()
	var sb strings.Builder
	vcd := NewVCD(&sb, "1ns")
	vcd.AddVar("s", "x", 1, func() uint64 { return 0 })
	vcd.Sample(0)
	vcd.AddVar("s", "y", 1, func() uint64 { return 0 })
}

func TestVCDProbes(t *testing.T) {
	k := New()
	u64 := NewSignal(k, "u64", uint64(9))
	i := NewSignal(k, "i", -1)
	if got := ProbeU64(u64)(); got != 9 {
		t.Errorf("ProbeU64 = %d, want 9", got)
	}
	if got := ProbeInt(i)(); got != uint64(0xFFFFFFFFFFFFFFFF) {
		t.Errorf("ProbeInt(-1) = %#x, want all-ones", got)
	}
}
