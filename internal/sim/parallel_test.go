package sim

import (
	"errors"
	"fmt"
	"testing"
)

// ringState is the observable outcome of a ring run: per-module
// accumulator sums, final signal values and the final cycle.
type ringState struct {
	sums   []uint64
	ticks  []uint64
	values []int
	cycle  uint64
}

// buildRing wires n Parallel FuncModules where module i drives sig[i]
// and reads sig[i-1] — cross-shard communication through signals every
// cycle, the worst case for a broken commit path.
func buildRing(k *Kernel, n int) (run func(cycles uint64) error, state func() ringState) {
	sigs := make([]*Signal[int], n)
	for i := 0; i < n; i++ {
		sigs[i] = NewSignal(k, fmt.Sprintf("ring%d", i), 0)
	}
	sums := make([]uint64, n)
	ticks := make([]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		prev := sigs[(i+n-1)%n]
		k.Add(&FuncModule{
			Nm:       fmt.Sprintf("ring%d", i),
			Parallel: true,
			Cost:     1 + i%3,
			Fn: func(cycle uint64) {
				v := prev.Get()
				sums[i] += uint64(v)
				ticks[i]++
				sigs[i].Set(v + 1)
			},
		})
	}
	run = func(cycles uint64) error { return k.Run(cycles) }
	state = func() ringState {
		s := ringState{cycle: k.Cycle()}
		s.sums = append(s.sums, sums...)
		s.ticks = append(s.ticks, ticks...)
		for _, sg := range sigs {
			s.values = append(s.values, sg.Get())
		}
		return s
	}
	return run, state
}

// ringRun builds a fresh ring kernel, applies cfg, runs it, and returns
// the observable outcome.
func ringRun(t *testing.T, n int, cycles uint64, cfg func(*Kernel)) ringState {
	t.Helper()
	k := New()
	run, state := buildRing(k, n)
	if cfg != nil {
		cfg(k)
	}
	if err := run(cycles); err != nil {
		t.Fatalf("ring run: %v", err)
	}
	return state()
}

func assertSameRing(t *testing.T, name string, want, got ringState) {
	t.Helper()
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("%s diverged from sequential:\nsequential: %+v\ngot:        %+v", name, want, got)
	}
}

// TestParallelMatchesSequential is the kernel-level differential: the
// signal ring must produce bit-identical sums, tick counts and final
// values for any worker count, in both scheduling modes.
func TestParallelMatchesSequential(t *testing.T) {
	const n, cycles = 7, 500
	ref := ringRun(t, n, cycles, nil)
	for _, workers := range []int{2, 3, 4, 8} {
		for _, lockstep := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/lockstep=%v", workers, lockstep)
			got := ringRun(t, n, cycles, func(k *Kernel) {
				k.SetWorkers(workers)
				k.SetLockstep(lockstep)
			})
			assertSameRing(t, name, ref, got)
		}
	}
}

// TestParallelEdgeCases covers the shard-partition corners: no modules,
// one module, more workers than modules.
func TestParallelEdgeCases(t *testing.T) {
	t.Run("no-modules", func(t *testing.T) {
		k := New()
		k.SetWorkers(4)
		if err := k.Run(10); err != nil {
			t.Fatal(err)
		}
		if k.Cycle() != 10 {
			t.Fatalf("cycle = %d, want 10", k.Cycle())
		}
	})
	t.Run("one-module", func(t *testing.T) {
		ref := ringRun(t, 1, 50, nil)
		got := ringRun(t, 1, 50, func(k *Kernel) { k.SetWorkers(4) })
		assertSameRing(t, "one-module", ref, got)
	})
	t.Run("workers-exceed-modules", func(t *testing.T) {
		ref := ringRun(t, 3, 200, nil)
		got := ringRun(t, 3, 200, func(k *Kernel) { k.SetWorkers(64) })
		assertSameRing(t, "workers-exceed-modules", ref, got)
	})
	t.Run("gomaxprocs-workers", func(t *testing.T) {
		ref := ringRun(t, 5, 200, nil)
		got := ringRun(t, 5, 200, func(k *Kernel) { k.SetWorkers(0) })
		assertSameRing(t, "gomaxprocs-workers", ref, got)
	})
}

// TestParallelAddAfterSetWorkers registers a module after SetWorkers —
// and after cycles have already run — and demands the partition pick it
// up with exact accounting.
func TestParallelAddAfterSetWorkers(t *testing.T) {
	run := func(workers int) (ringState, uint64) {
		k := New()
		_, state := buildRing(k, 4)
		if workers > 0 {
			k.SetWorkers(workers)
		}
		if err := k.Run(100); err != nil {
			t.Fatal(err)
		}
		var late uint64
		k.Add(&FuncModule{Nm: "late", Parallel: true, Fn: func(cycle uint64) { late++ }})
		if err := k.Run(100); err != nil {
			t.Fatal(err)
		}
		return state(), late
	}
	refState, refLate := run(0)
	gotState, gotLate := run(4)
	assertSameRing(t, "add-after-setworkers", refState, gotState)
	if refLate != gotLate || gotLate != 100 {
		t.Fatalf("late module ticks: sequential %d, parallel %d, want 100", refLate, gotLate)
	}
}

// TestParallelReconfigureMidRun flips the worker count between run
// segments; every segment must continue the identical simulation.
func TestParallelReconfigureMidRun(t *testing.T) {
	ref := ringRun(t, 5, 300, nil)
	k := New()
	run, state := buildRing(k, 5)
	for i, w := range []int{1, 4, 2, 8} {
		k.SetWorkers(w)
		if err := run(75); err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
	}
	assertSameRing(t, "reconfigure-mid-run", ref, state())
}

// TestParallelHostWrites interleaves host signal writes with parallel
// steps: the scan-based commit must publish them exactly like the
// sequential dirty-list commit.
func TestParallelHostWrites(t *testing.T) {
	outcome := func(workers int) []int {
		k := New()
		if workers > 0 {
			k.SetWorkers(workers)
		}
		in := NewSignal(k, "in", 0)
		var seen []int
		echo := NewSignal(k, "echo", 0)
		k.Add(&FuncModule{Nm: "echoer", Parallel: true, Fn: func(cycle uint64) {
			echo.Set(in.Get() * 2)
		}})
		k.Add(&FuncModule{Nm: "watcher", Parallel: true, Fn: func(cycle uint64) {
			seen = append(seen, echo.Get())
		}})
		for i := 0; i < 20; i++ {
			if i%3 == 0 {
				in.Set(i)
			}
			if err := k.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return seen
	}
	ref := outcome(0)
	got := outcome(4)
	if fmt.Sprint(ref) != fmt.Sprint(got) {
		t.Fatalf("host writes diverged:\nsequential: %v\nparallel:   %v", ref, got)
	}
}

// TestParallelSerialOrdering mixes serial modules sharing a host
// variable with parallel ring modules: the serial group must keep its
// sequential registration-order interleaving.
func TestParallelSerialOrdering(t *testing.T) {
	outcome := func(workers int) []string {
		k := New()
		if workers > 0 {
			k.SetWorkers(workers)
		}
		_, _ = buildRing(k, 4)
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			// Serial by default: no Parallel flag.
			k.Add(&FuncModule{Nm: name, Fn: func(cycle uint64) {
				if cycle%7 == 0 {
					log = append(log, fmt.Sprintf("%s@%d", name, cycle))
				}
			}})
		}
		if err := k.Run(50); err != nil {
			t.Fatal(err)
		}
		return log
	}
	ref := outcome(0)
	got := outcome(4)
	if fmt.Sprint(ref) != fmt.Sprint(got) {
		t.Fatalf("serial ordering diverged:\nsequential: %v\nparallel:   %v", ref, got)
	}
}

// TestParallelIdleSkipComposes runs sleepable modules under the
// event-driven scheduler with parallel ticking: jumps and parallel
// stepped cycles must compose with exact counter accounting.
func TestParallelIdleSkipComposes(t *testing.T) {
	outcome := func(workers int) (uint64, uint64, SchedStats) {
		k := New()
		if workers > 0 {
			k.SetWorkers(workers)
		}
		var busyA, busyB uint64
		mk := func(busy *uint64, period uint64) *FuncModule {
			var wait uint64
			return &FuncModule{
				Nm:       fmt.Sprintf("cd%d", period),
				Parallel: true,
				Fn: func(cycle uint64) {
					if wait == 0 {
						wait = period
					}
					wait--
					*busy++
				},
				Wake: func(now uint64) uint64 {
					if wait <= 1 {
						return now
					}
					return now + wait - 1
				},
				OnSkip: func(n uint64) { wait -= n; *busy += n },
			}
		}
		k.Add(mk(&busyA, 13))
		k.Add(mk(&busyB, 29))
		if err := k.Run(10_000); err != nil {
			t.Fatal(err)
		}
		return busyA, busyB, k.Sched()
	}
	refA, refB, refSched := outcome(0)
	gotA, gotB, gotSched := outcome(4)
	if refA != gotA || refB != gotB {
		t.Fatalf("busy counters diverged: sequential (%d,%d), parallel (%d,%d)", refA, refB, gotA, gotB)
	}
	if gotSched.Skipped == 0 {
		t.Fatal("parallel event-driven run skipped nothing on a countdown workload")
	}
	if refSched.Skipped != gotSched.Skipped || refSched.Stepped != gotSched.Stepped {
		t.Fatalf("sched counters diverged: sequential %+v, parallel %+v", refSched, gotSched)
	}
	if gotSched.Workers != 4 {
		t.Fatalf("Sched().Workers = %d, want 4", gotSched.Workers)
	}
}

// TestParallelFault verifies a fault raised inside a concurrently
// ticked module aborts the run at the same cycle as sequentially.
func TestParallelFault(t *testing.T) {
	boom := errors.New("boom")
	outcome := func(workers int) (uint64, error) {
		k := New()
		if workers > 0 {
			k.SetWorkers(workers)
		}
		_, _ = buildRing(k, 3)
		k.Add(&FuncModule{Nm: "bomb", Parallel: true, Fn: func(cycle uint64) {
			if cycle == 37 {
				k.Fault(boom)
			}
		}})
		err := k.Run(100)
		return k.Cycle(), err
	}
	refCycle, refErr := outcome(0)
	gotCycle, gotErr := outcome(4)
	if refErr == nil || gotErr == nil || !errors.Is(refErr, boom) || !errors.Is(gotErr, boom) {
		t.Fatalf("fault not propagated: sequential %v, parallel %v", refErr, gotErr)
	}
	if refCycle != gotCycle {
		t.Fatalf("fault cycle diverged: sequential %d, parallel %d", refCycle, gotCycle)
	}
	if refErr.Error() != gotErr.Error() {
		t.Fatalf("fault message diverged: %q vs %q", refErr, gotErr)
	}
}
