package sim

import (
	"errors"
	"testing"
)

// pulser is a Sleeper fixture shaped like the real FSM modules: it
// raises a signal every period cycles, sleeping through the countdown,
// and accounts skipped cycles in busy exactly as ticked ones.
type pulser struct {
	out    *Signal[int]
	period uint64
	wait   uint64
	pulses int
	busy   uint64 // counts every non-firing cycle, ticked or skipped
}

func newPulser(k *Kernel, name string, period uint64) *pulser {
	p := &pulser{out: NewSignal(k, name+".out", 0), period: period, wait: period}
	k.Add(p)
	return p
}

func (p *pulser) Name() string { return "pulser" }

func (p *pulser) Tick(cycle uint64) {
	if p.wait > 1 {
		p.wait--
		p.busy++
		return
	}
	p.wait = p.period
	p.pulses++
	p.out.Set(p.pulses)
}

func (p *pulser) NextWake(now uint64) uint64 {
	if p.wait <= 1 {
		return now
	}
	return now + p.wait - 1
}

func (p *pulser) Skip(n uint64) {
	p.wait -= n
	p.busy += n
}

// watcher sleeps forever and counts how often it observes a new value —
// it advances only through dirty-signal wakeups.
type watcher struct {
	in   *Signal[int]
	seen []uint64 // cycle of each observed change
	last int
}

func (w *watcher) Name() string { return "watcher" }
func (w *watcher) Tick(cycle uint64) {
	if v := w.in.Get(); v != w.last {
		w.last = v
		w.seen = append(w.seen, cycle)
	}
}
func (w *watcher) NextWake(now uint64) uint64 { return WakeNever }
func (w *watcher) Skip(n uint64)              {}

func buildPulseSystem(lockstep bool, period uint64) (*Kernel, *pulser, *watcher) {
	k := New()
	k.SetLockstep(lockstep)
	p := newPulser(k, "p", period)
	w := &watcher{in: p.out}
	k.Add(w)
	return k, p, w
}

// TestIdleSkipEquivalence runs the pulse system in both modes and
// demands identical observable behavior: cycle count, pulse count,
// busy accounting, and the exact cycles at which the watcher saw each
// change.
func TestIdleSkipEquivalence(t *testing.T) {
	const period, cycles = 37, 1000
	lk, lp, lw := buildPulseSystem(true, period)
	ek, ep, ew := buildPulseSystem(false, period)
	if err := lk.Run(cycles); err != nil {
		t.Fatal(err)
	}
	if err := ek.Run(cycles); err != nil {
		t.Fatal(err)
	}
	if lk.Cycle() != ek.Cycle() {
		t.Fatalf("cycle counts diverged: lockstep %d, event %d", lk.Cycle(), ek.Cycle())
	}
	if lp.pulses != ep.pulses || lp.busy != ep.busy || lp.wait != ep.wait {
		t.Fatalf("pulser state diverged: lockstep {%d %d %d}, event {%d %d %d}",
			lp.pulses, lp.busy, lp.wait, ep.pulses, ep.busy, ep.wait)
	}
	if len(lw.seen) != len(ew.seen) {
		t.Fatalf("watcher observations diverged: %d vs %d", len(lw.seen), len(ew.seen))
	}
	for i := range lw.seen {
		if lw.seen[i] != ew.seen[i] {
			t.Fatalf("observation %d at different cycles: lockstep %d, event %d", i, lw.seen[i], ew.seen[i])
		}
	}
	if s := ek.Sched(); s.Skipped == 0 {
		t.Fatal("event-driven run skipped nothing; idle-skip is not engaging")
	} else if s.Stepped+s.Skipped != ek.Cycle() {
		t.Fatalf("Stepped(%d)+Skipped(%d) != Cycle(%d)", s.Stepped, s.Skipped, ek.Cycle())
	}
	if s := lk.Sched(); s.Skipped != 0 || !s.Lockstep {
		t.Fatalf("lockstep kernel skipped: %+v", s)
	}
}

// TestIdleSkipLandsExactly verifies Run(n) with an eternally sleeping
// system burns exactly n cycles in one jump.
func TestIdleSkipLandsExactly(t *testing.T) {
	k := New()
	quietCell := NewSignal(k, "q", 0)
	k.Add(&watcher{in: quietCell})
	if err := k.Step(); err != nil { // establish started state
		t.Fatal(err)
	}
	if err := k.Run(999); err != nil {
		t.Fatal(err)
	}
	if got := k.Cycle(); got != 1000 {
		t.Fatalf("Cycle() = %d, want 1000", got)
	}
	if s := k.Sched(); s.Skipped != 999 || s.Spans != 1 {
		t.Fatalf("expected one 999-cycle span, got %+v", s)
	}
}

// TestNonSleeperDisablesSkip: one plain module forces lockstep behavior.
func TestNonSleeperDisablesSkip(t *testing.T) {
	k := New()
	newPulser(k, "p", 50)
	k.Add(&nopModule{"plain"})
	if err := k.Run(200); err != nil {
		t.Fatal(err)
	}
	if s := k.Sched(); s.Skipped != 0 || s.Stepped != 200 {
		t.Fatalf("non-sleeper module did not disable skipping: %+v", s)
	}
}

// TestHostWriteBlocksSkip: a signal Set from host code between steps is
// a pending change; the kernel must tick so modules can observe it.
func TestHostWriteBlocksSkip(t *testing.T) {
	k := New()
	s := NewSignal(k, "s", 0)
	w := &watcher{in: s}
	k.Add(w)
	if err := k.Run(10); err != nil { // all asleep: skipped
		t.Fatal(err)
	}
	s.Set(7)
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	// The host write commits at the end of cycle 10, so the watcher
	// observes it on cycle 11 — exactly as it would under lockstep.
	if len(w.seen) != 1 || w.seen[0] != 11 {
		t.Fatalf("watcher saw %v, want a single observation at cycle 11", w.seen)
	}
}

// TestRunUntilEquivalence: RunUntil stops both modes at the same cycle.
func TestRunUntilEquivalence(t *testing.T) {
	for _, lockstep := range []bool{true, false} {
		k, p, _ := buildPulseSystem(lockstep, 61)
		n, err := k.RunUntil(func() bool { return p.pulses >= 3 }, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(3 * 61); n != want || k.Cycle() != want {
			t.Fatalf("lockstep=%v: stopped after %d cycles at %d, want %d", lockstep, n, k.Cycle(), want)
		}
	}
}

// TestRunUntilQuiescentEquivalence: the idle threshold must be hit at
// the identical cycle in both modes, even when the quiet span is jumped.
func TestRunUntilQuiescentEquivalence(t *testing.T) {
	run := func(lockstep bool) (uint64, uint64) {
		k := New()
		k.SetLockstep(lockstep)
		s := NewSignal(k, "s", 0)
		k.Add(&FuncModule{Nm: "w", Fn: func(cycle uint64) {
			if cycle < 5 {
				s.Set(int(cycle) + 1)
			}
		}, Wake: func(now uint64) uint64 {
			if now < 5 {
				return now
			}
			return WakeNever
		}})
		n, err := k.RunUntilQuiescent(30, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return n, k.Cycle()
	}
	ln, lc := run(true)
	en, ec := run(false)
	if ln != en || lc != ec {
		t.Fatalf("quiescence diverged: lockstep (%d, %d), event (%d, %d)", ln, lc, en, ec)
	}
}

// TestRunUntilQuiescentLimitEventDriven: the limit is honored even when
// the whole budget is consumed by jumps.
func TestRunUntilQuiescentLimitEventDriven(t *testing.T) {
	k := New()
	s := NewSignal(k, "s", 0)
	k.Add(&watcher{in: s})
	// Eternally quiet system, idle threshold larger than limit.
	n, err := k.RunUntilQuiescent(1000, 100)
	if err == nil || !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if n != 100 || k.Cycle() != 100 {
		t.Fatalf("advanced %d cycles to %d, want exactly the 100-cycle limit", n, k.Cycle())
	}
}

// TestFaultDuringWakeCycle: a fault raised on a wake tick after a jump
// surfaces with the correct cycle number.
func TestFaultDuringWakeCycle(t *testing.T) {
	k := New()
	boom := errors.New("boom")
	wait := uint64(80)
	k.Add(&FuncModule{Nm: "f", Fn: func(cycle uint64) {
		if wait > 1 {
			wait--
			return
		}
		k.Fault(boom)
	}, Wake: func(now uint64) uint64 {
		if wait <= 1 {
			return now
		}
		return now + wait - 1
	}, OnSkip: func(n uint64) { wait -= n }})
	err := k.Run(1000)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := k.Cycle(); got != 80 {
		t.Fatalf("fault cycle = %d, want 80", got)
	}
	if k.Sched().Skipped == 0 {
		t.Fatal("expected the countdown to be skipped")
	}
}
