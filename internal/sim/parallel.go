package sim

// This file implements the sharded parallel tick engine: registered
// modules are partitioned into shards, each cycle's tick phase runs the
// shards concurrently on a persistent worker pool, and the commit phase
// then publishes signal writes single-threaded in registration order.
//
// Why this is legal: the kernel's two-phase semantics guarantee that
// during the tick phase modules only *read* committed (pre-cycle) signal
// state and only *write* next-cycle state they exclusively own. Reads are
// stable for the whole phase and writes land in per-signal next-value
// slots, so the order in which modules tick — sequential, interleaved or
// concurrent — is unobservable. The commit that merges the slots happens
// after a barrier, on one goroutine, scanning signals in registration
// order, which makes parallel runs bit-identical to sequential ones
// (cycle counts, stats, ISS output, VCD bytes; asserted config by config
// by the differential harness in internal/experiments).
//
// Two capabilities govern the partitioning:
//
//   - Concurrent is the opt-in: only modules that declare their Tick
//     confined (own state + their bus links + kernel signals they drive)
//     are ticked concurrently. Everything else — coroutine-backed PEs
//     whose tasks share captured host variables, host-driven device
//     queues, arbitrary test closures — is co-scheduled on a single
//     shard in registration order, which preserves the sequential
//     semantics those modules were written against. An unknown module is
//     serial by default, so parallel mode is always safe to enable.
//   - Weighted lets a module report its relative host cost so the LPT
//     partitioner can weigh heavy modules (ISS CPUs retiring an
//     instruction per cycle, the detailed allocator model) against cheap
//     ones (an idle bus). Weights only shape the load balance; they can
//     never affect simulated behavior.
//
// One driver per wire: parallel mode requires that each signal is
// written by at most one module per cycle (hardware's "one driver per
// net" rule, which every module in this repository obeys — bus links
// have exactly one master and one slave side). Two *serial* modules may
// still share a signal, since they tick on one shard in registration
// order. Host code may freely Set signals between steps in either mode.

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"
)

// Concurrent is the opt-in capability for sharded parallel ticking. A
// module returning true guarantees that its Tick touches only state the
// module owns (its fields, its bus links' module-side bookkeeping, the
// signals it drives) plus read-only shared data, so it may run
// concurrently with other modules' Ticks. Modules that do not implement
// the interface — or return false — are all placed on one shard and
// ticked sequentially in registration order.
type Concurrent interface {
	Module
	// ConcurrentTick reports whether this module's Tick is safe to run
	// concurrently with other modules' Ticks.
	ConcurrentTick() bool
}

// Weighted is an optional capability through which a module reports the
// relative host cost of one Tick, as a small positive integer, for shard
// load balancing. Absent the interface a module weighs defaultTickWeight.
// Weights influence only which worker ticks which module — never the
// simulated outcome.
type Weighted interface {
	Module
	// TickWeight returns the module's relative per-Tick host cost
	// (larger = more expensive). Non-positive values mean "use default".
	TickWeight() int
}

// defaultTickWeight is the assumed cost of a module that does not
// implement Weighted.
const defaultTickWeight = 2

// SetWorkers configures the tick phase's parallelism: the maximum number
// of shards modules are partitioned into, each ticked by its own
// goroutine (the caller's goroutine serves shard 0). n = 1 pins the
// kernel to the plain sequential tick loop (the default); n <= 0 selects
// runtime.GOMAXPROCS(0); n > 1 enables parallel ticking with at most n
// shards. Fewer shards than n are used when the module population cannot
// fill them (few modules, or most modules serial). Safe to call between
// steps at any time; the module partition is recomputed lazily.
//
// Parallel and sequential execution are observably identical; see the
// package comment. Determinism is preserved for any worker count.
func (k *Kernel) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n == k.workers {
		return
	}
	k.workers = n
	k.shardsValid = false
}

// Workers returns the configured worker count (1 when SetWorkers was
// never called: the sequential default).
func (k *Kernel) Workers() int {
	if k.workers == 0 {
		return 1
	}
	return k.workers
}

// moduleWeight returns the load-balancing weight of m.
func moduleWeight(m Module) int {
	if w, ok := m.(Weighted); ok {
		if n := w.TickWeight(); n > 0 {
			return n
		}
	}
	return defaultTickWeight
}

// shardInfo is one shard of the module partition, with its cached
// Sleeper view: sleepers is non-nil only when every module in the shard
// participates in event-driven scheduling, which is what allows the
// kernel to skip the whole shard on cycles it provably sleeps through.
type shardInfo struct {
	mods     []Module
	sleepers []Sleeper
}

// asleep reports whether every module of the shard sleeps past now —
// meaning a tick at now would be a pure-wait cycle for each of them.
func (sh *shardInfo) asleep(now uint64) bool {
	if sh.sleepers == nil {
		return false
	}
	for _, s := range sh.sleepers {
		if s.NextWake(now) <= now {
			return false
		}
	}
	return true
}

// reshard recomputes the shard partition (and worker pool) for the
// current module set and worker count. Called lazily from Step; Add and
// SetWorkers invalidate. k.shards == nil selects the sequential path.
func (k *Kernel) reshard() {
	k.shardsValid = true
	if k.pool != nil {
		k.pool.shutdown()
		k.pool = nil
	}
	k.shards = nil
	w := k.Workers()
	if w <= 1 || len(k.modules) < 2 {
		return
	}

	// Schedulable items: each Concurrent module alone, every serial
	// module merged into one group that keeps registration order.
	type item struct {
		weight int
		mods   []int
	}
	var serial item
	items := make([]item, 0, len(k.modules))
	for i, m := range k.modules {
		wt := moduleWeight(m)
		if c, ok := m.(Concurrent); ok && c.ConcurrentTick() {
			items = append(items, item{weight: wt, mods: []int{i}})
		} else {
			serial.weight += wt
			serial.mods = append(serial.mods, i)
		}
	}
	if len(serial.mods) > 0 {
		items = append(items, item{weight: serial.weight, mods: serial.mods})
	}
	n := w
	if len(items) < n {
		n = len(items)
	}
	if n <= 1 {
		return
	}

	// LPT (longest processing time first): heaviest item to the least
	// loaded shard. Stable sort + lowest-shard tie-break keep the
	// partition deterministic, though nothing observable depends on it.
	sort.SliceStable(items, func(a, b int) bool { return items[a].weight > items[b].weight })
	loads := make([]int, n)
	bins := make([][]int, n)
	for _, it := range items {
		best := 0
		for s := 1; s < n; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		loads[best] += it.weight
		bins[best] = append(bins[best], it.mods...)
	}
	shards := make([]shardInfo, 0, n)
	for _, bin := range bins {
		if len(bin) == 0 {
			continue
		}
		sort.Ints(bin)
		sh := shardInfo{mods: make([]Module, len(bin))}
		for j, idx := range bin {
			sh.mods[j] = k.modules[idx]
		}
		sh.sleepers = make([]Sleeper, 0, len(sh.mods))
		for _, m := range sh.mods {
			s, ok := m.(Sleeper)
			if !ok {
				sh.sleepers = nil
				break
			}
			sh.sleepers = append(sh.sleepers, s)
		}
		shards = append(shards, sh)
	}
	if len(shards) <= 1 {
		return
	}
	k.shards = shards
	k.pool = newTickPool(shards)
}

// parallelTick runs one tick phase across the shard partition and
// reports whether the concurrent path ran (true: commit must merge the
// concurrent dirty list; false: the cycle was ticked inline on this
// goroutine and the sequential dirty list holds every write).
//
// The full barrier — release every worker, join — is paid only on
// cycles that need it. When no signal changed (so no sleeping module
// can have work, by the dirty-signal wakeup rule) the kernel first
// sorts shards into awake and asleep: asleep shards take Skip(1), which
// the Sleeper contract makes observably identical to the tick they
// would have received, and when at most one shard remains awake its
// modules tick right here on the kernel goroutine — no pool wake, no
// barrier, no atomics. Multi-awake cycles release exactly the awake
// shards' workers.
func (k *Kernel) parallelTick(c uint64) bool {
	awake := k.awakeBuf[:0]
	wakeAll := k.lockstep || !k.started || k.anyChange || len(k.dirty) > 0
	if !wakeAll {
		for i := range k.shards {
			if !k.shards[i].asleep(c) {
				awake = append(awake, i)
			}
		}
		k.awakeBuf = awake
		if len(awake) <= 1 {
			// No barrier at all: Skip(1) the sleeping shards — contract-
			// identical to the pure-wait tick they would have received —
			// and tick the lone awake shard (if any) right here. The
			// sequential dirty list collects its writes.
			k.skipExcept(awake)
			if len(awake) == 1 {
				for _, m := range k.shards[awake[0]].mods {
					m.Tick(c)
				}
			}
			return false
		}
		wakeAll = len(awake) == len(k.shards)
	}
	if len(k.parDirty) < len(k.signals) {
		k.parDirty = make([]committer, len(k.signals))
	}
	p := k.pool
	k.parallelPhase = true
	if wakeAll {
		p.release(c, p.allSlots)
		for _, m := range k.shards[0].mods {
			m.Tick(c)
		}
	} else {
		// Subset release: workers tick every awake shard except the
		// lowest-indexed one, which this goroutine ticks inline (shard 0
		// has no worker slot, and when awake it is awake[0] since indices
		// ascend). Sleeping shards take their Skip(1) here, overlapping
		// the workers — disjoint module sets, so there is no contention.
		slots := k.slotBuf[:0]
		for _, id := range awake[1:] {
			slots = append(slots, id-1)
		}
		k.slotBuf = slots
		p.release(c, slots)
		k.skipExcept(awake)
		for _, m := range k.shards[awake[0]].mods {
			m.Tick(c)
		}
	}
	p.join()
	k.parallelPhase = false
	return true
}

// skipExcept applies Skip(1) to every shard not listed in awake (an
// ascending list of shard indices). Pure-wait by the Sleeper contract:
// no signal writes, no cross-module state.
func (k *Kernel) skipExcept(awake []int) {
	next := 0
	for i := range k.shards {
		if next < len(awake) && awake[next] == i {
			next++
			continue
		}
		for _, s := range k.shards[i].sleepers {
			s.Skip(1)
		}
	}
}

// commitMerged is the parallel-mode commit: concatenate the concurrent
// dirty list (slots claimed during the parallel phase) with the
// sequential one (host writes pending from before the step), order by
// registration index, and commit. Cost is O(dirty); the ordering makes
// the merge deterministic, though since each signal has a single driver
// the commit order across signals is unobservable anyway.
func (k *Kernel) commitMerged() bool {
	n := int(k.parDirtyN.Swap(0))
	list := k.parDirty[:n]
	// A signal enlists on at most one of the two lists (the dirty flag
	// guards both), so the concatenation stays within the slot array's
	// one-slot-per-signal capacity.
	list = append(list, k.dirty...)
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && list[j].signalIndex() < list[j-1].signalIndex(); j-- {
			list[j], list[j-1] = list[j-1], list[j]
		}
	}
	changed := false
	for _, s := range list {
		if s.commit() {
			changed = true
		}
	}
	return changed
}

// --- worker pool ----------------------------------------------------------

// Worker lifecycle states.
const (
	wkLive   int32 = iota // spinning or ticking
	wkParked              // blocked on its wake channel
	wkDead                // exited (idle timeout or shutdown); respawn to reuse
)

// parkTimeout is how long a parked worker waits for work before exiting.
// Exiting on idle keeps abandoned kernels (benchmarks build thousands)
// from leaking goroutines: a dropped kernel's workers all terminate
// within parkTimeout without any explicit Close.
const parkTimeout = 25 * time.Millisecond

// tickPool is the persistent worker pool behind parallel ticking. The
// kernel goroutine releases one epoch per cycle, ticks shard 0 itself,
// and joins on the pending counter; worker i ticks shards[i+1]. Workers
// spin briefly for the next epoch (the inter-cycle gap is just the
// commit), then park on a channel; parked and dead workers are woken or
// respawned by release. All cross-goroutine handoff goes through the
// epoch/pending atomics, which also carry the happens-before edges that
// make module state written during the phase visible to the kernel (and
// keep the engine clean under the race detector).
type tickPool struct {
	shards []shardInfo
	cycle  uint64 // published before the epoch bump

	// epoch and pending are the barrier's two hot words: every worker
	// spins on epoch and RMWs pending once per cycle. Padding keeps
	// them on separate cache lines so the epoch spin of one worker is
	// not invalidated by another worker's pending decrement.
	_       [64]byte
	epoch   atomic.Uint64
	_       [56]byte
	pending atomic.Int64
	_       [56]byte

	stop    atomic.Bool
	workers []*tickWorker
	// handled[i] is the last epoch worker slot i completed, stored by
	// the worker after ticking and before decrementing pending. It
	// outlives the worker goroutine so that release, respawning a slot
	// whose worker idle-timed-out right after finishing the epoch being
	// released, can tell the epoch was already handled — respawning a
	// primed worker there would tick the shard a second time in the
	// same cycle and drive pending negative.
	handled []atomic.Uint64
	// assigned[i] is the last epoch in which worker slot i participates:
	// a subset release enrolls only the awake shards' workers, and a
	// worker that observes a new epoch it is not assigned to goes back
	// to waiting without ticking or touching pending. Written by the
	// kernel before the epoch bump, read by workers after observing it,
	// so the epoch's release/acquire pair orders every access.
	assigned []atomic.Uint64
	// allSlots enumerates every worker slot, the subset for wake-all
	// cycles; kept preallocated so release never allocates.
	allSlots []int

	// spinBudget and yieldEvery throttle the pre-park spin. On hosts
	// with at least as many schedulable threads as shards, spinning is
	// nearly free and saves the park/unpark latency; on oversubscribed
	// hosts (GOMAXPROCS < shards) spinning would starve the kernel
	// goroutine, so workers yield immediately and park quickly.
	spinBudget int
	yieldEvery int
}

type tickWorker struct {
	state atomic.Int32
	wake  chan struct{} // buffered(1); a token is sent only after winning the parked→live CAS
	shard int
}

func newTickPool(shards []shardInfo) *tickPool {
	p := &tickPool{shards: shards}
	if runtime.GOMAXPROCS(0) >= len(shards) {
		p.spinBudget = 4096
		p.yieldEvery = 256
	} else {
		p.spinBudget = 8
		p.yieldEvery = 1
	}
	p.workers = make([]*tickWorker, len(shards)-1)
	p.handled = make([]atomic.Uint64, len(shards)-1)
	p.assigned = make([]atomic.Uint64, len(shards)-1)
	p.allSlots = make([]int, len(shards)-1)
	for i := range p.allSlots {
		p.allSlots[i] = i
	}
	for i := range p.workers {
		p.spawn(i, p.epoch.Load())
	}
	return p
}

// spawn starts (or restarts) worker slot i with a fresh wake channel.
// last is the epoch the worker should treat as already handled. Only
// the kernel goroutine spawns, and only it bumps the epoch, so reading
// the epoch here is race-free.
func (p *tickPool) spawn(i int, last uint64) {
	w := &tickWorker{wake: make(chan struct{}, 1), shard: i + 1}
	p.workers[i] = w
	go p.run(w, i, last)
}

// respawn replaces the dead worker in slot i during release, primed to
// run the epoch just released — unless the slot's previous worker
// already completed it (handled its epoch, decremented pending, parked
// and idle-timed-out, all while the kernel was descheduled mid-release),
// in which case the fresh worker must wait for the next epoch.
func (p *tickPool) respawn(i int) {
	e := p.epoch.Load()
	last := e - 1
	if p.handled[i].Load() == e {
		last = e
	}
	p.spawn(i, last)
}

// run is the worker body: wait for an epoch, tick the shard, signal
// completion, repeat. last is the most recent epoch already handled.
// An epoch the worker is not assigned to (a subset release for other
// shards) is observed and ignored; assigned epochs can never be missed,
// because release wakes every assigned worker and join waits for them.
func (p *tickPool) run(w *tickWorker, slot int, last uint64) {
	for {
		if !p.await(w, &last) {
			return // dead: idle timeout or shutdown
		}
		if p.assigned[slot].Load() != last {
			continue // not enrolled in this epoch
		}
		for _, m := range p.shards[w.shard].mods {
			m.Tick(p.cycle)
		}
		// Record completion before releasing the barrier: once pending
		// drops, the kernel may commit, release the next epoch, or (if
		// this goroutine later dies) consult handled to prime a
		// replacement.
		p.handled[slot].Store(last)
		p.pending.Add(-1)
	}
}

// await blocks until a new epoch is released (returning true) or the
// worker dies (shutdown or idle timeout; returns false with state wkDead).
func (p *tickPool) await(w *tickWorker, last *uint64) bool {
	spins := 0
	for {
		if p.stop.Load() {
			w.state.Store(wkDead)
			return false
		}
		if e := p.epoch.Load(); e != *last {
			*last = e
			return true
		}
		spins++
		if spins < p.spinBudget {
			if p.yieldEvery > 0 && spins%p.yieldEvery == 0 {
				runtime.Gosched()
			}
			continue
		}
		// Park. Order matters (Dekker-style with release/shutdown):
		// publish the parked state first, then re-check for work the
		// kernel may have released concurrently — the kernel bumps the
		// epoch before scanning worker states, so at least one side
		// observes the other and no wakeup is lost.
		w.state.Store(wkParked)
		if p.stop.Load() || p.epoch.Load() != *last {
			if !w.state.CompareAndSwap(wkParked, wkLive) {
				<-w.wake // kernel won the unpark race and sent a token
			}
			spins = 0
			continue
		}
		t := time.NewTimer(parkTimeout)
		select {
		case <-w.wake:
			// Kernel unparked us (state already wkLive).
			t.Stop()
			spins = 0
		case <-t.C:
			if w.state.CompareAndSwap(wkParked, wkDead) {
				return false
			}
			// Lost the race: the kernel unparked us as the timer fired.
			<-w.wake
			spins = 0
		}
	}
}

// release publishes cycle c to the pool and starts a new epoch in which
// exactly the given worker slots participate, waking those that are
// parked and respawning those that died; workers outside the subset are
// left alone (spinning ones observe the epoch, see they are not
// assigned, and go back to waiting). assigned is written before the
// epoch bump, so the bump's release/acquire pair publishes it to every
// worker that observes the new epoch. Kernel goroutine only.
func (p *tickPool) release(c uint64, slots []int) {
	p.cycle = c
	e := p.epoch.Load() + 1
	for _, i := range slots {
		p.assigned[i].Store(e)
	}
	p.pending.Store(int64(len(slots)))
	p.epoch.Store(e)
	for _, i := range slots {
		w := p.workers[i]
		switch w.state.Load() {
		case wkParked:
			if w.state.CompareAndSwap(wkParked, wkLive) {
				w.wake <- struct{}{}
			} else if w.state.Load() == wkDead {
				// Timed out into wkDead just now. (The CAS can also fail
				// because the worker un-parked itself after observing the
				// epoch bump above — then it is wkLive and needs nothing.)
				p.respawn(i)
			}
		case wkDead:
			p.respawn(i)
		}
	}
}

// join waits for every worker to finish the current epoch. The wait is a
// spin (the tick phase is typically sub-microsecond); it yields to the
// scheduler so workers make progress even on a single-core host.
func (p *tickPool) join() {
	for spins := 0; p.pending.Load() > 0; spins++ {
		if spins >= 128 || p.yieldEvery == 1 {
			runtime.Gosched()
		}
	}
}

// shutdown terminates all workers. Called on reshard; workers still
// blocked in await observe stop and exit. Safe to call multiple times.
func (p *tickPool) shutdown() {
	p.stop.Store(true)
	for _, w := range p.workers {
		if w.state.CompareAndSwap(wkParked, wkLive) {
			w.wake <- struct{}{}
		}
	}
}
