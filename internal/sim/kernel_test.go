package sim

import (
	"errors"
	"testing"
)

func TestKernelCycleCount(t *testing.T) {
	k := New()
	k.Add(&nopModule{"m"})
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := k.Cycle(); got != 10 {
		t.Errorf("Cycle() = %d, want 10", got)
	}
}

func TestKernelTicksEveryModuleOncePerCycle(t *testing.T) {
	k := New()
	counts := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		k.Add(&FuncModule{Nm: "m", Fn: func(cycle uint64) { counts[i]++ }})
	}
	if err := k.Run(7); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 7 {
			t.Errorf("module %d ticked %d times, want 7", i, c)
		}
	}
}

func TestKernelModuleOrderUnobservable(t *testing.T) {
	// Two kernels with modules registered in opposite orders must produce
	// identical signal traces: the two-phase discipline hides ordering.
	build := func(reverse bool) []int {
		k := New()
		a := NewSignal(k, "a", 0)
		b := NewSignal(k, "b", 0)
		inc := &FuncModule{Nm: "inc", Fn: func(cycle uint64) { a.Set(b.Get() + 1) }}
		dbl := &FuncModule{Nm: "dbl", Fn: func(cycle uint64) { b.Set(a.Get() * 2) }}
		if reverse {
			k.Add(dbl)
			k.Add(inc)
		} else {
			k.Add(inc)
			k.Add(dbl)
		}
		var trace []int
		for i := 0; i < 8; i++ {
			if err := k.Step(); err != nil {
				t.Fatal(err)
			}
			trace = append(trace, a.Get(), b.Get())
		}
		return trace
	}
	fwd, rev := build(false), build(true)
	for i := range fwd {
		if fwd[i] != rev[i] {
			t.Fatalf("trace diverges at %d: fwd=%v rev=%v", i, fwd, rev)
		}
	}
}

func TestKernelFaultStopsRun(t *testing.T) {
	k := New()
	boom := errors.New("boom")
	k.Add(&FuncModule{Nm: "f", Fn: func(cycle uint64) {
		if cycle == 3 {
			k.Fault(boom)
		}
	}})
	err := k.Run(10)
	if !errors.Is(err, boom) {
		t.Fatalf("Run() error = %v, want wrapped boom", err)
	}
	if got := k.Cycle(); got != 4 {
		t.Errorf("Cycle() after fault = %d, want 4", got)
	}
	// Subsequent steps keep returning the fault.
	if err := k.Step(); !errors.Is(err, boom) {
		t.Errorf("Step() after fault = %v, want boom", err)
	}
}

func TestKernelFirstFaultWins(t *testing.T) {
	k := New()
	e1, e2 := errors.New("first"), errors.New("second")
	k.Add(&FuncModule{Nm: "f", Fn: func(cycle uint64) {
		k.Fault(e1)
		k.Fault(e2)
	}})
	err := k.Step()
	if !errors.Is(err, e1) || errors.Is(err, e2) {
		t.Fatalf("err = %v, want first fault only", err)
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	s := NewSignal(k, "s", 0)
	k.Add(&FuncModule{Nm: "w", Fn: func(cycle uint64) { s.Set(int(cycle)) }})
	n, err := k.RunUntil(func() bool { return s.Get() >= 5 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	// s.Get()==5 after the write in cycle 5 commits, i.e. after 7 steps
	// (cycle 0 writes 0 ... cycle 5 writes 5, visible after step 6).
	if s.Get() < 5 {
		t.Errorf("condition not established: s=%d after %d cycles", s.Get(), n)
	}
}

func TestRunUntilLimit(t *testing.T) {
	k := New()
	k.Add(&nopModule{"m"})
	n, err := k.RunUntil(func() bool { return false }, 20)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if n != 20 {
		t.Errorf("n = %d, want 20", n)
	}
}

func TestRunUntilQuiescent(t *testing.T) {
	k := New()
	s := NewSignal(k, "s", 0)
	k.Add(&FuncModule{Nm: "w", Fn: func(cycle uint64) {
		if cycle < 5 {
			s.Set(int(cycle) + 1)
		}
	}})
	n, err := k.RunUntilQuiescent(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Writes stop after cycle 4; 3 quiet cycles later the kernel stops.
	if n < 8 || n > 9 {
		t.Errorf("stopped after %d cycles, want 8..9", n)
	}
	if got := s.Get(); got != 5 {
		t.Errorf("s = %d, want 5", got)
	}
}

func TestRunUntilQuiescentLimit(t *testing.T) {
	k := New()
	s := NewSignal(k, "s", 0)
	k.Add(&FuncModule{Nm: "w", Fn: func(cycle uint64) { s.Set(int(cycle)) }})
	_, err := k.RunUntilQuiescent(2, 10)
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestAfterCycleHook(t *testing.T) {
	k := New()
	k.Add(&nopModule{"m"})
	var cycles []uint64
	k.AfterCycle(func(c uint64) { cycles = append(cycles, c) })
	if err := k.Run(3); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 2}
	if len(cycles) != len(want) {
		t.Fatalf("hook ran %d times, want %d", len(cycles), len(want))
	}
	for i := range want {
		if cycles[i] != want[i] {
			t.Errorf("hook cycle[%d] = %d, want %d", i, cycles[i], want[i])
		}
	}
}

func TestModulesAccessor(t *testing.T) {
	k := New()
	m := &nopModule{"only"}
	k.Add(m)
	if ms := k.Modules(); len(ms) != 1 || ms[0].Name() != "only" {
		t.Errorf("Modules() = %v, want [only]", ms)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// The same system stepped twice from scratch produces identical traces
	// (experiment E4's foundation).
	run := func() []int {
		k := New()
		a := NewSignal(k, "a", 1)
		b := NewSignal(k, "b", 2)
		k.Add(&FuncModule{Nm: "m1", Fn: func(cycle uint64) { a.Set(a.Get() + b.Get()) }})
		k.Add(&FuncModule{Nm: "m2", Fn: func(cycle uint64) { b.Set(a.Get() ^ b.Get()) }})
		var tr []int
		for i := 0; i < 50; i++ {
			if err := k.Step(); err != nil {
				t.Fatal(err)
			}
			tr = append(tr, a.Get(), b.Get())
		}
		return tr
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("replay diverged at index %d", i)
		}
	}
}

func TestProfilingAccumulates(t *testing.T) {
	k := New()
	k.Add(&nopModule{"cheap"})
	k.Add(&FuncModule{Nm: "busy", Fn: func(cycle uint64) {
		x := 0
		for i := 0; i < 1000; i++ {
			x += i
		}
		_ = x
	}})
	k.EnableProfiling()
	k.EnableProfiling() // idempotent
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	rep := k.ProfileReport()
	if len(rep) != 2 {
		t.Fatalf("report rows = %d", len(rep))
	}
	// Sorted most-expensive first; the busy module must lead.
	if rep[0].Name != "busy" {
		t.Errorf("most expensive = %s, want busy", rep[0].Name)
	}
	for _, r := range rep {
		if r.Ticks != 100 {
			t.Errorf("%s ticks = %d, want 100", r.Name, r.Ticks)
		}
	}
}

func TestProfileReportWithoutEnable(t *testing.T) {
	k := New()
	k.Add(&nopModule{"m"})
	if err := k.Run(5); err != nil {
		t.Fatal(err)
	}
	if rep := k.ProfileReport(); rep != nil {
		t.Errorf("report without profiling = %v", rep)
	}
}
