package sim

// FuncModule adapts a closure into a Module. Useful for test fixtures,
// stimulus generators and small glue blocks that do not warrant a named
// type.
//
// FuncModule always satisfies Sleeper so that it never disables the
// kernel's idle-skip for other modules: with no Wake hook it simply
// reports itself permanently active (NextWake = now), which is the
// lockstep-equivalent answer for an arbitrary closure. Supplying Wake
// (and, when per-cycle counters must stay exact, OnSkip) lets a fixture
// participate in skipping.
//
// Under parallel execution a FuncModule is serial by default — an
// arbitrary closure routinely captures state shared with other fixtures,
// so the safe answer is to co-schedule it with all other serial modules
// in registration order. Set Parallel when Fn is confined to state this
// module owns (plus signals it drives) to let it tick concurrently.
type FuncModule struct {
	// Nm is the module name reported to diagnostics.
	Nm string
	// Fn is invoked once per cycle.
	Fn func(cycle uint64)
	// Wake, when non-nil, implements the Sleeper contract: it returns
	// the earliest cycle ≥ now at which Fn must run again, assuming no
	// signal changes in between (WakeNever for "signal change only").
	Wake func(now uint64) uint64
	// OnSkip, when non-nil, is informed of n skipped pure-wait cycles so
	// the closure can account for them (see Sleeper.Skip).
	OnSkip func(n uint64)
	// Parallel opts Fn in to concurrent ticking (see sim.Concurrent).
	Parallel bool
	// Cost is the relative per-Tick host cost for shard balancing
	// (see sim.Weighted); 0 selects the default weight.
	Cost int
}

// Name implements Module.
func (m *FuncModule) Name() string { return m.Nm }

// Tick implements Module.
func (m *FuncModule) Tick(cycle uint64) { m.Fn(cycle) }

// NextWake implements Sleeper.
func (m *FuncModule) NextWake(now uint64) uint64 {
	if m.Wake != nil {
		return m.Wake(now)
	}
	return now
}

// Skip implements Sleeper.
func (m *FuncModule) Skip(n uint64) {
	if m.OnSkip != nil {
		m.OnSkip(n)
	}
}

// ConcurrentTick implements Concurrent: a closure ticks concurrently
// only when explicitly marked Parallel.
func (m *FuncModule) ConcurrentTick() bool { return m.Parallel }

// TickWeight implements Weighted.
func (m *FuncModule) TickWeight() int { return m.Cost }
