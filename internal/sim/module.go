package sim

// FuncModule adapts a closure into a Module. Useful for test fixtures,
// stimulus generators and small glue blocks that do not warrant a named
// type.
type FuncModule struct {
	// Nm is the module name reported to diagnostics.
	Nm string
	// Fn is invoked once per cycle.
	Fn func(cycle uint64)
}

// Name implements Module.
func (m *FuncModule) Name() string { return m.Nm }

// Tick implements Module.
func (m *FuncModule) Tick(cycle uint64) { m.Fn(cycle) }
