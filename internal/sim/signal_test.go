package sim

import (
	"testing"
	"testing/quick"
)

// nopModule ticks without touching signals.
type nopModule struct{ name string }

func (m *nopModule) Name() string      { return m.name }
func (m *nopModule) Tick(cycle uint64) {}

func TestSignalReadsPreviousCycleValue(t *testing.T) {
	k := New()
	s := NewSignal(k, "s", 0)
	var seen []int
	k.Add(&FuncModule{Nm: "writer", Fn: func(cycle uint64) {
		seen = append(seen, s.Get())
		s.Set(int(cycle) + 100)
	}})
	if err := k.Run(3); err != nil {
		t.Fatal(err)
	}
	// Cycle 0 sees init 0; cycle 1 sees value written in cycle 0; etc.
	want := []int{0, 100, 101}
	for i, w := range want {
		if seen[i] != w {
			t.Errorf("cycle %d: Get() = %d, want %d", i, seen[i], w)
		}
	}
}

func TestSignalHoldsValueWhenNotWritten(t *testing.T) {
	k := New()
	s := NewSignal(k, "s", 7)
	k.Add(&nopModule{"idle"})
	if err := k.Run(5); err != nil {
		t.Fatal(err)
	}
	if got := s.Get(); got != 7 {
		t.Errorf("Get() = %d, want held value 7", got)
	}
}

func TestSignalLastWriteWins(t *testing.T) {
	k := New()
	s := NewSignal(k, "s", 0)
	k.Add(&FuncModule{Nm: "w", Fn: func(cycle uint64) {
		s.Set(1)
		s.Set(2)
		s.Set(3)
	}})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	if got := s.Get(); got != 3 {
		t.Errorf("Get() = %d, want 3 (last write wins)", got)
	}
}

func TestSignalPending(t *testing.T) {
	k := New()
	s := NewSignal(k, "s", 1)
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending() before write = %d, want 1", got)
	}
	k.Add(&FuncModule{Nm: "w", Fn: func(cycle uint64) {
		s.Set(9)
		if got := s.Pending(); got != 9 {
			t.Errorf("Pending() mid-cycle = %d, want 9", got)
		}
		if got := s.Get(); got != 1 {
			t.Errorf("Get() mid-cycle = %d, want 1", got)
		}
	}})
	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	if got := s.Get(); got != 9 {
		t.Errorf("Get() after commit = %d, want 9", got)
	}
}

func TestSignalWriteVisibleExactlyOneCycleLater(t *testing.T) {
	// Property: for any sequence of written values, the reader observes the
	// same sequence delayed by exactly one cycle.
	prop := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		k := New()
		s := NewSignal(k, "s", uint32(0))
		var got []uint32
		i := 0
		k.Add(&FuncModule{Nm: "w", Fn: func(cycle uint64) {
			if i < len(vals) {
				s.Set(vals[i])
				i++
			}
		}})
		k.Add(&FuncModule{Nm: "r", Fn: func(cycle uint64) {
			got = append(got, s.Get())
		}})
		if err := k.Run(uint64(len(vals) + 1)); err != nil {
			return false
		}
		if got[0] != 0 {
			return false
		}
		for j, v := range vals {
			if got[j+1] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSignalString(t *testing.T) {
	k := New()
	s := NewSignal(k, "ack", true)
	if got, want := s.String(), "ack=true"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := s.Name(), "ack"; got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
}
