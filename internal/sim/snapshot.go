package sim

import (
	"fmt"

	"repro/internal/snapshot"
)

// Restore overwrites the signal's committed value in place: current
// and next both become v and the signal is clean. It exists for
// snapshot restore, which rebuilds committed state between cycles;
// calling it on a dirty signal would silently discard a pending write,
// so that is a programming error.
func (s *Signal[T]) Restore(v T) {
	if s.dirty {
		panic(fmt.Sprintf("sim: Restore of dirty signal %q", s.name))
	}
	s.cur = v
	s.next = v
}

// Quiescent reports whether the kernel sits at a cycle boundary with
// no uncommitted signal writes. Snapshots may only be taken (and
// restored into) a quiescent kernel: mid-phase, signal next-values and
// the dirty list hold state the snapshot format deliberately does not
// represent.
func (k *Kernel) Quiescent() bool { return len(k.dirty) == 0 }

// SaveState serializes the kernel's scheduling state: the clock and
// the flags the event-driven scheduler consults when deciding whether
// an idle skip is legal (started, anyChange), plus the cumulative
// scheduler counters so SchedStats survive a restore. Worker/shard
// configuration is rebuilt from config, and the parallel engine's
// scratch buffers plus the awake-probe hint are behavior-neutral
// caches, so none of them are serialized.
func (k *Kernel) SaveState(enc *snapshot.Encoder) {
	enc.U64(k.cycle)
	enc.Bool(k.anyChange)
	enc.Bool(k.started)
	enc.U64(k.stepped)
	enc.U64(k.skipped)
	enc.U64(k.skipSpans)
}

// RestoreState rebuilds the kernel's scheduling state from a section
// written by SaveState.
func (k *Kernel) RestoreState(dec *snapshot.Decoder) error {
	if !k.Quiescent() {
		return fmt.Errorf("kernel has %d uncommitted signals", len(k.dirty))
	}
	k.cycle = dec.U64()
	k.anyChange = dec.Bool()
	k.started = dec.Bool()
	k.stepped = dec.U64()
	k.skipped = dec.U64()
	k.skipSpans = dec.U64()
	k.awakeHint = 0
	return dec.Finish()
}
