package sim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// VCD emits value-change-dump waveforms for a set of probed values, one
// sample per simulated cycle. It is deliberately probe-based rather than
// signal-based: any value a closure can reach (a Signal, a register inside
// a module, a derived expression) can be traced without coupling modules
// to the tracer.
//
// Typical use:
//
//	vcd := sim.NewVCD(f, "1ns")
//	vcd.AddVar("bus", "req_valid", 1, sim.ProbeBool(reqValid))
//	vcd.AddVar("bus", "addr", 32, sim.ProbeU32(addr))
//	k.AfterCycle(vcd.Sample)
//	defer vcd.Flush()
//
// The tracer is change-based, which makes it robust to the kernel's
// event-driven scheduler: Sample runs only for stepped cycles, but
// during a skipped span no signal commits, so a probe over signal state
// (or any other tick-driven state) would have emitted nothing anyway —
// the dump is byte-identical between lockstep and event-driven runs.
// A probe over per-cycle counters that advance during skips (busy/stall
// accounting) sees those counters jump at span boundaries; trace such
// values with the kernel pinned to lockstep.
type VCD struct {
	w      *bufio.Writer
	ts     string
	vars   []vcdVar
	wrote  bool
	nextID int
}

type vcdVar struct {
	scope string
	name  string
	width int
	probe func() uint64
	id    string
	last  uint64
	init  bool
}

// NewVCD creates a VCD tracer writing to w with the given timescale
// (for example "1ns"); one simulated cycle advances one timescale unit.
func NewVCD(w io.Writer, timescale string) *VCD {
	return &VCD{w: bufio.NewWriter(w), ts: timescale}
}

// AddVar registers a variable of the given bit width under a scope. Must
// be called before the first Sample. Probe is invoked once per sample.
func (v *VCD) AddVar(scope, name string, width int, probe func() uint64) {
	if v.wrote {
		panic("sim: VCD.AddVar after first Sample")
	}
	v.vars = append(v.vars, vcdVar{
		scope: scope,
		name:  name,
		width: width,
		probe: probe,
		id:    vcdID(v.nextID),
	})
	v.nextID++
}

// vcdID maps an index to the VCD identifier alphabet (ASCII 33..126).
func vcdID(n int) string {
	const lo, hi = 33, 127
	if n < hi-lo {
		return string(rune(lo + n))
	}
	return vcdID(n/(hi-lo)-1) + string(rune(lo+n%(hi-lo)))
}

func (v *VCD) header() {
	fmt.Fprintf(v.w, "$version repro mpsoc-cosim $end\n$timescale %s $end\n", v.ts)
	// Group variables by scope, preserving insertion order of scopes.
	order := []string{}
	byScope := map[string][]int{}
	for i, vr := range v.vars {
		if _, ok := byScope[vr.scope]; !ok {
			order = append(order, vr.scope)
		}
		byScope[vr.scope] = append(byScope[vr.scope], i)
	}
	for _, sc := range order {
		fmt.Fprintf(v.w, "$scope module %s $end\n", sc)
		for _, i := range byScope[sc] {
			vr := &v.vars[i]
			fmt.Fprintf(v.w, "$var wire %d %s %s $end\n", vr.width, vr.id, vr.name)
		}
		fmt.Fprintf(v.w, "$upscope $end\n")
	}
	fmt.Fprintf(v.w, "$enddefinitions $end\n")
}

// Sample records the current value of every probe at the given cycle,
// emitting changes only. Suitable for Kernel.AfterCycle.
func (v *VCD) Sample(cycle uint64) {
	if !v.wrote {
		v.header()
		v.wrote = true
	}
	stamped := false
	for i := range v.vars {
		vr := &v.vars[i]
		val := vr.probe()
		if vr.init && val == vr.last {
			continue
		}
		if !stamped {
			fmt.Fprintf(v.w, "#%d\n", cycle)
			stamped = true
		}
		vr.last = val
		vr.init = true
		if vr.width == 1 {
			fmt.Fprintf(v.w, "%d%s\n", val&1, vr.id)
		} else {
			fmt.Fprintf(v.w, "b%s %s\n", strconv.FormatUint(val, 2), vr.id)
		}
	}
}

// Flush writes any buffered output to the underlying writer.
func (v *VCD) Flush() error { return v.w.Flush() }

// ProbeBool adapts a bool signal into a VCD probe.
func ProbeBool(s *Signal[bool]) func() uint64 {
	return func() uint64 {
		if s.Get() {
			return 1
		}
		return 0
	}
}

// ProbeU32 adapts a uint32 signal into a VCD probe.
func ProbeU32(s *Signal[uint32]) func() uint64 {
	return func() uint64 { return uint64(s.Get()) }
}

// ProbeU64 adapts a uint64 signal into a VCD probe.
func ProbeU64(s *Signal[uint64]) func() uint64 {
	return func() uint64 { return s.Get() }
}

// ProbeInt adapts an int signal into a VCD probe.
func ProbeInt(s *Signal[int]) func() uint64 {
	return func() uint64 { return uint64(int64(s.Get())) }
}
