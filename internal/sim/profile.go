package sim

import (
	"sort"
	"time"
)

// ModuleCost is one row of a profiling report: how much host time one
// module's Tick consumed.
type ModuleCost struct {
	Name  string
	Ticks uint64
	Time  time.Duration
}

// EnableProfiling switches the kernel into profiled stepping: every
// module's Tick is timed individually. Call before the first Step.
// Profiling costs two clock reads per module per cycle, so simulation
// runs noticeably slower; it exists to *explain* speed (experiment E1's
// per-module degradation), not to measure absolute throughput. A
// profiled kernel always ticks sequentially — per-module host timing is
// meaningless interleaved across cores — so profiling takes precedence
// over SetWorkers.
//
// Under the event-driven scheduler a module's Ticks counter reflects the
// cycles it was actually ticked; skipped spans appear in Kernel.Sched()
// (Stepped + Skipped always equals Cycle()). Comparing a module's Ticks
// against Sched().Stepped shows how often it was awake; comparing
// Sched().Skipped against Cycle() shows how much of the run the
// idle-skip machinery absorbed.
func (k *Kernel) EnableProfiling() {
	if k.profTime != nil {
		return
	}
	k.profTime = make([]time.Duration, len(k.modules))
	k.profTicks = make([]uint64, len(k.modules))
}

// profiledTick runs one cycle with per-module timing. Kept in sync with
// the fast path in Step.
func (k *Kernel) profiledTick(c uint64) {
	for i, m := range k.modules {
		start := time.Now()
		m.Tick(c)
		k.profTime[i] += time.Since(start)
		k.profTicks[i]++
	}
}

// ProfileReport returns per-module host-time totals, most expensive
// first. Empty when profiling was never enabled.
func (k *Kernel) ProfileReport() []ModuleCost {
	if k.profTime == nil {
		return nil
	}
	out := make([]ModuleCost, len(k.modules))
	for i, m := range k.modules {
		out[i] = ModuleCost{Name: m.Name(), Ticks: k.profTicks[i], Time: k.profTime[i]}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Time > out[b].Time })
	return out
}
