package sim

import "fmt"

// committer is the kernel-facing side of a signal: commit publishes the
// pending next value at the end of a cycle and reports whether the visible
// value changed. signalIndex is the signal's registration index, the
// order the commit phase merges dirty lists by.
type committer interface {
	commit() (changed bool)
	signalName() string
	signalIndex() int
}

// Signal is a named, clocked wire carrying values of type T between
// modules. Reads (Get) always return the value committed at the end of the
// previous cycle; writes (Set) become visible at the start of the next
// cycle. A signal holds its last committed value until overwritten, so it
// behaves like a register driven by whichever module writes it.
//
// A signal is a single-driver wire: at most one module writes it (the
// hardware "one driver per net" rule; bus links have exactly one master
// and one slave side signal). Under the kernel's parallel tick engine
// (see parallel.go) the signal's next-value slot is that driver's
// private scratch for the cycle, so concurrent shards never contend on
// it; the kernel merges all slots at the commit barrier in registration
// order, keeping parallel runs bit-identical to sequential ones
// (determinism is a correctness requirement for experiment E4). Host
// code may Set signals between steps in any mode.
type Signal[T comparable] struct {
	name  string
	cur   T
	next  T
	dirty bool
	idx   int
	k     *Kernel
}

// NewSignal creates a signal registered with kernel k. The initial value is
// visible from cycle zero onward.
func NewSignal[T comparable](k *Kernel, name string, init T) *Signal[T] {
	s := &Signal[T]{name: name, cur: init, next: init, k: k}
	s.idx = k.addSignal(s)
	return s
}

// Name returns the signal's diagnostic name.
func (s *Signal[T]) Name() string { return s.name }

// Get returns the value committed at the end of the previous cycle.
func (s *Signal[T]) Get() T { return s.cur }

// Set schedules v to become visible at the start of the next cycle.
// Multiple Sets within one cycle are allowed; the last one wins, which
// models a multiplexer in front of a register. Setting the value the
// signal already holds is a no-op for change detection but still legal.
func (s *Signal[T]) Set(v T) {
	s.next = v
	if !s.dirty {
		s.dirty = true
		// A signal has a single driver, so the dirty flag itself is
		// never contended; only the dirty *list* is shared. During a
		// parallel tick phase concurrent shards reserve slots in a
		// preallocated array with an atomic cursor; sequentially, a
		// plain append. Either way the commit phase receives exactly
		// the dirtied signals — O(dirty), not O(all signals).
		s.k.markDirty(s)
	}
}

// Pending reports the value that will be committed at the end of this
// cycle. Intended for monitors and tests; modules should use Get.
func (s *Signal[T]) Pending() T {
	if s.dirty {
		return s.next
	}
	return s.cur
}

func (s *Signal[T]) commit() bool {
	if !s.dirty {
		return false
	}
	s.dirty = false
	if s.next == s.cur {
		return false
	}
	s.cur = s.next
	return true
}

func (s *Signal[T]) signalName() string { return s.name }

func (s *Signal[T]) signalIndex() int { return s.idx }

// String implements fmt.Stringer for diagnostics.
func (s *Signal[T]) String() string {
	return fmt.Sprintf("%s=%v", s.name, s.cur)
}
