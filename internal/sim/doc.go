// Package sim implements the cycle-true simulation kernel underlying the
// co-simulation framework.
//
// The kernel plays the role GEZEL / SystemC play in the original DATE'05
// system: it owns a single synchronous clock domain, a set of hardware
// modules, and the signals connecting them. Simulation is strictly
// two-phase:
//
//   - During a cycle every registered Module has its Tick method invoked
//     exactly once. Modules read the *current* value of signals and write
//     *next* values.
//   - After all modules have ticked, the kernel commits every written
//     signal, making the new values visible to the following cycle.
//
// Because reads always observe the pre-cycle state, the order in which
// modules tick is unobservable: simulation is deterministic and race-free
// by construction, mirroring the registered (cycle-by-cycle) communication
// the paper prescribes for the memory-wrapper handshake.
//
// # Event-driven scheduling
//
// Ticking every module every cycle is faithful but wasteful: an MPSoC
// spends most of its simulated life counting down memory and bus delays,
// and a lockstep kernel charges the host for each of those inert cycles.
// The run loops (Run, RunUntil, RunUntilQuiescent) therefore schedule
// event-driven by default, built on two rules:
//
//   - Wake queue: modules implementing the optional Sleeper capability
//     report, via NextWake, the earliest cycle at which they can do work
//     absent signal changes — a wrapper mid-delay reports the cycle its
//     countdown expires, a stalled CPU or an idle bus reports WakeNever.
//     When every module sleeps and nothing changed, the kernel jumps the
//     clock straight to the earliest wake point, calling Skip(n) on each
//     module so pure-wait effects (busy/stall counters, countdowns) are
//     accounted in O(1).
//   - Dirty-signal wakeup: a skip is attempted only when the previous
//     cycle committed no signal change and no host-written signal is
//     pending. Any change anywhere wakes every module — conservative,
//     simple, and sufficient, because modules communicate exclusively
//     through signals.
//
// The two modes are observably identical — same cycle counts, same
// stats, same VCD traces, same software results — which the differential
// tests in internal/experiments assert config by config. Use
// Kernel.SetLockstep(true) to pin a kernel to lockstep (the reference
// mode for differential testing, and the right choice for AfterCycle
// hooks that must run every cycle). A single module that does not
// implement Sleeper silently degrades the whole kernel to lockstep
// behavior; Kernel.Sched reports how many cycles were stepped versus
// skipped.
//
// The kernel also provides single-cycle control (Step, which never
// skips), per-cycle hooks for instrumentation, a fault channel through
// which any module can abort simulation with an error, and
// value-change-dump (VCD) tracing for waveform inspection.
package sim
