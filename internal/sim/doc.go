// Package sim implements the cycle-true simulation kernel underlying the
// co-simulation framework.
//
// The kernel plays the role GEZEL / SystemC play in the original DATE'05
// system: it owns a single synchronous clock domain, a set of hardware
// modules, and the signals connecting them. Simulation is strictly
// two-phase:
//
//   - During a cycle every registered Module has its Tick method invoked
//     exactly once. Modules read the *current* value of signals and write
//     *next* values.
//   - After all modules have ticked, the kernel commits every written
//     signal, making the new values visible to the following cycle.
//
// Because reads always observe the pre-cycle state, the order in which
// modules tick is unobservable: simulation is deterministic and race-free
// by construction, mirroring the registered (cycle-by-cycle) communication
// the paper prescribes for the memory-wrapper handshake.
//
// # Event-driven scheduling
//
// Ticking every module every cycle is faithful but wasteful: an MPSoC
// spends most of its simulated life counting down memory and bus delays,
// and a lockstep kernel charges the host for each of those inert cycles.
// The run loops (Run, RunUntil, RunUntilQuiescent) therefore schedule
// event-driven by default, built on two rules:
//
//   - Wake queue: modules implementing the optional Sleeper capability
//     report, via NextWake, the earliest cycle at which they can do work
//     absent signal changes — a wrapper mid-delay reports the cycle its
//     countdown expires, a stalled CPU or an idle bus reports WakeNever.
//     When every module sleeps and nothing changed, the kernel jumps the
//     clock straight to the earliest wake point, calling Skip(n) on each
//     module so pure-wait effects (busy/stall counters, countdowns) are
//     accounted in O(1).
//   - Dirty-signal wakeup: a skip is attempted only when the previous
//     cycle committed no signal change and no host-written signal is
//     pending. Any change anywhere wakes every module — conservative,
//     simple, and sufficient, because modules communicate exclusively
//     through signals.
//
// The two modes are observably identical — same cycle counts, same
// stats, same VCD traces, same software results — which the differential
// tests in internal/experiments assert config by config. Use
// Kernel.SetLockstep(true) to pin a kernel to lockstep (the reference
// mode for differential testing, and the right choice for AfterCycle
// hooks that must run every cycle). A single module that does not
// implement Sleeper silently degrades the whole kernel to lockstep
// behavior; Kernel.Sched reports how many cycles were stepped versus
// skipped.
//
// # Parallel execution
//
// The same two-phase property that makes tick order unobservable makes
// the tick phase embarrassingly parallel: during a cycle every module
// reads only committed (pre-cycle) signal state — stable for the whole
// phase — and writes only next-cycle state it exclusively owns (its
// fields plus the next-value slots of the signals it drives; hardware's
// one-driver-per-net rule). Kernel.SetWorkers(n) therefore shards the
// module list across up to n workers per cycle:
//
//   - Partition: modules implementing the Concurrent capability (and
//     returning true) get their own schedule slots; everything else —
//     coroutine-backed PEs whose tasks share captured host state,
//     host-driven device queues, arbitrary closures — is merged into
//     one serial group that ticks in registration order. Slots are
//     packed into shards by an LPT bin-packer using the optional
//     Weighted capability (ISS CPUs are ~4x a bus tick), so one heavy
//     module does not serialize the cycle.
//   - Tick: on cycles that need the pool the kernel releases one epoch,
//     ticks shard 0 on its own goroutine, and joins. During the phase
//     Signal.Set enlists each newly dirtied signal in a preallocated
//     slot array whose cursor is an atomic counter — safe because every
//     signal has exactly one driver, so the dirty flag itself is never
//     contended and each signal claims at most one slot per cycle.
//   - Commit: after the barrier, one goroutine concatenates the
//     concurrent dirty list with the sequential one (host writes made
//     between steps), orders the union by signal registration index and
//     commits — O(signals actually written), not O(all signals), with
//     the same commit order a sequential run produces. Everything
//     downstream of the barrier (commit, AfterCycle hooks, the
//     event-driven skip decisions, NextWake/Skip) stays single-threaded,
//     so the Sleeper machinery needs no locking.
//
// Sharding composes with event-driven scheduling instead of fighting
// it. Whole-kernel idle jumps still happen exactly as in sequential
// mode; on stepped cycles the kernel additionally consults each shard's
// cached Sleeper view (under the same preconditions that allow a skip:
// event-driven, nothing changed, nothing pending). A shard whose
// modules all sleep past the cycle takes Skip(1) — observably identical
// to the pure-wait tick it would have received — and does not cross the
// barrier at all. When at most one shard is awake its modules tick
// inline on the kernel goroutine with no pool wake, no epoch, no
// atomics; when several are awake the pool releases exactly the awake
// shards' workers (a subset epoch: enrollment is published before the
// epoch bump, and non-enrolled workers that observe the epoch go back
// to waiting without touching the barrier). The full wake-all release
// is reserved for cycles following a signal change, where the
// dirty-signal wakeup rule wakes everything anyway.
//
// The barrier a released epoch pays is a spin-then-park rendezvous on
// two cache-line-padded atomics (epoch, pending); parked and dead
// workers are woken or respawned by the release, and idle workers time
// out and exit so abandoned kernels leak nothing.
//
// Parallel runs are bit-identical to sequential ones — same cycles,
// stats, ISS output, VCD bytes — for any worker count, which the
// differential harness asserts across the full mode matrix (lockstep ×
// event-driven × workers ∈ {1, 2, 4, 8} × ISS fast paths on/off);
// determinism is preserved because no module can observe tick order and
// the commit order is fixed. Expect speedup on CPU-bound configurations
// (several ISSs executing batched instruction runs) with host cores to
// spare; idle-heavy configurations are already served by idle-skip, and
// serial-module (PE/task) systems pay the barrier without gaining
// concurrency — which is why workers=1 remains the default. Faults
// raised concurrently are serialized; when several modules fault in the
// same cycle the reported error is unspecified (the faulting cycle is
// still exact).
//
// The kernel also provides single-cycle control (Step, which never
// skips), per-cycle hooks for instrumentation, a fault channel through
// which any module can abort simulation with an error, and
// value-change-dump (VCD) tracing for waveform inspection.
package sim
