// Package sim implements the cycle-true simulation kernel underlying the
// co-simulation framework.
//
// The kernel plays the role GEZEL / SystemC play in the original DATE'05
// system: it owns a single synchronous clock domain, a set of hardware
// modules, and the signals connecting them. Simulation is strictly
// two-phase:
//
//   - During a cycle every registered Module has its Tick method invoked
//     exactly once. Modules read the *current* value of signals and write
//     *next* values.
//   - After all modules have ticked, the kernel commits every written
//     signal, making the new values visible to the following cycle.
//
// Because reads always observe the pre-cycle state, the order in which
// modules tick is unobservable: simulation is deterministic and race-free
// by construction, mirroring the registered (cycle-by-cycle) communication
// the paper prescribes for the memory-wrapper handshake.
//
// The kernel also provides run control (Run, RunUntil, RunUntilQuiescent),
// per-cycle hooks for instrumentation, a fault channel through which any
// module can abort simulation with an error, and value-change-dump (VCD)
// tracing for waveform inspection.
package sim
