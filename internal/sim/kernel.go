package sim

import (
	"errors"
	"fmt"
	"time"
)

// Module is a synchronous hardware block. Tick is called exactly once per
// simulated clock cycle; implementations read current signal values and
// write next values. Tick must not retain references into the kernel's
// internal state across cycles other than through signals.
type Module interface {
	// Name identifies the module in diagnostics, stats and VCD scopes.
	Name() string
	// Tick advances the module by one clock cycle. cycle is the index of
	// the cycle being simulated, starting at 0.
	Tick(cycle uint64)
}

// ErrLimit is returned by the RunUntil family when the cycle budget is
// exhausted before the stop condition holds.
var ErrLimit = errors.New("sim: cycle limit reached")

// Kernel owns the clock, the modules and the signals of one simulated
// system. The zero value is not usable; construct with New.
type Kernel struct {
	modules []Module
	signals []committer
	dirty   []committer
	cycle   uint64

	// anyChange records whether the last committed cycle changed at least
	// one signal value; used by RunUntilQuiescent.
	anyChange bool

	fault error

	afterCycle []func(cycle uint64)

	// profiling state; nil unless EnableProfiling was called.
	profTime  []time.Duration
	profTicks []uint64
}

// New returns an empty kernel at cycle 0.
func New() *Kernel {
	return &Kernel{}
}

// Add registers a module. Modules tick in registration order, but because
// signal reads observe pre-cycle state only, the order is unobservable to
// the simulated hardware.
func (k *Kernel) Add(m Module) {
	k.modules = append(k.modules, m)
}

// Modules returns the registered modules in registration order.
func (k *Kernel) Modules() []Module { return k.modules }

// AfterCycle registers fn to run after each cycle's signal commit. Hooks
// are instrumentation: they must not write signals.
func (k *Kernel) AfterCycle(fn func(cycle uint64)) {
	k.afterCycle = append(k.afterCycle, fn)
}

// Fault aborts the simulation at the end of the current cycle with err.
// The first fault wins. Modules use this for conditions that have no
// hardware representation (internal invariant violations), not for
// modelled error responses.
func (k *Kernel) Fault(err error) {
	if k.fault == nil && err != nil {
		k.fault = fmt.Errorf("cycle %d: %w", k.cycle, err)
	}
}

// Err returns the pending fault, if any.
func (k *Kernel) Err() error { return k.fault }

// Cycle returns the number of fully simulated cycles.
func (k *Kernel) Cycle() uint64 { return k.cycle }

func (k *Kernel) addSignal(s committer) {
	k.signals = append(k.signals, s)
}

func (k *Kernel) markDirty(s committer) {
	k.dirty = append(k.dirty, s)
}

// Step simulates exactly one clock cycle. It returns the first module
// fault raised during the cycle, if any.
func (k *Kernel) Step() error {
	if k.fault != nil {
		return k.fault
	}
	c := k.cycle
	if k.profTime != nil {
		k.profiledTick(c)
	} else {
		for _, m := range k.modules {
			m.Tick(c)
		}
	}
	changed := false
	for _, s := range k.dirty {
		if s.commit() {
			changed = true
		}
	}
	k.dirty = k.dirty[:0]
	k.anyChange = changed
	k.cycle++
	for _, fn := range k.afterCycle {
		fn(c)
	}
	return k.fault
}

// Run simulates n cycles or stops early on a fault.
func (k *Kernel) Run(n uint64) error {
	for i := uint64(0); i < n; i++ {
		if err := k.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil steps the kernel until pred returns true (checked after each
// cycle), a fault occurs, or limit cycles have elapsed, in which case it
// returns ErrLimit. It returns the number of cycles stepped by this call.
func (k *Kernel) RunUntil(pred func() bool, limit uint64) (uint64, error) {
	for n := uint64(0); n < limit; n++ {
		if err := k.Step(); err != nil {
			return n + 1, err
		}
		if pred() {
			return n + 1, nil
		}
	}
	return limit, ErrLimit
}

// RunUntilQuiescent steps the kernel until idle consecutive cycles commit
// no signal change, or limit cycles elapse (returning ErrLimit). A system
// whose signals have stopped changing has reached a fixed point: no module
// can observe anything new. Useful for draining pipelines in tests.
func (k *Kernel) RunUntilQuiescent(idle, limit uint64) (uint64, error) {
	quiet := uint64(0)
	for n := uint64(0); n < limit; n++ {
		if err := k.Step(); err != nil {
			return n + 1, err
		}
		if k.anyChange {
			quiet = 0
		} else {
			quiet++
			if quiet >= idle {
				return n + 1, nil
			}
		}
	}
	return limit, ErrLimit
}
