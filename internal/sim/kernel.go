package sim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Module is a synchronous hardware block. Tick is called exactly once per
// simulated clock cycle; implementations read current signal values and
// write next values. Tick must not retain references into the kernel's
// internal state across cycles other than through signals.
type Module interface {
	// Name identifies the module in diagnostics, stats and VCD scopes.
	Name() string
	// Tick advances the module by one clock cycle. cycle is the index of
	// the cycle being simulated, starting at 0.
	Tick(cycle uint64)
}

// ErrLimit is returned by the RunUntil family when the cycle budget is
// exhausted before the stop condition holds.
var ErrLimit = errors.New("sim: cycle limit reached")

// Kernel owns the clock, the modules and the signals of one simulated
// system. The zero value is not usable; construct with New.
//
// The kernel runs event-driven by default: whenever every module is
// asleep (see Sleeper in sched.go) and no signal changed, the run loops
// advance the clock in one jump to the earliest wake point instead of
// ticking idle modules cycle by cycle. SetLockstep(true) restores
// unconditional per-cycle ticking; the two modes are observably
// identical.
type Kernel struct {
	modules []Module
	signals []committer
	dirty   []committer
	cycle   uint64

	// anyChange records whether the last committed cycle changed at least
	// one signal value; used by RunUntilQuiescent and as the wakeup rule
	// of the event-driven scheduler.
	anyChange bool

	// fault is guarded by faultMu only while a parallel tick phase is in
	// flight (modules may Fault concurrently); everywhere else the kernel
	// is single-threaded and reads it directly.
	fault   error
	faultMu sync.Mutex

	afterCycle []func(cycle uint64)

	// scheduling state (see sched.go).
	lockstep      bool
	started       bool // at least one cycle stepped; skips allowed after
	stepped       uint64
	skipped       uint64
	skipSpans     uint64
	sleepers      []Sleeper
	sleepersValid bool
	allSleepers   bool
	awakeHint     int

	// parallel execution state (see parallel.go). workers is the
	// configured shard budget (0 = never configured = sequential);
	// shards is the active partition (nil = sequential tick path);
	// parallelPhase is true while worker goroutines own the tick phase,
	// rerouting Signal.Set to the concurrent dirty list: parDirty is a
	// slot array (one slot per signal suffices, each signal enlists at
	// most once per cycle) whose cursor parDirtyN concurrent drivers
	// claim slots from.
	workers       int
	shards        []shardInfo
	shardsValid   bool
	pool          *tickPool
	parallelPhase bool
	parDirty      []committer
	parDirtyN     atomic.Int64
	awakeBuf      []int // scratch: awake shard ids, reused across cycles
	slotBuf       []int // scratch: worker slots for a subset release

	// profiling state; nil unless EnableProfiling was called.
	profTime  []time.Duration
	profTicks []uint64
}

// New returns an empty kernel at cycle 0.
func New() *Kernel {
	return &Kernel{}
}

// Add registers a module. Modules tick in registration order, but because
// signal reads observe pre-cycle state only, the order is unobservable to
// the simulated hardware.
func (k *Kernel) Add(m Module) {
	k.modules = append(k.modules, m)
	k.sleepersValid = false
	k.shardsValid = false
}

// Modules returns the registered modules in registration order.
func (k *Kernel) Modules() []Module { return k.modules }

// AfterCycle registers fn to run after each stepped cycle's signal
// commit. Hooks are instrumentation: they must not write signals. In
// event-driven mode hooks do not fire for skipped cycles — by
// construction nothing observable happens during those, but hooks whose
// output depends on being called every cycle (rather than on value
// changes) should pin the kernel to lockstep.
func (k *Kernel) AfterCycle(fn func(cycle uint64)) {
	k.afterCycle = append(k.afterCycle, fn)
}

// Fault aborts the simulation at the end of the current cycle with err.
// The first fault wins. Modules use this for conditions that have no
// hardware representation (internal invariant violations), not for
// modelled error responses. Safe to call from concurrently ticking
// modules; when several modules fault in the same parallel cycle, which
// one is reported is unspecified (the faulting cycle is still exact —
// sequential runs keep registration-order first-wins).
func (k *Kernel) Fault(err error) {
	if err == nil {
		return
	}
	k.faultMu.Lock()
	if k.fault == nil {
		k.fault = fmt.Errorf("cycle %d: %w", k.cycle, err)
	}
	k.faultMu.Unlock()
}

// Err returns the pending fault, if any.
func (k *Kernel) Err() error { return k.fault }

// Cycle returns the number of fully simulated cycles.
func (k *Kernel) Cycle() uint64 { return k.cycle }

func (k *Kernel) addSignal(s committer) int {
	k.signals = append(k.signals, s)
	return len(k.signals) - 1
}

func (k *Kernel) markDirty(s committer) {
	if k.parallelPhase {
		k.parDirty[k.parDirtyN.Add(1)-1] = s
		return
	}
	k.dirty = append(k.dirty, s)
}

// Step simulates exactly one clock cycle, ticking every module. It never
// skips — single-stepping is the finest-grained control the kernel
// offers; idle jumps happen only inside the run loops. It returns the
// first module fault raised during the cycle, if any.
func (k *Kernel) Step() error {
	if k.fault != nil {
		return k.fault
	}
	c := k.cycle
	par := false
	switch {
	case k.profTime != nil:
		// Profiling times modules individually, which only makes sense
		// sequentially; it takes precedence over parallel ticking.
		k.profiledTick(c)
	default:
		if !k.shardsValid {
			k.reshard()
		}
		if k.shards != nil {
			// parallelTick reports false when its fast path ticked the
			// cycle inline on this goroutine — then the sequential
			// dirty list already holds every write.
			par = k.parallelTick(c)
		} else {
			for _, m := range k.modules {
				m.Tick(c)
			}
		}
	}
	changed := false
	if par {
		// Merge the concurrent and sequential dirty lists — host writes
		// pending from before the step live on the sequential one — and
		// commit in registration order: O(dirty), deterministic.
		changed = k.commitMerged()
	} else {
		for _, s := range k.dirty {
			if s.commit() {
				changed = true
			}
		}
	}
	k.dirty = k.dirty[:0]
	k.anyChange = changed
	k.cycle++
	k.stepped++
	k.started = true
	for _, fn := range k.afterCycle {
		fn(c)
	}
	return k.fault
}

// Run simulates n cycles or stops early on a fault. In event-driven mode
// idle spans inside the n cycles are jumped over; the kernel still lands
// exactly n cycles later.
func (k *Kernel) Run(n uint64) error {
	for done := uint64(0); done < n; {
		adv, _, err := k.advance(n - done)
		done += adv
		if err != nil {
			return err
		}
	}
	return nil
}

// RunUntil advances the kernel until pred returns true, a fault occurs,
// or limit cycles have elapsed, in which case it returns ErrLimit. It
// returns the number of simulated cycles advanced by this call (skipped
// cycles included).
//
// pred is evaluated after every stepped cycle and after every idle jump.
// It must depend only on state that changes when modules tick (module
// flags like "halted", signal values); a pure-wait counter crossing a
// threshold mid-jump is observed only at the end of the jump.
func (k *Kernel) RunUntil(pred func() bool, limit uint64) (uint64, error) {
	for done := uint64(0); done < limit; {
		adv, _, err := k.advance(limit - done)
		done += adv
		if err != nil {
			return done, err
		}
		if pred() {
			return done, nil
		}
	}
	return limit, ErrLimit
}

// RunUntilQuiescent advances the kernel until idle consecutive cycles
// commit no signal change, or limit cycles elapse (returning ErrLimit).
// A system whose signals have stopped changing has reached a fixed
// point: no module can observe anything new. Useful for draining
// pipelines in tests. Skipped cycles count as quiet: the scheduler only
// skips when no signal changed, so both modes stop at the same cycle.
func (k *Kernel) RunUntilQuiescent(idle, limit uint64) (uint64, error) {
	quiet := uint64(0)
	for done := uint64(0); done < limit; {
		// Cap the advance so an idle jump cannot overshoot the cycle at
		// which lockstep would have declared quiescence.
		budget := limit - done
		need := uint64(1)
		if idle > quiet {
			need = idle - quiet
		}
		if need < budget {
			budget = need
		}
		adv, steppedCycle, err := k.advance(budget)
		done += adv
		if err != nil {
			return done, err
		}
		if steppedCycle && k.anyChange {
			quiet = 0
		} else {
			quiet += adv
			if quiet >= idle {
				return done, nil
			}
		}
	}
	return limit, ErrLimit
}
