package sim

// This file implements the event-driven side of the kernel: the Sleeper
// capability through which modules declare when they next need to run,
// and the idle-skip machinery that advances the clock in one jump across
// spans in which every module is provably inert.
//
// The scheduler is conservative by design. A skip happens only when
//
//   - every registered module implements Sleeper,
//   - every module reports a wake cycle strictly in the future (or
//     WakeNever), and
//   - the previous cycle committed no signal change and no host-written
//     signal is pending (the dirty-signal wakeup rule: any change
//     anywhere wakes everything).
//
// Under those conditions the cycles between "now" and the earliest wake
// point consist exclusively of pure-wait ticks: countdown decrements and
// per-cycle busy/stall counters. Skip(n) replays exactly those effects in
// O(1), so the jump is observably identical to lockstep — same cycle
// counts, same stats, same signal traces — while the host pays nothing
// per skipped cycle.

// WakeNever is returned from NextWake by a module that needs no further
// ticks until some signal it observes changes value (or, for a module
// that is finished forever, at all).
const WakeNever = ^uint64(0)

// Sleeper is the optional capability a Module implements to participate
// in idle-skip scheduling. Modules that do not implement it are assumed
// to need a tick every cycle, which disables skipping for the whole
// kernel (correct, just slow — the lockstep behavior).
//
// The contract binding NextWake, Skip and Tick together:
//
//   - NextWake(now) returns the earliest cycle ≥ now at which the module
//     must tick, under the assumption that no signal changes before
//     then. Returning now means "I am active"; returning WakeNever means
//     "only a signal change can give me work".
//   - Every tick the module would have received in [now, NextWake(now))
//     must be a pure-wait tick: its only effects are decrementing
//     internal countdowns and incrementing per-cycle counters.
//   - Skip(n) must reproduce the cumulative effect of n such pure-wait
//     ticks. The kernel guarantees n ≤ NextWake(now) − now for every
//     module (and calls Skip on all modules with the same n), then
//     resumes ticking, so Skip(n) followed by a Tick is equivalent to
//     n+1 lockstep ticks.
//
// The kernel re-queries NextWake at every skip opportunity, so the
// answer may depend freely on current module state — including state
// mutated by host code between steps (e.g. a DMA descriptor enqueued
// from a test).
type Sleeper interface {
	Module
	NextWake(now uint64) uint64
	Skip(n uint64)
}

// SchedStats summarizes how the kernel advanced the clock.
type SchedStats struct {
	// Stepped counts cycles simulated by ticking every module.
	Stepped uint64
	// Skipped counts cycles the event-driven scheduler jumped over.
	Skipped uint64
	// Spans counts contiguous skipped spans (each a single clock jump).
	Spans uint64
	// Lockstep reports whether the kernel is pinned to lockstep stepping.
	Lockstep bool
	// Workers is the configured tick-phase parallelism (1 = sequential;
	// see Kernel.SetWorkers). Orthogonal to Lockstep: lockstep governs
	// idle-skipping, workers govern how one cycle's ticks are executed.
	Workers int
}

// Sched returns the kernel's scheduling counters.
func (k *Kernel) Sched() SchedStats {
	return SchedStats{
		Stepped:  k.stepped,
		Skipped:  k.skipped,
		Spans:    k.skipSpans,
		Lockstep: k.lockstep,
		Workers:  k.Workers(),
	}
}

// SetLockstep pins the kernel to lockstep stepping (every module ticked
// every cycle) when on is true. The default is event-driven: the kernel
// skips idle spans whenever every module sleeps. The two modes are
// observably identical — lockstep exists as an escape hatch and as the
// reference side of differential tests.
func (k *Kernel) SetLockstep(on bool) { k.lockstep = on }

// Lockstep reports whether the kernel is pinned to lockstep stepping.
func (k *Kernel) Lockstep() bool { return k.lockstep }

// sleeperSet returns the cached Sleeper view of the module list, and
// whether every module participates. Invalidated by Add.
func (k *Kernel) sleeperSet() ([]Sleeper, bool) {
	if !k.sleepersValid {
		k.sleepersValid = true
		k.allSleepers = true
		k.sleepers = k.sleepers[:0]
		for _, m := range k.modules {
			s, ok := m.(Sleeper)
			if !ok {
				k.allSleepers = false
				break
			}
			k.sleepers = append(k.sleepers, s)
		}
	}
	return k.sleepers, k.allSleepers
}

// skipTo attempts one idle jump of at most budget cycles. It returns the
// number of cycles skipped (0 when any module is awake or opts out).
// Callers have already established the dirty-signal preconditions.
func (k *Kernel) skipTo(budget uint64) uint64 {
	sleepers, ok := k.sleeperSet()
	if !ok {
		return 0
	}
	now := k.cycle
	// Fast bail-out: an awake module tends to stay awake (a CPU retiring
	// an instruction per cycle keeps the kernel stepping for long runs),
	// so probe the module that defeated the previous skip attempt before
	// scanning everyone. NextWake is side-effect free, so the hint module
	// being queried again in the full scan is harmless.
	if h := k.awakeHint; h < len(sleepers) {
		if w := sleepers[h].NextWake(now); w <= now {
			return 0
		}
	}
	wake := uint64(WakeNever)
	for i, s := range sleepers {
		w := s.NextWake(now)
		if w <= now {
			k.awakeHint = i
			return 0
		}
		if w < wake {
			wake = w
		}
	}
	n := budget
	if wake != WakeNever && wake-now < n {
		n = wake - now
	}
	for _, s := range sleepers {
		s.Skip(n)
	}
	k.cycle += n
	k.skipped += n
	k.skipSpans++
	return n
}

// advance simulates between 1 and budget cycles: an optional idle jump
// followed by at most one real step. It returns the number of cycles
// advanced and whether the final cycle was actually stepped (false when
// the whole budget was consumed by the jump). This is the single place
// run-loop scheduling lives; Run, RunUntil and RunUntilQuiescent are
// thin loops over it.
func (k *Kernel) advance(budget uint64) (adv uint64, stepped bool, err error) {
	if k.fault != nil {
		return 0, false, k.fault
	}
	if !k.lockstep && k.started && !k.anyChange && len(k.dirty) == 0 {
		if n := k.skipTo(budget); n > 0 {
			if n == budget {
				return n, false, nil
			}
			return n + 1, true, k.Step()
		}
	}
	return 1, true, k.Step()
}
