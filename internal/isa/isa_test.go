package isa

import (
	"math/rand"
	"testing"
)

func TestEncodeDecodeRoundTripAllClasses(t *testing.T) {
	cases := []Instr{
		{Class: ClassDPReg, DP: ADD, Rd: 1, Rn: 2, Rm: 3},
		{Class: ClassDPReg, DP: MOV, Rd: 15, Rm: 0},
		{Cond: EQ, Class: ClassDPImm, DP: SUB, Rd: 4, Rn: 4, Imm: 4095},
		{Class: ClassDPImm, DP: CMP, Rn: 7, Imm: 0},
		{Class: ClassMem, Mem: LDR, Rd: 0, Rn: 13, Off: -2048},
		{Class: ClassMem, Mem: STRH, Rd: 9, Rn: 1, Off: 2047},
		{Class: ClassBranch, Br: B, Off: -1},
		{Cond: NE, Class: ClassBranch, Br: B, Off: brOffMax},
		{Class: ClassBranch, Br: BL, Off: brOffMin},
		{Class: ClassBranch, Br: BX, Rm: 14},
		{Class: ClassMul, Mul: MUL, Rd: 1, Rn: 2, Rm: 3},
		{Class: ClassMul, Mul: MLA, Rd: 1, Rn: 2, Rm: 3, Ra: 4},
		{Class: ClassSWI, Imm: 0xABCDEF},
		{Class: ClassMovW, Rd: 5, Imm: 0xFFFF},
		{Class: ClassMovW, Rd: 5, Imm: 0x1234, High: true},
		{Class: ClassSys, Sys: NOP},
		{Class: ClassSys, Sys: HLT},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x): %v", w, err)
		}
		if got != in {
			t.Errorf("round trip: %+v → %#08x → %+v", in, w, got)
		}
	}
}

func TestEncodeDecodeRoundTripFuzz(t *testing.T) {
	// Randomly generated legal instructions must round-trip exactly.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		in := Instr{Cond: Cond(rng.Intn(int(numCond)))}
		switch rng.Intn(8) {
		case 0:
			in.Class = ClassDPReg
			in.DP = DPOp(rng.Intn(int(numDPOp)))
			in.Rd, in.Rn, in.Rm = uint8(rng.Intn(16)), uint8(rng.Intn(16)), uint8(rng.Intn(16))
		case 1:
			in.Class = ClassDPImm
			in.DP = DPOp(rng.Intn(int(numDPOp)))
			in.Rd, in.Rn = uint8(rng.Intn(16)), uint8(rng.Intn(16))
			in.Imm = uint32(rng.Intn(maxImm12 + 1))
		case 2:
			in.Class = ClassMem
			in.Mem = MemOp(rng.Intn(int(numMemOp)))
			in.Rd, in.Rn = uint8(rng.Intn(16)), uint8(rng.Intn(16))
			in.Off = int32(rng.Intn(memOffMax-memOffMin+1) + memOffMin)
		case 3:
			in.Class = ClassBranch
			in.Br = BrOp(rng.Intn(int(numBrOp)))
			if in.Br == BX {
				in.Rm = uint8(rng.Intn(16))
			} else {
				in.Off = int32(rng.Intn(brOffMax-brOffMin+1) + brOffMin)
			}
		case 4:
			in.Class = ClassMul
			in.Mul = MulOp(rng.Intn(int(numMulOp)))
			in.Rd, in.Rn, in.Rm = uint8(rng.Intn(16)), uint8(rng.Intn(16)), uint8(rng.Intn(16))
			if in.Mul == MLA {
				in.Ra = uint8(rng.Intn(16))
			}
		case 5:
			in.Class = ClassSWI
			in.Imm = uint32(rng.Intn(maxImm24 + 1))
		case 6:
			in.Class = ClassMovW
			in.Rd = uint8(rng.Intn(16))
			in.Imm = uint32(rng.Intn(maxImm16 + 1))
			in.High = rng.Intn(2) == 1
		case 7:
			in.Class = ClassSys
			in.Sys = SysOp(rng.Intn(int(numSysOp)))
		}
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x): %v (from %+v)", w, err, in)
		}
		if got != in {
			t.Fatalf("round trip: %+v → %#08x → %+v", in, w, got)
		}
	}
}

func TestEncodeRejectsBadFields(t *testing.T) {
	cases := []Instr{
		{Class: ClassDPImm, DP: MOV, Rd: 1, Imm: maxImm12 + 1},
		{Class: ClassDPReg, DP: numDPOp},
		{Class: ClassMem, Mem: LDR, Off: memOffMax + 1},
		{Class: ClassMem, Mem: LDR, Off: memOffMin - 1},
		{Class: ClassMem, Mem: numMemOp},
		{Class: ClassBranch, Br: B, Off: brOffMax + 1},
		{Class: ClassBranch, Br: numBrOp},
		{Class: ClassSWI, Imm: maxImm24 + 1},
		{Class: ClassMovW, Imm: maxImm16 + 1},
		{Class: ClassSys, Sys: numSysOp},
		{Class: ClassDPReg, DP: ADD, Rd: 16},
		{Cond: numCond, Class: ClassSys},
		{Class: Class(9)},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) succeeded, want error", in)
		}
	}
}

func TestDecodeRejectsUndefined(t *testing.T) {
	bad := []uint32{
		0xF0000000,                        // condition 15
		uint32(ClassDPReg)<<24 | 0xF<<20,  // dp op 15
		uint32(ClassMem)<<24 | 0xF<<20,    // mem op 15
		uint32(ClassBranch)<<24 | 0x7<<21, // branch op 7
		uint32(ClassMul)<<24 | 0xF<<20,    // mul op 15
		uint32(ClassMovW)<<24 | 0x5<<20,   // movw form 5
		uint32(ClassSys)<<24 | 0xF<<20,    // sys op 15
		uint32(8) << 24,                   // class 8
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) succeeded, want error", w)
		}
	}
}

func TestCondHolds(t *testing.T) {
	// flags: n, z, c, v
	cases := []struct {
		c           Cond
		n, z, cf, v bool
		want        bool
	}{
		{AL, false, false, false, false, true},
		{EQ, false, true, false, false, true},
		{EQ, false, false, false, false, false},
		{NE, false, false, false, false, true},
		{LT, true, false, false, false, true},  // N!=V
		{LT, true, false, false, true, false},  // N==V
		{GE, false, false, false, false, true}, // N==V
		{LE, false, true, false, false, true},
		{GT, false, false, false, false, true},
		{GT, false, true, false, false, false},
		{CS, false, false, true, false, true},
		{CC, false, false, true, false, false},
		{MI, true, false, false, false, true},
		{PL, true, false, false, false, false},
		{VS, false, false, false, true, true},
		{VC, false, false, false, true, false},
		{Cond(200), false, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.c.Holds(c.n, c.z, c.cf, c.v); got != c.want {
			t.Errorf("%v.Holds(%v,%v,%v,%v) = %v, want %v", c.c, c.n, c.z, c.cf, c.v, got, c.want)
		}
	}
}

func TestMemOpProperties(t *testing.T) {
	if !LDR.IsLoad() || !LDRB.IsLoad() || !LDRH.IsLoad() {
		t.Error("loads misclassified")
	}
	if STR.IsLoad() || STRB.IsLoad() || STRH.IsLoad() {
		t.Error("stores misclassified")
	}
	if LDR.Width() != 4 || LDRH.Width() != 2 || STRB.Width() != 1 {
		t.Error("widths wrong")
	}
}

func TestStringMethods(t *testing.T) {
	if AL.String() != "" || EQ.String() != "eq" {
		t.Error("Cond strings wrong")
	}
	if ADD.String() != "add" || DPOp(99).String() == "" {
		t.Error("DPOp strings wrong")
	}
	if LDRB.String() != "ldrb" || MemOp(99).String() == "" {
		t.Error("MemOp strings wrong")
	}
}
