package isa

import (
	"encoding/binary"
	"strings"
	"testing"
)

// word extracts the n-th little-endian word of the program image.
func word(p *Program, n int) uint32 {
	return binary.LittleEndian.Uint32(p.Code[n*4:])
}

// decodeAt decodes the n-th instruction word.
func decodeAt(t *testing.T, p *Program, n int) Instr {
	t.Helper()
	in, err := Decode(word(p, n))
	if err != nil {
		t.Fatalf("decode word %d (%#08x): %v", n, word(p, n), err)
	}
	return in
}

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble(`
		; a tiny program
		start:
			mov r0, #42        @ the answer
			add r1, r0, #1     // and one more
			add r2, r0, r1
			hlt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 16 {
		t.Fatalf("code size = %d, want 16", len(p.Code))
	}
	if in := decodeAt(t, p, 0); in.Class != ClassDPImm || in.DP != MOV || in.Rd != 0 || in.Imm != 42 {
		t.Errorf("instr 0 = %+v", in)
	}
	if in := decodeAt(t, p, 2); in.Class != ClassDPReg || in.DP != ADD || in.Rm != 1 {
		t.Errorf("instr 2 = %+v", in)
	}
	if got := p.Symbols["start"]; got != 0 {
		t.Errorf("start = %d, want 0", got)
	}
}

func TestAssembleBranchesAndLabels(t *testing.T) {
	p, err := Assemble(`
		loop:
			sub r0, r0, #1
			cmp r0, #0
			bne loop
			b   end
			nop
		end:
			hlt
	`)
	if err != nil {
		t.Fatal(err)
	}
	// bne loop: at address 8, target 0 → off = (0-12)/4 = -3
	if in := decodeAt(t, p, 2); in.Class != ClassBranch || in.Cond != NE || in.Off != -3 {
		t.Errorf("bne = %+v, want off -3", in)
	}
	// b end: at address 12, target 20 → off = (20-16)/4 = 1
	if in := decodeAt(t, p, 3); in.Off != 1 {
		t.Errorf("b end = %+v, want off 1", in)
	}
}

func TestAssembleForwardReference(t *testing.T) {
	p, err := Assemble(`
			b skip
			.word 0xDEADBEEF
		skip:	hlt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if in := decodeAt(t, p, 0); in.Off != 1 {
		t.Errorf("forward branch off = %d, want 1", in.Off)
	}
	if w := word(p, 1); w != 0xDEADBEEF {
		t.Errorf("data word = %#x", w)
	}
}

func TestAssembleLoadStoreForms(t *testing.T) {
	p, err := Assemble(`
		ldr  r1, [r2]
		ldr  r1, [r2, #8]
		str  r3, [sp, #-4]
		ldrb r4, [r0, #1]
		strh r5, [lr, #2]
	`)
	if err != nil {
		t.Fatal(err)
	}
	if in := decodeAt(t, p, 0); in.Mem != LDR || in.Off != 0 {
		t.Errorf("ldr [r2] = %+v", in)
	}
	if in := decodeAt(t, p, 2); in.Mem != STR || in.Rn != RegSP || in.Off != -4 {
		t.Errorf("str [sp,-4] = %+v", in)
	}
	if in := decodeAt(t, p, 4); in.Mem != STRH || in.Rn != RegLR || in.Off != 2 {
		t.Errorf("strh = %+v", in)
	}
}

func TestAssembleLiPseudo(t *testing.T) {
	p, err := Assemble(`li r7, 0xDEADBEEF`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 8 {
		t.Fatalf("li must expand to 2 instructions, got %d bytes", len(p.Code))
	}
	lo := decodeAt(t, p, 0)
	hi := decodeAt(t, p, 1)
	if lo.Class != ClassMovW || lo.High || lo.Imm != 0xBEEF || lo.Rd != 7 {
		t.Errorf("movw = %+v", lo)
	}
	if !hi.High || hi.Imm != 0xDEAD {
		t.Errorf("movt = %+v", hi)
	}
}

func TestAssembleLiWithLabel(t *testing.T) {
	p, err := Assemble(`
			li r0, table
			hlt
		table:	.word 1, 2, 3
	`)
	if err != nil {
		t.Fatal(err)
	}
	if lo := decodeAt(t, p, 0); lo.Imm != 12 {
		t.Errorf("li low = %#x, want table address 12", lo.Imm)
	}
}

func TestAssembleRetPseudo(t *testing.T) {
	p, err := Assemble(`ret`)
	if err != nil {
		t.Fatal(err)
	}
	if in := decodeAt(t, p, 0); in.Br != BX || in.Rm != RegLR {
		t.Errorf("ret = %+v, want bx lr", in)
	}
}

func TestAssembleDirectives(t *testing.T) {
	p, err := Assemble(`
		.equ MAGIC, 0x55
		.org 8
		data:
		.word MAGIC, MAGIC+1, data
		.half 0x1234, 0x5678
		.byte 1, 2, 3
		.align 4
		.ascii "AB"
		.asciz "C"
		.space 3
		end:
	`)
	if err != nil {
		t.Fatal(err)
	}
	if word(p, 2) != 0x55 || word(p, 3) != 0x56 || word(p, 4) != 8 {
		t.Errorf("words = %#x %#x %#x", word(p, 2), word(p, 3), word(p, 4))
	}
	if p.Code[20] != 0x34 || p.Code[21] != 0x12 {
		t.Errorf(".half layout wrong: % x", p.Code[20:24])
	}
	if p.Code[24] != 1 || p.Code[26] != 3 {
		t.Errorf(".byte layout wrong")
	}
	// .align 4 pads 27 → 28; ascii at 28.
	if p.Code[28] != 'A' || p.Code[29] != 'B' || p.Code[30] != 'C' || p.Code[31] != 0 {
		t.Errorf("strings wrong: % x", p.Code[28:32])
	}
	if got := p.Symbols["end"]; got != 35 {
		t.Errorf("end = %d, want 35", got)
	}
}

func TestAssembleCharLiteralAndExpr(t *testing.T) {
	p, err := Assemble(`
		mov r0, #'A'
		mov r1, #'A'+1
		.equ BASE, 100
		mov r2, #BASE-90
	`)
	if err != nil {
		t.Fatal(err)
	}
	if in := decodeAt(t, p, 0); in.Imm != 'A' {
		t.Errorf("char imm = %d", in.Imm)
	}
	if in := decodeAt(t, p, 1); in.Imm != 'B' {
		t.Errorf("char+1 imm = %d", in.Imm)
	}
	if in := decodeAt(t, p, 2); in.Imm != 10 {
		t.Errorf("expr imm = %d", in.Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frob r0", "unknown mnemonic"},
		{"bad register", "mov r16, #0", "bad register"},
		{"imm too large", "mov r0, #5000", "exceeds 12 bits"},
		{"undefined label", "b nowhere", "undefined symbol"},
		{"duplicate label", "x:\nx:", "duplicate label"},
		{"bad directive", ".frobnicate 3", "unknown directive"},
		{"org backwards", ".org 8\n.org 4", "moves backwards"},
		{"branch operand count", "b a, b", "one operand"},
		{"mem offset range", "ldr r0, [r1, #5000]", "out of range"},
		{"bad address", "ldr r0, r1", "bad address"},
		{"swi form", "swi 3", "needs #imm"},
		{"bad align", ".align 3", "power of two"},
		{"equ dup", ".equ a, 1\n.equ a, 2", "duplicate symbol"},
		{"bad string", ".ascii abc", "quoted string"},
		{"wrong operand count", "add r0, r1", "wrong operand count"},
		{"movt range", "movt r0, #0x10000", "exceeds 16 bits"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatal("assembled successfully, want error")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestAssembleReportsAllErrors(t *testing.T) {
	_, err := Assemble("frob r0\nmov r77, #0\nldr r0, r1")
	if err == nil {
		t.Fatal("want errors")
	}
	msg := err.Error()
	for _, want := range []string{"line 1", "line 2", "line 3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestDisassembleRoundTripThroughAssembler(t *testing.T) {
	// Disassembling an assembled program and re-assembling it yields the
	// identical image (for programs without data or pseudo-ops).
	src := `
		mov r0, #1
		mvn r1, r0
		add r2, r0, #100
		sub r3, r2, r0
		rsb r4, r3, #7
		and r5, r4, r3
		orr r6, r5, #15
		eor r7, r6, r5
		bic r8, r7, #3
		cmp r8, r0
		cmn r8, #1
		tst r8, r1
		lsl r9, r8, #4
		lsr r10, r9, r0
		asr r11, r10, #2
		mul r12, r11, r0
		mla r12, r11, r0, r2
		movw r1, #0xBEEF
		movt r1, #0xDEAD
		ldr r2, [r1, #4]
		strb r2, [sp, #-1]
		swi #3
		nop
		hlt
	`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i := 0; i*4 < len(p1.Code); i++ {
		lines = append(lines, DisassembleWord(word(p1, i), uint32(i*4)))
	}
	p2, err := Assemble(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, strings.Join(lines, "\n"))
	}
	if len(p1.Code) != len(p2.Code) {
		t.Fatalf("size mismatch %d vs %d", len(p1.Code), len(p2.Code))
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Fatalf("byte %d differs: %#x vs %#x\ndisasm: %s",
				i, p1.Code[i], p2.Code[i], lines[i/4])
		}
	}
}

func TestDisassembleBranches(t *testing.T) {
	p, err := Assemble(`
		start: b start
		beq start
		bl start
		bx lr
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := DisassembleWord(word(p, 0), 0); got != "b 0x0" {
		t.Errorf("disasm = %q", got)
	}
	if got := DisassembleWord(word(p, 1), 4); got != "beq 0x0" {
		t.Errorf("disasm = %q", got)
	}
	if got := DisassembleWord(word(p, 2), 8); got != "bl 0x0" {
		t.Errorf("disasm = %q", got)
	}
	if got := DisassembleWord(word(p, 3), 12); got != "bx r14" {
		t.Errorf("disasm = %q", got)
	}
}

func TestDisassembleUndecodable(t *testing.T) {
	if got := DisassembleWord(0xF0000000, 0); !strings.HasPrefix(got, ".word") {
		t.Errorf("got %q, want .word fallback", got)
	}
}

func TestAssemblePushPopPseudo(t *testing.T) {
	p, err := Assemble(`
		push r0, r4, lr
		pop  r0, r4, lr
	`)
	if err != nil {
		t.Fatal(err)
	}
	// push: sub sp + 3 stores; pop: 3 loads + add sp → 8 instructions.
	if len(p.Code) != 32 {
		t.Fatalf("code = %d bytes, want 32", len(p.Code))
	}
	if in := decodeAt(t, p, 0); in.DP != SUB || in.Rd != RegSP || in.Imm != 12 {
		t.Errorf("push prologue = %+v", in)
	}
	if in := decodeAt(t, p, 2); in.Mem != STR || in.Rd != 4 || in.Off != 4 {
		t.Errorf("push[1] = %+v", in)
	}
	if in := decodeAt(t, p, 7); in.DP != ADD || in.Rd != RegSP || in.Imm != 12 {
		t.Errorf("pop epilogue = %+v", in)
	}
	if _, err := Assemble("push"); err == nil {
		t.Error("bare push accepted")
	}
	if _, err := Assemble("pop r99"); err == nil {
		t.Error("pop of bad register accepted")
	}
}
