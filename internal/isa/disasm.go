package isa

import "fmt"

// Disassemble renders one decoded instruction as assembler syntax. The
// pc argument is the instruction's own address, used to render branch
// targets as absolute addresses (matching what Assemble accepts).
func Disassemble(in Instr, pc uint32) string {
	switch in.Class {
	case ClassDPReg, ClassDPImm:
		op2 := fmt.Sprintf("r%d", in.Rm)
		if in.Class == ClassDPImm {
			op2 = fmt.Sprintf("#%d", in.Imm)
		}
		switch {
		case !in.DP.hasRd():
			return fmt.Sprintf("%s r%d, %s", in.DP, in.Rn, op2)
		case !in.DP.hasRn():
			return fmt.Sprintf("%s r%d, %s", in.DP, in.Rd, op2)
		default:
			return fmt.Sprintf("%s r%d, r%d, %s", in.DP, in.Rd, in.Rn, op2)
		}
	case ClassMem:
		if in.Off == 0 {
			return fmt.Sprintf("%s r%d, [r%d]", in.Mem, in.Rd, in.Rn)
		}
		return fmt.Sprintf("%s r%d, [r%d, #%d]", in.Mem, in.Rd, in.Rn, in.Off)
	case ClassBranch:
		switch in.Br {
		case BX:
			return fmt.Sprintf("bx r%d", in.Rm)
		case BL:
			return fmt.Sprintf("bl 0x%x", branchTarget(pc, in.Off))
		default:
			return fmt.Sprintf("b%s 0x%x", in.Cond, branchTarget(pc, in.Off))
		}
	case ClassMul:
		if in.Mul == MLA {
			return fmt.Sprintf("mla r%d, r%d, r%d, r%d", in.Rd, in.Rn, in.Rm, in.Ra)
		}
		return fmt.Sprintf("mul r%d, r%d, r%d", in.Rd, in.Rn, in.Rm)
	case ClassSWI:
		return fmt.Sprintf("swi #%d", in.Imm)
	case ClassMovW:
		if in.High {
			return fmt.Sprintf("movt r%d, #0x%x", in.Rd, in.Imm)
		}
		return fmt.Sprintf("movw r%d, #0x%x", in.Rd, in.Imm)
	case ClassSys:
		if in.Sys == HLT {
			return "hlt"
		}
		return "nop"
	default:
		return fmt.Sprintf(".word <unencodable %+v>", in)
	}
}

// branchTarget computes the absolute target of a relative branch at pc.
func branchTarget(pc uint32, off int32) uint32 {
	return uint32(int64(pc) + 4 + int64(off)*4)
}

// DisassembleWord decodes and renders a raw instruction word, falling
// back to a .word directive for undecodable values.
func DisassembleWord(w uint32, pc uint32) string {
	in, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word 0x%08x", w)
	}
	return Disassemble(in, pc)
}
