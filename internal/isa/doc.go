// Package isa defines "armlet", the 32-bit ARM-flavoured instruction set
// executed by the framework's instruction-set simulators, together with a
// two-pass assembler and a disassembler.
//
// The original system used SimIT-ARM simulators running cross-compiled
// binaries. ARM's real encodings are irrelevant to the experiments — what
// matters is that independently clocked ISS masters execute software that
// drives the shared-memory wrapper through a memory-mapped interface. So
// armlet is a deliberate clean-room teaching ISA with ARM's flavour
// (16 registers, NZCV flags, condition codes, link-register calls) and
// none of its baggage.
//
// Architecture summary:
//
//   - 16 general registers r0..r15 (aliases: sp=r13, lr=r14). The program
//     counter is separate; r15 is an ordinary register.
//   - NZCV flags, set only by CMP, CMN and TST; conditional execution is
//     encoded for every instruction but the assembler exposes it on
//     branches (beq, bne, blt, bge, ble, bgt, bcs, bcc, bmi, bpl).
//   - Fixed 32-bit little-endian encodings in eight classes: register
//     data-processing, immediate data-processing, load/store, branch
//     (b/bl/bx), multiply (mul/mla), software interrupt (swi), wide moves
//     (movw/movt) and system (nop/hlt).
//   - BL writes the return address to lr; "ret" assembles to "bx lr";
//     "li rd, imm32" expands to movw+movt.
//
// The assembler accepts labels, .org/.word/.space/.ascii/.asciz/.align
// and .equ directives, character literals, and label±offset expressions;
// see Assemble. Encode and Decode round-trip every legal instruction, a
// property the tests check exhaustively by fuzzing.
package isa
