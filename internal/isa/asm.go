package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Program is the output of the assembler: a little-endian memory image
// meant to be loaded at address 0 of an ISS's local memory, plus the
// symbol table for diagnostics and tests.
type Program struct {
	Code    []byte
	Symbols map[string]uint32
}

// Assemble translates armlet assembly source into a Program. The syntax
// is line-oriented:
//
//	; comment  @ comment  // comment
//	label:  mov r0, #42
//	        li  r1, 0x12345678      ; pseudo: movw+movt
//	        ldr r2, [r1, #8]
//	loop:   cmp r0, #0
//	        bne loop
//	        ret                     ; pseudo: bx lr
//	.equ   CHUNK, 64
//	.org   0x100
//	table: .word 1, 2, table, CHUNK+1
//	msg:   .asciz "hello"
//	       .align 4
//	buf:   .space 32
//
// Errors are reported with line numbers; all lines are checked before
// returning, so one Assemble call surfaces every error in the file.
func Assemble(src string) (*Program, error) {
	a := &assembler{symbols: map[string]uint32{}}
	lines := strings.Split(src, "\n")

	// Pass 1: sizes and symbols.
	a.pass = 1
	a.run(lines)
	// Pass 2: encoding with resolved symbols.
	if len(a.errs) == 0 {
		a.pass = 2
		a.lc = 0
		a.out = nil
		a.run(lines)
	}
	if len(a.errs) > 0 {
		return nil, errors.Join(a.errs...)
	}
	return &Program{Code: a.out, Symbols: a.symbols}, nil
}

type assembler struct {
	pass    int
	lc      uint32 // location counter
	out     []byte
	symbols map[string]uint32
	errs    []error
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf("line %d: "+format, append([]any{line}, args...)...))
}

func (a *assembler) run(lines []string) {
	for i, raw := range lines {
		a.line(i+1, raw)
		if len(a.errs) > 32 {
			a.errs = append(a.errs, errors.New("too many errors; giving up"))
			return
		}
	}
}

// stripComment removes ;, @ and // comments, respecting string literals.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"':
			inStr = !inStr
		case inStr:
		case s[i] == ';' || s[i] == '@':
			return s[:i]
		case s[i] == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func (a *assembler) line(n int, raw string) {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return
	}
	// Labels (possibly several) terminated by ':'.
	for {
		idx := strings.Index(s, ":")
		if idx < 0 {
			break
		}
		label := strings.TrimSpace(s[:idx])
		if !isIdent(label) {
			break // not a label; maybe an operand with ':'? none exist, but be safe
		}
		if a.pass == 1 {
			if _, dup := a.symbols[label]; dup {
				a.errorf(n, "duplicate label %q", label)
			}
			a.symbols[label] = a.lc
		}
		s = strings.TrimSpace(s[idx+1:])
		if s == "" {
			return
		}
	}
	if strings.HasPrefix(s, ".") {
		a.directive(n, s)
		return
	}
	a.instruction(n, s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// emit appends little-endian bytes in pass 2 and advances the location
// counter in both passes.
func (a *assembler) emit(b ...byte) {
	if a.pass == 2 {
		a.out = append(a.out, b...)
	}
	a.lc += uint32(len(b))
}

func (a *assembler) emitWord(w uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], w)
	a.emit(b[:]...)
}

// splitOperands splits on commas that are not inside brackets or quotes.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if rest := strings.TrimSpace(s[start:]); rest != "" || len(out) > 0 {
		out = append(out, rest)
	}
	return out
}

func (a *assembler) directive(n int, s string) {
	fields := strings.SplitN(s, " ", 2)
	name := strings.ToLower(strings.TrimSpace(fields[0]))
	arg := ""
	if len(fields) > 1 {
		arg = strings.TrimSpace(fields[1])
	}
	switch name {
	case ".org":
		v, err := a.eval(n, arg)
		if err != nil {
			return
		}
		if v < a.lc {
			a.errorf(n, ".org %#x moves backwards (lc=%#x)", v, a.lc)
			return
		}
		for a.lc < v {
			a.emit(0)
		}
	case ".align":
		v, err := a.eval(n, arg)
		if err != nil {
			return
		}
		if v == 0 || v&(v-1) != 0 {
			a.errorf(n, ".align needs a power of two, got %d", v)
			return
		}
		for a.lc%v != 0 {
			a.emit(0)
		}
	case ".word":
		for _, op := range splitOperands(arg) {
			v, err := a.eval(n, op)
			if err != nil {
				return
			}
			a.emitWord(v)
		}
	case ".half":
		for _, op := range splitOperands(arg) {
			v, err := a.eval(n, op)
			if err != nil {
				return
			}
			a.emit(byte(v), byte(v>>8))
		}
	case ".byte":
		for _, op := range splitOperands(arg) {
			v, err := a.eval(n, op)
			if err != nil {
				return
			}
			a.emit(byte(v))
		}
	case ".space":
		v, err := a.eval(n, arg)
		if err != nil {
			return
		}
		for i := uint32(0); i < v; i++ {
			a.emit(0)
		}
	case ".ascii", ".asciz":
		str, err := parseString(arg)
		if err != nil {
			a.errorf(n, "%v", err)
			return
		}
		a.emit([]byte(str)...)
		if name == ".asciz" {
			a.emit(0)
		}
	case ".equ":
		ops := splitOperands(arg)
		if len(ops) != 2 {
			a.errorf(n, ".equ needs name, value")
			return
		}
		if !isIdent(ops[0]) {
			a.errorf(n, ".equ: bad name %q", ops[0])
			return
		}
		v, err := a.eval(n, ops[1])
		if err != nil {
			return
		}
		if a.pass == 1 {
			if _, dup := a.symbols[ops[0]]; dup {
				a.errorf(n, "duplicate symbol %q", ops[0])
				return
			}
			a.symbols[ops[0]] = v
		}
	default:
		a.errorf(n, "unknown directive %s", name)
	}
}

func parseString(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	return strconv.Unquote(s)
}

// eval computes an expression: term (('+'|'-') term)*, where a term is a
// number (decimal, 0x, 0b, octal via 0o), a character literal, or a
// symbol. In pass 1 unresolved symbols evaluate to 0 (sizes never depend
// on symbol values); in pass 2 they are errors.
func (a *assembler) eval(n int, expr string) (uint32, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		err := fmt.Errorf("empty expression")
		a.errorf(n, "%v", err)
		return 0, err
	}
	// Tokenize into terms and operators, honouring a leading sign.
	var total int64
	sign := int64(1)
	i := 0
	first := true
	for i < len(expr) {
		switch expr[i] {
		case '+':
			sign = 1
			i++
			continue
		case '-':
			sign = -1
			i++
			continue
		case ' ', '\t':
			i++
			continue
		}
		j := i
		if expr[i] == '\'' {
			j = i + 1
			for j < len(expr) && expr[j] != '\'' {
				if expr[j] == '\\' {
					j++
				}
				j++
			}
			if j < len(expr) {
				j++
			}
		} else {
			for j < len(expr) && expr[j] != '+' && expr[j] != '-' && expr[j] != ' ' && expr[j] != '\t' {
				j++
			}
		}
		term := expr[i:j]
		v, err := a.term(n, term)
		if err != nil {
			return 0, err
		}
		_ = first
		total += sign * int64(v)
		sign = 1
		first = false
		i = j
	}
	return uint32(total), nil
}

func (a *assembler) term(n int, t string) (uint32, error) {
	if t == "" {
		err := fmt.Errorf("empty term")
		a.errorf(n, "%v", err)
		return 0, err
	}
	if t[0] == '\'' {
		u, err := strconv.Unquote(t)
		if err != nil || len(u) != 1 {
			err := fmt.Errorf("bad character literal %s", t)
			a.errorf(n, "%v", err)
			return 0, err
		}
		return uint32(u[0]), nil
	}
	if t[0] >= '0' && t[0] <= '9' {
		v, err := strconv.ParseUint(t, 0, 32)
		if err != nil {
			a.errorf(n, "bad number %q", t)
			return 0, err
		}
		return uint32(v), nil
	}
	if v, ok := a.symbols[t]; ok {
		return v, nil
	}
	if a.pass == 1 {
		return 0, nil // forward reference; resolved in pass 2
	}
	err := fmt.Errorf("undefined symbol %q", t)
	a.errorf(n, "%v", err)
	return 0, err
}

// parseReg parses r0..r15, sp, lr.
func parseReg(s string) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "sp":
		return RegSP, nil
	case "lr":
		return RegLR, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n <= 15 {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// branch mnemonics → (op, cond)
var branchTable = map[string]struct {
	br   BrOp
	cond Cond
}{
	"b": {B, AL}, "bal": {B, AL}, "beq": {B, EQ}, "bne": {B, NE},
	"blt": {B, LT}, "bge": {B, GE}, "ble": {B, LE}, "bgt": {B, GT},
	"bcs": {B, CS}, "bcc": {B, CC}, "bmi": {B, MI}, "bpl": {B, PL},
	"bvs": {B, VS}, "bvc": {B, VC},
	"bl": {BL, AL}, "bx": {BX, AL},
}

var dpTable = map[string]DPOp{
	"mov": MOV, "mvn": MVN, "add": ADD, "sub": SUB, "rsb": RSB,
	"and": AND, "orr": ORR, "eor": EOR, "bic": BIC,
	"cmp": CMP, "cmn": CMN, "tst": TST,
	"lsl": LSL, "lsr": LSR, "asr": ASR,
}

var memTable = map[string]MemOp{
	"ldr": LDR, "str": STR, "ldrb": LDRB, "strb": STRB, "ldrh": LDRH, "strh": STRH,
}

func (a *assembler) instruction(n int, s string) {
	fields := strings.SplitN(s, " ", 2)
	mn := strings.ToLower(strings.TrimSpace(fields[0]))
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	ops := splitOperands(rest)

	encode := func(in Instr) {
		w, err := Encode(in)
		if err != nil {
			a.errorf(n, "%v", err)
			return
		}
		a.emitWord(w)
	}

	switch {
	case mn == "nop":
		encode(Instr{Class: ClassSys, Sys: NOP})
	case mn == "hlt":
		encode(Instr{Class: ClassSys, Sys: HLT})
	case mn == "ret":
		encode(Instr{Class: ClassBranch, Br: BX, Rm: RegLR})
	case mn == "swi":
		if len(ops) != 1 || !strings.HasPrefix(ops[0], "#") {
			a.errorf(n, "swi needs #imm")
			return
		}
		v, err := a.eval(n, ops[0][1:])
		if err != nil {
			return
		}
		encode(Instr{Class: ClassSWI, Imm: v})
	case mn == "li":
		// Pseudo: load 32-bit immediate via movw+movt. Always two words
		// so pass-1 sizing is stable.
		if len(ops) != 2 {
			a.errorf(n, "li needs rd, imm32")
			return
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			a.errorf(n, "%v", err)
			return
		}
		arg := strings.TrimPrefix(ops[1], "#")
		v, err := a.eval(n, arg)
		if err != nil {
			return
		}
		encode(Instr{Class: ClassMovW, Rd: rd, Imm: v & 0xFFFF})
		encode(Instr{Class: ClassMovW, Rd: rd, Imm: v >> 16, High: true})
	case mn == "push" || mn == "pop":
		// Pseudo: full-descending stack on sp. "push r0, r4, lr" expands
		// to a sp adjustment plus one store per register; "pop" restores
		// in the same order, so pop'ing the push list round-trips.
		if len(ops) == 0 {
			a.errorf(n, "%s needs at least one register", mn)
			return
		}
		regs := make([]uint8, len(ops))
		for i, op := range ops {
			r, err := parseReg(op)
			if err != nil {
				a.errorf(n, "%v", err)
				return
			}
			regs[i] = r
		}
		if mn == "push" {
			encode(Instr{Class: ClassDPImm, DP: SUB, Rd: RegSP, Rn: RegSP, Imm: uint32(4 * len(regs))})
			for i, r := range regs {
				encode(Instr{Class: ClassMem, Mem: STR, Rd: r, Rn: RegSP, Off: int32(4 * i)})
			}
		} else {
			for i, r := range regs {
				encode(Instr{Class: ClassMem, Mem: LDR, Rd: r, Rn: RegSP, Off: int32(4 * i)})
			}
			encode(Instr{Class: ClassDPImm, DP: ADD, Rd: RegSP, Rn: RegSP, Imm: uint32(4 * len(regs))})
		}
	case mn == "movw" || mn == "movt":
		if len(ops) != 2 {
			a.errorf(n, "%s needs rd, #imm16", mn)
			return
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			a.errorf(n, "%v", err)
			return
		}
		arg := strings.TrimPrefix(ops[1], "#")
		v, err := a.eval(n, arg)
		if err != nil {
			return
		}
		if v > maxImm16 {
			a.errorf(n, "%s immediate %#x exceeds 16 bits", mn, v)
			return
		}
		encode(Instr{Class: ClassMovW, Rd: rd, Imm: v, High: mn == "movt"})
	case mn == "mul" || mn == "mla":
		want := 3
		if mn == "mla" {
			want = 4
		}
		if len(ops) != want {
			a.errorf(n, "%s needs %d operands", mn, want)
			return
		}
		var regs [4]uint8
		for i, op := range ops {
			r, err := parseReg(op)
			if err != nil {
				a.errorf(n, "%v", err)
				return
			}
			regs[i] = r
		}
		in := Instr{Class: ClassMul, Rd: regs[0], Rn: regs[1], Rm: regs[2]}
		if mn == "mla" {
			in.Mul = MLA
			in.Ra = regs[3]
		}
		encode(in)
	default:
		if br, ok := branchTable[mn]; ok {
			a.branch(n, br.br, br.cond, ops, encode)
			return
		}
		if dp, ok := dpTable[mn]; ok {
			a.dataProcessing(n, dp, ops, encode)
			return
		}
		if m, ok := memTable[mn]; ok {
			a.loadStore(n, m, ops, encode)
			return
		}
		a.errorf(n, "unknown mnemonic %q", mn)
	}
}

func (a *assembler) branch(n int, br BrOp, cond Cond, ops []string, encode func(Instr)) {
	if len(ops) != 1 {
		a.errorf(n, "branch needs one operand")
		return
	}
	if br == BX {
		rm, err := parseReg(ops[0])
		if err != nil {
			a.errorf(n, "%v", err)
			return
		}
		encode(Instr{Cond: cond, Class: ClassBranch, Br: BX, Rm: rm})
		return
	}
	target, err := a.eval(n, ops[0])
	if err != nil {
		return
	}
	var off int32
	if a.pass == 2 {
		delta := int64(target) - int64(a.lc) - 4
		if delta%4 != 0 {
			a.errorf(n, "branch target %#x not word-aligned relative to pc", target)
			return
		}
		off = int32(delta / 4)
	}
	encode(Instr{Cond: cond, Class: ClassBranch, Br: br, Off: off})
}

func (a *assembler) dataProcessing(n int, op DPOp, ops []string, encode func(Instr)) {
	in := Instr{Class: ClassDPReg, DP: op}
	idx := 0
	if op.hasRd() {
		if len(ops) <= idx {
			a.errorf(n, "%s: missing destination", op)
			return
		}
		rd, err := parseReg(ops[idx])
		if err != nil {
			a.errorf(n, "%v", err)
			return
		}
		in.Rd = rd
		idx++
	}
	if op.hasRn() {
		if len(ops) <= idx {
			a.errorf(n, "%s: missing first operand", op)
			return
		}
		rn, err := parseReg(ops[idx])
		if err != nil {
			a.errorf(n, "%v", err)
			return
		}
		in.Rn = rn
		idx++
	} else if !op.hasRd() {
		// CMP/CMN/TST read rn as their first operand.
		if len(ops) <= idx {
			a.errorf(n, "%s: missing first operand", op)
			return
		}
		rn, err := parseReg(ops[idx])
		if err != nil {
			a.errorf(n, "%v", err)
			return
		}
		in.Rn = rn
		idx++
	}
	if len(ops) != idx+1 {
		a.errorf(n, "%s: wrong operand count", op)
		return
	}
	last := ops[idx]
	if strings.HasPrefix(last, "#") {
		v, err := a.eval(n, last[1:])
		if err != nil {
			return
		}
		if v > maxImm12 {
			a.errorf(n, "%s: immediate %d exceeds 12 bits (use li)", op, v)
			return
		}
		in.Class = ClassDPImm
		in.Imm = v
	} else {
		rm, err := parseReg(last)
		if err != nil {
			a.errorf(n, "%v", err)
			return
		}
		in.Rm = rm
	}
	encode(in)
}

// loadStore parses "op rd, [rn]" or "op rd, [rn, #off]".
func (a *assembler) loadStore(n int, op MemOp, ops []string, encode func(Instr)) {
	if len(ops) != 2 {
		a.errorf(n, "%s needs rd, [rn(, #off)]", op)
		return
	}
	rd, err := parseReg(ops[0])
	if err != nil {
		a.errorf(n, "%v", err)
		return
	}
	addr := strings.TrimSpace(ops[1])
	if !strings.HasPrefix(addr, "[") || !strings.HasSuffix(addr, "]") {
		a.errorf(n, "%s: bad address %q", op, addr)
		return
	}
	inner := splitOperands(addr[1 : len(addr)-1])
	if len(inner) < 1 || len(inner) > 2 {
		a.errorf(n, "%s: bad address %q", op, addr)
		return
	}
	rn, err := parseReg(inner[0])
	if err != nil {
		a.errorf(n, "%v", err)
		return
	}
	var off int32
	if len(inner) == 2 {
		o := strings.TrimSpace(inner[1])
		if !strings.HasPrefix(o, "#") {
			a.errorf(n, "%s: offset must be #imm", op)
			return
		}
		v, err := a.eval(n, o[1:])
		if err != nil {
			return
		}
		off = int32(v)
		if off < memOffMin || off > memOffMax {
			a.errorf(n, "%s: offset %d out of range", op, off)
			return
		}
	}
	encode(Instr{Class: ClassMem, Mem: op, Rd: rd, Rn: rn, Off: off})
}
