package isa

import "fmt"

// Cond is a condition code selecting whether an instruction executes,
// evaluated against the NZCV flags.
type Cond uint8

// Condition codes. AL (always) is the default.
const (
	AL      Cond = iota
	EQ           // Z
	NE           // !Z
	LT           // N != V (signed less)
	GE           // N == V
	LE           // Z or N != V
	GT           // !Z and N == V
	CS           // C (unsigned ≥)
	CC           // !C (unsigned <)
	MI           // N
	PL           // !N
	VS           // V
	VC           // !V
	numCond = iota
)

var condNames = [...]string{"", "eq", "ne", "lt", "ge", "le", "gt", "cs", "cc", "mi", "pl", "vs", "vc"}

// String returns the assembler suffix ("" for AL).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

// Holds reports whether the condition is satisfied by the given flags.
func (c Cond) Holds(n, z, cf, v bool) bool {
	switch c {
	case AL:
		return true
	case EQ:
		return z
	case NE:
		return !z
	case LT:
		return n != v
	case GE:
		return n == v
	case LE:
		return z || n != v
	case GT:
		return !z && n == v
	case CS:
		return cf
	case CC:
		return !cf
	case MI:
		return n
	case PL:
		return !n
	case VS:
		return v
	case VC:
		return !v
	default:
		return false
	}
}

// Class is the major instruction format.
type Class uint8

// Instruction classes (bits 27:24 of the encoding).
const (
	ClassDPReg  Class = 0 // data processing, register operand
	ClassDPImm  Class = 1 // data processing, 12-bit immediate
	ClassMem    Class = 2 // load/store, base + signed 12-bit offset
	ClassBranch Class = 3 // b / bl / bx
	ClassMul    Class = 4 // mul / mla
	ClassSWI    Class = 5 // software interrupt
	ClassMovW   Class = 6 // movw / movt
	ClassSys    Class = 7 // nop / hlt
)

// DPOp is a data-processing operation.
type DPOp uint8

// Data-processing operations. CMP, CMN and TST are the only flag-setting
// instructions in the ISA.
const (
	MOV     DPOp = iota // rd = op2
	MVN                 // rd = ^op2
	ADD                 // rd = rn + op2
	SUB                 // rd = rn - op2
	RSB                 // rd = op2 - rn
	AND                 // rd = rn & op2
	ORR                 // rd = rn | op2
	EOR                 // rd = rn ^ op2
	BIC                 // rd = rn &^ op2
	CMP                 // flags(rn - op2)
	CMN                 // flags(rn + op2)
	TST                 // flags(rn & op2), N and Z only
	LSL                 // rd = rn << (op2 & 31)
	LSR                 // rd = rn >> (op2 & 31), logical
	ASR                 // rd = rn >> (op2 & 31), arithmetic
	numDPOp = iota
)

var dpNames = [...]string{"mov", "mvn", "add", "sub", "rsb", "and", "orr", "eor", "bic", "cmp", "cmn", "tst", "lsl", "lsr", "asr"}

// String returns the mnemonic.
func (o DPOp) String() string {
	if int(o) < len(dpNames) {
		return dpNames[o]
	}
	return fmt.Sprintf("dp%d", uint8(o))
}

// hasRd reports whether the operation writes a destination register.
func (o DPOp) hasRd() bool { return o != CMP && o != CMN && o != TST }

// hasRn reports whether the operation reads a first source register.
func (o DPOp) hasRn() bool { return o != MOV && o != MVN }

// MemOp is a load/store operation.
type MemOp uint8

// Load/store operations with access width; halfword and byte loads
// zero-extend (use data-processing to sign-extend when needed).
const (
	LDR MemOp = iota
	STR
	LDRB
	STRB
	LDRH
	STRH
	numMemOp = iota
)

var memNames = [...]string{"ldr", "str", "ldrb", "strb", "ldrh", "strh"}

// String returns the mnemonic.
func (o MemOp) String() string {
	if int(o) < len(memNames) {
		return memNames[o]
	}
	return fmt.Sprintf("mem%d", uint8(o))
}

// IsLoad reports whether the operation reads memory into rd.
func (o MemOp) IsLoad() bool { return o == LDR || o == LDRB || o == LDRH }

// Width returns the access width in bytes.
func (o MemOp) Width() uint32 {
	switch o {
	case LDRB, STRB:
		return 1
	case LDRH, STRH:
		return 2
	default:
		return 4
	}
}

// BrOp is a branch operation.
type BrOp uint8

// Branch operations. B and BL take a signed word offset relative to
// pc+4; BL writes pc+4 to lr first. BX jumps to a register.
const (
	B BrOp = iota
	BL
	BX
	numBrOp = iota
)

// MulOp is a multiply operation.
type MulOp uint8

// Multiply operations: MUL rd = rn*rm; MLA rd = rn*rm + ra.
const (
	MUL MulOp = iota
	MLA
	numMulOp = iota
)

// SysOp is a system operation.
type SysOp uint8

// System operations.
const (
	NOP SysOp = iota
	HLT
	numSysOp = iota
)

// SWI service numbers understood by the framework's ISS (the "SWs API"
// layer of Figure 1). They are conventions of the runtime, not of the
// hardware encoding, which accepts any 24-bit service number.
const (
	SWIExit   = 0 // halt; r0 is the exit code
	SWIPutc   = 1 // write low byte of r0 to the console
	SWIPutInt = 2 // write r0 as decimal + '\n' to the console
	SWICycles = 3 // r0 = low 32 bits of the cycle counter
)

// Register aliases.
const (
	RegSP = 13
	RegLR = 14
)

// Instr is one decoded instruction. Fields are meaningful per Class, as
// documented on each class constant; unused fields are zero.
type Instr struct {
	Cond  Cond
	Class Class

	DP  DPOp  // ClassDPReg, ClassDPImm
	Mem MemOp // ClassMem
	Br  BrOp  // ClassBranch
	Mul MulOp // ClassMul
	Sys SysOp // ClassSys

	Rd, Rn, Rm, Ra uint8

	Imm  uint32 // DPImm imm12; MovW imm16; SWI imm24
	Off  int32  // Mem byte offset (±2047); Branch word offset (±2^20)
	High bool   // MovW: movt when set
}

// encoding field limits
const (
	maxImm12  = 1<<12 - 1
	maxImm16  = 1<<16 - 1
	maxImm24  = 1<<24 - 1
	memOffMin = -(1 << 11)
	memOffMax = 1<<11 - 1
	brOffMin  = -(1 << 20)
	brOffMax  = 1<<20 - 1
)

// Encode packs the instruction into its 32-bit representation. It
// validates field ranges and returns a descriptive error for anything
// unencodable.
func Encode(in Instr) (uint32, error) {
	if in.Cond >= numCond {
		return 0, fmt.Errorf("isa: bad condition %d", in.Cond)
	}
	if in.Rd > 15 || in.Rn > 15 || in.Rm > 15 || in.Ra > 15 {
		return 0, fmt.Errorf("isa: register out of range in %+v", in)
	}
	w := uint32(in.Cond)<<28 | uint32(in.Class)<<24
	switch in.Class {
	case ClassDPReg:
		if in.DP >= numDPOp {
			return 0, fmt.Errorf("isa: bad dp op %d", in.DP)
		}
		w |= uint32(in.DP)<<20 | uint32(in.Rd)<<16 | uint32(in.Rn)<<12 | uint32(in.Rm)<<8
	case ClassDPImm:
		if in.DP >= numDPOp {
			return 0, fmt.Errorf("isa: bad dp op %d", in.DP)
		}
		if in.Imm > maxImm12 {
			return 0, fmt.Errorf("isa: immediate %d exceeds 12 bits", in.Imm)
		}
		w |= uint32(in.DP)<<20 | uint32(in.Rd)<<16 | uint32(in.Rn)<<12 | in.Imm
	case ClassMem:
		if in.Mem >= numMemOp {
			return 0, fmt.Errorf("isa: bad mem op %d", in.Mem)
		}
		if in.Off < memOffMin || in.Off > memOffMax {
			return 0, fmt.Errorf("isa: memory offset %d out of range", in.Off)
		}
		w |= uint32(in.Mem)<<20 | uint32(in.Rd)<<16 | uint32(in.Rn)<<12 | uint32(in.Off)&0xFFF
	case ClassBranch:
		if in.Br >= numBrOp {
			return 0, fmt.Errorf("isa: bad branch op %d", in.Br)
		}
		w |= uint32(in.Br) << 21
		if in.Br == BX {
			w |= uint32(in.Rm)
		} else {
			if in.Off < brOffMin || in.Off > brOffMax {
				return 0, fmt.Errorf("isa: branch offset %d out of range", in.Off)
			}
			w |= uint32(in.Off) & 0x1FFFFF
		}
	case ClassMul:
		if in.Mul >= numMulOp {
			return 0, fmt.Errorf("isa: bad mul op %d", in.Mul)
		}
		w |= uint32(in.Mul)<<20 | uint32(in.Rd)<<16 | uint32(in.Rn)<<12 | uint32(in.Rm)<<8 | uint32(in.Ra)<<4
	case ClassSWI:
		if in.Imm > maxImm24 {
			return 0, fmt.Errorf("isa: swi number %d exceeds 24 bits", in.Imm)
		}
		w |= in.Imm
	case ClassMovW:
		if in.Imm > maxImm16 {
			return 0, fmt.Errorf("isa: wide immediate %d exceeds 16 bits", in.Imm)
		}
		if in.High {
			w |= 1 << 20
		}
		w |= uint32(in.Rd)<<16 | in.Imm
	case ClassSys:
		if in.Sys >= numSysOp {
			return 0, fmt.Errorf("isa: bad sys op %d", in.Sys)
		}
		w |= uint32(in.Sys) << 20
	default:
		return 0, fmt.Errorf("isa: bad class %d", in.Class)
	}
	return w, nil
}

// Decode unpacks a 32-bit word into an Instr. It rejects encodings whose
// fields fall outside the defined operations.
func Decode(w uint32) (Instr, error) {
	in := Instr{
		Cond:  Cond(w >> 28),
		Class: Class(w >> 24 & 0xF),
	}
	if in.Cond >= numCond {
		return in, fmt.Errorf("isa: undefined condition %d in %#08x", in.Cond, w)
	}
	switch in.Class {
	case ClassDPReg:
		in.DP = DPOp(w >> 20 & 0xF)
		if in.DP >= numDPOp {
			return in, fmt.Errorf("isa: undefined dp op in %#08x", w)
		}
		in.Rd = uint8(w >> 16 & 0xF)
		in.Rn = uint8(w >> 12 & 0xF)
		in.Rm = uint8(w >> 8 & 0xF)
	case ClassDPImm:
		in.DP = DPOp(w >> 20 & 0xF)
		if in.DP >= numDPOp {
			return in, fmt.Errorf("isa: undefined dp op in %#08x", w)
		}
		in.Rd = uint8(w >> 16 & 0xF)
		in.Rn = uint8(w >> 12 & 0xF)
		in.Imm = w & 0xFFF
	case ClassMem:
		in.Mem = MemOp(w >> 20 & 0xF)
		if in.Mem >= numMemOp {
			return in, fmt.Errorf("isa: undefined mem op in %#08x", w)
		}
		in.Rd = uint8(w >> 16 & 0xF)
		in.Rn = uint8(w >> 12 & 0xF)
		in.Off = int32(w&0xFFF) << 20 >> 20 // sign-extend 12 bits
	case ClassBranch:
		in.Br = BrOp(w >> 21 & 0x7)
		if in.Br >= numBrOp {
			return in, fmt.Errorf("isa: undefined branch op in %#08x", w)
		}
		if in.Br == BX {
			in.Rm = uint8(w & 0xF)
		} else {
			in.Off = int32(w&0x1FFFFF) << 11 >> 11 // sign-extend 21 bits
		}
	case ClassMul:
		in.Mul = MulOp(w >> 20 & 0xF)
		if in.Mul >= numMulOp {
			return in, fmt.Errorf("isa: undefined mul op in %#08x", w)
		}
		in.Rd = uint8(w >> 16 & 0xF)
		in.Rn = uint8(w >> 12 & 0xF)
		in.Rm = uint8(w >> 8 & 0xF)
		in.Ra = uint8(w >> 4 & 0xF)
	case ClassSWI:
		in.Imm = w & 0xFFFFFF
	case ClassMovW:
		in.High = w>>20&0xF == 1
		if s := w >> 20 & 0xF; s > 1 {
			return in, fmt.Errorf("isa: undefined movw form in %#08x", w)
		}
		in.Rd = uint8(w >> 16 & 0xF)
		in.Imm = w & 0xFFFF
	case ClassSys:
		in.Sys = SysOp(w >> 20 & 0xF)
		if in.Sys >= numSysOp {
			return in, fmt.Errorf("isa: undefined sys op in %#08x", w)
		}
	default:
		return in, fmt.Errorf("isa: undefined class %d in %#08x", in.Class, w)
	}
	return in, nil
}
