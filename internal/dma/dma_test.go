package dma_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dma"
	"repro/internal/smapi"
)

// buildDMASystem wires one PE (for setup/verification) and one DMA
// engine as masters over nMem wrapper memories.
func buildDMASystem(t *testing.T, nMem int, task smapi.Task) (*config.System, *dma.Engine) {
	t.Helper()
	sys, err := config.Build(config.SystemConfig{
		Masters: 2, Memories: nMem, MemKind: config.MemWrapper,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddProcs(task); err != nil { // master 0: PE
		t.Fatal(err)
	}
	eng := dma.New(sys.Kernel, "dma0", sys.MasterPorts[1]) // master 1: DMA
	return sys, eng
}

func TestDMACopyWithinOneMemory(t *testing.T) {
	var src, dst uint32
	var allocated, verified bool
	var eng *dma.Engine
	task := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		var code bus.ErrCode
		if src, code = m.Malloc(64, bus.U32); code != bus.OK {
			panic(code)
		}
		if dst, code = m.Malloc(64, bus.U32); code != bus.OK {
			panic(code)
		}
		for i := uint32(0); i < 64; i++ {
			if code := m.Write(src+4*i, i^0xA5); code != bus.OK {
				panic(code)
			}
		}
		eng.Enqueue(dma.Descriptor{SrcSM: 0, DstSM: 0, SrcVPtr: src, DstVPtr: dst, Elems: 64, DType: bus.U32, Chunk: 16})
		allocated = true
		for !eng.Idle() {
			ctx.Sleep(10)
		}
		out, code := m.ReadArray(dst, 64)
		if code != bus.OK {
			panic(code)
		}
		for i, v := range out {
			if v != uint32(i)^0xA5 {
				panic("copy corrupted")
			}
		}
		verified = true
	}
	sys, e := buildDMASystem(t, 1, task)
	eng = e
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !allocated || !verified {
		t.Fatal("task did not complete")
	}
	st := eng.Stats()
	if st.Descriptors != 1 || st.ElemsMoved != 64 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(eng.Done()) != 1 || eng.Done()[0].Err != bus.OK || eng.Done()[0].Moved != 64 {
		t.Errorf("done = %+v", eng.Done())
	}
}

func TestDMACopyAcrossMemories(t *testing.T) {
	// Source in sm0, destination in sm1: two distinct virtual address
	// spaces, bridged only by the engine's sm_addr routing.
	var eng *dma.Engine
	var ok bool
	task := func(ctx *smapi.Ctx) {
		m0, m1 := ctx.Mem(0), ctx.Mem(1)
		src, code := m0.Malloc(40, bus.I16)
		if code != bus.OK {
			panic(code)
		}
		dst, code := m1.Malloc(40, bus.I16)
		if code != bus.OK {
			panic(code)
		}
		pcm := make([]uint32, 40)
		for i := range pcm {
			pcm[i] = uint32(uint16(int16(-100 * i)))
		}
		if code := m0.WriteArray(src, pcm); code != bus.OK {
			panic(code)
		}
		eng.Enqueue(dma.Descriptor{SrcSM: 0, DstSM: 1, SrcVPtr: src, DstVPtr: dst, Elems: 40, DType: bus.I16, Chunk: 13})
		for !eng.Idle() {
			ctx.Sleep(10)
		}
		out, code := m1.ReadArray(dst, 40)
		if code != bus.OK {
			panic(code)
		}
		for i, v := range out {
			if int16(uint16(v)) != int16(-100*i) {
				panic("cross-memory copy corrupted")
			}
		}
		ok = true
	}
	sys, e := buildDMASystem(t, 2, task)
	eng = e
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("verification did not run")
	}
}

func TestDMAErrorPropagation(t *testing.T) {
	// A descriptor with a dangling source reports the in-band error and
	// the engine moves on to the next descriptor.
	var eng *dma.Engine
	task := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		good, code := m.Malloc(8, bus.U32)
		if code != bus.OK {
			panic(code)
		}
		dst, code := m.Malloc(8, bus.U32)
		if code != bus.OK {
			panic(code)
		}
		eng.Enqueue(dma.Descriptor{SrcVPtr: 0xDEAD00, DstVPtr: dst, Elems: 8, DType: bus.U32})
		eng.Enqueue(dma.Descriptor{SrcVPtr: good, DstVPtr: dst, Elems: 8, DType: bus.U32})
		for !eng.Idle() {
			ctx.Sleep(10)
		}
	}
	sys, e := buildDMASystem(t, 1, task)
	eng = e
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
		t.Fatal(err)
	}
	done := eng.Done()
	if len(done) != 2 {
		t.Fatalf("done = %d descriptors", len(done))
	}
	if done[0].Err != bus.ErrBadVPtr || done[0].Moved != 0 {
		t.Errorf("bad descriptor: %+v", done[0])
	}
	if done[1].Err != bus.OK || done[1].Moved != 8 {
		t.Errorf("good descriptor after failure: %+v", done[1])
	}
	if eng.Stats().Errors != 1 {
		t.Errorf("Errors = %d", eng.Stats().Errors)
	}
}

func TestDMAChunkingOddSizes(t *testing.T) {
	// 100 elements in chunks of 32 → 32+32+32+4.
	var eng *dma.Engine
	var ok bool
	task := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		src, _ := m.Malloc(100, bus.U8)
		dst, _ := m.Malloc(100, bus.U8)
		data := make([]uint32, 100)
		for i := range data {
			data[i] = uint32(i % 251)
		}
		if code := m.WriteArray(src, data); code != bus.OK {
			panic(code)
		}
		eng.Enqueue(dma.Descriptor{SrcVPtr: src, DstVPtr: dst, Elems: 100, DType: bus.U8})
		for !eng.Idle() {
			ctx.Sleep(10)
		}
		out, code := m.ReadArray(dst, 100)
		if code != bus.OK {
			panic(code)
		}
		for i, v := range out {
			if v != uint32(i%251) {
				panic("chunked copy corrupted")
			}
		}
		ok = true
	}
	sys, e := buildDMASystem(t, 1, task)
	eng = e
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("verification did not run")
	}
	if got := eng.Done()[0].Moved; got != 100 {
		t.Errorf("Moved = %d, want 100", got)
	}
}

func TestDMADeterministicCompletion(t *testing.T) {
	run := func() uint64 {
		var eng *dma.Engine
		task := func(ctx *smapi.Ctx) {
			m := ctx.Mem(0)
			src, _ := m.Malloc(64, bus.U32)
			dst, _ := m.Malloc(64, bus.U32)
			eng.Enqueue(dma.Descriptor{SrcVPtr: src, DstVPtr: dst, Elems: 64, DType: bus.U32})
			for !eng.Idle() {
				ctx.Sleep(5)
			}
		}
		sys, e := buildDMASystem(t, 1, task)
		eng = e
		if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
			t.Fatal(err)
		}
		return eng.Done()[0].DoneCycle
	}
	if a, b := run(), run(); a != b {
		t.Errorf("completion cycles differ: %d vs %d", a, b)
	}
}

// buildCopySystem wires one DMA engine over two wrapper memories with
// pre-placed buffers (host-side, zero simulated cycles) and returns the
// cycle count of a full copy plus the destination contents.
func runCopy(t *testing.T, depth int, split bool, elems uint32) (uint64, []uint32) {
	t.Helper()
	sys, err := config.Build(config.SystemConfig{
		Masters: 1, Memories: 2, MemKind: config.MemWrapper,
		OutstandingDepth: depth, SplitBus: split,
	})
	if err != nil {
		t.Fatal(err)
	}
	var tr core.Translator
	src, code := sys.Wrappers[0].Table().Alloc(elems, bus.U32)
	if code != bus.OK {
		t.Fatal(code)
	}
	dst, code := sys.Wrappers[1].Table().Alloc(elems, bus.U32)
	if code != bus.OK {
		t.Fatal(code)
	}
	se, _, _ := sys.Wrappers[0].Table().Resolve(src)
	for j := uint32(0); j < elems; j++ {
		tr.WriteElem(se.Host, bus.U32, j, 0xC0DE0000+j)
	}
	eng := dma.New(sys.Kernel, "dma0", sys.MasterPorts[0])
	eng.Enqueue(dma.Descriptor{SrcSM: 0, DstSM: 1, SrcVPtr: src, DstVPtr: dst, Elems: elems, DType: bus.U32, Chunk: 16})
	if _, err := sys.Kernel.RunUntil(eng.Idle, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if d := eng.Done(); len(d) != 1 || d[0].Err != bus.OK || d[0].Moved != elems {
		t.Fatalf("outcome %+v", eng.Done())
	}
	de, _, _ := sys.Wrappers[1].Table().Resolve(dst)
	out := make([]uint32, elems)
	for j := uint32(0); j < elems; j++ {
		out[j] = tr.ReadElem(de.Host, bus.U32, j)
	}
	return sys.Kernel.Cycle(), out
}

// TestDMAPipelinedFasterThanSerial is the double-buffering claim: with
// depth ≥ 2 the engine keeps a read from the source memory and a write
// to the destination memory in flight concurrently, so on a
// split-transaction bus the same copy finishes in fewer simulated
// cycles than the strictly alternating depth-1 engine. On the occupied
// bus the extra depth must at least never hurt (the bus serializes
// end-to-end, so the queued request only hides the turnaround the
// legacy engine already hid). The copied data must be identical in
// every mode.
func TestDMAPipelinedFasterThanSerial(t *testing.T) {
	const elems = 256
	serial, serialData := runCopy(t, 1, false, elems)
	for _, tc := range []struct {
		name   string
		depth  int
		split  bool
		strict bool // must be strictly faster than depth 1
	}{
		{"depth2-occupied", 2, false, false},
		{"depth2-split", 2, true, true},
		{"depth4-split", 4, true, true},
	} {
		cycles, data := runCopy(t, tc.depth, tc.split, elems)
		if tc.strict && cycles >= serial {
			t.Errorf("%s: %d cycles, not faster than depth-1 %d", tc.name, cycles, serial)
		}
		if cycles > serial {
			t.Errorf("%s: %d cycles, slower than depth-1 %d", tc.name, cycles, serial)
		}
		for j := range data {
			if data[j] != serialData[j] {
				t.Fatalf("%s: element %d differs: %#x vs %#x", tc.name, j, data[j], serialData[j])
			}
		}
		t.Logf("%s: %d cycles vs depth-1 %d (%.2fx)", tc.name, cycles, serial, float64(serial)/float64(cycles))
	}
	// The split+depth≥2 configuration must overlap substantially, not
	// just shave the turnaround.
	overlapped, _ := runCopy(t, 2, true, elems)
	if float64(serial)/float64(overlapped) < 1.2 {
		t.Errorf("depth-2 split copy only improved %d → %d cycles", serial, overlapped)
	}
}

// TestDMAOverlappingCopyDepthInvariant pins the overlap guard: a
// forward-overlapping same-memory copy (dst = src + one chunk) has
// chunked-memmove semantics on the classic serial engine — chunk k+1's
// read observes chunk k's write. The pipelined engine must not change
// that, so overlapping descriptors serialize at every depth and the
// copied bytes are identical.
func TestDMAOverlappingCopyDepthInvariant(t *testing.T) {
	const elems, chunk = 64, 16
	run := func(depth int) []uint32 {
		sys, err := config.Build(config.SystemConfig{
			Masters: 1, Memories: 1, MemKind: config.MemWrapper,
			OutstandingDepth: depth, SplitBus: depth > 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		var tr core.Translator
		buf, code := sys.Wrappers[0].Table().Alloc(elems+chunk, bus.U32)
		if code != bus.OK {
			t.Fatal(code)
		}
		e, _, _ := sys.Wrappers[0].Table().Resolve(buf)
		for j := uint32(0); j < elems+chunk; j++ {
			tr.WriteElem(e.Host, bus.U32, j, 0x11110000+j)
		}
		eng := dma.New(sys.Kernel, "dma0", sys.MasterPorts[0])
		eng.Enqueue(dma.Descriptor{
			SrcSM: 0, DstSM: 0, SrcVPtr: buf, DstVPtr: buf + 4*chunk,
			Elems: elems, DType: bus.U32, Chunk: chunk,
		})
		if _, err := sys.Kernel.RunUntil(eng.Idle, 1_000_000); err != nil {
			t.Fatal(err)
		}
		out := make([]uint32, elems+chunk)
		for j := range out {
			out[j] = tr.ReadElem(e.Host, bus.U32, uint32(j))
		}
		return out
	}
	ref := run(1)
	for _, depth := range []int{2, 4, 8} {
		got := run(depth)
		for j := range got {
			if got[j] != ref[j] {
				t.Fatalf("depth %d: element %d = %#x, depth-1 engine wrote %#x", depth, j, got[j], ref[j])
			}
		}
	}
	// Sanity: the overlap really propagated (memmove-with-chunks smears
	// the first chunk forward), so the guard is actually being tested.
	smeared := false
	for j := chunk; j < elems; j++ {
		if ref[j+4] != 0x11110000+uint32(j) {
			smeared = true
			break
		}
	}
	if !smeared {
		t.Fatal("workload did not exercise the overlap semantics")
	}
}
