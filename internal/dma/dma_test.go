package dma

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/config"
	"repro/internal/smapi"
)

// buildDMASystem wires one PE (for setup/verification) and one DMA
// engine as masters over nMem wrapper memories.
func buildDMASystem(t *testing.T, nMem int, task smapi.Task) (*config.System, *Engine) {
	t.Helper()
	sys, err := config.Build(config.SystemConfig{
		Masters: 2, Memories: nMem, MemKind: config.MemWrapper,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddProcs(task); err != nil { // master 0: PE
		t.Fatal(err)
	}
	eng := New(sys.Kernel, "dma0", sys.MasterLinks[1]) // master 1: DMA
	return sys, eng
}

func TestDMACopyWithinOneMemory(t *testing.T) {
	var src, dst uint32
	var allocated, verified bool
	var eng *Engine
	task := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		var code bus.ErrCode
		if src, code = m.Malloc(64, bus.U32); code != bus.OK {
			panic(code)
		}
		if dst, code = m.Malloc(64, bus.U32); code != bus.OK {
			panic(code)
		}
		for i := uint32(0); i < 64; i++ {
			if code := m.Write(src+4*i, i^0xA5); code != bus.OK {
				panic(code)
			}
		}
		eng.Enqueue(Descriptor{SrcSM: 0, DstSM: 0, SrcVPtr: src, DstVPtr: dst, Elems: 64, DType: bus.U32, Chunk: 16})
		allocated = true
		for !eng.Idle() {
			ctx.Sleep(10)
		}
		out, code := m.ReadArray(dst, 64)
		if code != bus.OK {
			panic(code)
		}
		for i, v := range out {
			if v != uint32(i)^0xA5 {
				panic("copy corrupted")
			}
		}
		verified = true
	}
	sys, e := buildDMASystem(t, 1, task)
	eng = e
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !allocated || !verified {
		t.Fatal("task did not complete")
	}
	st := eng.Stats()
	if st.Descriptors != 1 || st.ElemsMoved != 64 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(eng.Done()) != 1 || eng.Done()[0].Err != bus.OK || eng.Done()[0].Moved != 64 {
		t.Errorf("done = %+v", eng.Done())
	}
}

func TestDMACopyAcrossMemories(t *testing.T) {
	// Source in sm0, destination in sm1: two distinct virtual address
	// spaces, bridged only by the engine's sm_addr routing.
	var eng *Engine
	var ok bool
	task := func(ctx *smapi.Ctx) {
		m0, m1 := ctx.Mem(0), ctx.Mem(1)
		src, code := m0.Malloc(40, bus.I16)
		if code != bus.OK {
			panic(code)
		}
		dst, code := m1.Malloc(40, bus.I16)
		if code != bus.OK {
			panic(code)
		}
		pcm := make([]uint32, 40)
		for i := range pcm {
			pcm[i] = uint32(uint16(int16(-100 * i)))
		}
		if code := m0.WriteArray(src, pcm); code != bus.OK {
			panic(code)
		}
		eng.Enqueue(Descriptor{SrcSM: 0, DstSM: 1, SrcVPtr: src, DstVPtr: dst, Elems: 40, DType: bus.I16, Chunk: 13})
		for !eng.Idle() {
			ctx.Sleep(10)
		}
		out, code := m1.ReadArray(dst, 40)
		if code != bus.OK {
			panic(code)
		}
		for i, v := range out {
			if int16(uint16(v)) != int16(-100*i) {
				panic("cross-memory copy corrupted")
			}
		}
		ok = true
	}
	sys, e := buildDMASystem(t, 2, task)
	eng = e
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("verification did not run")
	}
}

func TestDMAErrorPropagation(t *testing.T) {
	// A descriptor with a dangling source reports the in-band error and
	// the engine moves on to the next descriptor.
	var eng *Engine
	task := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		good, code := m.Malloc(8, bus.U32)
		if code != bus.OK {
			panic(code)
		}
		dst, code := m.Malloc(8, bus.U32)
		if code != bus.OK {
			panic(code)
		}
		eng.Enqueue(Descriptor{SrcVPtr: 0xDEAD00, DstVPtr: dst, Elems: 8, DType: bus.U32})
		eng.Enqueue(Descriptor{SrcVPtr: good, DstVPtr: dst, Elems: 8, DType: bus.U32})
		for !eng.Idle() {
			ctx.Sleep(10)
		}
	}
	sys, e := buildDMASystem(t, 1, task)
	eng = e
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
		t.Fatal(err)
	}
	done := eng.Done()
	if len(done) != 2 {
		t.Fatalf("done = %d descriptors", len(done))
	}
	if done[0].Err != bus.ErrBadVPtr || done[0].Moved != 0 {
		t.Errorf("bad descriptor: %+v", done[0])
	}
	if done[1].Err != bus.OK || done[1].Moved != 8 {
		t.Errorf("good descriptor after failure: %+v", done[1])
	}
	if eng.Stats().Errors != 1 {
		t.Errorf("Errors = %d", eng.Stats().Errors)
	}
}

func TestDMAChunkingOddSizes(t *testing.T) {
	// 100 elements in chunks of 32 → 32+32+32+4.
	var eng *Engine
	var ok bool
	task := func(ctx *smapi.Ctx) {
		m := ctx.Mem(0)
		src, _ := m.Malloc(100, bus.U8)
		dst, _ := m.Malloc(100, bus.U8)
		data := make([]uint32, 100)
		for i := range data {
			data[i] = uint32(i % 251)
		}
		if code := m.WriteArray(src, data); code != bus.OK {
			panic(code)
		}
		eng.Enqueue(Descriptor{SrcVPtr: src, DstVPtr: dst, Elems: 100, DType: bus.U8})
		for !eng.Idle() {
			ctx.Sleep(10)
		}
		out, code := m.ReadArray(dst, 100)
		if code != bus.OK {
			panic(code)
		}
		for i, v := range out {
			if v != uint32(i%251) {
				panic("chunked copy corrupted")
			}
		}
		ok = true
	}
	sys, e := buildDMASystem(t, 1, task)
	eng = e
	if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("verification did not run")
	}
	if got := eng.Done()[0].Moved; got != 100 {
		t.Errorf("Moved = %d, want 100", got)
	}
}

func TestDMADeterministicCompletion(t *testing.T) {
	run := func() uint64 {
		var eng *Engine
		task := func(ctx *smapi.Ctx) {
			m := ctx.Mem(0)
			src, _ := m.Malloc(64, bus.U32)
			dst, _ := m.Malloc(64, bus.U32)
			eng.Enqueue(Descriptor{SrcVPtr: src, DstVPtr: dst, Elems: 64, DType: bus.U32})
			for !eng.Idle() {
				ctx.Sleep(5)
			}
		}
		sys, e := buildDMASystem(t, 1, task)
		eng = e
		if _, err := sys.Kernel.RunUntil(sys.ProcsDone, 1_000_000); err != nil {
			t.Fatal(err)
		}
		return eng.Done()[0].DoneCycle
	}
	if a, b := run(), run(); a != b {
		t.Errorf("completion cycles differ: %d vs %d", a, b)
	}
}
