package dma

import (
	"sort"

	"repro/internal/bus"
	"repro/internal/snapshot"
)

func encodeDescriptor(enc *snapshot.Encoder, d Descriptor) {
	enc.Int(d.SrcSM)
	enc.Int(d.DstSM)
	enc.U32(d.SrcVPtr)
	enc.U32(d.DstVPtr)
	enc.U32(d.Elems)
	enc.U8(uint8(d.DType))
	enc.U32(d.Chunk)
}

func decodeDescriptor(dec *snapshot.Decoder) Descriptor {
	var d Descriptor
	d.SrcSM = dec.Int()
	d.DstSM = dec.Int()
	d.SrcVPtr = dec.U32()
	d.DstVPtr = dec.U32()
	d.Elems = dec.U32()
	d.DType = bus.DataType(dec.U8())
	d.Chunk = dec.U32()
	return d
}

func encodeChunk(enc *snapshot.Encoder, c *chunk) {
	enc.U32(c.off)
	enc.U32(c.n)
	enc.U32s(c.data)
}

func decodeChunk(dec *snapshot.Decoder) *chunk {
	return &chunk{off: dec.U32(), n: dec.U32(), data: dec.U32s()}
}

// SaveState implements snapshot.Saver: the descriptor queue, completed
// statuses, both engine FSMs (single-outstanding and pipelined), and
// every in-flight chunk. The inflight map and the ready slice hold
// disjoint chunk sets (a chunk moves from ready to inflight when its
// write issues), so they serialize independently without aliasing.
func (e *Engine) SaveState(enc *snapshot.Encoder) {
	enc.U32(uint32(len(e.queue)))
	for _, d := range e.queue {
		encodeDescriptor(enc, d)
	}
	enc.U32(uint32(len(e.done)))
	for _, s := range e.done {
		encodeDescriptor(enc, s.Desc)
		enc.U8(uint8(s.Err))
		enc.U32(s.Moved)
		enc.U64(s.DoneCycle)
	}
	enc.U8(uint8(e.state))
	encodeDescriptor(enc, e.cur)
	enc.U32(e.off)
	enc.U32(e.chunk)
	enc.U32s(e.data)
	enc.U8(uint8(e.err))
	enc.U32(e.readOff)
	enc.U32(e.written)
	tags := make([]bus.Tag, 0, len(e.inflight))
	for t := range e.inflight {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	enc.U32(uint32(len(tags)))
	for _, t := range tags {
		enc.U64(uint64(t))
		enc.Bool(e.isWrite[t])
		encodeChunk(enc, e.inflight[t])
	}
	enc.U32(uint32(len(e.ready)))
	for _, c := range e.ready {
		encodeChunk(enc, c)
	}
	enc.U64(e.stats.Descriptors)
	enc.U64(e.stats.ElemsMoved)
	enc.U64(e.stats.Errors)
	enc.U64(e.stats.BusyCycles)
}

// RestoreState implements snapshot.Restorer.
func (e *Engine) RestoreState(dec *snapshot.Decoder) error {
	e.queue = nil
	for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
		e.queue = append(e.queue, decodeDescriptor(dec))
	}
	e.done = nil
	for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
		var s Status
		s.Desc = decodeDescriptor(dec)
		s.Err = bus.ErrCode(dec.U8())
		s.Moved = dec.U32()
		s.DoneCycle = dec.U64()
		e.done = append(e.done, s)
	}
	e.state = dmaState(dec.U8())
	e.cur = decodeDescriptor(dec)
	e.off = dec.U32()
	e.chunk = dec.U32()
	e.data = dec.U32s()
	e.err = bus.ErrCode(dec.U8())
	e.readOff = dec.U32()
	e.written = dec.U32()
	e.inflight = make(map[bus.Tag]*chunk)
	e.isWrite = make(map[bus.Tag]bool)
	for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
		tag := bus.Tag(dec.U64())
		w := dec.Bool()
		e.inflight[tag] = decodeChunk(dec)
		e.isWrite[tag] = w
	}
	e.ready = nil
	for n := dec.U32(); n > 0 && dec.Err() == nil; n-- {
		e.ready = append(e.ready, decodeChunk(dec))
	}
	e.stats.Descriptors = dec.U64()
	e.stats.ElemsMoved = dec.U64()
	e.stats.Errors = dec.U64()
	e.stats.BusyCycles = dec.U64()
	return dec.Finish()
}
