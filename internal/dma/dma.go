// Package dma implements a descriptor-driven copy engine: a hardware
// device (not an ISS) that masters the interconnect and moves data
// between dynamic shared memories with burst transactions.
//
// The paper notes that "different hardware devices that might be
// connected on the system can access the memories using low level
// communication"; this engine is that path exercised. It speaks the
// same bus protocol as the ISSs — the wrapper cannot tell the
// difference — and demonstrates memory-to-memory traffic that never
// touches a CPU, including across *different* wrapper instances (the
// virtual pointers of source and destination belong to separate virtual
// address spaces; only the sm_addr distinguishes them).
package dma

import (
	"repro/internal/bus"
	"repro/internal/sim"
)

// Descriptor is one copy job: Elems elements of type DType from
// (SrcSM, SrcVPtr) to (DstSM, DstVPtr), moved in bursts of at most
// Chunk elements (default 32).
type Descriptor struct {
	SrcSM, DstSM     int
	SrcVPtr, DstVPtr uint32
	Elems            uint32
	DType            bus.DataType
	Chunk            uint32
}

// Status is a completed descriptor's outcome.
type Status struct {
	Desc Descriptor
	// Err is the first in-band error encountered, or OK.
	Err bus.ErrCode
	// Moved is the number of elements actually copied.
	Moved uint32
	// DoneCycle is the cycle the descriptor completed on.
	DoneCycle uint64
}

// Stats counts engine activity.
type Stats struct {
	Descriptors uint64
	ElemsMoved  uint64
	Errors      uint64
	BusyCycles  uint64
}

type dmaState uint8

const (
	dmaIdle dmaState = iota
	dmaReadIssue
	dmaReadWait
	dmaWriteIssue
	dmaWriteWait
)

// Engine is the DMA module. Descriptors are enqueued from host code
// (tests, examples, experiment harnesses) before or during simulation;
// the engine processes them in order, one burst transaction at a time.
type Engine struct {
	name string
	link *bus.Link

	queue []Descriptor
	done  []Status

	state dmaState
	cur   Descriptor
	off   uint32 // elements completed of cur
	chunk uint32 // elements in flight
	data  []uint32
	err   bus.ErrCode

	stats Stats
}

// New creates a DMA engine mastering the given link and registers it
// with the kernel.
func New(k *sim.Kernel, name string, link *bus.Link) *Engine {
	if name == "" {
		name = "dma"
	}
	e := &Engine{name: name, link: link}
	k.Add(e)
	return e
}

// Name implements sim.Module.
func (e *Engine) Name() string { return e.name }

// Enqueue appends a copy descriptor. Safe to call between kernel steps.
func (e *Engine) Enqueue(d Descriptor) {
	if d.Chunk == 0 {
		d.Chunk = 32
	}
	e.queue = append(e.queue, d)
}

// Done returns the statuses of completed descriptors.
func (e *Engine) Done() []Status { return e.done }

// Idle reports whether the engine has no pending or in-flight work.
func (e *Engine) Idle() bool { return e.state == dmaIdle && len(e.queue) == 0 }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Tick implements sim.Module: a five-state engine alternating burst
// reads from the source with burst writes to the destination.
func (e *Engine) Tick(cycle uint64) {
	switch e.state {
	case dmaIdle:
		if len(e.queue) == 0 {
			return
		}
		e.cur = e.queue[0]
		e.queue = e.queue[1:]
		e.off = 0
		e.err = bus.OK
		e.stats.BusyCycles++
		e.state = dmaReadIssue
		e.issueRead(cycle)

	case dmaReadIssue:
		e.stats.BusyCycles++
		e.issueRead(cycle)

	case dmaReadWait:
		e.stats.BusyCycles++
		resp, ok := e.link.Response()
		if !ok {
			return
		}
		if resp.Err != bus.OK {
			e.fail(resp.Err, cycle)
			return
		}
		e.data = resp.Burst
		e.state = dmaWriteIssue
		e.issueWrite(cycle)

	case dmaWriteIssue:
		e.stats.BusyCycles++
		e.issueWrite(cycle)

	case dmaWriteWait:
		e.stats.BusyCycles++
		resp, ok := e.link.Response()
		if !ok {
			return
		}
		if resp.Err != bus.OK {
			e.fail(resp.Err, cycle)
			return
		}
		e.off += e.chunk
		e.stats.ElemsMoved += uint64(e.chunk)
		if e.off >= e.cur.Elems {
			e.complete(cycle)
			return
		}
		e.state = dmaReadIssue
		e.issueRead(cycle)
	}
}

// NextWake implements sim.Sleeper. With an empty queue the engine is
// fully drained (Enqueue happens between steps, and NextWake is
// re-queried at every skip opportunity, so host-side enqueues are seen
// immediately). In the wait states the engine resumes on the completion
// signal; in the transient issue-retry states it ticks every cycle.
func (e *Engine) NextWake(now uint64) uint64 {
	switch e.state {
	case dmaIdle:
		if len(e.queue) > 0 {
			return now
		}
		return sim.WakeNever
	case dmaReadWait, dmaWriteWait:
		return sim.WakeNever
	default:
		return now
	}
}

// ConcurrentTick implements sim.Concurrent — with false, deliberately:
// the descriptor queue and completion list are host-shared state
// (Enqueue and Done/Idle are called from tests and from PE task code
// while the simulation runs), so the engine must tick on the serial
// shard, interleaved with the Procs that drive it.
func (e *Engine) ConcurrentTick() bool { return false }

// TickWeight implements sim.Weighted: burst bookkeeping only; the moved
// bytes are charged to the memories.
func (e *Engine) TickWeight() int { return 3 }

// Skip implements sim.Sleeper: waiting on a burst response is busy time.
func (e *Engine) Skip(n uint64) {
	switch e.state {
	case dmaReadWait, dmaWriteWait:
		e.stats.BusyCycles += n
	}
}

func (e *Engine) issueRead(cycle uint64) {
	if !e.link.Idle() {
		e.state = dmaReadIssue
		return
	}
	e.chunk = e.cur.Elems - e.off
	if e.chunk > e.cur.Chunk {
		e.chunk = e.cur.Chunk
	}
	es := e.cur.DType.Size()
	e.link.Issue(bus.Request{
		Op:    bus.OpReadBurst,
		SM:    e.cur.SrcSM,
		VPtr:  e.cur.SrcVPtr + e.off*es,
		Dim:   e.chunk,
		DType: e.cur.DType,
	})
	e.state = dmaReadWait
}

func (e *Engine) issueWrite(cycle uint64) {
	if !e.link.Idle() {
		e.state = dmaWriteIssue
		return
	}
	es := e.cur.DType.Size()
	e.link.Issue(bus.Request{
		Op:    bus.OpWriteBurst,
		SM:    e.cur.DstSM,
		VPtr:  e.cur.DstVPtr + e.off*es,
		Dim:   uint32(len(e.data)),
		Burst: e.data,
		DType: e.cur.DType,
	})
	e.state = dmaWriteWait
}

func (e *Engine) fail(code bus.ErrCode, cycle uint64) {
	e.err = code
	e.stats.Errors++
	e.done = append(e.done, Status{Desc: e.cur, Err: code, Moved: e.off, DoneCycle: cycle})
	e.stats.Descriptors++
	e.state = dmaIdle
}

func (e *Engine) complete(cycle uint64) {
	e.done = append(e.done, Status{Desc: e.cur, Err: bus.OK, Moved: e.off, DoneCycle: cycle})
	e.stats.Descriptors++
	e.state = dmaIdle
}
