package dma

import (
	"repro/internal/bus"
	"repro/internal/sim"
)

// Descriptor is one copy job: Elems elements of type DType from
// (SrcSM, SrcVPtr) to (DstSM, DstVPtr), moved in bursts of at most
// Chunk elements (default 32).
//
// When source and destination ranges overlap within one memory, the
// engine serializes the descriptor chunk by chunk regardless of port
// depth (reads of chunk k+1 must observe writes of chunk k), so the
// chunked-memmove semantics of the classic engine are preserved at
// every depth.
type Descriptor struct {
	SrcSM, DstSM     int
	SrcVPtr, DstVPtr uint32
	Elems            uint32
	DType            bus.DataType
	Chunk            uint32
}

// overlaps reports whether the source and destination byte ranges
// intersect within the same memory — the case the pipelined engine
// must not reorder.
func (d Descriptor) overlaps() bool {
	if d.SrcSM != d.DstSM {
		return false
	}
	n := uint64(d.Elems) * uint64(d.DType.Size())
	s, t := uint64(d.SrcVPtr), uint64(d.DstVPtr)
	return s < t+n && t < s+n
}

// Status is a completed descriptor's outcome.
type Status struct {
	Desc Descriptor
	// Err is the first in-band error encountered, or OK.
	Err bus.ErrCode
	// Moved is the number of elements actually copied.
	Moved uint32
	// DoneCycle is the cycle the descriptor completed on.
	DoneCycle uint64
}

// Stats counts engine activity.
type Stats struct {
	Descriptors uint64
	ElemsMoved  uint64
	Errors      uint64
	BusyCycles  uint64
}

type dmaState uint8

const (
	dmaIdle dmaState = iota
	dmaReadIssue
	dmaReadWait
	dmaWriteIssue
	dmaWriteWait
	// dmaPipeline is the single active state of the depth ≥ 2 engine:
	// reads and writes are tracked per in-flight tag, not by FSM phase.
	dmaPipeline
	// dmaDrain waits for outstanding transactions after an error before
	// retiring the failed descriptor.
	dmaDrain
)

// chunk is one burst-sized slice of the current descriptor as it moves
// through the pipelined engine: read issued → data buffered → write
// issued → retired.
type chunk struct {
	off  uint32 // element offset within the descriptor
	n    uint32 // elements in this chunk
	data []uint32
}

// Engine is the DMA module. Descriptors are enqueued from host code
// (tests, examples, experiment harnesses) before or during simulation;
// the engine processes them in order.
type Engine struct {
	name string
	port *bus.Port

	queue []Descriptor
	done  []Status

	state dmaState
	cur   Descriptor
	off   uint32 // depth-1 engine: elements completed of cur
	chunk uint32 // depth-1 engine: elements in flight
	data  []uint32
	err   bus.ErrCode

	// pipelined-engine state
	readOff  uint32             // next element offset to issue a read for
	written  uint32             // elements confirmed written
	inflight map[bus.Tag]*chunk // outstanding reads and writes by tag
	isWrite  map[bus.Tag]bool
	ready    []*chunk // read data buffered, write not yet issued

	stats Stats
}

// New creates a DMA engine mastering the given port and registers it
// with the kernel.
func New(k *sim.Kernel, name string, port *bus.Port) *Engine {
	if name == "" {
		name = "dma"
	}
	e := &Engine{
		name:     name,
		port:     port,
		inflight: make(map[bus.Tag]*chunk),
		isWrite:  make(map[bus.Tag]bool),
	}
	k.Add(e)
	return e
}

// Name implements sim.Module.
func (e *Engine) Name() string { return e.name }

// Enqueue appends a copy descriptor. Safe to call between kernel steps.
func (e *Engine) Enqueue(d Descriptor) {
	if d.Chunk == 0 {
		d.Chunk = 32
	}
	e.queue = append(e.queue, d)
}

// Done returns the statuses of completed descriptors.
func (e *Engine) Done() []Status { return e.done }

// Idle reports whether the engine has no pending or in-flight work.
func (e *Engine) Idle() bool { return e.state == dmaIdle && len(e.queue) == 0 }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// pipelined reports whether the port depth admits the overlapped engine.
func (e *Engine) pipelined() bool { return e.port.Depth() >= 2 }

// Tick implements sim.Module.
func (e *Engine) Tick(cycle uint64) {
	switch e.state {
	case dmaIdle:
		if len(e.queue) == 0 {
			return
		}
		e.cur = e.queue[0]
		e.queue = e.queue[1:]
		e.off = 0
		e.err = bus.OK
		e.stats.BusyCycles++
		if e.pipelined() && !e.cur.overlaps() {
			e.readOff, e.written = 0, 0
			e.ready = nil
			e.state = dmaPipeline
			e.tickPipeline(cycle)
			return
		}
		e.state = dmaReadIssue
		e.issueRead(cycle)

	case dmaReadIssue:
		e.stats.BusyCycles++
		e.issueRead(cycle)

	case dmaReadWait:
		e.stats.BusyCycles++
		resp, ok := e.port.Response()
		if !ok {
			return
		}
		if resp.Err != bus.OK {
			e.fail(resp.Err, cycle)
			return
		}
		e.data = resp.Burst
		e.state = dmaWriteIssue
		e.issueWrite(cycle)

	case dmaWriteIssue:
		e.stats.BusyCycles++
		e.issueWrite(cycle)

	case dmaWriteWait:
		e.stats.BusyCycles++
		resp, ok := e.port.Response()
		if !ok {
			return
		}
		if resp.Err != bus.OK {
			e.fail(resp.Err, cycle)
			return
		}
		e.off += e.chunk
		e.stats.ElemsMoved += uint64(e.chunk)
		if e.off >= e.cur.Elems {
			e.complete(cycle)
			return
		}
		e.state = dmaReadIssue
		e.issueRead(cycle)

	case dmaPipeline:
		e.stats.BusyCycles++
		e.tickPipeline(cycle)

	case dmaDrain:
		e.stats.BusyCycles++
		e.drainCompletions(cycle)
		if len(e.inflight) == 0 {
			e.off = e.written
			e.fail(e.err, cycle)
		}
	}
}

// tickPipeline advances the overlapped engine one cycle: drain every
// completion the port delivers, then issue at most one write and one
// read (a hardware engine with one issue slot per direction).
func (e *Engine) tickPipeline(cycle uint64) {
	e.drainCompletions(cycle)
	if e.state != dmaPipeline {
		return // completed or moved to drain
	}
	if e.readOff >= e.cur.Elems && len(e.inflight) == 0 && len(e.ready) == 0 {
		// Nothing left to issue or await — the empty-descriptor case.
		e.off = e.written
		e.complete(cycle)
		return
	}
	// Writes first: retiring data frees buffer space and keeps the
	// destination memory fed.
	if len(e.ready) > 0 && e.port.CanIssue() {
		c := e.ready[0]
		e.ready = e.ready[1:]
		es := e.cur.DType.Size()
		tag := e.port.Issue(bus.Request{
			Op:    bus.OpWriteBurst,
			SM:    e.cur.DstSM,
			VPtr:  e.cur.DstVPtr + c.off*es,
			Dim:   uint32(len(c.data)),
			Burst: c.data,
			DType: e.cur.DType,
		})
		e.inflight[tag] = c
		e.isWrite[tag] = true
	}
	// Read ahead while the window (port depth) has room: each buffered or
	// in-flight chunk occupies one window slot.
	if e.readOff < e.cur.Elems && e.port.CanIssue() &&
		len(e.inflight)+len(e.ready) < e.port.Depth() {
		n := e.cur.Elems - e.readOff
		if n > e.cur.Chunk {
			n = e.cur.Chunk
		}
		es := e.cur.DType.Size()
		tag := e.port.Issue(bus.Request{
			Op:    bus.OpReadBurst,
			SM:    e.cur.SrcSM,
			VPtr:  e.cur.SrcVPtr + e.readOff*es,
			Dim:   n,
			DType: e.cur.DType,
		})
		e.inflight[tag] = &chunk{off: e.readOff, n: n}
		e.readOff += n
	}
}

// drainCompletions consumes every completion deliverable this cycle and
// retires or advances the matching chunks.
func (e *Engine) drainCompletions(cycle uint64) {
	for tag, resp := range e.port.Completions() {
		c := e.inflight[tag]
		write := e.isWrite[tag]
		delete(e.inflight, tag)
		delete(e.isWrite, tag)
		if resp.Err != bus.OK {
			if e.state != dmaDrain {
				e.err = resp.Err
				e.ready = nil
				e.state = dmaDrain
			}
			continue
		}
		if e.state == dmaDrain {
			if write {
				e.written += c.n
				e.stats.ElemsMoved += uint64(c.n)
			}
			continue
		}
		if write {
			e.written += c.n
			e.stats.ElemsMoved += uint64(c.n)
			if e.written >= e.cur.Elems {
				e.off = e.written
				e.complete(cycle)
				return
			}
		} else {
			c.data = resp.Burst
			e.ready = append(e.ready, c)
		}
	}
}

// NextWake implements sim.Sleeper. With an empty queue the engine is
// fully drained (Enqueue happens between steps, and NextWake is
// re-queried at every skip opportunity, so host-side enqueues are seen
// immediately). Blocked purely on completions, the engine resumes on the
// completion signal; whenever an issue slot could fire it ticks every
// cycle.
func (e *Engine) NextWake(now uint64) uint64 {
	switch e.state {
	case dmaIdle:
		if len(e.queue) > 0 {
			return now
		}
		return sim.WakeNever
	case dmaReadWait, dmaWriteWait:
		return sim.WakeNever
	case dmaDrain:
		if len(e.inflight) == 0 {
			return now // retire the failed descriptor
		}
		return sim.WakeNever
	case dmaPipeline:
		if e.port.HasCompletion() {
			return now
		}
		if len(e.ready) > 0 && e.port.CanIssue() {
			return now
		}
		if e.readOff < e.cur.Elems && e.port.CanIssue() &&
			len(e.inflight)+len(e.ready) < e.port.Depth() {
			return now
		}
		if e.readOff >= e.cur.Elems && len(e.inflight) == 0 && len(e.ready) == 0 {
			return now // empty descriptor retires on the next tick
		}
		return sim.WakeNever
	default:
		return now
	}
}

// ConcurrentTick implements sim.Concurrent — with false, deliberately:
// the descriptor queue and completion list are host-shared state
// (Enqueue and Done/Idle are called from tests and from PE task code
// while the simulation runs), so the engine must tick on the serial
// shard, interleaved with the Procs that drive it.
func (e *Engine) ConcurrentTick() bool { return false }

// TickWeight implements sim.Weighted: burst bookkeeping only; the moved
// bytes are charged to the memories.
func (e *Engine) TickWeight() int { return 3 }

// Skip implements sim.Sleeper: waiting on a burst response is busy time.
func (e *Engine) Skip(n uint64) {
	switch e.state {
	case dmaReadWait, dmaWriteWait, dmaPipeline, dmaDrain:
		e.stats.BusyCycles += n
	}
}

func (e *Engine) issueRead(cycle uint64) {
	if !e.port.CanIssue() {
		e.state = dmaReadIssue
		return
	}
	e.chunk = e.cur.Elems - e.off
	if e.chunk > e.cur.Chunk {
		e.chunk = e.cur.Chunk
	}
	es := e.cur.DType.Size()
	e.port.Issue(bus.Request{
		Op:    bus.OpReadBurst,
		SM:    e.cur.SrcSM,
		VPtr:  e.cur.SrcVPtr + e.off*es,
		Dim:   e.chunk,
		DType: e.cur.DType,
	})
	e.state = dmaReadWait
}

func (e *Engine) issueWrite(cycle uint64) {
	if !e.port.CanIssue() {
		e.state = dmaWriteIssue
		return
	}
	es := e.cur.DType.Size()
	e.port.Issue(bus.Request{
		Op:    bus.OpWriteBurst,
		SM:    e.cur.DstSM,
		VPtr:  e.cur.DstVPtr + e.off*es,
		Dim:   uint32(len(e.data)),
		Burst: e.data,
		DType: e.cur.DType,
	})
	e.state = dmaWriteWait
}

func (e *Engine) fail(code bus.ErrCode, cycle uint64) {
	e.err = code
	e.stats.Errors++
	e.done = append(e.done, Status{Desc: e.cur, Err: code, Moved: e.off, DoneCycle: cycle})
	e.stats.Descriptors++
	e.state = dmaIdle
}

func (e *Engine) complete(cycle uint64) {
	e.done = append(e.done, Status{Desc: e.cur, Err: bus.OK, Moved: e.off, DoneCycle: cycle})
	e.stats.Descriptors++
	e.state = dmaIdle
}
