// Package dma implements a descriptor-driven copy engine: a hardware
// device (not an ISS) that masters the interconnect and moves data
// between dynamic shared memories with burst transactions.
//
// The paper notes that "different hardware devices that might be
// connected on the system can access the memories using low level
// communication"; this engine is that path exercised. It speaks the
// same bus protocol as the ISSs — the wrapper cannot tell the
// difference — and demonstrates memory-to-memory traffic that never
// touches a CPU, including across *different* wrapper instances (the
// virtual pointers of source and destination belong to separate virtual
// address spaces; only the sm_addr distinguishes them).
//
// # Pipelining
//
// The engine adapts to its port's outstanding depth. At depth 1 it runs
// the classic strictly alternating read→write FSM (cycle-identical to
// the pre-port engine). At depth ≥ 2 it pipelines: burst reads run
// ahead of burst writes, keeping a read and a write in flight
// concurrently (and, at higher depths, several reads buffered), so the
// source and destination memories overlap their work. Descriptors whose
// source and destination ranges overlap in one memory always run on the
// serial FSM — read-ahead would change what the later chunks observe.
//
// # Programming model
//
// Software (or a host-side test) enqueues Descriptors; the engine works
// the queue in order and publishes a Status per finished descriptor
// (first in-band error, elements moved, completion cycle). Idle reports
// the fully drained state, which is the natural completion predicate
// for sim.Kernel.RunUntil.
//
// The engine is a snapshot.Saver/Restorer: its queue, in-flight chunk
// state and statistics serialize into a system snapshot, so a
// checkpoint taken mid-copy resumes bit-identically (see
// internal/snapshot and docs/SNAPSHOT.md). Engines attached through
// config.System.AddDMA are re-created automatically on restore; engines
// wired manually with New are invisible to the snapshot machinery.
package dma
