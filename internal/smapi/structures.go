package smapi

import (
	"repro/internal/bus"
)

// This file implements the paper's deferred feature — "methods to manage
// general data structures are work in progress" — on top of the wrapper:
// pointer-linked structures whose nodes are individual dynamic
// allocations and whose links are *virtual* pointers, traversed entirely
// through simulated transactions. Nothing here bypasses the bus: the
// host never follows a Vptr directly.

// nilVPtr marks the end of a virtual-pointer chain. The wrapper's
// address space starts at 0 and capacity checks prevent it from ever
// reaching 2^32−1, so the value cannot collide with a real allocation.
const nilVPtr = 0xFFFFFFFF

// List is a singly linked list in one shared memory module. Node layout:
// two u32 elements, [next, value]. The list object itself is a one-cell
// head block, so the structure is fully addressable by any master that
// knows the head's Vptr — lists built by one PE can be walked by another.
type List struct {
	m    *Mem
	head uint32 // Vptr of the head cell (holding the first node's Vptr)
}

// NewList allocates the head cell of an empty list.
func NewList(m *Mem) (*List, bus.ErrCode) {
	head, code := m.Malloc(1, bus.U32)
	if code != bus.OK {
		return nil, code
	}
	if code := m.Write(head, nilVPtr); code != bus.OK {
		return nil, code
	}
	return &List{m: m, head: head}, bus.OK
}

// AttachList binds to an existing list by its head Vptr (for example one
// published through a mailbox by another PE).
func AttachList(m *Mem, head uint32) *List {
	return &List{m: m, head: head}
}

// Head returns the list's head-cell Vptr, for sharing with other PEs.
func (l *List) Head() uint32 { return l.head }

// Push prepends a value (O(1): one node allocation, two writes, one
// head update — each a simulated transaction).
func (l *List) Push(v uint32) bus.ErrCode {
	node, code := l.m.Malloc(2, bus.U32)
	if code != bus.OK {
		return code
	}
	first, code := l.m.Read(l.head)
	if code != bus.OK {
		return code
	}
	if code := l.m.Write(node, first); code != bus.OK {
		return code
	}
	if code := l.m.Write(node+4, v); code != bus.OK {
		return code
	}
	return l.m.Write(l.head, node)
}

// Pop removes and returns the first value. ok is false on an empty list.
func (l *List) Pop() (v uint32, ok bool, code bus.ErrCode) {
	first, code := l.m.Read(l.head)
	if code != bus.OK {
		return 0, false, code
	}
	if first == nilVPtr {
		return 0, false, bus.OK
	}
	next, code := l.m.Read(first)
	if code != bus.OK {
		return 0, false, code
	}
	v, code = l.m.Read(first + 4)
	if code != bus.OK {
		return 0, false, code
	}
	if code := l.m.Write(l.head, next); code != bus.OK {
		return 0, false, code
	}
	if code := l.m.Free(first); code != bus.OK {
		return 0, false, code
	}
	return v, true, bus.OK
}

// Walk visits every value front to back, stopping early if fn returns
// false. The traversal is pure simulated reads, so any master may walk a
// list concurrently with readers.
func (l *List) Walk(fn func(v uint32) bool) bus.ErrCode {
	cur, code := l.m.Read(l.head)
	if code != bus.OK {
		return code
	}
	for cur != nilVPtr {
		v, code := l.m.Read(cur + 4)
		if code != bus.OK {
			return code
		}
		if !fn(v) {
			return bus.OK
		}
		cur, code = l.m.Read(cur)
		if code != bus.OK {
			return code
		}
	}
	return bus.OK
}

// Len counts the nodes (a full walk).
func (l *List) Len() (int, bus.ErrCode) {
	n := 0
	code := l.Walk(func(uint32) bool { n++; return true })
	return n, code
}

// Destroy frees every node and the head cell.
func (l *List) Destroy() bus.ErrCode {
	for {
		_, ok, code := l.Pop()
		if code != bus.OK {
			return code
		}
		if !ok {
			break
		}
	}
	return l.m.Free(l.head)
}

// Ring is a bounded single-producer/single-consumer queue in shared
// memory, safe across two PEs when updates are guarded by the
// reservation bit. Layout: [head, tail, cap, data...]. Head and tail are
// monotone counters; the slot of counter c is c mod cap.
type Ring struct {
	m  *Mem
	cb uint32 // control+storage block
}

// NewRing allocates a ring with capacity slots.
func NewRing(m *Mem, capacity uint32) (*Ring, bus.ErrCode) {
	if capacity == 0 {
		return nil, bus.ErrBadOp
	}
	cb, code := m.Malloc(3+capacity, bus.U32)
	if code != bus.OK {
		return nil, code
	}
	if code := m.Write(cb+8, capacity); code != bus.OK {
		return nil, code
	}
	return &Ring{m: m, cb: cb}, bus.OK
}

// AttachRing binds to an existing ring by its block Vptr.
func AttachRing(m *Mem, cb uint32) *Ring { return &Ring{m: m, cb: cb} }

// Base returns the ring's block Vptr for sharing with other PEs.
func (r *Ring) Base() uint32 { return r.cb }

// TryPut appends v if the ring is not full. It acquires the ring's
// reservation for the duration of the update.
func (r *Ring) TryPut(ctx *Ctx, v uint32) (ok bool, code bus.ErrCode) {
	if code := r.m.Acquire(r.cb, 3); code != bus.OK {
		return false, code
	}
	defer r.m.Release(r.cb)
	head, code := r.m.Read(r.cb)
	if code != bus.OK {
		return false, code
	}
	tail, code := r.m.Read(r.cb + 4)
	if code != bus.OK {
		return false, code
	}
	capacity, code := r.m.Read(r.cb + 8)
	if code != bus.OK {
		return false, code
	}
	if head-tail >= capacity {
		return false, bus.OK // full
	}
	if code := r.m.Write(r.cb+12+4*(head%capacity), v); code != bus.OK {
		return false, code
	}
	return true, r.m.Write(r.cb, head+1)
}

// TryGet removes the oldest value if the ring is not empty.
func (r *Ring) TryGet(ctx *Ctx) (v uint32, ok bool, code bus.ErrCode) {
	if code := r.m.Acquire(r.cb, 3); code != bus.OK {
		return 0, false, code
	}
	defer r.m.Release(r.cb)
	head, code := r.m.Read(r.cb)
	if code != bus.OK {
		return 0, false, code
	}
	tail, code := r.m.Read(r.cb + 4)
	if code != bus.OK {
		return 0, false, code
	}
	if head == tail {
		return 0, false, bus.OK // empty
	}
	capacity, code := r.m.Read(r.cb + 8)
	if code != bus.OK {
		return 0, false, code
	}
	v, code = r.m.Read(r.cb + 12 + 4*(tail%capacity))
	if code != bus.OK {
		return 0, false, code
	}
	return v, true, r.m.Write(r.cb+4, tail+1)
}

// Put blocks (in simulated time) until the value is enqueued.
func (r *Ring) Put(ctx *Ctx, v uint32, backoff uint64) bus.ErrCode {
	if backoff == 0 {
		backoff = 5
	}
	for {
		ok, code := r.TryPut(ctx, v)
		if code != bus.OK || ok {
			return code
		}
		ctx.Sleep(backoff)
	}
}

// Get blocks (in simulated time) until a value is available.
func (r *Ring) Get(ctx *Ctx, backoff uint64) (uint32, bus.ErrCode) {
	if backoff == 0 {
		backoff = 5
	}
	for {
		v, ok, code := r.TryGet(ctx)
		if code != bus.OK {
			return 0, code
		}
		if ok {
			return v, bus.OK
		}
		ctx.Sleep(backoff)
	}
}
