package smapi

import (
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/iss"
	"repro/internal/sim"
)

// buildSystem wires n Procs and one wrapper through a shared bus.
func buildSystem(t *testing.T, tasks []Task, wcfg core.Config) (*sim.Kernel, []*Proc, *core.Wrapper) {
	t.Helper()
	k := sim.New()
	var mLinks []*bus.Port
	var procs []*Proc
	for i, task := range tasks {
		l := bus.NewLink(k, "pe")
		mLinks = append(mLinks, l)
		procs = append(procs, NewProc(k, "pe", i, l, task))
	}
	sl := bus.NewLink(k, "mem")
	w, err := core.NewWrapper(k, wcfg, sl)
	if err != nil {
		panic(err)
	}
	bus.NewBus(k, "bus", mLinks, []*bus.Port{sl}, bus.NewRoundRobin())
	return k, procs, w
}

func runAll(t *testing.T, k *sim.Kernel, procs []*Proc, limit uint64) {
	t.Helper()
	_, err := k.RunUntil(func() bool {
		for _, p := range procs {
			if !p.Done() {
				return false
			}
		}
		return true
	}, limit)
	if err != nil {
		t.Fatalf("tasks did not finish: %v", err)
	}
}

func TestMemMallocWriteReadFree(t *testing.T) {
	var got uint32
	var codes []bus.ErrCode
	task := func(ctx *Ctx) {
		m := ctx.Mem(0)
		v, code := m.Malloc(16, bus.U32)
		codes = append(codes, code)
		codes = append(codes, m.Write(v+4, 777))
		d, code := m.Read(v + 4)
		got = d
		codes = append(codes, code)
		codes = append(codes, m.Free(v))
	}
	k, procs, w := buildSystem(t, []Task{task}, core.Config{Delays: core.DefaultDelays()})
	runAll(t, k, procs, 10000)
	for i, c := range codes {
		if c != bus.OK {
			t.Errorf("step %d: %v", i, c)
		}
	}
	if got != 777 {
		t.Errorf("read = %d, want 777", got)
	}
	if w.Table().Len() != 0 {
		t.Error("leak: table not empty")
	}
}

func TestMemArrayTransfers(t *testing.T) {
	var out []uint32
	task := func(ctx *Ctx) {
		m := ctx.Mem(0)
		v, _ := m.Malloc(64, bus.I16)
		in := make([]uint32, 64)
		for i := range in {
			in[i] = uint32(i * 3)
		}
		if code := m.WriteArray(v, in); code != bus.OK {
			panic(code)
		}
		var code bus.ErrCode
		out, code = m.ReadArray(v, 64)
		if code != bus.OK {
			panic(code)
		}
	}
	k, procs, _ := buildSystem(t, []Task{task}, core.Config{Delays: core.DefaultDelays()})
	runAll(t, k, procs, 10000)
	for i := range out {
		if out[i] != uint32(i*3) {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i*3)
		}
	}
}

func TestCtxSleepAdvancesTime(t *testing.T) {
	var before, after uint64
	task := func(ctx *Ctx) {
		before = ctx.Cycle()
		ctx.Sleep(100)
		after = ctx.Cycle()
	}
	k, procs, _ := buildSystem(t, []Task{task}, core.Config{})
	runAll(t, k, procs, 1000)
	if after < before+100 {
		t.Errorf("Sleep(100): %d → %d", before, after)
	}
	if after > before+110 {
		t.Errorf("Sleep(100) overslept: %d → %d", before, after)
	}
}

func TestProducerConsumerWithReservation(t *testing.T) {
	// The paper's coherence mechanism end-to-end: the producer reserves
	// the buffer, fills it, releases; the consumer acquires, reads,
	// releases. A handshake word (element 0) flags data-ready.
	// Tasks are strictly serialized by the kernel's coroutine handoff, so
	// plain shared variables are safe; synchronization must nevertheless
	// happen in *simulated* time (never on host channels, which would
	// stall the kernel).
	const n = 32
	var consumed []uint32
	var vptr uint32
	var vptrReady bool

	producer := func(ctx *Ctx) {
		m := ctx.Mem(0)
		v, code := m.Malloc(n+1, bus.U32)
		if code != bus.OK {
			panic(code)
		}
		vptr, vptrReady = v, true
		if code := m.Acquire(v, 3); code != bus.OK {
			panic(code)
		}
		data := make([]uint32, n)
		for i := range data {
			data[i] = uint32(i) ^ 0x5A
		}
		if code := m.WriteArray(v+4, data); code != bus.OK {
			panic(code)
		}
		if code := m.Write(v, 1); code != bus.OK { // ready flag
			panic(code)
		}
		if code := m.Release(v); code != bus.OK {
			panic(code)
		}
	}
	consumer := func(ctx *Ctx) {
		m := ctx.Mem(0)
		for !vptrReady {
			ctx.Sleep(2)
		}
		v := vptr
		for {
			if code := m.Acquire(v, 3); code != bus.OK {
				panic(code)
			}
			ready, code := m.Read(v)
			if code != bus.OK {
				panic(code)
			}
			if ready == 1 {
				break
			}
			if code := m.Release(v); code != bus.OK {
				panic(code)
			}
			ctx.Sleep(5)
		}
		out, code := m.ReadArray(v+4, n)
		if code != bus.OK {
			panic(code)
		}
		consumed = out
		if code := m.Release(v); code != bus.OK {
			panic(code)
		}
		if code := m.Free(v); code != bus.OK {
			panic(code)
		}
	}
	k, procs, w := buildSystem(t, []Task{producer, consumer}, core.Config{Delays: core.DefaultDelays()})
	runAll(t, k, procs, 100000)
	if len(consumed) != n {
		t.Fatalf("consumed %d elements", len(consumed))
	}
	for i, v := range consumed {
		if v != uint32(i)^0x5A {
			t.Errorf("consumed[%d] = %d", i, v)
		}
	}
	if w.Table().Len() != 0 {
		t.Error("buffer leaked")
	}
}

func TestAcquireContention(t *testing.T) {
	// Two PEs increment a shared counter under reservation; no update is
	// lost — the semaphore works.
	const each = 20
	var vptr uint32
	var ready bool
	bump := func(ctx *Ctx) {
		m := ctx.Mem(0)
		for !ready {
			ctx.Sleep(2)
		}
		for i := 0; i < each; i++ {
			if code := m.Acquire(vptr, 2); code != bus.OK {
				panic(code)
			}
			v, code := m.Read(vptr)
			if code != bus.OK {
				panic(code)
			}
			if code := m.Write(vptr, v+1); code != bus.OK {
				panic(code)
			}
			if code := m.Release(vptr); code != bus.OK {
				panic(code)
			}
		}
	}
	alloc := func(ctx *Ctx) {
		m := ctx.Mem(0)
		v, code := m.Malloc(1, bus.U32)
		if code != bus.OK {
			panic(code)
		}
		vptr, ready = v, true
		// Wait until both bumpers are done, then verify in-sim.
		for {
			val, _ := m.Read(vptr)
			if val == 2*each {
				return
			}
			ctx.Sleep(50)
		}
	}
	k, procs, _ := buildSystem(t, []Task{alloc, bump, bump}, core.Config{Delays: core.DefaultDelays()})
	runAll(t, k, procs, 1_000_000)
}

func TestProcPanicBecomesFault(t *testing.T) {
	task := func(ctx *Ctx) {
		panic("task exploded")
	}
	k, _, _ := buildSystem(t, []Task{task}, core.Config{})
	err := k.Run(10)
	if err == nil || !strings.Contains(err.Error(), "task exploded") {
		t.Errorf("err = %v, want task panic fault", err)
	}
}

func TestProcStats(t *testing.T) {
	task := func(ctx *Ctx) {
		m := ctx.Mem(0)
		v, _ := m.Malloc(4, bus.U32)
		m.Write(v, 1)
		m.Free(v)
		ctx.Sleep(10)
	}
	k, procs, _ := buildSystem(t, []Task{task}, core.Config{Delays: core.DefaultDelays()})
	runAll(t, k, procs, 10000)
	p := procs[0]
	if p.OpsIssued != 3 {
		t.Errorf("OpsIssued = %d, want 3", p.OpsIssued)
	}
	if p.WaitCycles == 0 || p.SleepCycles == 0 {
		t.Errorf("wait/sleep cycles not counted: %d/%d", p.WaitCycles, p.SleepCycles)
	}
}

func TestRuntimeAssemblyRoundTrip(t *testing.T) {
	// The assembly runtime drives a real wrapper through the ISS bridge:
	// malloc, write, read, reserve, release, free — checking statuses.
	src := `
		mov  r0, #8
		mov  r1, #2        ; u32
		mov  r2, #0
		bl   sm_malloc
		cmp  r1, #0
		bne  fail
		mov  r4, r0        ; vptr

		mov  r0, r4
		li   r1, 1234
		mov  r2, #0
		bl   sm_write
		cmp  r1, #0
		bne  fail

		mov  r0, r4
		mov  r2, #0
		bl   sm_reserve
		cmp  r1, #0
		bne  fail

		mov  r0, r4
		mov  r2, #0
		bl   sm_read
		cmp  r1, #0
		bne  fail
		mov  r5, r0        ; datum

		mov  r0, r4
		mov  r2, #0
		bl   sm_release
		cmp  r1, #0
		bne  fail

		mov  r0, r4
		mov  r2, #0
		bl   sm_free
		cmp  r1, #0
		bne  fail

		mov  r0, r5
		swi  #0
	fail:	li   r0, 0xDEAD
		swi  #0
	` + Runtime
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	k := sim.New()
	link := bus.NewLink(k, "cpu-mem")
	if _, err := core.NewWrapper(k, core.Config{Delays: core.DefaultDelays()}, link); err != nil {
		t.Fatal(err)
	}
	cpu, err := iss.New(k, iss.Config{Prog: prog.Code, Port: link})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunUntil(cpu.Halted, 1_000_000); err != nil {
		t.Fatalf("program did not halt: %v", err)
	}
	if cpu.ExitCode() != 1234 {
		t.Fatalf("exit = %#x, want 1234", cpu.ExitCode())
	}
}

func TestRuntimeAssemblyBurst(t *testing.T) {
	src := `
		.equ IOBUF, 0xFFFF0100
		; staging[0..3] = 7
		li   r3, IOBUF
		mov  r1, #0
	fill:	mov  r2, #7
		str  r2, [r3]
		add  r3, r3, #4
		add  r1, r1, #1
		cmp  r1, #4
		bne  fill

		mov  r0, #4
		mov  r1, #2
		mov  r2, #0
		bl   sm_malloc
		cmp  r1, #0
		bne  fail
		mov  r4, r0

		mov  r0, r4
		mov  r1, #4
		mov  r2, #0
		bl   sm_writen
		cmp  r1, #0
		bne  fail

		; scalar read of element 3 confirms the burst landed
		add  r0, r4, #12
		mov  r2, #0
		bl   sm_read
		cmp  r1, #0
		bne  fail
		swi  #0
	fail:	li   r0, 0xDEAD
		swi  #0
	` + Runtime
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	k := sim.New()
	link := bus.NewLink(k, "cpu-mem")
	if _, err := core.NewWrapper(k, core.Config{Delays: core.DefaultDelays()}, link); err != nil {
		t.Fatal(err)
	}
	cpu, err := iss.New(k, iss.Config{Prog: prog.Code, Port: link})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunUntil(cpu.Halted, 1_000_000); err != nil {
		t.Fatalf("program did not halt: %v", err)
	}
	if cpu.ExitCode() != 7 {
		t.Fatalf("exit = %d, want 7", cpu.ExitCode())
	}
}
