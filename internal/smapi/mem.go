package smapi

import (
	"repro/internal/bus"
)

// Mem is the high-level shared-memory API bound to one memory module
// (one sm_addr), mirroring the host machine's own functions: Malloc,
// Free, Read, Write, plus array transfers and the reservation semaphore.
// Every call is one bus transaction and blocks the calling task in
// simulated time until the wrapper responds.
type Mem struct {
	p  *Proc
	sm int
}

// Malloc allocates dim elements of type dt, returning the virtual
// pointer. Maps to calloc on the host, so the memory reads as zero.
func (m *Mem) Malloc(dim uint32, dt bus.DataType) (uint32, bus.ErrCode) {
	resp := m.p.transact(bus.Request{Op: bus.OpAlloc, SM: m.sm, Dim: dim, DType: dt})
	return resp.VPtr, resp.Err
}

// Calloc is an alias for Malloc: the wrapper's allocations are always
// zeroed, exactly like the paper's calloc mapping.
func (m *Mem) Calloc(dim uint32, dt bus.DataType) (uint32, bus.ErrCode) {
	return m.Malloc(dim, dt)
}

// Free deallocates the allocation starting at vptr.
func (m *Mem) Free(vptr uint32) bus.ErrCode {
	return m.p.transact(bus.Request{Op: bus.OpFree, SM: m.sm, VPtr: vptr}).Err
}

// Read returns the element at vptr.
func (m *Mem) Read(vptr uint32) (uint32, bus.ErrCode) {
	resp := m.p.transact(bus.Request{Op: bus.OpRead, SM: m.sm, VPtr: vptr})
	return resp.Data, resp.Err
}

// Write stores val into the element at vptr.
func (m *Mem) Write(vptr uint32, val uint32) bus.ErrCode {
	return m.p.transact(bus.Request{Op: bus.OpWrite, SM: m.sm, VPtr: vptr, Data: val}).Err
}

// ReadAs reads the element at vptr as type dt. Typed memories (the
// static table, a cache line) use dt for element width and sign
// extension; the wrapper resolves the type from its pointer table and
// ignores dt.
func (m *Mem) ReadAs(vptr uint32, dt bus.DataType) (uint32, bus.ErrCode) {
	resp := m.p.transact(bus.Request{Op: bus.OpRead, SM: m.sm, VPtr: vptr, DType: dt})
	return resp.Data, resp.Err
}

// WriteAs stores val into the element at vptr as type dt (see ReadAs).
func (m *Mem) WriteAs(vptr uint32, val uint32, dt bus.DataType) bus.ErrCode {
	return m.p.transact(bus.Request{Op: bus.OpWrite, SM: m.sm, VPtr: vptr, Data: val, DType: dt}).Err
}

// ReadArray reads n consecutive elements starting at vptr through the
// wrapper's I/O array.
func (m *Mem) ReadArray(vptr, n uint32) ([]uint32, bus.ErrCode) {
	resp := m.p.transact(bus.Request{Op: bus.OpReadBurst, SM: m.sm, VPtr: vptr, Dim: n})
	return resp.Burst, resp.Err
}

// WriteArray writes data to consecutive elements starting at vptr
// through the wrapper's I/O array.
func (m *Mem) WriteArray(vptr uint32, data []uint32) bus.ErrCode {
	return m.p.transact(bus.Request{Op: bus.OpWriteBurst, SM: m.sm, VPtr: vptr, Dim: uint32(len(data)), Burst: data}).Err
}

// Reserve attempts to set the reservation bit on the allocation
// containing vptr. A single attempt; see Acquire for the blocking form.
func (m *Mem) Reserve(vptr uint32) bus.ErrCode {
	return m.p.transact(bus.Request{Op: bus.OpReserve, SM: m.sm, VPtr: vptr}).Err
}

// Release clears the reservation bit held by this PE.
func (m *Mem) Release(vptr uint32) bus.ErrCode {
	return m.p.transact(bus.Request{Op: bus.OpRelease, SM: m.sm, VPtr: vptr}).Err
}

// Acquire spins until the reservation is obtained, backing off backoff
// cycles between attempts (minimum 1). It returns a non-OK code only for
// errors other than contention (for example a dangling pointer).
func (m *Mem) Acquire(vptr uint32, backoff uint64) bus.ErrCode {
	if backoff == 0 {
		backoff = 1
	}
	for {
		code := m.Reserve(vptr)
		if code != bus.ErrReserved {
			return code
		}
		c := &Ctx{p: m.p}
		c.Sleep(backoff)
	}
}

// SM returns the module index this API is bound to.
func (m *Mem) SM() int { return m.sm }
