package smapi

// Runtime is the armlet assembly implementation of the shared-memory API
// for programs running on the ISS. Append it to a program's source and
// call the routines with bl.
//
// Calling convention (C formalism, registers instead of a stack):
//
//	sm_malloc   r0=dim  r1=dtype r2=sm        → r0=vptr,  r1=status
//	sm_free     r0=vptr r2=sm                 → r1=status
//	sm_read     r0=vptr r2=sm                 → r0=data,  r1=status
//	sm_write    r0=vptr r1=data r2=sm         → r1=status
//	sm_readn    r0=vptr r1=n    r2=sm         → r1=status (data in I/O array)
//	sm_writen   r0=vptr r1=n    r2=sm         → r1=status (data from I/O array)
//	sm_reserve  r0=vptr r2=sm                 → r1=status
//	sm_release  r0=vptr r2=sm                 → r1=status
//
// status is 0 on success, 2+ErrCode on failure (see iss.StatusErrBase).
// r12 is clobbered. The I/O array lives at MMIO+0x100 and holds up to
// 256 words; see iss.IOArray.
const Runtime = `
; ---- shared-memory runtime (smapi) -------------------------------------
.equ SM_MMIO,   0xFFFF0000
.equ SM_OP,     0x00
.equ SM_SM,     0x04
.equ SM_VPTR,   0x08
.equ SM_DATA,   0x0C
.equ SM_DIM,    0x10
.equ SM_DTYPE,  0x14
.equ SM_GO,     0x18
.equ SM_RESULT, 0x1C
.equ SM_IOBUF,  0x100

.equ SM_OP_READ,    0
.equ SM_OP_WRITE,   1
.equ SM_OP_ALLOC,   2
.equ SM_OP_FREE,    3
.equ SM_OP_READN,   4
.equ SM_OP_WRITEN,  5
.equ SM_OP_RESERVE, 6
.equ SM_OP_RELEASE, 7

sm_malloc:
	li   r12, SM_MMIO
	str  r0, [r12, #SM_DIM]
	str  r1, [r12, #SM_DTYPE]
	str  r2, [r12, #SM_SM]
	mov  r0, #SM_OP_ALLOC
	str  r0, [r12, #SM_OP]
	str  r0, [r12, #SM_GO]
	ldr  r1, [r12, #SM_GO]
	ldr  r0, [r12, #SM_RESULT]
	ret

sm_free:
	li   r12, SM_MMIO
	str  r0, [r12, #SM_VPTR]
	str  r2, [r12, #SM_SM]
	mov  r0, #SM_OP_FREE
	str  r0, [r12, #SM_OP]
	str  r0, [r12, #SM_GO]
	ldr  r1, [r12, #SM_GO]
	ret

sm_read:
	li   r12, SM_MMIO
	str  r0, [r12, #SM_VPTR]
	str  r2, [r12, #SM_SM]
	mov  r0, #SM_OP_READ
	str  r0, [r12, #SM_OP]
	str  r0, [r12, #SM_GO]
	ldr  r1, [r12, #SM_GO]
	ldr  r0, [r12, #SM_RESULT]
	ret

sm_write:
	li   r12, SM_MMIO
	str  r0, [r12, #SM_VPTR]
	str  r1, [r12, #SM_DATA]
	str  r2, [r12, #SM_SM]
	mov  r0, #SM_OP_WRITE
	str  r0, [r12, #SM_OP]
	str  r0, [r12, #SM_GO]
	ldr  r1, [r12, #SM_GO]
	ret

sm_readn:
	li   r12, SM_MMIO
	str  r0, [r12, #SM_VPTR]
	str  r1, [r12, #SM_DIM]
	str  r2, [r12, #SM_SM]
	mov  r0, #SM_OP_READN
	str  r0, [r12, #SM_OP]
	str  r0, [r12, #SM_GO]
	ldr  r1, [r12, #SM_GO]
	ret

sm_writen:
	li   r12, SM_MMIO
	str  r0, [r12, #SM_VPTR]
	str  r1, [r12, #SM_DIM]
	str  r2, [r12, #SM_SM]
	mov  r0, #SM_OP_WRITEN
	str  r0, [r12, #SM_OP]
	str  r0, [r12, #SM_GO]
	ldr  r1, [r12, #SM_GO]
	ret

sm_reserve:
	li   r12, SM_MMIO
	str  r0, [r12, #SM_VPTR]
	str  r2, [r12, #SM_SM]
	mov  r0, #SM_OP_RESERVE
	str  r0, [r12, #SM_OP]
	str  r0, [r12, #SM_GO]
	ldr  r1, [r12, #SM_GO]
	ret

sm_release:
	li   r12, SM_MMIO
	str  r0, [r12, #SM_VPTR]
	str  r2, [r12, #SM_SM]
	mov  r0, #SM_OP_RELEASE
	str  r0, [r12, #SM_OP]
	str  r0, [r12, #SM_GO]
	ldr  r1, [r12, #SM_GO]
	ret
; ---- end shared-memory runtime ------------------------------------------
`
