// Package smapi is the software layer of the framework: the high-level
// APIs — "very similar to the host machine functions ... using a C
// formalism" — through which software running on processing elements
// drives the dynamic shared memories.
//
// Two kinds of software use it:
//
//   - Native tasks. Proc runs a Go function as a coroutine synchronized
//     with the simulation kernel (the SystemC SC_THREAD idiom): the task
//     blocks in *simulated* time on every shared-memory call while the
//     kernel keeps cycling the hardware. Mem exposes Malloc / Free /
//     Read / Write / ReadArray / WriteArray / Reserve / Release /
//     Acquire with in-band error codes, one bus transaction each. This
//     models software whose computation is executed natively (the way a
//     compiled-code ISS executes it) while every memory interaction is
//     simulated cycle-true.
//
//   - Assembly programs on the armlet ISS. Runtime is an assembly
//     library (sm_malloc, sm_free, sm_read, sm_write, sm_readn,
//     sm_writen, sm_reserve, sm_release) wrapping the memory-mapped
//     bridge in call-and-return routines, so ISS workloads use the same
//     API surface the paper's ISSs did.
package smapi
