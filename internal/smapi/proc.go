package smapi

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/sim"
)

// Task is the software body of a processing element. It runs as a
// coroutine against the simulation: every Ctx or Mem method that
// consumes simulated time suspends the task and lets the kernel advance.
type Task func(ctx *Ctx)

type procState uint8

const (
	procRunning procState = iota
	procWaitResp
	procSleeping
	procDone
)

// Proc is a processing element executing a native software task. It is
// the native-code counterpart of an ISS: computation happens at host
// speed, while every shared-memory operation becomes a cycle-true bus
// transaction on its master link.
type Proc struct {
	name string
	id   int
	port *bus.Port
	task Task

	state   procState
	started bool
	wakeAt  uint64
	resp    bus.Response

	step chan uint64
	done chan struct{}

	cycle uint64

	// Stats
	OpsIssued    uint64
	ActiveWakes  uint64
	WaitCycles   uint64
	SleepCycles  uint64
	RetiredTasks uint64

	panicErr error
	k        *sim.Kernel
}

// NewProc creates a processing element named name with master port port,
// running task. id is the master identity stamped on reservations (use
// the PE's index on the interconnect).
func NewProc(k *sim.Kernel, name string, id int, port *bus.Port, task Task) *Proc {
	p := &Proc{
		name: name,
		id:   id,
		port: port,
		task: task,
		step: make(chan uint64),
		done: make(chan struct{}),
		k:    k,
	}
	k.Add(p)
	return p
}

// Name implements sim.Module.
func (p *Proc) Name() string { return p.name }

// Done reports whether the task function has returned.
func (p *Proc) Done() bool { return p.state == procDone }

// Tick implements sim.Module. The coroutine handoff is fully synchronous
// (unbuffered channels, one resume per cycle at most), so execution stays
// deterministic.
func (p *Proc) Tick(cycle uint64) {
	switch p.state {
	case procDone:
		return
	case procWaitResp:
		p.WaitCycles++
		resp, ok := p.port.Response()
		if !ok {
			return
		}
		p.resp = resp
		p.state = procRunning
		p.wake(cycle)
	case procSleeping:
		p.SleepCycles++
		if cycle < p.wakeAt {
			return
		}
		p.state = procRunning
		p.wake(cycle)
	case procRunning:
		if !p.started {
			p.started = true
			go p.run()
		}
		p.wake(cycle)
	}
}

// NextWake implements sim.Sleeper. A PE blocked on a bus response is
// woken by the completion's signal commit; a PE in Sleep knows its exact
// resume cycle; a finished PE never wakes; a runnable PE executes every
// cycle.
func (p *Proc) NextWake(now uint64) uint64 {
	switch p.state {
	case procDone, procWaitResp:
		return sim.WakeNever
	case procSleeping:
		if p.wakeAt <= now {
			return now
		}
		return p.wakeAt
	default:
		return now
	}
}

// ConcurrentTick implements sim.Concurrent — with false, deliberately:
// a Proc's Tick resumes arbitrary task code, and tasks routinely share
// captured host variables with other tasks (pipeline hand-off flags,
// E8's semaphore bookkeeping) or poke host-driven devices (a DMA
// engine's descriptor queue). Those accesses are only safe under the
// sequential interleaving tasks were written against, so every Proc —
// and everything else serial — is co-scheduled on one shard in
// registration order. Parallel mode stays bit-identical; Proc-heavy
// systems simply don't speed up (the ISS configs are the ones that do).
func (p *Proc) ConcurrentTick() bool { return false }

// TickWeight implements sim.Weighted: an active Proc tick is two
// synchronous channel handoffs plus native task code — comparable to an
// ISS instruction, often costlier.
func (p *Proc) TickWeight() int { return 8 }

// Skip implements sim.Sleeper: skipped cycles spent blocked on the
// interconnect or in Sleep are accounted exactly as ticked ones.
func (p *Proc) Skip(n uint64) {
	switch p.state {
	case procWaitResp:
		p.WaitCycles += n
	case procSleeping:
		p.SleepCycles += n
	}
}

// run is the coroutine body.
func (p *Proc) run() {
	defer func() {
		if r := recover(); r != nil {
			p.panicErr = fmt.Errorf("%s: task panic: %v", p.name, r)
		}
		p.state = procDone
		p.RetiredTasks++
		p.done <- struct{}{}
	}()
	cycle := <-p.step
	ctx := &Ctx{p: p}
	p.cycle = cycle
	p.task(ctx)
}

// wake resumes the coroutine for the current cycle and blocks until it
// suspends again (or finishes).
func (p *Proc) wake(cycle uint64) {
	p.ActiveWakes++
	p.step <- cycle
	<-p.done
	if p.panicErr != nil {
		p.k.Fault(p.panicErr)
		p.panicErr = nil
	}
}

// yield suspends the coroutine; the next wake delivers the then-current
// cycle. Called only from the task goroutine.
func (p *Proc) yield() {
	p.done <- struct{}{}
	p.cycle = <-p.step
}

// transact issues req on the PE's port and blocks (in simulated time)
// until the response arrives.
func (p *Proc) transact(req bus.Request) bus.Response {
	req.Master = p.id
	p.OpsIssued++
	p.port.Issue(req)
	p.state = procWaitResp
	p.yield()
	return p.resp
}

// Ctx is the task-side handle to simulated time and the shared memories.
type Ctx struct {
	p *Proc
}

// Cycle returns the current simulated cycle.
func (c *Ctx) Cycle() uint64 { return c.p.cycle }

// Sleep advances simulated time by n cycles, modelling computation that
// takes that long on the PE. Sleep(0) yields for exactly one cycle.
func (c *Ctx) Sleep(n uint64) {
	p := c.p
	p.wakeAt = p.cycle + n
	p.state = procSleeping
	p.yield()
}

// Mem returns the C-formalism API bound to shared memory module sm.
func (c *Ctx) Mem(sm int) *Mem {
	return &Mem{p: c.p, sm: sm}
}
