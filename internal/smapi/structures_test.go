package smapi

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
)

func TestListPushPopWalk(t *testing.T) {
	var popped []uint32
	var walked []uint32
	var length int
	task := func(ctx *Ctx) {
		m := ctx.Mem(0)
		l, code := NewList(m)
		if code != bus.OK {
			panic(code)
		}
		for i := uint32(1); i <= 5; i++ {
			if code := l.Push(i * 10); code != bus.OK {
				panic(code)
			}
		}
		length, _ = l.Len()
		if code := l.Walk(func(v uint32) bool {
			walked = append(walked, v)
			return true
		}); code != bus.OK {
			panic(code)
		}
		for {
			v, ok, code := l.Pop()
			if code != bus.OK {
				panic(code)
			}
			if !ok {
				break
			}
			popped = append(popped, v)
		}
		if code := l.Destroy(); code != bus.OK {
			panic(code)
		}
	}
	k, procs, w := buildSystem(t, []Task{task}, core.Config{Delays: core.DefaultDelays()})
	runAll(t, k, procs, 1_000_000)
	if length != 5 {
		t.Errorf("Len = %d, want 5", length)
	}
	want := []uint32{50, 40, 30, 20, 10} // LIFO
	for i, v := range want {
		if walked[i] != v || popped[i] != v {
			t.Errorf("order[%d]: walk %d pop %d, want %d", i, walked[i], popped[i], v)
		}
	}
	if w.Table().Len() != 0 {
		t.Errorf("leaked %d allocations after Destroy", w.Table().Len())
	}
}

func TestListWalkEarlyStop(t *testing.T) {
	var visited int
	task := func(ctx *Ctx) {
		m := ctx.Mem(0)
		l, _ := NewList(m)
		for i := 0; i < 10; i++ {
			l.Push(uint32(i))
		}
		l.Walk(func(v uint32) bool {
			visited++
			return visited < 3
		})
	}
	k, procs, _ := buildSystem(t, []Task{task}, core.Config{Delays: core.DefaultDelays()})
	runAll(t, k, procs, 1_000_000)
	if visited != 3 {
		t.Errorf("visited = %d, want 3", visited)
	}
}

func TestListSharedAcrossPEs(t *testing.T) {
	// PE0 builds a list; PE1 attaches by head Vptr and sums it — general
	// data structures exchanged by virtual pointer, the paper's deferred
	// feature.
	var head uint32
	var ready, built bool
	var sum uint32
	builder := func(ctx *Ctx) {
		m := ctx.Mem(0)
		l, code := NewList(m)
		if code != bus.OK {
			panic(code)
		}
		head, ready = l.Head(), true
		for i := uint32(1); i <= 4; i++ {
			if code := l.Push(i); code != bus.OK {
				panic(code)
			}
		}
		built = true
	}
	reader := func(ctx *Ctx) {
		m := ctx.Mem(0)
		for !ready || !built {
			ctx.Sleep(5)
		}
		l := AttachList(m, head)
		if code := l.Walk(func(v uint32) bool {
			sum += v
			return true
		}); code != bus.OK {
			panic(code)
		}
	}
	k, procs, _ := buildSystem(t, []Task{builder, reader}, core.Config{Delays: core.DefaultDelays()})
	runAll(t, k, procs, 1_000_000)
	if sum != 10 {
		t.Errorf("sum = %d, want 10", sum)
	}
}

func TestRingSPSC(t *testing.T) {
	const n = 100
	var ringBase uint32
	var ready bool
	var got []uint32
	producer := func(ctx *Ctx) {
		m := ctx.Mem(0)
		r, code := NewRing(m, 4) // small capacity forces blocking
		if code != bus.OK {
			panic(code)
		}
		ringBase, ready = r.Base(), true
		for i := uint32(0); i < n; i++ {
			if code := r.Put(ctx, i*3, 5); code != bus.OK {
				panic(code)
			}
		}
	}
	consumer := func(ctx *Ctx) {
		m := ctx.Mem(0)
		for !ready {
			ctx.Sleep(5)
		}
		r := AttachRing(m, ringBase)
		for len(got) < n {
			v, code := r.Get(ctx, 5)
			if code != bus.OK {
				panic(code)
			}
			got = append(got, v)
		}
	}
	k, procs, _ := buildSystem(t, []Task{producer, consumer}, core.Config{Delays: core.DefaultDelays()})
	runAll(t, k, procs, 10_000_000)
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint32(i*3) {
			t.Fatalf("got[%d] = %d, want %d (FIFO order violated)", i, v, i*3)
		}
	}
}

func TestRingCapacityZero(t *testing.T) {
	task := func(ctx *Ctx) {
		if _, code := NewRing(ctx.Mem(0), 0); code != bus.ErrBadOp {
			panic("zero-capacity ring accepted")
		}
	}
	k, procs, _ := buildSystem(t, []Task{task}, core.Config{Delays: core.DefaultDelays()})
	runAll(t, k, procs, 100000)
}

func TestRingTryOpsWhenFullAndEmpty(t *testing.T) {
	task := func(ctx *Ctx) {
		m := ctx.Mem(0)
		r, _ := NewRing(m, 2)
		if _, ok, _ := r.TryGet(ctx); ok {
			panic("TryGet on empty succeeded")
		}
		for i := 0; i < 2; i++ {
			if ok, _ := r.TryPut(ctx, 1); !ok {
				panic("TryPut on non-full failed")
			}
		}
		if ok, _ := r.TryPut(ctx, 9); ok {
			panic("TryPut on full succeeded")
		}
	}
	k, procs, _ := buildSystem(t, []Task{task}, core.Config{Delays: core.DefaultDelays()})
	runAll(t, k, procs, 100000)
}
