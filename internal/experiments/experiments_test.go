package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/trace"

	"repro/internal/bus"
)

var quick = Options{Quick: true}

func TestE1ShapeHolds(t *testing.T) {
	// The multi-memory configuration must simulate slower per cycle (the
	// paper's degradation) while the simulated cycle counts stay close.
	one, err := RunGSMISS(4, 1, 6, Mode{})
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunGSMISS(4, 4, 6, Mode{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Cycles == 0 || four.Cycles == 0 {
		t.Fatal("no cycles")
	}
	// With 4 memories contention drops, so 4-mem needs no MORE simulated
	// cycles than 1-mem.
	if four.Cycles > one.Cycles {
		t.Errorf("4-mem simulated cycles (%d) exceed 1-mem (%d)", four.Cycles, one.Cycles)
	}
	tbl, err := E1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "degradation") {
		t.Error("table malformed")
	}
}

func TestE2WrapperOverheadBounded(t *testing.T) {
	tbl, err := E2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestE3HeapsimSlower(t *testing.T) {
	events := 1000
	tr := trace.Generate(trace.GenConfig{
		Seed: 31, Events: events, Slots: 32, NumSM: 1,
		MinDim: 8, MaxDim: 128, DType: bus.U32,
		Mix: trace.Mix{Alloc: 30, Free: 28, Read: 21, Write: 21},
	})
	wrap, _, err := RunTrace(config.MemWrapper, tr, trace.ModeDynamic, 1<<22, Mode{})
	if err != nil {
		t.Fatal(err)
	}
	heap, _, err := RunTrace(config.MemHeapSim, tr, trace.ModeDynamic, 1<<22, Mode{})
	if err != nil {
		t.Fatal(err)
	}
	if heap.Cycles <= wrap.Cycles {
		t.Errorf("heapsim %d cycles not slower than wrapper %d", heap.Cycles, wrap.Cycles)
	}
	if _, err := E3(quick); err != nil {
		t.Fatal(err)
	}
}

func TestE4Deterministic(t *testing.T) {
	tabs, err := E4(quick)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tabs[0].String(), "DIVERGED") {
		t.Errorf("determinism broken:\n%s", tabs[0])
	}
}

func TestE1bPipelineRuns(t *testing.T) {
	tbl, err := E1b(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestE5E6E7E8RunClean(t *testing.T) {
	if _, err := E5(quick); err != nil {
		t.Fatal(err)
	}
	if _, err := E6(quick); err != nil {
		t.Fatal(err)
	}
	if _, err := E7(quick); err != nil {
		t.Fatal(err)
	}
	if _, err := E8(quick); err != nil {
		t.Fatal(err)
	}
}

func TestA1CrossbarNoSlowerInSimTime(t *testing.T) {
	tbl, err := A1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestA2BinaryFewerProbes(t *testing.T) {
	tbl, err := A2(quick)
	if err != nil {
		t.Fatal(err)
	}
	// At 10000 allocations the binary search must probe far less than
	// linear. Probe columns are 3 (linear) and 4 (binary).
	last := tbl.Rows[len(tbl.Rows)-1]
	var lin, bin float64
	if _, err := fmtSscan(last[3], &lin); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(last[4], &bin); err != nil {
		t.Fatal(err)
	}
	if bin*10 > lin {
		t.Errorf("binary probes %.1f not ≪ linear %.1f", bin, lin)
	}
}

// fmtSscan wraps fmt.Sscan for float cells.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// TestE9PolicyShape pins E9's acceptance claim on the quick workload:
// first-fit's alloc latency (metered accesses per allocation) grows
// from the early to the late quarter of the adversarial churn, while
// buddy and segregated stay near-flat.
func TestE9PolicyShape(t *testing.T) {
	ops := E9Workload(quick)
	results := map[alloc.Kind]ChurnResult{}
	for _, kind := range alloc.Kinds() {
		r, err := RunChurn(kind, E9Arena(quick), ops)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if r.Allocs == 0 {
			t.Fatalf("%v: no allocations", kind)
		}
		results[kind] = r
	}
	if g := results[alloc.FirstFit].Growth(); g < 5 {
		t.Errorf("first-fit growth %.1fx; want ≥ 5x on the adversarial churn", g)
	}
	for _, kind := range []alloc.Kind{alloc.Buddy, alloc.Segregated} {
		if g := results[kind].Growth(); g > 2 {
			t.Errorf("%v growth %.1fx; want near-flat (≤ 2x)", kind, g)
		}
		if results[kind].LatePerAlloc >= results[alloc.FirstFit].LatePerAlloc/4 {
			t.Errorf("%v late cost %.1f vs first-fit %.1f; want far below",
				kind, results[kind].LatePerAlloc, results[alloc.FirstFit].LatePerAlloc)
		}
	}
	if _, err := E9(quick); err != nil {
		t.Fatal(err)
	}
}

// TestE10MLPAcceptance pins the tentpole's quantitative claim: on the
// multi-memory MLP configuration, depth-4 split-bus transactions beat
// the single-outstanding occupied protocol by at least 1.3× simulated
// cycles, and the split crossbar scales further with depth. Quick-sized
// so CI replays it on every run.
func TestE10MLPAcceptance(t *testing.T) {
	elems := E10Elems(Options{Quick: true})
	streams := E10Streams()
	ref, err := RunMLP(streams, elems, config.InterBus, Mode{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := RunMLP(streams, elems, config.InterBus, Mode{Depth: 4, Split: true})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(ref.Cycles) / float64(deep.Cycles); ratio < 1.3 {
		t.Errorf("depth-4 split bus improved only %.2fx over the occupied protocol (%d vs %d cycles), want ≥ 1.3x",
			ratio, ref.Cycles, deep.Cycles)
	} else {
		t.Logf("depth-4 split bus: %.2fx (%d → %d cycles)", ratio, ref.Cycles, deep.Cycles)
	}
	x1, err := RunMLP(streams, elems, config.InterCrossbar, Mode{Depth: 1, Split: true})
	if err != nil {
		t.Fatal(err)
	}
	x4, err := RunMLP(streams, elems, config.InterCrossbar, Mode{Depth: 4, Split: true})
	if err != nil {
		t.Fatal(err)
	}
	if x4.Cycles >= x1.Cycles {
		t.Errorf("split crossbar did not scale with depth: %d cycles at d=1, %d at d=4", x1.Cycles, x4.Cycles)
	}
}

// TestE10Table smoke-runs the full E10 sweep at quick scale.
func TestE10Table(t *testing.T) {
	if _, err := E10(Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
}

// TestE11CacheAcceptance pins the cache hierarchy's quantitative claim:
// on the locality-heavy configuration, coherent private L1s cut
// simulated cycles by at least 1.5x versus the uncached system, with the
// final memory image verified exactly (RunCache fails on any mismatch).
// The sharing-heavy configuration must stay correct under the
// false-sharing invalidation storm and actually exercise the snoop
// protocol. Quick-sized so CI replays it on every run.
func TestE11CacheAcceptance(t *testing.T) {
	locality, sharing := E11Workload(Options{Quick: true})
	base, _, err := RunCache(locality, false, config.InterBus, Mode{})
	if err != nil {
		t.Fatal(err)
	}
	cached, _, err := RunCache(locality, true, config.InterBus, Mode{})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(base.Cycles) / float64(cached.Cycles); ratio < 1.5 {
		t.Errorf("coherent L1s improved only %.2fx on the locality-heavy config (%d vs %d cycles), want ≥ 1.5x",
			ratio, base.Cycles, cached.Cycles)
	} else {
		t.Logf("coherent L1s: %.2fx (%d → %d cycles), hit rate %.1f%%",
			ratio, base.Cycles, cached.Cycles, 100*cached.HitRate())
	}
	if cached.HitRate() < 0.5 {
		t.Errorf("locality-heavy hit rate %.1f%% implausibly low", 100*cached.HitRate())
	}
	share, _, err := RunCache(sharing, true, config.InterBus, Mode{})
	if err != nil {
		t.Fatal(err)
	}
	if share.Invalidations == 0 || share.Flushes == 0 {
		t.Errorf("sharing-heavy config exercised no snooping: %+v", share)
	}
}

// TestE11Table smoke-runs the full E11 sweep at quick scale.
func TestE11Table(t *testing.T) {
	if _, err := E11(Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
}

// TestE12PartitionAcceptance pins the L2 partitioning claim: on the
// asymmetric thrasher/reuse workload, UCP finishes the reuse-heavy PE
// at least 1.5x sooner than unpartitioned shared LRU, actually
// repartitions, and produces the exact final memory image (RunE12
// fails on any mismatch). Full-sized — the quick scale ends before the
// utility monitors amortize their warm-up.
func TestE12PartitionAcceptance(t *testing.T) {
	w := E12Params(Options{})
	lru, _, err := RunE12(w, cache.PartNone, Mode{})
	if err != nil {
		t.Fatal(err)
	}
	ucp, _, err := RunE12(w, cache.PartUCP, Mode{})
	if err != nil {
		t.Fatal(err)
	}
	if ucp.L2.Repartitions == 0 {
		t.Error("UCP never repartitioned")
	}
	if ratio := float64(lru.ReuseCycles) / float64(ucp.ReuseCycles); ratio < 1.5 {
		t.Errorf("UCP recovered only %.2fx reuse-PE throughput (%d vs %d cycles), want ≥ 1.5x; L2 %+v vs %+v",
			ratio, lru.ReuseCycles, ucp.ReuseCycles, lru.L2, ucp.L2)
	} else {
		t.Logf("UCP recovery: %.2fx (%d → %d reuse-PE cycles), hit rate %.1f%% vs %.1f%%, %d repartitions",
			ratio, lru.ReuseCycles, ucp.ReuseCycles,
			100*ucp.L2.HitRate(), 100*lru.L2.HitRate(), ucp.L2.Repartitions)
	}
	// The DRAM leg must stay correct and exercise the bank model.
	dr, _, err := RunE12(w, cache.PartUCP, Mode{DRAM: true})
	if err != nil {
		t.Fatal(err)
	}
	if dr.DRAM.RowHits+dr.DRAM.RowMisses+dr.DRAM.RowConflicts == 0 {
		t.Errorf("DRAM leg recorded no row activity: %+v", dr.DRAM)
	}
}

// TestE12Table smoke-runs the full E12 sweep at quick scale.
func TestE12Table(t *testing.T) {
	tbl, err := E12(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
}
