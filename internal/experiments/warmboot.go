package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"time"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file is the warm-boot sweep: instead of paying the workload's
// warm-up phase once per swept configuration, the sweep runs it once,
// snapshots, and fans every scheduler variant out from the snapshot.
// The bit-identical scheduler matrix is what makes this sound — a
// snapshot taken under one kernel mode resumes under any other and
// still produces the cold run's exact cycle count — and the WB
// experiment proves it by checking, not assuming.

// WarmBootCache memoizes finished runs by (config hash, snapshot
// hash): with a deterministic simulator, that pair fully determines
// the result, so a hit can skip the simulation outright.
type WarmBootCache struct {
	results map[string]stats.RunResult
	Hits    uint64
	Misses  uint64
}

// NewWarmBootCache returns an empty cache.
func NewWarmBootCache() *WarmBootCache {
	return &WarmBootCache{results: make(map[string]stats.RunResult)}
}

// Key combines a full config hash with a snapshot hash.
func (c *WarmBootCache) Key(cfg config.SystemConfig, snapHash string) string {
	return cfg.Hash() + ":" + snapHash
}

// Get looks up a cached result.
func (c *WarmBootCache) Get(key string) (stats.RunResult, bool) {
	r, ok := c.results[key]
	if ok {
		c.Hits++
	} else {
		c.Misses++
	}
	return r, ok
}

// Put stores a result.
func (c *WarmBootCache) Put(key string, r stats.RunResult) { c.results[key] = r }

// SnapshotHash digests snapshot bytes for cache keying.
func SnapshotHash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}

// wbConfig is the warm-boot experiment's system: the paper's 4-ISS GSM
// configuration against one wrapper memory.
func wbConfig(m Mode) config.SystemConfig {
	cfg := m.sysConfig()
	cfg.Masters, cfg.Memories, cfg.MemKind = 4, 1, config.MemWrapper
	return cfg
}

func wbBuild(frames int, m Mode) (*config.System, error) {
	sys, err := config.Build(wbConfig(m))
	if err != nil {
		return nil, err
	}
	progs := make([][]byte, 4)
	for i := range progs {
		p, err := isa.Assemble(workload.GSMKernelSource(workload.GSMKernelConfig{
			Frames: frames, SM: 0, Seed: uint32(i + 1),
		}))
		if err != nil {
			return nil, err
		}
		progs[i] = p.Code
	}
	if err := sys.AddCPUs(progs...); err != nil {
		return nil, err
	}
	return sys, nil
}

func wbFinish(sys *config.System, m Mode) (uint64, error) {
	if _, err := m.runUntil(sys.Kernel, sys.CPUsHalted, runLimit); err != nil {
		return 0, err
	}
	for i, cpu := range sys.CPUs {
		if cpu.ExitCode() != 0 {
			return 0, fmt.Errorf("iss %d exited %#x", i, cpu.ExitCode())
		}
	}
	return sys.Kernel.Cycle(), nil
}

// WarmBootSnapshot runs the shared warm-up phase — warmFrac of the
// cold run's cycles — once, in mode m, and returns the snapshot bytes
// plus the warm-up cycle count.
func WarmBootSnapshot(frames int, m Mode, coldCycles uint64) ([]byte, uint64, error) {
	warmK := coldCycles / 2
	sys, err := wbBuild(frames, m)
	if err != nil {
		return nil, 0, err
	}
	if err := runCtx(m.ctx, sys.Kernel, warmK); err != nil {
		return nil, 0, err
	}
	data, err := sys.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	return data, warmK, nil
}

// WarmBootColdRun runs the WB workload from cycle 0 in mode m and
// returns its total cycle count (benchmark support).
func WarmBootColdRun(frames int, m Mode) (uint64, error) {
	sys, err := wbBuild(frames, m)
	if err != nil {
		return 0, err
	}
	return wbFinish(sys, m)
}

// WarmBootResume restores the WB workload's snapshot under mode m and
// runs the remainder, returning the total cycle count (benchmark
// support).
func WarmBootResume(m Mode, snap []byte) (uint64, error) {
	sys, err := config.RestoreSystem(wbConfig(m), snap)
	if err != nil {
		return 0, err
	}
	return wbFinish(sys, m)
}

// WB is the warm-boot experiment: a scheduler sweep over the GSM
// configuration, run cold (from cycle 0) and warm (restored from one
// shared warm-up snapshot), with per-variant results memoized by
// (config hash, snapshot hash). Every warm leg must reproduce the cold
// leg's exact cycle count — restore correctness is asserted inside the
// measurement, not alongside it.
func WB(o Options) (*stats.Table, error) {
	frames := o.pick(20, 3)
	base := o.mode()

	// Cold reference: learns the total cycle count the warm legs must hit.
	refSys, err := wbBuild(frames, base)
	if err != nil {
		return nil, err
	}
	total, err := wbFinish(refSys, base)
	if err != nil {
		return nil, err
	}

	// Shared warm-up: one run to total/2, snapshotted once — or, when
	// o.Restore names a file, loaded from a previous run's checkpoint
	// (an incompatible file fails on the first warm leg's restore).
	var snap []byte
	var warmK uint64
	if o.Restore != "" {
		snap, err = os.ReadFile(o.Restore)
		if err != nil {
			return nil, err
		}
	} else {
		snap, warmK, err = WarmBootSnapshot(frames, base, total)
		if err != nil {
			return nil, err
		}
	}
	if o.Checkpoint != "" {
		if err := os.WriteFile(o.Checkpoint, snap, 0o644); err != nil {
			return nil, err
		}
	}
	snapHash := SnapshotHash(snap)

	variants := []struct {
		name string
		mode Mode
	}{
		{"lockstep/w1", func() Mode { m := base; m.Lockstep, m.Workers = true, 1; return m }()},
		{"event-driven/w1", func() Mode { m := base; m.Lockstep, m.Workers = false, 1; return m }()},
		{"event-driven/w4", func() Mode { m := base; m.Lockstep, m.Workers = false, 4; return m }()},
		// Repeated on purpose: the second run must come from the result
		// cache without simulating.
		{"event-driven/w1 (again)", func() Mode { m := base; m.Lockstep, m.Workers = false, 1; return m }()},
	}

	cache := NewWarmBootCache()
	warmDesc := fmt.Sprintf("warm-up %d of %d cycles", warmK, total)
	if o.Restore != "" {
		warmDesc = fmt.Sprintf("warm-up restored from %s, %d total cycles", o.Restore, total)
	}
	t := stats.NewTable(
		fmt.Sprintf("WB: warm-boot sweep on GSM 4 ISS / 1 mem (%d frames, %s, snapshot %d KiB)",
			frames, warmDesc, len(snap)/1024),
		"variant", "cold wall", "warm wall", "saving", "cycles", "source")
	for _, v := range variants {
		cfg := wbConfig(v.mode)
		key := cache.Key(cfg, snapHash)
		if r, ok := cache.Get(key); ok {
			t.Add(v.name, "-", "0s", "-", fmt.Sprint(r.Cycles), "cache hit")
			continue
		}
		// Cold leg.
		coldSys, err := wbBuild(frames, v.mode)
		if err != nil {
			return nil, err
		}
		coldStart := time.Now()
		coldCycles, err := wbFinish(coldSys, v.mode)
		if err != nil {
			return nil, err
		}
		coldWall := time.Since(coldStart)
		// Warm leg: restore the shared snapshot under this variant's
		// scheduler knobs and run the remainder.
		warmStart := time.Now()
		warmSys, err := config.RestoreSystem(cfg, snap)
		if err != nil {
			return nil, err
		}
		warmCycles, err := wbFinish(warmSys, v.mode)
		if err != nil {
			return nil, err
		}
		warmWall := time.Since(warmStart)
		if coldCycles != total || warmCycles != total {
			return nil, fmt.Errorf("wb %s: cycles diverged: cold %d, warm %d, reference %d",
				v.name, coldCycles, warmCycles, total)
		}
		saving := 1 - warmWall.Seconds()/coldWall.Seconds()
		r := stats.RunResult{Name: v.name, Cycles: warmCycles, Wall: warmWall}
		cache.Put(key, r)
		t.Add(v.name, coldWall.Round(time.Millisecond).String(), warmWall.Round(time.Millisecond).String(),
			stats.Pct(saving), fmt.Sprint(warmCycles), "simulated")
	}
	return t, nil
}
