package experiments

import (
	"context"
	"errors"
	"testing"
)

func TestLegSpecKeySemantics(t *testing.T) {
	base := LegSpec{Name: "a", Workload: "gsm", ISSes: 2, Frames: 2}
	key := func(l LegSpec, snap string) string {
		k, err := l.Key(snap)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	if key(base, "") != key(base, "") {
		t.Error("key not stable")
	}
	// Presentation-only fields do not address results.
	renamed := base
	renamed.Name = "b"
	if key(renamed, "") != key(base, "") {
		t.Error("name changed the key")
	}
	// The zero spec and its explicit normalization are the same leg.
	if key(LegSpec{}, "") != key(LegSpec{Workload: "gsm", ISSes: 4, Memories: 1, Frames: 4, Seed: 1}, "") {
		t.Error("normalization changed the key")
	}
	// Scheduler knobs are part of the FULL key (the stored result
	// reports wall time), workload changes obviously too.
	for name, varied := range map[string]LegSpec{
		"workers":  {Name: "a", Workload: "gsm", ISSes: 2, Frames: 2, Workers: 4},
		"lockstep": {Name: "a", Workload: "gsm", ISSes: 2, Frames: 2, Lockstep: true},
		"frames":   {Name: "a", Workload: "gsm", ISSes: 2, Frames: 3},
		"seed":     {Name: "a", Workload: "gsm", ISSes: 2, Frames: 2, Seed: 9},
	} {
		if key(varied, "") == key(base, "") {
			t.Errorf("%s change did not change the key", name)
		}
	}
	// A different warm snapshot is a different result.
	if key(base, "abc") == key(base, "") || key(base, "abc") == key(base, "def") {
		t.Error("snapshot hash not part of the key")
	}
}

func TestLegSpecStateKeyIgnoresScheduler(t *testing.T) {
	stateKey := func(l LegSpec) string {
		k, err := l.StateKey(1000)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := LegSpec{Workload: "gsm", ISSes: 2, Frames: 2}
	sched := base
	sched.Lockstep, sched.Workers = true, 4
	if stateKey(base) != stateKey(sched) {
		t.Error("scheduler knobs changed the warm-boot compatibility class")
	}
	observable := base
	observable.Split = true
	if stateKey(base) == stateKey(observable) {
		t.Error("observable protocol change kept the compatibility class")
	}
	if k1, _ := base.StateKey(1000); func() string { k, _ := base.StateKey(2000); return k }() == k1 {
		t.Error("warm-up length not part of the state key")
	}
}

func TestLegSpecValidate(t *testing.T) {
	for name, bad := range map[string]LegSpec{
		"workload":   {Workload: "quake"},
		"isses":      {ISSes: 65},
		"neg frames": {Frames: -1},
		"alloc":      {Alloc: "yolo"},
		"partition":  {Partition: "diag"},
		"l2 on gsm":  {Workload: "gsm", L2: true},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
	if err := (LegSpec{}).Validate(); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
	if err := (LegSpec{Workload: "sweep", L2: true, Dram: true, Partition: "ucp"}).Validate(); err != nil {
		t.Errorf("L2+DRAM sweep rejected: %v", err)
	}
}

func TestSimRunnerDeterministicAndResumable(t *testing.T) {
	leg := LegSpec{Workload: "gsm", ISSes: 2, Frames: 2}
	r := SimRunner{}
	ctx := context.Background()

	cold1, err := r.RunLeg(ctx, leg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold2, err := r.RunLeg(ctx, leg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !cold1.Identical(cold2) {
		t.Fatalf("cold runs diverged: %+v vs %+v", cold1, cold2)
	}
	if cold1.Cycles == 0 || cold1.Instructions == 0 || len(cold1.Stats) == 0 {
		t.Fatalf("degenerate result: %+v", cold1)
	}

	// Warm-boot: resume from a 1500-cycle prefix, land bit-identical.
	snap, err := r.Warmup(ctx, leg, 1500)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := r.RunLeg(ctx, leg, snap)
	if err != nil {
		t.Fatal(err)
	}
	if warm.StartCycle != 1500 {
		t.Errorf("warm run started at %d, want 1500", warm.StartCycle)
	}
	if !warm.Identical(cold1) {
		t.Fatalf("warm-boot diverged from cold: %+v vs %+v", warm, cold1)
	}
	// A different scheduler mode stays in the same compatibility class
	// and still lands on the same result.
	fast := leg
	fast.Lockstep, fast.Workers = true, 2
	warmFast, err := r.RunLeg(ctx, fast, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !warmFast.Identical(cold1) {
		t.Fatalf("cross-scheduler warm-boot diverged: %+v vs %+v", warmFast, cold1)
	}
}

func TestSimRunnerCancellation(t *testing.T) {
	leg := LegSpec{Workload: "gsm", ISSes: 2, Frames: 64}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (SimRunner{}).RunLeg(ctx, leg, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}
	if _, err := (SimRunner{}).Warmup(ctx, leg, 1_000_000); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled warmup returned %v, want context.Canceled", err)
	}
}
