// Package experiments implements the measurement harness behind every
// table and figure of EXPERIMENTS.md. Each exported Ex function builds
// fresh systems, runs seeded workloads, and returns formatted tables;
// cmd/experiments prints them and the root benchmarks reuse the
// runners.
//
// The paper's single quantitative result — a 20% simulation-speed
// degradation going from one to four wrapper memories under a 4-ISS GSM
// workload — is experiment E1. The remaining experiments measure the
// paper's qualitative claims (low overhead, accuracy, large dynamic
// data, pointer arithmetic, coherence) and the ablations DESIGN.md
// commits to. See DESIGN.md §5 for the experiment index.
//
// # Options and modes
//
// Options tunes a whole suite invocation (Quick shrinks workloads for
// smoke runs; the remaining fields pin scheduler, allocator, port and
// cache configuration for every measured system). Mode is the
// per-run scheduler selection the differential tests sweep: lockstep
// versus event-driven, sequential versus sharded-parallel ticking, and
// the ISS fast paths — axes that are observably identical by
// construction and proven so by the scheduler differential matrix in
// this package's tests.
//
// # Warm-boot sweeps
//
// WB is the checkpoint/restore experiment: it runs the shared GSM
// warm-up phase once, snapshots (config.System.Snapshot), fans the
// scheduler variants out from that one snapshot via
// config.RestoreSystem, and memoizes finished runs in a WarmBootCache
// keyed by (config hash, snapshot hash). Every warm leg must reproduce
// the cold leg's exact cycle count — restore correctness is asserted
// inside the measurement. The snapshot differential tests
// (TestSchedDiffSnapshot and friends) hold the underlying machinery to
// bit-identical resume across the scheduler matrix, including VCD byte
// identity across the checkpoint boundary.
package experiments
