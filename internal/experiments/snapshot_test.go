package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dma"
	"repro/internal/isa"
	"repro/internal/sim"
	snaplib "repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file is the checkpoint/restore differential harness: run-to-N
// must be bit-identical — final cycle count, every stats counter,
// golden ISS output, VCD bytes — to run-to-K + save + restore +
// run-to-(N−K). The restore side additionally sweeps the scheduler
// matrix (lockstep × event-driven × workers {1,4} × cache on/off):
// a snapshot taken under the reference mode must resume correctly
// under every other mode, which is exactly the warm-boot sweep
// contract. Corrupt, truncated, and version-skewed snapshots must
// fail loudly with a sectioned error, never load garbage.

// snapDiffModes is the restore-side scheduler matrix.
var snapDiffModes = []Mode{
	{Lockstep: true, Workers: 1},
	{Lockstep: true, Workers: 4},
	{Lockstep: false, Workers: 1},
	{Lockstep: false, Workers: 4},
	{Lockstep: false, Workers: 1, NoBatch: true, NoDecodeCache: true},
}

// cacheTrafficSource is the scalar load/store sweep against static
// memory 0 — the only traffic class the L1 caches: repeated sweeps
// over an interleaved word range (neighbouring CPUs share cache
// lines, so multi-master runs exercise MESI invalidation mid-flight).
// The kernel itself is the mpsim "sweep" workload.
func cacheTrafficSource(iters, base, stride, n, seed int) string {
	return workload.SweepKernelSource(workload.SweepKernelConfig{
		Iterations: iters, SM: 0, Base: base, Stride: stride, Words: n, Seed: uint32(seed),
	})
}

// snapScenario is one checkpointable workload: cfg yields the
// SystemConfig for a kernel mode, build wires and attaches a fresh
// system (without running it), done is the completion predicate and
// verify checks golden outcomes on a finished system.
type snapScenario struct {
	name   string
	cfg    func(m Mode) config.SystemConfig
	build  func(m Mode) (*config.System, error)
	done   func(sys *config.System) func() bool
	verify func(sys *config.System) error
}

func gsmSnapScenario() snapScenario {
	cfg := func(m Mode) config.SystemConfig {
		c := m.sysConfig()
		c.Masters, c.Memories, c.MemKind = 2, 2, config.MemWrapper
		return c
	}
	return snapScenario{
		name: "gsm-wrapper",
		cfg:  cfg,
		build: func(m Mode) (*config.System, error) {
			sys, err := config.Build(cfg(m))
			if err != nil {
				return nil, err
			}
			var progs [][]byte
			for i := 0; i < 2; i++ {
				p, err := isa.Assemble(workload.GSMKernelSource(workload.GSMKernelConfig{
					Frames: 2, SM: i, Seed: uint32(i + 1),
				}))
				if err != nil {
					return nil, err
				}
				progs = append(progs, p.Code)
			}
			if err := sys.AddCPUs(progs...); err != nil {
				return nil, err
			}
			return sys, nil
		},
		done: func(sys *config.System) func() bool { return sys.CPUsHalted },
		verify: func(sys *config.System) error {
			for i, cpu := range sys.CPUs {
				if cpu.ExitCode() != 0 {
					return fmt.Errorf("iss %d exited %#x", i, cpu.ExitCode())
				}
			}
			return nil
		},
	}
}

func cacheSnapScenario() snapScenario {
	cfg := func(m Mode) config.SystemConfig {
		c := m.sysConfig()
		c.Masters, c.Memories, c.MemKind = 2, 1, config.MemStatic
		c.Cache, c.Coherent = true, true
		return c
	}
	return snapScenario{
		name: "cache-static",
		cfg:  cfg,
		build: func(m Mode) (*config.System, error) {
			sys, err := config.Build(cfg(m))
			if err != nil {
				return nil, err
			}
			var progs [][]byte
			for i := 0; i < 2; i++ {
				// Interleaved word ranges: CPU 0 owns words 0,2,4,…, CPU 1
				// owns 1,3,5,… — every line is falsely shared.
				p, err := isa.Assemble(cacheTrafficSource(6, 4*i, 8, 24, 16*(i+1)))
				if err != nil {
					return nil, err
				}
				progs = append(progs, p.Code)
			}
			if err := sys.AddCPUs(progs...); err != nil {
				return nil, err
			}
			return sys, nil
		},
		done: func(sys *config.System) func() bool { return sys.CPUsHalted },
		verify: func(sys *config.System) error {
			for i, cpu := range sys.CPUs {
				if cpu.ExitCode() != 0 {
					return fmt.Errorf("iss %d exited %#x", i, cpu.ExitCode())
				}
			}
			hits := uint64(0)
			for _, c := range sys.Caches {
				hits += c.Stats().Hits
			}
			if hits == 0 {
				return fmt.Errorf("cached run served no hits")
			}
			return nil
		},
	}
}

func dmaSnapScenario() snapScenario {
	const elems = 256
	cfg := func(m Mode) config.SystemConfig {
		c := m.sysConfig()
		c.Masters, c.Memories, c.MemKind = 1, 2, config.MemWrapper
		c.OutstandingDepth, c.SplitBus, c.OutOfOrder = 4, true, true
		return c
	}
	return snapScenario{
		name: "dma-mlp",
		cfg:  cfg,
		build: func(m Mode) (*config.System, error) {
			sys, err := config.Build(cfg(m))
			if err != nil {
				return nil, err
			}
			src, code := sys.Wrappers[0].Table().Alloc(elems, bus.U32)
			if code != bus.OK {
				return nil, fmt.Errorf("src alloc: %v", code)
			}
			dst, code := sys.Wrappers[1].Table().Alloc(elems, bus.U32)
			if code != bus.OK {
				return nil, fmt.Errorf("dst alloc: %v", code)
			}
			tr := core.Translator{}
			e, _, _ := sys.Wrappers[0].Table().Resolve(src)
			for j := uint32(0); j < elems; j++ {
				tr.WriteElem(e.Host, bus.U32, j, 0xD1A00000+j)
			}
			eng, err := sys.AddDMA(0, "dma0")
			if err != nil {
				return nil, err
			}
			eng.Enqueue(dma.Descriptor{
				SrcSM: 0, DstSM: 1, SrcVPtr: src, DstVPtr: dst,
				Elems: elems, DType: bus.U32, Chunk: 32,
			})
			return sys, nil
		},
		done: func(sys *config.System) func() bool { return sys.DMAs[0].Idle },
		verify: func(sys *config.System) error {
			d := sys.DMAs[0].Done()
			if len(d) != 1 || d[0].Err != bus.OK || d[0].Moved != elems {
				return fmt.Errorf("dma outcome %+v", d)
			}
			tr := core.Translator{}
			e, _, ok := sys.Wrappers[1].Table().Resolve(d[0].Desc.DstVPtr)
			if !ok {
				return fmt.Errorf("dst allocation vanished")
			}
			for j := uint32(0); j < elems; j++ {
				if got, want := tr.ReadElem(e.Host, bus.U32, j), 0xD1A00000+j; got != want {
					return fmt.Errorf("dst elem %d = %#x, want %#x", j, got, want)
				}
			}
			return nil
		},
	}
}

// l2dramSnapScenario stacks the full two-level hierarchy over banked
// DRAM: falsely-shared L1 traffic through a deliberately tiny shared
// inclusive L2 (UCP-partitioned, so the UMON shadow tags and the
// repartition schedule ride in the snapshot) into a 4-bank open-page
// DRAM with a short refresh epoch. At the mid-flight checkpoint the
// L2's MSHRs, writeback queues and private memory-side links plus the
// DRAM's row-buffer registers and refresh phase are all live — the
// restore matrix proves every one of them round-trips bit-identically.
func l2dramSnapScenario() snapScenario {
	cfg := func(m Mode) config.SystemConfig {
		c := m.sysConfig()
		c.Masters, c.Memories, c.MemKind = 2, 1, config.MemDRAM
		c.Cache, c.Coherent, c.L2 = true, true, true
		c.CacheSets, c.CacheWays = 2, 1
		c.L2Sets, c.L2Ways, c.L2MSHRs = 2, 4, 4
		c.Partition, c.UCPPeriod = cache.PartUCP, 64
		c.DRAMBanks = 4
		c.DRAMRefreshPeriod, c.DRAMRefreshCycles = 512, 16
		return c
	}
	return snapScenario{
		name: "l2-dram-ucp",
		cfg:  cfg,
		build: func(m Mode) (*config.System, error) {
			sys, err := config.Build(cfg(m))
			if err != nil {
				return nil, err
			}
			var progs [][]byte
			for i := 0; i < 2; i++ {
				p, err := isa.Assemble(cacheTrafficSource(6, 4*i, 8, 24, 16*(i+1)))
				if err != nil {
					return nil, err
				}
				progs = append(progs, p.Code)
			}
			if err := sys.AddCPUs(progs...); err != nil {
				return nil, err
			}
			return sys, nil
		},
		done: func(sys *config.System) func() bool { return sys.CPUsHalted },
		verify: func(sys *config.System) error {
			for i, cpu := range sys.CPUs {
				if cpu.ExitCode() != 0 {
					return fmt.Errorf("iss %d exited %#x", i, cpu.ExitCode())
				}
			}
			l2 := sys.L2.Stats()
			if l2.Hits == 0 || l2.Misses == 0 {
				return fmt.Errorf("L2 saw no mixed traffic: %+v", l2)
			}
			d := sys.DRAMs[0].Stats()
			if d.RowHits+d.RowMisses+d.RowConflicts == 0 {
				return fmt.Errorf("DRAM banks saw no accesses: %+v", d)
			}
			return nil
		},
	}
}

// TestSchedDiffSnapshot is the differential restore matrix. For every
// scenario: a straight run-to-N in the reference mode pins the golden
// observables; a second reference-mode run stops at K = N/2 and
// snapshots; then every scheduler mode restores that one snapshot —
// through the self-contained RestoreSystem path — runs the remaining
// N−K cycles, and must land on the exact golden observables. One leg
// also exercises the in-place RestoreSnapshot path on an
// identically-built system.
func TestSchedDiffSnapshot(t *testing.T) {
	refMode := Mode{Lockstep: true, Workers: 1}
	for _, sc := range []snapScenario{gsmSnapScenario(), cacheSnapScenario(), dmaSnapScenario(), l2dramSnapScenario()} {
		t.Run(sc.name, func(t *testing.T) {
			// Straight run: the golden reference.
			refSys, err := sc.build(refMode)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := refSys.Kernel.RunUntil(sc.done(refSys), runLimit); err != nil {
				t.Fatal(err)
			}
			if err := sc.verify(refSys); err != nil {
				t.Fatal(err)
			}
			ref := snapshot(refSys)
			if ref.Cycles < 4 {
				t.Fatalf("scenario too short to checkpoint: %d cycles", ref.Cycles)
			}

			// Save leg: same build, stopped mid-flight at K.
			k := ref.Cycles / 2
			saveSys, err := sc.build(refMode)
			if err != nil {
				t.Fatal(err)
			}
			if err := saveSys.Kernel.Run(k); err != nil {
				t.Fatal(err)
			}
			data, err := saveSys.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			// Restore matrix: every scheduler mode resumes the one snapshot.
			for _, m := range snapDiffModes {
				warm, err := config.RestoreSystem(sc.cfg(m), data)
				if err != nil {
					t.Fatalf("%s: restore: %v", modeName(m), err)
				}
				if got := warm.Kernel.Cycle(); got != k {
					t.Fatalf("%s: restored kernel at cycle %d, want %d", modeName(m), got, k)
				}
				if _, err := warm.Kernel.RunUntil(sc.done(warm), runLimit); err != nil {
					t.Fatalf("%s: resume: %v", modeName(m), err)
				}
				if err := sc.verify(warm); err != nil {
					t.Fatalf("%s: %v", modeName(m), err)
				}
				if got := snapshot(warm); !reflect.DeepEqual(ref, got) {
					t.Fatalf("%s: restored run diverged from straight run\nstraight: %+v\nrestored: %+v",
						modeName(m), ref, got)
				}
			}

			// In-place path: restore into an identically built system.
			inplace, err := sc.build(refMode)
			if err != nil {
				t.Fatal(err)
			}
			if err := inplace.RestoreSnapshot(data); err != nil {
				t.Fatal(err)
			}
			if _, err := inplace.Kernel.RunUntil(sc.done(inplace), runLimit); err != nil {
				t.Fatal(err)
			}
			if got := snapshot(inplace); !reflect.DeepEqual(ref, got) {
				t.Fatalf("in-place restore diverged from straight run\nstraight: %+v\nrestored: %+v", ref, got)
			}
		})
	}
}

// TestSchedDiffSnapshotVCD demands VCD byte identity across a
// checkpoint: one VCD instance traces the save leg to K, re-attaches
// to the restored system, traces to N — and the bytes must equal the
// straight run's trace. The probes read through a mutable system
// pointer so the same variables keep sampling after the swap.
func TestSchedDiffSnapshotVCD(t *testing.T) {
	sc := gsmSnapScenario()
	refMode := Mode{Lockstep: false, Workers: 1}

	probeVCD := func(buf *bytes.Buffer, cur **config.System) *sim.VCD {
		vcd := sim.NewVCD(buf, "1ns")
		vcd.AddVar("mem", "live", 16, func() uint64 { return uint64((*cur).Wrappers[0].Table().Len()) })
		vcd.AddVar("bus", "transactions", 32, func() uint64 { return (*cur).Inter.Stats().Transactions })
		return vcd
	}

	// Straight traced run.
	var straight bytes.Buffer
	sys, err := sc.build(refMode)
	if err != nil {
		t.Fatal(err)
	}
	cur := sys
	vcd := probeVCD(&straight, &cur)
	sys.Kernel.AfterCycle(vcd.Sample)
	if _, err := sys.Kernel.RunUntil(sc.done(sys), runLimit); err != nil {
		t.Fatal(err)
	}
	if err := vcd.Flush(); err != nil {
		t.Fatal(err)
	}
	n := sys.Kernel.Cycle()

	// Checkpointed traced run: same probes, one VCD, two kernels.
	var split bytes.Buffer
	saveSys, err := sc.build(refMode)
	if err != nil {
		t.Fatal(err)
	}
	cur2 := saveSys
	vcd2 := probeVCD(&split, &cur2)
	saveSys.Kernel.AfterCycle(vcd2.Sample)
	if err := saveSys.Kernel.Run(n / 2); err != nil {
		t.Fatal(err)
	}
	data, err := saveSys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := config.RestoreSystem(sc.cfg(refMode), data)
	if err != nil {
		t.Fatal(err)
	}
	cur2 = warm
	warm.Kernel.AfterCycle(vcd2.Sample)
	if _, err := warm.Kernel.RunUntil(sc.done(warm), runLimit); err != nil {
		t.Fatal(err)
	}
	if err := vcd2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(straight.Bytes(), split.Bytes()) {
		t.Fatalf("VCD diverged across checkpoint: straight %d bytes, save+restore %d bytes",
			straight.Len(), split.Len())
	}
}

// TestSnapshotFailureModes pins the loud-failure contract: damaged or
// incompatible snapshots error with a named section or a version
// message — and never restore partial state silently.
func TestSnapshotFailureModes(t *testing.T) {
	sc := gsmSnapScenario()
	refMode := Mode{Lockstep: true, Workers: 1}
	sys, err := sc.build(refMode)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Kernel.Run(200); err != nil {
		t.Fatal(err)
	}
	data, err := sys.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("corrupted", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(bad)/2] ^= 0x20
		_, err := config.RestoreSystem(sc.cfg(refMode), bad)
		if err == nil {
			t.Fatal("corrupted snapshot restored")
		}
		if !strings.Contains(err.Error(), "checksum mismatch") && !strings.Contains(err.Error(), "section") {
			t.Fatalf("corruption error not sectioned: %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 3, len(data) / 3, len(data) - 1} {
			if _, err := config.RestoreSystem(sc.cfg(refMode), data[:cut]); err == nil {
				t.Fatalf("truncated snapshot (%d bytes) restored", cut)
			}
		}
	})
	t.Run("version-mismatch", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(snaplib.Magic)] ^= 0xFF // version field
		_, err := config.RestoreSystem(sc.cfg(refMode), bad)
		if !errors.Is(err, snaplib.ErrVersion) {
			t.Fatalf("err = %v, want ErrVersion", err)
		}
	})
	t.Run("wrong-config", func(t *testing.T) {
		other := sc.cfg(refMode)
		other.MemBytes = 1 << 21
		_, err := config.RestoreSystem(other, data)
		if err == nil || !strings.Contains(err.Error(), "different configuration") {
			t.Fatalf("err = %v, want configuration mismatch", err)
		}
	})
	t.Run("scheduler-knobs-compatible", func(t *testing.T) {
		other := sc.cfg(Mode{Lockstep: false, Workers: 4, NoBatch: true})
		if _, err := config.RestoreSystem(other, data); err != nil {
			t.Fatalf("scheduler-only change rejected: %v", err)
		}
	})
	t.Run("procs-unsupported", func(t *testing.T) {
		tr := trace.Generate(trace.GenConfig{
			Seed: 7, Events: 50, Slots: 8, NumSM: 1,
			MinDim: 4, MaxDim: 16, DType: bus.U32, Mix: trace.DefaultMix(),
		})
		cfg := refMode.sysConfig()
		cfg.Masters, cfg.Memories, cfg.MemKind = 1, 1, config.MemWrapper
		psys, err := config.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := psys.AddProcs(trace.ReplayTask(tr, trace.ModeDynamic, nil)); err != nil {
			t.Fatal(err)
		}
		if err := psys.Kernel.Run(50); err != nil {
			t.Fatal(err)
		}
		_, err = psys.Snapshot()
		if err == nil || !strings.Contains(err.Error(), "cannot snapshot") {
			t.Fatalf("err = %v, want unsupported-module error", err)
		}
	})
}

// TestWarmBootSweep smoke-runs the WB experiment in quick mode: the
// sweep must restore from the shared snapshot, match every cold run's
// cycle count (WB errors internally otherwise), and serve its repeated
// variant from the result cache.
func TestWarmBootSweep(t *testing.T) {
	tab, err := WB(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "cache hit") {
		t.Fatalf("WB table shows no result-cache hit:\n%s", out)
	}
}
