package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/alloc"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dma"
	"repro/internal/gsm"
	"repro/internal/heapsim"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/smapi"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file is the differential harness of the kernel's scheduling
// modes: it replays every experiment configuration class across the
// kernel-mode matrix — lockstep and event-driven stepping, worker
// counts 1/2/4/8 (sequential, sharded commit, subset barrier release),
// and the ISS fast paths (instruction batching, decode cache) on and
// off — and demands bit-identical observable behavior against the
// plain-interpreter lockstep sequential reference: final cycle counts,
// every module's stats counters, golden ISS outputs (console, exit
// codes, instruction and stall counts), PE coroutine accounting, DMA
// outcomes and VCD traces. Run it under -race (CI does, across a
// GOMAXPROCS matrix) and it is also the race-cleanliness proof of the
// parallel tick engine.

// sysSnapshot is everything observable about a finished system.
type sysSnapshot struct {
	Cycles uint64
	Inter  bus.Stats

	Wrappers []core.Stats
	Statics  []mem.Stats
	Heaps    []heapsim.Stats
	DRAMs    []mem.DRAMStats
	Caches   []cache.Stats
	L2s      []cache.L2Stats
	CPUs     []cpuSnapshot
	Procs    []procSnapshot
}

type cpuSnapshot struct {
	Exit    uint32
	Console string
	Icount  uint64
	Stalls  uint64
	Cycles  uint64
	PC      uint32
}

type procSnapshot struct {
	OpsIssued   uint64
	ActiveWakes uint64
	WaitCycles  uint64
	SleepCycles uint64
	Retired     uint64
}

func snapshot(sys *config.System) sysSnapshot {
	s := sysSnapshot{Cycles: sys.Kernel.Cycle(), Inter: sys.Inter.Stats()}
	for _, w := range sys.Wrappers {
		s.Wrappers = append(s.Wrappers, w.Stats())
	}
	for _, r := range sys.Statics {
		s.Statics = append(s.Statics, r.Stats())
	}
	for _, h := range sys.Heaps {
		s.Heaps = append(s.Heaps, h.Stats())
	}
	for _, d := range sys.DRAMs {
		s.DRAMs = append(s.DRAMs, d.Stats())
	}
	for _, c := range sys.Caches {
		s.Caches = append(s.Caches, c.Stats())
	}
	if sys.L2 != nil {
		s.L2s = append(s.L2s, sys.L2.Stats())
	}
	for _, c := range sys.CPUs {
		s.CPUs = append(s.CPUs, cpuSnapshot{
			Exit: c.ExitCode(), Console: c.Console(),
			Icount: c.Icount, Stalls: c.StallCycles, Cycles: c.Cycles, PC: c.PC(),
		})
	}
	for _, p := range sys.Procs {
		s.Procs = append(s.Procs, procSnapshot{
			OpsIssued: p.OpsIssued, ActiveWakes: p.ActiveWakes,
			WaitCycles: p.WaitCycles, SleepCycles: p.SleepCycles, Retired: p.RetiredTasks,
		})
	}
	return s
}

// diffModes is the kernel-mode matrix every scenario replays. The first
// entry — lockstep, sequential, ISS batching and decode cache disabled,
// i.e. the plain single-stepping interpreter — is the reference
// everything else must match bit for bit. The other legs sweep the
// scheduler (lockstep vs event-driven), the tick-phase parallelism
// (workers 1/2/4/8, exercising the shard-local commit, the per-shard
// wake filter and the subset barrier release) and the ISS fast paths
// (batching and the decode cache, individually and together).
var diffModes = []Mode{
	{Lockstep: true, Workers: 1, NoBatch: true, NoDecodeCache: true},
	{Lockstep: true, Workers: 1},
	{Lockstep: false, Workers: 1, NoBatch: true, NoDecodeCache: true},
	{Lockstep: false, Workers: 1},
	{Lockstep: false, Workers: 2},
	{Lockstep: false, Workers: 4, NoBatch: true},
	{Lockstep: false, Workers: 8},
	{Lockstep: true, Workers: 4},
}

func modeName(m Mode) string {
	n := "event-driven"
	if m.Lockstep {
		n = "lockstep"
	}
	n = fmt.Sprintf("%s/workers=%d", n, m.Workers)
	if m.NoBatch {
		n += "/nobatch"
	}
	if m.NoDecodeCache {
		n += "/nodc"
	}
	return n
}

// runBoth builds and runs one scenario in every kernel mode of
// diffModes, compares each snapshot against the lockstep sequential
// reference, and returns the event-driven sequential kernel's scheduling
// stats so callers can assert skipping engaged.
func runBoth(t *testing.T, name string, scenario func(m Mode) (*config.System, error)) sim.SchedStats {
	t.Helper()
	var ref sysSnapshot
	var sched sim.SchedStats
	for i, m := range diffModes {
		sys, err := scenario(m)
		if err != nil {
			t.Fatalf("%s (%s): %v", name, modeName(m), err)
		}
		if got := sys.Kernel.Lockstep(); got != m.Lockstep {
			t.Fatalf("%s: kernel lockstep = %v, want %v", name, got, m.Lockstep)
		}
		if got := sys.Kernel.Sched().Workers; got != m.Workers {
			t.Fatalf("%s: kernel workers = %d, want %d", name, got, m.Workers)
		}
		snap := snapshot(sys)
		if i == 0 {
			ref = snap
		} else if !reflect.DeepEqual(ref, snap) {
			t.Fatalf("%s: kernel modes diverged\n%-24s %+v\n%-24s %+v",
				name, modeName(diffModes[0])+":", ref, modeName(m)+":", snap)
		}
		if !m.Lockstep && m.Workers == 1 {
			sched = sys.Kernel.Sched()
		}
	}
	return sched
}

// TestSchedDiffGSMISS is the paper's E1 configuration: ISSs running the
// GSM traffic kernel over the shared bus against wrapper memories.
func TestSchedDiffGSMISS(t *testing.T) {
	for _, tc := range []struct{ nISS, nMem int }{{1, 1}, {4, 1}, {4, 4}} {
		name := fmt.Sprintf("gsm-iss-%dx%d", tc.nISS, tc.nMem)
		runBoth(t, name, func(m Mode) (*config.System, error) {
			cfg := m.sysConfig()
			cfg.Masters, cfg.Memories, cfg.MemKind = tc.nISS, tc.nMem, config.MemWrapper
			sys, err := config.Build(cfg)
			if err != nil {
				return nil, err
			}
			var progs [][]byte
			for i := 0; i < tc.nISS; i++ {
				p, err := isa.Assemble(workload.GSMKernelSource(workload.GSMKernelConfig{
					Frames: 2, SM: i % tc.nMem, Seed: uint32(i + 1),
				}))
				if err != nil {
					return nil, err
				}
				progs = append(progs, p.Code)
			}
			if err := sys.AddCPUs(progs...); err != nil {
				return nil, err
			}
			if _, err := sys.Kernel.RunUntil(sys.CPUsHalted, runLimit); err != nil {
				return nil, err
			}
			return sys, nil
		})
	}
}

// TestSchedDiffCrossbar is the A1 ablation topology.
func TestSchedDiffCrossbar(t *testing.T) {
	runBoth(t, "crossbar", func(m Mode) (*config.System, error) {
		cfg := m.sysConfig()
		cfg.Masters, cfg.Memories, cfg.MemKind = 2, 2, config.MemWrapper
		cfg.Interconnect = config.InterCrossbar
		sys, err := config.Build(cfg)
		if err != nil {
			return nil, err
		}
		var progs [][]byte
		for i := 0; i < 2; i++ {
			p, err := isa.Assemble(workload.GSMKernelSource(workload.GSMKernelConfig{
				Frames: 2, SM: i, Seed: uint32(i + 1),
			}))
			if err != nil {
				return nil, err
			}
			progs = append(progs, p.Code)
		}
		if err := sys.AddCPUs(progs...); err != nil {
			return nil, err
		}
		if _, err := sys.Kernel.RunUntil(sys.CPUsHalted, runLimit); err != nil {
			return nil, err
		}
		return sys, nil
	})
}

// TestSchedDiffPipeline is the E1b configuration: the bit-exact GSM
// codec on native PEs.
func TestSchedDiffPipeline(t *testing.T) {
	const frames = 3
	runBoth(t, "gsm-pipeline", func(m Mode) (*config.System, error) {
		tasks, res := gsm.BuildPipeline(gsm.PipelineConfig{Frames: frames, Seed: 42, NumSM: 2})
		cfg := m.sysConfig()
		cfg.Masters, cfg.Memories, cfg.MemKind = 4, 2, config.MemWrapper
		sys, err := config.Build(cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.AddProcs(tasks...); err != nil {
			return nil, err
		}
		if _, err := sys.Kernel.RunUntil(sys.ProcsDone, runLimit); err != nil {
			return nil, err
		}
		if res.Frames != frames {
			return nil, fmt.Errorf("pipeline delivered %d/%d frames", res.Frames, frames)
		}
		return sys, nil
	})
}

// TestSchedDiffTraceReplay covers every memory model on the same trace,
// in both the default and an idle-heavy delay configuration. The
// idle-heavy wrapper run must actually skip — it is the configuration
// the tentpole exists for.
func TestSchedDiffTraceReplay(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Seed: 41, Events: 1200, Slots: 16, NumSM: 1,
		MinDim: 4, MaxDim: 64, DType: bus.U32, Mix: trace.DefaultMix(), PtrArithPct: 20,
	})
	for _, tc := range []struct {
		name  string
		kind  config.MemKind
		mode  trace.Mode
		heavy bool
	}{
		{"wrapper", config.MemWrapper, trace.ModeDynamic, false},
		{"wrapper-idle-heavy", config.MemWrapper, trace.ModeDynamic, true},
		{"static", config.MemStatic, trace.ModeStatic, false},
		{"heapsim", config.MemHeapSim, trace.ModeDynamic, false},
	} {
		sched := runBoth(t, "trace-"+tc.name, func(m Mode) (*config.System, error) {
			cfg := m.sysConfig()
			cfg.Masters, cfg.Memories, cfg.MemKind = 1, 1, tc.kind
			cfg.MemBytes = 1 << 22
			if tc.heavy {
				d := evDelays()
				cfg.WrapperDelays = &d
			}
			sys, err := config.Build(cfg)
			if err != nil {
				return nil, err
			}
			if err := sys.AddProcs(trace.ReplayTask(tr, tc.mode, nil)); err != nil {
				return nil, err
			}
			if _, err := sys.Kernel.RunUntil(sys.ProcsDone, runLimit); err != nil {
				return nil, err
			}
			return sys, nil
		})
		if tc.heavy && sched.Skipped == 0 {
			t.Fatalf("trace-%s: event-driven run skipped nothing", tc.name)
		}
	}
}

// TestSchedDiffDMA wires the heterogeneous-master topology: a native PE
// staging buffers, a DMA engine copying between two wrappers.
func TestSchedDiffDMA(t *testing.T) {
	type dmaCapture struct{ done []dma.Status }
	caps := make([]dmaCapture, 0, len(diffModes))
	runBoth(t, "dma", func(m Mode) (*config.System, error) {
		delays := evDelays()
		cfg := m.sysConfig()
		cfg.Masters, cfg.Memories, cfg.MemKind = 2, 2, config.MemWrapper
		cfg.WrapperDelays = &delays
		sys, err := config.Build(cfg)
		if err != nil {
			return nil, err
		}
		var eng *dma.Engine
		peTask := func(ctx *smapi.Ctx) {
			m0, m1 := ctx.Mem(0), ctx.Mem(1)
			src, code := m0.Malloc(64, bus.U32)
			if code != bus.OK {
				panic(code)
			}
			for j := uint32(0); j < 64; j++ {
				if code := m0.Write(src+4*j, 0xA000+j); code != bus.OK {
					panic(code)
				}
			}
			dst, code := m1.Malloc(64, bus.U32)
			if code != bus.OK {
				panic(code)
			}
			eng.Enqueue(dma.Descriptor{
				SrcSM: 0, DstSM: 1, SrcVPtr: src, DstVPtr: dst, Elems: 64, DType: bus.U32, Chunk: 16,
			})
			for !eng.Idle() {
				ctx.Sleep(25)
			}
			got, code := m1.ReadArray(dst, 64)
			if code != bus.OK {
				panic(code)
			}
			for j, v := range got {
				if v != 0xA000+uint32(j) {
					panic("dma copy corrupted")
				}
			}
		}
		if err := sys.AddProcs(peTask); err != nil {
			return nil, err
		}
		eng = dma.New(sys.Kernel, "dma", sys.MasterPorts[1])
		if _, err := sys.Kernel.RunUntil(sys.ProcsDone, runLimit); err != nil {
			return nil, err
		}
		caps = append(caps, dmaCapture{done: eng.Done()})
		return sys, nil
	})
	for i := 1; i < len(caps); i++ {
		if !reflect.DeepEqual(caps[0].done, caps[i].done) {
			t.Fatalf("DMA outcomes diverged (%s vs %s):\n%+v\n%+v",
				modeName(diffModes[0]), modeName(diffModes[i]), caps[0].done, caps[i].done)
		}
	}
}

// TestSchedDiffReservation is the E8 coherence configuration: PEs
// contending on one reserved buffer with sleep-based backoff.
func TestSchedDiffReservation(t *testing.T) {
	const pes, sections = 3, 12
	runBoth(t, "reservation", func(m Mode) (*config.System, error) {
		var vptr uint32
		var ready bool
		var doneCount int
		alloc := func(ctx *smapi.Ctx) {
			m := ctx.Mem(0)
			v, code := m.Malloc(4, bus.U32)
			if code != bus.OK {
				panic(code)
			}
			vptr, ready = v, true
			for doneCount < pes {
				ctx.Sleep(100)
			}
		}
		worker := func(ctx *smapi.Ctx) {
			m := ctx.Mem(0)
			for !ready {
				ctx.Sleep(2)
			}
			for s := 0; s < sections; s++ {
				if code := m.Acquire(vptr, 3); code != bus.OK {
					panic(code)
				}
				v, _ := m.Read(vptr)
				if code := m.Write(vptr, v+1); code != bus.OK {
					panic(code)
				}
				if code := m.Release(vptr); code != bus.OK {
					panic(code)
				}
			}
			doneCount++
		}
		tasks := []smapi.Task{alloc}
		for j := 0; j < pes; j++ {
			tasks = append(tasks, worker)
		}
		cfg := m.sysConfig()
		cfg.Masters, cfg.Memories, cfg.MemKind = pes+1, 1, config.MemWrapper
		sys, err := config.Build(cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.AddProcs(tasks...); err != nil {
			return nil, err
		}
		if _, err := sys.Kernel.RunUntil(sys.ProcsDone, runLimit); err != nil {
			return nil, err
		}
		return sys, nil
	})
}

// TestSchedDiffVCD demands byte-identical waveforms: the interconnect
// handshake signals of a delay-heavy run traced in both modes.
func TestSchedDiffVCD(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Seed: 51, Events: 300, Slots: 8, NumSM: 1,
		MinDim: 4, MaxDim: 32, DType: bus.U32, Mix: trace.DefaultMix(),
	})
	dumps := make([]bytes.Buffer, len(diffModes))
	for i, m := range diffModes {
		delays := evDelays()
		cfg := m.sysConfig()
		cfg.Masters, cfg.Memories, cfg.MemKind = 1, 1, config.MemWrapper
		cfg.WrapperDelays = &delays
		sys, err := config.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		vcd := sim.NewVCD(&dumps[i], "1ns")
		wr := sys.Wrappers[0]
		vcd.AddVar("mem", "live", 16, func() uint64 { return uint64(wr.Table().Len()) })
		ist := func() uint64 { return sys.Inter.Stats().Transactions }
		vcd.AddVar("bus", "transactions", 32, ist)
		sys.Kernel.AfterCycle(vcd.Sample)
		if err := sys.AddProcs(trace.ReplayTask(tr, trace.ModeDynamic, nil)); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Kernel.RunUntil(sys.ProcsDone, runLimit); err != nil {
			t.Fatal(err)
		}
		if err := vcd.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(dumps); i++ {
		if !bytes.Equal(dumps[0].Bytes(), dumps[i].Bytes()) {
			t.Fatalf("VCD dumps diverged (%s %d bytes vs %s %d bytes)",
				modeName(diffModes[0]), dumps[0].Len(), modeName(diffModes[i]), dumps[i].Len())
		}
	}
}

// TestSchedDiffExperimentSuite replays the full quick experiment suite
// in lockstep and asserts nothing errors — together with the scenario
// tests above this pins every Ex configuration in both modes.
func TestSchedDiffExperimentSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite replay")
	}
	o := Options{Quick: true, Lockstep: true}
	if _, err := E1(o); err != nil {
		t.Fatal(err)
	}
	if _, err := E2(o); err != nil {
		t.Fatal(err)
	}
	if _, err := E3(o); err != nil {
		t.Fatal(err)
	}
	if _, err := E4(o); err != nil {
		t.Fatal(err)
	}
	if _, err := EV(Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedDiffAllocPolicy extends the matrix to non-default allocation
// policies: a heapsim memory running its metadata allocator as a binary
// buddy (manager accesses charged cycles — policy choice changes the
// simulated timing, so it must be identical across every kernel mode)
// and a wrapper whose virtual placement runs segregated fit (address
// reuse must be scheduler- and worker-count-invariant). Each scenario
// replays lockstep × event-driven × workers {1,4} and must match the
// lockstep sequential reference bit for bit — stats, golden ISS/PE
// output, cycle counts.
func TestSchedDiffAllocPolicy(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Seed: 61, Events: 1200, Slots: 16, NumSM: 1,
		MinDim: 4, MaxDim: 64, DType: bus.U32, Mix: trace.DefaultMix(), PtrArithPct: 20,
	})
	for _, tc := range []struct {
		name   string
		kind   config.MemKind
		policy alloc.Kind
	}{
		{"heapsim-buddy", config.MemHeapSim, alloc.Buddy},
		{"heapsim-segregated", config.MemHeapSim, alloc.Segregated},
		{"wrapper-segregated", config.MemWrapper, alloc.Segregated},
		{"wrapper-bestfit", config.MemWrapper, alloc.BestFit},
	} {
		runBoth(t, "alloc-"+tc.name, func(m Mode) (*config.System, error) {
			cfg := m.sysConfig()
			cfg.Masters, cfg.Memories, cfg.MemKind = 1, 1, tc.kind
			cfg.MemBytes = 1 << 22
			cfg.AllocPolicy = tc.policy
			sys, err := config.Build(cfg)
			if err != nil {
				return nil, err
			}
			// The policy must actually be in force, not silently defaulted.
			switch tc.kind {
			case config.MemHeapSim:
				if got := sys.Heaps[0].Heap().Policy(); got != tc.policy {
					return nil, fmt.Errorf("heap policy = %v, want %v", got, tc.policy)
				}
			case config.MemWrapper:
				if got := sys.Wrappers[0].Table().PlacementPolicy(); got != tc.policy {
					return nil, fmt.Errorf("placement policy = %v, want %v", got, tc.policy)
				}
			}
			if err := sys.AddProcs(trace.ReplayTask(tr, trace.ModeDynamic, nil)); err != nil {
				return nil, err
			}
			if _, err := sys.Kernel.RunUntil(sys.ProcsDone, runLimit); err != nil {
				return nil, err
			}
			return sys, nil
		})
	}
}

// TestSchedDiffSplitPort extends the matrix along the transaction-
// protocol axes: outstanding depth {1, 4} × {occupied, split} × {bus,
// crossbar}, each replayed across the full kernel-mode matrix (lockstep
// × event-driven × workers {1, 4}) on two workloads that exercise the
// port machinery end-to-end — the 4-ISS GSM configuration (single-
// outstanding masters over multi-depth ports) and a DMA copy pipeline
// (genuinely multi-outstanding at depth 4). Depth 1 occupied is the
// pre-refactor Link protocol, already pinned bit-identically by the
// unit tests and ISS goldens; here every (depth, protocol) point must
// additionally be scheduler- and worker-count-invariant.
func TestSchedDiffSplitPort(t *testing.T) {
	for _, inter := range []config.InterconnectKind{config.InterBus, config.InterCrossbar} {
		for _, depth := range []int{1, 4} {
			for _, split := range []bool{false, true} {
				name := fmt.Sprintf("gsm-%s-d%d-split%v", inter, depth, split)
				runBoth(t, name, func(m Mode) (*config.System, error) {
					cfg := m.sysConfig()
					cfg.Masters, cfg.Memories, cfg.MemKind = 4, 4, config.MemWrapper
					cfg.Interconnect, cfg.OutstandingDepth, cfg.SplitBus = inter, depth, split
					sys, err := config.Build(cfg)
					if err != nil {
						return nil, err
					}
					var progs [][]byte
					for i := 0; i < 4; i++ {
						p, err := isa.Assemble(workload.GSMKernelSource(workload.GSMKernelConfig{
							Frames: 1, SM: i, Seed: uint32(i + 1),
						}))
						if err != nil {
							return nil, err
						}
						progs = append(progs, p.Code)
					}
					if err := sys.AddCPUs(progs...); err != nil {
						return nil, err
					}
					if _, err := sys.Kernel.RunUntil(sys.CPUsHalted, runLimit); err != nil {
						return nil, err
					}
					return sys, nil
				})
			}
		}
	}
}

// TestSchedDiffMLP replays the E10 memory-level-parallelism workload —
// the deepest exercise of multi-outstanding ports, split response
// re-arbitration and DMA double-buffering — across the kernel-mode
// matrix at the interesting protocol points.
func TestSchedDiffMLP(t *testing.T) {
	for _, tc := range []struct {
		inter config.InterconnectKind
		depth int
		split bool
	}{
		{config.InterBus, 1, false},
		{config.InterBus, 4, true},
		{config.InterCrossbar, 4, true},
	} {
		name := fmt.Sprintf("mlp-%s-d%d-split%v", tc.inter, tc.depth, tc.split)
		runBoth(t, name, func(m Mode) (*config.System, error) {
			m.Depth, m.Split = tc.depth, tc.split
			sys, err := buildMLP(2, 512, tc.inter, m)
			if err != nil {
				return nil, err
			}
			return sys, nil
		})
	}
}

// TestSchedDiffCache extends the matrix to the coherent cache hierarchy:
// the E11 coherence/locality workload — private L1s, MESI snooping on
// the interconnect, false-sharing invalidation traffic — replayed across
// the kernel-mode matrix at the interesting protocol points. Cache-on
// runs must be bit-identical (cycles, every cache's hit/miss/snoop
// counters, static RAM stats, PE accounting) across lockstep ×
// event-driven × workers {1, 4}; RunCache additionally verifies the
// final memory image inside every leg. Cache-off equivalence to the
// PR 4 behavior is pinned by every pre-existing differential and golden
// test — the uncached build path is untouched.
func TestSchedDiffCache(t *testing.T) {
	locality, sharing := E11Workload(Options{Quick: true})
	for _, tc := range []struct {
		name  string
		w     CacheWorkload
		inter config.InterconnectKind
		depth int
		split bool
	}{
		{"locality-bus-d1", locality, config.InterBus, 1, false},
		{"sharing-bus-d1", sharing, config.InterBus, 1, false},
		{"sharing-bus-d4-split", sharing, config.InterBus, 4, true},
		{"sharing-xbar-d4-split", sharing, config.InterCrossbar, 4, true},
	} {
		runBoth(t, "cache-"+tc.name, func(m Mode) (*config.System, error) {
			m.Depth, m.Split = tc.depth, tc.split
			r, sys, err := RunCache(tc.w, true, tc.inter, m)
			if err != nil {
				return nil, err
			}
			if r.Hits == 0 {
				return nil, fmt.Errorf("cache-on run served no hits")
			}
			return sys, nil
		})
	}
}

// TestSchedDiffL2 extends the matrix to the two-level hierarchy: the
// E12 asymmetric thrasher/reuse workload behind the shared inclusive
// L2, swept over memory model (static, banked DRAM open- and
// close-page with refresh), partition policy (shared LRU, SWP, UCP)
// and an L2-off DRAM control. Every leg must be bit-identical across
// lockstep × event-driven × workers {1,2,4,8}: cycle counts, L2
// hit/miss/back-invalidation/repartition counters, DRAM row and
// refresh counters, L1 and PE accounting. RunE12 additionally verifies
// the exact final memory image inside every leg.
func TestSchedDiffL2(t *testing.T) {
	w := E12Params(Options{Quick: true})
	for _, tc := range []struct {
		name      string
		part      cache.PartitionKind
		dram      bool
		closePage bool
	}{
		{"static-lru", cache.PartNone, false, false},
		{"static-swp", cache.PartSWP, false, false},
		{"static-ucp", cache.PartUCP, false, false},
		{"dram-open-ucp", cache.PartUCP, true, false},
		{"dram-close-lru", cache.PartNone, true, true},
	} {
		runBoth(t, "l2-"+tc.name, func(m Mode) (*config.System, error) {
			m.DRAM, m.ClosePage = tc.dram, tc.closePage
			r, sys, err := RunE12(w, tc.part, m)
			if err != nil {
				return nil, err
			}
			if r.L2.Hits == 0 {
				return nil, fmt.Errorf("L2 served no hits")
			}
			return sys, nil
		})
	}
	// L2-off control on the banked DRAM: the E11 locality workload with
	// private L1s straight onto the DRAM, pinning the DRAM timing model
	// alone across the kernel-mode matrix.
	locality, _ := E11Workload(Options{Quick: true})
	runBoth(t, "l2-off-dram", func(m Mode) (*config.System, error) {
		m.DRAM = true
		_, sys, err := RunCache(locality, true, config.InterBus, m)
		if err != nil {
			return nil, err
		}
		if len(sys.DRAMs) == 0 {
			return nil, fmt.Errorf("no DRAM built")
		}
		return sys, nil
	})
}

// TestSchedDiffCacheTraceReplay covers the single-master cached trace
// replay (the internal/trace coverage scenario) across the kernel-mode
// matrix, including out-of-order completion delivery on the master port.
func TestSchedDiffCacheTraceReplay(t *testing.T) {
	tr := trace.Generate(trace.GenConfig{
		Seed: 71, Events: 900, Slots: 16, NumSM: 1,
		MinDim: 4, MaxDim: 64, DType: bus.U32, Mix: trace.DefaultMix(), PtrArithPct: 20,
	})
	for _, ooo := range []bool{false, true} {
		runBoth(t, fmt.Sprintf("cache-trace-ooo=%v", ooo), func(m Mode) (*config.System, error) {
			m.Cache, m.OOO = true, ooo
			_, sys, err := RunTrace(config.MemStatic, tr, trace.ModeStatic, 0, m)
			if err != nil {
				return nil, err
			}
			if sys.Caches[0].Stats().Hits == 0 {
				return nil, fmt.Errorf("cached replay served no hits")
			}
			return sys, nil
		})
	}
}
