package experiments

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"maps"
	"time"

	"repro/internal/alloc"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file is the context-aware leg runner: the experiments runner
// extracted behind an interface a long-running service can drive. A
// "leg" is one complete deterministic simulation — an ISS workload on a
// built system — described by a JSON-friendly LegSpec, cancellable via
// context mid-run, and resumable from a warm-boot snapshot. The
// deterministic scheduler is what makes legs service-able: equal specs
// (and equal warm snapshots) produce bit-identical results, so a
// persistent store can answer repeated legs without simulating.

// ctxChunk is the cycle granularity at which a context-aware run
// checks for cancellation. It is a fixed constant, not a knob: the
// chunk boundary influences how idle spans are split (and thereby the
// kernel's informational span counters, which travel in snapshots), so
// keeping it constant keeps context-aware runs deterministic. Cycle
// counts, module stats and all observable state are chunk-invariant —
// the RunUntil predicate contract guarantees a conforming predicate
// cannot flip mid-span.
const ctxChunk = 65536

// runUntilCtx is Kernel.RunUntil with cooperative cancellation: it
// advances k toward pred in ctxChunk-cycle slices, returning ctx.Err()
// at the first boundary after cancellation. A nil ctx (or
// context.Background()) degrades to the plain uninterruptible call.
func runUntilCtx(ctx context.Context, k *sim.Kernel, pred func() bool, limit uint64) (uint64, error) {
	if ctx == nil || ctx.Done() == nil {
		return k.RunUntil(pred, limit)
	}
	var done uint64
	for done < limit {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		budget := limit - done
		if budget > ctxChunk {
			budget = ctxChunk
		}
		adv, err := k.RunUntil(pred, budget)
		done += adv
		if err == nil {
			return done, nil
		}
		if err != sim.ErrLimit {
			return done, err
		}
	}
	return limit, sim.ErrLimit
}

// runCtx is Kernel.Run with the same cooperative cancellation.
func runCtx(ctx context.Context, k *sim.Kernel, n uint64) error {
	if ctx == nil || ctx.Done() == nil {
		return k.Run(n)
	}
	for done := uint64(0); done < n; {
		if err := ctx.Err(); err != nil {
			return err
		}
		budget := n - done
		if budget > ctxChunk {
			budget = ctxChunk
		}
		if err := k.Run(budget); err != nil {
			return err
		}
		done += budget
	}
	return nil
}

// WithContext returns a copy of the mode whose measured runs honor ctx:
// RunGSMISS and the warm-boot helpers abort with ctx.Err() at the next
// chunk boundary after cancellation. The zero mode runs uninterrupted.
func (m Mode) WithContext(ctx context.Context) Mode {
	m.ctx = ctx
	return m
}

// runUntil is the mode-aware RunUntil every cancellable run site uses.
func (m Mode) runUntil(k *sim.Kernel, pred func() bool, limit uint64) (uint64, error) {
	return runUntilCtx(m.ctx, k, pred, limit)
}

// LegSpec describes one simulation leg in JSON-friendly terms: the
// workload, its scale, and the full scheduler/protocol mode — strings
// where the in-process Mode uses enums. The zero value normalizes to
// the paper's 4-ISS GSM configuration on one wrapper memory.
type LegSpec struct {
	// Name labels the leg in reports; it does not affect the result and
	// is excluded from cache keys.
	Name string `json:"name,omitempty"`
	// Workload selects the program every ISS runs: "gsm" (the paper's
	// traffic kernel, wrapper memories) or "sweep" (the scalar
	// write/verify sweep over flat memories — static, or DRAM with
	// Dram set; the cacheable class L2 legs need).
	Workload string `json:"workload,omitempty"`
	// ISSes and Memories size the platform; Frames is the per-ISS work
	// (GSM frames, or sweep iterations). Seed offsets the workload data.
	ISSes    int    `json:"isses,omitempty"`
	Memories int    `json:"memories,omitempty"`
	Frames   int    `json:"frames,omitempty"`
	Seed     uint32 `json:"seed,omitempty"`

	// Scheduler axes (observably identical; part of the full cache key
	// but not the warm-boot compatibility class).
	Lockstep bool `json:"lockstep,omitempty"`
	Workers  int  `json:"workers,omitempty"`

	// Protocol/hierarchy axes (observable).
	Alloc     string `json:"alloc,omitempty"`     // default | first-fit | best-fit | buddy | segregated
	Depth     int    `json:"depth,omitempty"`     // outstanding-transaction depth
	Split     bool   `json:"split,omitempty"`     // split-transaction interconnect
	OOO       bool   `json:"ooo,omitempty"`       // out-of-order completion delivery
	Crossbar  bool   `json:"crossbar,omitempty"`  // crossbar instead of shared bus
	Cache     bool   `json:"cache,omitempty"`     // coherent private L1s
	L2        bool   `json:"l2,omitempty"`        // shared inclusive L2 (implies cache)
	Partition string `json:"partition,omitempty"` // none | swp | ucp
	Dram      bool   `json:"dram,omitempty"`      // banked DRAM under flat workloads
	ClosePage bool   `json:"close_page,omitempty"`

	// Optional geometry overrides (zero = package defaults).
	CacheSets int    `json:"cache_sets,omitempty"`
	CacheWays int    `json:"cache_ways,omitempty"`
	L2Sets    int    `json:"l2_sets,omitempty"`
	L2Ways    int    `json:"l2_ways,omitempty"`
	UCPPeriod uint64 `json:"ucp_period,omitempty"`

	// VCD asks the runner to capture an interconnect waveform of this
	// leg. Presentation-only for the simulation but incompatible with
	// result caching (a cached result has no waveform), so services
	// always simulate VCD legs.
	VCD bool `json:"vcd,omitempty"`
}

// Normalized fills the spec's defaults without mutating the receiver's
// zero-ness semantics: workload gsm, 4 ISSes, 1 memory, 4 frames,
// seed 1.
func (l LegSpec) Normalized() LegSpec {
	if l.Workload == "" {
		l.Workload = "gsm"
	}
	if l.ISSes == 0 {
		l.ISSes = 4
	}
	if l.Memories == 0 {
		l.Memories = 1
	}
	if l.Frames == 0 {
		l.Frames = 4
	}
	if l.Seed == 0 {
		l.Seed = 1
	}
	return l
}

// Validate rejects specs the runner cannot execute, with actionable
// errors (it does not build the system — config.Build applies its own
// checks at run time).
func (l LegSpec) Validate() error {
	n := l.Normalized()
	switch n.Workload {
	case "gsm", "sweep":
	default:
		return fmt.Errorf("leg %q: unknown workload %q (want gsm or sweep)", l.Name, l.Workload)
	}
	if n.ISSes < 1 || n.ISSes > 64 {
		return fmt.Errorf("leg %q: isses %d out of range [1,64]", l.Name, n.ISSes)
	}
	if n.Memories < 1 || n.Memories > 64 {
		return fmt.Errorf("leg %q: memories %d out of range [1,64]", l.Name, n.Memories)
	}
	if n.Frames < 1 || n.Frames > 1<<20 {
		return fmt.Errorf("leg %q: frames %d out of range [1,2^20]", l.Name, n.Frames)
	}
	if n.Workers < 0 || n.Workers > 64 {
		return fmt.Errorf("leg %q: workers %d out of range [0,64]", l.Name, n.Workers)
	}
	if n.Depth < 0 || n.Depth > 64 {
		return fmt.Errorf("leg %q: depth %d out of range [0,64]", l.Name, n.Depth)
	}
	if n.Dram && n.Workload != "sweep" {
		return fmt.Errorf("leg %q: dram requires the sweep workload (gsm needs wrapper memories)", l.Name)
	}
	if n.L2 && n.Workload != "sweep" {
		return fmt.Errorf("leg %q: l2 requires the sweep workload (the L2 caches flat memories only)", l.Name)
	}
	if _, err := n.Mode(); err != nil {
		return fmt.Errorf("leg %q: %w", l.Name, err)
	}
	return nil
}

// Mode translates the spec's string axes into the in-process Mode.
func (l LegSpec) Mode() (Mode, error) {
	var m Mode
	m.Lockstep, m.Workers = l.Lockstep, l.Workers
	m.Depth, m.Split, m.OOO, m.Cache = l.Depth, l.Split, l.OOO, l.Cache
	m.L2, m.DRAM, m.ClosePage = l.L2, l.Dram, l.ClosePage
	if l.Alloc != "" {
		kind, err := alloc.ParseKind(l.Alloc)
		if err != nil {
			return Mode{}, err
		}
		m.Alloc = kind
	}
	switch l.Partition {
	case "", "none":
		m.Partition = cache.PartNone
	case "swp":
		m.Partition = cache.PartSWP
	case "ucp":
		m.Partition = cache.PartUCP
	default:
		return Mode{}, fmt.Errorf("unknown partition %q (want none, swp or ucp)", l.Partition)
	}
	return m, nil
}

// Config builds the full SystemConfig the leg runs on. The workload
// selects the memory kind: gsm allocates, so it needs wrappers; sweep
// targets the flat (cacheable) memories.
func (l LegSpec) Config() (config.SystemConfig, error) {
	n := l.Normalized()
	m, err := n.Mode()
	if err != nil {
		return config.SystemConfig{}, err
	}
	cfg := m.sysConfig()
	cfg.Masters, cfg.Memories = n.ISSes, n.Memories
	switch n.Workload {
	case "gsm":
		cfg.MemKind = config.MemWrapper
	case "sweep":
		cfg.MemKind = m.flatKind()
	default:
		return config.SystemConfig{}, fmt.Errorf("unknown workload %q", n.Workload)
	}
	if n.Crossbar {
		cfg.Interconnect = config.InterCrossbar
	}
	cfg.CacheSets, cfg.CacheWays = n.CacheSets, n.CacheWays
	cfg.L2Sets, cfg.L2Ways = n.L2Sets, n.L2Ways
	cfg.UCPPeriod = n.UCPPeriod
	return cfg, nil
}

// programs assembles the per-ISS workload images.
func (l LegSpec) programs() ([][]byte, error) {
	n := l.Normalized()
	progs := make([][]byte, n.ISSes)
	for i := 0; i < n.ISSes; i++ {
		var src string
		switch n.Workload {
		case "gsm":
			src = workload.GSMKernelSource(workload.GSMKernelConfig{
				Frames: n.Frames, SM: i % n.Memories, Seed: n.Seed + uint32(i),
			})
		case "sweep":
			// Interleaved word ranges, like mpsim -workload sweep:
			// neighbouring ISSs falsely share every cache line.
			src = workload.SweepKernelSource(workload.SweepKernelConfig{
				Iterations: n.Frames, SM: i % n.Memories,
				Base: 4 * i, Stride: 4 * n.ISSes, Words: 64,
				Seed: n.Seed + uint32(16*(i+1)),
			})
		default:
			return nil, fmt.Errorf("unknown workload %q", n.Workload)
		}
		p, err := isa.Assemble(src)
		if err != nil {
			return nil, fmt.Errorf("assemble iss %d: %w", i, err)
		}
		progs[i] = p.Code
	}
	return progs, nil
}

// Key is the leg's result-store address: a digest of the full system
// configuration (scheduler knobs included — they change wall time, and
// the stored result reports it), the canonical workload spec, and the
// warm snapshot's content hash ("" for a cold run). With the
// deterministic scheduler this triple fully determines the result.
func (l LegSpec) Key(snapHash string) (string, error) {
	n := l.Normalized()
	cfg, err := n.Config()
	if err != nil {
		return "", err
	}
	n.Name, n.VCD = "", false // presentation-only
	j, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	h := sha256.Sum256([]byte(cfg.Hash() + "|" + string(j) + "|" + snapHash))
	return hex.EncodeToString(h[:16]), nil
}

// StateKey identifies the warm-boot compatibility class of the leg's
// warm-up prefix: the config's StateHash (scheduler-only knobs zeroed)
// plus the workload identity and the warm-up length. Legs with equal
// StateKeys can resume from one shared snapshot — that is the
// scheduler-matrix warm-boot contract RestoreSystem enforces.
func (l LegSpec) StateKey(warmCycles uint64) (string, error) {
	n := l.Normalized()
	cfg, err := n.Config()
	if err != nil {
		return "", err
	}
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d|%d|%d|%d|%d",
		cfg.StateHash(), n.Workload, n.ISSes, n.Memories, n.Frames, n.Seed, warmCycles)))
	return hex.EncodeToString(h[:16]), nil
}

// LegResult is one finished leg. Cycles is the kernel's absolute final
// cycle count (so a warm-booted leg lands on its cold reference's exact
// value); StartCycle is where this run began (0 cold, the snapshot
// cycle warm). Everything except Name and WallNS is deterministic:
// equal specs (and warm snapshots) produce equal results bit for bit.
type LegResult struct {
	Name         string            `json:"name,omitempty"`
	StartCycle   uint64            `json:"start_cycle"`
	Cycles       uint64            `json:"cycles"`
	Instructions uint64            `json:"instructions"`
	WallNS       int64             `json:"wall_ns"`
	Stats        map[string]uint64 `json:"stats,omitempty"`

	// VCD holds the captured waveform when the spec asked for one;
	// it is an artifact, not part of the result value.
	VCD []byte `json:"-"`
}

// SimCycles is the number of cycles this run actually simulated.
func (r LegResult) SimCycles() uint64 { return r.Cycles - r.StartCycle }

// Identical reports whether two results are the same deterministic
// outcome: equal final cycle counts, instruction counts and module
// stats. Wall time, names and start cycles are host/provenance detail.
func (r LegResult) Identical(o LegResult) bool {
	return r.Cycles == o.Cycles && r.Instructions == o.Instructions &&
		maps.Equal(r.Stats, o.Stats)
}

// Runner is the context-aware simulation backend: RunLeg executes one
// leg to completion (cold, or resumed from a warm snapshot), Warmup
// runs a leg's warm-up prefix and returns its snapshot. Both honor
// cancellation mid-run. experiments.SimRunner is the real
// implementation; services fake it in tests.
type Runner interface {
	RunLeg(ctx context.Context, leg LegSpec, warm []byte) (LegResult, error)
	Warmup(ctx context.Context, leg LegSpec, cycles uint64) ([]byte, error)
}

// SimRunner runs legs on the in-process simulator.
type SimRunner struct{}

// build constructs the leg's system with its programs attached.
func (SimRunner) build(leg LegSpec) (*config.System, error) {
	cfg, err := leg.Config()
	if err != nil {
		return nil, err
	}
	sys, err := config.Build(cfg)
	if err != nil {
		return nil, err
	}
	progs, err := leg.programs()
	if err != nil {
		return nil, err
	}
	if err := sys.AddCPUs(progs...); err != nil {
		return nil, err
	}
	return sys, nil
}

// RunLeg simulates the leg to completion and returns its result. A
// non-nil warm snapshot resumes from it (the snapshot must belong to
// the leg's warm-boot compatibility class) instead of starting cold.
func (r SimRunner) RunLeg(ctx context.Context, leg LegSpec, warm []byte) (LegResult, error) {
	leg = leg.Normalized()
	var sys *config.System
	var err error
	if warm != nil {
		cfg, cerr := leg.Config()
		if cerr != nil {
			return LegResult{}, cerr
		}
		sys, err = config.RestoreSystem(cfg, warm)
	} else {
		sys, err = r.build(leg)
	}
	if err != nil {
		return LegResult{}, err
	}
	res := LegResult{Name: leg.Name, StartCycle: sys.Kernel.Cycle()}

	var vcdBuf bytes.Buffer
	var vcd *sim.VCD
	if leg.VCD {
		vcd = sim.NewVCD(&vcdBuf, "1ns")
		vcd.AddVar("bus", "transactions", 32, func() uint64 { return sys.Inter.Stats().Transactions })
		vcd.AddVar("bus", "words", 32, func() uint64 { return sys.Inter.Stats().Words })
		sys.Kernel.AfterCycle(vcd.Sample)
	}

	start := time.Now()
	if _, err := runUntilCtx(ctx, sys.Kernel, sys.CPUsHalted, runLimit); err != nil {
		return LegResult{}, err
	}
	res.WallNS = time.Since(start).Nanoseconds()
	for i, cpu := range sys.CPUs {
		if cpu.ExitCode() != 0 {
			return LegResult{}, fmt.Errorf("iss %d exited %#x", i, cpu.ExitCode())
		}
		res.Instructions += cpu.Icount
	}
	res.Cycles = sys.Kernel.Cycle()
	res.Stats = legStats(sys)
	if vcd != nil {
		if err := vcd.Flush(); err != nil {
			return LegResult{}, err
		}
		res.VCD = vcdBuf.Bytes()
	}
	return res, nil
}

// Warmup runs the leg's warm-up prefix — cycles from cold — and
// returns the system snapshot at that point.
func (r SimRunner) Warmup(ctx context.Context, leg LegSpec, cycles uint64) ([]byte, error) {
	leg = leg.Normalized()
	sys, err := r.build(leg)
	if err != nil {
		return nil, err
	}
	if err := runCtx(ctx, sys.Kernel, cycles); err != nil {
		return nil, err
	}
	return sys.Snapshot()
}

// legStats flattens the deterministic module counters a service
// result reports: interconnect traffic, cache behavior, DRAM row
// activity. Scheduler scratch counters (skip spans, wall profiling)
// are deliberately absent — they vary across scheduler modes while the
// result must not.
func legStats(sys *config.System) map[string]uint64 {
	st := map[string]uint64{}
	ist := sys.Inter.Stats()
	st["inter.transactions"] = ist.Transactions
	st["inter.words"] = ist.Words
	st["inter.busy_cycles"] = ist.BusyCycles
	var hits, misses, wbs uint64
	for _, c := range sys.Caches {
		cs := c.Stats()
		hits += cs.Hits
		misses += cs.Misses
		wbs += cs.Writebacks
	}
	if len(sys.Caches) > 0 {
		st["l1.hits"], st["l1.misses"], st["l1.writebacks"] = hits, misses, wbs
	}
	if sys.L2 != nil {
		ls := sys.L2.Stats()
		st["l2.hits"], st["l2.misses"] = ls.Hits, ls.Misses
		st["l2.writebacks"] = ls.Writebacks
		st["l2.back_invalidations"] = ls.BackInvalidations
		st["l2.repartitions"] = ls.Repartitions
	}
	var rowHits, rowMisses uint64
	for _, d := range sys.DRAMs {
		ds := d.Stats()
		rowHits += ds.RowHits
		rowMisses += ds.RowMisses
	}
	if len(sys.DRAMs) > 0 {
		st["dram.row_hits"], st["dram.row_misses"] = rowHits, rowMisses
	}
	return st
}
